package remspan

import (
	"math/rand"
	"testing"
)

// TestReplicatedRouterBasic drives the public replicated tier through
// churn on a perfect transport: replicas stay in lockstep with the
// writer, every query is typed, and delivered paths are real walks in
// the current graph ending at the target.
func TestReplicatedRouterBasic(t *testing.T) {
	g := RandomUDG(150, 4, 7)
	rr, err := NewReplicatedRouter(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplicatedRouter(g, 0); err == nil {
		t.Fatal("zero replicas accepted")
	}

	rng := rand.New(rand.NewSource(9))
	cur := g.Clone()
	for round := 0; round < 8; round++ {
		var added, removed [][2]int
		for k := 0; k < 5; k++ {
			u, v := rng.Intn(cur.N()), rng.Intn(cur.N())
			if u == v {
				continue
			}
			if cur.HasEdge(u, v) {
				removed = append(removed, [2]int{u, v})
			} else {
				added = append(added, [2]int{u, v})
			}
		}
		rr.Update(added, removed)
		for _, e := range removed {
			cur.raw().RemoveEdge(e[0], e[1])
		}
		for _, e := range added {
			cur.AddEdge(e[0], e[1])
		}
		if rr.MaxLag() != 0 {
			t.Fatalf("round %d: replicas lag %d on a perfect transport", round, rr.MaxLag())
		}
		for q := 0; q < 30; q++ {
			s, d := rng.Intn(cur.N()), rng.Intn(cur.N())
			path, reason, lag, ok := rr.Route(s, d)
			if lag != 0 {
				t.Fatalf("round %d: query served at lag %d on a perfect transport", round, lag)
			}
			if !ok {
				if reason != "unreachable" && reason != "stale-link" && reason != "trapped" {
					t.Fatalf("round %d: untyped failure %q", round, reason)
				}
				continue
			}
			if reason != "delivered" {
				t.Fatalf("round %d: delivered route with reason %q", round, reason)
			}
			if len(path) == 0 || path[0] != s || path[len(path)-1] != d {
				t.Fatalf("round %d: bad path %v for %d→%d", round, path, s, d)
			}
			for i := 1; i < len(path); i++ {
				if !cur.HasEdge(path[i-1], path[i]) {
					t.Fatalf("round %d: path hop %d–%d not an edge", round, path[i-1], path[i])
				}
			}
		}
	}
	if rr.Epoch() < 2 {
		t.Fatalf("writer never published past bootstrap: epoch %d", rr.Epoch())
	}
}
