package remspan

import (
	"strings"
	"testing"
)

func TestGraphFacadeBasics(t *testing.T) {
	g := NewGraph(4)
	if !g.AddEdge(0, 1) || g.AddEdge(0, 1) {
		t.Fatal("AddEdge semantics")
	}
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge")
	}
	if d := g.Distance(0, 3); d != 3 {
		t.Fatalf("distance=%d", d)
	}
	if nb := g.Neighbors(1); len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Fatalf("neighbors=%v", nb)
	}
	if es := g.Edges(); len(es) != 3 || es[0] != [2]int{0, 1} {
		t.Fatalf("edges=%v", es)
	}
	if !g.Connected() {
		t.Fatal("path should be connected")
	}
	c := g.Clone()
	c.AddEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Fatal("clone aliased")
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}, {1, 1}})
	if g.M() != 2 {
		t.Fatalf("m=%d", g.M())
	}
}

func TestExactSpannerFacade(t *testing.T) {
	g := RandomConnected(40, 80, 1)
	s := Exact(g)
	if s.Kind != "exact" || s.KConnecting != 1 {
		t.Fatalf("metadata: %+v", s.Kind)
	}
	if err := VerifySpanner(g, s); err != nil {
		t.Fatal(err)
	}
	if len(s.TreeEdges) != g.N() {
		t.Fatal("tree sizes missing")
	}
}

func TestKConnectingFacade(t *testing.T) {
	g := RandomConnected(18, 40, 2)
	s := KConnecting(g, 2)
	if err := VerifySpanner(g, s); err != nil {
		t.Fatal(err)
	}
}

func TestTwoConnectingFacade(t *testing.T) {
	g := RandomConnected(16, 36, 3)
	s := TwoConnecting(g)
	if s.Guarantee.AlphaNum != 2 || s.Guarantee.BetaNum != -1 {
		t.Fatalf("guarantee %v", s.Guarantee)
	}
	if err := VerifySpanner(g, s); err != nil {
		t.Fatal(err)
	}
}

func TestLowStretchFacade(t *testing.T) {
	g := RandomUDG(250, 4, 4)
	s, err := LowStretch(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Radius != 3 {
		t.Fatalf("radius=%d", s.Radius)
	}
	if got := s.Guarantee.String(); got != "(3/2, 0)" {
		t.Fatalf("guarantee string %q", got)
	}
	if err := Verify(g, s.H, s.Guarantee); err != nil {
		t.Fatal(err)
	}
	if s.Edges() >= g.M() {
		t.Fatalf("no sparsification: %d of %d", s.Edges(), g.M())
	}
}

func TestVerifyDetectsBadSpanner(t *testing.T) {
	g := Ring(10)
	empty := NewGraph(10)
	err := Verify(g, empty, IntStretch(1, 0))
	if err == nil {
		t.Fatal("empty spanner accepted")
	}
	if !strings.Contains(err.Error(), "pair") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestMeasureStretchFullGraph(t *testing.T) {
	g := Ring(12)
	p := MeasureStretch(g, g.Clone())
	if p.MaxStretch != 1 || p.MaxAdditive != 0 || p.Pairs == 0 {
		t.Fatalf("profile %+v", p)
	}
}

func TestGenerators(t *testing.T) {
	if g := RandomUDG(200, 4, 7); !g.Connected() || g.N() == 0 {
		t.Fatal("UDG should be the connected component")
	}
	if g := RandomUBG(100, 2, 4, 7); g.N() != 100 {
		t.Fatal("UBG node count")
	}
	if g := ErdosRenyi(50, 0.3, 7); g.M() == 0 {
		t.Fatal("ER empty")
	}
	if g := Grid(3, 3); g.M() != 12 {
		t.Fatalf("grid m=%d", g.M())
	}
	if g := Hypercube(3); g.M() != 12 {
		t.Fatalf("hypercube m=%d", g.M())
	}
	a := RandomUDG(150, 4, 9)
	b := RandomUDG(150, 4, 9)
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatal("generators not deterministic in seed")
	}
}

func TestDisjointPathDistance(t *testing.T) {
	g := Ring(6)
	if d := DisjointPathDistance(g, 0, 3, 2); d != 6 {
		t.Fatalf("d2=%d, want 6", d)
	}
	if d := DisjointPathDistance(g, 0, 3, 3); d != -1 {
		t.Fatalf("d3=%d, want -1", d)
	}
}

func TestRouteFacade(t *testing.T) {
	g := RandomUDG(200, 3, 11)
	s := Exact(g)
	path, ok := Route(g, s.H, 0, g.N()-1)
	if !ok {
		t.Fatal("no route")
	}
	if len(path)-1 != g.Distance(0, g.N()-1) {
		t.Fatalf("route len %d, shortest %d", len(path)-1, g.Distance(0, g.N()-1))
	}
}

func TestMultipathRoutesFacade(t *testing.T) {
	g := Ring(8)
	s := TwoConnecting(g)
	paths, total, ok := MultipathRoutes(g, s.H, 0, 4, 2)
	if !ok || len(paths) != 2 {
		t.Fatal("expected 2 disjoint routes on a cycle")
	}
	if total < 8 {
		t.Fatalf("total=%d below cycle length", total)
	}
}

func TestRunDistributedMatchesCentralized(t *testing.T) {
	g := RandomConnected(30, 60, 13)
	res, err := RunDistributed(g, AlgoExact, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds=%d", res.Rounds)
	}
	want := Exact(g)
	if res.H.M() != want.Edges() {
		t.Fatalf("distributed %d vs centralized %d", res.H.M(), want.Edges())
	}
	lsMsgs, lsWords := FullLinkStateCost(g)
	if lsMsgs <= 0 || lsWords <= res.Words {
		t.Fatalf("link-state baseline words %d vs %d", lsWords, res.Words)
	}
}

func TestRunDistributedLowStretch(t *testing.T) {
	g := RandomConnected(25, 50, 14)
	res, err := RunDistributed(g, AlgoLowStretch, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 7 { // r=3 → 2r+1
		t.Fatalf("rounds=%d", res.Rounds)
	}
	low, err := LowStretch(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.H, low.Guarantee); err != nil {
		t.Fatal(err)
	}
}

func TestRunDistributedErrors(t *testing.T) {
	g := Ring(5)
	if _, err := RunDistributed(g, AlgoKConnecting, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := RunDistributed(g, AlgoLowStretch, 0, 2); err == nil {
		t.Fatal("eps=2 accepted")
	}
	if _, err := RunDistributed(g, Algorithm(99), 0, 0); err == nil {
		t.Fatal("bad algo accepted")
	}
}

func TestFloodStatsFacade(t *testing.T) {
	g := RandomUDG(250, 4, 15)
	mpr, blind, covered := FloodStats(g, 1, 0)
	if covered != g.N() {
		t.Fatalf("covered %d of %d", covered, g.N())
	}
	if mpr > blind {
		t.Fatalf("MPR %d > blind %d", mpr, blind)
	}
}

func TestDominatingTreeFacade(t *testing.T) {
	g := RandomConnected(30, 50, 16)
	edges, err := DominatingTree(g, 0, 3, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) == 0 {
		t.Fatal("empty tree on connected graph")
	}
	if _, err := DominatingTree(g, 0, 1, 0, true); err == nil {
		t.Fatal("r=1 accepted")
	}
	if _, err := DominatingTree(g, 0, 3, 0, false); err == nil {
		t.Fatal("MIS beta=0 accepted")
	}
	mis, err := DominatingTree(g, 0, 3, 1, false)
	if err != nil || len(mis) == 0 {
		t.Fatalf("MIS tree: %v", err)
	}
}

func TestStretchString(t *testing.T) {
	if s := IntStretch(2, -1).String(); s != "(2, -1)" {
		t.Fatalf("got %q", s)
	}
}

func TestDistanceOracleFacade(t *testing.T) {
	g := RandomUDG(250, 4, 21)
	s := Exact(g)
	o := NewOracle(g, s)
	for trial := 0; trial < 40; trial++ {
		u, v := trial%g.N(), (trial*17+3)%g.N()
		want := g.Distance(u, v)
		if got := o.Query(u, v); got != want {
			t.Fatalf("Query(%d,%d)=%d, want %d", u, v, got, want)
		}
	}
	targets := []int{0, 1, 2, 3}
	batch := o.QueryBatch(5, targets)
	c := o.Clone()
	for i, tgt := range targets {
		if c.Query(5, tgt) != batch[i] {
			t.Fatal("batch/clone mismatch")
		}
	}
	if o.StorageWords() >= g.N()*g.N() {
		t.Fatal("no storage savings")
	}
}

// The facade must reject an invalid eps with an error — the same
// contract as RunDistributed — rather than panicking like the internal
// builders do.
func TestLowStretchInvalidEpsErrors(t *testing.T) {
	g := Ring(8)
	for _, eps := range []float64{0, -0.25, 1.5} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("LowStretch panicked on eps=%v: %v", eps, r)
				}
			}()
			s, err := LowStretch(g, eps)
			if err == nil || s != nil {
				t.Fatalf("eps=%v accepted", eps)
			}
		}()
		if _, derr := RunDistributed(g, AlgoLowStretch, 0, eps); derr == nil {
			t.Fatalf("RunDistributed accepted eps=%v", eps)
		}
	}
}
