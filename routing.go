package remspan

import (
	"remspan/internal/routing"
)

// ForwardingTables is the set of per-router forwarding tables (FIBs)
// over an advertised spanner: for every owner u, the next hop and
// believed distance toward every destination in u's augmented view
// H_u. Built on the word-parallel 64-owner engine (DESIGN.md §3e).
type ForwardingTables struct {
	g      *Graph
	tables []routing.Table
}

// BuildForwardingTables computes every router's table over the
// advertised spanner h (h ⊆ g).
func BuildForwardingTables(g, h *Graph) *ForwardingTables {
	return &ForwardingTables{g: g, tables: routing.BuildTablesBatched(g.raw(), h.raw())}
}

// NextHop returns the neighbor s forwards to toward t (-1 when t is
// unreachable in s's view, s itself when s == t).
func (ft *ForwardingTables) NextHop(s, t int) int { return int(ft.tables[s].Next[t]) }

// Dist returns s's believed distance to t in H_s (-1 when unknown).
func (ft *ForwardingTables) Dist(s, t int) int { return int(ft.tables[s].Dist[t]) }

// RouteTable forwards a packet hop by hop, each hop consulting its own
// table. reason is "delivered" on success, else "unreachable",
// "stale-link" or "trapped" — distinguishing genuinely missing
// connectivity from stale table state.
func (ft *ForwardingTables) RouteTable(s, t int) (path []int, reason string, ok bool) {
	r := routing.TableRoute(ft.tables, ft.g.raw(), s, t)
	if !r.OK {
		return nil, r.Reason.String(), false
	}
	out := make([]int, len(r.Path))
	for i, v := range r.Path {
		out[i] = int(v)
	}
	return out, r.Reason.String(), true
}
