package distsim

import (
	"testing"

	"remspan/internal/dynamic"
	"remspan/internal/spanner"
)

// TestLiveRunPinnedToMaintainer is the acceptance pin of the live
// driver: every mobility tick's spanner must be bit-identical to
// dynamic.Maintainer ground truth fed the same change stream, and in
// particular remain a valid (1,0)-remote-spanner of the live topology.
func TestLiveRunPinnedToMaintainer(t *testing.T) {
	cfg := LiveConfig{
		N: 300, Degree: 8,
		MinSpeed: 0.02, MaxSpeed: 0.12,
		Ticks: 25, Seed: 5,
		Radius: 1, Build: kgreedyCSR(1),
	}
	var m *dynamic.Maintainer
	checked := 0
	rep, err := LiveRun(cfg, func(tick int, changes []dynamic.Change, e *Engine) {
		if m == nil {
			// Ground truth starts from the engine's initial topology:
			// rewind the tick's changes to recover it.
			g := e.Graph().Clone()
			undo(g, changes)
			m = dynamic.New(g, cfg.Radius, dynamic.TreeBuilder(cfg.Build))
		}
		m.ApplyBatch(changes)
		if !edgeSetsEqual(e.Spanner(), m.Spanner()) {
			t.Fatalf("tick %d: live spanner diverged from maintainer ground truth", tick)
		}
		if tick%8 == 0 {
			h := e.Spanner().Graph()
			if v := spanner.Check(e.Graph(), h, spanner.NewStretch(1, 0)); v != nil {
				t.Fatalf("tick %d: live spanner violates (1,0): %v", tick, v)
			}
		}
		checked++
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked != cfg.Ticks {
		t.Fatalf("observed %d ticks, want %d", checked, cfg.Ticks)
	}
	if rep.Changes == 0 {
		t.Fatal("mobility produced no topology changes — vacuous run")
	}
	if rep.Words == 0 || rep.FullWords == 0 {
		t.Fatalf("no re-advertisement traffic recorded: %+v", rep)
	}
	if rep.Words >= rep.FullWords {
		t.Fatalf("incremental re-advertisement (%d words) not below full link-state re-flood (%d)",
			rep.Words, rep.FullWords)
	}
	if rep.Refloods > rep.DirtyRoots {
		t.Fatalf("refloods %d exceed dirty roots %d", rep.Refloods, rep.DirtyRoots)
	}
}

// undo reverses a change batch on g (the batches LiveRun emits contain
// only edge adds/removes, each effective exactly once).
func undo(g interface {
	AddEdge(u, v int) bool
	RemoveEdge(u, v int) bool
}, changes []dynamic.Change) {
	for i := len(changes) - 1; i >= 0; i-- {
		ch := changes[i]
		switch ch.Kind {
		case dynamic.AddEdge:
			g.RemoveEdge(ch.U, ch.V)
		case dynamic.RemoveEdge:
			g.AddEdge(ch.U, ch.V)
		}
	}
}

// TestLiveRunDeterministic: same config, same report.
func TestLiveRunDeterministic(t *testing.T) {
	cfg := LiveConfig{
		N: 150, Degree: 7,
		MinSpeed: 0.02, MaxSpeed: 0.1,
		Ticks: 10, Seed: 9,
		Radius: 2, Build: kmisCSR(2),
	}
	a, errA := LiveRun(cfg, nil)
	b, errB := LiveRun(cfg, nil)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a.Changes != b.Changes || a.Words != b.Words || a.DirtyRoots != b.DirtyRoots ||
		a.Refloods != b.Refloods || a.FullWords != b.FullWords {
		t.Fatalf("live runs diverged: %+v vs %+v", a, b)
	}
}

// TestLiveRunConfigErrors: every invalid config is rejected with a
// typed *ConfigError naming the offending field — never a panic.
func TestLiveRunConfigErrors(t *testing.T) {
	valid := LiveConfig{
		N: 50, Degree: 8, MinSpeed: 0.01, MaxSpeed: 0.05,
		Ticks: 1, Seed: 1, Radius: 1, Build: kgreedyCSR(1),
	}
	cases := []struct {
		field  string
		mutate func(*LiveConfig)
	}{
		{"N", func(c *LiveConfig) { c.N = 1 }},
		{"Degree", func(c *LiveConfig) { c.Degree = 0 }},
		{"Ticks", func(c *LiveConfig) { c.Ticks = -1 }},
		{"MinSpeed", func(c *LiveConfig) { c.MinSpeed = -0.1 }},
		{"MaxSpeed", func(c *LiveConfig) { c.MaxSpeed = c.MinSpeed / 2 }},
		{"Radius", func(c *LiveConfig) { c.Radius = 0 }},
		{"Build", func(c *LiveConfig) { c.Build = nil }},
	}
	for _, tc := range cases {
		cfg := valid
		tc.mutate(&cfg)
		rep, err := LiveRun(cfg, nil)
		if rep != nil || err == nil {
			t.Fatalf("%s: expected rejection, got rep=%v err=%v", tc.field, rep, err)
		}
		var ce *ConfigError
		if !errorsAs(err, &ce) {
			t.Fatalf("%s: error %v is not a *ConfigError", tc.field, err)
		}
		if ce.Field != tc.field {
			t.Fatalf("error blames field %q, want %q (%v)", ce.Field, tc.field, err)
		}
		if ce.Error() == "" || ce.Reason == "" {
			t.Fatalf("%s: undescriptive error %+v", tc.field, ce)
		}
	}
	if _, err := LiveRun(valid, nil); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// errorsAs avoids importing errors just for the assertion above.
func errorsAs(err error, target **ConfigError) bool {
	ce, ok := err.(*ConfigError)
	if ok {
		*target = ce
	}
	return ok
}
