package distsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"remspan/internal/domtree"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

func TestAsyncMatchesSyncMPR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(15+rng.Intn(30), 50, rng)
		algo := func(local *graph.Graph, u int) *graph.Tree {
			return domtree.KGreedy(local, u, 1)
		}
		sync := RunRemSpan(g, 1, kgreedyCSR(1))
		async := RunRemSpanAsync(g, 1, algo, rand.New(rand.NewSource(int64(trial))))
		if sync.H.Len() != async.H.Len() {
			t.Fatalf("trial %d: sync %d vs async %d edges", trial, sync.H.Len(), async.H.Len())
		}
		se, ae := sync.H.Edges(), async.H.Edges()
		for i := range se {
			if se[i] != ae[i] {
				t.Fatalf("trial %d: edge sets differ", trial)
			}
		}
	}
}

// The paper's "no synchronization" claim as a property: the async
// spanner is invariant under the delay seed.
func TestQuickAsyncTimingInvariance(t *testing.T) {
	f := func(graphSeed, delaySeedA, delaySeedB int64) bool {
		rng := rand.New(rand.NewSource(graphSeed))
		g := randomConnected(12+rng.Intn(18), 35, rng)
		algo := func(local *graph.Graph, u int) *graph.Tree {
			return domtree.KMIS(local, u, 2)
		}
		a := RunRemSpanAsync(g, 2, algo, rand.New(rand.NewSource(delaySeedA)))
		b := RunRemSpanAsync(g, 2, algo, rand.New(rand.NewSource(delaySeedB)))
		if a.H.Len() != b.H.Len() {
			return false
		}
		ea, eb := a.H.Edges(), b.H.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncSpannerIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(40, 80, rng)
	res := RunRemSpanAsync(g, 1, func(local *graph.Graph, u int) *graph.Tree {
		return domtree.KGreedy(local, u, 1)
	}, rand.New(rand.NewSource(9)))
	if v := spanner.Check(g, res.H.Graph(), spanner.NewStretch(1, 0)); v != nil {
		t.Fatalf("%v", v)
	}
	if res.Messages == 0 || res.Deliveries == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestAsyncRadiusTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomConnected(25, 50, rng)
	algo := func(local *graph.Graph, u int) *graph.Tree {
		return domtree.KMIS(local, u, 2)
	}
	sync := RunRemSpan(g, 2, kmisCSR(2))
	async := RunRemSpanAsync(g, 2, algo, rand.New(rand.NewSource(5)))
	if sync.H.Len() != async.H.Len() {
		t.Fatalf("sync %d vs async %d", sync.H.Len(), async.H.Len())
	}
}
