package distsim

import (
	"math/rand"
	"testing"

	"remspan/internal/domtree"
	"remspan/internal/dynamic"
	"remspan/internal/gen"
	"remspan/internal/geom"
	"remspan/internal/graph"
	"remspan/internal/testutil"
)

// centralizedSpanner is the ground-truth union-of-trees construction on
// one global CSR snapshot.
func centralizedSpanner(g *graph.Graph, build TreeBuilder) *graph.EdgeSet {
	es := graph.NewEdgeSet(g.N())
	c := graph.NewCSR(g)
	s := domtree.NewScratch(g.N())
	for u := 0; u < g.N(); u++ {
		es.AddTree(build(c, s, u))
	}
	return es
}

func edgeSetsEqual(a, b *graph.EdgeSet) bool { return a.Equal(b) }

// testFamilies are the generator families the differential tests sweep:
// UDG, Erdős–Rényi, grid and star — connected and disconnected.
func testFamilies(n int, seed int64) map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	udg := geom.UnitDiskGraph(geom.UniformBox(n, 2, 4, rng), 1.0)
	er := gen.ErdosRenyi(n, 3/float64(n), rng)      // typically disconnected
	erDense := gen.ErdosRenyi(n, 8/float64(n), rng) // mostly connected
	side := 1
	for side*side < n {
		side++
	}
	return map[string]*graph.Graph{
		"udg":      udg, // disconnected stragglers are part of the workload
		"er":       er,
		"er-dense": erDense,
		"grid":     gen.Grid(side, (n+side-1)/side),
		"star":     gen.Star(n),
	}
}

// TestEngineMatchesReference is the engine-level differential: on every
// family and for every production builder, the fast engine must agree
// with the message-level reference on rounds, messages, words and the
// spanner itself — the ball-structure traffic accounting is exact, not
// an estimate.
func TestEngineMatchesReference(t *testing.T) {
	for fam, g := range testFamilies(48, 11) {
		for _, p := range enginePairs() {
			fast := RunRemSpan(g, p.radius, p.build)
			ref := RunRemSpanReference(g, p.radius, p.algo)
			if fast.Rounds != ref.Rounds {
				t.Fatalf("%s/%s: rounds %d vs %d", fam, p.name, fast.Rounds, ref.Rounds)
			}
			if fast.Messages != ref.Messages {
				t.Fatalf("%s/%s: messages %d vs %d", fam, p.name, fast.Messages, ref.Messages)
			}
			if fast.Words != ref.Words {
				t.Fatalf("%s/%s: words %d vs %d", fam, p.name, fast.Words, ref.Words)
			}
			if !edgeSetsEqual(fast.H, ref.H) {
				t.Fatalf("%s/%s: spanners differ (%d vs %d edges)",
					fam, p.name, fast.H.Len(), ref.H.Len())
			}
			for u := range fast.TreeEdges {
				if fast.TreeEdges[u] != ref.TreeEdges[u] {
					t.Fatalf("%s/%s: tree size of root %d differs: %d vs %d",
						fam, p.name, u, fast.TreeEdges[u], ref.TreeEdges[u])
				}
			}
		}
	}
}

// TestRoundsFormula pins the paper's "constant time" claim as a
// property: Rounds == 2(r−1+β)+1 = 2R+1 for every builder family,
// independent of n and of the graph family.
func TestRoundsFormula(t *testing.T) {
	for _, n := range []int{24, 96, 240} {
		for fam, g := range testFamilies(n, int64(n)) {
			for _, p := range enginePairs() {
				res := RunRemSpan(g, p.radius, p.build)
				if want := 2*p.radius + 1; res.Rounds != want {
					t.Fatalf("%s/%s n=%d: rounds=%d, want %d", fam, p.name, n, res.Rounds, want)
				}
			}
		}
	}
}

// TestWordsBelowFullLinkState pins the advertisement-economy claim:
// above a small n, RemSpan's total words stay below full link-state
// flooding on the sparse bounded-degree families the paper targets.
func TestWordsBelowFullLinkState(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{100, 256, 500} {
		side := 1
		for side*side < n {
			side++
		}
		workloads := map[string]*graph.Graph{
			"udg":  geom.UnitDiskGraph(geom.UniformBox(n, 2, 6, rng), 1.0),
			"grid": gen.Grid(side, (n+side-1)/side),
		}
		for fam, g := range workloads {
			for _, p := range enginePairs() {
				res := RunRemSpan(g, p.radius, p.build)
				_, fullWords := FullLinkState(g)
				if res.Words > fullWords {
					t.Fatalf("%s/%s n=%d: RemSpan words %d exceed full link-state %d",
						fam, p.name, n, res.Words, fullWords)
				}
			}
		}
	}
}

// FuzzDistsimEquivalence: RunRemSpan over every gen family (UDG, ER,
// grid, star — connected and disconnected) must produce an edge set
// identical to the centralized CSR builders for all four tree
// algorithms, with full incident knowledge at every node, and agree
// with the message-level reference engine on traffic.
func FuzzDistsimEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(7), uint8(1))
	f.Add(int64(42), uint8(2))
	f.Add(int64(99), uint8(3))
	f.Add(int64(1234), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, famSel uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(16)
		var g *graph.Graph
		switch famSel % 5 {
		case 0:
			g = geom.UnitDiskGraph(geom.UniformBox(n, 2, 3, rng), 1.0)
		case 1:
			g = gen.ErdosRenyi(n, 2.5/float64(n), rng) // disconnected
		case 2:
			g = gen.ErdosRenyi(n, 8/float64(n), rng)
		case 3:
			g = gen.Grid(3+rng.Intn(4), 3+rng.Intn(4))
		default:
			g = gen.Star(n)
		}
		for _, p := range enginePairs() {
			fast := RunRemSpan(g, p.radius, p.build)
			if want := centralizedSpanner(g, p.build); !edgeSetsEqual(fast.H, want) {
				t.Fatalf("%s: distributed spanner differs from centralized (%d vs %d edges)",
					p.name, fast.H.Len(), want.Len())
			}
			if bad := CheckIncidentKnowledge(fast); bad != -1 {
				t.Fatalf("%s: node %d missing incident knowledge", p.name, bad)
			}
			ref := RunRemSpanReference(g, p.radius, p.algo)
			if fast.Messages != ref.Messages || fast.Words != ref.Words || fast.Rounds != ref.Rounds {
				t.Fatalf("%s: traffic diverged from reference: (%d,%d,%d) vs (%d,%d,%d)",
					p.name, fast.Messages, fast.Words, fast.Rounds,
					ref.Messages, ref.Words, ref.Rounds)
			}
		}
	})
}

// TestRefloodMatchesMaintainer drives the engine through random change
// batches and pins every intermediate spanner — and every per-root
// tree — against dynamic.Maintainer ground truth.
func TestRefloodMatchesMaintainer(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, spec := range dynamic.Builders() {
		g := randomConnected(40, 70, rng)
		e := NewEngine(g, spec.Radius, TreeBuilder(spec.Build))
		e.Run()
		m := dynamic.New(g, spec.Radius, spec.Build)
		for step := 0; step < 12; step++ {
			batch := make([]dynamic.Change, 0, 6)
			for len(batch) < cap(batch) {
				u, v := rng.Intn(g.N()), rng.Intn(g.N())
				if u == v {
					continue
				}
				kind := dynamic.AddEdge
				if e.Graph().HasEdge(u, v) {
					kind = dynamic.RemoveEdge
				}
				if rng.Intn(8) == 0 {
					kind = dynamic.FailVertex
				}
				batch = append(batch, dynamic.Change{Kind: kind, U: u, V: v})
			}
			st := e.Reflood(batch)
			m.ApplyBatch(batch)
			if !edgeSetsEqual(e.Spanner(), m.Spanner()) {
				t.Fatalf("%s step %d: engine spanner diverged from maintainer", spec.Name, step)
			}
			for u := 0; u < g.N(); u++ {
				pairs, want := e.TreeOf(u), m.TreeOf(u)
				if len(pairs) != 2*len(want) {
					t.Fatalf("%s step %d root %d: tree size %d vs %d",
						spec.Name, step, u, len(pairs)/2, len(want))
				}
				for i, p := range want {
					if pairs[2*i] != p[0] || pairs[2*i+1] != p[1] {
						t.Fatalf("%s step %d root %d: tree edge %d differs", spec.Name, step, u, i)
					}
				}
			}
			if st.Applied > 0 && st.DirtyRoots == 0 {
				t.Fatalf("%s step %d: applied %d changes but no dirty roots", spec.Name, step, st.Applied)
			}
		}
	}
}

// TestRefloodTrafficSanity: a tick that changes nothing costs nothing;
// a tick that applies changes re-advertises something, and the full
// link-state baseline is never cheaper than the incremental path on a
// non-trivial network.
func TestRefloodTrafficSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := randomConnected(120, 240, rng)
	e := NewEngine(g, 1, kgreedyCSR(1))
	e.Run()

	st := e.Reflood([]dynamic.Change{{Kind: dynamic.RemoveEdge, U: 0, V: 0}})
	if st.Applied != 0 || st.Messages != 0 || st.Words != 0 || st.DirtyRoots != 0 {
		t.Fatalf("no-op tick produced traffic: %+v", st)
	}

	u, v := 0, 1
	for g.HasEdge(u, v) {
		v++
	}
	st = e.Reflood([]dynamic.Change{{Kind: dynamic.AddEdge, U: u, V: v}})
	if st.Applied != 1 || st.Words == 0 || st.DirtyRoots == 0 {
		t.Fatalf("effective tick produced no traffic: %+v", st)
	}
	if st.FullWords < st.Words {
		t.Fatalf("full link-state re-flood (%d words) cheaper than incremental (%d)",
			st.FullWords, st.Words)
	}
}

// TestEngineTickZeroAlloc pins the allocation-free steady state of the
// live path: toggling an edge on a warm engine — dirty sweeps, ball
// extraction, tree rebuilds, re-advertisement accounting — must not
// allocate at all.
func TestEngineTickZeroAlloc(t *testing.T) {
	g := gen.Grid(40, 50) // n=2000
	e := NewEngine(g, 1, kgreedyCSR(1))
	e.Run()
	add := []dynamic.Change{{Kind: dynamic.AddEdge, U: 0, V: 41}}
	del := []dynamic.Change{{Kind: dynamic.RemoveEdge, U: 0, V: 41}}
	for i := 0; i < 4; i++ { // warm delta rows, tree buffers, sweeps
		e.Reflood(add)
		e.Reflood(del)
	}
	testutil.PinAllocs(t, "steady-state toggle pair", 50, func() {
		e.Reflood(add)
		e.Reflood(del)
	})
}

// TestBallDepthInvariant: the engine panics if a builder emits a tree
// deeper than the flooding radius (the protocol could not deliver it).
func TestBallDepthInvariant(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for tree deeper than flooding radius")
		}
	}()
	// MIS with r=3 needs flooding radius 3; radius 2 must be rejected.
	// The gadget forces a depth-3 tree member at root 0: b1 (id 2) joins
	// the MIS first and removes b2, leaving c uncovered until its own
	// turn — added via the depth-3 path 0–1–3–4.
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 3}, {3, 4}})
	RunRemSpan(g, 2, misCSR(3))
}

// TestRefloodLossyConvergence drives the engine through churn with a
// seeded lossy re-advertisement channel: dropped roots keep their
// stale trees (the rest of the network never hears the update), are
// counted in Lost, and retransmit next tick. Once the loss stops, one
// clean tick flushes the retransmission backlog and the spanner — and
// every per-root tree — is bit-identical to the dynamic.Maintainer
// ground truth again. The whole run replays exactly under the seed.
func TestRefloodLossyConvergence(t *testing.T) {
	run := func() (totalLost int, lostTicks int) {
		rng := rand.New(rand.NewSource(61))
		g := randomConnected(40, 70, rng)
		e := NewEngine(g, 1, kgreedyCSR(1))
		e.Run()
		m := dynamic.New(g, 1, dynamic.Builders()[0].Build)

		dropRng := rand.New(rand.NewSource(62))
		drop := func(root int32) bool { return dropRng.Intn(100) < 40 }

		for step := 0; step < 10; step++ {
			batch := make([]dynamic.Change, 0, 6)
			for len(batch) < cap(batch) {
				u, v := rng.Intn(g.N()), rng.Intn(g.N())
				if u == v {
					continue
				}
				kind := dynamic.AddEdge
				if e.Graph().HasEdge(u, v) {
					kind = dynamic.RemoveEdge
				}
				batch = append(batch, dynamic.Change{Kind: kind, U: u, V: v})
			}
			st := e.RefloodLossy(batch, drop)
			m.ApplyBatch(batch)
			if st.Lost > 0 {
				totalLost += st.Lost
				lostTicks++
			}
			if st.Refloods > st.DirtyRoots-st.Lost {
				t.Fatalf("step %d: refloods %d exceed surviving roots %d",
					step, st.Refloods, st.DirtyRoots-st.Lost)
			}
		}

		// Channel heals: one empty tick retransmits the backlog.
		st := e.RefloodLossy(nil, nil)
		if st.Applied != 0 {
			t.Fatalf("heal tick applied %d changes", st.Applied)
		}
		if st.Lost != 0 {
			t.Fatalf("heal tick lost %d re-advertisements on a clean channel", st.Lost)
		}
		if !edgeSetsEqual(e.Spanner(), m.Spanner()) {
			t.Fatal("spanner did not reconverge to maintainer after channel healed")
		}
		for u := 0; u < g.N(); u++ {
			pairs, want := e.TreeOf(u), m.TreeOf(u)
			if len(pairs) != 2*len(want) {
				t.Fatalf("root %d: tree size %d vs %d after heal", u, len(pairs)/2, len(want))
			}
			for i, p := range want {
				if pairs[2*i] != p[0] || pairs[2*i+1] != p[1] {
					t.Fatalf("root %d: tree edge %d differs after heal", u, i)
				}
			}
		}

		// A second clean tick is a true no-op: the backlog is flushed.
		st = e.Reflood(nil)
		if st.DirtyRoots != 0 || st.Refloods != 0 || st.Words != 0 {
			t.Fatalf("post-heal tick not quiescent: %+v", st)
		}
		return totalLost, lostTicks
	}

	lost1, ticks1 := run()
	if lost1 == 0 {
		t.Fatal("lossy channel never dropped a re-advertisement")
	}
	lost2, ticks2 := run()
	if lost1 != lost2 || ticks1 != ticks2 {
		t.Fatalf("lossy run not deterministic: (%d,%d) vs (%d,%d)", lost1, ticks1, lost2, ticks2)
	}
}
