package distsim

import (
	"container/heap"
	"math/rand"

	"remspan/internal/graph"
)

// Asynchronous execution of the RemSpan protocol. The paper stresses
// that "no synchronisation between node decisions is necessary": each
// node's dominating tree depends only on the (monotone) topology
// knowledge it eventually gathers, so the computed spanner must be
// independent of message timing. RunRemSpanAsync delivers every message
// with a random delay and recomputes a node's tree whenever its
// knowledge grows; the final union must equal the synchronous (and
// centralized) result — asserted in tests.

// asyncEvent is a message in flight.
type asyncEvent struct {
	at      float64 // delivery time
	seq     int64   // tie-break for determinism
	to      int32
	src     int32 // whose neighbor list this carries
	list    []int32
	hopsTTL int
}

type eventQueue []asyncEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(asyncEvent)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// AsyncResult reports an asynchronous run.
type AsyncResult struct {
	Messages   int64
	Deliveries int64
	Recomputes int64          // tree recomputations triggered by late knowledge
	H          *graph.EdgeSet // final spanner
}

// RunRemSpanAsync floods neighbor lists with i.i.d. random delays in
// [1, 2) per link (seeded rng), with TTL radius hops. Each node
// recomputes its dominating tree every time new knowledge arrives;
// only the final trees are collected. Timing must not change the
// result.
func RunRemSpanAsync(g *graph.Graph, radius int, algo TreeAlgo, rng *rand.Rand) *AsyncResult {
	if radius < 1 {
		panic("distsim: flooding radius must be >= 1")
	}
	n := g.N()
	known := make([]map[int32][]int32, n)
	for u := 0; u < n; u++ {
		known[u] = make(map[int32][]int32)
		list := append([]int32(nil), g.Neighbors(u)...)
		known[u][int32(u)] = list
	}

	res := &AsyncResult{}
	var q eventQueue
	var seq int64
	send := func(at float64, from, to int, src int32, list []int32, ttl int) {
		seq++
		res.Messages++
		heap.Push(&q, asyncEvent{
			at: at + 1 + rng.Float64(), seq: seq,
			to: int32(to), src: src, list: list, hopsTTL: ttl,
		})
	}
	// Initial emission: every node floods its own list with TTL radius.
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			send(0, u, int(v), int32(u), known[u][int32(u)], radius-1)
		}
	}
	dirty := make([]bool, n)
	for q.Len() > 0 {
		ev := heap.Pop(&q).(asyncEvent)
		res.Deliveries++
		u := int(ev.to)
		if _, ok := known[u][ev.src]; ok {
			continue // duplicate
		}
		known[u][ev.src] = ev.list
		dirty[u] = true
		if ev.hopsTTL > 0 {
			for _, v := range g.Neighbors(u) {
				send(ev.at, u, int(v), ev.src, ev.list, ev.hopsTTL-1)
			}
		}
	}
	// Compute final trees (recomputation count estimates the wasted
	// work an eager implementation would do: one recompute per
	// knowledge change).
	h := graph.NewEdgeSet(n)
	for u := 0; u < n; u++ {
		local := graph.New(n)
		for src, list := range known[u] {
			for _, v := range list {
				local.AddEdge(int(src), int(v))
			}
		}
		res.Recomputes += int64(len(known[u]))
		t := algo(local, u)
		h.AddTree(t)
	}
	res.H = h
	return res
}
