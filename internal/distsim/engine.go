package distsim

import (
	"fmt"
	"runtime"
	"slices"

	"remspan/internal/domtree"
	"remspan/internal/dynamic"
	"remspan/internal/graph"
	"remspan/internal/sched"
)

// TreeBuilder builds the dominating tree for a root on a graph.View —
// the production domtree *CSR builders. The engine hands each builder
// the ball-extracted local view of its root (what the node learned from
// flooding), so the build is exactly the node-local computation of
// Algorithm 3; the locality contract guarantees it equals the
// centralized result (pinned by FuzzDistsimEquivalence). The signature
// matches dynamic.TreeBuilder, so dynamic.Builders() parameterizes both
// pipelines.
type TreeBuilder func(c graph.View, s *domtree.Scratch, u int) *graph.Tree

// Result summarizes a RemSpan run (either engine). A fast-engine
// Result shares the engine's tree storage and topology view rather
// than copying them, so it — in particular CheckIncidentKnowledge on
// it — is valid only until the engine's next Run or Reflood (H and
// TreeEdges are snapshots and stay valid). RunRemSpan results are
// never invalidated: the helper's engine is not retained.
type Result struct {
	Rounds    int            // total synchronous rounds: 2(r−1+β)+1
	Messages  int64          // point-to-point messages sent
	Words     int64          // total payload words sent
	H         *graph.EdgeSet // the computed remote-spanner (union of trees)
	TreeEdges []int          // per-root tree sizes

	// Fast-engine state for incident-knowledge verification.
	view   graph.View
	radius int
	trees  [][]int32 // per-root (child, parent) pairs

	// Reference-engine state: per node, the spanner edges it learned it
	// belongs to, gathered message by message.
	incident []*graph.EdgeSet
}

// engineWorker is the per-goroutine state of the fan-out passes: ball
// extraction, tree construction, bounded traffic sweeps and local
// message/word tallies, merged once per pass.
type engineWorker struct {
	ball    *graph.BallScratch
	scratch *domtree.Scratch
	bfs     *graph.BFSScratch
	treeBuf []int32
	msgs    int64
	words   int64
}

func newEngineWorker(n int) *engineWorker {
	return &engineWorker{
		ball:    graph.NewBallScratch(n),
		scratch: domtree.NewScratch(n),
		bfs:     graph.NewBFSScratch(n),
	}
}

// Engine is the allocation-conscious RemSpan simulation engine: flat
// per-root tree storage, pooled per-worker scratch (ball sub-CSR
// extraction, domtree scratch, bounded-BFS traffic sweeps), and a
// patched CSRDelta view of the live topology. A fresh engine runs the
// full protocol (Run); a live network then feeds it topology diffs
// (Reflood) and only the dirty roots recompute and re-advertise.
//
// Traffic is not counted by materializing messages: synchronous
// flooding with duplicate suppression is fully determined by the ball
// structure — node u forwards the neighbor list (and later the tree) of
// every source within distance R−1 exactly once — so the per-node
// tallies are computed from bounded BFS sweeps. The message-level
// reference engine (RunRemSpanReference) pins the equality.
type Engine struct {
	g      *graph.Graph    // mutable mirror (dirty sweeps, API reads)
	delta  *graph.CSRDelta // patched snapshot the builders and sweeps read
	base   *graph.CSR      // the initial snapshot (EdgeMarks fast path)
	radius int
	build  TreeBuilder

	trees   [][]int32 // per-root (child, parent) pairs, capacity reused
	dirty   *graph.BFSScratch
	workers []*engineWorker
	patched bool // any change applied since the base snapshot

	// Reusable live-tick state.
	readv      []int32 // vertices whose adjacency changed this tick
	readvMark  []uint32
	readvEpoch uint32
	refloods   []int32 // dirty roots whose tree actually changed
	changedBuf []bool  // per-dirty-root rebuild results, capacity reused

	// Lossy re-flood state: roots whose re-advertisement was dropped,
	// retransmitted (rebuilt against the then-current topology) next
	// tick. Buffers reused across ticks.
	pend, pendNext []int32
	rootsBuf       []int32

	// Shard-scheduler fan-out state.
	pool       sched.Pool
	job        func(w *engineWorker, i int) // per-run job the shard body reads
	fanBody    func(w, lo, hi int)          // prebound shard body
	forceWidth int                          // test hook: >0 overrides the worker count
}

// NewEngine returns an engine over a clone of g. radius is the
// protocol's flooding radius R = r−1+β.
func NewEngine(g *graph.Graph, radius int, build TreeBuilder) *Engine {
	if radius < 1 {
		panic("distsim: flooding radius must be >= 1")
	}
	n := g.N()
	e := &Engine{
		g:         g.Clone(),
		base:      graph.NewCSR(g),
		radius:    radius,
		build:     build,
		trees:     make([][]int32, n),
		dirty:     graph.NewBFSScratch(n),
		readvMark: make([]uint32, n),
	}
	e.delta = graph.NewCSRDelta(e.base)
	return e
}

// Graph returns the engine's current topology (do not mutate directly —
// feed changes through Reflood).
func (e *Engine) Graph() *graph.Graph { return e.g }

// Radius returns the flooding radius R.
func (e *Engine) Radius() int { return e.radius }

// TreeOf returns root u's current tree as flat (child, parent) pairs
// (shared slice, valid until the next Run/Reflood).
func (e *Engine) TreeOf(u int) []int32 { return e.trees[u] }

// Spanner materializes the current union-of-trees spanner.
func (e *Engine) Spanner() *graph.EdgeSet {
	es := graph.NewEdgeSet(e.g.N())
	for _, pairs := range e.trees {
		for i := 0; i+1 < len(pairs); i += 2 {
			es.Add(int(pairs[i]), int(pairs[i+1]))
		}
	}
	return es
}

func (e *Engine) ensureWorkers(k int) []*engineWorker {
	for len(e.workers) < k {
		e.workers = append(e.workers, newEngineWorker(e.g.N()))
	}
	return e.workers[:k]
}

// workerCount sizes a fan-out over jobs roots: serial below the batch
// threshold (the dynamic.ApplyBatch pattern), one worker per core
// otherwise.
func workerCount(jobs int) int {
	const parallelThreshold = 32
	if jobs < parallelThreshold {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > jobs {
		w = jobs
	}
	return w
}

// fanShard runs the per-run job over indices [lo, hi) on worker w's
// pooled engineWorker. Jobs write per-index slots or worker-local
// tallies, so the stealing schedule cannot affect results.
//
//remspan:hotpath
func (e *Engine) fanShard(w, lo, hi int) {
	wrk := e.workers[w]
	for i := lo; i < hi; i++ {
		e.job(wrk, i)
	}
}

// fanOut runs job(worker, index) for every index in [0, jobs) across
// the engine's worker pool on the shard scheduler, serially when the
// batch is small (the steady-state live-tick path — zero allocations,
// no synchronization).
func (e *Engine) fanOut(jobs int, job func(w *engineWorker, i int)) {
	nw := workerCount(jobs)
	if e.forceWidth > 0 && jobs > 0 {
		if nw = e.forceWidth; nw > jobs {
			nw = jobs
		}
	}
	workers := e.ensureWorkers(nw)
	if nw == 1 {
		w := workers[0]
		for i := 0; i < jobs; i++ {
			job(w, i)
		}
		return
	}
	if e.fanBody == nil {
		e.fanBody = e.fanShard
	}
	e.job = job
	// Ball extraction + tree build per index: heavy items, fine shards.
	span := jobs / (nw * 8)
	if span < 1 {
		span = 1
	}
	e.pool.RunSpan(jobs, nw, span, e.fanBody)
	e.job = nil
}

// rebuildRoot recomputes root u's tree from its ball-extracted local
// view and stores the (child, parent) pairs in global ids, reporting
// whether the tree changed. The depth check enforces the protocol
// invariant the tree-flooding accounting and incident-knowledge
// argument rest on: a flooded tree never outgrows the flooding radius.
func (w *engineWorker) rebuildRoot(e *Engine, u int) bool {
	local, root, members := w.ball.Extract(e.delta, u, e.radius)
	t := e.build(local, w.scratch, root)
	buf := w.treeBuf[:0]
	for _, lv := range t.Nodes() {
		if int(t.Depth(int(lv))) > e.radius {
			panic(fmt.Sprintf("distsim: tree of root %d deeper than flooding radius %d", u, e.radius))
		}
		if lp := t.Parent(int(lv)); lp >= 0 {
			buf = append(buf, members[lv], members[lp])
		}
	}
	w.treeBuf = buf
	if slices.Equal(buf, e.trees[u]) {
		return false
	}
	e.trees[u] = append(e.trees[u][:0], buf...)
	return true
}

// tallyRoot adds node u's share of the protocol traffic: one hello
// broadcast, plus one forward of the neighbor list and one of the tree
// of every source within distance R−1 (the sources u has learned by the
// round it still has forwarding rounds left for — synchronous flooding
// with duplicate suppression forwards each item exactly once).
func (w *engineWorker) tallyRoot(e *Engine, u int) {
	degU := int64(e.delta.Degree(u))
	if degU == 0 {
		return
	}
	w.msgs += degU      // hello broadcast
	w.words += 3 * degU // [id] + 2 framing words
	if e.radius == 1 {
		// B(u, 0) = {u}: forward own list and own tree only.
		w.msgs += 2 * degU
		w.words += degU * (degU + 4)
		w.words += degU * (2*int64(len(e.trees[u])/2) + 4)
		return
	}
	_, _, visited := w.bfs.BoundedView(e.delta, u, e.radius-1)
	for _, src := range visited {
		w.msgs += 2 * degU
		w.words += degU * (int64(e.delta.Degree(int(src))) + 4)
		w.words += degU * (2*int64(len(e.trees[src])/2) + 4)
	}
}

// Run executes the full protocol on the current topology: every root
// recomputes its tree from its flooded local view, the spanner is the
// union, and the traffic of the hello round, R topology-flooding rounds
// and R tree-flooding rounds is tallied. Rounds = 2R+1 independent of
// the graph — the paper's headline claim.
func (e *Engine) Run() *Result {
	n := e.g.N()
	e.fanOut(n, func(w *engineWorker, u int) {
		w.rebuildRoot(e, u)
	})
	for _, w := range e.workers {
		w.msgs, w.words = 0, 0
	}
	e.fanOut(n, func(w *engineWorker, u int) {
		w.tallyRoot(e, u)
	})
	res := &Result{
		Rounds:    2*e.radius + 1,
		H:         e.spannerSet(),
		TreeEdges: make([]int, n),
		view:      e.delta,
		radius:    e.radius,
		trees:     e.trees,
	}
	for u := 0; u < n; u++ {
		res.TreeEdges[u] = len(e.trees[u]) / 2
	}
	for _, w := range e.workers {
		res.Messages += w.msgs
		res.Words += w.words
	}
	return res
}

// spannerSet unions the trees — via allocation-free CSR edge marks
// while the engine still sits on its base snapshot, via the edge set
// directly once the topology has been patched.
func (e *Engine) spannerSet() *graph.EdgeSet {
	if e.patched {
		return e.Spanner()
	}
	marks := graph.NewEdgeMarks(e.base)
	for _, pairs := range e.trees {
		for i := 0; i+1 < len(pairs); i += 2 {
			marks.Add(int(pairs[i]), int(pairs[i+1]))
		}
	}
	return marks.EdgeSet()
}

// RunRemSpan executes Algorithm 3 on every node of g simultaneously
// with the fast engine:
//
//	round 1:            hello — send own id on every link
//	rounds 2..R+1:      flood neighbor lists to radius R = r−1+β
//	(local)             compute the dominating tree from the local view
//	rounds R+2..2R+1:   flood the tree to radius R
//
// The returned spanner is the union of all trees; it equals the
// centralized construction because the tree builders are local, and
// the traffic tallies equal the message-level reference engine
// (RunRemSpanReference) — both pinned by tests.
func RunRemSpan(g *graph.Graph, radius int, build TreeBuilder) *Result {
	return NewEngine(g, radius, build).Run()
}

// CheckIncidentKnowledge verifies the protocol's correctness condition:
// every node ends up knowing exactly the spanner edges incident to it,
// so it can advertise/route over them. For the fast engine the learned
// set is reconstructed from the flood structure (node u hears the trees
// of every root within distance R); the reference engine gathered it
// message by message. Returns the first offending node (-1 when the
// condition holds).
func CheckIncidentKnowledge(res *Result) int {
	if res.incident != nil {
		return checkIncidentReference(res)
	}
	hg := res.H.Graph()
	n := hg.N()
	bfs := graph.NewBFSScratch(n)
	var heard []int32
	for u := 0; u < n; u++ {
		_, _, roots := bfs.BoundedView(res.view, u, res.radius)
		heard = heard[:0]
		for _, w := range roots {
			for pairs, i := res.trees[w], 0; i+1 < len(pairs); i += 2 {
				a, b := pairs[i], pairs[i+1]
				switch {
				case int(a) == u:
					heard = append(heard, b)
				case int(b) == u:
					heard = append(heard, a)
				}
			}
		}
		slices.Sort(heard)
		heard = slices.Compact(heard)
		if !slices.Equal(heard, hg.Neighbors(u)) {
			return u
		}
	}
	return -1
}

func checkIncidentReference(res *Result) int {
	h := res.H
	for u, inc := range res.incident {
		// Everything the node learned must be incident and in H.
		for _, e := range inc.Edges() {
			if int(e[0]) != u && int(e[1]) != u {
				return u
			}
			if !h.Has(int(e[0]), int(e[1])) {
				return u
			}
		}
		// Every incident spanner edge must have been learned.
		for _, e := range h.Edges() {
			if int(e[0]) == u || int(e[1]) == u {
				if !inc.Has(int(e[0]), int(e[1])) {
					return u
				}
			}
		}
	}
	return -1
}

// FullLinkState returns the message/word cost of classic full
// link-state flooding (every node floods its neighbor list to the
// entire network, OSPF-style) for comparison: every node retransmits
// every list once.
func FullLinkState(v graph.View) (messages, words int64) {
	n := v.N()
	twoM := int64(2 * v.M())
	// Hello round.
	messages = twoM
	words = twoM * 3
	// Each of the n lists is retransmitted by every node on every link.
	messages += int64(n) * twoM
	for src := 0; src < n; src++ {
		words += twoM * int64(v.Degree(src)+4)
	}
	return messages, words
}

// TickStats reports one live re-advertisement tick.
type TickStats struct {
	Applied    int   // topology changes that had an effect
	DirtyRoots int   // roots due a rebuild: dirty balls + lost-re-flood retransmissions
	Refloods   int   // due roots whose tree actually changed and re-flooded
	Lost       int   // re-advertisements dropped this tick (retransmitted next tick)
	Messages   int64 // incremental RemSpan re-advertisement messages
	Words      int64 // incremental RemSpan re-advertisement words
	FullMsgs   int64 // full link-state re-flood of the same changes
	FullWords  int64
}

// beginTick starts a new epoch of the changed-vertex accumulator.
func (e *Engine) beginTick() {
	if e.readvEpoch >= 1<<31 {
		for i := range e.readvMark {
			e.readvMark[i] = 0
		}
		e.readvEpoch = 0
	}
	e.readvEpoch++
	e.readv = e.readv[:0]
	e.refloods = e.refloods[:0]
}

func (e *Engine) noteReadv(x int) {
	if e.readvMark[x] != e.readvEpoch {
		e.readvMark[x] = e.readvEpoch
		e.readv = append(e.readv, int32(x))
	}
}

// Reflood applies a batch of topology changes and simulates the
// incremental re-advertisement a live RemSpan deployment performs:
// vertices whose adjacency changed re-flood their neighbor lists to
// radius R, and the dirty roots — accumulated by the exact radius-R
// (R+1 for vertex failures) dirty-ball rule of dynamic.ApplyChange —
// recompute their trees from their refreshed local views and re-flood
// only the trees that changed. Non-dirty roots keep their trees by the
// locality argument, so after every tick the engine's spanner is
// bit-identical to a full recomputation (pinned against
// dynamic.Maintainer ground truth in tests).
//
// The FullMsgs/FullWords fields carry the comparison arm: an OSPF-style
// protocol re-floods each changed vertex's link-state advertisement
// through the entire network.
func (e *Engine) Reflood(changes []dynamic.Change) TickStats {
	return e.RefloodLossy(changes, nil)
}

// RefloodLossy is Reflood under an unreliable re-advertisement
// channel: drop (seeded by the caller, so runs replay exactly) is
// consulted once per due root, and a dropped root's re-flood is lost —
// its tree is not recomputed or re-advertised this tick, the rest of
// the network keeps its previous tree, and the root retransmits next
// tick, rebuilding against the topology current then (periodic
// re-advertisement, the standard link-state recovery). Lost roots are
// counted in TickStats.Lost and merged into the next tick's due set,
// so once the loss stops the spanner reconverges to the maintainer
// ground truth within one tick (pinned by
// TestRefloodLossyConvergence). A nil drop is exactly Reflood.
func (e *Engine) RefloodLossy(changes []dynamic.Change, drop func(root int32) bool) TickStats {
	e.beginTick()
	e.dirty.ResetUnion()
	var st TickStats
	for _, ch := range changes {
		if ch.Kind == dynamic.FailVertex {
			// Capture the pre-change neighborhood: those vertices lose a
			// link and must re-advertise too.
			for _, v := range e.g.Neighbors(ch.U) {
				e.noteReadv(int(v))
			}
		}
		if dynamic.ApplyChange(e.g, e.delta, e.dirty, e.radius, ch) {
			st.Applied++
			e.noteReadv(ch.U)
			if ch.Kind != dynamic.FailVertex {
				e.noteReadv(ch.V)
			}
		}
	}
	if st.Applied == 0 && len(e.pend) == 0 {
		return st
	}
	if st.Applied > 0 {
		e.patched = true
	}

	roots := e.dirty.UnionSorted()
	if len(e.pend) > 0 || drop != nil {
		// Work on an engine-owned copy: merge in last tick's lost
		// roots, then carve out this tick's losses. The scratch-owned
		// union slice is never mutated.
		merged := append(e.rootsBuf[:0], roots...)
		merged = append(merged, e.pend...)
		slices.Sort(merged)
		merged = slices.Compact(merged)
		e.rootsBuf = merged
		e.pendNext = e.pendNext[:0]
		kept := merged[:0]
		for _, u := range merged {
			if drop != nil && drop(u) {
				e.pendNext = append(e.pendNext, u)
				continue
			}
			kept = append(kept, u)
		}
		st.DirtyRoots = len(kept) + len(e.pendNext)
		st.Lost = len(e.pendNext)
		e.pend, e.pendNext = e.pendNext, e.pend[:0]
		roots = kept
	} else {
		st.DirtyRoots = len(roots)
	}
	if workerCount(len(roots)) == 1 {
		// Direct loop — the steady-state zero-allocation path (even the
		// fan-out closure would allocate; pinned by TestEngineTickZeroAlloc).
		w := e.ensureWorkers(1)[0]
		for _, u := range roots {
			if w.rebuildRoot(e, int(u)) {
				e.refloods = append(e.refloods, u)
			}
		}
	} else {
		// changed is written per index by exactly one fan-out worker
		// (the atomic counter hands each index out once) and read only
		// after the barrier, so plain bools in a reusable engine-owned
		// buffer suffice. Large ticks allocate only the fan-out's
		// goroutine startup — never anything proportional to n.
		if cap(e.changedBuf) < len(roots) {
			e.changedBuf = make([]bool, len(roots))
		}
		changed := e.changedBuf[:len(roots)]
		e.fanOut(len(roots), func(w *engineWorker, i int) {
			changed[i] = w.rebuildRoot(e, int(roots[i]))
		})
		for i, u := range roots {
			if changed[i] {
				e.refloods = append(e.refloods, u)
			}
		}
	}
	st.Refloods = len(e.refloods)

	// Traffic. Incremental RemSpan: changed vertices hello + re-flood
	// their lists to radius R; changed trees re-flood to radius R. Full
	// link-state: every changed vertex's LSA re-floods network-wide.
	w := e.ensureWorkers(1)[0]
	twoM := int64(2 * e.delta.M())
	for _, x := range e.readv {
		degX := int64(e.delta.Degree(int(x)))
		st.Messages += degX // hello broadcast on the new links
		st.Words += 3 * degX
		fm, fw := e.floodCost(w, int(x), degX+4)
		st.Messages += fm
		st.Words += fw
		st.FullMsgs += degX + twoM
		st.FullWords += 3*degX + twoM*(degX+4)
	}
	for _, u := range e.refloods {
		fm, fw := e.floodCost(w, int(u), 2*int64(len(e.trees[u])/2)+4)
		st.Messages += fm
		st.Words += fw
	}
	return st
}

// floodCost returns the cost of flooding one payload of the given word
// count (framing included) from src to radius R: every node within
// distance R−1 retransmits it once on all its links.
//
//remspan:hotpath
func (e *Engine) floodCost(w *engineWorker, src int, payload int64) (msgs, words int64) {
	if e.radius == 1 {
		d := int64(e.delta.Degree(src))
		return d, d * payload
	}
	_, _, visited := w.bfs.BoundedView(e.delta, src, e.radius-1)
	for _, y := range visited {
		d := int64(e.delta.Degree(int(y)))
		msgs += d
		words += d * payload
	}
	return msgs, words
}
