package distsim

import (
	"math/rand"
	"testing"

	"remspan/internal/domtree"
	"remspan/internal/dynamic"
	"remspan/internal/gen"
	"remspan/internal/geom"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

func randomConnected(n, extra int, rng *rand.Rand) *graph.Graph {
	g := gen.RandomTree(n, rng)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// enginePair couples the production builder the fast engine runs with
// the map-based algorithm the reference engine runs — the same
// (builder, radius) table as dynamic.Builders().
type enginePair struct {
	name   string
	radius int
	build  TreeBuilder
	algo   TreeAlgo
}

func enginePairs() []enginePair {
	specs := dynamic.Builders()
	algos := map[string]TreeAlgo{
		"kgreedy1": func(local *graph.Graph, u int) *graph.Tree { return domtree.KGreedy(local, u, 1) },
		"kmis2":    func(local *graph.Graph, u int) *graph.Tree { return domtree.KMIS(local, u, 2) },
		"mis3":     func(local *graph.Graph, u int) *graph.Tree { return domtree.MIS(local, nil, u, 3) },
		"greedy3":  func(local *graph.Graph, u int) *graph.Tree { return domtree.Greedy(local, nil, u, 3, 1) },
	}
	out := make([]enginePair, 0, len(specs))
	for _, s := range specs {
		out = append(out, enginePair{name: s.Name, radius: s.Radius, build: TreeBuilder(s.Build), algo: algos[s.Name]})
	}
	return out
}

func kgreedyCSR(k int) TreeBuilder {
	return func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.KGreedyCSR(c, s, u, k)
	}
}

func kmisCSR(k int) TreeBuilder {
	return func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.KMISCSR(c, s, u, k)
	}
}

func misCSR(r int) TreeBuilder {
	return func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.MISCSR(c, s, u, r)
	}
}

func TestSimSendRules(t *testing.T) {
	g := gen.Path(3)
	s := NewSim(g)
	s.Send(0, 1, KindHello, []int32{0})
	if s.Messages != 1 || s.Words != 3 {
		t.Fatalf("messages=%d words=%d", s.Messages, s.Words)
	}
	in := s.Step()
	if len(in[1]) != 1 || in[1][0].From != 0 {
		t.Fatal("message not delivered")
	}
	if s.Round != 1 {
		t.Fatalf("round=%d", s.Round)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-link send")
		}
	}()
	s.Send(0, 2, KindHello, nil)
}

func TestSimBroadcast(t *testing.T) {
	g := gen.Star(5)
	s := NewSim(g)
	s.Broadcast(0, KindHello, []int32{0})
	if s.Messages != 4 {
		t.Fatalf("messages=%d, want 4", s.Messages)
	}
	in := s.Step()
	for v := 1; v < 5; v++ {
		if len(in[v]) != 1 {
			t.Fatalf("leaf %d got %d messages", v, len(in[v]))
		}
	}
}

func TestRemSpanMatchesCentralizedMPR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(15+rng.Intn(25), 40, rng)
		res := RunRemSpan(g, 1, kgreedyCSR(1))
		want := spanner.Exact(g)
		if res.H.Len() != want.Edges() {
			t.Fatalf("trial %d: distributed %d edges, centralized %d",
				trial, res.H.Len(), want.Edges())
		}
		de, ce := res.H.Edges(), want.H.Edges()
		for i := range de {
			if de[i] != ce[i] {
				t.Fatalf("trial %d: edge sets differ at %d", trial, i)
			}
		}
		if res.Rounds != 3 { // 2(r−1+β)+1 with r=2, β=0
			t.Fatalf("rounds=%d, want 3", res.Rounds)
		}
	}
}

func TestRemSpanMatchesCentralizedLowStretch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		g := randomConnected(20+rng.Intn(20), 40, rng)
		r := 3 // eps = 0.5
		res := RunRemSpan(g, r, misCSR(r))
		want := spanner.LowStretch(g, 0.5)
		if res.H.Len() != want.Edges() {
			t.Fatalf("trial %d: distributed %d edges, centralized %d",
				trial, res.H.Len(), want.Edges())
		}
		if res.Rounds != 2*r+1 {
			t.Fatalf("rounds=%d, want %d", res.Rounds, 2*r+1)
		}
	}
}

func TestRemSpanMatchesCentralizedTwoConnecting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(30, 60, rng)
	res := RunRemSpan(g, 2, kmisCSR(2))
	want := spanner.TwoConnecting(g)
	if res.H.Len() != want.Edges() {
		t.Fatalf("distributed %d edges, centralized %d", res.H.Len(), want.Edges())
	}
	if res.Rounds != 5 { // 2(2-1+1)+1
		t.Fatalf("rounds=%d, want 5", res.Rounds)
	}
}

func TestIncidentKnowledge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		g := randomConnected(15+rng.Intn(20), 35, rng)
		res := RunRemSpan(g, 1, kgreedyCSR(2))
		if bad := CheckIncidentKnowledge(res); bad != -1 {
			t.Fatalf("trial %d: node %d missing incident knowledge", trial, bad)
		}
		ref := RunRemSpanReference(g, 1, func(local *graph.Graph, u int) *graph.Tree {
			return domtree.KGreedy(local, u, 2)
		})
		if bad := CheckIncidentKnowledge(ref); bad != -1 {
			t.Fatalf("trial %d: reference node %d missing incident knowledge", trial, bad)
		}
	}
}

func TestConstantRounds(t *testing.T) {
	// Rounds must not grow with n — the paper's headline claim. Pinned
	// per builder family in TestRoundsFormula; this is the UDG workload.
	rng := rand.New(rand.NewSource(5))
	var rounds []int
	for _, n := range []int{20, 60, 140} {
		pts := geom.UniformBox(n, 2, 3, rng)
		g := geom.UnitDiskGraph(pts, 1.2)
		keep, _ := graph.LargestComponent(g)
		g = g.InducedSubgraph(keep)
		if g.N() < 5 {
			t.Skip("degenerate UDG")
		}
		res := RunRemSpan(g, 1, kgreedyCSR(1))
		rounds = append(rounds, res.Rounds)
	}
	for _, r := range rounds {
		if r != rounds[0] {
			t.Fatalf("rounds vary with n: %v", rounds)
		}
	}
}

func TestRemSpanCheaperThanFullLinkState(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := geom.UniformBox(150, 2, 3, rng)
	g := geom.UnitDiskGraph(pts, 1.0)
	keep, _ := graph.LargestComponent(g)
	g = g.InducedSubgraph(keep)
	res := RunRemSpan(g, 1, kgreedyCSR(1))
	_, fullWords := FullLinkState(g)
	if res.Words >= fullWords {
		t.Fatalf("RemSpan words %d not below full link-state %d", res.Words, fullWords)
	}
}

func TestTreeFloodReachesAllMembers(t *testing.T) {
	// Every tree edge endpoint lies within the flooding radius of the
	// root (the engine's depth invariant), so the per-node incident
	// knowledge must cover the entire union H — which is exactly what
	// CheckIncidentKnowledge reconstructs from the flood structure.
	rng := rand.New(rand.NewSource(7))
	g := randomConnected(25, 50, rng)
	res := RunRemSpan(g, 2, kmisCSR(2))
	if bad := CheckIncidentKnowledge(res); bad != -1 {
		t.Fatalf("node %d lacks incident knowledge", bad)
	}
	ref := RunRemSpanReference(g, 2, func(local *graph.Graph, u int) *graph.Tree {
		return domtree.KMIS(local, u, 2)
	})
	union := graph.NewEdgeSet(g.N())
	for _, inc := range ref.incident {
		union.Union(inc)
	}
	if union.Len() != ref.H.Len() {
		t.Fatalf("incident union %d edges, spanner %d", union.Len(), ref.H.Len())
	}
}
