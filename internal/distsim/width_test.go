package distsim

import (
	"math/rand"
	"testing"

	"remspan/internal/dynamic"
)

// TestEngineWidthDeterminism pins the engine's fan-out: a full
// simulated run and a sequence of reflood ticks produce identical
// traffic accounting, spanners and trees at forced worker widths 1, 2
// and 7. Traffic counters are per-node slots merged after the fan-out,
// so the stealing schedule must be invisible in every total.
func TestEngineWidthDeterminism(t *testing.T) {
	for fam, g := range testFamilies(60, 31) {
		for _, p := range enginePairs() {
			widths := []int{1, 2, 7}
			engines := make([]*Engine, len(widths))
			results := make([]*Result, len(widths))
			for i, w := range widths {
				engines[i] = NewEngine(g.Clone(), p.radius, p.build)
				engines[i].forceWidth = w
				results[i] = engines[i].Run()
			}
			ref := results[0]
			for i, res := range results[1:] {
				if res.Rounds != ref.Rounds || res.Messages != ref.Messages || res.Words != ref.Words {
					t.Fatalf("%s/%s width=%d: traffic (%d,%d,%d) differs from serial (%d,%d,%d)",
						fam, p.name, widths[i+1], res.Rounds, res.Messages, res.Words,
						ref.Rounds, ref.Messages, ref.Words)
				}
				if !edgeSetsEqual(res.H, ref.H) {
					t.Fatalf("%s/%s width=%d: spanner differs from serial", fam, p.name, widths[i+1])
				}
			}

			// Churn ticks: identical change batches must reflood the same
			// words at every width.
			rng := rand.New(rand.NewSource(32))
			n := g.N()
			for tick := 0; tick < 4; tick++ {
				batch := make([]dynamic.Change, 0, 10)
				for len(batch) < 10 {
					u, v := rng.Intn(n), rng.Intn(n)
					if u == v {
						continue
					}
					kind := dynamic.AddEdge
					if engines[0].Graph().HasEdge(u, v) && rng.Intn(2) == 0 {
						kind = dynamic.RemoveEdge
					}
					batch = append(batch, dynamic.Change{Kind: kind, U: u, V: v})
				}
				stats := make([]TickStats, len(widths))
				for i, e := range engines {
					stats[i] = e.Reflood(batch)
				}
				for i := 1; i < len(widths); i++ {
					if stats[i] != stats[0] {
						t.Fatalf("%s/%s tick %d width=%d: stats %+v differ from serial %+v",
							fam, p.name, tick, widths[i], stats[i], stats[0])
					}
				}
			}
		}
	}
}
