package distsim

import (
	"fmt"
	"math"
	"math/rand"

	"remspan/internal/dynamic"
	"remspan/internal/mobility"
)

// LiveConfig parameterizes a live-network run: a random-waypoint fleet
// on a square sized for the target mean unit-disk degree (connection
// radius 1), with the RemSpan protocol re-advertising incrementally
// after every mobility tick.
type LiveConfig struct {
	N                  int
	Degree             float64 // target mean UDG degree (sets side = √(πN/Degree))
	MinSpeed, MaxSpeed float64 // distance per tick, in units of the connection radius
	Ticks              int
	Seed               int64
	Radius             int // flooding radius R = r−1+β of the construction
	Build              TreeBuilder
}

// LiveReport aggregates a live run: the cold-start full advertisement
// plus per-tick incremental re-advertisement totals against the full
// link-state re-flood baseline.
type LiveReport struct {
	Initial    *Result // the cold-start full protocol run
	Ticks      int
	Changes    int64 // topology changes applied across all ticks
	DirtyRoots int64
	Refloods   int64
	Messages   int64 // incremental RemSpan re-advertisement traffic
	Words      int64
	FullMsgs   int64 // full link-state re-flood of the same change stream
	FullWords  int64
	PerTick    []TickStats
}

// ConfigError reports which LiveConfig field made a live run
// unrunnable, with the offending value — a serving process can log and
// reject the request instead of dying on a panic.
type ConfigError struct {
	Field  string
	Value  any
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("distsim: bad live config: %s=%v (%s)", e.Field, e.Value, e.Reason)
}

// validate checks every LiveConfig precondition the run (and the
// mobility primitives it constructs) relies on.
func (cfg *LiveConfig) validate() error {
	switch {
	case cfg.N < 2:
		return &ConfigError{Field: "N", Value: cfg.N, Reason: "need at least 2 nodes"}
	case cfg.Degree <= 0:
		return &ConfigError{Field: "Degree", Value: cfg.Degree, Reason: "target mean degree must be positive"}
	case cfg.Ticks < 0:
		return &ConfigError{Field: "Ticks", Value: cfg.Ticks, Reason: "tick count cannot be negative"}
	case cfg.MinSpeed < 0:
		return &ConfigError{Field: "MinSpeed", Value: cfg.MinSpeed, Reason: "speed cannot be negative"}
	case cfg.MaxSpeed < cfg.MinSpeed:
		return &ConfigError{Field: "MaxSpeed", Value: cfg.MaxSpeed, Reason: "below MinSpeed"}
	case cfg.Radius < 1:
		return &ConfigError{Field: "Radius", Value: cfg.Radius, Reason: "flooding radius must be >= 1"}
	case cfg.Build == nil:
		return &ConfigError{Field: "Build", Value: nil, Reason: "tree builder is required"}
	}
	return nil
}

// LiveRun drives a mobile network: each tick the waypoint model moves
// every node, the unit-disk tracker emits the edge diff, and the engine
// refloods — only dirty roots recompute, only changed trees re-
// advertise. observe (optional) is called after every tick with the
// tick's change batch (valid during the call) and the engine, so tests
// pin each tick's spanner against dynamic.Maintainer ground truth and
// experiments sample protocol state mid-flight. An invalid config
// returns a *ConfigError naming the offending field.
func LiveRun(cfg LiveConfig, observe func(tick int, changes []dynamic.Change, e *Engine)) (*LiveReport, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	side := math.Sqrt(math.Pi * float64(cfg.N) / cfg.Degree)
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := mobility.NewWaypoint(cfg.N, side, cfg.MinSpeed, cfg.MaxSpeed, rng)
	tr := mobility.NewTracker(w, 1.0)

	e := NewEngine(tr.Graph(), cfg.Radius, cfg.Build)
	rep := &LiveReport{
		Initial: e.Run(),
		Ticks:   cfg.Ticks,
		PerTick: make([]TickStats, 0, cfg.Ticks),
	}
	changes := make([]dynamic.Change, 0, 256)
	for tick := 0; tick < cfg.Ticks; tick++ {
		added, removed := tr.Tick()
		changes = changes[:0]
		for _, p := range removed {
			changes = append(changes, dynamic.Change{Kind: dynamic.RemoveEdge, U: int(p[0]), V: int(p[1])})
		}
		for _, p := range added {
			changes = append(changes, dynamic.Change{Kind: dynamic.AddEdge, U: int(p[0]), V: int(p[1])})
		}
		st := e.Reflood(changes)
		rep.Changes += int64(st.Applied)
		rep.DirtyRoots += int64(st.DirtyRoots)
		rep.Refloods += int64(st.Refloods)
		rep.Messages += st.Messages
		rep.Words += st.Words
		rep.FullMsgs += st.FullMsgs
		rep.FullWords += st.FullWords
		rep.PerTick = append(rep.PerTick, st)
		if observe != nil {
			observe(tick, changes, e)
		}
	}
	return rep, nil
}
