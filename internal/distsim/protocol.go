package distsim

import (
	"remspan/internal/graph"
)

// TreeAlgo computes a dominating tree for root u from u's local
// topology knowledge (the adjacency lists of every node within the
// flooding radius), materialized as a mutable graph — the map-based
// reference builders of package domtree satisfy the locality contract.
// It parameterizes the message-level reference engine and the
// asynchronous executor; the fast engine takes a TreeBuilder instead.
type TreeAlgo func(local *graph.Graph, u int) *graph.Tree

// nodeState is the per-node protocol state of the reference engine.
type nodeState struct {
	id        int
	neighbors []int32            // learned in the hello round
	known     map[int32][]int32  // source → its neighbor list
	fresh     []int32            // sources learned last round, to forward
	seenTree  map[int32]struct{} // tree roots already forwarded
	freshTree [][]int32          // tree payloads learned last round
	incident  *graph.EdgeSet     // spanner edges this node learned it is part of
}

// RunRemSpanReference executes Algorithm 3 message by message: every
// payload is materialized, enqueued on the synchronous Sim runtime and
// delivered at the next round boundary, with per-node map state exactly
// as a naive implementation would keep it. It is the semantic reference
// the fast engine's ball-structure traffic accounting and tree results
// are pinned against (rounds, messages, words and the spanner must all
// agree — TestEngineMatchesReference and FuzzDistsimEquivalence), and
// it is the ablation baseline of the distsim benchmark suite.
func RunRemSpanReference(g *graph.Graph, radius int, algo TreeAlgo) *Result {
	if radius < 1 {
		panic("distsim: flooding radius must be >= 1")
	}
	n := g.N()
	sim := NewSim(g)
	nodes := make([]*nodeState, n)
	for u := 0; u < n; u++ {
		nodes[u] = &nodeState{
			id:       u,
			known:    make(map[int32][]int32),
			seenTree: make(map[int32]struct{}),
			incident: graph.NewEdgeSet(n),
		}
	}

	// Round 1: hello.
	for u := 0; u < n; u++ {
		sim.Broadcast(u, KindHello, []int32{int32(u)})
	}
	inbox := sim.Step()
	for u := 0; u < n; u++ {
		st := nodes[u]
		for _, m := range inbox[u] {
			st.neighbors = append(st.neighbors, m.Words[0])
		}
		// Own list is known and fresh for the first topology round.
		st.known[int32(u)] = st.neighbors
		st.fresh = []int32{int32(u)}
	}

	// Rounds 2..R+1: topology flooding with duplicate suppression.
	for t := 0; t < radius; t++ {
		for u := 0; u < n; u++ {
			st := nodes[u]
			for _, src := range st.fresh {
				list := st.known[src]
				payload := make([]int32, 0, len(list)+2)
				payload = append(payload, src, int32(len(list)))
				payload = append(payload, list...)
				sim.Broadcast(u, KindTopo, payload)
			}
			st.fresh = nil
		}
		inbox = sim.Step()
		for u := 0; u < n; u++ {
			st := nodes[u]
			for _, m := range inbox[u] {
				src := m.Words[0]
				if _, ok := st.known[src]; ok {
					continue
				}
				deg := int(m.Words[1])
				st.known[src] = m.Words[2 : 2+deg]
				st.fresh = append(st.fresh, src)
			}
		}
	}

	// Local computation: build the local view and run the tree
	// algorithm. The local graph contains every edge incident to a
	// known source (edges to fringe nodes are known one-sided).
	trees := make([]*graph.Tree, n)
	sizes := make([]int, n)
	h := graph.NewEdgeSet(n)
	for u := 0; u < n; u++ {
		local := graph.New(n)
		for src, list := range nodes[u].known {
			for _, v := range list {
				local.AddEdge(int(src), int(v))
			}
		}
		t := algo(local, u)
		trees[u] = t
		sizes[u] = t.EdgeCount()
		h.AddTree(t)
	}

	// Rounds R+2..2R+1: tree flooding.
	for u := 0; u < n; u++ {
		t := trees[u]
		payload := make([]int32, 0, 2+2*t.EdgeCount())
		payload = append(payload, int32(u), int32(t.EdgeCount()))
		for _, e := range t.Edges() {
			payload = append(payload, e[0], e[1])
		}
		nodes[u].freshTree = [][]int32{payload}
		nodes[u].seenTree[int32(u)] = struct{}{}
		nodes[u].noteTree(payload)
	}
	for t := 0; t < radius; t++ {
		for u := 0; u < n; u++ {
			st := nodes[u]
			for _, payload := range st.freshTree {
				sim.Broadcast(u, KindTree, payload)
			}
			st.freshTree = nil
		}
		inbox = sim.Step()
		for u := 0; u < n; u++ {
			st := nodes[u]
			for _, m := range inbox[u] {
				root := m.Words[0]
				if _, ok := st.seenTree[root]; ok {
					continue
				}
				st.seenTree[root] = struct{}{}
				st.freshTree = append(st.freshTree, m.Words)
				st.noteTree(m.Words)
			}
		}
	}

	incident := make([]*graph.EdgeSet, n)
	for u := 0; u < n; u++ {
		incident[u] = nodes[u].incident
	}
	return &Result{
		Rounds:    sim.Round,
		Messages:  sim.Messages,
		Words:     sim.Words,
		H:         h,
		TreeEdges: sizes,
		incident:  incident,
	}
}

// noteTree records the spanner edges incident to this node found in a
// flooded tree payload.
func (st *nodeState) noteTree(payload []int32) {
	ne := int(payload[1])
	for i := 0; i < ne; i++ {
		a, b := payload[2+2*i], payload[3+2*i]
		if int(a) == st.id || int(b) == st.id {
			st.incident.Add(int(a), int(b))
		}
	}
}
