package distsim

import (
	"remspan/internal/graph"
)

// TreeAlgo computes a dominating tree for root u from u's local
// topology knowledge (the adjacency lists of every node within the
// flooding radius). The tree algorithms of package domtree satisfy the
// locality contract: they only query adjacency inside that ball.
type TreeAlgo func(local *graph.Graph, u int) *graph.Tree

// Result summarizes a distributed RemSpan run.
type Result struct {
	Rounds    int              // total synchronous rounds: 2(r−1+β)+1
	Messages  int64            // point-to-point messages sent
	Words     int64            // total payload words sent
	H         *graph.EdgeSet   // the computed remote-spanner (union of trees)
	TreeEdges []int            // per-root tree sizes
	Incident  []*graph.EdgeSet // per node: spanner edges it learned it belongs to
}

// nodeState is the per-node protocol state of RemSpan.
type nodeState struct {
	id        int
	neighbors []int32            // learned in the hello round
	known     map[int32][]int32  // source → its neighbor list
	fresh     []int32            // sources learned last round, to forward
	seenTree  map[int32]struct{} // tree roots already forwarded
	freshTree [][]int32          // tree payloads learned last round
	incident  *graph.EdgeSet     // spanner edges this node learned it is part of
}

// RunRemSpan executes Algorithm 3 on every node of g simultaneously:
//
//	round 1:            hello — send own id on every link
//	rounds 2..R+1:      flood neighbor lists to radius R = r−1+β
//	(local)             compute the dominating tree from the local view
//	rounds R+2..2R+1:   flood the tree to radius R
//
// The returned spanner is the union of all trees; it equals the
// centralized construction because the tree algorithms are local.
func RunRemSpan(g *graph.Graph, radius int, algo TreeAlgo) *Result {
	if radius < 1 {
		panic("distsim: flooding radius must be >= 1")
	}
	n := g.N()
	sim := NewSim(g)
	nodes := make([]*nodeState, n)
	for u := 0; u < n; u++ {
		nodes[u] = &nodeState{
			id:       u,
			known:    make(map[int32][]int32),
			seenTree: make(map[int32]struct{}),
			incident: graph.NewEdgeSet(n),
		}
	}

	// Round 1: hello.
	for u := 0; u < n; u++ {
		sim.Broadcast(u, KindHello, []int32{int32(u)})
	}
	inbox := sim.Step()
	for u := 0; u < n; u++ {
		st := nodes[u]
		for _, m := range inbox[u] {
			st.neighbors = append(st.neighbors, m.Words[0])
		}
		// Own list is known and fresh for the first topology round.
		st.known[int32(u)] = st.neighbors
		st.fresh = []int32{int32(u)}
	}

	// Rounds 2..R+1: topology flooding with duplicate suppression.
	for t := 0; t < radius; t++ {
		for u := 0; u < n; u++ {
			st := nodes[u]
			for _, src := range st.fresh {
				list := st.known[src]
				payload := make([]int32, 0, len(list)+2)
				payload = append(payload, src, int32(len(list)))
				payload = append(payload, list...)
				sim.Broadcast(u, KindTopo, payload)
			}
			st.fresh = nil
		}
		inbox = sim.Step()
		for u := 0; u < n; u++ {
			st := nodes[u]
			for _, m := range inbox[u] {
				src := m.Words[0]
				if _, ok := st.known[src]; ok {
					continue
				}
				deg := int(m.Words[1])
				st.known[src] = m.Words[2 : 2+deg]
				st.fresh = append(st.fresh, src)
			}
		}
	}

	// Local computation: build the local view and run the tree
	// algorithm. The local graph contains every edge incident to a
	// known source (edges to fringe nodes are known one-sided).
	trees := make([]*graph.Tree, n)
	sizes := make([]int, n)
	h := graph.NewEdgeSet(n)
	for u := 0; u < n; u++ {
		local := graph.New(n)
		for src, list := range nodes[u].known {
			for _, v := range list {
				local.AddEdge(int(src), int(v))
			}
		}
		t := algo(local, u)
		trees[u] = t
		sizes[u] = t.EdgeCount()
		h.AddTree(t)
	}

	// Rounds R+2..2R+1: tree flooding.
	for u := 0; u < n; u++ {
		t := trees[u]
		payload := make([]int32, 0, 2+2*t.EdgeCount())
		payload = append(payload, int32(u), int32(t.EdgeCount()))
		for _, e := range t.Edges() {
			payload = append(payload, e[0], e[1])
		}
		nodes[u].freshTree = [][]int32{payload}
		nodes[u].seenTree[int32(u)] = struct{}{}
		nodes[u].noteTree(payload)
	}
	for t := 0; t < radius; t++ {
		for u := 0; u < n; u++ {
			st := nodes[u]
			for _, payload := range st.freshTree {
				sim.Broadcast(u, KindTree, payload)
			}
			st.freshTree = nil
		}
		inbox = sim.Step()
		for u := 0; u < n; u++ {
			st := nodes[u]
			for _, m := range inbox[u] {
				root := m.Words[0]
				if _, ok := st.seenTree[root]; ok {
					continue
				}
				st.seenTree[root] = struct{}{}
				st.freshTree = append(st.freshTree, m.Words)
				st.noteTree(m.Words)
			}
		}
	}

	incident := make([]*graph.EdgeSet, n)
	for u := 0; u < n; u++ {
		incident[u] = nodes[u].incident
	}
	return &Result{
		Rounds:    sim.Round,
		Messages:  sim.Messages,
		Words:     sim.Words,
		H:         h,
		TreeEdges: sizes,
		Incident:  incident,
	}
}

// CheckIncidentKnowledge verifies the protocol's correctness condition:
// every node ends up knowing exactly the spanner edges incident to it,
// so it can advertise/route over them. Returns the first offending node
// (-1 when the condition holds).
func CheckIncidentKnowledge(res *Result) int {
	h := res.H
	for u, inc := range res.Incident {
		// Everything the node learned must be incident and in H.
		for _, e := range inc.Edges() {
			if int(e[0]) != u && int(e[1]) != u {
				return u
			}
			if !h.Has(int(e[0]), int(e[1])) {
				return u
			}
		}
		// Every incident spanner edge must have been learned.
		for _, e := range h.Edges() {
			if int(e[0]) == u || int(e[1]) == u {
				if !inc.Has(int(e[0]), int(e[1])) {
					return u
				}
			}
		}
	}
	return -1
}

// noteTree records the spanner edges incident to this node found in a
// flooded tree payload.
func (st *nodeState) noteTree(payload []int32) {
	ne := int(payload[1])
	for i := 0; i < ne; i++ {
		a, b := payload[2+2*i], payload[3+2*i]
		if int(a) == st.id || int(b) == st.id {
			st.incident.Add(int(a), int(b))
		}
	}
}

// FullLinkState returns the message/word cost of classic full link-state
// flooding (every node floods its neighbor list to the entire network,
// OSPF-style) for comparison: every node retransmits every list once.
func FullLinkState(g *graph.Graph) (messages, words int64) {
	n := g.N()
	// Hello round.
	messages = int64(2 * g.M())
	words = int64(2*g.M()) * 3
	// Each of the n lists is retransmitted by every node on every link.
	for src := 0; src < n; src++ {
		payload := int64(g.Degree(src) + 2 + 2)
		for u := 0; u < n; u++ {
			messages += int64(g.Degree(u))
			words += int64(g.Degree(u)) * payload
		}
	}
	return messages, words
}
