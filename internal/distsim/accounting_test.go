package distsim

import (
	"testing"

	"remspan/internal/domtree"
	"remspan/internal/gen"
	"remspan/internal/graph"
)

// Exact traffic accounting on a fixed small topology: the 5-cycle with
// MPR trees (radius 1). Both engines must produce the hand-computed
// counts.
func TestRemSpanAccountingOnRing(t *testing.T) {
	g := gen.Ring(5)
	for name, res := range map[string]*Result{
		"engine": RunRemSpan(g, 1, kgreedyCSR(1)),
		"reference": RunRemSpanReference(g, 1, func(local *graph.Graph, u int) *graph.Tree {
			return domtree.KGreedy(local, u, 1)
		}),
	} {
		// Rounds: hello + 1 topo + 1 tree = 3.
		if res.Rounds != 3 {
			t.Fatalf("%s: rounds=%d", name, res.Rounds)
		}
		// Hello: every node to both neighbors = 10 messages.
		// Topo: each node floods its own list once: 10 messages.
		// Tree: each node floods its tree once: 10 messages.
		if res.Messages != 30 {
			t.Fatalf("%s: messages=%d, want 30", name, res.Messages)
		}
		// On a cycle every node's MPR tree must cover both distance-2
		// vertices → both neighbors selected → spanner = all 5 edges.
		if res.H.Len() != 5 {
			t.Fatalf("%s: spanner edges=%d, want 5", name, res.H.Len())
		}
		if bad := CheckIncidentKnowledge(res); bad != -1 {
			t.Fatalf("%s: node %d lacks incident knowledge", name, bad)
		}
	}
}

// Radius-2 flooding doubles the topo/tree rounds and grows messages
// accordingly (each item forwarded by the two distance-1 nodes too).
func TestRemSpanAccountingRadius2(t *testing.T) {
	g := gen.Ring(6)
	for name, res := range map[string]*Result{
		"engine": RunRemSpan(g, 2, kmisCSR(1)),
		"reference": RunRemSpanReference(g, 2, func(local *graph.Graph, u int) *graph.Tree {
			return domtree.KMIS(local, u, 1)
		}),
	} {
		if res.Rounds != 5 {
			t.Fatalf("%s: rounds=%d, want 5", name, res.Rounds)
		}
		// Topo flooding radius 2 on a cycle: each of the 6 lists is sent by
		// its origin (2 msgs) and forwarded by 2 neighbors (2×2 msgs) = 36
		// total; hello adds 12; trees flood like topo.
		wantHello := int64(12)
		wantTopo := int64(6 * (2 + 4))
		wantTree := int64(6 * (2 + 4))
		if res.Messages != wantHello+wantTopo+wantTree {
			t.Fatalf("%s: messages=%d, want %d", name, res.Messages, wantHello+wantTopo+wantTree)
		}
	}
}

// Words must strictly exceed messages (every payload has ≥1 word plus
// framing).
func TestWordsDominateMessages(t *testing.T) {
	g := gen.Grid(4, 4)
	res := RunRemSpan(g, 1, kgreedyCSR(1))
	if res.Words <= res.Messages {
		t.Fatalf("words=%d should exceed messages=%d", res.Words, res.Messages)
	}
}

// The local views built from flooded lists must suffice: running on a
// path (where distance-2 knowledge is one-sided at the ends) still
// matches the centralized result.
func TestRemSpanOnPathEdges(t *testing.T) {
	g := gen.Path(7)
	res := RunRemSpan(g, 1, kgreedyCSR(1))
	// On a path, every internal node is the unique relay for its
	// neighbors: spanner = all edges.
	if res.H.Len() != 6 {
		t.Fatalf("path spanner edges=%d, want 6", res.H.Len())
	}
}
