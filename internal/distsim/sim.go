// Package distsim simulates the paper's distributed setting: a
// synchronous message-passing network (LOCAL model) in which every node
// runs Algorithm 3 RemSpan(r, β) — hello round, neighbor-list flooding
// to radius R = r−1+β, local dominating-tree computation, and tree
// flooding. The simulator counts rounds, messages and payload words, so
// experiments can demonstrate the "constant time for any input graph"
// claim and measure advertisement cost against full link-state
// flooding.
//
// Two engines implement the protocol (DESIGN.md §3d):
//
//   - Engine / RunRemSpan: the production engine. Each node's local
//     view is extracted into a reusable sub-CSR (graph.BallScratch),
//     its tree is built by the production domtree *CSR builders on
//     pooled per-worker scratch, and traffic is tallied from the ball
//     structure — synchronous flooding with duplicate suppression
//     forwards each item exactly once per node within distance R−1, so
//     the counts are exact without materializing a single message. It
//     also runs live: Reflood applies topology diffs and re-advertises
//     only dirty roots (LiveRun drives it from the mobility model).
//   - RunRemSpanReference: the message-level reference — per-node map
//     state, real payload slices, the Sim round runtime. Differential
//     tests pin the engines against each other on rounds, messages,
//     words and the spanner itself.
//
// RunRemSpanAsync additionally executes the flooding with random
// per-link delays to demonstrate timing invariance.
//
// Differential pins demand bit-identical replays from a seed, so
// library code must stay off wall clocks, unseeded randomness, and
// map-ordered output.
//
//remspan:deterministic
package distsim

import (
	"fmt"

	"remspan/internal/graph"
)

// Message is a point-to-point protocol message delivered at the start
// of the round after it was sent.
type Message struct {
	From, To int32
	Kind     uint8
	Words    []int32
}

// Message kinds of the RemSpan protocol.
const (
	KindHello uint8 = iota // payload: [id]
	KindTopo               // payload: [src, deg, neighbors...]
	KindTree               // payload: [root, nEdges, a1, b1, a2, b2, ...]
)

// Sim is a synchronous network over a graph: nodes send messages during
// a round; the runtime delivers them at the next round boundary and
// tallies traffic.
type Sim struct {
	G        *graph.Graph
	Round    int
	Messages int64
	Words    int64

	outbox [][]Message
}

// NewSim returns a simulator over g with empty queues.
func NewSim(g *graph.Graph) *Sim {
	return &Sim{G: g, outbox: make([][]Message, g.N())}
}

// Send enqueues a message from→to for delivery next round. to must be a
// G-neighbor of from — the paper's model only allows link-local
// communication.
func (s *Sim) Send(from, to int, kind uint8, words []int32) {
	if !s.G.HasEdge(from, to) {
		panic(fmt.Sprintf("distsim: %d→%d is not a link", from, to))
	}
	s.outbox[to] = append(s.outbox[to], Message{From: int32(from), To: int32(to), Kind: kind, Words: words})
	s.Messages++
	s.Words += int64(len(words)) + 2 // +2 for (from, kind) framing words
}

// Broadcast sends the same payload to every neighbor of from.
func (s *Sim) Broadcast(from int, kind uint8, words []int32) {
	for _, v := range s.G.Neighbors(from) {
		s.Send(from, int(v), kind, words)
	}
}

// Step closes the current round and returns the per-node inboxes for
// the next one.
func (s *Sim) Step() [][]Message {
	in := s.outbox
	s.outbox = make([][]Message, s.G.N())
	s.Round++
	return in
}
