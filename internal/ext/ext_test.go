package ext

import (
	"math/rand"
	"testing"

	"remspan/internal/gen"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

func randomConnected(n, extra int, rng *rand.Rand) *graph.Graph {
	g := gen.RandomTree(n, rng)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func TestKEdgeConnectingPreservesEdgeDistances(t *testing.T) {
	// The 2k−1-coverage construction should preserve edge-disjoint
	// distances on small random graphs (conjecture-grade: assert on
	// these sizes where we can verify exhaustively).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		g := randomConnected(8+rng.Intn(10), 25, rng)
		for k := 1; k <= 2; k++ {
			res := KEdgeConnecting(g, k)
			bad := VerifyEdgeConnecting(g, res.Graph(), k)
			if len(bad) != 0 {
				t.Fatalf("trial %d k=%d: %d violations, first %+v", trial, k, len(bad), bad[0])
			}
		}
	}
}

func TestKEdgeConnectingK1EqualsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomConnected(20, 40, rng)
	a := KEdgeConnecting(g, 1)
	b := spanner.Exact(g)
	if a.Edges() != b.Edges() {
		t.Fatalf("k=1 edge-connecting (%d) != exact (%d)", a.Edges(), b.Edges())
	}
}

func TestVerifyEdgeConnectingDetectsViolations(t *testing.T) {
	// A cycle needs all its edges for 2 edge-disjoint paths; an empty
	// spanner must be flagged.
	g := gen.Ring(8)
	h := graph.New(8)
	bad := VerifyEdgeConnecting(g, h, 2)
	if len(bad) == 0 {
		t.Fatal("empty spanner not flagged")
	}
}

func TestLowStretchKConnectingSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(25, 50, rng)
	combo := LowStretchKConnecting(g, 0.5, 2)
	low := spanner.LowStretch(g, 0.5)
	kc := spanner.KMIS(g, 2)
	if combo.Edges() < low.Edges() || combo.Edges() < kc.Edges() {
		t.Fatal("union smaller than a part")
	}
	if combo.Edges() > low.Edges()+kc.Edges() {
		t.Fatal("union larger than sum of parts")
	}
	// Still a valid (1+ε', 1−2ε')-remote-spanner (superset of one).
	if v := spanner.Check(g, combo.Graph(), spanner.LowStretchOf(combo.R)); v != nil {
		t.Fatalf("%v", v)
	}
}

func TestMeasureKStretchOnFullGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomConnected(15, 35, rng)
	var pairs [][2]int
	for s := 0; s < g.N(); s++ {
		for tt := 0; tt < g.N(); tt++ {
			pairs = append(pairs, [2]int{s, tt})
		}
	}
	// H = G: stretch must be exactly 1 wherever defined.
	worst := MeasureKStretch(g, g.Clone(), 2, pairs)
	for kp, w := range worst {
		if w.DG == 0 {
			continue
		}
		if w.Stretch != 1 {
			t.Fatalf("k'=%d: stretch %v on full graph (%+v)", kp+1, w.Stretch, w)
		}
	}
}

func TestMeasureKStretchHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnected(18, 40, rng)
	combo := LowStretchKConnecting(g, 0.5, 2)
	var pairs [][2]int
	for i := 0; i < 60; i++ {
		pairs = append(pairs, [2]int{rng.Intn(g.N()), rng.Intn(g.N())})
	}
	worst := MeasureKStretch(g, combo.Graph(), 2, pairs)
	// k'=1 is covered by the KMIS union part... the combined spanner
	// contains a 2-connecting (2,−1)-remote-spanner, so k'=2 stretch is
	// bounded by 2 whenever defined.
	if w := worst[1]; w.DG > 0 && w.Stretch >= 0 && w.Stretch > 2.0 {
		t.Fatalf("k'=2 stretch %v exceeds 2 (%+v)", w.Stretch, w)
	}
	if w := worst[1]; w.Stretch < 0 {
		t.Fatalf("disjoint paths lost: %+v", w)
	}
}
