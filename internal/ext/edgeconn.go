// Package ext implements the extensions sketched in the paper's
// concluding remarks: edge-connectivity (k edge-disjoint paths instead
// of internally vertex-disjoint ones) and a heuristic for k-connecting
// low-stretch remote-spanners. Neither comes with a proof in the paper
// — the constructions here are conjecture-grade and ship with empirical
// verification harnesses (experiment E12).
package ext

import (
	"remspan/internal/flow"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

// EdgeKDistanceStretch is one pair's edge-disjoint distance comparison.
type EdgeKDistanceStretch struct {
	S, T   int
	DG, DH int // total edge-disjoint path lengths (-1 = fewer than k paths)
}

// KEdgeConnecting builds a candidate k-edge-connecting
// (1, 0)-remote-spanner. Two internally vertex-disjoint paths are edge-
// disjoint, but the converse fails, so plain k-coverage may be too weak
// when paths funnel through shared cut vertices: each foreign path can
// block up to two relay candidates around the funnel. The construction
// therefore uses coverage 2k−1 (Algorithm 4 with k' = 2k−1), the
// conjectured sufficient margin.
func KEdgeConnecting(g *graph.Graph, k int) *spanner.Result {
	cover := 2*k - 1
	if cover < 1 {
		cover = 1
	}
	return spanner.KConnecting(g, cover)
}

// VerifyEdgeConnecting measures the edge-disjoint analogue of the
// k-connecting (1, 0) property over all non-adjacent pairs: for k' ≤ k,
// whenever k' edge-disjoint s→t paths exist in G, the same minimum
// total length must be achieved in H_s. It returns every violating
// pair (empty slice = property held exactly).
func VerifyEdgeConnecting(g, h *graph.Graph, k int) []EdgeKDistanceStretch {
	var bad []EdgeKDistanceStretch
	for s := 0; s < g.N(); s++ {
		var hs *graph.Graph
		for t := 0; t < g.N(); t++ {
			if s == t || g.HasEdge(s, t) {
				continue
			}
			for kp := 1; kp <= k; kp++ {
				dg := flow.EdgeKDistance(g, s, t, kp)
				if dg < 0 {
					break
				}
				if hs == nil {
					hs = spanner.View(g, h, s)
				}
				dh := flow.EdgeKDistance(hs, s, t, kp)
				if dh != dg {
					bad = append(bad, EdgeKDistanceStretch{S: s, T: t, DG: dg, DH: dh})
				}
			}
		}
	}
	return bad
}
