package ext

import (
	"remspan/internal/flow"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

// LowStretchKConnecting is the paper's "interesting followup":
// a sparse k-connecting (1+ε, O(1))-remote-spanner. The heuristic takes
// the union of the Th. 1 low-stretch spanner (distance preservation up
// to 1+ε) and the Alg. 5 k-connecting trees (disjoint-path
// preservation near each node). No stretch proof exists; use
// MeasureKStretch to quantify how far the conjecture holds.
func LowStretchKConnecting(g *graph.Graph, eps float64, k int) *spanner.Result {
	low := spanner.LowStretch(g, eps)
	kc := spanner.KMIS(g, k)
	low.Union(kc)
	return low
}

// KStretchSample is the observed k-connecting stretch of one pair.
type KStretchSample struct {
	S, T, K  int
	DG, DH   int
	Stretch  float64 // DH/DG
	Additive int     // DH − DG
}

// MeasureKStretch samples the k-connecting stretch d^{k'}_{H_s}/d^{k'}_G
// over the given pairs for every k' ≤ k, returning the worst sample per
// k' (index k'−1; zero-value samples mean no eligible pair).
func MeasureKStretch(g, h *graph.Graph, k int, pairs [][2]int) []KStretchSample {
	worst := make([]KStretchSample, k)
	for _, p := range pairs {
		s, t := p[0], p[1]
		if s == t || g.HasEdge(s, t) {
			continue
		}
		dg := flow.KDistanceProfile(g, s, t, k)
		hs := spanner.View(g, h, s)
		dh := flow.KDistanceProfile(hs, s, t, k)
		for kp := 1; kp <= k; kp++ {
			if dg[kp-1] < 0 {
				break
			}
			sample := KStretchSample{S: s, T: t, K: kp, DG: dg[kp-1], DH: dh[kp-1]}
			if dh[kp-1] < 0 {
				// Disjoint paths lost entirely: treat as unbounded.
				sample.Stretch = -1
				worst[kp-1] = sample
				continue
			}
			sample.Stretch = float64(sample.DH) / float64(sample.DG)
			sample.Additive = sample.DH - sample.DG
			w := worst[kp-1]
			if w.Stretch >= 0 && (w.DG == 0 || sample.Stretch > w.Stretch) {
				worst[kp-1] = sample
			}
		}
	}
	return worst
}
