package domtree

import (
	"math/rand"
	"testing"

	"remspan/internal/gen"
	"remspan/internal/geom"
	"remspan/internal/graph"
)

func randomConnected(n, extra int, rng *rand.Rand) *graph.Graph {
	g := gen.RandomTree(n, rng)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func randomUDG(n int, side, radius float64, rng *rand.Rand) *graph.Graph {
	pts := geom.UniformBox(n, 2, side, rng)
	g := geom.UnitDiskGraph(pts, radius)
	keep, _ := graph.LargestComponent(g)
	return g.InducedSubgraph(keep)
}

func TestGreedyProducesDominatingTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		g := randomConnected(10+rng.Intn(30), 20, rng)
		for _, r := range []int{2, 3, 4} {
			for _, beta := range []int{0, 1} {
				u := rng.Intn(g.N())
				tr := Greedy(g, nil, u, r, beta)
				bad, err := IsDominatingTree(g, tr, r, beta)
				if err != nil {
					t.Fatalf("trial %d r=%d beta=%d: %v", trial, r, beta, err)
				}
				if bad != -1 {
					t.Fatalf("trial %d r=%d beta=%d root=%d: vertex %d not dominated",
						trial, r, beta, u, bad)
				}
			}
		}
	}
}

func TestMISProducesDominatingTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		g := randomConnected(10+rng.Intn(30), 25, rng)
		for _, r := range []int{2, 3, 5} {
			u := rng.Intn(g.N())
			tr := MIS(g, nil, u, r)
			bad, err := IsDominatingTree(g, tr, r, 1)
			if err != nil {
				t.Fatalf("trial %d r=%d: %v", trial, r, err)
			}
			if bad != -1 {
				t.Fatalf("trial %d r=%d root=%d: vertex %d not dominated", trial, r, u, bad)
			}
		}
	}
}

func TestGreedyOnPath(t *testing.T) {
	g := gen.Path(8)
	tr := Greedy(g, nil, 0, 4, 0)
	// On a path the tree must contain vertices 1, 2, 3 to dominate 2, 3, 4.
	bad, err := IsDominatingTree(g, tr, 4, 0)
	if err != nil || bad != -1 {
		t.Fatalf("bad=%d err=%v", bad, err)
	}
	if tr.Contains(7) {
		t.Fatal("tree should stay within radius")
	}
}

func TestMISTreeSmallOnUDG(t *testing.T) {
	// Prop. 3: O(r^{p+1}) edges in a doubling unit-ball graph,
	// independent of density. Check a dense UDG yields a small tree.
	rng := rand.New(rand.NewSource(3))
	g := randomUDG(500, 4, 1.0, rng)
	if g.N() < 300 {
		t.Skip("degenerate UDG sample")
	}
	r := 3
	tr := MIS(g, nil, 0, r)
	// (4r)^p bound is loose; just require far below the ball size.
	dist := graph.BFS(g, 0)
	ball := 0
	for _, d := range dist {
		if d != graph.Unreached && int(d) <= r {
			ball++
		}
	}
	if tr.Size() > ball/3+10 {
		t.Fatalf("MIS tree size %d not small vs ball %d", tr.Size(), ball)
	}
	bad, err := IsDominatingTree(g, tr, r, 1)
	if err != nil || bad != -1 {
		t.Fatalf("bad=%d err=%v", bad, err)
	}
}

func TestKGreedyProducesKConnTree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		g := randomConnected(8+rng.Intn(25), 30, rng)
		for k := 1; k <= 3; k++ {
			u := rng.Intn(g.N())
			tr := KGreedy(g, u, k)
			bad, err := IsKConnDominatingTree(g, tr, k, 0)
			if err != nil {
				t.Fatalf("trial %d k=%d: %v", trial, k, err)
			}
			if bad != -1 {
				t.Fatalf("trial %d k=%d root=%d: vertex %d not k-dominated", trial, k, u, bad)
			}
			// Star shape: every non-root member is a child of the root.
			for _, v := range tr.Nodes() {
				if int(v) != u && tr.Parent(int(v)) != u {
					t.Fatalf("KGreedy tree not a star at %d", v)
				}
			}
		}
	}
}

func TestKGreedyIsMPRForK1(t *testing.T) {
	// k=1 must dominate every distance-2 vertex by at least one relay.
	g := gen.Petersen()
	for u := 0; u < g.N(); u++ {
		tr := KGreedy(g, u, 1)
		bad, err := IsKConnDominatingTree(g, tr, 1, 0)
		if err != nil || bad != -1 {
			t.Fatalf("u=%d bad=%d err=%v", u, bad, err)
		}
		mpr := MPRSet(tr)
		if len(mpr) == 0 {
			t.Fatalf("u=%d: empty MPR set on Petersen", u)
		}
		if len(mpr) != tr.EdgeCount() {
			t.Fatalf("MPR count %d != edges %d", len(mpr), tr.EdgeCount())
		}
	}
}

func TestKMISProducesKConnTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		g := randomConnected(8+rng.Intn(25), 30, rng)
		for k := 1; k <= 3; k++ {
			u := rng.Intn(g.N())
			tr := KMIS(g, u, k)
			bad, err := IsKConnDominatingTree(g, tr, k, 1)
			if err != nil {
				t.Fatalf("trial %d k=%d: %v", trial, k, err)
			}
			if bad != -1 {
				t.Fatalf("trial %d k=%d root=%d: vertex %d not k-dominated (beta=1)",
					trial, k, u, bad)
			}
			if tr.Validate(g) != nil {
				t.Fatal("invalid tree")
			}
		}
	}
}

func TestKMISDepthAtMostTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomConnected(30, 60, rng)
	tr := KMIS(g, 3, 2)
	for _, v := range tr.Nodes() {
		if tr.Depth(int(v)) > 2 {
			t.Fatalf("vertex %d at depth %d > 2", v, tr.Depth(int(v)))
		}
	}
}

func TestKMISTreeSmallOnUDG(t *testing.T) {
	// Prop. 7: O(k²) edges in doubling UBG.
	rng := rand.New(rand.NewSource(7))
	g := randomUDG(400, 4, 1.0, rng)
	if g.N() < 200 {
		t.Skip("degenerate UDG sample")
	}
	for k := 1; k <= 3; k++ {
		tr := KMIS(g, 0, k)
		if tr.EdgeCount() > 40*k*k+40 {
			t.Fatalf("k=%d: tree has %d edges, not O(k²)-small", k, tr.EdgeCount())
		}
	}
}

func TestDominatingTreeCheckerRejects(t *testing.T) {
	// A bare root is not a dominating tree when distance-2 vertices exist.
	g := gen.Path(5)
	tr := graph.NewTree(5, 0)
	bad, err := IsDominatingTree(g, tr, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bad == -1 {
		t.Fatal("checker accepted an empty tree")
	}
	badK, err := IsKConnDominatingTree(g, tr, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if badK == -1 {
		t.Fatal("k-checker accepted an empty tree")
	}
}

func TestKConnCheckerEscapeClause(t *testing.T) {
	// v at distance 2 with a single common neighbor w: selecting w
	// satisfies the escape clause even for k=5.
	g := gen.Path(3) // 0-1-2
	tr := graph.NewTree(3, 0)
	tr.Add(1, 0)
	bad, err := IsKConnDominatingTree(g, tr, 5, 0)
	if err != nil || bad != -1 {
		t.Fatalf("escape clause failed: bad=%d err=%v", bad, err)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomConnected(25, 40, rng)
	a := Greedy(g, nil, 0, 3, 1)
	b := Greedy(g, nil, 0, 3, 1)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic size")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("nondeterministic edges")
		}
	}
}

func TestKGreedyCompleteGraphTrivial(t *testing.T) {
	// No distance-2 vertices: tree is just the root.
	g := gen.Complete(6)
	tr := KGreedy(g, 0, 2)
	if tr.Size() != 1 {
		t.Fatalf("size=%d, want 1", tr.Size())
	}
	tr2 := KMIS(g, 0, 2)
	if tr2.Size() != 1 {
		t.Fatalf("KMIS size=%d, want 1", tr2.Size())
	}
}
