package domtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"remspan/internal/gen"
)

func TestLazyMatchesEagerKGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 40; trial++ {
		g := randomConnected(10+rng.Intn(40), 80, rng)
		u := rng.Intn(g.N())
		for k := 1; k <= 3; k++ {
			eager := KGreedy(g, u, k)
			lazy := KGreedyLazy(g, u, k)
			ee, le := eager.Edges(), lazy.Edges()
			if len(ee) != len(le) {
				t.Fatalf("trial %d u=%d k=%d: eager %d edges, lazy %d",
					trial, u, k, len(ee), len(le))
			}
			for i := range ee {
				if ee[i] != le[i] {
					t.Fatalf("trial %d u=%d k=%d: edge %d differs (%v vs %v)",
						trial, u, k, i, ee[i], le[i])
				}
			}
		}
	}
}

func TestLazyMatchesEagerQuick(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(kRaw%3)
		g := randomConnected(8+rng.Intn(20), 40, rng)
		u := rng.Intn(g.N())
		a, b := KGreedy(g, u, k), KGreedyLazy(g, u, k)
		ea, eb := a.Edges(), b.Edges()
		if len(ea) != len(eb) {
			return false
		}
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLazyOnDenseUDG(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomUDG(300, 3, 1.0, rng)
	if g.N() < 100 {
		t.Skip("degenerate UDG")
	}
	for u := 0; u < g.N(); u += 17 {
		a, b := KGreedy(g, u, 2), KGreedyLazy(g, u, 2)
		if a.EdgeCount() != b.EdgeCount() {
			t.Fatalf("u=%d: eager %d vs lazy %d", u, a.EdgeCount(), b.EdgeCount())
		}
	}
}

func TestLazyTrivialCases(t *testing.T) {
	g := gen.Complete(5)
	if tr := KGreedyLazy(g, 0, 3); tr.Size() != 1 {
		t.Fatal("complete graph should give bare root")
	}
	s := gen.Star(6)
	tr := KGreedyLazy(s, 1, 1)
	bad, err := IsKConnDominatingTree(s, tr, 1, 0)
	if err != nil || bad != -1 {
		t.Fatalf("star leaf tree invalid: bad=%d err=%v", bad, err)
	}
}
