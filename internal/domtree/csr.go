package domtree

import (
	"fmt"
	"slices"

	"remspan/internal/graph"
)

// The *CSR builders are the production forms of the map-based reference
// builders in kgreedy.go / greedy.go / mis.go / kmis.go: same
// algorithms, same deterministic output edge-for-edge (asserted by the
// equivalence tests and fuzz target), but running over a graph.View —
// an immutable graph.CSR snapshot in the batch pipeline, a patched
// graph.CSRDelta in the incremental maintainer — with epoch-stamped
// Scratch arrays instead of hash maps, and — for the greedy set covers —
// lazy-heap selection instead of a full candidate rescan per pick. The
// output depends only on the adjacency the View exposes, so the same
// builder serves both pipelines unchanged. An all-roots sweep with a
// shared Scratch performs no per-root allocations.

// KGreedyCSR computes Algorithm 4 DomTreeGdy(2, 0, k) for root u on the
// CSR snapshot; see KGreedy for the algorithm and guarantees. Greedy
// selection uses the lazy heap (candidate gains only decrease, so a
// possibly-stale max-heap pops the true argmax after a few refreshes),
// preserving the (gain desc, id asc) tie-break of the eager reference.
//
//remspan:hotpath
func KGreedyCSR(c graph.View, s *Scratch, u, k int) *graph.Tree {
	if k < 1 {
		panic("domtree: KGreedyCSR requires k >= 1")
	}
	s = ensure(s, c.N())
	t := s.tree(u)
	nu := c.Neighbors(u)

	// Stamp N(u) ∪ {u} so the wedge scan below tests adjacency-to-root
	// in O(1) instead of a binary search per wedge.
	isNbr := s.stampA
	eN := s.nextEpoch()
	isNbr[u] = eN
	for _, w := range nu {
		isNbr[w] = eN
	}

	// S: vertices at distance exactly 2 from u. The wedge scan counts
	// each common neighbor w of (u, v) exactly once, so cnt2 ends as
	// commonLeft[v] = |N(u) ∩ N(v)| with no merge allocations.
	inS := s.stampB
	eS := s.nextEpoch()
	remaining := 0
	hits, commonLeft := s.cnt1, s.cnt2
	for _, w := range nu {
		for _, v := range c.Neighbors(int(w)) {
			if isNbr[v] == eN {
				continue
			}
			if inS[v] != eS {
				inS[v] = eS
				hits[v] = 0
				commonLeft[v] = 0
				remaining++
			}
			commonLeft[v]++
		}
	}
	if remaining == 0 {
		return t
	}

	// gain(x) = |N(x) ∩ S| over the still-uncovered S.
	trueGain := func(x int32) int32 {
		g := int32(0)
		for _, v := range c.Neighbors(int(x)) {
			if inS[v] == eS {
				g++
			}
		}
		return g
	}

	h := &s.heap
	h.reset()
	for _, x := range nu {
		h.items = append(h.items, gainItem{id: x, gain: int(trueGain(x))})
	}
	h.initHeap()

	for remaining > 0 {
		if len(h.items) == 0 {
			panic(fmt.Sprintf("domtree: k-cover stuck at root %d (|S|=%d)", u, remaining))
		}
		top := h.pop()
		fresh := int(trueGain(top.id))
		if fresh != top.gain {
			if fresh > 0 {
				h.push(gainItem{id: top.id, gain: fresh})
			}
			continue
		}
		if fresh == 0 {
			continue
		}
		best := top.id
		t.Add(int(best), u)
		for _, v := range c.Neighbors(int(best)) {
			if inS[v] != eS {
				continue
			}
			hits[v]++
			commonLeft[v]--
			if hits[v] >= int32(k) || commonLeft[v] == 0 {
				inS[v] = 0 // leaves S
				remaining--
			}
		}
	}
	return t
}

// MISCSR computes Algorithm 2 DomTreeMIS(r, 1) for root u on the CSR
// snapshot; see MIS for the algorithm and guarantees.
//
//remspan:hotpath
func MISCSR(c graph.View, s *Scratch, u, r int) *graph.Tree {
	if r < 2 {
		panic("domtree: MISCSR requires r >= 2")
	}
	s = ensure(s, c.N())
	dist, parent, visited := s.bfs.BoundedView(c, u, r)
	t := s.tree(u)

	// B = vertices with 2 <= dist <= r, processed by (dist, id). Dense
	// balls (the all-roots sweep on a connected graph) use a
	// counting-bucket placement — count the ball per distance, then
	// scan vertex ids in increasing order into the distance segments,
	// O(n + |ball|) and comparison-free. Small balls instead sort each
	// equal-distance run of the BFS order (already grouped by
	// distance), keeping the per-root cost O(|ball| log |ball|)
	// independent of n. Both produce the reference (dist, id) order.
	var b []int32
	if ballDense := 4*len(visited) >= c.N(); ballDense {
		counts := s.buf2
		//remspan:coldpath grow to the radius high-water mark, then reused
		if cap(counts) < r+1 {
			counts = make([]int32, r+1)
		} else {
			counts = counts[:r+1]
		}
		s.buf2 = counts
		for i := range counts {
			counts[i] = 0
		}
		total := 0
		for _, v := range visited {
			if dist[v] >= 2 {
				counts[dist[v]]++
				total++
			}
		}
		//remspan:coldpath grow to the ball-size high-water mark, then reused
		if cap(s.buf1) < total {
			s.buf1 = make([]int32, total)
		}
		b = s.buf1[:total]
		start := int32(0)
		for d := 2; d <= r; d++ {
			cd := counts[d]
			counts[d] = start
			start += cd
		}
		for v := 0; v < c.N(); v++ {
			if d := dist[v]; d >= 2 {
				b[counts[d]] = int32(v)
				counts[d]++
			}
		}
	} else {
		b = s.buf1[:0]
		for _, v := range visited {
			if dist[v] >= 2 {
				b = append(b, v)
			}
		}
		s.buf1 = b
		for i := 0; i < len(b); {
			j := i + 1
			for j < len(b) && dist[b[j]] == dist[b[i]] {
				j++
			}
			slices.Sort(b[i:j])
			i = j
		}
	}

	removed := s.stampA
	eR := s.nextEpoch()
	for _, x := range b {
		if removed[x] == eR {
			continue
		}
		t.AddPath(parent, int(x))
		removed[x] = eR
		for _, w := range c.Neighbors(int(x)) {
			removed[w] = eR
		}
	}
	return t
}

// GreedyCSR computes Algorithm 1 DomTreeGdy(r, β) for root u on the CSR
// snapshot; see Greedy for the algorithm and guarantees. Each ring's set
// cover runs on the lazy heap, killing the O(|X|²) candidate rescan of
// the reference while preserving its (gain desc, id asc) selection
// order exactly (see the determinism contract in greedy.go).
//
//remspan:hotpath
func GreedyCSR(c graph.View, s *Scratch, u, r, beta int) *graph.Tree {
	if r < 2 {
		panic("domtree: GreedyCSR requires r >= 2")
	}
	if beta != 0 && beta != 1 {
		panic("domtree: GreedyCSR requires beta in {0, 1}")
	}
	s = ensure(s, c.N())
	radius := r - 1 + beta
	if r > radius {
		radius = r
	}
	dist, parent, visited := s.bfs.BoundedView(c, u, radius)
	t := s.tree(u)

	for rp := 2; rp <= r; rp++ {
		// S: vertices at distance exactly rp (stamped; covering rewinds
		// the stamp). X: candidates at distance in [rp-1, rp-1+beta].
		lo, hi := int32(rp-1), int32(rp-1+beta)
		inS := s.stampA
		eS := s.nextEpoch()
		remaining := 0
		x := s.buf1[:0]
		for _, v := range visited {
			if dist[v] == int32(rp) {
				inS[v] = eS
				remaining++
			}
			if dist[v] >= lo && dist[v] <= hi {
				x = append(x, v)
			}
		}
		s.buf1 = x
		if remaining == 0 {
			continue
		}
		// gain(cand) = |B_G(cand, 1) ∩ S_uncovered|.
		gain := func(cand int32) int {
			g := 0
			if inS[cand] == eS {
				g++
			}
			for _, w := range c.Neighbors(int(cand)) {
				if inS[w] == eS {
					g++
				}
			}
			return g
		}
		h := &s.heap
		h.reset()
		for _, cand := range x {
			h.items = append(h.items, gainItem{id: cand, gain: gain(cand)})
		}
		h.initHeap()
		for remaining > 0 {
			if len(h.items) == 0 {
				panic(fmt.Sprintf("domtree: greedy cover stuck at ring %d of root %d", rp, u))
			}
			top := h.pop()
			fresh := gain(top.id)
			if fresh != top.gain {
				if fresh > 0 {
					h.push(gainItem{id: top.id, gain: fresh})
				}
				continue
			}
			if fresh == 0 {
				panic(fmt.Sprintf("domtree: greedy cover stuck at ring %d of root %d", rp, u))
			}
			best := top.id
			t.AddPath(parent, int(best))
			if inS[best] == eS {
				inS[best] = 0
				remaining--
			}
			for _, w := range c.Neighbors(int(best)) {
				if inS[w] == eS {
					inS[w] = 0
					remaining--
				}
			}
		}
	}
	return t
}

// KMISCSR computes Algorithm 5 DomTreeMIS(2, 1, k) for root u on the
// CSR snapshot; see KMIS for the algorithm and guarantees.
//
//remspan:hotpath
func KMISCSR(c graph.View, s *Scratch, u, k int) *graph.Tree {
	if k < 1 {
		panic("domtree: KMISCSR requires k >= 1")
	}
	s = ensure(s, c.N())
	t := s.tree(u)

	isNbr := s.stampA
	eN := s.nextEpoch()
	isNbr[u] = eN
	for _, w := range c.Neighbors(u) {
		isNbr[w] = eN
	}

	// S: vertices at distance exactly 2 from u, with
	// commonLeft[v] = |N(u) ∩ N(v)| counted by the wedge scan.
	inS := s.stampB
	eS := s.nextEpoch()
	commonLeft := s.cnt2
	nS := 0
	sList := s.buf1[:0]
	for _, w := range c.Neighbors(u) {
		for _, v := range c.Neighbors(int(w)) {
			if isNbr[v] == eN {
				continue
			}
			if inS[v] != eS {
				inS[v] = eS
				commonLeft[v] = 0
				nS++
				sList = append(sList, v)
			}
			commonLeft[v]++
		}
	}
	s.buf1 = sList

	covered := func(v int32) bool {
		return commonLeft[v] == 0 || s.disjointWitnesses(c, t, int(v), 2) >= k
	}
	noteTreeMember := func(y int32) {
		for _, v := range c.Neighbors(int(y)) {
			if inS[v] == eS {
				commonLeft[v]--
			}
		}
	}

	for round := 0; round < k && nS > 0; round++ {
		// X := S (snapshot), processed in increasing id.
		order := s.buf2[:0]
		for _, v := range sList {
			if inS[v] == eS {
				order = append(order, v)
			}
		}
		s.buf2 = order
		slices.Sort(order)
		inX := s.stampC
		eX := s.nextEpoch()
		for _, v := range order {
			inX[v] = eX
		}

		for nS > 0 {
			// Pick the smallest-id x in S ∩ X.
			x := int32(-1)
			for _, v := range order {
				if inX[v] == eX && inS[v] == eS {
					x = v
					break
				}
			}
			if x == -1 {
				break
			}
			// Fresh common neighbors of x and u, in increasing id (N(x)
			// is sorted, matching g.CommonNeighbors order).
			fresh := s.buf3[:0]
			for _, y := range c.Neighbors(int(x)) {
				if isNbr[y] == eN && !t.Contains(int(y)) {
					fresh = append(fresh, y)
				}
			}
			s.buf3 = fresh
			cnt := k
			if len(fresh) < cnt {
				cnt = len(fresh)
			}
			// x ∈ S implies commonLeft[x] > 0, so cnt >= 1 (Prop. 7
			// termination argument); attach u–y1–x then u–y2.. u–yc.
			affected := s.buf4[:0]
			y1 := fresh[0]
			t.Add(int(y1), u)
			noteTreeMember(y1)
			t.Add(int(x), int(y1))
			affected = append(affected, c.Neighbors(int(y1))...)
			affected = append(affected, c.Neighbors(int(x))...)
			for i := 1; i < cnt; i++ {
				t.Add(int(fresh[i]), u)
				noteTreeMember(fresh[i])
				affected = append(affected, c.Neighbors(int(fresh[i]))...)
			}
			s.buf4 = affected
			// Coverage can only have changed for S-vertices adjacent to
			// a newly added tree node.
			for _, v := range affected {
				if inS[v] == eS && covered(v) {
					inS[v] = 0
					nS--
				}
			}
			// X := X \ B_G(x, 1).
			inX[x] = 0
			for _, w := range c.Neighbors(int(x)) {
				inX[w] = 0
			}
		}
	}
	return t
}
