package domtree

import (
	"sort"

	"remspan/internal/graph"
)

// Exact optimal cover sizes for the approximation-ratio experiments
// (Prop. 2, Prop. 6, Th. 2). The problems are NP-hard set
// (multi-)covers, solved here by branch & bound with a node budget so
// callers can bail out gracefully on hard instances.

// coverInstance is a multicover problem: pick the fewest candidates so
// that every element e receives at least req[e] distinct picks among
// the candidates covering it.
type coverInstance struct {
	req    []int     // per element demand
	covers [][]int32 // covers[c] = sorted element indices candidate c covers
}

// exactMultiCover returns the optimal cover size. ub is a known valid
// upper bound (e.g. from the greedy heuristic). ok=false when the
// search exceeds maxNodes B&B nodes.
func exactMultiCover(inst coverInstance, ub, maxNodes int) (int, bool) {
	nc := len(inst.covers)
	// Remaining demand and per-element count of still-available
	// candidates, to prune infeasible branches.
	demand := append([]int(nil), inst.req...)
	avail := make([]int, len(inst.req))
	for _, cov := range inst.covers {
		for _, e := range cov {
			avail[e]++
		}
	}
	for e, d := range demand {
		if avail[e] < d {
			// Caller built an infeasible instance.
			return 0, false
		}
	}
	totalDemand := 0
	for _, d := range demand {
		totalDemand += d
	}
	// Order candidates by decreasing coverage so good solutions appear
	// early.
	order := make([]int, nc)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := len(inst.covers[order[i]]), len(inst.covers[order[j]])
		if a != b {
			return a > b
		}
		return order[i] < order[j]
	})
	maxGain := 0
	for _, cov := range inst.covers {
		if len(cov) > maxGain {
			maxGain = len(cov)
		}
	}
	if maxGain == 0 {
		if totalDemand == 0 {
			return 0, true
		}
		return 0, false
	}

	best := ub
	nodes := 0
	exceeded := false
	var dfs func(idx, chosen, remaining int)
	dfs = func(idx, chosen, remaining int) {
		if exceeded {
			return
		}
		nodes++
		if nodes > maxNodes {
			exceeded = true
			return
		}
		if remaining == 0 {
			if chosen < best {
				best = chosen
			}
			return
		}
		// Lower bound: each further pick covers at most maxGain units.
		lb := (remaining + maxGain - 1) / maxGain
		if chosen+lb >= best || idx == nc {
			return
		}
		c := order[idx]
		// Branch 1: take candidate c.
		var dec []int32
		for _, e := range inst.covers[c] {
			if demand[e] > 0 {
				demand[e]--
				dec = append(dec, e)
			}
		}
		dfs(idx+1, chosen+1, remaining-len(dec))
		for _, e := range dec {
			demand[e]++
		}
		// Branch 2: skip candidate c — only feasible if every element
		// it covers retains enough other candidates.
		feasible := true
		for _, e := range inst.covers[c] {
			avail[e]--
			if avail[e] < demand[e] {
				feasible = false
			}
		}
		if feasible {
			dfs(idx+1, chosen, remaining)
		}
		for _, e := range inst.covers[c] {
			avail[e]++
		}
	}
	dfs(0, 0, totalDemand)
	if exceeded {
		return best, false
	}
	return best, true
}

// OptimalKCoverSize returns the exact minimum size of a k-connecting
// (2, 0)-dominating tree for u, i.e. the fewest neighbors of u covering
// every distance-2 vertex v at least min(k, |N(v) ∩ N(u)|) times.
// ok=false when the branch & bound budget maxNodes is exhausted; the
// returned value is then the best (greedy-initialized) upper bound.
func OptimalKCoverSize(g *graph.Graph, u, k, maxNodes int) (size int, ok bool) {
	nu := g.Neighbors(u)
	// Collect distance-2 vertices and index them.
	idx := make(map[int32]int)
	var req []int
	for _, w := range nu {
		for _, v := range g.Neighbors(int(w)) {
			if v == int32(u) || g.HasEdge(u, int(v)) {
				continue
			}
			if _, seen := idx[v]; !seen {
				common := len(g.CommonNeighbors(u, int(v)))
				r := k
				if common < r {
					r = common
				}
				idx[v] = len(req)
				req = append(req, r)
			}
		}
	}
	covers := make([][]int32, len(nu))
	for ci, x := range nu {
		for _, v := range g.Neighbors(int(x)) {
			if e, seen := idx[v]; seen {
				covers[ci] = append(covers[ci], int32(e))
			}
		}
	}
	ub := domTreeStarSize(g, u, k)
	return exactMultiCover(coverInstance{req: req, covers: covers}, ub+1, maxNodes)
}

// domTreeStarSize is the greedy k-cover size used as B&B upper bound.
func domTreeStarSize(g *graph.Graph, u, k int) int {
	return KGreedy(g, u, k).EdgeCount()
}

// OptimalDomTreeLowerBound returns a lower bound on the edge count of
// any (r, β)-dominating tree for u, following the Prop. 2 argument:
// summing, over rings r' = 2..r, the exact optimal cover of ring r' by
// candidate balls in the range [r'−1, r'−1+β], divided by 1+β (each
// optimal-tree vertex is counted at most 1+β times), minus 1.
// ok=false if any ring's exact cover exceeded the node budget.
func OptimalDomTreeLowerBound(g *graph.Graph, u, r, beta, maxNodes int) (lb int, ok bool) {
	dist := graph.BFS(g, u)
	sum := 0
	allOK := true
	for rp := 2; rp <= r; rp++ {
		idx := make(map[int32]int)
		var req []int
		for v := 0; v < g.N(); v++ {
			if int(dist[v]) == rp {
				idx[int32(v)] = len(req)
				req = append(req, 1)
			}
		}
		if len(req) == 0 {
			continue
		}
		var covers [][]int32
		for x := 0; x < g.N(); x++ {
			d := int(dist[x])
			if d < rp-1 || d > rp-1+beta {
				continue
			}
			var cov []int32
			if e, seen := idx[int32(x)]; seen {
				cov = append(cov, int32(e))
			}
			for _, v := range g.Neighbors(x) {
				if e, seen := idx[v]; seen {
					cov = append(cov, int32(e))
				}
			}
			if len(cov) > 0 {
				covers = append(covers, cov)
			}
		}
		opt, covOK := exactMultiCover(coverInstance{req: req, covers: covers}, len(req)+1, maxNodes)
		if !covOK {
			allOK = false
		}
		sum += opt
	}
	lb = sum/(1+beta) - 1
	if lb < 0 {
		lb = 0
	}
	return lb, allOK
}
