package domtree

import (
	"math"
	"math/rand"
	"testing"

	"remspan/internal/gen"
	"remspan/internal/graph"
)

// bruteKCoverSize finds the exact optimum by enumerating all subsets of
// N(u) — ground truth for the branch & bound.
func bruteKCoverSize(g *graph.Graph, u, k int) int {
	nu := g.Neighbors(u)
	if len(nu) > 20 {
		panic("too large for brute force")
	}
	// Distance-2 vertices.
	var s2 []int32
	seen := map[int32]bool{}
	for _, w := range nu {
		for _, v := range g.Neighbors(int(w)) {
			if v != int32(u) && !g.HasEdge(u, int(v)) && !seen[v] {
				seen[v] = true
				s2 = append(s2, v)
			}
		}
	}
	best := len(nu) + 1
	for mask := 0; mask < 1<<len(nu); mask++ {
		cnt := 0
		for i := range nu {
			if mask&(1<<i) != 0 {
				cnt++
			}
		}
		if cnt >= best {
			continue
		}
		ok := true
		for _, v := range s2 {
			hits, common := 0, 0
			for i, w := range nu {
				if g.HasEdge(int(w), int(v)) {
					common++
					if mask&(1<<i) != 0 {
						hits++
					}
				}
			}
			need := k
			if common < need {
				need = common
			}
			if hits < need {
				ok = false
				break
			}
		}
		if ok {
			best = cnt
		}
	}
	return best
}

func TestOptimalKCoverMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 40; trial++ {
		g := randomConnected(8+rng.Intn(8), 12, rng)
		u := rng.Intn(g.N())
		if g.Degree(u) > 14 {
			continue
		}
		for k := 1; k <= 2; k++ {
			want := bruteKCoverSize(g, u, k)
			got, ok := OptimalKCoverSize(g, u, k, 1<<22)
			if !ok {
				t.Fatalf("trial %d: budget exhausted", trial)
			}
			if got != want {
				t.Fatalf("trial %d u=%d k=%d: b&b=%d brute=%d", trial, u, k, got, want)
			}
		}
	}
}

func TestGreedyWithinLogBoundOfOptimal(t *testing.T) {
	// Prop. 6: greedy k-cover within 1+log Δ of optimal.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		g := randomConnected(10+rng.Intn(15), 25, rng)
		u := rng.Intn(g.N())
		for k := 1; k <= 2; k++ {
			greedy := KGreedy(g, u, k).EdgeCount()
			opt, ok := OptimalKCoverSize(g, u, k, 1<<22)
			if !ok {
				continue
			}
			if opt == 0 {
				if greedy != 0 {
					t.Fatalf("opt=0 but greedy=%d", greedy)
				}
				continue
			}
			bound := (1 + math.Log(float64(g.MaxDegree()))) * float64(opt)
			if float64(greedy) > bound+1e-9 {
				t.Fatalf("trial %d u=%d k=%d: greedy %d > (1+lnΔ)·opt = %.2f",
					trial, u, k, greedy, bound)
			}
		}
	}
}

func TestOptimalDomTreeLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 15; trial++ {
		g := randomConnected(12+rng.Intn(12), 20, rng)
		u := rng.Intn(g.N())
		for _, beta := range []int{0, 1} {
			r := 3
			lb, _ := OptimalDomTreeLowerBound(g, u, r, beta, 1<<20)
			tr := Greedy(g, nil, u, r, beta)
			if tr.EdgeCount() < lb {
				t.Fatalf("trial %d: greedy tree %d edges below lower bound %d",
					trial, tr.EdgeCount(), lb)
			}
		}
	}
}

func TestExactMultiCoverEdgeCases(t *testing.T) {
	// Empty instance.
	if got, ok := exactMultiCover(coverInstance{}, 1, 1000); !ok || got != 0 {
		t.Fatalf("empty instance: got=%d ok=%v", got, ok)
	}
	// Single element, single candidate.
	inst := coverInstance{req: []int{1}, covers: [][]int32{{0}}}
	if got, ok := exactMultiCover(inst, 2, 1000); !ok || got != 1 {
		t.Fatalf("got=%d ok=%v", got, ok)
	}
	// Infeasible demand.
	inst2 := coverInstance{req: []int{2}, covers: [][]int32{{0}}}
	if _, ok := exactMultiCover(inst2, 2, 1000); ok {
		t.Fatal("infeasible instance should fail")
	}
}

func TestOptimalKCoverOnStar(t *testing.T) {
	// Star: no distance-2 vertices, optimal cover is 0.
	g := gen.Star(6)
	got, ok := OptimalKCoverSize(g, 0, 2, 1000)
	if !ok || got != 0 {
		t.Fatalf("star center: got=%d ok=%v", got, ok)
	}
	// Leaf of star: distance-2 vertices are the other leaves, all
	// covered only via the center.
	got2, ok2 := OptimalKCoverSize(g, 1, 3, 1000)
	if !ok2 || got2 != 1 {
		t.Fatalf("star leaf: got=%d ok=%v", got2, ok2)
	}
}
