package domtree

import (
	"fmt"

	"remspan/internal/graph"
)

// Greedy computes Algorithm 1 DomTreeGdy(r, β) for root u: an
// (r, β)-dominating tree built by solving, for each ring
// r' = 2..r, a greedy set cover of the vertices at distance r' with the
// balls of candidates in distance range [r'−1, r'−1+β]. Paths are
// attached along a shared BFS tree, keeping d_T(u, x) = d_G(u, x).
//
// Determinism contract: every greedy selection in this package picks
// the candidate maximizing the current gain, breaking ties by smallest
// vertex id — i.e. selection order is (gain desc, id asc). The
// lazy-heap production builders (GreedyCSR, KGreedyCSR) must preserve
// this order bit-for-bit; they do, because gains only decrease, so when
// a popped heap entry's recomputed gain equals its key, every other
// candidate's true gain is bounded by its own key ≤ that key, and equal
// keys pop in id order. Any change to this tie-break is a breaking
// change to the constructed edge sets and must update the reference
// builders, the CSR builders and the equivalence tests together.
//
// β must be 0 or 1 (the only values the paper uses); r ≥ 2.
// scratch may be nil; pass one to amortize allocations across roots.
// This is the map-based reference implementation; production sweeps use
// GreedyCSR.
func Greedy(g *graph.Graph, scratch *graph.BFSScratch, u, r, beta int) *graph.Tree {
	if r < 2 {
		panic("domtree: Greedy requires r >= 2")
	}
	if beta != 0 && beta != 1 {
		panic("domtree: Greedy requires beta in {0, 1}")
	}
	if scratch == nil {
		scratch = graph.NewBFSScratch(g.N())
	}
	radius := r - 1 + beta
	if r > radius {
		radius = r
	}
	dist, parent, visited := scratch.Bounded(g, u, radius)

	t := graph.NewTree(g.N(), u)
	covered := make(map[int32]bool) // covered S-members of the current ring

	for rp := 2; rp <= r; rp++ {
		// S: uncovered vertices at distance exactly rp.
		// X: candidates at distance in [rp-1, rp-1+beta].
		var s []int32
		var x []int32
		lo, hi := int32(rp-1), int32(rp-1+beta)
		for _, v := range visited {
			if dist[v] == int32(rp) {
				s = append(s, v)
			}
			if dist[v] >= lo && dist[v] <= hi {
				x = append(x, v)
			}
		}
		for k := range covered {
			delete(covered, k)
		}
		remaining := len(s)
		inS := make(map[int32]bool, len(s))
		for _, v := range s {
			inS[v] = true
		}
		picked := make(map[int32]bool)
		// gain(c) = |B_G(c,1) ∩ S_uncovered|.
		gain := func(c int32) int {
			gcount := 0
			if inS[c] && !covered[c] {
				gcount++
			}
			for _, w := range g.Neighbors(int(c)) {
				if inS[w] && !covered[w] {
					gcount++
				}
			}
			return gcount
		}
		for remaining > 0 {
			best, bestGain := int32(-1), 0
			for _, c := range x {
				if picked[c] {
					continue
				}
				if gc := gain(c); gc > bestGain || (gc == bestGain && gc > 0 && (best == -1 || c < best)) {
					best, bestGain = c, gc
				}
			}
			if best == -1 || bestGain == 0 {
				panic(fmt.Sprintf("domtree: greedy cover stuck at ring %d of root %d", rp, u))
			}
			picked[best] = true
			t.AddPath(parent, int(best))
			if inS[best] && !covered[best] {
				covered[best] = true
				remaining--
			}
			for _, w := range g.Neighbors(int(best)) {
				if inS[w] && !covered[w] {
					covered[w] = true
					remaining--
				}
			}
		}
	}
	return t
}
