package domtree

import (
	"math/rand"
	"testing"

	"remspan/internal/gen"
	"remspan/internal/graph"
)

// treeEdgesEqual compares two trees as rooted edge sets: same root and
// identical (child, parent) assignments.
func treeEdgesEqual(a, b *graph.Tree) bool {
	if a.Root() != b.Root() || a.Size() != b.Size() || a.EdgeCount() != b.EdgeCount() {
		return false
	}
	for _, v := range a.Nodes() {
		if !b.Contains(int(v)) || a.Parent(int(v)) != b.Parent(int(v)) {
			return false
		}
	}
	return true
}

// builderPair couples a map-based reference builder with its CSR
// production form.
type builderPair struct {
	name string
	ref  func(g *graph.Graph, u int) *graph.Tree
	csr  func(c *graph.CSR, s *Scratch, u int) *graph.Tree
}

func pairs() []builderPair {
	return []builderPair{
		{"kgreedy-1",
			func(g *graph.Graph, u int) *graph.Tree { return KGreedy(g, u, 1) },
			func(c *graph.CSR, s *Scratch, u int) *graph.Tree { return KGreedyCSR(c, s, u, 1) }},
		{"kgreedy-3",
			func(g *graph.Graph, u int) *graph.Tree { return KGreedy(g, u, 3) },
			func(c *graph.CSR, s *Scratch, u int) *graph.Tree { return KGreedyCSR(c, s, u, 3) }},
		{"greedy-r3-b0",
			func(g *graph.Graph, u int) *graph.Tree { return Greedy(g, nil, u, 3, 0) },
			func(c *graph.CSR, s *Scratch, u int) *graph.Tree { return GreedyCSR(c, s, u, 3, 0) }},
		{"greedy-r3-b1",
			func(g *graph.Graph, u int) *graph.Tree { return Greedy(g, nil, u, 3, 1) },
			func(c *graph.CSR, s *Scratch, u int) *graph.Tree { return GreedyCSR(c, s, u, 3, 1) }},
		{"mis-r3",
			func(g *graph.Graph, u int) *graph.Tree { return MIS(g, nil, u, 3) },
			func(c *graph.CSR, s *Scratch, u int) *graph.Tree { return MISCSR(c, s, u, 3) }},
		{"kmis-2",
			func(g *graph.Graph, u int) *graph.Tree { return KMIS(g, u, 2) },
			func(c *graph.CSR, s *Scratch, u int) *graph.Tree { return KMISCSR(c, s, u, 2) }},
	}
}

// checkAllRoots asserts per-root tree identity between reference and
// CSR builders, sharing one scratch across roots (the production usage
// pattern, so stale-state bugs surface).
func checkAllRoots(t *testing.T, name string, g *graph.Graph) {
	t.Helper()
	c := graph.NewCSR(g)
	for _, p := range pairs() {
		s := NewScratch(g.N())
		for u := 0; u < g.N(); u++ {
			want := p.ref(g, u)
			got := p.csr(c, s, u)
			if !treeEdgesEqual(want, got) {
				t.Fatalf("%s/%s: tree mismatch at root %d (ref %d edges, csr %d edges)",
					name, p.name, u, want.EdgeCount(), got.EdgeCount())
			}
		}
	}
}

func TestCSREquivalenceFixedFamilies(t *testing.T) {
	families := map[string]*graph.Graph{
		"ring13":    gen.Ring(13),
		"path9":     gen.Path(9),
		"star12":    gen.Star(12),
		"complete9": gen.Complete(9),
		"grid5x6":   gen.Grid(5, 6),
		"petersen":  gen.Petersen(),
		"hypercube": gen.Hypercube(4),
		"barbell":   gen.Barbell(5, 3),
		// Balls far smaller than n: exercises the small-ball sort
		// branch of MISCSR (the others hit the dense bucket branch).
		"ring200":   gen.Ring(200),
		"grid20x20": gen.Grid(20, 20),
	}
	for name, g := range families {
		checkAllRoots(t, name, g)
	}
}

func TestCSREquivalenceRandomFamilies(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		checkAllRoots(t, "erdos-renyi", gen.ErdosRenyi(40, 0.12, rng))
		checkAllRoots(t, "gnm", gen.GNM(36, 90, rng))
		tree := gen.RandomTree(30, rng)
		for i := 0; i < 25; i++ {
			u, v := rng.Intn(30), rng.Intn(30)
			if u != v {
				tree.AddEdge(u, v)
			}
		}
		checkAllRoots(t, "tree-plus-chords", tree)
	}
}

// TestScratchReuseAcrossSizes guards the nil/undersized-scratch path.
func TestScratchReuseAcrossSizes(t *testing.T) {
	small := gen.Ring(8)
	big := gen.Grid(6, 6)
	s := NewScratch(big.N())
	cs, cb := graph.NewCSR(small), graph.NewCSR(big)
	for u := 0; u < small.N(); u++ {
		if !treeEdgesEqual(KGreedy(small, u, 2), KGreedyCSR(cs, s, u, 2)) {
			t.Fatalf("shared big scratch on small graph diverged at %d", u)
		}
	}
	for u := 0; u < big.N(); u++ {
		if !treeEdgesEqual(KGreedy(big, u, 2), KGreedyCSR(cb, s, u, 2)) {
			t.Fatalf("scratch reuse across sizes diverged at %d", u)
		}
	}
	// nil scratch must still work.
	if !treeEdgesEqual(KGreedy(big, 0, 2), KGreedyCSR(cb, nil, 0, 2)) {
		t.Fatal("nil scratch diverged")
	}
}

// FuzzCSREquivalence decodes an arbitrary byte string into a graph and
// asserts the CSR builders match the map-based references on every
// root. Each byte pair (a, b) adds edge {a%n, b%n}.
func FuzzCSREquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 2, 3, 3, 4, 4, 0, 0, 2})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 1, 2, 3, 4})
	f.Add([]byte{7, 3, 9, 1, 4, 4, 5, 8, 2, 6, 0, 9, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 12
		g := graph.New(n)
		for i := 0; i+1 < len(data) && i < 64; i += 2 {
			u, v := int(data[i])%n, int(data[i+1])%n
			if u != v {
				g.AddEdge(u, v)
			}
		}
		c := graph.NewCSR(g)
		for _, p := range pairs() {
			s := NewScratch(n)
			for u := 0; u < n; u++ {
				want := p.ref(g, u)
				got := p.csr(c, s, u)
				if !treeEdgesEqual(want, got) {
					t.Fatalf("%s: mismatch at root %d", p.name, u)
				}
			}
		}
	})
}
