package domtree

import (
	"container/heap"
	"fmt"

	"remspan/internal/graph"
)

// KGreedyLazy is KGreedy with lazy gain re-evaluation (the classic
// priority-queue accelerated greedy set cover): candidate gains only
// decrease, so a max-heap of possibly-stale gains pops the true argmax
// after at most a few refreshes. Output is bit-identical to KGreedy —
// the heap orders by (gain desc, id asc), matching the eager
// tie-breaking — at a fraction of the scans on high-degree roots.
func KGreedyLazy(g *graph.Graph, u, k int) *graph.Tree {
	if k < 1 {
		panic("domtree: KGreedyLazy requires k >= 1")
	}
	t := graph.NewTree(g.N(), u)
	nu := g.Neighbors(u)

	inS := make(map[int32]bool)
	for _, w := range nu {
		for _, v := range g.Neighbors(int(w)) {
			if v != int32(u) && !g.HasEdge(u, int(v)) {
				inS[v] = true
			}
		}
	}
	if len(inS) == 0 {
		return t
	}
	hits := make(map[int32]int, len(inS))
	commonLeft := make(map[int32]int, len(inS))
	for v := range inS {
		commonLeft[v] = len(g.CommonNeighbors(u, int(v)))
	}

	trueGain := func(x int32) int {
		c := 0
		for _, v := range g.Neighbors(int(x)) {
			if inS[v] {
				c++
			}
		}
		return c
	}

	h := &gainHeap{}
	for _, x := range nu {
		h.items = append(h.items, gainItem{id: x, gain: trueGain(x)})
	}
	heap.Init(h)

	for len(inS) > 0 {
		if h.Len() == 0 {
			panic(fmt.Sprintf("domtree: lazy k-cover stuck at root %d (|S|=%d)", u, len(inS)))
		}
		top := heap.Pop(h).(gainItem)
		fresh := trueGain(top.id)
		if fresh != top.gain {
			// Stale: refresh and retry.
			if fresh > 0 {
				heap.Push(h, gainItem{id: top.id, gain: fresh})
			}
			continue
		}
		if fresh == 0 {
			continue
		}
		best := top.id
		t.Add(int(best), u)
		for _, v := range g.Neighbors(int(best)) {
			if !inS[v] {
				continue
			}
			hits[v]++
			commonLeft[v]--
			if hits[v] >= k || commonLeft[v] == 0 {
				delete(inS, v)
			}
		}
	}
	return t
}

type gainItem struct {
	id   int32
	gain int
}

// gainHeap is a max-heap on (gain, then smaller id first), matching the
// eager greedy's deterministic tie-break.
type gainHeap struct {
	items []gainItem
}

func (h *gainHeap) Len() int { return len(h.items) }
func (h *gainHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	return a.id < b.id
}
func (h *gainHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *gainHeap) Push(x interface{}) { h.items = append(h.items, x.(gainItem)) }
func (h *gainHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
