// Package domtree implements the paper's dominating-tree constructions
// — the local building blocks of remote-spanners:
//
//   - Greedy: Algorithm 1, DomTreeGdy(r, β), a greedy set-cover tree
//     within (1+β)(r+β−1)(1+log Δ) of optimal (Prop. 2).
//   - MIS: Algorithm 2, DomTreeMIS(r, 1), a maximal-independent-set
//     tree with O(r^{p+1}) edges in doubling unit-ball graphs (Prop. 3).
//   - KGreedy: Algorithm 4, DomTreeGdy(2, 0, k), greedy k-coverage
//     multipoint-relay selection within 1+log Δ of optimal (Prop. 6).
//   - KMIS: Algorithm 5, DomTreeMIS(2, 1, k), k rounds of MIS
//     domination building a k-connecting (2, 1)-dominating tree with
//     O(k²) edges in doubling unit-ball graphs (Prop. 7).
//
// All selections break ties by smallest vertex id, so constructions are
// deterministic (see the determinism contract in greedy.go). Exact
// optimal (multi-)cover sizes for the approximation-ratio experiments
// live in optimal.go.
//
// Each algorithm exists in two forms: a map-based reference
// implementation (this file's siblings kgreedy.go, greedy.go, mis.go,
// kmis.go) kept for clarity and as the oracle of the equivalence tests,
// and a production form in csr.go running over an immutable graph.CSR
// snapshot with reusable Scratch state — bit-identical output, no
// per-root allocations.
package domtree

import (
	"remspan/internal/graph"
)

// An (r, β)-dominating tree for u (paper §1.1): a tree T rooted at u
// such that every v with 2 ≤ d_G(u, v) = r' ≤ r has a neighbor
// x ∈ N(v) ∩ V(T) with d_T(u, x) ≤ r' − 1 + β.

// IsDominatingTree checks the (r, β)-dominating-tree property of t for
// its root, returning a counterexample vertex (-1 when the property
// holds). It also validates tree consistency against g.
func IsDominatingTree(g *graph.Graph, t *graph.Tree, r, beta int) (badVertex int, err error) {
	if err := t.Validate(g); err != nil {
		return -1, err
	}
	u := t.Root()
	dist := graph.BFS(g, u)
	for v := 0; v < g.N(); v++ {
		d := int(dist[v])
		if d < 2 || d > r {
			continue
		}
		ok := false
		for _, x := range g.Neighbors(v) {
			if t.Contains(int(x)) && t.Depth(int(x)) <= d-1+beta {
				ok = true
				break
			}
		}
		if !ok {
			return v, nil
		}
	}
	return -1, nil
}

// A k-connecting (2, β)-dominating tree for u (paper §3): for every v
// at distance 2 from u, either uw ∈ E(T) for all w ∈ N(u) ∩ N(v), or v
// has k neighbors in B_T(u, 1+β) whose tree paths to u are internally
// disjoint.

// IsKConnDominatingTree checks the k-connecting (2, β)-dominating-tree
// property, returning a counterexample vertex (-1 when it holds).
func IsKConnDominatingTree(g *graph.Graph, t *graph.Tree, k, beta int) (badVertex int, err error) {
	if err := t.Validate(g); err != nil {
		return -1, err
	}
	u := t.Root()
	dist := graph.BFS(g, u)
	for v := 0; v < g.N(); v++ {
		if dist[v] != 2 {
			continue
		}
		// Escape clause: all common neighbors are direct children of u.
		all := true
		for _, w := range g.CommonNeighbors(u, v) {
			if !(t.Contains(int(w)) && t.Parent(int(w)) == u) {
				all = false
				break
			}
		}
		if all {
			continue
		}
		if countDisjointWitnesses(g, t, v, 1+beta) >= k {
			continue
		}
		return v, nil
	}
	return -1, nil
}

// countDisjointWitnesses counts the maximum number of neighbors of v
// inside B_T(root, maxDepth) whose root paths are internally disjoint,
// i.e. the number of distinct root branches they occupy.
func countDisjointWitnesses(g *graph.Graph, t *graph.Tree, v, maxDepth int) int {
	branches := make(map[int]struct{})
	for _, w := range g.Neighbors(v) {
		wi := int(w)
		if !t.Contains(wi) {
			continue
		}
		d := t.Depth(wi)
		if d < 1 || d > maxDepth {
			continue
		}
		branches[t.Branch(wi)] = struct{}{}
	}
	return len(branches)
}
