package domtree

import (
	"sort"

	"remspan/internal/graph"
)

// KMIS computes Algorithm 5 DomTreeMIS(2, 1, k) for root u: a
// k-connecting (2, 1)-dominating tree. It runs k rounds; each round
// greedily picks an independent set of still-uncovered distance-2
// vertices (smallest id first) and attaches each pick x through a fresh
// common neighbor y1 (path u–y1–x) plus up to k−1 further fresh common
// neighbors as direct children of u. A vertex v leaves S once its
// common neighborhood with u is exhausted into V(T) or it sees k
// branch-disjoint tree neighbors within depth 2.
//
// In a unit-ball graph of a doubling metric the tree has O(k²) edges
// (Prop. 7). With k = 2, unions of these trees form 2-connecting
// (2,−1)-remote-spanners (Prop. 4, Th. 3).
func KMIS(g *graph.Graph, u, k int) *graph.Tree {
	if k < 1 {
		panic("domtree: KMIS requires k >= 1")
	}
	t := graph.NewTree(g.N(), u)

	// S: vertices at distance exactly 2 from u.
	inS := make(map[int32]bool)
	for _, w := range g.Neighbors(u) {
		for _, v := range g.Neighbors(int(w)) {
			if v != int32(u) && !g.HasEdge(u, int(v)) {
				inS[v] = true
			}
		}
	}
	commonLeft := make(map[int32]int, len(inS))
	for v := range inS {
		commonLeft[v] = len(g.CommonNeighbors(u, int(v)))
	}

	covered := func(v int32) bool {
		return commonLeft[v] == 0 || countDisjointWitnesses(g, t, int(v), 2) >= k
	}
	// addToTree attaches a fresh common neighbor y; decrements
	// commonLeft of y's distance-2 neighbors.
	noteTreeMember := func(y int32) {
		for _, v := range g.Neighbors(int(y)) {
			if inS[v] {
				commonLeft[v]--
			}
		}
	}

	for round := 0; round < k && len(inS) > 0; round++ {
		// X := S (snapshot), processed in increasing id.
		order := make([]int32, 0, len(inS))
		for v := range inS {
			order = append(order, v)
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		inX := make(map[int32]bool, len(order))
		for _, v := range order {
			inX[v] = true
		}

		for len(inS) > 0 {
			// Pick the smallest-id x in S ∩ X.
			x := int32(-1)
			for _, v := range order {
				if inX[v] && inS[v] {
					x = v
					break
				}
			}
			if x == -1 {
				break
			}
			// Fresh common neighbors of x and u.
			var fresh []int32
			for _, y := range g.CommonNeighbors(u, int(x)) {
				if !t.Contains(int(y)) {
					fresh = append(fresh, y)
				}
			}
			c := k
			if len(fresh) < c {
				c = len(fresh)
			}
			// x ∈ S implies commonLeft[x] > 0, so c >= 1 (see Prop. 7
			// termination argument); attach u–y1–x then u–y2.. u–yc.
			var affected []int32
			y1 := fresh[0]
			t.Add(int(y1), u)
			noteTreeMember(y1)
			t.Add(int(x), int(y1))
			affected = append(affected, g.Neighbors(int(y1))...)
			affected = append(affected, g.Neighbors(int(x))...)
			for i := 1; i < c; i++ {
				t.Add(int(fresh[i]), u)
				noteTreeMember(fresh[i])
				affected = append(affected, g.Neighbors(int(fresh[i]))...)
			}
			// Coverage can only have changed for S-vertices adjacent to
			// a newly added tree node.
			for _, v := range affected {
				if inS[v] && covered(v) {
					delete(inS, v)
				}
			}
			// X := X \ B_G(x, 1).
			delete(inX, x)
			for _, w := range g.Neighbors(int(x)) {
				delete(inX, w)
			}
		}
	}
	return t
}
