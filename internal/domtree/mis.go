package domtree

import (
	"sort"

	"remspan/internal/graph"
)

// MIS computes Algorithm 2 DomTreeMIS(r, 1) for root u: an
// (r, 1)-dominating tree obtained by greedily building a maximal
// independent set of B_G(u, r) \ B_G(u, 1) in order of increasing
// distance from u (ties by smallest id), attaching each MIS point via
// its BFS shortest path. In a unit-ball graph of a metric with doubling
// dimension p the tree has O(r^{p+1}) edges (Prop. 3).
//
// scratch may be nil; pass one to amortize allocations across roots.
func MIS(g *graph.Graph, scratch *graph.BFSScratch, u, r int) *graph.Tree {
	if r < 2 {
		panic("domtree: MIS requires r >= 2")
	}
	if scratch == nil {
		scratch = graph.NewBFSScratch(g.N())
	}
	dist, parent, visited := scratch.Bounded(g, u, r)

	// B = vertices with 2 <= dist <= r, processed by (dist, id).
	b := make([]int32, 0, len(visited))
	for _, v := range visited {
		if dist[v] >= 2 {
			b = append(b, v)
		}
	}
	sort.Slice(b, func(i, j int) bool {
		if dist[b[i]] != dist[b[j]] {
			return dist[b[i]] < dist[b[j]]
		}
		return b[i] < b[j]
	})

	t := graph.NewTree(g.N(), u)
	removed := make(map[int32]bool, len(b))
	for _, x := range b {
		if removed[x] {
			continue
		}
		// x is the remaining vertex of B at minimal distance from u.
		t.AddPath(parent, int(x))
		removed[x] = true
		for _, w := range g.Neighbors(int(x)) {
			removed[w] = true
		}
	}
	return t
}
