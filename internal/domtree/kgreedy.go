package domtree

import (
	"fmt"

	"remspan/internal/graph"
)

// KGreedy computes Algorithm 4 DomTreeGdy(2, 0, k) for root u: a
// k-connecting (2, 0)-dominating tree (a depth-1 star of multipoint
// relays). The greedy multicover heuristic picks, at each step, the
// neighbor of u covering the most distance-2 vertices that are still
// uncovered; a vertex v leaves S once it has k relay neighbors or all
// of N(v) ∩ N(u) has been selected. Within 1+log Δ of the optimal
// k-cover (Prop. 6).
//
// For k = 1 this is exactly OLSR multipoint-relay selection, and the
// union of these trees over all roots is a (1, 0)-remote-spanner
// (Prop. 5).
func KGreedy(g *graph.Graph, u, k int) *graph.Tree {
	if k < 1 {
		panic("domtree: KGreedy requires k >= 1")
	}
	t := graph.NewTree(g.N(), u)
	nu := g.Neighbors(u)

	// S: vertices at distance exactly 2 from u.
	inS := make(map[int32]bool)
	for _, w := range nu {
		for _, v := range g.Neighbors(int(w)) {
			if v != int32(u) && !g.HasEdge(u, int(v)) {
				inS[v] = true
			}
		}
	}

	// Per-S-vertex state: how many selected relays cover it and how
	// many of its common neighbors with u remain unselected.
	hits := make(map[int32]int, len(inS))
	commonLeft := make(map[int32]int, len(inS))
	for v := range inS {
		commonLeft[v] = len(g.CommonNeighbors(u, int(v)))
	}

	// gain[x] = |N(x) ∩ S| for candidate relays x ∈ N(u), maintained
	// exactly as vertices leave S.
	gain := make(map[int32]int, len(nu))
	for _, x := range nu {
		c := 0
		for _, v := range g.Neighbors(int(x)) {
			if inS[v] {
				c++
			}
		}
		gain[x] = c
	}
	selected := make(map[int32]bool, len(nu))

	removeFromS := func(v int32) {
		delete(inS, v)
		for _, w := range g.Neighbors(int(v)) {
			if _, ok := gain[w]; ok && !selected[w] {
				gain[w]--
			}
		}
	}

	for len(inS) > 0 {
		best, bestGain := int32(-1), 0
		for _, x := range nu {
			if selected[x] {
				continue
			}
			if gc := gain[x]; gc > bestGain || (gc == bestGain && gc > 0 && (best == -1 || x < best)) {
				best, bestGain = x, gc
			}
		}
		if best == -1 {
			panic(fmt.Sprintf("domtree: k-cover stuck at root %d (|S|=%d)", u, len(inS)))
		}
		selected[best] = true
		t.Add(int(best), u)
		// Update coverage of best's distance-2 neighbors.
		for _, v := range g.Neighbors(int(best)) {
			if !inS[v] {
				continue
			}
			hits[v]++
			commonLeft[v]--
			if hits[v] >= k || commonLeft[v] == 0 {
				removeFromS(v)
			}
		}
	}
	return t
}

// MPRSet returns the multipoint-relay set of u implied by its
// k-connecting (2,0)-dominating tree: the children of the root.
func MPRSet(t *graph.Tree) []int32 {
	var out []int32
	root := t.Root()
	for _, v := range t.Nodes() {
		if t.Parent(int(v)) == root {
			out = append(out, v)
		}
	}
	return out
}
