package domtree

import (
	"remspan/internal/graph"
)

// Scratch holds every piece of per-root working state the CSR-based
// builders (KGreedyCSR, GreedyCSR, MISCSR, KMISCSR) need, so an
// all-roots construction sweep performs no per-root allocations:
//
//   - epoch-stamped uint32 arrays stand in for the map[int32]bool sets
//     of the reference builders (membership ⇔ stamp equals the epoch the
//     set was built under; removal rewinds the stamp to zero, which is
//     never a live epoch);
//   - int32 counter arrays stand in for the map[int32]int counters
//     (hits, commonLeft), initialized lazily at stamping time;
//   - a pooled graph.Tree reset per root in O(previous tree size);
//   - a graph.BFSScratch for the bounded traversals;
//   - a reusable max-heap for lazy greedy selection.
//
// A Scratch is not safe for concurrent use; give each worker its own.
// The tree returned by a builder is owned by the scratch and valid only
// until the next builder call with the same scratch.
type Scratch struct {
	n   int
	bfs *graph.BFSScratch
	t   *graph.Tree

	epoch  uint32
	stampA []uint32
	stampB []uint32
	stampC []uint32
	stampD []uint32

	cnt1 []int32 // relay hit counts (KGreedy)
	cnt2 []int32 // remaining common neighbors with the root

	heap gainHeap

	buf1 []int32
	buf2 []int32
	buf3 []int32
	buf4 []int32
}

// NewScratch returns scratch space for graphs with up to n vertices.
func NewScratch(n int) *Scratch {
	return &Scratch{
		n:      n,
		bfs:    graph.NewBFSScratch(n),
		stampA: make([]uint32, n),
		stampB: make([]uint32, n),
		stampC: make([]uint32, n),
		stampD: make([]uint32, n),
		cnt1:   make([]int32, n),
		cnt2:   make([]int32, n),
	}
}

// ensure returns s when it is usable for an n-vertex graph, or a fresh
// scratch otherwise (nil s keeps the builders usable standalone). It
// also reserves epoch headroom for the upcoming builder call: when the
// counter passes 2³¹, every stamp array is re-zeroed and the counter
// rewinds — at a call boundary, where no live epochs exist. A single
// call can never consume the remaining 2³¹ epochs (one epoch per
// logical set or witness check, bounded well below the int32 edge
// capacity of a CSR), so the counter cannot wrap mid-call, which would
// invalidate epochs captured earlier in the same call.
func ensure(s *Scratch, n int) *Scratch {
	if s == nil || s.n < n {
		return NewScratch(n) //remspan:coldpath first-call/regrow fallback; steady state reuses the caller's scratch
	}
	if s.epoch >= 1<<31 {
		for i := range s.stampA {
			s.stampA[i] = 0
			s.stampB[i] = 0
			s.stampC[i] = 0
			s.stampD[i] = 0
		}
		s.epoch = 0
	}
	return s
}

// nextEpoch starts a new stamp generation. Callers capture the returned
// epoch per logical set; bumping again for another set does not disturb
// earlier sets because they live in different stamp arrays (or disjoint
// phases). Zero is never a live epoch, so rewinding a stamp to zero
// removes an element. Wrap safety is handled at call boundaries in
// ensure.
func (s *Scratch) nextEpoch() uint32 {
	s.epoch++
	return s.epoch
}

// tree returns the pooled output tree reset to contain only root.
func (s *Scratch) tree(root int) *graph.Tree {
	if s.t == nil {
		s.t = graph.NewTree(s.n, root) //remspan:coldpath lazy first-call init; later roots reuse the pooled tree
	} else {
		s.t.Reset(root)
	}
	return s.t
}

// disjointWitnesses is countDisjointWitnesses on the CSR snapshot with a
// stamp array instead of a branch map: the number of distinct root
// branches among v's tree neighbors within depth [1, maxDepth].
func (s *Scratch) disjointWitnesses(c graph.View, t *graph.Tree, v, maxDepth int) int {
	seen := s.stampD
	e := s.nextEpoch()
	count := 0
	for _, w := range c.Neighbors(v) {
		wi := int(w)
		if !t.Contains(wi) {
			continue
		}
		d := t.Depth(wi)
		if d < 1 || d > maxDepth {
			continue
		}
		b := t.Branch(wi)
		if seen[b] != e {
			seen[b] = e
			count++
		}
	}
	return count
}

// --- allocation-free max-heap for lazy greedy selection ---
//
// Orders by (gain desc, id asc) — exactly the eager builders'
// deterministic tie-break (see the determinism contract in greedy.go) —
// without the interface boxing of container/heap.

func (h *gainHeap) reset() { h.items = h.items[:0] }

func (h *gainHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	return a.id < b.id
}

func (h *gainHeap) push(it gainItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *gainHeap) siftDown(i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(l, m) {
			m = l
		}
		if r < n && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
}

func (h *gainHeap) pop() gainItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	h.siftDown(0, last)
	return top
}

// initHeap heapifies the current items in O(len).
func (h *gainHeap) initHeap() {
	n := len(h.items)
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i, n)
	}
}
