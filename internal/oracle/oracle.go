// Package oracle builds approximate distance oracles from
// remote-spanners — one of the classical spanner applications the paper
// lists in its introduction, adapted to the remote setting: the oracle
// stores the spanner H plus each node's own adjacency (exactly the
// knowledge a router has), and answers d̂(u, v) = d_{H_u}(u, v), which
// the remote-spanner property bounds by α·d_G(u, v) + β.
//
// Queries run one star-seeded BFS over CSR snapshots of H (u's
// incident edges from G, everything else from H); storage is
// |E(H)| + Σdeg words instead of the n² of an exact all-pairs table.
// Validate, the all-pairs self-check, runs on the word-parallel
// 64-source batch engine (graph.BitScratch + spanner.JudgeViews):
// O(n·m/64) word operations instead of the O(n²·m) of re-running a
// per-pair query BFS.
package oracle

import (
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

// Oracle answers approximate distance queries over a fixed graph.
type Oracle struct {
	g      *graph.Graph // adjacency membership for the Query fast path
	cg, ch *graph.CSR   // immutable traversal snapshots of G and H
	st     spanner.Stretch

	// per-query scratch (the oracle is not safe for concurrent use;
	// Clone per goroutine).
	scratch *spanner.ViewScratch
}

// New builds an oracle from a graph and a remote-spanner of it with the
// given guarantee.
func New(g, h *graph.Graph, st spanner.Stretch) *Oracle {
	return &Oracle{
		g: g, cg: graph.NewCSR(g), ch: graph.NewCSR(h), st: st,
		scratch: spanner.NewViewScratch(g.N()),
	}
}

// Clone returns an independently usable oracle sharing the immutable
// graph data.
func (o *Oracle) Clone() *Oracle {
	return &Oracle{
		g: o.g, cg: o.cg, ch: o.ch, st: o.st,
		scratch: spanner.NewViewScratch(o.g.N()),
	}
}

// Stretch returns the guarantee the oracle answers under:
// d_G(u,v) ≤ Query(u,v) ≤ α·d_G(u,v) + β.
func (o *Oracle) Stretch() spanner.Stretch { return o.st }

// StorageWords returns the oracle's storage footprint in int32 words:
// the spanner edges (twice, adjacency form) plus the query node's
// neighbor lists.
func (o *Oracle) StorageWords() int {
	return 4*o.ch.M() + 2*o.cg.M()
}

// Query returns d_{H_u}(u, v): an upper bound on d_G(u, v) within the
// oracle's stretch, or -1 when v is unreachable in H_u.
func (o *Oracle) Query(u, v int) int {
	if u == v {
		return 0
	}
	if o.g.HasEdge(u, v) {
		return 1
	}
	return int(o.scratch.BFSCSR(o.cg, o.ch, u)[v])
}

// QueryBatch answers distances from u to every target in one traversal
// over the CSR snapshots.
func (o *Oracle) QueryBatch(u int, targets []int) []int {
	dist := o.scratch.BFSCSR(o.cg, o.ch, u)
	out := make([]int, len(targets))
	for i, t := range targets {
		switch {
		case t == u:
			out[i] = 0
		case o.g.HasEdge(u, t):
			out[i] = 1
		default:
			out[i] = int(dist[t])
		}
	}
	return out
}

// Validate checks the oracle's two-sided guarantee on all pairs:
// d_G ≤ Query ≤ α·d_G + β (upper side only for non-adjacent pairs, as
// the remote-spanner property dictates). Returns the first violating
// pair in (u, v) lexicographic order, or (-1, -1).
//
// Large inputs run 64 sources per sweep on the word-parallel batch
// engine; ValidateScalar is the scalar reference and tiny-n fallback.
// Both scan pairs in the same order, so they return the same witness.
func (o *Oracle) Validate() (int, int) {
	n := o.cg.N()
	// The batched judge only tests the upper bound against a monotone
	// threshold table, so it requires h ⊆ g (no underestimates can
	// exist) and a well-formed stretch (positive denominators, α ≥ 0).
	// Oracles are built from untrusted h and an open Stretch struct —
	// anything outside those preconditions takes the scalar reference,
	// which checks both sides pair by pair.
	if n < 128 || o.st.AlphaDen <= 0 || o.st.BetaDen <= 0 || o.st.AlphaNum < 0 ||
		!o.ch.SubsetOf(o.cg) {
		return o.ValidateScalar()
	}
	// Adjacent pairs (d_G = 1) can never violate — the star seeding
	// pins their estimate to exactly 1 and the bound is only claimed
	// for non-adjacent pairs — and with h ⊆ g the estimate never
	// underestimates, so the deadline-lockstep judge's upper-bound
	// test is the whole check.
	u, v, _, ok := spanner.JudgeViews(o.cg, o.ch, o.st)
	if !ok {
		return -1, -1
	}
	return u, v
}

// ValidateScalar is the scalar reference for Validate: one BFS pair
// per source u — the G distances plus one star-seeded H_u traversal
// answering every target at once — instead of the quadratic blowup of
// a fresh Query BFS per (u, v) pair.
func (o *Oracle) ValidateScalar() (int, int) {
	n := o.cg.N()
	gs := graph.NewBFSScratch(n)
	vs := spanner.NewViewScratch(n)
	for u := 0; u < n; u++ {
		dg, _, _ := gs.BoundedView(o.cg, u, n)
		dh := vs.BFSCSR(o.cg, o.ch, u)
		for v := 0; v < n; v++ {
			if u == v || dg[v] == graph.Unreached {
				continue
			}
			est := dh[v] // == Query(u, v): 1 for G-neighbors by the star seeding
			if est < dg[v] {
				return u, v // never underestimate (Unreached sorts below any d_G)
			}
			if dg[v] >= 2 && !o.st.Holds(int64(dg[v]), int64(est)) {
				return u, v
			}
		}
	}
	return -1, -1
}
