// Package oracle builds approximate distance oracles from
// remote-spanners — one of the classical spanner applications the paper
// lists in its introduction, adapted to the remote setting: the oracle
// stores the spanner H plus each node's own adjacency (exactly the
// knowledge a router has), and answers d̂(u, v) = d_{H_u}(u, v), which
// the remote-spanner property bounds by α·d_G(u, v) + β.
//
// Queries run a bidirectional-flavored BFS over H seeded with u's
// G-edges; storage is |E(H)| + Σdeg words instead of the n² of an exact
// all-pairs table.
package oracle

import (
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

// Oracle answers approximate distance queries over a fixed graph.
type Oracle struct {
	g  *graph.Graph // only u's own row is consulted per query
	h  *graph.Graph // the advertised remote-spanner
	st spanner.Stretch

	// per-query scratch (the oracle is not safe for concurrent use;
	// Clone per goroutine).
	scratch *spanner.ViewScratch
}

// New builds an oracle from a graph and a remote-spanner of it with the
// given guarantee.
func New(g, h *graph.Graph, st spanner.Stretch) *Oracle {
	return &Oracle{g: g, h: h, st: st, scratch: spanner.NewViewScratch(g.N())}
}

// Clone returns an independently usable oracle sharing the immutable
// graph data.
func (o *Oracle) Clone() *Oracle {
	return &Oracle{g: o.g, h: o.h, st: o.st, scratch: spanner.NewViewScratch(o.g.N())}
}

// Stretch returns the guarantee the oracle answers under:
// d_G(u,v) ≤ Query(u,v) ≤ α·d_G(u,v) + β.
func (o *Oracle) Stretch() spanner.Stretch { return o.st }

// StorageWords returns the oracle's storage footprint in int32 words:
// the spanner edges (twice, adjacency form) plus the query node's
// neighbor lists.
func (o *Oracle) StorageWords() int {
	return 4*o.h.M() + 2*o.g.M()
}

// Query returns d_{H_u}(u, v): an upper bound on d_G(u, v) within the
// oracle's stretch, or -1 when v is unreachable in H_u.
func (o *Oracle) Query(u, v int) int {
	if u == v {
		return 0
	}
	if o.g.HasEdge(u, v) {
		return 1
	}
	d := o.scratch.BFS(o.g, o.h, u)[v]
	return int(d)
}

// QueryBatch answers distances from u to every target in one BFS.
func (o *Oracle) QueryBatch(u int, targets []int) []int {
	dist := o.scratch.BFS(o.g, o.h, u)
	out := make([]int, len(targets))
	for i, t := range targets {
		switch {
		case t == u:
			out[i] = 0
		case o.g.HasEdge(u, t):
			out[i] = 1
		default:
			out[i] = int(dist[t])
		}
	}
	return out
}

// Validate checks the oracle's two-sided guarantee on all pairs:
// d_G ≤ Query ≤ α·d_G + β (upper side only for non-adjacent pairs, as
// the remote-spanner property dictates). Returns a violating pair or
// (-1, -1).
func (o *Oracle) Validate() (int, int) {
	q := o.Clone()
	for u := 0; u < o.g.N(); u++ {
		dg := graph.BFS(o.g, u)
		for v := 0; v < o.g.N(); v++ {
			if u == v || dg[v] == graph.Unreached {
				continue
			}
			est := q.Query(u, v)
			if est < int(dg[v]) {
				return u, v // oracle must never underestimate
			}
			if dg[v] >= 2 && !o.st.Holds(int64(dg[v]), int64(est)) {
				return u, v
			}
		}
	}
	return -1, -1
}
