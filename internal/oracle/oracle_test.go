package oracle

import (
	"math/rand"
	"testing"

	"remspan/internal/gen"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

func randomConnected(n, extra int, rng *rand.Rand) *graph.Graph {
	g := gen.RandomTree(n, rng)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func TestExactOracleIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(20+rng.Intn(30), 60, rng)
		res := spanner.Exact(g)
		o := New(g, res.Graph(), spanner.NewStretch(1, 0))
		d := graph.AllPairsDistances(g)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if got := o.Query(u, v); got != int(d[u][v]) {
					t.Fatalf("trial %d: Query(%d,%d)=%d, want %d", trial, u, v, got, d[u][v])
				}
			}
		}
	}
}

func TestLowStretchOracleGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomConnected(50, 100, rng)
	res := spanner.LowStretch(g, 0.5)
	o := New(g, res.Graph(), spanner.LowStretchOf(res.R))
	if u, v := o.Validate(); u != -1 {
		t.Fatalf("guarantee violated at (%d,%d)", u, v)
	}
}

func TestOracleNeverUnderestimates(t *testing.T) {
	// Even with a terrible spanner (empty H), estimates are either -1
	// (unreachable beyond neighbors) or exact for trivial cases — never
	// below d_G.
	g := gen.Ring(10)
	o := New(g, graph.New(10), spanner.NewStretch(1, 0))
	d := graph.AllPairsDistances(g)
	for u := 0; u < 10; u++ {
		for v := 0; v < 10; v++ {
			if u == v {
				continue
			}
			est := o.Query(u, v)
			if est != -1 && est < int(d[u][v]) {
				t.Fatalf("underestimate at (%d,%d): %d < %d", u, v, est, d[u][v])
			}
		}
	}
}

func TestQueryBatchMatchesQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(40, 80, rng)
	res := spanner.TwoConnecting(g)
	o := New(g, res.Graph(), spanner.NewStretch(2, -1))
	targets := []int{0, 5, 17, 39, 12}
	for u := 0; u < g.N(); u += 7 {
		batch := o.QueryBatch(u, targets)
		q := o.Clone()
		for i, tgt := range targets {
			if got := q.Query(u, tgt); got != batch[i] {
				t.Fatalf("batch disagrees at u=%d t=%d: %d vs %d", u, tgt, batch[i], got)
			}
		}
	}
}

func TestStorageSavings(t *testing.T) {
	// The oracle's storage must be far below the n² distance table on a
	// dense UDG-like input.
	rng := rand.New(rand.NewSource(4))
	g := randomConnected(300, 8000, rng)
	res := spanner.Exact(g)
	o := New(g, res.Graph(), spanner.NewStretch(1, 0))
	if o.StorageWords() >= g.N()*g.N() {
		t.Fatalf("storage %d not below n²=%d", o.StorageWords(), g.N()*g.N())
	}
}

func TestCloneIndependence(t *testing.T) {
	g := gen.Ring(12)
	res := spanner.Exact(g)
	o := New(g, res.Graph(), spanner.NewStretch(1, 0))
	c := o.Clone()
	// Interleave queries — scratch reuse must not leak between clones.
	a1 := o.Query(0, 6)
	b1 := c.Query(3, 9)
	a2 := o.Query(0, 6)
	if a1 != a2 || b1 != c.Query(3, 9) {
		t.Fatal("clone interference")
	}
	if o.Stretch() != c.Stretch() {
		t.Fatal("stretch metadata lost")
	}
}
