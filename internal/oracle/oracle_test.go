package oracle

import (
	"math/rand"
	"testing"

	"remspan/internal/gen"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

func randomConnected(n, extra int, rng *rand.Rand) *graph.Graph {
	g := gen.RandomTree(n, rng)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func TestExactOracleIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(20+rng.Intn(30), 60, rng)
		res := spanner.Exact(g)
		o := New(g, res.Graph(), spanner.NewStretch(1, 0))
		d := graph.AllPairsDistances(g)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if got := o.Query(u, v); got != int(d[u][v]) {
					t.Fatalf("trial %d: Query(%d,%d)=%d, want %d", trial, u, v, got, d[u][v])
				}
			}
		}
	}
}

func TestLowStretchOracleGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomConnected(50, 100, rng)
	res := spanner.LowStretch(g, 0.5)
	o := New(g, res.Graph(), spanner.LowStretchOf(res.R))
	if u, v := o.Validate(); u != -1 {
		t.Fatalf("guarantee violated at (%d,%d)", u, v)
	}
}

func TestOracleNeverUnderestimates(t *testing.T) {
	// Even with a terrible spanner (empty H), estimates are either -1
	// (unreachable beyond neighbors) or exact for trivial cases — never
	// below d_G.
	g := gen.Ring(10)
	o := New(g, graph.New(10), spanner.NewStretch(1, 0))
	d := graph.AllPairsDistances(g)
	for u := 0; u < 10; u++ {
		for v := 0; v < 10; v++ {
			if u == v {
				continue
			}
			est := o.Query(u, v)
			if est != -1 && est < int(d[u][v]) {
				t.Fatalf("underestimate at (%d,%d): %d < %d", u, v, est, d[u][v])
			}
		}
	}
}

func TestQueryBatchMatchesQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(40, 80, rng)
	res := spanner.TwoConnecting(g)
	o := New(g, res.Graph(), spanner.NewStretch(2, -1))
	targets := []int{0, 5, 17, 39, 12}
	for u := 0; u < g.N(); u += 7 {
		batch := o.QueryBatch(u, targets)
		q := o.Clone()
		for i, tgt := range targets {
			if got := q.Query(u, tgt); got != batch[i] {
				t.Fatalf("batch disagrees at u=%d t=%d: %d vs %d", u, tgt, batch[i], got)
			}
		}
	}
}

func TestStorageSavings(t *testing.T) {
	// The oracle's storage must be far below the n² distance table on a
	// dense UDG-like input.
	rng := rand.New(rand.NewSource(4))
	g := randomConnected(300, 8000, rng)
	res := spanner.Exact(g)
	o := New(g, res.Graph(), spanner.NewStretch(1, 0))
	if o.StorageWords() >= g.N()*g.N() {
		t.Fatalf("storage %d not below n²=%d", o.StorageWords(), g.N()*g.N())
	}
}

func TestCloneIndependence(t *testing.T) {
	g := gen.Ring(12)
	res := spanner.Exact(g)
	o := New(g, res.Graph(), spanner.NewStretch(1, 0))
	c := o.Clone()
	// Interleave queries — scratch reuse must not leak between clones.
	a1 := o.Query(0, 6)
	b1 := c.Query(3, 9)
	a2 := o.Query(0, 6)
	if a1 != a2 || b1 != c.Query(3, 9) {
		t.Fatal("clone interference")
	}
	if o.Stretch() != c.Stretch() {
		t.Fatal("stretch metadata lost")
	}
}

func TestValidateBatchedMatchesScalar(t *testing.T) {
	// Above the dispatch threshold, Validate runs the 64-source batch
	// engine; it must return exactly the scalar reference's witness —
	// (-1,-1) on intact oracles, the first (u,v) in lexicographic order
	// on broken ones.
	rng := rand.New(rand.NewSource(21))
	g := randomConnected(300, 700, rng)
	good := New(g, spanner.Exact(g).Graph(), spanner.NewStretch(1, 0))
	if su, sv := good.ValidateScalar(); su != -1 || sv != -1 {
		t.Fatalf("scalar rejects exact oracle at (%d,%d)", su, sv)
	}
	if bu, bv := good.Validate(); bu != -1 || bv != -1 {
		t.Fatalf("batched rejects exact oracle at (%d,%d)", bu, bv)
	}
	// Claim (1,0) for a spanner with half its edges knocked out.
	h := dropFuzzEdges(spanner.Exact(g).Graph(), 0.5, rng)
	bad := New(g, h, spanner.NewStretch(1, 0))
	su, sv := bad.ValidateScalar()
	bu, bv := bad.Validate()
	if su != bu || sv != bv {
		t.Fatalf("witness differs: scalar (%d,%d), batched (%d,%d)", su, sv, bu, bv)
	}
	if su == -1 {
		t.Fatal("expected a violation witness for the over-claimed stretch")
	}
}

// BenchmarkOracleValidate regression-pins the Validate cost: the old
// implementation re-ran a Query BFS per (u,v) pair — O(n²·m) — and
// would blow this benchmark up by ~n×; the scalar path is one BFS pair
// per source, the batched path 64 sources per sweep.
func BenchmarkOracleValidate(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	g := randomConnected(1000, 3000, rng)
	o := New(g, spanner.Exact(g).Graph(), spanner.NewStretch(1, 0))
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if u, v := o.ValidateScalar(); u != -1 {
				b.Fatalf("violation at (%d,%d)", u, v)
			}
		}
	})
	b.Run("bitparallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if u, v := o.Validate(); u != -1 {
				b.Fatalf("violation at (%d,%d)", u, v)
			}
		}
	})
}

func TestValidateCatchesUnderestimateOutsideSubset(t *testing.T) {
	// h ⊄ g: a shortcut edge absent from G makes the oracle
	// underestimate. The batched judge only tests the upper bound, so
	// Validate must detect the broken subset precondition and take the
	// two-sided scalar path — and agree with ValidateScalar exactly.
	n := 200 // ≥ 128 so the batched dispatch is reachable
	g := gen.Path(n)
	h := graph.New(n)
	h.AddEdge(1, n-1) // not a G edge: d_{H_0}(0, n-1) = 2 ≪ d_G = n-1
	o := New(g, h, spanner.NewStretch(1, 0))
	su, sv := o.ValidateScalar()
	bu, bv := o.Validate()
	if su != bu || sv != bv {
		t.Fatalf("witness differs: scalar (%d,%d), batched (%d,%d)", su, sv, bu, bv)
	}
	if su == -1 {
		t.Fatal("underestimating oracle reported as valid")
	}
}

func TestValidateMalformedStretchFallsBackToScalar(t *testing.T) {
	// An open Stretch struct permits zero denominators and negative α;
	// the batched judge's threshold table cannot represent those, so
	// Validate must route them to the scalar reference (no panic, same
	// answer).
	rng := rand.New(rand.NewSource(31))
	g := randomConnected(150, 300, rng)
	h := spanner.Exact(g).Graph()
	for _, st := range []spanner.Stretch{
		{AlphaNum: 2, AlphaDen: 1},                          // BetaDen == 0
		{AlphaNum: -1, AlphaDen: 1, BetaNum: 5, BetaDen: 1}, // α < 0
		{AlphaNum: 1, AlphaDen: -1, BetaNum: 0, BetaDen: 1}, // αD < 0
	} {
		o := New(g, h, st)
		su, sv := o.ValidateScalar()
		bu, bv := o.Validate()
		if su != bu || sv != bv {
			t.Fatalf("stretch %+v: scalar (%d,%d), batched (%d,%d)", st, su, sv, bu, bv)
		}
	}
}
