package oracle

import (
	"math/rand"
	"testing"

	"remspan/internal/gen"
	"remspan/internal/geom"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

// dropFuzzEdges removes roughly frac of g's edges — a deliberately
// broken spanner so violation paths are exercised, witnesses included.
func dropFuzzEdges(g *graph.Graph, frac float64, rng *rand.Rand) *graph.Graph {
	h := graph.New(g.N())
	for _, e := range g.Edges() {
		if rng.Float64() >= frac {
			h.AddEdge(int(e[0]), int(e[1]))
		}
	}
	return h
}

// FuzzVerifyEquivalence differentially fuzzes the word-parallel
// verification engine against the scalar reference: on random
// UDG/ER/grid/star graphs (disconnected variants included), the
// bit-parallel Check, MeasureProfile and oracle Validate must agree
// exactly — bit-identical profiles and the same first-violation pair
// under the deterministic batch order. Sizes stay ≥ 128 so the public
// entry points dispatch to the batched engine while the *Scalar
// references stay on the scalar path.
func FuzzVerifyEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(10), uint8(100), uint8(80), int64(1))
	f.Add(uint8(1), uint8(200), uint8(30), uint8(0), int64(2))
	f.Add(uint8(2), uint8(77), uint8(200), uint8(255), int64(3))
	f.Add(uint8(3), uint8(5), uint8(0), uint8(40), int64(4))
	f.Add(uint8(4), uint8(160), uint8(90), uint8(120), int64(5))
	f.Fuzz(func(t *testing.T, fam, size, density, drop uint8, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		switch fam % 5 {
		case 0: // unit-disk
			n := 128 + int(size)
			pts := geom.UniformBox(n, 2, 3+float64(density%6), rng)
			g = geom.UnitDiskGraph(pts, 1)
		case 1: // Erdős–Rényi
			n := 128 + int(size)
			g = gen.ErdosRenyi(n, 0.01+float64(density)/255*0.05, rng)
		case 2: // grid
			g = gen.Grid(8+int(size)%10, 16+int(density)%8)
		case 3: // star
			g = gen.Star(128 + int(size))
		default: // disconnected: two ER blobs + isolated vertices
			na, nb := 64+int(size)%64, 64+int(density)%64
			g = graph.New(na + nb + 5)
			for _, e := range gen.ErdosRenyi(na, 0.05, rng).Edges() {
				g.AddEdge(int(e[0]), int(e[1]))
			}
			for _, e := range gen.ErdosRenyi(nb, 0.05, rng).Edges() {
				g.AddEdge(int(e[0])+na, int(e[1])+na)
			}
		}
		h := dropFuzzEdges(spanner.Exact(g).Graph(), float64(drop)/384, rng)

		for _, st := range []spanner.Stretch{
			spanner.NewStretch(1, 0),
			spanner.NewStretch(2, -1),
			spanner.LowStretchOf(4),
		} {
			want := spanner.CheckScalar(g, h, st)
			got := spanner.Check(g, h, st)
			if (want == nil) != (got == nil) {
				t.Fatalf("Check %v: scalar %v, batched %v", st, want, got)
			}
			if want != nil && *want != *got {
				t.Fatalf("Check %v witness: scalar %+v, batched %+v", st, want, got)
			}
		}

		if want, got := spanner.MeasureProfileScalar(g, h), spanner.MeasureProfile(g, h); want != got {
			t.Fatalf("MeasureProfile: scalar %+v, batched %+v", want, got)
		}

		o := New(g, h, spanner.NewStretch(1, 0))
		su, sv := o.ValidateScalar()
		bu, bv := o.Validate()
		if su != bu || sv != bv {
			t.Fatalf("Validate: scalar (%d,%d), batched (%d,%d)", su, sv, bu, bv)
		}
	})
}
