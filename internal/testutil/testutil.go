// Package testutil holds the small helpers shared by the repo's test
// suites, so cross-package invariants are asserted one way everywhere.
package testutil

import "testing"

// PinAllocs pins fn allocation-free: the steady-state zero-alloc
// contract every warm scratch path in this repo advertises. It fails
// the test when fn averages any heap allocation over runs; what names
// the pinned operation in the failure message. Callers are expected to
// warm buffers to their high-water mark before pinning.
//
// The static half of the same contract is remspanlint's hotalloc
// analyzer; this dynamic pin catches what escape analysis does at run
// time on real graph shapes.
// Under -race the pin is skipped: the race runtime allocates shadow
// state on its own schedule (goroutine park/unpark, sync bookkeeping),
// so AllocsPerRun measures the detector, not the code. The non-race
// test run enforces every pin.
func PinAllocs(t *testing.T, what string, runs int, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skipf("%s: allocation pins are not meaningful under -race", what)
	}
	if allocs := testing.AllocsPerRun(runs, fn); allocs > 0 {
		t.Fatalf("%s allocates %.1f times per run, want 0", what, allocs)
	}
}
