//go:build !race

package testutil

// raceEnabled reports whether this binary was built with -race; see
// PinAllocs for why allocation pins skip themselves under the
// detector.
const raceEnabled = false
