package sched

import (
	"sync/atomic"
	"testing"
)

// FuzzShardCoverage drives the scheduler over adversarial (items,
// width, span) triples and asserts the two load-bearing invariants:
// every index runs exactly once, and a deterministic ordered fold over
// per-shard results equals the serial fold.
func FuzzShardCoverage(f *testing.F) {
	f.Add(100, 4, 7)
	f.Add(1, 16, 1)
	f.Add(65, 2, 64)
	f.Add(4096, 3, 4096)
	f.Add(9999, 8, 0)
	f.Fuzz(func(t *testing.T, items, width, span int) {
		if items < 0 || items > 1<<16 {
			items = (items%(1<<16) + 1<<16) % (1 << 16)
		}
		width = (width%17+17)%17 + 1
		if span < 1 || span > items+1 {
			span = SpanFor(items, width)
		}
		var p Pool
		seen := make([]int32, items)
		p.RunSpan(items, width, span, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("items=%d width=%d span=%d: index %d visited %d times", items, width, span, i, c)
			}
		}

		var r Reducer[int]
		var got int
		r.Map(&p, items, width,
			func(w, lo, hi int) int { return hi - lo },
			func(v int) { got = got*1000003 + v })
		autoSpan := SpanFor(items, width)
		want := 0
		for lo := 0; lo < items; lo += autoSpan {
			hi := lo + autoSpan
			if hi > items {
				hi = items
			}
			want = want*1000003 + (hi - lo)
		}
		if got != want {
			t.Fatalf("items=%d width=%d: ordered reduce %d, want %d", items, width, got, want)
		}
	})
}
