package sched

import (
	"runtime"
	"sync/atomic"
	"testing"

	"remspan/internal/testutil"
)

// coverage runs body over items at the given width/span and asserts
// every index is visited exactly once, by a worker id within range.
func coverage(t *testing.T, p *Pool, items, width, span int) {
	t.Helper()
	seen := make([]int32, items)
	var badWorker atomic.Int32
	badWorker.Store(-1)
	p.RunSpan(items, width, span, func(w, lo, hi int) {
		if w < 0 || w >= width {
			badWorker.Store(int32(w))
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	if bw := badWorker.Load(); bw >= 0 {
		t.Fatalf("items=%d width=%d span=%d: worker id %d out of range", items, width, span, bw)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("items=%d width=%d span=%d: index %d visited %d times, want 1", items, width, span, i, c)
		}
	}
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	var p Pool
	for _, items := range []int{0, 1, 2, 63, 64, 65, 1000, 4097, 100000} {
		for _, width := range []int{1, 2, 3, 7, 16} {
			for _, span := range []int{1, 2, 64, 1024, items + 1} {
				if span < 1 {
					continue
				}
				coverage(t, &p, items, width, span)
			}
		}
	}
}

func TestRunAutoSpan(t *testing.T) {
	var p Pool
	for _, items := range []int{0, 1, 500, 65536} {
		for _, width := range []int{1, 2, 7, Workers(items)} {
			span := SpanFor(items, width)
			if items > 0 && span < 1 {
				t.Fatalf("SpanFor(%d,%d) = %d", items, width, span)
			}
			coverage(t, &p, items, width, span)
		}
	}
}

// TestSameWorkerNeverConcurrent pins the per-worker scratch contract:
// one worker id never executes two shards at the same time.
func TestSameWorkerNeverConcurrent(t *testing.T) {
	var p Pool
	const width = 7
	var active [width]atomic.Int32
	var violated atomic.Bool
	p.RunSpan(10000, width, 16, func(w, lo, hi int) {
		if active[w].Add(1) != 1 {
			violated.Store(true)
		}
		for i := lo; i < hi; i++ {
			_ = i * i
		}
		active[w].Add(-1)
	})
	if violated.Load() {
		t.Fatal("one worker id executed two shards concurrently")
	}
}

// TestReduceOrderedFold pins the determinism contract: the fold sees
// shard results in ascending shard order regardless of stealing, so a
// non-commutative fold is bit-identical to the serial one.
func TestReduceOrderedFold(t *testing.T) {
	var p Pool
	var r Reducer[int]
	const items = 100000
	for _, width := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		// Non-commutative fold: acc = acc*31 + firstIndexOfShard.
		var got int
		r.Map(&p, items, width,
			func(w, lo, hi int) int { return lo },
			func(v int) { got = got*31 + v })
		span := SpanFor(items, width)
		want := 0
		for lo := 0; lo < items; lo += span {
			want = want*31 + lo
		}
		if got != want {
			t.Fatalf("width=%d: ordered fold %d, want %d", width, got, want)
		}
	}
}

func TestWorkersClamp(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Fatalf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Fatalf("Workers(1) = %d, want 1", w)
	}
	if w := Workers(1 << 30); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(big) = %d, want GOMAXPROCS", w)
	}
}

func TestSpanForBounds(t *testing.T) {
	if s := SpanFor(10, 1); s != 10 {
		t.Fatalf("serial span = %d, want whole range", s)
	}
	if s := SpanFor(0, 4); s != 1 {
		t.Fatalf("empty span = %d, want 1", s)
	}
	if s := SpanFor(1<<20, 4); s != maxSpan {
		t.Fatalf("huge span = %d, want cap %d", s, maxSpan)
	}
	if s := SpanFor(1000, 4); s != minSpan {
		t.Fatalf("small span = %d, want floor %d", s, minSpan)
	}
}

// TestSerialPathZeroAlloc pins the width-1 fast path: no goroutines,
// no synchronization, no allocations.
func TestSerialPathZeroAlloc(t *testing.T) {
	var p Pool
	sink := 0
	body := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			sink += i
		}
	}
	testutil.PinAllocs(t, "sched.Pool.Run width=1", 100, func() {
		p.Run(4096, 1, body)
	})
}

// TestWarmParallelRunZeroAlloc pins the steady-state parallel path: a
// warm pool with a prebound body performs no per-run heap allocations
// (helper goroutines are parked, cursors are retained).
func TestWarmParallelRunZeroAlloc(t *testing.T) {
	var p Pool
	var sinks [4][8]int64 // padded-ish per-worker slots
	body := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			sinks[w][0] += int64(i)
		}
	}
	p.RunSpan(100000, 4, 1024, body) // warm: spawn helpers
	testutil.PinAllocs(t, "sched.Pool.RunSpan warm width=4", 50, func() {
		p.RunSpan(100000, 4, 1024, body)
	})
}

// TestRunsAreReusableAcrossWidths exercises shrinking and growing the
// width on one pool.
func TestRunsAreReusableAcrossWidths(t *testing.T) {
	var p Pool
	for _, width := range []int{5, 1, 3, 8, 2} {
		coverage(t, &p, 5000, width, 64)
	}
}
