package sched

// Reducer folds per-shard results in ascending shard order, so a
// parallel map-reduce is bit-identical to its serial fold no matter
// how the shards were stolen. The slot table is retained across calls
// — a warm Reducer over a stable shard geometry allocates nothing.
//
// Like the Pool it drives, a Reducer serializes its calls; it is the
// per-call-site companion object, not a shared one.
type Reducer[R any] struct {
	slots []R
}

// Map runs body over [0, items) on p (span SpanFor(items, width)),
// storing each shard's result in the shard's slot, then calls fold on
// every slot in ascending shard order after the barrier. The fold runs
// on the calling goroutine; body runs on pool workers and must not
// touch fold state.
func (r *Reducer[R]) Map(p *Pool, items, width int, body func(w, lo, hi int) R, fold func(R)) {
	span := SpanFor(items, width)
	shards := Shards(items, span)
	if cap(r.slots) < shards {
		r.slots = make([]R, shards)
	}
	slots := r.slots[:shards]
	p.RunSpan(items, width, span, func(w, lo, hi int) {
		slots[lo/span] = body(w, lo, hi)
	})
	for i := range slots {
		fold(slots[i])
	}
	var zero R
	for i := range slots {
		slots[i] = zero // release result references between runs
	}
}
