// Package sched is the shared shard-parallel scheduling layer of the
// repository: one work-stealing worker pool behind every goroutine
// fan-out in the construction, verification, maintenance, simulation
// and forwarding pipelines (spanner, dynamic, distsim, routing).
//
// # Why shards, not a shared counter
//
// The fan-outs this package replaced handed items out one at a time
// from a single shared atomic counter. Every claim then bounced one
// cache line between every core — at n = 1M roots that ping-pong is
// the dominant cost of the distribution itself. Here the item range
// [0, n) is cut into contiguous vertex-range shards (SpanFor: sized so
// the per-item caller state of a shard — a few int32 rows — stays
// cache-resident, with enough shards per worker to steal), the shard
// index space is block-partitioned across workers, and each worker
// claims shards from its own cache-line-padded cursor. Cursors are
// only contended during stealing at the tail of a run, so the
// steady-state claim is an uncontended atomic on a private line, and
// consecutive items of a shard walk adjacent caller state.
//
// # Work stealing
//
// Worker w owns the shard block [w·G/W, (w+1)·G/W). It drains its own
// block first; when empty it scans the other workers' cursors in ring
// order and claims from any block with shards left, through the same
// per-victim cursor. Claims are monotone per block (an over-claim past
// the block end is harmless and terminates the scan), so every shard
// is executed exactly once — the fuzz target pins coverage-exactly-
// once over adversarial (items, width, span) triples.
//
// # Per-worker scratch lifecycle
//
// Run's body receives the executing worker's index w < width. Call
// sites keep their per-worker scratch (domtree.Scratch, BitScratch,
// TableScratch, EdgeMarks, …) in worker-indexed slots that live across
// runs — acquire is indexing by w, reset is the call site's per-run
// epoch/stamp discipline, release is a no-op (slots are retained) —
// so steady-state fan-outs allocate nothing (testutil.PinAllocs pins
// the contract at the call sites).
//
// # Deterministic ordered reduce
//
// Workers may execute shards in any interleaving, so a result must
// never depend on completion order. Two sanctioned shapes:
//
//   - Reduce collects one result per shard and folds the slots in
//     ascending shard order after the barrier — bit-identical to the
//     serial fold whatever the stealing pattern (the spanner
//     verification witness uses this: first non-nil shard violation in
//     shard order IS the global lexicographic minimum).
//   - Per-worker accumulators merged in ascending worker order after
//     the barrier, valid only when the merge is order-independent by
//     construction (integer-bucketed sums, set unions, max) — the
//     stretch-profile and edge-mark unions use this.
//
// Everything else writes per-item slots (results[i] written by exactly
// one claim), which commutes trivially.
//
// A Pool is cheap: helper goroutines are spawned lazily on first
// parallel run and then park on a channel; each subsystem owns its
// pool (a shared pool would serialize independent subsystems, because
// Run is mutually exclusive per pool).
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

const (
	// minSpan floors the automatic shard span: a claim (one atomic
	// add) must amortize over at least this many items, and one shard's
	// int32 caller state (4·minSpan bytes) still fits comfortably in L1.
	minSpan = 64
	// maxSpan caps the automatic span so huge ranges still split into
	// enough shards to steal (and an int32 row per item stays within a
	// few pages — the "cache-sized vertex range").
	maxSpan = 4096
	// stealShards is the target number of shards per worker block:
	// enough granularity for the tail-steal to rebalance a skewed
	// workload, few enough that claims stay rare.
	stealShards = 8
)

// Workers returns the worker count a fan-out over items should use:
// GOMAXPROCS clamped to the item count, at least 1. Call sites size
// their per-worker scratch slots with it and pass it to Run (tests
// pass explicit widths to pin parallel == serial regardless of the
// host's core count).
func Workers(items int) int {
	w := runtime.GOMAXPROCS(0)
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SpanFor returns the shard span Run uses for items over width
// workers: items/(width·stealShards) clamped to [minSpan, maxSpan],
// and to the whole range when width <= 1. Exposed so Reduce can size
// its per-shard slot table to match Run's geometry exactly.
func SpanFor(items, width int) int {
	if width <= 1 || items <= minSpan {
		if items < 1 {
			return 1
		}
		return items
	}
	span := items / (width * stealShards)
	if span < minSpan {
		span = minSpan
	}
	if span > maxSpan {
		span = maxSpan
	}
	return span
}

// Shards returns the shard count of an items-range at the given span.
func Shards(items, span int) int {
	if items <= 0 {
		return 0
	}
	return (items + span - 1) / span
}

// cursor is one worker block's claim position, padded so neighboring
// cursors never share a cache line (the whole point of per-worker
// claims).
type cursor struct {
	pos atomic.Int64
	_   [56]byte
}

// Pool is a reusable work-stealing shard scheduler. The zero value is
// ready to use. Helper goroutines are spawned lazily up to the widest
// run seen and then park between runs; Run is mutually exclusive per
// pool (concurrent callers queue), so give independent subsystems
// independent pools.
type Pool struct {
	mu sync.Mutex // serializes runs; guards helper spawning

	// Current job, written under mu before helpers are woken.
	body     func(w, lo, hi int)
	items    int
	span     int
	width    int
	cursors  []cursor
	blockEnd []int64

	wake []chan struct{} // helper i serves worker id i+1 when signaled
	wg   sync.WaitGroup
}

// Run executes body over the item range [0, items), partitioned into
// contiguous [lo, hi) shards (span chosen by SpanFor), across width
// workers. body(w, lo, hi) runs on worker w in [0, width); the same w
// never runs two shards concurrently, so w safely indexes per-worker
// scratch. width <= 1 runs serially on the calling goroutine with no
// synchronization at all — the steady-state zero-allocation path.
func (p *Pool) Run(items, width int, body func(w, lo, hi int)) {
	p.RunSpan(items, width, SpanFor(items, width), body)
}

// RunSpan is Run with an explicit shard span — for item domains where
// one item is itself a large work unit (a 64-source batch sweep) and
// the default vertex-sized span would under-split the range.
func (p *Pool) RunSpan(items, width, span int, body func(w, lo, hi int)) {
	if items <= 0 {
		return
	}
	if span < 1 {
		span = 1
	}
	shards := Shards(items, span)
	if width > shards {
		width = shards
	}
	if width <= 1 {
		body(0, 0, items)
		return
	}
	p.mu.Lock()
	p.body, p.items, p.span, p.width = body, items, span, width
	//remspan:coldpath cursor arrays grow to the widest width seen, then are reused
	if cap(p.cursors) < width {
		p.cursors = make([]cursor, width)
		p.blockEnd = make([]int64, width)
	}
	p.cursors = p.cursors[:width]
	p.blockEnd = p.blockEnd[:width]
	for w := 0; w < width; w++ {
		p.cursors[w].pos.Store(int64(w * shards / width))
		p.blockEnd[w] = int64((w + 1) * shards / width)
	}
	//remspan:coldpath helper goroutines spawn once per pool lifetime, then park between runs
	for len(p.wake) < width-1 {
		id := len(p.wake) + 1
		ch := make(chan struct{}, 1)
		p.wake = append(p.wake, ch)
		go p.serve(id, ch)
	}
	p.wg.Add(width - 1)
	for i := 0; i < width-1; i++ {
		p.wake[i] <- struct{}{}
	}
	p.work(0)
	p.wg.Wait()
	p.body = nil // release the closure between runs
	p.mu.Unlock()
}

// serve is a parked helper goroutine: each wake signal is one run it
// participates in as worker id.
func (p *Pool) serve(id int, ch chan struct{}) {
	for range ch {
		if id < p.width {
			p.work(id)
		}
		p.wg.Done()
	}
}

// work drains worker w's own shard block, then steals from the other
// blocks in ring order until every cursor is exhausted.
//
//remspan:hotpath
func (p *Pool) work(w int) {
	p.drain(w, w)
	for off := 1; off < p.width; off++ {
		p.drain(w, (w+off)%p.width)
	}
}

// drain claims shards from block v's cursor until it passes the block
// end, running each on worker w. The load before the claim keeps
// finished blocks read-only (no cross-core invalidations while other
// workers scan past them).
//
//remspan:hotpath
func (p *Pool) drain(w, v int) {
	end := p.blockEnd[v]
	for p.cursors[v].pos.Load() < end {
		s := p.cursors[v].pos.Add(1) - 1
		if s >= end {
			return
		}
		lo := int(s) * p.span
		hi := lo + p.span
		if hi > p.items {
			hi = p.items
		}
		p.body(w, lo, hi)
	}
}
