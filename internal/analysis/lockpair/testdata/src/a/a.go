// Package a exercises lockpair: defer coverage, explicit
// unlock-before-every-return, the pooled-env TryLock fallback, and
// the leak shapes the analyzer must catch.
package a

import "sync"

type env struct {
	mu sync.Mutex
	n  int
}

type store struct {
	mu      sync.RWMutex
	readers []int
}

var shared = &env{}

func newEnv() *env { return &env{} }

// goodDefer is the canonical shape.
func goodDefer(e *env) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.n++
}

// goodExplicit releases on the straight line.
func goodExplicit(e *env) int {
	e.mu.Lock()
	v := e.n
	e.mu.Unlock()
	return v
}

// goodFallback is the pooled-env TryLock pattern from the scheduler
// call sites: both branches end holding exactly one lock, covered by
// the defer.
func goodFallback() *env {
	e := shared
	if !e.mu.TryLock() {
		e = newEnv()
		e.mu.Lock()
	}
	defer e.mu.Unlock()
	e.n++
	return e
}

// goodTryBound binds the TryLock result before branching.
func goodTryBound(e *env) {
	ok := e.mu.TryLock()
	if ok {
		e.n++
		e.mu.Unlock()
	}
}

// goodBothBranches unlocks on the early return and the fall-through.
func goodBothBranches(e *env, cond bool) int {
	e.mu.Lock()
	if cond {
		e.mu.Unlock()
		return 0
	}
	v := e.n
	e.mu.Unlock()
	return v
}

// goodDeferClosure releases through a deferred literal.
func goodDeferClosure(e *env) {
	e.mu.Lock()
	defer func() {
		e.n--
		e.mu.Unlock()
	}()
	e.n++
}

// goodRead pairs the read-side of the RWMutex.
func goodRead(s *store) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.readers)
}

// goodPanic may hold across a terminal panic.
func goodPanic(e *env, bad bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if bad {
		panic("invariant")
	}
}

// goodHandoff opts out: it returns holding the lock by contract.
//
//remspan:lockheld released by the paired finish() below
func goodHandoff(e *env) *env {
	e.mu.Lock()
	return e
}

func finish(e *env) { e.mu.Unlock() }

// badEarlyReturn leaks on the early path.
func badEarlyReturn(e *env, cond bool) int {
	e.mu.Lock()
	if cond {
		return 0 // want "return while e\\.mu is still held"
	}
	v := e.n
	e.mu.Unlock()
	return v
}

// badFallthrough never releases at all.
func badFallthrough(e *env) {
	e.mu.Lock() // want "e\\.mu is locked here but still held when the function returns"
	e.n++
}

// badTryBranch leaks the successful TryLock.
func badTryBranch(e *env) {
	if e.mu.TryLock() {
		e.n++
		return // want "return while e\\.mu is still held"
	}
}

// badFallback is the fallback pattern with the leak the issue calls
// out: an early return between the TryLock and the defer.
func badFallback(cond bool) *env {
	e := shared
	if !e.mu.TryLock() {
		e = newEnv()
		e.mu.Lock()
	}
	if cond {
		return nil // want "return while e\\.mu is still held"
	}
	defer e.mu.Unlock()
	return e
}

// badDiverge holds on only one side of the join.
func badDiverge(e *env, cond bool) {
	if cond {
		e.mu.Lock() // want "e\\.mu is held on only some paths after the enclosing if"
	}
	e.n++
}

// badDiscard drops a TryLock result on the floor.
func badDiscard(e *env) {
	e.mu.TryLock() // want "e\\.mu\\.TryLock result is discarded"
}

// badLoop acquires per-iteration without releasing.
func badLoop(e *env, n int) {
	for i := 0; i < n; i++ {
		e.mu.Lock() // want "e\\.mu is locked inside a loop body without an Unlock in the same iteration"
		e.n++
	}
}

// badReadLeak leaks the read side on a return.
func badReadLeak(s *store, cond bool) int {
	s.mu.RLock()
	if cond {
		return 0 // want "return while s\\.mu \\(read lock\\) is still held"
	}
	n := len(s.readers)
	s.mu.RUnlock()
	return n
}

// goodLoopBalanced locks and unlocks within each iteration.
func goodLoopBalanced(e *env, n int) {
	for i := 0; i < n; i++ {
		e.mu.Lock()
		e.n++
		e.mu.Unlock()
	}
}

// goodGoroutine: the literal is its own scope and balances itself.
func goodGoroutine(e *env) {
	go func() {
		e.mu.Lock()
		e.n++
		e.mu.Unlock()
	}()
}

// badGoroutine: the literal leaks in its own scope.
func badGoroutine(e *env) {
	go func() {
		e.mu.Lock() // want "e\\.mu is locked here but still held when the function returns"
		e.n++
	}()
}
