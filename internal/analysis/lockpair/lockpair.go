// Package lockpair enforces unlock-on-all-paths: every sync
// Lock/RLock — and every successful TryLock/TryRLock — acquired in a
// function must be released on every path out of it, either by a
// `defer mu.Unlock()` or by an explicit Unlock before each return.
//
// The motivating pattern is the pooled-env fallback the shard
// scheduler call sites use (§3h):
//
//	env := sharedBuildEnv
//	if !env.mu.TryLock() {
//		env = newBuildEnv()
//		env.mu.Lock()
//	}
//	defer env.mu.Unlock()
//
// Every branch of that idiom must end holding exactly one lock and the
// defer must cover both; a refactor that adds an early return between
// the TryLock and the defer leaks the shared env and silently degrades
// every later build to the transient path — a performance bug no test
// fails on. The race detector never sees it either: nothing races, the
// lock is just never released.
//
// The analysis is a structured walk of each function body (function
// literals are separate scopes), tracking the held-lock set keyed by
// the receiver expression's source text ("env.mu", "st.readersMu"),
// with read locks tracked separately from write locks:
//
//   - mu.Lock()/RLock() adds the key; mu.Unlock()/RUnlock() removes
//     it; `defer mu.Unlock()` (directly or inside a deferred literal)
//     satisfies the key for the rest of the function;
//   - `if mu.TryLock() { ... }` holds the key in the then-branch;
//     `if !mu.TryLock() { ... }` holds it on the fall-through, and the
//     assigned form `ok := mu.TryLock(); if ok { ... }` resolves the
//     same way; a TryLock whose result is discarded is itself a
//     diagnostic (the successful case can never be unlocked);
//   - a return (or the function end) with a key still held is a leak,
//     reported with both the acquisition and the exit; branches of an
//     if/switch that fall through with different held sets are
//     reported as divergence — conditional locking must resolve
//     before control flow joins;
//   - a lock acquired inside a loop body must be released within the
//     same iteration.
//
// A function that intentionally returns holding a lock (a lock-handoff
// API) opts out with //remspan:lockheld on its declaration. goroutine
// bodies (`go func(){...}`) and nested literals are separate
// functions: locks they acquire are theirs to balance.
package lockpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"remspan/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockpair",
	Doc:  "every Lock/successful-TryLock must reach an Unlock on all paths (defer or full return coverage)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := analysis.ScanDirectives(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			exempt := dirs.Func(fd, analysis.DirLockHeld)
			checkFunc(pass, fd.Body, exempt)
			// Nested literals are separate lock scopes (the statement
			// walker never descends into them), exempted with their
			// enclosing declaration. Inspect keeps descending, so
			// literals inside literals each get their own scope too.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFunc(pass, lit.Body, exempt)
				}
				return true
			})
		}
	}
	return nil, nil
}

// lockKey identifies one lock in one mode: the receiver expression's
// source text, plus the read/write side of an RWMutex.
type lockKey struct {
	recv string
	read bool
}

func (k lockKey) String() string {
	if k.read {
		return k.recv + " (read lock)"
	}
	return k.recv
}

// held maps the locks currently held to their acquisition positions.
type held map[lockKey]token.Pos

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

type checker struct {
	pass    *analysis.Pass
	tryVars map[*types.Var]lockKey // ok := mu.TryLock()
	exempt  bool                   // //remspan:lockheld: returning locked is the contract
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, exempt bool) {
	c := &checker{pass: pass, tryVars: make(map[*types.Var]lockKey), exempt: exempt}
	out := c.walkStmts(body.List, make(held))
	if exempt {
		return
	}
	for k, pos := range out {
		c.pass.Reportf(pos, "%s is locked here but still held when the function returns (no Unlock or defer on the fall-through path; //remspan:lockheld marks an intentional handoff)", k)
	}
}

// op classifies one sync lock call.
type op struct {
	key  lockKey
	kind int // opLock, opUnlock, opTry
}

const (
	opLock = iota
	opUnlock
	opTry
)

// lockOp resolves e as a call to a sync locking method and returns
// its classification. Only methods of package sync count (Mutex,
// RWMutex, and the Locker interface), so user-defined Lock methods
// with their own contracts stay out of scope.
func (c *checker) lockOp(e ast.Expr) (op, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return op{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return op{}, false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return op{}, false
	}
	key := lockKey{recv: types.ExprString(sel.X)}
	switch fn.Name() {
	case "Lock":
		return op{key: key, kind: opLock}, true
	case "Unlock":
		return op{key: key, kind: opUnlock}, true
	case "TryLock":
		return op{key: key, kind: opTry}, true
	case "RLock":
		key.read = true
		return op{key: key, kind: opLock}, true
	case "RUnlock":
		key.read = true
		return op{key: key, kind: opUnlock}, true
	case "TryRLock":
		key.read = true
		return op{key: key, kind: opTry}, true
	}
	return op{}, false
}

// walkStmts threads the held set through a statement list, reporting
// leaks at exits, and returns the fall-through state.
func (c *checker) walkStmts(stmts []ast.Stmt, h held) held {
	for _, s := range stmts {
		h = c.walkStmt(s, h)
	}
	return h
}

func (c *checker) walkStmt(s ast.Stmt, h held) held {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if o, ok := c.lockOp(s.X); ok {
			switch o.kind {
			case opLock:
				h[o.key] = s.Pos()
			case opUnlock:
				delete(h, o.key)
			case opTry:
				c.pass.Reportf(s.Pos(), "%s.TryLock result is discarded: a successful acquisition can never be released", o.key.recv)
			}
		}

	case *ast.DeferStmt:
		for _, k := range c.deferredUnlocks(s) {
			delete(h, k)
		}

	case *ast.AssignStmt:
		// ok := mu.TryLock() — remember the binding so a later
		// `if ok { ... }` resolves to the TryLock branch shape.
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if o, ok := c.lockOp(s.Rhs[0]); ok && o.kind == opTry {
				if id, isID := s.Lhs[0].(*ast.Ident); isID {
					if v, isVar := c.varOf(id); isVar {
						c.tryVars[v] = o.key
					}
				}
			}
		}

	case *ast.IfStmt:
		return c.walkIf(s, h)

	case *ast.ReturnStmt:
		if !c.exempt {
			for k, pos := range h {
				c.pass.Reportf(s.Pos(), "return while %s is still held (locked at %s): missing Unlock or defer on this path", k, c.pass.Fset.Position(pos))
			}
		}
		return make(held)

	case *ast.BlockStmt:
		return c.walkStmts(s.List, h)

	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, h)

	case *ast.ForStmt:
		if s.Init != nil {
			h = c.walkStmt(s.Init, h)
		}
		c.walkLoopBody(s.Body, h)

	case *ast.RangeStmt:
		c.walkLoopBody(s.Body, h)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		c.walkBranches(s, h)

	case *ast.GoStmt:
		// A spawned goroutine is its own lock scope (its literal body
		// is checked as a separate function).
	}
	return h
}

// walkIf handles the TryLock conditional shapes and ordinary ifs,
// merging the branch fall-through states.
func (c *checker) walkIf(s *ast.IfStmt, h held) held {
	if s.Init != nil {
		h = c.walkStmt(s.Init, h)
	}

	thenH, elseH := h.clone(), h.clone()
	if key, onThen, ok := c.condTryLock(s.Cond); ok {
		if onThen {
			thenH[key] = s.Cond.Pos()
		} else {
			elseH[key] = s.Cond.Pos()
		}
	}

	thenOut := c.walkStmts(s.Body.List, thenH)
	var elseOut held
	switch e := s.Else.(type) {
	case nil:
		elseOut = elseH
	case *ast.BlockStmt:
		elseOut = c.walkStmts(e.List, elseH)
	case *ast.IfStmt:
		elseOut = c.walkIf(e, elseH)
	default:
		elseOut = elseH
	}

	switch {
	case terminates(s.Body):
		return elseOut
	case s.Else != nil && terminates(s.Else):
		return thenOut
	}
	// Both branches fall through: they must agree on what is held, or
	// the join point has a lock held on only some paths.
	out := make(held)
	for k, pos := range thenOut {
		if _, ok := elseOut[k]; ok {
			out[k] = pos
		} else {
			c.pass.Reportf(pos, "%s is held on only some paths after the enclosing if: release it in every branch or defer the Unlock", k)
		}
	}
	for k, pos := range elseOut {
		if _, ok := thenOut[k]; !ok {
			c.pass.Reportf(pos, "%s is held on only some paths after the enclosing if: release it in every branch or defer the Unlock", k)
		}
	}
	return out
}

// condTryLock matches the conditional TryLock shapes: mu.TryLock(),
// !mu.TryLock(), a bound result variable, or its negation. onThen
// reports which branch holds the lock.
func (c *checker) condTryLock(cond ast.Expr) (lockKey, bool, bool) {
	cond = ast.Unparen(cond)
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		key, onThen, ok := c.condTryLock(u.X)
		return key, !onThen, ok
	}
	if o, ok := c.lockOp(cond); ok && o.kind == opTry {
		return o.key, true, true
	}
	if id, ok := cond.(*ast.Ident); ok {
		if v, isVar := c.varOf(id); isVar {
			if key, bound := c.tryVars[v]; bound {
				return key, true, true
			}
		}
	}
	return lockKey{}, false, false
}

// walkLoopBody checks one loop iteration in isolation: anything
// acquired inside must be released inside (a lock cannot be carried
// across iterations without deadlocking on the second pass), and the
// surrounding held set is left untouched (the loop may run zero
// times).
func (c *checker) walkLoopBody(body *ast.BlockStmt, h held) {
	out := c.walkStmts(body.List, h.clone())
	for k, pos := range out {
		if _, outer := h[k]; !outer {
			c.pass.Reportf(pos, "%s is locked inside a loop body without an Unlock in the same iteration", k)
		}
	}
}

// walkBranches checks switch/select clause bodies independently; each
// fall-through clause must leave the held set as it found it.
func (c *checker) walkBranches(s ast.Stmt, h held) {
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			h = c.walkStmt(s.Init, h)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	for _, cl := range clauses {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			body = cl.Body
		case *ast.CommClause:
			body = cl.Body
		}
		out := c.walkStmts(body, h.clone())
		if len(body) > 0 && terminates(body[len(body)-1]) {
			continue
		}
		for k, pos := range out {
			if _, outer := h[k]; !outer {
				c.pass.Reportf(pos, "%s is held on only some paths after the enclosing switch: release it in every case or defer the Unlock", k)
			}
		}
	}
}

// deferredUnlocks returns the keys a defer statement releases: a
// direct `defer mu.Unlock()`, or every Unlock inside a deferred
// function literal.
func (c *checker) deferredUnlocks(s *ast.DeferStmt) []lockKey {
	if o, ok := c.lockOp(s.Call); ok && o.kind == opUnlock {
		return []lockKey{o.key}
	}
	lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit)
	if !ok {
		return nil
	}
	var keys []lockKey
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if o, ok := c.lockOp(call); ok && o.kind == opUnlock {
				keys = append(keys, o.key)
			}
		}
		return true
	})
	return keys
}

func (c *checker) varOf(id *ast.Ident) (*types.Var, bool) {
	if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v, true
	}
	if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v, true
	}
	return nil, false
}

// terminates reports whether control cannot fall out of s: it ends in
// a return, a panic-like call, or a branch statement that leaves the
// enclosing join.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		return isPanicky(s.X)
	case *ast.BlockStmt:
		return len(s.List) > 0 && terminates(s.List[len(s.List)-1])
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body) && terminates(s.Else)
	case *ast.LabeledStmt:
		return terminates(s.Stmt)
	case *ast.ForStmt:
		return s.Cond == nil // `for { ... }` without cond never falls through
	}
	return false
}

// isPanicky matches panic(...) and the conventional process-exit
// calls.
func isPanicky(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			full := pkg.Name + "." + fun.Sel.Name
			switch full {
			case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln":
				return true
			}
			switch fun.Sel.Name {
			case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
				return true // testing.TB-style terminators
			}
		}
	}
	return false
}
