package lockpair_test

import (
	"testing"

	"remspan/internal/analysis/analysistest"
	"remspan/internal/analysis/lockpair"
)

func TestLockPair(t *testing.T) {
	analysistest.Run(t, lockpair.Analyzer, "testdata/src/a")
}
