// Package callgraph builds the package-level static call graph the
// interprocedural remspanlint analyzers walk: one node per declared
// function or method, one edge per call site whose callee go/types can
// pin down without whole-program analysis.
//
// Resolution covers:
//
//   - direct calls to package-level functions, here or in imported
//     packages (f(), pkg.F());
//   - method calls through a static receiver type (x.M() where the
//     method set member is a concrete *types.Func — interface method
//     calls stay dynamic);
//   - function literals invoked in place (func(){...}()) and closures
//     tracked to their definition: a call through a local variable
//     that is bound to exactly one literal and never reassigned
//     resolves to that literal.
//
// Function literals are not separate nodes. A literal's body belongs
// to the declared function it is written in — its call sites become
// edges of the enclosing declaration — matching how hotalloc already
// attributes a literal's allocations to the enclosing function. A call
// resolved to a tracked closure is therefore already covered by the
// enclosing node's own edges and produces no edge at all, rather than
// a dynamic one.
//
// Everything else — calls through func-typed variables, fields,
// parameters, and interface methods — is recorded as a dynamic edge
// (Callee == nil). Analyzers decide their own policy for those;
// hotcall skips them and documents the soundness limit (the values
// flowing into such calls are checked at their own definitions when
// annotated).
package callgraph

import (
	"go/ast"
	"go/types"

	"remspan/internal/analysis"
)

// Edge is one call site inside a node's body. Callee is the resolved
// static callee — possibly from another package — or nil for a
// dynamic call no local reasoning can resolve.
type Edge struct {
	Site   *ast.CallExpr
	Callee *types.Func
}

// Node is one declared function or method of the analyzed package,
// with its call sites (nested function literals included) in source
// order.
type Node struct {
	Func  *types.Func
	Decl  *ast.FuncDecl
	Edges []Edge
}

// Graph is the call graph of one package.
type Graph struct {
	// Nodes holds every declared function of the package in source
	// order.
	Nodes []*Node
	// ByFunc indexes the nodes by their type-checker object, the form
	// edge targets arrive in.
	ByFunc map[*types.Func]*Node
}

// Node returns the graph node for fn, or nil when fn is not declared
// in the analyzed package (external callees have no node here; their
// summaries travel as facts).
func (g *Graph) Node(fn *types.Func) *Node { return g.ByFunc[fn] }

// Build constructs the call graph of the pass's package.
func Build(pass *analysis.Pass) *Graph {
	g := &Graph{ByFunc: make(map[*types.Func]*Node)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Func: fn, Decl: fd}
			n.Edges = collectEdges(pass, fd.Body)
			g.Nodes = append(g.Nodes, n)
			g.ByFunc[fn] = n
		}
	}
	return g
}

// collectEdges resolves every call site under body. Calls through
// closure-bound locals resolve to literals whose bodies are already
// under body, so they contribute no edge; truly unresolvable calls
// become dynamic edges.
func collectEdges(pass *analysis.Pass, body *ast.BlockStmt) []Edge {
	bound := closureBindings(pass, body)
	var edges []Edge
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			switch obj := pass.TypesInfo.Uses[fun].(type) {
			case *types.Func:
				edges = append(edges, Edge{Site: call, Callee: obj})
			case *types.Builtin, *types.TypeName:
				// builtins and conversions: no callee
			case *types.Var:
				if bound[obj] == nil {
					edges = append(edges, Edge{Site: call}) // dynamic
				}
				// else: closure tracked to its definition, whose body
				// is already attributed to this node
			default:
				if _, isType := pass.TypesInfo.Types[fun]; !isType {
					edges = append(edges, Edge{Site: call})
				}
			}
		case *ast.SelectorExpr:
			if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
				return true // conversion to a named type
			}
			if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
				if isInterfaceMethod(fn) {
					edges = append(edges, Edge{Site: call}) // dynamic dispatch
				} else {
					edges = append(edges, Edge{Site: call, Callee: fn})
				}
			} else {
				edges = append(edges, Edge{Site: call}) // func-typed field/var
			}
		case *ast.FuncLit:
			// Invoked in place: the literal's body is under this node
			// already; no edge.
		default:
			if tv, ok := pass.TypesInfo.Types[ast.Unparen(call.Fun)]; !ok || !tv.IsType() {
				edges = append(edges, Edge{Site: call})
			}
		}
		return true
	})
	return edges
}

// closureBindings maps each local variable that is bound to exactly
// one function literal — and never reassigned anything else — to that
// literal.
func closureBindings(pass *analysis.Pass, body *ast.BlockStmt) map[*types.Var]*ast.FuncLit {
	bound := make(map[*types.Var]*ast.FuncLit)
	poisoned := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			var v *types.Var
			if d, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
				v = d
			} else if u, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
				v = u
			}
			if v == nil {
				continue
			}
			if lit, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit); ok {
				if bound[v] != nil && bound[v] != lit {
					poisoned[v] = true
				}
				bound[v] = lit
			} else {
				poisoned[v] = true
			}
		}
		return true
	})
	for v := range poisoned {
		delete(bound, v)
	}
	return bound
}

// isInterfaceMethod reports whether fn is declared on an interface
// type (its call sites dispatch dynamically).
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}
