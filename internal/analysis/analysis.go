// Package analysis is the repo's static-analysis kernel: the minimal
// subset of the golang.org/x/tools/go/analysis API that the remspanlint
// analyzers need, implemented on the standard library alone so the
// module stays dependency-free (the build environment has no module
// proxy, so x/tools itself cannot be vendored; the types below mirror
// its shapes field-for-field, making a future swap mechanical).
//
// An Analyzer inspects one type-checked package through a Pass and
// reports Diagnostics. Drivers live elsewhere: cmd/remspanlint runs the
// suite either standalone (via analysis/load) or as a `go vet -vettool`
// unitchecker; analysis/analysistest runs golden corpora in tests.
//
// The analyzers communicate with the code under inspection through
// "//remspan:*" comment directives (see directives.go and DESIGN.md
// §3g): hotpath, coldpath, deterministic, orderok, atomic, refinc,
// refdec, scratchok.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis: a named rule with a Run function
// applied independently to every package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	// It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph description shown by `remspanlint help`.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// pass.Report and returns an analyzer-specific result (unused by
	// the current drivers) or an error for an internal failure — an
	// error fails the whole lint run, it is not a diagnostic.
	Run func(pass *Pass) (interface{}, error)

	// ExportsFacts marks an analyzer that summarizes each package into
	// a fact blob (via Pass.WriteFacts) consumed when analyzing its
	// dependents. Drivers run fact-exporting analyzers on dependency
	// packages too — with diagnostics discarded — so summaries exist
	// before any dependent is checked; under `go vet -vettool` the
	// blobs round-trip through the vetx files the go command threads
	// between units.
	ExportsFacts bool
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between one Analyzer run and the driver: one
// type-checked package plus a Report sink.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. Drivers install it; analyzers call
	// it (or the Reportf helper) any number of times.
	Report func(Diagnostic)

	// ImportFacts returns the fact blob this pass's analyzer exported
	// for the named dependency package, or nil when the dependency has
	// none (stdlib and other out-of-module packages are never
	// summarized, so their absence is normal, not an error). Nil when
	// the driver does not thread facts.
	ImportFacts func(path string) []byte

	// ExportFacts delivers this package's fact blob for the pass's
	// analyzer to the driver, which persists it for dependent units
	// (the vetx file under `go vet -vettool`, an in-memory store in
	// standalone and analysistest runs). Nil when the driver does not
	// thread facts.
	ExportFacts func(data []byte)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReadFacts is ImportFacts with a nil-driver guard.
func (p *Pass) ReadFacts(path string) []byte {
	if p.ImportFacts == nil {
		return nil
	}
	return p.ImportFacts(path)
}

// WriteFacts is ExportFacts with a nil-driver guard.
func (p *Pass) WriteFacts(data []byte) {
	if p.ExportFacts != nil {
		p.ExportFacts(data)
	}
}

// Diagnostic is one finding: a position in the package and a message.
// The driver prefixes the reporting analyzer's name.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// NewInfo returns a types.Info with every lookup map the analyzers use
// populated, so drivers cannot drift on which maps they fill.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
