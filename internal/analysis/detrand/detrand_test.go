package detrand_test

import (
	"testing"

	"remspan/internal/analysis/analysistest"
	"remspan/internal/analysis/detrand"
)

func TestDetRand(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "testdata/src/a")
}
