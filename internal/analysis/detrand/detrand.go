// Package detrand guards bit-replayability: packages whose tests pin
// double-run equality (the replica chaos harness, distsim protocol
// runs, the bench JSON pipelines) opt in with a //remspan:deterministic
// comment anywhere in the package, and the analyzer then rejects the
// three ways nondeterminism has historically crept into such code:
//
//   - wall-clock reads: time.Now, time.Since, time.Until (seeded
//     simulations carry their own tick counters; injected clocks are
//     fields, not calls);
//   - the process-global math/rand generators (rand.Intn, rand.Perm,
//     ...): all randomness must flow from an explicit seeded
//     *rand.Rand, so methods on a rand.Rand value and the New*
//     constructors that build one are allowed;
//   - map iteration feeding ordered output: a range over a map whose
//     body appends to a slice declared outside the loop, with no
//     sort.*/slices.Sort* call later in the same function. Iteration
//     order is deliberately randomized by the runtime, so such a loop
//     is a replay-divergence by construction. Annotate the range with
//     //remspan:orderok (and say why) when order provably cannot reach
//     output — e.g. the slice is consumed as a set.
//
// Test files are checked too when the driver analyzes test variants
// (the `go vet -vettool` path does): benches and the chaos scenarios
// carry the same replay pins as the library code.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"remspan/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "reject wall clocks, global math/rand, and map-order-dependent output in //remspan:deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := analysis.ScanDirectives(pass)
	if !dirs.Package(analysis.DirDeterministic) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, dirs, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, dirs *analysis.Directives, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	// Sort calls later in the function can fix a map-range's order;
	// collect their positions first.
	var sortEnds []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := pkgFunc(info, call); fn != nil {
			p := fn.Pkg().Path()
			if p == "sort" || (p == "slices" && strings.HasPrefix(fn.Name(), "Sort")) {
				sortEnds = append(sortEnds, call.End())
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := pkgFunc(info, n)
			if fn == nil {
				return true
			}
			switch path := fn.Pkg().Path(); {
			case path == "time" && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until"):
				pass.Reportf(n.Pos(), "time.%s in deterministic package breaks bit replay", fn.Name())
			case (path == "math/rand" || path == "math/rand/v2") && !strings.HasPrefix(fn.Name(), "New"):
				// Constructors (New, NewSource, NewZipf, ...) build the
				// explicitly seeded generators the rule demands; only
				// the process-global entry points are divergent.
				pass.Reportf(n.Pos(), "global math/rand call %s in deterministic package: use an explicitly seeded rand.Rand", fn.Name())
			}
		case *ast.RangeStmt:
			checkMapRange(pass, dirs, n, sortEnds)
		}
		return true
	})
}

// pkgFunc resolves a call to a package-level function (not a method),
// or nil.
func pkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil // method: seeded generators are fine
	}
	return fn
}

// checkMapRange reports a range over a map whose body accumulates into
// a slice declared outside the loop, unless a later sort fixes the
// order or the loop is annotated //remspan:orderok.
func checkMapRange(pass *analysis.Pass, dirs *analysis.Directives, rng *ast.RangeStmt, sortEnds []token.Pos) {
	info := pass.TypesInfo
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if dirs.At(rng.Pos(), analysis.DirOrderOK) {
		return
	}
	for _, end := range sortEnds {
		if end > rng.End() {
			return // a later sort re-establishes a deterministic order
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				continue
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			dst, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			v := varOf(info, dst)
			if v == nil || insideRange(v.Pos(), rng) {
				continue
			}
			pass.Reportf(rng.Pos(), "map iteration order reaches ordered output through %s: sort afterwards or annotate //remspan:orderok", v.Name())
			return false
		}
		return true
	})
}

func varOf(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

func insideRange(pos token.Pos, rng *ast.RangeStmt) bool {
	return rng.Pos() <= pos && pos < rng.End()
}
