// Package a is the detrand golden corpus.
//
//remspan:deterministic
package a

import (
	"math/rand"
	"sort"
	"time"
)

func clock() int64 {
	return time.Now().UnixNano() // want "time.Now in deterministic package breaks bit replay"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in deterministic package breaks bit replay"
}

func globalRand() int {
	return rand.Intn(10) // want "global math/rand call Intn in deterministic package"
}

func seeded(r *rand.Rand) int {
	return r.Intn(10) // methods on a seeded generator: allowed
}

func construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // seeded construction: allowed
}

func mapOrder(m map[int]int) []int {
	var out []int
	for k := range m { // want "map iteration order reaches ordered output through out"
		out = append(out, k)
	}
	return out
}

func mapOrderSorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out) // a later sort fixes the order
	return out
}

func mapOrderAnnotated(m map[int]int) []int {
	var out []int
	//remspan:orderok consumed as an unordered set by the caller
	for k := range m {
		out = append(out, k)
	}
	return out
}

func mapSum(m map[int]int) int {
	sum := 0
	for _, v := range m { // order-insensitive reduction: allowed
		sum += v
	}
	return sum
}
