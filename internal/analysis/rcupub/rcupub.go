// Package rcupub enforces the RCU epoch-publication discipline that
// routing.Store and replica.Replica rely on: an object published to
// readers through an atomic.Pointer must be immutable from the
// publication point on, reader-announce slots must be genuinely atomic
// and never sheared by a struct copy, and paired refcount updates must
// keep their inc-before-dec order (dec-first can drop the count to zero
// and free rows a concurrent reader still reaches).
//
// Three rules:
//
//  1. Publication freeze. In any function that calls Store/Swap (or
//     CompareAndSwap) on a sync/atomic Pointer with a locally named
//     value, a write through that value after the publication call —
//     later in source order within the function — is reported. Source
//     order is the right approximation for the repo's writer functions,
//     which build, publish, and fall off the end; re-publication loops
//     route recycled objects through retirement first, which re-binds
//     the name and resets tracking.
//
//  2. Atomic-only fields. A struct field annotated //remspan:atomic
//     must have a sync/atomic type (atomic.Uint64, atomic.Pointer, ...)
//     — raw integers "accessed carefully" are exactly the bug class the
//     padded announce slots had to avoid — and the enclosing struct
//     must never be copied by value (assignment, argument, return, or
//     dereference copy), since copying tears the slot out from under
//     the writer's reclamation scan. (The sync/atomic types carry no
//     vet noCopy marker, so the stock copylocks check does not cover
//     them.)
//
//  3. Refcount order. Functions annotated //remspan:refinc and
//     //remspan:refdec name the package's refcount halves. In any
//     function calling both, every decrement call must come after the
//     first increment call.
package rcupub

import (
	"go/ast"
	"go/token"
	"go/types"

	"remspan/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "rcupub",
	Doc:  "enforce RCU publication immutability, atomic-only announce slots, and inc-before-dec refcounts",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := analysis.ScanDirectives(pass)
	checkAtomicFields(pass, dirs)
	inc, dec := refFuncs(pass, dirs)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPublication(pass, fd)
			checkRefOrder(pass, fd, inc, dec)
		}
	}
	return nil, nil
}

// --- rule 1: no writes after atomic.Pointer publication ---

// publication returns the published value's root variable when call is
// ptr.Store(v), ptr.Swap(v), or ptr.CompareAndSwap(old, v) on a
// sync/atomic pointer (or other atomic type), with v rooted at a
// named local.
func publication(info *types.Info, call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	var arg ast.Expr
	switch fn.Name() {
	case "Store", "Swap":
		if len(call.Args) != 1 {
			return nil
		}
		arg = call.Args[0]
	case "CompareAndSwap":
		if len(call.Args) != 2 {
			return nil
		}
		arg = call.Args[1]
	default:
		return nil
	}
	// Only pointer-typed publications freeze a reachable object.
	if arg == nil {
		return nil
	}
	if tv, ok := info.Types[arg]; !ok || tv.Type == nil || !isPointerLike(tv.Type) {
		return nil
	}
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

func checkPublication(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	// First pass: publication points (value var -> earliest publish end).
	published := make(map[*types.Var]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v := publication(info, call); v != nil {
			if old, ok := published[v]; !ok || call.End() < old {
				published[v] = call.End()
			}
		}
		return true
	})
	if len(published) == 0 {
		return
	}
	// Second pass: writes through a published root after its
	// publication point. A rebind of the root itself (v = ...) ends
	// tracking from that point for later statements, approximated by
	// ignoring direct assignments to the bare identifier.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			root, bare := writeRoot(info, lhs)
			if root == nil || bare {
				continue
			}
			if pub, ok := published[root]; ok && as.Pos() > pub {
				pass.Reportf(as.Pos(), "write through %s after it was published via atomic pointer Store: published epochs are immutable", root.Name())
			}
		}
		return true
	})
}

// writeRoot resolves the variable a write expression ultimately stores
// into; bare reports a direct rebinding of the identifier itself.
func writeRoot(info *types.Info, lhs ast.Expr) (root *types.Var, bare bool) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		if v == nil {
			v, _ = info.Defs[e].(*types.Var)
		}
		return v, true
	case *ast.SelectorExpr:
		r, _ := writeRoot(info, e.X)
		return r, false
	case *ast.IndexExpr:
		r, _ := writeRoot(info, e.X)
		return r, false
	case *ast.StarExpr:
		r, _ := writeRoot(info, e.X)
		return r, false
	}
	return nil, false
}

// --- rule 2: //remspan:atomic fields ---

func checkAtomicFields(pass *analysis.Pass, dirs *analysis.Directives) {
	info := pass.TypesInfo
	guarded := make(map[*types.Named]bool) // structs containing annotated fields
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				var named *types.Named
				if obj, ok := info.Defs[ts.Name]; ok {
					named, _ = obj.Type().(*types.Named)
				}
				for _, field := range st.Fields.List {
					if !dirs.Field(field, analysis.DirAtomic) {
						continue
					}
					ft := info.Types[field.Type].Type
					if !isAtomicType(ft) {
						pass.Reportf(field.Pos(), "//remspan:atomic field must have a sync/atomic type, not %s", ft)
					}
					if named != nil {
						guarded[named] = true
					}
				}
			}
		}
	}
	if len(guarded) == 0 {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			checkCopies(pass, guarded, n)
			return true
		})
	}
}

func isAtomicType(t types.Type) bool {
	if t == nil {
		return false
	}
	// A slot table ([]atomic.Uint32, [4]atomic.Bool) is as atomic as a
	// single slot: unwrap the element type.
	switch seq := t.(type) {
	case *types.Slice:
		return isAtomicType(seq.Elem())
	case *types.Array:
		return isAtomicType(seq.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// isGuardedValue reports whether e is an existing value (not a fresh
// composite literal) of a guarded struct type, so that using it by
// value copies the atomic slots.
func isGuardedValue(info *types.Info, guarded map[*types.Named]bool, e ast.Expr) bool {
	e = ast.Unparen(e)
	if _, ok := e.(*ast.CompositeLit); ok {
		return false // construction, not a copy
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	n, ok := tv.Type.(*types.Named)
	return ok && guarded[n]
}

func checkCopies(pass *analysis.Pass, guarded map[*types.Named]bool, n ast.Node) {
	info := pass.TypesInfo
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		for _, rhs := range n.Rhs {
			if isGuardedValue(info, guarded, rhs) {
				pass.Reportf(rhs.Pos(), "copying struct with //remspan:atomic fields by value tears its atomic slots")
			}
		}
	case *ast.CallExpr:
		if tv, ok := info.Types[ast.Unparen(n.Fun)]; ok && tv.IsType() {
			return // conversions don't copy struct values meaningfully here
		}
		for _, arg := range n.Args {
			if isGuardedValue(info, guarded, arg) {
				pass.Reportf(arg.Pos(), "passing struct with //remspan:atomic fields by value tears its atomic slots")
			}
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if isGuardedValue(info, guarded, r) {
				pass.Reportf(r.Pos(), "returning struct with //remspan:atomic fields by value tears its atomic slots")
			}
		}
	case *ast.RangeStmt:
		if n.Value != nil && isGuardedValue(info, guarded, n.Value) {
			pass.Reportf(n.Value.Pos(), "ranging struct with //remspan:atomic fields by value tears its atomic slots")
		}
	}
}

// --- rule 3: refcount inc-before-dec ---

// refFuncs collects the function objects annotated refinc / refdec.
func refFuncs(pass *analysis.Pass, dirs *analysis.Directives) (inc, dec map[*types.Func]bool) {
	inc = make(map[*types.Func]bool)
	dec = make(map[*types.Func]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if dirs.Func(fd, analysis.DirRefInc) {
				inc[obj] = true
			}
			if dirs.Func(fd, analysis.DirRefDec) {
				dec[obj] = true
			}
		}
	}
	return inc, dec
}

func checkRefOrder(pass *analysis.Pass, fd *ast.FuncDecl, inc, dec map[*types.Func]bool) {
	if len(inc) == 0 || len(dec) == 0 {
		return
	}
	info := pass.TypesInfo
	firstInc := token.NoPos
	type decCall struct {
		pos  token.Pos
		name string
	}
	var decs []decCall
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee *types.Func
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callee, _ = info.Uses[fun].(*types.Func)
		case *ast.SelectorExpr:
			callee, _ = info.Uses[fun.Sel].(*types.Func)
		}
		if callee == nil {
			return true
		}
		if inc[callee] && (!firstInc.IsValid() || call.Pos() < firstInc) {
			firstInc = call.Pos()
		}
		if dec[callee] {
			decs = append(decs, decCall{call.Pos(), callee.Name()})
		}
		return true
	})
	if !firstInc.IsValid() {
		return
	}
	for _, d := range decs {
		if d.pos < firstInc {
			pass.Reportf(d.pos, "refcount decrement %s before the increment in the same function: dec-first can free rows a reader still reaches", d.name)
		}
	}
}
