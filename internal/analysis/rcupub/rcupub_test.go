package rcupub_test

import (
	"testing"

	"remspan/internal/analysis/analysistest"
	"remspan/internal/analysis/rcupub"
)

func TestRCUPub(t *testing.T) {
	analysistest.Run(t, rcupub.Analyzer, "testdata/src/a")
}
