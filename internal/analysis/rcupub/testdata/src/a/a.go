// Package a is the rcupub golden corpus.
package a

import "sync/atomic"

type state struct{ rows []int32 }

type store struct {
	cur atomic.Pointer[state]
}

func publishThenWrite(st *store) {
	s := &state{}
	s.rows = []int32{1}
	st.cur.Store(s)
	s.rows = nil // want "write through s after it was published via atomic pointer Store"
}

func publishThenWriteDeep(st *store, xs []int32) {
	s := &state{rows: xs}
	st.cur.Store(s)
	s.rows[0] = 7 // want "write through s after it was published"
}

func publishSwapThenWrite(st *store) {
	s := &state{}
	_ = st.cur.Swap(s)
	s.rows = nil // want "write through s after it was published"
}

func publishClean(st *store) {
	s := &state{}
	s.rows = []int32{1}
	st.cur.Store(s)
}

func nonPointerStoreIsNotPublication(sl *slot, s *state) {
	sl.seq.Store(7)
	s.rows = nil // seq is a plain counter, not a published object
}

type slot struct {
	//remspan:atomic
	seq atomic.Uint64
	//remspan:atomic
	bad uint64 // want "//remspan:atomic field must have a sync/atomic type, not uint64"
	//remspan:atomic
	slots []atomic.Uint32 // a table of atomic slots is fine
	_     [40]byte
}

func consume(v slot) {}

func copies(sl *slot) slot {
	v := *sl   // want "copying struct with //remspan:atomic fields by value tears its atomic slots"
	consume(v) // want "passing struct with //remspan:atomic fields by value tears its atomic slots"
	return v   // want "returning struct with //remspan:atomic fields by value tears its atomic slots"
}

func pointersAreFine(sl *slot) *slot {
	sl.seq.Store(1)
	return sl
}

//remspan:refinc
func addRef(m map[int]int, k int) { m[k]++ }

//remspan:refdec
func dropRef(m map[int]int, k int) { m[k]-- }

func incBeforeDec(m map[int]int) {
	addRef(m, 1)
	dropRef(m, 2)
}

func decBeforeInc(m map[int]int) {
	dropRef(m, 2) // want "refcount decrement dropRef before the increment in the same function"
	addRef(m, 1)
}

func decOnly(m map[int]int) {
	dropRef(m, 2) // teardown paths decrement alone: fine
}
