package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive names understood by the remspanlint suite. The catalogue —
// meaning, motivating PR, and annotation guidance — lives in DESIGN.md
// §3g; the constants here are the single source of spelling truth.
const (
	// DirHotpath marks a function as a steady-state hot path: hotalloc
	// rejects allocating constructs in its body.
	DirHotpath = "hotpath"
	// DirColdpath exempts one statement (and its subtree) inside a
	// hotpath function: the documented init/grow/error branch that is
	// off the steady state by construction.
	DirColdpath = "coldpath"
	// DirDeterministic marks a package as bit-replay-pinned: detrand
	// rejects wall clocks, global math/rand, and map-order-dependent
	// output in it.
	DirDeterministic = "deterministic"
	// DirOrderOK exempts one map range statement whose iteration order
	// provably cannot reach ordered output (say why in the comment).
	DirOrderOK = "orderok"
	// DirAtomic marks a struct field as atomics-only: rcupub requires
	// a sync/atomic type and rejects by-value copies of the enclosing
	// struct.
	DirAtomic = "atomic"
	// DirRefInc / DirRefDec mark the refcount increment / decrement
	// functions whose inc-before-dec call order rcupub enforces in
	// every caller that uses both.
	DirRefInc = "refinc"
	DirRefDec = "refdec"
	// DirScratchOK exempts one statement from scratchescape: a
	// documented, audited scratch-lifetime handoff.
	DirScratchOK = "scratchok"
	// DirLockHeld exempts a function from lockpair: it intentionally
	// returns with the lock held (a lock-handoff API whose release
	// lives in a documented counterpart).
	DirLockHeld = "lockheld"
	// DirShardOK exempts one statement (and its subtree) inside a
	// shard body from shardbody: an audited cross-shard write whose
	// safety argument does not fit the worker-slot/span-index
	// discipline (say why in the comment).
	DirShardOK = "shardok"
)

const directivePrefix = "//remspan:"

// Directives indexes every //remspan:* comment of a package by file
// and line, so analyzers can ask "is this node annotated?" without
// re-walking comment lists.
type Directives struct {
	fset   *token.FileSet
	byFile map[string]map[int][]string // filename -> line -> directive names
	pkg    map[string]bool             // directives seen anywhere in the package
}

// ScanDirectives collects the //remspan:* directives of all files in
// the pass.
func ScanDirectives(pass *Pass) *Directives {
	d := &Directives{
		fset:   pass.Fset,
		byFile: make(map[string]map[int][]string),
		pkg:    make(map[string]bool),
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				p := pass.Fset.Position(c.Slash)
				lines := d.byFile[p.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					d.byFile[p.Filename] = lines
				}
				lines[p.Line] = append(lines[p.Line], name)
				d.pkg[name] = true
			}
		}
	}
	return d
}

// parseDirective extracts the directive name from a raw comment text
// ("//remspan:coldpath grow-on-demand" -> "coldpath").
func parseDirective(text string) (string, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

// Package reports whether the directive appears anywhere in the
// package (used for package-scoped markers like "deterministic").
func (d *Directives) Package(name string) bool { return d.pkg[name] }

// onLine reports whether the directive is recorded at exactly
// (filename, line).
func (d *Directives) onLine(filename string, line int, name string) bool {
	for _, n := range d.byFile[filename][line] {
		if n == name {
			return true
		}
	}
	return false
}

// At reports whether the directive annotates the node starting at pos:
// either an end-of-line comment on the same line, or a standalone
// comment on the line directly above.
func (d *Directives) At(pos token.Pos, name string) bool {
	p := d.fset.Position(pos)
	return d.onLine(p.Filename, p.Line, name) || d.onLine(p.Filename, p.Line-1, name)
}

// Func reports whether the directive annotates the function
// declaration: in its doc comment group or directly at/above the func
// keyword.
func (d *Directives) Func(decl *ast.FuncDecl, name string) bool {
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if n, ok := parseDirective(c.Text); ok && n == name {
				return true
			}
		}
	}
	return d.At(decl.Pos(), name)
}

// Field reports whether the directive annotates the struct field: in
// its doc comment or its trailing line comment. There is no
// line-above fallback — inside a struct the parser already attaches a
// standalone comment above a field as its Doc, and a positional
// fallback would bleed the previous field's trailing directive onto
// the next line's field.
func (d *Directives) Field(f *ast.Field, name string) bool {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if n, ok := parseDirective(c.Text); ok && n == name {
				return true
			}
		}
	}
	return false
}
