// Package analysistest runs an analyzer over a golden corpus and
// checks its diagnostics against `// want "regexp"` comments, the same
// contract as golang.org/x/tools/go/analysis/analysistest (implemented
// here on the stdlib-only kernel).
//
// A corpus is a self-contained Go module committed under the analyzer's
// testdata directory (testdata trees are invisible to the enclosing
// module's ./... patterns, so corpora can violate the invariants they
// exercise without tripping the repo-wide lint gate). Every diagnostic
// must be matched by a want clause on its line and every want clause
// must match a diagnostic; either leftover fails the test.
package analysistest

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"remspan/internal/analysis"
	"remspan/internal/analysis/load"
)

// Run loads the module rooted at dir (patterns ./...) and checks the
// analyzer's diagnostics against the corpus's want comments. Packages
// arrive in dependency-first order and fact blobs are threaded between
// them in memory, so corpora exercise cross-package propagation the
// same way the vetx files do under `go vet -vettool`.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkgs, err := load.Packages(dir, "./...")
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("corpus %s matched no packages", dir)
	}
	store := make(map[string][]byte)
	for _, pkg := range pkgs {
		if pkg.FactsOnly && !a.ExportsFacts {
			continue
		}
		checkPackage(t, a, pkg, store)
	}
}

type lineKey struct {
	file string
	line int
}

func checkPackage(t *testing.T, a *analysis.Analyzer, pkg *load.Package, store map[string][]byte) {
	t.Helper()
	diags := make(map[lineKey][]string)
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d analysis.Diagnostic) {
			p := pkg.Fset.Position(d.Pos)
			k := lineKey{p.Filename, p.Line}
			diags[k] = append(diags[k], d.Message)
		},
		ImportFacts: func(path string) []byte { return store[path] },
		ExportFacts: func(data []byte) { store[pkg.ImportPath] = data },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error on %s: %v", a.Name, pkg.ImportPath, err)
	}
	if pkg.FactsOnly {
		// Summaries only: a facts-only dependency is outside the
		// corpus pattern, its diagnostics (and want comments) are not
		// part of the golden contract.
		return
	}

	wants := make(map[lineKey][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				res, ok, err := parseWant(c.Text)
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", pkg.Fset.Position(c.Slash), err)
				}
				if !ok {
					continue
				}
				p := pkg.Fset.Position(c.Slash)
				k := lineKey{p.Filename, p.Line}
				wants[k] = append(wants[k], res...)
			}
		}
	}

	keys := make(map[lineKey]bool)
	for k := range diags {
		keys[k] = true
	}
	for k := range wants {
		keys[k] = true
	}
	sorted := make([]lineKey, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].file != sorted[j].file {
			return sorted[i].file < sorted[j].file
		}
		return sorted[i].line < sorted[j].line
	})

	for _, k := range sorted {
		got := append([]string(nil), diags[k]...)
		for _, re := range wants[k] {
			idx := -1
			for i, msg := range got {
				if re.MatchString(msg) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %v)", k.file, k.line, re, got)
				continue
			}
			got = append(got[:idx], got[idx+1:]...)
		}
		for _, msg := range got {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
		}
	}
}

// parseWant extracts the quoted regexps from a `// want "re" "re"`
// comment, reporting ok=false for ordinary comments.
func parseWant(text string) ([]*regexp.Regexp, bool, error) {
	rest, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		rest, ok = strings.CutPrefix(text, "//want ")
	}
	if !ok {
		return nil, false, nil
	}
	var res []*regexp.Regexp
	rest = strings.TrimSpace(rest)
	for rest != "" {
		if rest[0] != '"' {
			return nil, false, fmt.Errorf("want clause must be a quoted regexp: %s", rest)
		}
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, false, fmt.Errorf("unterminated want regexp: %s", rest)
		}
		lit, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return nil, false, fmt.Errorf("bad want regexp %s: %v", rest[:end+1], err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, false, fmt.Errorf("bad want regexp %q: %v", lit, err)
		}
		res = append(res, re)
		rest = strings.TrimSpace(rest[end+1:])
	}
	if len(res) == 0 {
		return nil, false, fmt.Errorf("want comment with no regexps")
	}
	return res, true, nil
}
