package hotcall_test

import (
	"testing"

	"remspan/internal/analysis/analysistest"
	"remspan/internal/analysis/hotcall"
)

func TestHotCall(t *testing.T) {
	analysistest.Run(t, hotcall.Analyzer, "testdata/src/a")
}
