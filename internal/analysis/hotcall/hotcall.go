// Package hotcall propagates the //remspan:hotpath property through
// the call graph: every function reachable from a hotpath function by
// static calls must itself satisfy hotalloc's allocation rules, or be
// explicitly annotated — //remspan:hotpath (checked at its own
// definition) or //remspan:coldpath (an audited escape hatch).
// hotalloc alone is intraprocedural, so before this analyzer a hotpath
// function calling an unannotated allocating helper passed silently.
//
// The analysis is two-layered:
//
//   - Within the package, internal/analysis/callgraph resolves direct
//     calls, static method calls, and closures tracked to their
//     definitions; each declared function gets a transitive summary
//     (clean, or a representative chain to the first allocation),
//     computed bottom-up with cycle tolerance.
//   - Across packages, summaries travel as facts
//     (internal/analysis/facts): when a dependency was analyzed first
//     — the order both `go vet -vettool` vetx threading and the
//     standalone loader guarantee — a call into it extends the chain
//     through the imported summary instead of stopping at the package
//     boundary.
//
// A diagnostic lands on the offending call site inside the hotpath
// function and prints the full chain:
//
//	call to graph.Grow allocates in hot path: graph.Grow → graph.reserve → file.go:41: make allocates in hot path
//
// Soundness limits, by design: dynamic calls (func values, fields,
// parameters, interface methods) are not followed — the closures and
// bodies flowing into them are checked at their own definitions when
// annotated; calls into packages that exported no facts (the stdlib,
// out-of-module dependencies) are not followed either. Both limits are
// documented in DESIGN.md §3i.
package hotcall

import (
	"fmt"
	"go/types"
	"strings"

	"remspan/internal/analysis"
	"remspan/internal/analysis/callgraph"
	"remspan/internal/analysis/facts"
	"remspan/internal/analysis/hotalloc"
)

var Analyzer = &analysis.Analyzer{
	Name:         "hotcall",
	Doc:          "propagate //remspan:hotpath transitively: reachable callees must be allocation-free or annotated",
	Run:          run,
	ExportsFacts: true,
}

// summary is one local function's transitive allocation behavior.
type summary struct {
	hot, cold bool
	alloc     string   // "" = transitively clean
	chain     []string // callees toward the allocation, outermost first
}

type engine struct {
	pass     *analysis.Pass
	dirs     *analysis.Directives
	graph    *callgraph.Graph
	bodies   map[*types.Func]*hotalloc.Result
	sums     map[*types.Func]*summary
	walking  map[*types.Func]bool
	imported map[string]*facts.Package
}

func run(pass *analysis.Pass) (interface{}, error) {
	e := &engine{
		pass:     pass,
		dirs:     analysis.ScanDirectives(pass),
		graph:    callgraph.Build(pass),
		bodies:   make(map[*types.Func]*hotalloc.Result),
		sums:     make(map[*types.Func]*summary),
		walking:  make(map[*types.Func]bool),
		imported: make(map[string]*facts.Package),
	}

	for _, n := range e.graph.Nodes {
		if _, err := e.summarize(n.Func); err != nil {
			return nil, err
		}
	}
	for _, n := range e.graph.Nodes {
		if e.dirs.Func(n.Decl, analysis.DirHotpath) {
			if err := e.checkHotpath(n); err != nil {
				return nil, err
			}
		}
	}
	if err := e.exportFacts(); err != nil {
		return nil, err
	}
	return nil, nil
}

// body returns the memoized hotalloc result of fn's body.
func (e *engine) body(fn *types.Func) *hotalloc.Result {
	if r, ok := e.bodies[fn]; ok {
		return r
	}
	r := hotalloc.Check(e.pass, e.dirs, e.graph.Node(fn).Decl)
	e.bodies[fn] = r
	return r
}

// summarize computes fn's transitive summary bottom-up. A recursion
// cycle is treated as clean at the back edge: a cycle that allocates
// is still caught through the member whose own body (or acyclic
// callee) holds the allocation.
func (e *engine) summarize(fn *types.Func) (*summary, error) {
	if s, ok := e.sums[fn]; ok {
		return s, nil
	}
	if e.walking[fn] {
		return &summary{}, nil
	}
	e.walking[fn] = true
	defer delete(e.walking, fn)

	n := e.graph.Node(fn)
	s := &summary{
		hot:  e.dirs.Func(n.Decl, analysis.DirHotpath),
		cold: e.dirs.Func(n.Decl, analysis.DirColdpath),
	}
	body := e.body(fn)
	if len(body.Sites) > 0 {
		site := body.Sites[0]
		s.alloc = fmt.Sprintf("%s: %s", e.pass.Fset.Position(site.Pos), site.Msg)
	} else {
	edges:
		for _, edge := range n.Edges {
			if edge.Callee == nil || body.Cold(edge.Site.Pos()) {
				continue
			}
			dirty, err := e.callee(edge.Callee)
			if err != nil {
				return nil, err
			}
			if dirty != nil {
				s.alloc = dirty.alloc
				s.chain = append([]string{display(edge.Callee)}, dirty.chain...)
				break edges
			}
		}
	}
	e.sums[fn] = s
	return s, nil
}

// callee resolves one call target's transitive summary: recursively
// for local functions, through imported facts for external ones. It
// returns nil when the callee is clean, exempt (hotpath/coldpath
// annotated — checked at its own definition), or unknowable (no body,
// no facts).
func (e *engine) callee(fn *types.Func) (*summary, error) {
	fn = fn.Origin() // summaries live on generic declarations
	if e.graph.Node(fn) != nil {
		s, err := e.summarize(fn)
		if err != nil {
			return nil, err
		}
		if s.alloc == "" || s.hot || s.cold {
			return nil, nil
		}
		return s, nil
	}
	if fn.Pkg() == nil || fn.Pkg() == e.pass.Pkg {
		return nil, nil // builtin-adjacent or bodyless local declaration
	}
	pf, err := e.factsFor(fn.Pkg().Path())
	if err != nil {
		return nil, err
	}
	f, ok := pf.Funcs[facts.Key(fn)]
	if !ok || f.Alloc == "" || f.Hotpath || f.Coldpath {
		return nil, nil
	}
	return &summary{alloc: f.Alloc, chain: f.Chain}, nil
}

// factsFor lazily decodes the imported fact blob of one dependency.
func (e *engine) factsFor(path string) (*facts.Package, error) {
	if p, ok := e.imported[path]; ok {
		return p, nil
	}
	p, err := facts.Decode(e.pass.ReadFacts(path))
	if err != nil {
		return nil, fmt.Errorf("package %s: %v", path, err)
	}
	e.imported[path] = p
	return p, nil
}

// checkHotpath reports every call edge of a hotpath function whose
// resolved callee transitively allocates. The root's own body sites
// are hotalloc's findings, not repeated here.
func (e *engine) checkHotpath(n *callgraph.Node) error {
	body := e.body(n.Func)
	for _, edge := range n.Edges {
		if edge.Callee == nil || body.Cold(edge.Site.Pos()) {
			continue
		}
		dirty, err := e.callee(edge.Callee)
		if err != nil {
			return err
		}
		if dirty == nil {
			continue
		}
		chain := append([]string{display(edge.Callee)}, dirty.chain...)
		e.pass.Reportf(edge.Site.Pos(),
			"call to %s allocates in hot path: %s → %s (annotate the callee //remspan:hotpath or //remspan:coldpath, or make it allocation-free)",
			display(edge.Callee), strings.Join(chain, " → "), dirty.alloc)
	}
	return nil
}

// exportFacts serializes the package's non-default summaries for
// dependent units: annotated functions and dirty ones (a clean
// unannotated function equals the no-fact default).
func (e *engine) exportFacts() error {
	if e.pass.ExportFacts == nil {
		return nil
	}
	out := &facts.Package{Funcs: make(map[string]facts.FuncFact)}
	for _, n := range e.graph.Nodes {
		s := e.sums[n.Func]
		if s == nil || (s.alloc == "" && !s.hot && !s.cold) {
			continue
		}
		out.Funcs[facts.Key(n.Func)] = facts.FuncFact{
			Hotpath:  s.hot,
			Coldpath: s.cold,
			Alloc:    s.alloc,
			Chain:    s.chain,
		}
	}
	data, err := facts.Encode(out)
	if err != nil {
		return err
	}
	e.pass.ExportFacts(data)
	return nil
}

// display renders a function compactly for chains: package-qualified,
// with the module's internal prefix trimmed ("graph.Grow",
// "(*graph.EdgeMarks).AddTree").
func display(fn *types.Func) string {
	name := fn.FullName()
	name = strings.ReplaceAll(name, "remspan/internal/", "")
	return strings.ReplaceAll(name, "remspan/", "")
}
