// Package b is the cross-package half of the hotcall corpus: its
// exported helpers allocate (directly or transitively), and the facts
// store must carry that across the package boundary into a's hotpath
// callers.
package b

// Helper is clean itself but reaches an allocation through inner; the
// exported fact chain is Helper → inner.
func Helper(n int) []int {
	return inner(n)
}

func inner(n int) []int {
	return make([]int, n)
}

// Audited is allocating but explicitly exempted: hotpath callers may
// invoke it freely.
//
//remspan:coldpath corpus: documented init-only helper
func Audited(n int) []int {
	return make([]int, n)
}

// Clean never allocates; calling it from a hot path is fine.
func Clean(x int) int {
	return x * 2
}
