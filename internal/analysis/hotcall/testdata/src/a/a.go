// Package a exercises hotcall: transitive hotpath propagation through
// the local call graph and, via package b, across package boundaries.
package a

import "a/b"

// grow allocates directly: any hotpath caller must be flagged.
func grow(n int) []int {
	return make([]int, n)
}

// mid is clean itself but reaches grow — the chain the diagnostic
// must print.
func mid(n int) []int {
	return grow(n)
}

// T carries an allocating method for the static-receiver edge.
type T struct{ buf []int }

func (t *T) fill(n int) {
	t.buf = make([]int, n)
}

// coldLocal is allocating but function-level exempt.
//
//remspan:coldpath corpus: audited grow helper
func coldLocal(n int) []int {
	return make([]int, n)
}

// hotLeaf is itself hotpath-annotated: hotalloc checks its body, so
// hot callers do not re-report through it.
//
//remspan:hotpath
func hotLeaf(x int) int {
	return x + 1
}

// even/odd form a clean recursion cycle: summarization must
// terminate and stay clean.
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

// sink swallows a func value: dynamic calls are not followed.
func sink(f func(int) []int) { _ = f }

//remspan:hotpath
func Hot(t *T, n int) int {
	_ = mid(n)       // want "call to a\\.mid allocates in hot path: a\\.mid → a\\.grow →"
	_ = b.Helper(n)  // want "call to a/b\\.Helper allocates in hot path: a/b\\.Helper → a/b\\.inner →"
	t.fill(n)        // want "call to \\(\\*a\\.T\\)\\.fill allocates in hot path"
	_ = b.Audited(n) // exempt: function-level coldpath fact
	_ = coldLocal(n) // exempt: function-level coldpath annotation
	_ = hotLeaf(n)   // exempt: hotpath callee checked at its definition
	_ = b.Clean(n)   // clean cross-package callee
	_ = even(n)      // clean recursion cycle
	sink(grow)       // func value, not a call edge
	//remspan:coldpath corpus: statement-level exemption covers the call
	_ = mid(n)
	f := func() int { return n + 1 }
	return f() // closure tracked to its definition: body already scanned, no edge
}
