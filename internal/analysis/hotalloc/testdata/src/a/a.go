// Package a is the hotalloc golden corpus: every allocating construct
// the analyzer must flag inside a //remspan:hotpath function, the
// escape hatches it must honor, and unannotated code it must ignore.
package a

import "fmt"

type scratch struct {
	buf []int32
	n   int
}

func (s *scratch) Reset() {}

var sink interface{}

//remspan:hotpath
func allocators(s *scratch, n int) []int32 {
	x := make([]int32, n) // want "make allocates in hot path"
	_ = x
	p := new(int) // want "new allocates in hot path"
	_ = p
	q := &scratch{} // want "pointer composite literal allocates in hot path"
	_ = q
	_ = []int32{1, 2}        // want "slice literal allocates in hot path"
	_ = map[int]int{1: 2}    // want "map literal allocates in hot path"
	s.buf = append(s.buf, 1) // amortized self-append: allowed
	t := append(s.buf, 2)    // want "append outside the s = append"
	return t
}

//remspan:hotpath
func boxing(s *scratch, v int32) interface{} {
	fmt.Println(v)        // want "fmt.Println call allocates in hot path" "interface boxing of int32 at argument allocates in hot path"
	sink = v              // want "interface boxing of int32 at assignment allocates in hot path"
	var i interface{} = v // want "interface boxing of int32 at declaration allocates in hot path"
	_ = i
	_ = interface{}(v) // want "interface boxing of int32 at conversion allocates in hot path"
	sink = s           // pointer-shaped: no boxing allocation
	return v           // want "interface boxing of int32 at return allocates in hot path"
}

//remspan:hotpath
func strings2(a, b string) string {
	c := a + b            // want "string concatenation allocates in hot path"
	c += a                // want "string concatenation allocates in hot path"
	_ = []byte(a)         // want "string/slice conversion copies and allocates in hot path"
	_ = string([]byte{1}) // want "slice literal allocates in hot path" "string/slice conversion copies and allocates in hot path"
	return c
}

//remspan:hotpath
func closures(s *scratch) {
	f := func() int { return s.n } // want "closure captures s: closure allocates in hot path"
	_ = f
	g := func(x int) int { return x + 1 } // capture-free literal: allowed
	_ = g
	h := s.Reset // want "method value s.Reset allocates its receiver binding in hot path"
	_ = h
	s.Reset() // plain method call: allowed
}

//remspan:hotpath
func reuseAppend(s *scratch, xs []int32) {
	s.buf = append(s.buf[:0], xs...) // reuse idiom: allowed
	s.buf = append(s.buf, 1)         // self-append: allowed
}

//remspan:hotpath
func panics(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // panic is terminal: exempt
	}
}

func take(f func() int) int { return f() }

//remspan:hotpath
func stackClosures(s *scratch, xs []int32) int {
	gain := func(x int32) int { return int(x) + s.n } // called-only local: stays on the stack
	total := 0
	for _, x := range xs {
		total += gain(x)
	}
	func() { total++ }()            // invoked in place: allowed
	take(func() int { return s.n }) // want "closure captures s: closure allocates in hot path"
	return total
}

//remspan:hotpath
func coldBranch(s *scratch, n int) {
	//remspan:coldpath grow-on-demand buffer, off the steady state
	if cap(s.buf) < n {
		s.buf = make([]int32, 0, n)
	}
	s.buf = s.buf[:0]
}

// unannotated allocates freely: not a hot path.
func unannotated(n int) []int32 {
	return make([]int32, n)
}
