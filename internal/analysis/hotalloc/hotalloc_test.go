package hotalloc_test

import (
	"testing"

	"remspan/internal/analysis/analysistest"
	"remspan/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "testdata/src/a")
}
