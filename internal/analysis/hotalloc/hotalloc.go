// Package hotalloc rejects allocating constructs in functions marked
// //remspan:hotpath.
//
// The repo's steady-state paths (domtree CSR builders, graph
// BFS/BitScratch/BallScratch sweeps, spanner verification,
// dynamic.ApplyBatch, distsim refloods, the routing batch builder and
// Store writer, the replica apply path) are pinned allocation-free by
// ReportAllocs benchmarks and AllocsPerRun tests — but those fire after
// a regression lands, and only on the graph shapes the bench happens to
// drive. hotalloc moves the check to vet time: inside a hotpath
// function it reports
//
//   - make and new calls, and &T{...} pointer composite literals;
//   - slice and map composite literals;
//   - append calls that are not the amortized reuse idioms
//     s = append(s, ...) / s = append(s[:k], ...) (a grow of any other
//     destination is a fresh allocation by construction);
//   - function literals that capture enclosing variables and escape —
//     a literal invoked in place, or bound to a local used only as a
//     callee, stays on the stack and is accepted;
//   - bound method values (x.M used as a value allocates);
//   - interface boxing: passing, assigning, returning, or converting a
//     non-pointer-shaped concrete value where an interface is expected;
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - any call into package fmt.
//
// A statement annotated //remspan:coldpath (same line or the line
// above) is exempt with its whole subtree: the documented
// init/grow/error branch that is off the steady state by construction.
// panic(...) statements are exempt implicitly — they are terminal.
// Amortized self-appends are accepted statically because the dynamic
// ReportAllocs pins still guard their steady-state capacity.
//
// The check is intraprocedural: a hotpath function calling an
// unannotated allocating helper is not reported — annotate the helper.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"remspan/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "reject allocating constructs in //remspan:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := analysis.ScanDirectives(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !dirs.Func(fd, analysis.DirHotpath) {
				continue
			}
			for _, s := range Check(pass, dirs, fd).Sites {
				pass.Reportf(s.Pos, "%s", s.Msg)
			}
		}
	}
	return nil, nil
}

// Site is one allocating construct found in a function body.
type Site struct {
	Pos token.Pos
	Msg string
}

// Result is the outcome of checking one function body: the allocating
// constructs outside //remspan:coldpath subtrees, plus the coldpath
// spans themselves. hotalloc reports the sites of hotpath-annotated
// functions; the interprocedural hotcall analyzer calls Check on every
// function to summarize transitive allocation behavior, and uses Cold
// to drop call edges that sit inside exempted subtrees.
type Result struct {
	Sites []Site
	cold  []span
}

// Cold reports whether pos falls inside a coldpath-exempted statement
// subtree of the checked function.
func (r *Result) Cold(pos token.Pos) bool {
	for _, s := range r.cold {
		if s.pos <= pos && pos < s.end {
			return true
		}
	}
	return false
}

type span struct{ pos, end token.Pos }

type checker struct {
	pass            *analysis.Pass
	res             *Result
	cold            []span // //remspan:coldpath statement subtrees
	lits            []*ast.FuncLit
	decl            *ast.FuncDecl
	allowedAppend   map[*ast.CallExpr]bool
	calledSelectors map[*ast.SelectorExpr]bool
	directCalled    map[*ast.FuncLit]bool       // func(){...}() — never materialized
	litVar          map[*ast.FuncLit]*types.Var // local var a lit is bound to
	escapedVar      map[*types.Var]bool         // lit var used other than as callee
}

// Check collects the allocating constructs of fd's body (nested
// function literals included) without reporting them; the caller
// decides what a site means — a diagnostic for hotalloc, a dirty
// transitive summary for hotcall.
func Check(pass *analysis.Pass, dirs *analysis.Directives, fd *ast.FuncDecl) *Result {
	c := &checker{
		pass:            pass,
		res:             &Result{},
		decl:            fd,
		allowedAppend:   make(map[*ast.CallExpr]bool),
		calledSelectors: make(map[*ast.SelectorExpr]bool),
		directCalled:    make(map[*ast.FuncLit]bool),
		litVar:          make(map[*ast.FuncLit]*types.Var),
		escapedVar:      make(map[*types.Var]bool),
	}

	// Pre-pass: record coldpath subtrees, function literals (for
	// innermost-return signature lookup), invoked selectors (to tell
	// method values from method calls), the self-append call sites the
	// amortized idiom allows, and how each function literal is used
	// (only literals that escape materialize a heap closure).
	callFunIdents := make(map[*ast.Ident]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case ast.Stmt:
			if dirs.At(n.Pos(), analysis.DirColdpath) {
				c.cold = append(c.cold, span{n.Pos(), n.End()})
			}
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
				for i, rhs := range as.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok && c.isBuiltin(call, "append") && len(call.Args) > 0 {
						if c.isSelfAppend(as.Lhs[i], call.Args[0]) {
							c.allowedAppend[call] = true
						}
					}
					if lit, ok := rhs.(*ast.FuncLit); ok && as.Tok == token.DEFINE {
						if id, ok := as.Lhs[i].(*ast.Ident); ok {
							if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
								c.litVar[lit] = v
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.SelectorExpr:
				c.calledSelectors[fun] = true
			case *ast.FuncLit:
				c.directCalled[fun] = true
			case *ast.Ident:
				callFunIdents[fun] = true
			}
		case *ast.FuncLit:
			c.lits = append(c.lits, n)
		}
		return true
	})
	// A literal bound to a local that is only ever the callee stays on
	// the stack; any other use of that variable lets it escape.
	boundVars := make(map[*types.Var]bool, len(c.litVar))
	for _, v := range c.litVar {
		boundVars[v] = true
	}
	if len(boundVars) > 0 {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || callFunIdents[id] {
				return true
			}
			if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok && boundVars[v] {
				c.escapedVar[v] = true
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(ast.Stmt); ok && c.inCold(n.Pos()) {
			return false
		}
		// panic is terminal: the statement never runs on the steady
		// state, so its message construction is exempt wholesale.
		if call, ok := n.(*ast.CallExpr); ok && c.isBuiltin(call, "panic") {
			return false
		}
		c.node(n)
		return true
	})
	c.res.cold = c.cold
	return c.res
}

// isSelfAppend reports the amortized reuse idioms
// s = append(s, ...) and s = append(s[:k], ...): the destination
// already owns the backing array, so the steady state does not grow.
func (c *checker) isSelfAppend(lhs, arg0 ast.Expr) bool {
	if types.ExprString(lhs) == types.ExprString(arg0) {
		return true
	}
	if sl, ok := ast.Unparen(arg0).(*ast.SliceExpr); ok {
		return types.ExprString(lhs) == types.ExprString(sl.X)
	}
	return false
}

func (c *checker) inCold(pos token.Pos) bool {
	for _, s := range c.cold {
		if s.pos <= pos && pos < s.end {
			return true
		}
	}
	return false
}

func (c *checker) report(pos token.Pos, format string, args ...interface{}) {
	if c.inCold(pos) {
		return
	}
	c.res.Sites = append(c.res.Sites, Site{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isBuiltin reports whether call invokes the named builtin.
func (c *checker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func (c *checker) node(n ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		c.call(n)
	case *ast.CompositeLit:
		switch c.underlying(n).(type) {
		case *types.Slice:
			c.report(n.Pos(), "slice literal allocates in hot path")
		case *types.Map:
			c.report(n.Pos(), "map literal allocates in hot path")
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				c.report(n.Pos(), "pointer composite literal allocates in hot path")
			}
		}
	case *ast.FuncLit:
		c.capture(n)
	case *ast.SelectorExpr:
		c.methodValue(n)
	case *ast.BinaryExpr:
		if n.Op == token.ADD && c.isString(n) && !c.isConst(n) {
			c.report(n.Pos(), "string concatenation allocates in hot path")
		}
	case *ast.AssignStmt:
		c.assign(n)
	case *ast.ValueSpec:
		c.valueSpec(n)
	case *ast.ReturnStmt:
		c.returnStmt(n)
	}
}

func (c *checker) underlying(e ast.Expr) types.Type {
	t := c.typeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func (c *checker) isString(e ast.Expr) bool {
	b, ok := c.underlying(e).(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (c *checker) isConst(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func (c *checker) call(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	// Conversions: T(x).
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		c.conversion(call, tv.Type, call.Args[0])
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				c.report(call.Pos(), "make allocates in hot path")
			case "new":
				c.report(call.Pos(), "new allocates in hot path")
			case "append":
				if !c.allowedAppend[call] {
					c.report(call.Pos(), "append outside the s = append(s, ...) self-append idiom may grow a fresh allocation in hot path")
				}
			}
			return
		}
	}
	// fmt calls.
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		c.report(call.Pos(), "fmt.%s call allocates in hot path", fn.Name())
	}
	// Interface boxing at argument positions.
	sigT, ok := c.underlying(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sigT.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sigT.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // passing the slice through: no boxing
				if i == params.Len()-1 {
					continue
				}
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		c.boxing(arg, pt, "argument")
	}
}

// conversion flags allocating conversions: boxing into an interface
// and string<->[]byte/[]rune copies.
func (c *checker) conversion(call *ast.CallExpr, to types.Type, arg ast.Expr) {
	c.boxing(arg, to, "conversion")
	from := c.typeOf(arg)
	if from == nil {
		return
	}
	if isStringType(to) && isByteOrRuneSlice(from) || isByteOrRuneSlice(to) && isStringType(from) {
		c.report(call.Pos(), "string/slice conversion copies and allocates in hot path")
	}
}

// boxing reports a non-pointer-shaped concrete value reaching an
// interface-typed slot.
func (c *checker) boxing(arg ast.Expr, target types.Type, what string) {
	if target == nil || !types.IsInterface(target.Underlying()) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	at := tv.Type
	if tv.IsNil() || types.IsInterface(at.Underlying()) || pointerShaped(at) {
		return
	}
	c.report(arg.Pos(), "interface boxing of %s at %s allocates in hot path", at, what)
}

// capture reports a function literal that closes over enclosing
// variables AND escapes. A literal that is invoked in place, or bound
// to a local used only as a callee, keeps its closure header on the
// stack and allocates nothing.
func (c *checker) capture(lit *ast.FuncLit) {
	if c.directCalled[lit] {
		return
	}
	if v, ok := c.litVar[lit]; ok && !c.escapedVar[v] {
		return
	}
	info := c.pass.TypesInfo
	pkgScope := c.pass.Pkg.Scope()
	reported := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == nil || v.Parent() == pkgScope || v.Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			c.report(lit.Pos(), "closure captures %s: closure allocates in hot path", v.Name())
			reported = true
		}
		return true
	})
}

// methodValue reports x.M used as a value (not called): binding the
// receiver allocates.
func (c *checker) methodValue(sel *ast.SelectorExpr) {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	// Only flag when the selector is the value itself, not the callee
	// of a call. Calls are recognized by the parent; absent parent
	// links, check that the selector's type is a signature AND it is
	// not immediately invoked — conservatively approximated by looking
	// it up in the recorded call sites.
	if c.calledSelectors[sel] {
		return
	}
	c.report(sel.Pos(), "method value %s.%s allocates its receiver binding in hot path", types.ExprString(sel.X), sel.Sel.Name)
}

// assign flags interface boxing (and += string growth) on assignment.
func (c *checker) assign(as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && c.isString(as.Lhs[0]) {
		c.report(as.Pos(), "string concatenation allocates in hot path")
		return
	}
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		c.boxing(as.Rhs[i], c.typeOf(lhs), "assignment")
	}
}

// valueSpec flags interface boxing in var declarations with an
// explicit interface type.
func (c *checker) valueSpec(vs *ast.ValueSpec) {
	if vs.Type == nil || len(vs.Values) == 0 {
		return
	}
	t := c.typeOf(vs.Type)
	for _, v := range vs.Values {
		c.boxing(v, t, "declaration")
	}
}

// returnStmt flags interface boxing at return, against the innermost
// enclosing function literal's results (or the declaration's).
func (c *checker) returnStmt(ret *ast.ReturnStmt) {
	results := c.resultsAt(ret.Pos())
	if results == nil || len(ret.Results) != results.Len() {
		return // bare return, or a single multi-value call: nothing to box here
	}
	for i, r := range ret.Results {
		c.boxing(r, results.At(i).Type(), "return")
	}
}

// resultsAt returns the result tuple of the innermost function
// enclosing pos.
func (c *checker) resultsAt(pos token.Pos) *types.Tuple {
	var best *ast.FuncLit
	for _, lit := range c.lits {
		if lit.Pos() <= pos && pos < lit.End() {
			if best == nil || lit.Pos() > best.Pos() {
				best = lit
			}
		}
	}
	var sigT types.Type
	if best != nil {
		sigT = c.typeOf(best)
	} else if obj, ok := c.pass.TypesInfo.Defs[c.decl.Name]; ok {
		sigT = obj.Type()
	}
	if sigT == nil {
		return nil
	}
	if sig, ok := sigT.Underlying().(*types.Signature); ok {
		return sig.Results()
	}
	return nil
}

// calleeFunc resolves the statically known *types.Func a call invokes,
// or nil (indirect calls through func values).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// pointerShaped reports whether boxing a value of type t into an
// interface stores the value in the iface data word directly: pointers,
// channels, maps, funcs, and unsafe.Pointer do not allocate.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
