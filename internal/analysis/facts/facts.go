// Package facts is the cross-package side channel of the
// interprocedural remspanlint analyzers: a per-package store of
// function summaries, serialized as deterministic JSON so it can ride
// the vetx artifact the go command threads between `go vet -vettool`
// units (and plain in-memory maps in the standalone and analysistest
// drivers).
//
// The file format a driver persists is one JSON object per unit,
// mapping analyzer name to that analyzer's opaque blob:
//
//	{"hotcall": {"funcs": {"(remspan/internal/graph.*EdgeMarks).AddTree": {...}}}}
//
// Each analyzer owns its blob's schema; this package defines the one
// schema in use today — hotcall's FuncFact — plus the envelope
// helpers drivers use to multiplex analyzers into one vetx file.
package facts

import (
	"encoding/json"
	"fmt"
	"go/types"
)

// FuncFact is hotcall's summary of one declared function, enough for
// a dependent package to extend a hotpath call chain through it
// without re-analyzing its source.
type FuncFact struct {
	// Hotpath records a //remspan:hotpath annotation: the function is
	// checked at its own definition, so callers do not re-report its
	// findings.
	Hotpath bool `json:"hot,omitempty"`
	// Coldpath records a //remspan:coldpath annotation on the whole
	// function: an audited escape hatch callers may invoke freely.
	Coldpath bool `json:"cold,omitempty"`
	// Alloc is empty when the function is transitively
	// allocation-free under hotalloc's rules; otherwise it describes
	// the first offending construct ("file:line: make allocates in
	// hot path").
	Alloc string `json:"alloc,omitempty"`
	// Chain names the callees between this function and the
	// allocation in Alloc, outermost first and excluding the function
	// itself — empty when the allocation is in its own body.
	Chain []string `json:"chain,omitempty"`
}

// Package is one package's exported fact set, keyed by Key(fn).
type Package struct {
	Funcs map[string]FuncFact `json:"funcs"`
}

// Key returns the canonical cross-package identifier of a function:
// its types.Func.FullName ("pkg/path.Name" for functions,
// "(pkg/path.Recv).Name" for methods). Both the exporting side (source
// *types.Func) and the importing side (the same object reloaded from
// export data) produce identical keys.
func Key(fn *types.Func) string { return fn.FullName() }

// Encode serializes one package's facts. json.Marshal sorts map keys,
// so equal stores yield byte-identical blobs — the vetx content hash
// feeds the go command's build cache.
func Encode(p *Package) ([]byte, error) {
	return json.Marshal(p)
}

// Decode parses a blob produced by Encode. A nil or empty blob yields
// an empty package (dependencies without facts are normal: stdlib
// units export none).
func Decode(data []byte) (*Package, error) {
	p := &Package{Funcs: make(map[string]FuncFact)}
	if len(data) == 0 {
		return p, nil
	}
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("decoding fact blob: %v", err)
	}
	if p.Funcs == nil {
		p.Funcs = make(map[string]FuncFact)
	}
	return p, nil
}

// Envelope is the multi-analyzer vetx file content: analyzer name to
// opaque blob.
type Envelope map[string]json.RawMessage

// EncodeEnvelope serializes the per-analyzer blobs of one unit.
func EncodeEnvelope(e Envelope) ([]byte, error) {
	if len(e) == 0 {
		return nil, nil
	}
	return json.Marshal(e)
}

// DecodeEnvelope parses a vetx file. Empty files (the pre-fact vetx
// artifacts, stdlib units) decode to an empty envelope.
func DecodeEnvelope(data []byte) (Envelope, error) {
	if len(data) == 0 {
		return Envelope{}, nil
	}
	var e Envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("decoding vetx envelope: %v", err)
	}
	return e, nil
}
