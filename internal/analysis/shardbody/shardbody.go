// Package shardbody checks the write discipline of shard bodies: a
// function literal passed to sched.Pool.Run / sched.Pool.RunSpan /
// sched.Reducer.Map runs concurrently on many workers over disjoint
// [lo, hi) spans, so it may write captured state only in ways the
// schedule cannot race on:
//
//   - per-worker slots: an access path indexed by the worker argument
//     w (or a local derived from it) — e.workers[w].n = ...;
//   - span-disjoint slots: indexed by lo/hi or a local derived from
//     them — for u := lo; u < hi; u++ { e.sizes[u] = ... };
//   - sync/atomic operations (method calls are not assignments, so
//     they pass untouched — pair them with rcupub's field rules).
//
// Any other write to captured state — a plain captured scalar, a
// fixed index (i := 0), a range index over the whole captured slice,
// a write through an alias of captured state taken without a
// worker/span index — is a data race the race detector only catches
// when two workers happen to collide during a sampled run. shardbody
// rejects it statically.
//
// Call sites are recognized by shape, not import path: a call to a
// method named Run, RunSpan, or Map passing a function literal whose
// signature starts with three int parameters (w, lo, hi). This keeps
// the check testable from corpora that mimic the scheduler API and
// future-proof against the pool moving packages. Only literal
// arguments are analyzed: prebound bodies (the shared envs' e.body
// method values) are ordinary functions that hotalloc/hotcall cover
// at their definitions, where the same slot conventions are pinned by
// the sched-equivalence tests.
//
// //remspan:shardok on a statement (same line or the line above)
// exempts its subtree: the audited cross-shard write whose safety
// argument lives in the comment.
package shardbody

import (
	"go/ast"
	"go/token"
	"go/types"

	"remspan/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "shardbody",
	Doc:  "shard bodies may write captured state only via worker-index/span-derived slots or atomics",
	Run:  run,
}

// schedMethods are the scheduler entry points whose literal arguments
// are shard bodies.
var schedMethods = map[string]bool{"Run": true, "RunSpan": true, "Map": true}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := analysis.ScanDirectives(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !schedMethods[sel.Sel.Name] {
				return true
			}
			if _, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !ok {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok && isShardSig(pass, lit) {
					checkBody(pass, dirs, lit)
				}
			}
			return true
		})
	}
	return nil, nil
}

// isShardSig reports whether lit's signature starts with three int
// parameters — the (w, lo, hi) shape of Pool.Run bodies and the
// (w, lo, hi) R shape of Reducer.Map bodies.
func isShardSig(pass *analysis.Pass, lit *ast.FuncLit) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || sig.Params().Len() != 3 {
		return false
	}
	for i := 0; i < 3; i++ {
		b, ok := sig.Params().At(i).Type().Underlying().(*types.Basic)
		if !ok || b.Kind() != types.Int {
			return false
		}
	}
	return true
}

type span struct{ pos, end token.Pos }

// checker analyzes one shard body literal.
type checker struct {
	pass *analysis.Pass
	lit  *ast.FuncLit
	ok   []span // //remspan:shardok statement subtrees

	derived map[*types.Var]bool // safe index sources: w/lo/hi and derivations
	shared  map[*types.Var]bool // local aliases of captured reference state
	params  map[*types.Var]bool // the literal's own (w, lo, hi) parameters
}

func checkBody(pass *analysis.Pass, dirs *analysis.Directives, lit *ast.FuncLit) {
	c := &checker{
		pass:    pass,
		lit:     lit,
		derived: make(map[*types.Var]bool),
		shared:  make(map[*types.Var]bool),
		params:  make(map[*types.Var]bool),
	}
	// Seed the derived set with the three shard parameters.
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				c.derived[v] = true
				c.params[v] = true
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if st, ok := n.(ast.Stmt); ok && dirs.At(st.Pos(), analysis.DirShardOK) {
			c.ok = append(c.ok, span{st.Pos(), st.End()})
		}
		return true
	})
	c.classifyLocals()
	c.checkWrites()
}

// captured reports whether v is defined outside the literal (enclosing
// locals, parameters, package state): shared across workers unless
// accessed through a disciplined index.
func (c *checker) captured(v *types.Var) bool {
	if v.IsField() {
		return false // fields are judged through their access path's base
	}
	return v.Pos() < c.lit.Pos() || v.Pos() >= c.lit.End()
}

// classifyLocals runs a small fixpoint over the literal's assignments:
//
//   - a local joins derived when every value assigned to it references
//     at least one derived variable and nothing non-derived (u := lo;
//     u2 := u + 1); a constant init (i := 0) stays underived;
//   - a local of reference type joins shared when it aliases captured
//     state taken without a worker/span index (rows := e.rows); an
//     alias taken through a derived index stays worker-owned
//     (bw := e.workers[w]).
func (c *checker) classifyLocals() {
	for changed := true; changed; {
		changed = false
		ast.Inspect(c.lit.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v := c.varOf(id)
				if v == nil || c.captured(v) {
					continue
				}
				if !c.derived[v] && c.isDerivedExpr(as.Rhs[i]) {
					c.derived[v] = true
					changed = true
				}
				if !c.shared[v] && c.isSharedAlias(as.Rhs[i]) {
					c.shared[v] = true
					changed = true
				}
			}
			return true
		})
	}
	// Poison pass: a "derived" local that is also assigned something
	// non-derived anywhere cannot be trusted as an index.
	ast.Inspect(c.lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v := c.varOf(id)
			// The (w, lo, hi) parameters themselves are never
			// poisoned: reassigning them from non-derived values is
			// pathological and out of scope.
			if v == nil || c.captured(v) || !c.derived[v] || c.params[v] {
				continue
			}
			if !c.isDerivedExpr(as.Rhs[i]) {
				delete(c.derived, v)
			}
		}
		return true
	})
}

func (c *checker) varOf(id *ast.Ident) *types.Var {
	if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// isDerivedExpr reports whether e references at least one derived
// variable and no underived ones — the shape of an index that stays
// inside the shard's span or worker slot.
func (c *checker) isDerivedExpr(e ast.Expr) bool {
	some, all := false, true
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if c.derived[v] {
			some = true
		} else {
			all = false
		}
		return true
	})
	return some && all
}

// mentionsDerived reports whether e references any derived variable —
// the weaker test index expressions use (slots[lo/span] divides a
// span coordinate by a captured constant and is still span-disjoint).
func (c *checker) mentionsDerived(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok && c.derived[v] {
				found = true
			}
		}
		return true
	})
	return found
}

// isSharedAlias reports whether e aliases captured reference state
// without a derived index: assigning it to a local makes that local
// shared too.
func (c *checker) isSharedAlias(e ast.Expr) bool {
	if !isRefType(c.pass.TypesInfo.Types[e].Type) {
		return false
	}
	// An alias taken through a derived index (e.workers[w],
	// rows[u]) is worker-owned.
	base, hasDerivedIdx := c.pathBase(e)
	if base == nil || hasDerivedIdx {
		return false
	}
	return c.captured(base) || c.shared[base]
}

// pathBase unwraps an access path (selectors, indexes, stars, parens)
// to its base variable, reporting whether any index step along the
// way mentions a derived variable.
func (c *checker) pathBase(e ast.Expr) (*types.Var, bool) {
	hasDerived := false
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			if c.mentionsDerived(x.Index) {
				hasDerived = true
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			if x.Low != nil && c.mentionsDerived(x.Low) || x.High != nil && c.mentionsDerived(x.High) {
				hasDerived = true
			}
			e = x.X
		case *ast.Ident:
			v := c.varOf(x)
			return v, hasDerived
		default:
			return nil, hasDerived
		}
	}
}

func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	}
	return false
}

func (c *checker) exempt(pos token.Pos) bool {
	for _, s := range c.ok {
		if s.pos <= pos && pos < s.end {
			return true
		}
	}
	return false
}

// checkWrites flags every assignment or inc/dec whose target reaches
// captured (or captured-aliased) state without a derived index step.
func (c *checker) checkWrites() {
	ast.Inspect(c.lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.checkTarget(lhs)
			}
		case *ast.IncDecStmt:
			c.checkTarget(n.X)
		}
		return true
	})
}

func (c *checker) checkTarget(target ast.Expr) {
	if id, ok := ast.Unparen(target).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		v := c.varOf(id)
		if v == nil || !c.captured(v) {
			return // rebinding a local is worker-private
		}
		if c.exempt(target.Pos()) {
			return
		}
		c.pass.Reportf(target.Pos(),
			"shard body writes captured variable %s: racy across workers; use a worker-indexed slot, a span-derived index, or sync/atomic (//remspan:shardok exempts an audited write)", id.Name)
		return
	}
	base, hasDerivedIdx := c.pathBase(target)
	if base == nil || hasDerivedIdx {
		return
	}
	if !c.captured(base) && !c.shared[base] {
		return
	}
	if c.exempt(target.Pos()) {
		return
	}
	what := "captured state"
	if c.shared[base] {
		what = "an alias of captured state"
	}
	c.pass.Reportf(target.Pos(),
		"shard body writes %s through %s without a worker-index or shard-span-derived index: racy across workers (//remspan:shardok exempts an audited write)", what, base.Name())
}
