package shardbody_test

import (
	"testing"

	"remspan/internal/analysis/analysistest"
	"remspan/internal/analysis/shardbody"
)

func TestShardBody(t *testing.T) {
	analysistest.Run(t, shardbody.Analyzer, "testdata/src/a")
}
