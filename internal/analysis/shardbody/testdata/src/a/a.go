// Package a exercises shardbody against a structural mimic of the
// sched API (the analyzer matches Run/RunSpan/Map by method name and
// body shape, so the corpus needs no import of the real scheduler).
package a

import "sync/atomic"

// Pool mimics sched.Pool.
type Pool struct{}

func (p *Pool) Run(items, width int, body func(w, lo, hi int))           {}
func (p *Pool) RunSpan(items, width, span int, body func(w, lo, hi int)) {}

// Reducer mimics sched.Reducer.
type Reducer struct{}

func (r *Reducer) Map(p *Pool, items, width int, body func(w, lo, hi int) int, fold func(int)) {
}

type env struct {
	sizes   []int
	workers []*slot
	rows    []int
	total   int
}

type slot struct {
	n     int
	local []int
}

func good(p *Pool, e *env, n, width int) {
	var hits atomic.Int64
	p.Run(n, width, func(w, lo, hi int) {
		for u := lo; u < hi; u++ {
			e.sizes[u] = u * 2 // span-derived index
		}
		bw := e.workers[w] // worker-owned alias
		bw.n++
		bw.local = append(bw.local, w)
		hits.Add(1) // atomics pass untouched
		k := lo + 1
		e.rows[k] = w // derived from lo
	})
}

func goodSpanAlias(p *Pool, e *env, n, width, span int) {
	p.RunSpan(n, width, span, func(w, lo, hi int) {
		mine := e.rows[lo:hi] // span-sliced alias is shard-disjoint
		for i := range mine {
			mine[i] = w
		}
	})
}

func goodReducer(r *Reducer, p *Pool, e *env, n, width int) {
	slots := make([]int, n)
	span := 4
	r.Map(p, n, width, func(w, lo, hi int) int {
		slots[lo/span] = w // span-derived index through a captured divisor
		return lo
	}, func(x int) {})
}

func bad(p *Pool, e *env, n, width int) {
	total := 0
	i := 0
	p.Run(n, width, func(w, lo, hi int) {
		total += hi - lo // want "writes captured variable total"
		e.total = w      // want "writes captured state through e"
		e.rows[i] = w    // want "writes captured state through e"
		i++              // want "writes captured variable i"
		for j := range e.rows {
			e.rows[j] = 0 // want "writes captured state through e"
		}
		rows := e.rows // shared alias, no worker/span index
		rows[0] = 1    // want "writes an alias of captured state through rows"
	})
}

func exempted(p *Pool, e *env, n, width int) {
	p.Run(n, width, func(w, lo, hi int) {
		//remspan:shardok corpus: single-writer scenario audited by hand
		e.total = w
	})
}
