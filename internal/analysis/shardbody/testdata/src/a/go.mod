module a

go 1.21
