package scratchescape_test

import (
	"testing"

	"remspan/internal/analysis/analysistest"
	"remspan/internal/analysis/scratchescape"
)

func TestScratchEscape(t *testing.T) {
	analysistest.Run(t, scratchescape.Analyzer, "testdata/src/a")
}
