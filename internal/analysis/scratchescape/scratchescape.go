// Package scratchescape enforces the scratch-lifetime contract: slices
// backed by a *Scratch parameter are loans, valid only until the
// scratch's next reset or epoch bump, and must not outlive the call
// that borrowed them.
//
// A "scratch" is any named type whose name ends in Scratch (the repo's
// convention: domtree.Scratch, graph.BFSScratch, graph.BitScratch,
// graph.BallScratch, routing.RouteScratch, ...). In every function that
// takes a scratch pointer as a parameter, an expression is
// scratch-derived when it is a slice field of the scratch, a
// slice/index of one, a slice returned by a method call on the scratch,
// or a local assigned from any of those. The analyzer reports a
// scratch-derived slice that is
//
//   - returned to the caller (methods on the scratch type itself are
//     exempt: lending views is the scratch API's documented job);
//   - stored into a field of a non-scratch struct;
//   - sent on a channel;
//   - captured by a function literal launched with go;
//   - used after a Reset*/Begin call on the scratch it borrows from,
//     in the same statement list (the epoch that backed it is gone).
//
// A statement annotated //remspan:scratchok is exempt: a hand-audited
// lifetime handoff whose safety argument lives in that comment.
//
// The dataflow is intraprocedural and name-based by design: the point
// is a cheap vet-time gate over the ~250 scratch use sites, not an
// escape analysis. Cross-function loans (a callee storing its scratch
// argument) are each visible in the callee itself, which is also
// checked.
package scratchescape

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"remspan/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "scratchescape",
	Doc:  "reject scratch-backed slices escaping their borrowing function or surviving a reset",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := analysis.ScanDirectives(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if recvIsScratch(pass, fd) {
				continue // the scratch's own API lends views by contract
			}
			roots := scratchParams(pass, fd)
			if len(roots) == 0 {
				continue
			}
			c := &checker{pass: pass, dirs: dirs, roots: roots, derived: map[*types.Var]*types.Var{}}
			c.collectDerived(fd.Body)
			c.check(fd.Body)
		}
	}
	return nil, nil
}

// isScratchType reports whether t is (a pointer to) a named type whose
// name ends in "Scratch".
func isScratchType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return strings.HasSuffix(n.Obj().Name(), "Scratch")
	}
	return false
}

func recvIsScratch(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	return isScratchType(pass.TypesInfo.Types[fd.Recv.List[0].Type].Type)
}

// scratchParams returns the *Scratch-typed parameter objects of fd.
func scratchParams(pass *analysis.Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	roots := make(map[*types.Var]bool)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && isScratchType(v.Type()) {
				roots[v] = true
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}
	return roots
}

type checker struct {
	pass    *analysis.Pass
	dirs    *analysis.Directives
	roots   map[*types.Var]bool
	derived map[*types.Var]*types.Var // local slice var -> scratch param it borrows from
}

// collectDerived records locals assigned from scratch-derived slices,
// iterating to a fixpoint so chains (a := s.Buf; b := a[1:]) resolve.
func (c *checker) collectDerived(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v := c.objOf(id)
				if v == nil || c.derived[v] != nil {
					continue
				}
				if root := c.scratchDerived(as.Rhs[i]); root != nil {
					c.derived[v] = root
					changed = true
				}
			}
			return true
		})
	}
}

func (c *checker) objOf(id *ast.Ident) *types.Var {
	if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

func (c *checker) isSlice(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Slice)
	return ok
}

// scratchDerived returns the scratch parameter backing the slice
// expression e, or nil when e is not a scratch-derived slice.
func (c *checker) scratchDerived(e ast.Expr) *types.Var {
	if !c.isSlice(e) {
		return nil
	}
	return c.rootOf(e)
}

// rootOf walks selector/index/slice/call chains down to a scratch
// parameter (or a local recorded as borrowing from one).
func (c *checker) rootOf(e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v := c.objOf(e)
		if v == nil {
			return nil
		}
		if c.roots[v] {
			return v
		}
		return c.derived[v]
	case *ast.SelectorExpr:
		return c.rootOf(e.X)
	case *ast.IndexExpr:
		return c.rootOf(e.X)
	case *ast.SliceExpr:
		return c.rootOf(e.X)
	case *ast.CallExpr:
		// A method call on the scratch returning a slice is a loan
		// (e.g. s.UnionSorted()).
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			return c.rootOf(sel.X)
		}
	case *ast.StarExpr:
		return c.rootOf(e.X)
	}
	return nil
}

func (c *checker) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if c.exempt(n.Pos()) {
				return true
			}
			for _, r := range n.Results {
				if root := c.scratchDerived(r); root != nil {
					c.pass.Reportf(r.Pos(), "returning slice backed by scratch parameter %s: loan outlives the call", root.Name())
				}
			}
		case *ast.AssignStmt:
			if c.exempt(n.Pos()) || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				root := c.scratchDerived(n.Rhs[i])
				if root == nil {
					continue
				}
				// Writing back into the same scratch is the scratch
				// maintaining itself; anything else retains the loan.
				if tgt := c.rootOf(sel.X); tgt != nil {
					continue
				}
				if isScratchType(c.pass.TypesInfo.Types[sel.X].Type) {
					continue
				}
				c.pass.Reportf(n.Pos(), "storing slice backed by scratch parameter %s into non-scratch field %s", root.Name(), types.ExprString(lhs))
			}
		case *ast.SendStmt:
			if c.exempt(n.Pos()) {
				return true
			}
			if root := c.scratchDerived(n.Value); root != nil {
				c.pass.Reportf(n.Pos(), "sending slice backed by scratch parameter %s on a channel", root.Name())
			}
		case *ast.GoStmt:
			if c.exempt(n.Pos()) {
				return true
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				c.goCapture(n, lit)
			}
		case *ast.BlockStmt:
			c.useAfterReset(n.List)
		case *ast.CaseClause:
			c.useAfterReset(n.Body)
		}
		return true
	})
}

func (c *checker) exempt(pos token.Pos) bool {
	return c.dirs.At(pos, analysis.DirScratchOK)
}

// goCapture reports scratch-derived slice locals captured by a
// goroutine literal: the loan crosses into a concurrent lifetime.
func (c *checker) goCapture(g *ast.GoStmt, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if root := c.derived[v]; root != nil && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			c.pass.Reportf(id.Pos(), "goroutine captures slice %s backed by scratch parameter %s", v.Name(), root.Name())
		}
		return true
	})
}

// useAfterReset scans one statement list linearly: once a
// Reset*/Begin-style call on a scratch parameter passes, loans borrowed
// from that scratch earlier in the list are dead.
func (c *checker) useAfterReset(stmts []ast.Stmt) {
	live := make(map[*types.Var]*types.Var) // local -> root, assigned before the reset
	dead := make(map[*types.Var]bool)
	for _, st := range stmts {
		// A reset on root s kills every live loan from s.
		if reset := c.resetTarget(st); reset != nil {
			for v, root := range live {
				if root == reset {
					dead[v] = true
					delete(live, v)
				}
			}
			continue
		}
		if len(dead) > 0 && !c.exempt(st.Pos()) {
			ast.Inspect(st, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok && dead[v] {
					c.pass.Reportf(id.Pos(), "use of scratch-backed slice %s after the scratch was reset", v.Name())
					dead[v] = false // one report per loan
				}
				return true
			})
		}
		// Record loans assigned by this statement.
		ast.Inspect(st, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if v := c.objOf(id); v != nil {
						if root := c.scratchDerived(as.Rhs[i]); root != nil {
							live[v] = root
						} else {
							delete(live, v) // reassigned away from the loan
							delete(dead, v)
						}
					}
				}
			}
			return true
		})
	}
}

// resetTarget returns the scratch parameter a statement resets, if the
// statement is a bare call s.Reset*/s.Begin() on one.
func (c *checker) resetTarget(st ast.Stmt) *types.Var {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	name := sel.Sel.Name
	if !strings.HasPrefix(name, "Reset") && name != "Begin" {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	v := c.objOf(id)
	if v != nil && c.roots[v] {
		return v
	}
	return nil
}
