// Package a is the scratchescape golden corpus.
package a

// BFSScratch stands in for the repo's epoch-stamped scratch types: the
// Scratch name suffix is the analyzer's convention.
type BFSScratch struct {
	dist []int32
	tmp  []int32
}

func (s *BFSScratch) Reset() {}

// Rows is scratch API lending a view: methods on the scratch itself
// are exempt.
func (s *BFSScratch) Rows() []int32 { return s.dist }

type holder struct{ cache []int32 }

func returnsLoan(s *BFSScratch) []int32 {
	return s.dist // want "returning slice backed by scratch parameter s: loan outlives the call"
}

func returnsChain(s *BFSScratch) []int32 {
	d := s.dist[1:]
	return d // want "returning slice backed by scratch parameter s"
}

func returnsMethodLoan(s *BFSScratch) []int32 {
	return s.Rows() // want "returning slice backed by scratch parameter s"
}

func stores(s *BFSScratch, h *holder) {
	h.cache = s.dist // want "storing slice backed by scratch parameter s into non-scratch field h.cache"
}

func sends(s *BFSScratch, ch chan []int32) {
	ch <- s.dist[:2] // want "sending slice backed by scratch parameter s on a channel"
}

func launches(s *BFSScratch) {
	d := s.dist
	go func() {
		_ = d // want "goroutine captures slice d backed by scratch parameter s"
	}()
}

func useAfterReset(s *BFSScratch) int32 {
	d := s.dist
	x := d[0]
	s.Reset()
	return x + d[1] // want "use of scratch-backed slice d after the scratch was reset"
}

func okUses(s *BFSScratch, out []int32) []int32 {
	d := s.dist
	copy(out, d)   // copying out of the loan is fine
	s.dist = d[:0] // the scratch maintaining itself is fine
	s.Reset()
	d2 := s.dist // re-borrowing after the reset is fine
	_ = d2
	return out // caller-owned: fine
}

func exemptReturn(s *BFSScratch) []int32 {
	//remspan:scratchok audited handoff: caller documented to copy before next use
	return s.dist
}
