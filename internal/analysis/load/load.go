// Package load turns Go package patterns into type-checked
// analysis-ready packages using only the standard library plus the go
// command itself: `go list -e -export -deps -json` supplies package
// metadata and compiled export data (from the build cache, no network),
// go/parser and go/types do the rest. It is the package loader behind
// cmd/remspanlint's standalone mode and the analysistest golden runner;
// the `go vet -vettool` path has its own driver (vet hands the tool a
// ready-made config per package).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"remspan/internal/analysis"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// FactsOnly marks a non-stdlib dependency that was loaded from
	// source only so fact-exporting analyzers can summarize it before
	// its dependents are checked; drivers run those analyzers over it
	// with diagnostics discarded and never report on it directly.
	FactsOnly bool
}

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Packages loads and type-checks the packages matched by patterns,
// resolving relative patterns against dir. Dependencies are consumed as
// compiled export data; only the matched packages are parsed from
// source. Any list, parse, or type error fails the load: the linters
// require fully checked input.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// The loader must see the module at dir, not an enclosing
	// workspace: testdata corpora are self-contained modules inside the
	// repo tree.
	cmd.Env = append(os.Environ(), "GOWORK=off", "GO111MODULE=on")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var targets []*listPackage
	exports := make(map[string]string) // package path -> export data file
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		// Non-stdlib dependencies ride along as facts-only loads, in
		// the dependency-first order `go list -deps` already emits, so
		// interprocedural summaries exist before any dependent target
		// is analyzed.
		if !lp.Standard && len(lp.GoFiles) > 0 {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	exportImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var out []*Package
	for _, lp := range targets {
		pkg, err := check(fset, exportImporter, lp)
		if err != nil {
			return nil, err
		}
		pkg.FactsOnly = lp.DepOnly
		out = append(out, pkg)
	}
	return out, nil
}

// check parses and type-checks one listed package against the shared
// export-data importer.
func check(fset *token.FileSet, exp types.Importer, lp *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			if mapped, ok := lp.ImportMap[path]; ok {
				path = mapped
			}
			return exp.Import(path)
		}),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
