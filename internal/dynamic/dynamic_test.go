package dynamic

import (
	"math/rand"
	"testing"

	"remspan/internal/domtree"
	"remspan/internal/gen"
	"remspan/internal/graph"
	"remspan/internal/spanner"
	"remspan/internal/testutil"
)

func kgreedyBuilder(k int) TreeBuilder {
	return func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.KGreedyCSR(c, s, u, k)
	}
}

func misBuilder(r int) TreeBuilder {
	return func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.MISCSR(c, s, u, r)
	}
}

// fullSpanner recomputes the union-of-trees spanner from scratch.
func fullSpanner(g *graph.Graph, build TreeBuilder) *graph.EdgeSet {
	es := graph.NewEdgeSet(g.N())
	c := graph.NewCSR(g)
	s := domtree.NewScratch(g.N())
	for u := 0; u < g.N(); u++ {
		es.AddTree(build(c, s, u))
	}
	return es
}

func edgesEqual(a, b *graph.EdgeSet) bool {
	if a.Len() != b.Len() {
		return false
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

func TestIncrementalMatchesFullMPR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		g := gen.RandomTree(25, rng)
		for i := 0; i < 40; i++ {
			u, v := rng.Intn(25), rng.Intn(25)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		build := kgreedyBuilder(1)
		m := New(g, 1, build)
		for step := 0; step < 25; step++ {
			u, v := rng.Intn(25), rng.Intn(25)
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				m.AddEdge(u, v)
			} else if m.Graph().HasEdge(u, v) && m.Graph().Degree(u) > 1 && m.Graph().Degree(v) > 1 {
				m.RemoveEdge(u, v)
			}
			want := fullSpanner(m.Graph(), build)
			if !edgesEqual(m.Spanner(), want) {
				t.Fatalf("trial %d step %d: incremental spanner diverged", trial, step)
			}
		}
	}
}

func TestIncrementalMatchesFullMIS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.RandomTree(30, rng)
	for i := 0; i < 60; i++ {
		u, v := rng.Intn(30), rng.Intn(30)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	r := 3
	build := misBuilder(r)
	m := New(g, r, build) // β=1 → R = r
	for step := 0; step < 20; step++ {
		u, v := rng.Intn(30), rng.Intn(30)
		if u == v {
			continue
		}
		if rng.Intn(2) == 0 {
			m.AddEdge(u, v)
		} else {
			m.RemoveEdge(u, v)
		}
		want := fullSpanner(m.Graph(), build)
		if !edgesEqual(m.Spanner(), want) {
			t.Fatalf("step %d: incremental MIS spanner diverged", step)
		}
	}
}

func TestIncrementalSpannerStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.RandomTree(30, rng)
	for i := 0; i < 70; i++ {
		u, v := rng.Intn(30), rng.Intn(30)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	m := New(g, 1, kgreedyBuilder(1))
	for step := 0; step < 15; step++ {
		u, v := rng.Intn(30), rng.Intn(30)
		if u != v {
			m.AddEdge(u, v)
		}
		h := m.Spanner().Graph()
		if viol := spanner.Check(m.Graph(), h, spanner.NewStretch(1, 0)); viol != nil {
			t.Fatalf("step %d: %v", step, viol)
		}
	}
}

func TestIncrementalRebuildsFewTrees(t *testing.T) {
	// On a large sparse graph a single edge change must rebuild far
	// fewer than n trees.
	rng := rand.New(rand.NewSource(4))
	g := gen.Grid(20, 20) // 400 nodes, degree ≤ 4
	m := New(g, 1, kgreedyBuilder(1))
	base := m.TreesRebuilt()
	if base != 400 {
		t.Fatalf("initial build rebuilt %d trees", base)
	}
	for i := 0; i < 10; i++ {
		u := rng.Intn(399)
		m.AddEdge(u, u+1) // mostly no-ops (already edges) plus some diagonals
		m.AddEdge(rng.Intn(400), rng.Intn(400))
	}
	delta := m.TreesRebuilt() - base
	if delta == 0 {
		t.Fatal("no rebuilds recorded")
	}
	if delta > 400 {
		t.Fatalf("rebuilt %d trees for 20 local changes — locality lost", delta)
	}
}

func TestNoopChanges(t *testing.T) {
	g := gen.Ring(10)
	m := New(g, 1, kgreedyBuilder(1))
	base := m.TreesRebuilt()
	if m.AddEdge(0, 1) {
		t.Fatal("duplicate edge added")
	}
	if m.RemoveEdge(3, 7) {
		t.Fatal("phantom edge removed")
	}
	if m.TreesRebuilt() != base {
		t.Fatal("no-op changes triggered rebuilds")
	}
}

func TestFailVertexMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		g := gen.RandomTree(25, rng)
		for i := 0; i < 50; i++ {
			u, v := rng.Intn(25), rng.Intn(25)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		build := kgreedyBuilder(1)
		m := New(g, 1, build)
		x := rng.Intn(25)
		removed := m.FailVertex(x)
		if removed != g.Degree(x) {
			t.Fatalf("removed %d edges, vertex had %d", removed, g.Degree(x))
		}
		if m.Graph().Degree(x) != 0 {
			t.Fatal("vertex still has edges")
		}
		want := fullSpanner(m.Graph(), build)
		if !edgesEqual(m.Spanner(), want) {
			t.Fatalf("trial %d: post-failure spanner diverged", trial)
		}
		// Second failure of the same vertex is a no-op.
		base := m.TreesRebuilt()
		if m.FailVertex(x) != 0 || m.TreesRebuilt() != base {
			t.Fatal("re-failing an isolated vertex did work")
		}
	}
}

func TestBadRadiusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(gen.Ring(5), 0, kgreedyBuilder(1))
}

func greedyBuilder(r, beta int) TreeBuilder {
	return func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.GreedyCSR(c, s, u, r, beta)
	}
}

func kmisBuilder(k int) TreeBuilder {
	return func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.KMISCSR(c, s, u, k)
	}
}

// allBuilders is the canonical production builder/radius table shared
// with the churn benchmarks.
func allBuilders() []BuilderSpec { return Builders() }

// TestFailVertexDirtySweepEqualsUnion pins the single-sweep dirty set of
// FailVertex: B(x, R+1) must equal the per-incident-edge union
// ∪_{v∈N(x)} (B(x,R) ∪ B(v,R)) the maintainer used to compute with
// deg(x) separate sweeps.
func TestFailVertexDirtySweepEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		g := gen.RandomTree(40, rng)
		for i := 0; i < 30; i++ {
			u, v := rng.Intn(40), rng.Intn(40)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		x := rng.Intn(40)
		if g.Degree(x) == 0 {
			continue
		}
		for radius := 1; radius <= 3; radius++ {
			ball := func(src, d int) map[int32]struct{} {
				out := make(map[int32]struct{})
				for w, dw := range graph.BFS(g, src) {
					if dw != graph.Unreached && int(dw) <= d {
						out[int32(w)] = struct{}{}
					}
				}
				return out
			}
			union := ball(x, radius)
			for _, v := range g.Neighbors(x) {
				for w := range ball(int(v), radius) {
					union[w] = struct{}{}
				}
			}
			sweep := ball(x, radius+1)
			if len(sweep) != len(union) {
				t.Fatalf("trial %d R=%d: sweep %d vs union %d roots", trial, radius, len(sweep), len(union))
			}
			for w := range union {
				if _, ok := sweep[w]; !ok {
					t.Fatalf("trial %d R=%d: root %d in per-edge union, not in sweep", trial, radius, w)
				}
			}
		}
	}
}

// TestApplyBatchMatchesFull drives mixed batches through every builder
// and asserts the maintained spanner stays bit-identical to a full
// recomputation on the final graph.
func TestApplyBatchMatchesFull(t *testing.T) {
	for _, bb := range allBuilders() {
		t.Run(bb.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			g := gen.RandomTree(60, rng)
			for i := 0; i < 120; i++ {
				u, v := rng.Intn(60), rng.Intn(60)
				if u != v {
					g.AddEdge(u, v)
				}
			}
			m := New(g, bb.Radius, bb.Build)
			for round := 0; round < 6; round++ {
				batch := make([]Change, 0, 12)
				for i := 0; i < 12; i++ {
					u, v := rng.Intn(60), rng.Intn(60)
					switch {
					case i == 7 && round%2 == 0:
						batch = append(batch, Change{Kind: FailVertex, U: u})
					case u != v && m.Graph().HasEdge(u, v) && rng.Intn(2) == 0:
						batch = append(batch, Change{Kind: RemoveEdge, U: u, V: v})
					case u != v:
						batch = append(batch, Change{Kind: AddEdge, U: u, V: v})
					}
				}
				m.ApplyBatch(batch)
				want := fullSpanner(m.Graph(), bb.Build)
				if !edgesEqual(m.Spanner(), want) {
					t.Fatalf("round %d: batched spanner diverged from full recomputation", round)
				}
			}
		})
	}
}

// TestApplyBatchRebuildsUnionOnce: a batch of overlapping changes must
// rebuild each dirty root once, i.e. strictly fewer rebuilds than the
// same changes applied one at a time.
func TestApplyBatchRebuildsUnionOnce(t *testing.T) {
	g := gen.Grid(12, 12)
	mk := func() *Maintainer { return New(g, 1, kgreedyBuilder(1)) }
	changes := []Change{
		{Kind: AddEdge, U: 0, V: 25},
		{Kind: AddEdge, U: 1, V: 26},
		{Kind: RemoveEdge, U: 0, V: 25},
		{Kind: AddEdge, U: 2, V: 27},
	}
	batched := mk()
	base := batched.TreesRebuilt()
	if got := batched.ApplyBatch(changes); got != len(changes) {
		t.Fatalf("applied %d of %d", got, len(changes))
	}
	batchRebuilds := batched.TreesRebuilt() - base

	serial := mk()
	base = serial.TreesRebuilt()
	for _, ch := range changes {
		serial.ApplyBatch([]Change{ch})
	}
	serialRebuilds := serial.TreesRebuilt() - base

	if batchRebuilds >= serialRebuilds {
		t.Fatalf("batch rebuilt %d trees, serial %d — union did not dedupe", batchRebuilds, serialRebuilds)
	}
	if !edgesEqual(batched.Spanner(), serial.Spanner()) {
		t.Fatal("batched and serial spanners diverged")
	}
}

// TestChurnEquivalenceAllBuilders is the randomized churn-equivalence
// driver: mixed AddEdge/RemoveEdge/FailVertex/ApplyBatch against a
// from-scratch rebuild after every step, for all four tree builders,
// in both delta and snapshot-ablation modes.
func TestChurnEquivalenceAllBuilders(t *testing.T) {
	for _, bb := range allBuilders() {
		for _, snapshots := range []bool{false, true} {
			name := bb.Name + "/delta"
			if snapshots {
				name = bb.Name + "/snapshot"
			}
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(31))
				g := gen.RandomTree(36, rng)
				for i := 0; i < 60; i++ {
					u, v := rng.Intn(36), rng.Intn(36)
					if u != v {
						g.AddEdge(u, v)
					}
				}
				m := New(g, bb.Radius, bb.Build)
				m.SetSnapshotPerChange(snapshots)
				steps := 18
				if snapshots {
					steps = 8 // ablation arm: fewer, it pays O(n+m) per change
				}
				for step := 0; step < steps; step++ {
					u, v := rng.Intn(36), rng.Intn(36)
					switch rng.Intn(4) {
					case 0:
						if u != v {
							m.AddEdge(u, v)
						}
					case 1:
						if u != v {
							m.RemoveEdge(u, v)
						}
					case 2:
						m.FailVertex(u)
					default:
						batch := make([]Change, 0, 6)
						for i := 0; i < 6; i++ {
							a, b := rng.Intn(36), rng.Intn(36)
							if a == b {
								continue
							}
							kind := AddEdge
							if m.Graph().HasEdge(a, b) && rng.Intn(2) == 0 {
								kind = RemoveEdge
							}
							batch = append(batch, Change{Kind: kind, U: a, V: b})
						}
						m.ApplyBatch(batch)
					}
					want := fullSpanner(m.Graph(), bb.Build)
					if !edgesEqual(m.Spanner(), want) {
						t.Fatalf("step %d: spanner diverged from full recomputation", step)
					}
				}
			})
		}
	}
}

// TestMaintainerTraceDeterministic: the same change sequence must yield
// the same TreesRebuilt trace (dirty roots rebuild in sorted order).
func TestMaintainerTraceDeterministic(t *testing.T) {
	run := func() []int64 {
		g := gen.Grid(10, 10)
		m := New(g, 1, kgreedyBuilder(1))
		var trace []int64
		for i := 0; i < 8; i++ {
			m.AddEdge(i*7%100, (i*13+29)%100)
			trace = append(trace, m.TreesRebuilt())
		}
		m.ApplyBatch([]Change{{Kind: FailVertex, U: 55}, {Kind: AddEdge, U: 3, V: 87}})
		return append(trace, m.TreesRebuilt())
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d: %v vs %v", i, a, b)
		}
	}
}

// TestMaintainerSteadyStateAllocs guards the snapshot-free guarantee:
// toggling one edge on a warm maintainer must not allocate at all —
// in particular nothing proportional to n.
func TestMaintainerSteadyStateAllocs(t *testing.T) {
	g := gen.Grid(40, 50) // n=2000
	m := New(g, 1, kgreedyBuilder(1))
	m.AddEdge(0, 41) // warm the rows and buffers
	m.RemoveEdge(0, 41)
	m.AddEdge(0, 41)
	m.RemoveEdge(0, 41)
	testutil.PinAllocs(t, "steady-state edge toggle", 50, func() {
		m.AddEdge(0, 41)
		m.RemoveEdge(0, 41)
	})
}

// FuzzChurnEquivalence feeds arbitrary change scripts to the maintainer
// and cross-checks full recomputation for every builder family.
func FuzzChurnEquivalence(f *testing.F) {
	f.Add([]byte{0x01, 0x23, 0x45, 0x67, 0x89, 0xab})
	f.Add([]byte{0xff, 0x00, 0x10, 0x32, 0x54})
	f.Add([]byte("churn me"))
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 24 {
			script = script[:24]
		}
		const n = 18
		rng := rand.New(rand.NewSource(7))
		g := gen.RandomTree(n, rng)
		for i := 0; i < 20; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		for _, bb := range allBuilders() {
			m := New(g, bb.Radius, bb.Build)
			var batch []Change
			for i := 0; i+1 < len(script); i += 2 {
				a, b := int(script[i]), int(script[i+1])
				ch := Change{Kind: Kind(a % 3), U: b % n, V: (a / 3) % n}
				if a%4 == 3 {
					batch = append(batch, ch)
					continue
				}
				m.ApplyBatch([]Change{ch})
			}
			m.ApplyBatch(batch)
			want := fullSpanner(m.Graph(), bb.Build)
			if !edgesEqual(m.Spanner(), want) {
				t.Fatalf("%s: fuzzed churn diverged from full recomputation", bb.Name)
			}
		}
	})
}
