package dynamic

import (
	"math/rand"
	"testing"

	"remspan/internal/domtree"
	"remspan/internal/gen"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

func kgreedyBuilder(k int) TreeBuilder {
	return func(c *graph.CSR, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.KGreedyCSR(c, s, u, k)
	}
}

func misBuilder(r int) TreeBuilder {
	return func(c *graph.CSR, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.MISCSR(c, s, u, r)
	}
}

// fullSpanner recomputes the union-of-trees spanner from scratch.
func fullSpanner(g *graph.Graph, build TreeBuilder) *graph.EdgeSet {
	es := graph.NewEdgeSet(g.N())
	c := graph.NewCSR(g)
	s := domtree.NewScratch(g.N())
	for u := 0; u < g.N(); u++ {
		es.AddTree(build(c, s, u))
	}
	return es
}

func edgesEqual(a, b *graph.EdgeSet) bool {
	if a.Len() != b.Len() {
		return false
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

func TestIncrementalMatchesFullMPR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		g := gen.RandomTree(25, rng)
		for i := 0; i < 40; i++ {
			u, v := rng.Intn(25), rng.Intn(25)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		build := kgreedyBuilder(1)
		m := New(g, 1, build)
		for step := 0; step < 25; step++ {
			u, v := rng.Intn(25), rng.Intn(25)
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				m.AddEdge(u, v)
			} else if m.Graph().HasEdge(u, v) && m.Graph().Degree(u) > 1 && m.Graph().Degree(v) > 1 {
				m.RemoveEdge(u, v)
			}
			want := fullSpanner(m.Graph(), build)
			if !edgesEqual(m.Spanner(), want) {
				t.Fatalf("trial %d step %d: incremental spanner diverged", trial, step)
			}
		}
	}
}

func TestIncrementalMatchesFullMIS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.RandomTree(30, rng)
	for i := 0; i < 60; i++ {
		u, v := rng.Intn(30), rng.Intn(30)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	r := 3
	build := misBuilder(r)
	m := New(g, r, build) // β=1 → R = r
	for step := 0; step < 20; step++ {
		u, v := rng.Intn(30), rng.Intn(30)
		if u == v {
			continue
		}
		if rng.Intn(2) == 0 {
			m.AddEdge(u, v)
		} else {
			m.RemoveEdge(u, v)
		}
		want := fullSpanner(m.Graph(), build)
		if !edgesEqual(m.Spanner(), want) {
			t.Fatalf("step %d: incremental MIS spanner diverged", step)
		}
	}
}

func TestIncrementalSpannerStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.RandomTree(30, rng)
	for i := 0; i < 70; i++ {
		u, v := rng.Intn(30), rng.Intn(30)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	m := New(g, 1, kgreedyBuilder(1))
	for step := 0; step < 15; step++ {
		u, v := rng.Intn(30), rng.Intn(30)
		if u != v {
			m.AddEdge(u, v)
		}
		h := m.Spanner().Graph()
		if viol := spanner.Check(m.Graph(), h, spanner.NewStretch(1, 0)); viol != nil {
			t.Fatalf("step %d: %v", step, viol)
		}
	}
}

func TestIncrementalRebuildsFewTrees(t *testing.T) {
	// On a large sparse graph a single edge change must rebuild far
	// fewer than n trees.
	rng := rand.New(rand.NewSource(4))
	g := gen.Grid(20, 20) // 400 nodes, degree ≤ 4
	m := New(g, 1, kgreedyBuilder(1))
	base := m.TreesRebuilt()
	if base != 400 {
		t.Fatalf("initial build rebuilt %d trees", base)
	}
	for i := 0; i < 10; i++ {
		u := rng.Intn(399)
		m.AddEdge(u, u+1) // mostly no-ops (already edges) plus some diagonals
		m.AddEdge(rng.Intn(400), rng.Intn(400))
	}
	delta := m.TreesRebuilt() - base
	if delta == 0 {
		t.Fatal("no rebuilds recorded")
	}
	if delta > 400 {
		t.Fatalf("rebuilt %d trees for 20 local changes — locality lost", delta)
	}
}

func TestNoopChanges(t *testing.T) {
	g := gen.Ring(10)
	m := New(g, 1, kgreedyBuilder(1))
	base := m.TreesRebuilt()
	if m.AddEdge(0, 1) {
		t.Fatal("duplicate edge added")
	}
	if m.RemoveEdge(3, 7) {
		t.Fatal("phantom edge removed")
	}
	if m.TreesRebuilt() != base {
		t.Fatal("no-op changes triggered rebuilds")
	}
}

func TestFailVertexMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		g := gen.RandomTree(25, rng)
		for i := 0; i < 50; i++ {
			u, v := rng.Intn(25), rng.Intn(25)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		build := kgreedyBuilder(1)
		m := New(g, 1, build)
		x := rng.Intn(25)
		removed := m.FailVertex(x)
		if removed != g.Degree(x) {
			t.Fatalf("removed %d edges, vertex had %d", removed, g.Degree(x))
		}
		if m.Graph().Degree(x) != 0 {
			t.Fatal("vertex still has edges")
		}
		want := fullSpanner(m.Graph(), build)
		if !edgesEqual(m.Spanner(), want) {
			t.Fatalf("trial %d: post-failure spanner diverged", trial)
		}
		// Second failure of the same vertex is a no-op.
		base := m.TreesRebuilt()
		if m.FailVertex(x) != 0 || m.TreesRebuilt() != base {
			t.Fatal("re-failing an isolated vertex did work")
		}
	}
}

func TestBadRadiusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(gen.Ring(5), 0, kgreedyBuilder(1))
}
