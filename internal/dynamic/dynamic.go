// Package dynamic maintains a remote-spanner incrementally under
// topology changes. The paper's constructions are local — node u's
// dominating tree depends only on topology within a constant radius R —
// so an edge or vertex change can only invalidate the trees of roots
// within distance R+1 of the change. Rebuilding just those trees yields
// exactly the spanner a full recomputation would produce, at a fraction
// of the work (the incremental-vs-full ablation is benchmarked in
// bench_test.go).
//
// Tree rebuilds run on the same CSR + scratch fast path as the batch
// constructions: the maintainer keeps an immutable CSR snapshot of the
// current graph (refreshed once per applied change) and stores each
// root's tree as a compact (child, parent) edge list. The refresh puts
// an O(n+m) floor under each applied change — a deliberate trade: it
// keeps one builder code path, and rebuild work (|dirty| bounded
// traversals) dominates the snapshot copy on the churn workloads
// benchmarked; an incremental CSR patch could remove the floor if
// localized churn on huge graphs ever becomes the bottleneck.
package dynamic

import (
	"remspan/internal/domtree"
	"remspan/internal/graph"
)

// TreeBuilder builds the dominating tree for a root on a CSR snapshot
// (e.g. a domtree.KGreedyCSR or domtree.MISCSR closure). The returned
// tree may be owned by the scratch; the maintainer copies the edges out
// before the next call.
type TreeBuilder func(c *graph.CSR, scratch *domtree.Scratch, u int) *graph.Tree

// Maintainer keeps the union-of-trees spanner of a mutable graph.
type Maintainer struct {
	g       *graph.Graph
	csr     *graph.CSR // snapshot of g after the last applied change
	build   TreeBuilder
	radius  int          // locality radius R of the tree construction
	trees   [][][2]int32 // per-root tree edges as (child, parent) pairs
	scratch *domtree.Scratch
	dirty   *graph.BFSScratch // bounded sweeps for dirty-set computation
	rebuilt int64             // cumulative trees rebuilt (for the ablation metric)
}

// New computes the initial spanner over a clone of g. radius is the
// construction's locality radius R = r−1+β (1 for Algorithm 4, 2 for
// Algorithm 5 with β=1, r for Algorithm 2).
func New(g *graph.Graph, radius int, build TreeBuilder) *Maintainer {
	if radius < 1 {
		panic("dynamic: radius must be >= 1")
	}
	m := &Maintainer{
		g:       g.Clone(),
		build:   build,
		radius:  radius,
		trees:   make([][][2]int32, g.N()),
		scratch: domtree.NewScratch(g.N()),
		dirty:   graph.NewBFSScratch(g.N()),
	}
	m.csr = graph.NewCSR(m.g)
	for u := 0; u < g.N(); u++ {
		m.rebuildTree(u)
	}
	return m
}

// rebuildTree reconstructs root u's tree on the current snapshot and
// stores a compact copy of its edges.
func (m *Maintainer) rebuildTree(u int) {
	t := m.build(m.csr, m.scratch, u)
	m.trees[u] = t.Edges()
	m.rebuilt++
}

// Graph returns the maintained graph (do not mutate directly — use
// AddEdge/RemoveEdge).
func (m *Maintainer) Graph() *graph.Graph { return m.g }

// Spanner returns the current union-of-trees spanner.
func (m *Maintainer) Spanner() *graph.EdgeSet {
	es := graph.NewEdgeSet(m.g.N())
	for _, edges := range m.trees {
		for _, e := range edges {
			es.Add(int(e[0]), int(e[1]))
		}
	}
	return es
}

// TreesRebuilt returns the cumulative number of tree constructions
// (including the initial build).
func (m *Maintainer) TreesRebuilt() int64 { return m.rebuilt }

// AddEdge inserts {u, v} and repairs affected trees. Reports whether
// the edge was new.
func (m *Maintainer) AddEdge(u, v int) bool {
	// Dirty set must be computed against the post-change graph for
	// insertions (new vertices become reachable through the edge).
	if !m.g.AddEdge(u, v) {
		return false
	}
	m.csr = graph.NewCSR(m.g)
	for _, root := range m.dirtySet(u, v) {
		m.rebuildTree(int(root))
	}
	return true
}

// RemoveEdge deletes {u, v} and repairs affected trees. Reports whether
// the edge existed.
func (m *Maintainer) RemoveEdge(u, v int) bool {
	// Dirty set against the pre-change graph for deletions (roots that
	// could reach the edge before it vanished).
	dirty := m.dirtySet(u, v)
	if !m.g.RemoveEdge(u, v) {
		return false
	}
	m.csr = graph.NewCSR(m.g)
	for _, root := range dirty {
		m.rebuildTree(int(root))
	}
	return true
}

// FailVertex removes every edge incident to x (a node crash) and
// repairs affected trees, returning the number of edges removed. x
// stays in the vertex set as an isolated node, matching the paper's
// fault model for multipath routing.
func (m *Maintainer) FailVertex(x int) int {
	nbrs := append([]int32(nil), m.g.Neighbors(x)...)
	// One dirty sweep before any removal: every root that could see any
	// incident edge.
	dirtyAll := make(map[int32]struct{})
	for _, v := range nbrs {
		for _, w := range m.dirtySet(x, int(v)) {
			dirtyAll[w] = struct{}{}
		}
	}
	for _, v := range nbrs {
		m.g.RemoveEdge(x, int(v))
	}
	if len(nbrs) > 0 {
		m.csr = graph.NewCSR(m.g)
	}
	for w := range dirtyAll {
		m.rebuildTree(int(w))
	}
	return len(nbrs)
}

// dirtySet returns every root whose ball B(root, R+1) touches u or v —
// a superset of the trees whose construction inputs changed. A tree for
// root w reads topology within distance R of w: adjacency lists of
// vertices in B(w, R). Edge {u,v} appears in those inputs iff
// d(w, u) ≤ R or d(w, v) ≤ R.
func (m *Maintainer) dirtySet(u, v int) []int32 {
	_, _, reachedU := m.dirty.Bounded(m.g, u, m.radius)
	set := make(map[int32]struct{}, len(reachedU))
	for _, w := range reachedU {
		set[w] = struct{}{}
	}
	_, _, reachedV := m.dirty.Bounded(m.g, v, m.radius)
	for _, w := range reachedV {
		set[w] = struct{}{}
	}
	out := make([]int32, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	return out
}
