// Package dynamic maintains a remote-spanner incrementally under
// topology changes. The paper's constructions are local — node u's
// dominating tree depends only on topology within a constant radius R —
// so an edge or vertex change can only invalidate the trees of roots
// within distance R+1 of the change. Rebuilding just those trees yields
// exactly the spanner a full recomputation would produce, at a fraction
// of the work (the incremental-vs-full ablation is benchmarked in
// bench_test.go).
//
// Tree rebuilds run on the same builder code path as the batch
// constructions, via the graph.View read interface: the maintainer
// keeps a graph.CSRDelta — a CSR snapshot patched in place as edges
// change — so a change costs O(deg) row edits plus |dirty| bounded
// rebuilds, with no O(n+m) re-snapshot anywhere on the path. Per-change
// work is therefore a function of the locality radius and the local
// degree, not of the graph, and on large graphs with localized churn
// the maintainer sustains throughput independent of n (measured by the
// BENCH_churn.json suite; the old snapshot-per-change behavior is kept
// behind SetSnapshotPerChange as the ablation baseline).
//
// Batches: ApplyBatch applies a whole slice of changes, unions their
// dirty sets, and rebuilds each dirty root exactly once, fanning the
// rebuilds across a worker pool with one domtree.Scratch per worker
// (the spanner.buildParallel pattern). Rebuilding the union against the
// final graph is exact: a root outside every per-change dirty set has,
// by the locality argument, an R-ball whose adjacency never changed at
// any point of the batch, so its stored tree is already the tree a full
// recomputation would build.
package dynamic

import (
	"remspan/internal/domtree"
	"remspan/internal/graph"
	"remspan/internal/sched"
)

// TreeBuilder builds the dominating tree for a root on a graph.View
// (e.g. a domtree.KGreedyCSR or domtree.MISCSR closure). The returned
// tree may be owned by the scratch; the maintainer copies the edges out
// before the next call. Batch repairs invoke the builder from several
// goroutines at once (each with its own scratch), so the closure must
// not touch shared mutable state beyond the view and scratch it is
// handed.
type TreeBuilder func(c graph.View, scratch *domtree.Scratch, u int) *graph.Tree

// BuilderSpec couples a production tree builder with the locality
// radius R = r−1+β a Maintainer must be given for it.
type BuilderSpec struct {
	Name   string
	Radius int
	Build  TreeBuilder
}

// Builders returns the canonical table of the four production tree
// builders at their benchmark parameterizations (Exact k=1, Algorithm 5
// k=2, and the two r=3 low-stretch families). The churn benchmarks
// (cmd/benchjson, bench_test.go) and the equivalence tests consume this
// one table so builder and radius can never fall out of sync.
func Builders() []BuilderSpec {
	return []BuilderSpec{
		{"kgreedy1", 1, func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
			return domtree.KGreedyCSR(c, s, u, 1)
		}},
		{"kmis2", 2, func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
			return domtree.KMISCSR(c, s, u, 2)
		}},
		{"mis3", 3, func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
			return domtree.MISCSR(c, s, u, 3)
		}},
		{"greedy3", 3, func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
			return domtree.GreedyCSR(c, s, u, 3, 1)
		}},
	}
}

// Kind discriminates the change types ApplyBatch accepts.
type Kind uint8

// Change kinds.
const (
	// AddEdge inserts edge {U, V}.
	AddEdge Kind = iota
	// RemoveEdge deletes edge {U, V}.
	RemoveEdge
	// FailVertex removes every edge incident to U (V is ignored).
	FailVertex
)

// Change is one topology change of a churn batch.
type Change struct {
	Kind Kind
	U, V int
}

// Maintainer keeps the union-of-trees spanner of a mutable graph.
type Maintainer struct {
	g      *graph.Graph    // mutable mirror (dirty-set sweeps, API reads)
	delta  *graph.CSRDelta // patched snapshot the builders read
	view   graph.View      // delta, or a fresh CSR in snapshot-ablation mode
	build  TreeBuilder
	radius int          // locality radius R of the tree construction
	trees  [][][2]int32 // per-root tree edges as (child, parent) pairs

	scratch   *domtree.Scratch   // serial rebuilds
	workers   []*domtree.Scratch // pooled per-worker scratches for batches
	dirty     *graph.BFSScratch  // bounded sweeps + dirty-union accumulator
	rebuilt   int64              // cumulative trees rebuilt (ablation metric)
	snapshots bool               // ablation: re-snapshot per applied change

	pool        sched.Pool          // shard scheduler for batch repairs
	roots       []int32             // per-run dirty roots the shard body reads
	rebuildBody func(w, lo, hi int) // prebound shard body
	forceWidth  int                 // test hook: >0 overrides the worker count
}

// New computes the initial spanner over a clone of g. radius is the
// construction's locality radius R = r−1+β (1 for Algorithm 4, 2 for
// Algorithm 5 with β=1, r for Algorithm 2).
func New(g *graph.Graph, radius int, build TreeBuilder) *Maintainer {
	if radius < 1 {
		panic("dynamic: radius must be >= 1")
	}
	m := &Maintainer{
		g:       g.Clone(),
		build:   build,
		radius:  radius,
		trees:   make([][][2]int32, g.N()),
		scratch: domtree.NewScratch(g.N()),
		dirty:   graph.NewBFSScratch(g.N()),
	}
	m.delta = graph.NewCSRDelta(graph.NewCSR(m.g))
	m.view = m.delta
	for u := 0; u < g.N(); u++ {
		m.rebuildTree(u)
	}
	return m
}

// SetSnapshotPerChange toggles the pre-delta behavior of rebuilding a
// full CSR snapshot after every applied change. It exists solely as the
// baseline arm of the churn ablation benchmarks; the result is
// identical either way, only the per-change cost regains its O(n+m)
// floor.
func (m *Maintainer) SetSnapshotPerChange(on bool) {
	m.snapshots = on
	if on {
		m.view = graph.NewCSR(m.g)
	} else {
		m.view = m.delta
	}
}

// refresh re-snapshots the view in snapshot-ablation mode (no-op on the
// delta path, where the view was already patched in place).
func (m *Maintainer) refresh() {
	if m.snapshots {
		m.view = graph.NewCSR(m.g) //remspan:coldpath snapshot-per-change ablation arm; the production delta path is a no-op here
	}
}

// storeTree replaces root u's stored edge list with a compact copy of
// t's edges, reusing the previous copy's capacity.
func (m *Maintainer) storeTree(u int, t *graph.Tree) {
	buf := m.trees[u][:0]
	for _, v := range t.Nodes() {
		if p := t.Parent(int(v)); p >= 0 {
			buf = append(buf, [2]int32{v, int32(p)})
		}
	}
	m.trees[u] = buf
}

// rebuildTree reconstructs root u's tree on the current view and stores
// its edges.
func (m *Maintainer) rebuildTree(u int) {
	m.storeTree(u, m.build(m.view, m.scratch, u))
	m.rebuilt++
}

// Graph returns the maintained graph (do not mutate directly — use
// AddEdge/RemoveEdge/FailVertex/ApplyBatch).
func (m *Maintainer) Graph() *graph.Graph { return m.g }

// Spanner returns the current union-of-trees spanner.
func (m *Maintainer) Spanner() *graph.EdgeSet {
	es := graph.NewEdgeSet(m.g.N())
	for _, edges := range m.trees {
		for _, e := range edges {
			es.Add(int(e[0]), int(e[1]))
		}
	}
	return es
}

// TreeOf returns root u's stored dominating-tree edges as (child,
// parent) pairs. The slice is shared with the maintainer and valid
// until the next applied change — it is the per-root ground truth the
// distributed simulator's live runs are pinned against.
func (m *Maintainer) TreeOf(u int) [][2]int32 { return m.trees[u] }

// View returns the graph.View the maintainer's builders read (the
// patched CSRDelta, or a fresh CSR in snapshot-ablation mode). Shared
// state: valid for reads between applied changes, never across them.
func (m *Maintainer) View() graph.View { return m.view }

// Radius returns the construction's locality radius R.
func (m *Maintainer) Radius() int { return m.radius }

// DirtyRoots returns the sorted dirty-root union of the most recent
// applied change or batch — exactly the roots whose trees were
// rebuilt. The slice is scratch-owned and valid until the next applied
// change. Downstream incremental consumers (the routing.Store's
// dirty-owner table rebuild) key their own repairs off this set.
func (m *Maintainer) DirtyRoots() []int32 { return m.dirty.UnionSorted() }

// TreesRebuilt returns the cumulative number of tree constructions
// (including the initial build). The dirty-root set is accumulated in
// sorted order, so the count trace — and every stored tree — is
// reproducible run to run; only the execution interleaving of the
// parallel batch repair varies (roots are independent, so it cannot
// affect results).
func (m *Maintainer) TreesRebuilt() int64 { return m.rebuilt }

// applyOne applies one change to the graph and the delta, accumulating
// the roots it dirties into the scratch union.
func (m *Maintainer) applyOne(ch Change) bool {
	return ApplyChange(m.g, m.delta, m.dirty, m.radius, ch)
}

// ApplyChange applies one topology change to the mutable mirror g and
// its patched delta in lockstep, accumulating every root whose
// radius-R tree input the change touches into dirty's union
// accumulator (call dirty.ResetUnion to start a batch). Reports
// whether the change had any effect. Dirty sweeps run on the state the
// locality argument needs: post-change for insertions (new vertices
// become reachable through the edge), pre-change for deletions (roots
// that could reach the edge before it vanished).
//
// It is exported so other views of the same maintenance problem — the
// distributed protocol simulator's live re-advertisement driver — share
// the exact dirty-ball rule the Maintainer's equivalence proofs cover,
// rather than approximating it.
//
//remspan:hotpath
func ApplyChange(g *graph.Graph, delta *graph.CSRDelta, dirty *graph.BFSScratch, radius int, ch Change) bool {
	switch ch.Kind {
	case AddEdge:
		if !g.AddEdge(ch.U, ch.V) {
			return false
		}
		delta.AddEdge(ch.U, ch.V)
		dirty.UnionBounded(g, ch.U, radius)
		dirty.UnionBounded(g, ch.V, radius)
		return true
	case RemoveEdge:
		if !g.HasEdge(ch.U, ch.V) {
			return false
		}
		dirty.UnionBounded(g, ch.U, radius)
		dirty.UnionBounded(g, ch.V, radius)
		g.RemoveEdge(ch.U, ch.V)
		delta.RemoveEdge(ch.U, ch.V)
		return true
	case FailVertex:
		x := ch.U
		nbrs := g.Neighbors(x)
		if len(nbrs) == 0 {
			return false
		}
		// One radius-(R+1) sweep from x replaces the per-incident-edge
		// union ∪_{v∈N(x)} (B(x,R) ∪ B(v,R)): every v is adjacent to x,
		// so B(v,R) ⊆ B(x,R+1); conversely any w at distance R+1 from x
		// reaches x through some neighbor v with d(w,v) = R, so the two
		// sets are equal (pinned by TestFailVertexDirtySweepEqualsUnion).
		dirty.UnionBounded(g, x, radius+1)
		for len(nbrs) > 0 {
			v := int(nbrs[len(nbrs)-1])
			g.RemoveEdge(x, v)
			delta.RemoveEdge(x, v)
			nbrs = g.Neighbors(x)
		}
		return true
	default:
		panic("dynamic: unknown change kind")
	}
}

// rebuildShard rebuilds the dirty roots indexed [lo, hi) on worker w's
// pooled scratch. Each root writes only its own trees slot, so the
// stealing schedule cannot affect the stored trees.
//
//remspan:hotpath
func (m *Maintainer) rebuildShard(w, lo, hi int) {
	scratch := m.workers[w]
	for i := lo; i < hi; i++ {
		u := int(m.roots[i])
		m.storeTree(u, m.build(m.view, scratch, u))
	}
}

// rebuildDirty rebuilds every root in the accumulated dirty union —
// serially in ascending id order for small unions, or fanned out over
// the shard scheduler (per-root results are independent and land in
// per-root slots, so the stored trees are identical at every width).
func (m *Maintainer) rebuildDirty() {
	roots := m.dirty.UnionSorted()
	const parallelThreshold = 32
	width := sched.Workers(len(roots))
	if m.forceWidth > 0 {
		width = m.forceWidth
	} else if len(roots) < parallelThreshold {
		width = 1
	}
	if width <= 1 {
		for _, u := range roots {
			m.rebuildTree(int(u))
		}
		return
	}
	for len(m.workers) < width {
		m.workers = append(m.workers, domtree.NewScratch(m.g.N())) //remspan:coldpath worker scratch warm-up, pool reused across batches
	}
	if m.rebuildBody == nil {
		m.rebuildBody = m.rebuildShard //remspan:coldpath one-time method-value binding, cached across batches
	}
	m.roots = roots
	// Tree rebuilds are heavy items (a bounded BFS each), so shards
	// shrink well below sched's vertex-grained floor.
	span := len(roots) / (width * 8)
	if span < 1 {
		span = 1
	}
	m.pool.RunSpan(len(roots), width, span, m.rebuildBody)
	m.roots = nil
	m.rebuilt += int64(len(roots))
}

// ApplyBatch applies the changes in order, unions their dirty sets, and
// rebuilds each dirty root exactly once against the final graph, fanned
// out across a worker pool. It returns the number of changes that had
// an effect. For large or overlapping batches this does strictly less
// work than applying the changes one by one (shared dirty balls rebuild
// once instead of once per change).
func (m *Maintainer) ApplyBatch(changes []Change) int {
	m.dirty.ResetUnion()
	applied := 0
	for _, ch := range changes {
		if m.applyOne(ch) {
			applied++
		}
	}
	if applied > 0 {
		m.refresh()
		m.rebuildDirty()
	}
	return applied
}

// AddEdge inserts {u, v} and repairs affected trees. Reports whether
// the edge was new.
func (m *Maintainer) AddEdge(u, v int) bool {
	return m.applySingle(Change{Kind: AddEdge, U: u, V: v})
}

// RemoveEdge deletes {u, v} and repairs affected trees. Reports whether
// the edge existed.
func (m *Maintainer) RemoveEdge(u, v int) bool {
	return m.applySingle(Change{Kind: RemoveEdge, U: u, V: v})
}

// FailVertex removes every edge incident to x (a node crash) and
// repairs affected trees, returning the number of edges removed. x
// stays in the vertex set as an isolated node, matching the paper's
// fault model for multipath routing.
func (m *Maintainer) FailVertex(x int) int {
	deg := m.g.Degree(x)
	if !m.applySingle(Change{Kind: FailVertex, U: x}) {
		return 0
	}
	return deg
}

func (m *Maintainer) applySingle(ch Change) bool {
	m.dirty.ResetUnion()
	if !m.applyOne(ch) {
		return false
	}
	m.refresh()
	m.rebuildDirty()
	return true
}
