// Package dynamic maintains a remote-spanner incrementally under
// topology changes. The paper's constructions are local — node u's
// dominating tree depends only on topology within a constant radius R —
// so an edge or vertex change can only invalidate the trees of roots
// within distance R+1 of the change. Rebuilding just those trees yields
// exactly the spanner a full recomputation would produce, at a fraction
// of the work (the incremental-vs-full ablation is benchmarked in
// bench_test.go).
package dynamic

import (
	"remspan/internal/graph"
)

// TreeBuilder builds the dominating tree for a root (e.g. a
// domtree.KGreedy or domtree.MIS closure).
type TreeBuilder func(g *graph.Graph, scratch *graph.BFSScratch, u int) *graph.Tree

// Maintainer keeps the union-of-trees spanner of a mutable graph.
type Maintainer struct {
	g       *graph.Graph
	build   TreeBuilder
	radius  int // locality radius R of the tree construction
	trees   []*graph.Tree
	scratch *graph.BFSScratch
	rebuilt int64 // cumulative trees rebuilt (for the ablation metric)
}

// New computes the initial spanner over a clone of g. radius is the
// construction's locality radius R = r−1+β (1 for Algorithm 4, 2 for
// Algorithm 5 with β=1, r for Algorithm 2).
func New(g *graph.Graph, radius int, build TreeBuilder) *Maintainer {
	if radius < 1 {
		panic("dynamic: radius must be >= 1")
	}
	m := &Maintainer{
		g:       g.Clone(),
		build:   build,
		radius:  radius,
		trees:   make([]*graph.Tree, g.N()),
		scratch: graph.NewBFSScratch(g.N()),
	}
	for u := 0; u < g.N(); u++ {
		m.trees[u] = build(m.g, m.scratch, u)
		m.rebuilt++
	}
	return m
}

// Graph returns the maintained graph (do not mutate directly — use
// AddEdge/RemoveEdge).
func (m *Maintainer) Graph() *graph.Graph { return m.g }

// Spanner returns the current union-of-trees spanner.
func (m *Maintainer) Spanner() *graph.EdgeSet {
	es := graph.NewEdgeSet(m.g.N())
	for _, t := range m.trees {
		es.AddTree(t)
	}
	return es
}

// TreesRebuilt returns the cumulative number of tree constructions
// (including the initial build).
func (m *Maintainer) TreesRebuilt() int64 { return m.rebuilt }

// AddEdge inserts {u, v} and repairs affected trees. Reports whether
// the edge was new.
func (m *Maintainer) AddEdge(u, v int) bool {
	// Dirty set must be computed against the post-change graph for
	// insertions (new vertices become reachable through the edge).
	if !m.g.AddEdge(u, v) {
		return false
	}
	m.rebuildAround(u, v)
	return true
}

// RemoveEdge deletes {u, v} and repairs affected trees. Reports whether
// the edge existed.
func (m *Maintainer) RemoveEdge(u, v int) bool {
	// Dirty set against the pre-change graph for deletions (roots that
	// could reach the edge before it vanished).
	dirty := m.dirtySet(u, v)
	if !m.g.RemoveEdge(u, v) {
		return false
	}
	for _, root := range dirty {
		m.trees[root] = m.build(m.g, m.scratch, int(root))
		m.rebuilt++
	}
	return true
}

func (m *Maintainer) rebuildAround(u, v int) {
	for _, root := range m.dirtySet(u, v) {
		m.trees[root] = m.build(m.g, m.scratch, int(root))
		m.rebuilt++
	}
}

// FailVertex removes every edge incident to x (a node crash) and
// repairs affected trees, returning the number of edges removed. x
// stays in the vertex set as an isolated node, matching the paper's
// fault model for multipath routing.
func (m *Maintainer) FailVertex(x int) int {
	nbrs := append([]int32(nil), m.g.Neighbors(x)...)
	// One dirty sweep before any removal: every root that could see any
	// incident edge.
	dirtyAll := make(map[int32]struct{})
	for _, v := range nbrs {
		for _, w := range m.dirtySet(x, int(v)) {
			dirtyAll[w] = struct{}{}
		}
	}
	for _, v := range nbrs {
		m.g.RemoveEdge(x, int(v))
	}
	for w := range dirtyAll {
		m.trees[w] = m.build(m.g, m.scratch, int(w))
		m.rebuilt++
	}
	return len(nbrs)
}

// dirtySet returns every root whose ball B(root, R+1) touches u or v —
// a superset of the trees whose construction inputs changed. A tree for
// root w reads topology within distance R of w: adjacency lists of
// vertices in B(w, R). Edge {u,v} appears in those inputs iff
// d(w, u) ≤ R or d(w, v) ≤ R.
func (m *Maintainer) dirtySet(u, v int) []int32 {
	distU, _, reachedU := m.scratch.Bounded(m.g, u, m.radius)
	set := make(map[int32]struct{}, len(reachedU))
	for _, w := range reachedU {
		set[w] = struct{}{}
	}
	_ = distU
	distV, _, reachedV := m.scratch.Bounded(m.g, v, m.radius)
	_ = distV
	for _, w := range reachedV {
		set[w] = struct{}{}
	}
	out := make([]int32, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	return out
}
