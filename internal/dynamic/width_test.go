package dynamic

import (
	"math/rand"
	"testing"

	"remspan/internal/gen"
)

// TestRebuildDirtyWidthDeterminism pins the churn rebuild fan-out:
// identical change streams applied at forced worker widths 1, 2 and 7
// leave bit-identical spanners and per-root trees. The forceWidth hook
// drives the parallel path even below the small-union serial threshold,
// so the shard scheduler — not batch sizing — is what's under test.
func TestRebuildDirtyWidthDeterminism(t *testing.T) {
	for _, bb := range Builders() {
		rng := rand.New(rand.NewSource(61))
		g := gen.RandomTree(120, rng)
		for i := 0; i < 260; i++ {
			u, v := rng.Intn(120), rng.Intn(120)
			if u != v {
				g.AddEdge(u, v)
			}
		}

		widths := []int{1, 2, 7}
		ms := make([]*Maintainer, len(widths))
		for i, w := range widths {
			ms[i] = New(g.Clone(), bb.Radius, bb.Build)
			ms[i].forceWidth = w
		}

		crng := rand.New(rand.NewSource(62))
		for round := 0; round < 6; round++ {
			batch := make([]Change, 0, 24)
			for len(batch) < 24 {
				u, v := crng.Intn(120), crng.Intn(120)
				if u == v {
					continue
				}
				kind := AddEdge
				if ms[0].Graph().HasEdge(u, v) && crng.Intn(2) == 0 {
					kind = RemoveEdge
				}
				batch = append(batch, Change{Kind: kind, U: u, V: v})
			}
			for _, m := range ms {
				m.ApplyBatch(batch)
			}
			ref := ms[0]
			for i, m := range ms[1:] {
				if !edgesEqual(ref.Spanner(), m.Spanner()) {
					t.Fatalf("%s round %d: spanner at width %d differs from width 1",
						bb.Name, round, widths[i+1])
				}
				for u := 0; u < g.N(); u++ {
					a, b := ref.TreeOf(u), m.TreeOf(u)
					if len(a) != len(b) {
						t.Fatalf("%s round %d: tree of %d differs at width %d",
							bb.Name, round, u, widths[i+1])
					}
					for j := range a {
						if a[j] != b[j] {
							t.Fatalf("%s round %d: tree of %d differs at width %d",
								bb.Name, round, u, widths[i+1])
						}
					}
				}
			}
		}
	}
}
