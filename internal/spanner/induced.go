package spanner

import (
	"remspan/internal/graph"
)

// The necessity direction of the paper's characterizations: any
// (1+ε, 1−2ε)-remote-spanner must *induce* (⌈1/ε⌉+1, 1)-dominating
// trees (Prop. 1), and any k-connecting (1,0)-remote-spanner must
// induce k-connecting (2,0)-dominating trees (Prop. 5). These
// extractors build the induced tree from H or report that none exists —
// so tests can verify the characterizations as true equivalences, not
// just as soundness of our constructions.

// InducedDominatingTree extracts from h an (r, 1)-dominating tree for u
// whose edges all lie in h, or reports ok=false if h does not contain
// one (then h cannot be a (1+ε', 1−2ε')-remote-spanner with
// ε' = 1/(r−1), by Prop. 1).
//
// Construction: by the Prop. 1 argument, for every v with
// 2 ≤ d_G(u,v) = r' ≤ r there must be x ∈ N_G(v) with d_h(u, x) ≤ r';
// the union of h-BFS paths to those dominators is the tree.
func InducedDominatingTree(g, h *graph.Graph, u, r int) (*graph.Tree, bool) {
	parent, distH := graph.BFSTree(h, u)
	distG := graph.BFS(g, u)
	t := graph.NewTree(g.N(), u)
	for v := 0; v < g.N(); v++ {
		rp := int(distG[v])
		if rp < 2 || rp > r {
			continue
		}
		// Find the dominator of v: a G-neighbor within h-distance r'.
		// (Smallest id for determinism.)
		found := int32(-1)
		for _, x := range g.Neighbors(v) {
			if distH[x] != graph.Unreached && int(distH[x]) <= rp {
				found = x
				break
			}
		}
		if found == -1 {
			return nil, false
		}
		t.AddPath(parent, int(found))
	}
	return t, true
}

// InducedKConnTree extracts from h a k-connecting (2, 0)-dominating
// tree for u (a star of h-edges at u), or ok=false if h lacks one —
// then h is not a k-connecting (1,0)-remote-spanner (Prop. 5).
func InducedKConnTree(g, h *graph.Graph, u, k int) (*graph.Tree, bool) {
	t := graph.NewTree(g.N(), u)
	inTree := func(w int32) bool { return t.Contains(int(w)) }
	addRelay := func(w int32) {
		if !inTree(w) {
			t.Add(int(w), u)
		}
	}
	// Distance-2 vertices of u in G.
	seen := make(map[int32]bool)
	for _, w := range g.Neighbors(u) {
		for _, v := range g.Neighbors(int(w)) {
			if v == int32(u) || g.HasEdge(u, int(v)) || seen[v] {
				continue
			}
			seen[v] = true
			common := g.CommonNeighbors(u, int(v))
			// Relays available in h.
			var avail []int32
			for _, x := range common {
				if h.HasEdge(u, int(x)) {
					avail = append(avail, x)
				}
			}
			need := k
			if len(common) < need {
				need = len(common)
			}
			if len(avail) >= need {
				for i := 0; i < need; i++ {
					addRelay(avail[i])
				}
				continue
			}
			// Escape clause requires ALL common neighbors as h-edges —
			// impossible here since avail ⊊ common.
			return nil, false
		}
	}
	return t, true
}

// CheckInduced verifies the necessity direction of Prop. 1 over all
// roots: returns the first root for which h fails to induce an
// (r, 1)-dominating tree, or -1.
func CheckInduced(g, h *graph.Graph, r int) int {
	for u := 0; u < g.N(); u++ {
		if _, ok := InducedDominatingTree(g, h, u, r); !ok {
			return u
		}
	}
	return -1
}

// CheckInducedKConn verifies the necessity direction of Prop. 5 over
// all roots: returns the first root for which h fails to induce a
// k-connecting (2,0)-dominating tree, or -1.
func CheckInducedKConn(g, h *graph.Graph, k int) int {
	for u := 0; u < g.N(); u++ {
		if _, ok := InducedKConnTree(g, h, u, k); !ok {
			return u
		}
	}
	return -1
}
