package spanner

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"remspan/internal/graph"
	"remspan/internal/sched"
)

// Word-parallel verification: all-pairs remote-spanner checking on the
// 64-source bit-packed BFS engine (graph.BitScratch). One batch covers
// 64 sources u, and per batch two sweeps suffice:
//
//   - a plain batched BFS over G for the d_G side, and
//   - one batched sweep over H alone for all 64 augmented views H_u,
//     justified by the star decomposition below.
//
// Star-decomposition identity. H_u is H plus the star {u}×N_G(u), so
// for every v ≠ u:
//
//	d_{H_u}(u, v) = 1                            if v ∈ N_G(u),
//	d_{H_u}(u, v) = 1 + min_{w ∈ N_G(u)} d_H(w, v)   otherwise.
//
// Proof sketch. (≤) u–w is an H_u-edge for each w ∈ N_G(u), and any
// H-path from w to v is also an H_u-path, giving a u→v walk of length
// 1 + d_H(w, v). (≥) Take a shortest H_u-path P from u to v and let w
// be the successor of u's final occurrence on P (w ∈ N_{H_u}(u) ⊆
// N_G(u), using H ⊆ G so every H-edge at u joins u to a G-neighbor).
// The suffix of P from w to v uses no edge incident to u — any such
// edge would revisit u after w, contradicting the choice of w on a
// shortest path — hence every suffix edge is an H-edge, so
// |P| ≥ 1 + d_H(w, v). Consequently seeding bit u at every w ∈ N_G(u)
// with distance 1 and sweeping over H alone computes d_{H_u}(u, ·)
// exactly: no per-source graph H_u is ever materialized or traversed.
// (The sweep never expands from u itself; that loses nothing because
// N_H(u) ⊆ N_G(u) is already seeded.) Pinned against
// ViewScratch.BFSCSR across generator families by
// TestStarDecompositionIdentity.
//
// Sources are partitioned by graph.BatchOrder into mutually close
// balls, not by vertex id: a bit-packed sweep costs O(edges × distinct
// wavefront levels), so 64 scattered sources on a high-diameter graph
// (the UDG workloads) would forfeit the whole 64× — clustered sources
// keep the wavefronts coincident.
//
// Check and oracle validation run the two sweeps in deadline lockstep
// (ViewJudge) and never materialize a distance: a pair (u, v) first
// visited by the G-sweep at level d satisfies the stretch iff bit u is
// in v's H-visited mask once the H-sweep has completed level thr[d] =
// max d_H allowed at d_G = d. The H-sweep is advanced exactly to each
// pending deadline — thresholds are monotone in d (α ≥ 0), so
// deadlines arrive in FIFO order — and the judge is a single
// AND-NOT per delivery. Working set: O(n) mask stripes, no O(64·n)
// rows. MeasureProfile, which needs the d_H values themselves, keeps
// the row-recording sweep.
//
// Determinism contract: the witness is the globally lexicographically
// smallest violating pair (min u, then min v) — identical to the
// scalar reference and independent of batch composition and worker
// schedule. Violations only ever shrink the best pair, so once one is
// found, every batch whose smallest source id cannot beat it is
// skipped (the batched form of the scalar path's early-stop flag).
// Profile accumulation is order-independent by construction (profAcc).

// SweepViewBatch runs the batched star-decomposed sweep for the
// augmented views H_u over the given sources (1 ≤ len ≤ 64, bit i ↔
// sources[i]): each source is seeded at distance 0, its G-neighbors at
// distance 1, and the batch expands over H alone. Results are read
// through s.Visited/Row/Dist until the next batch.
//
//remspan:hotpath
func SweepViewBatch(s *graph.BitScratch, cg, ch *graph.CSR, sources []int32) {
	seedViewBatch(s, cg, sources)
	s.Sweep(ch, 2)
}

//remspan:hotpath
func seedViewBatch(s *graph.BitScratch, cg *graph.CSR, sources []int32) {
	s.Begin()
	for i, uu := range sources {
		u := int(uu)
		s.Seed(uint(i), u, 0)
		for _, w := range cg.Neighbors(u) {
			s.SeedFrontier(uint(i), int(w), 1)
		}
	}
}

// StretchThresholds precomputes, for every possible d_G value d, the
// largest d_H that still satisfies the stretch: Holds(d, dh) ⟺
// dh·αD·βD ≤ αN·βD·d + βN·αD ⟺ dh ≤ ⌊(αN·βD·d + βN·αD)/(αD·βD)⌋
// (denominators positive). The lockstep judge then tests one visited
// bit per pair instead of three 64-bit multiplies; the table is
// monotone non-decreasing whenever α ≥ 0, which ViewJudge.Run
// requires.
func StretchThresholds(st Stretch, n int) []int32 {
	den := st.AlphaDen * st.BetaDen
	thr := make([]int32, n+1)
	for d := 0; d <= n; d++ {
		t := floorDiv(st.AlphaNum*st.BetaDen*int64(d)+st.BetaNum*st.AlphaDen, den)
		switch {
		case t > math.MaxInt32:
			t = math.MaxInt32
		case t < -1:
			t = -1 // distances are non-negative; any finite d_H violates
		}
		thr[d] = int32(t)
	}
	return thr
}

// floorDiv returns ⌊a/b⌋ for b > 0 (Go's / truncates toward zero).
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}

// batchSpan sizes shards for batch-grained fan-outs: one item is a
// 64-source sweep (orders of magnitude heavier than one vertex), so
// shards shrink to single batches rather than sched's vertex-grained
// floor, keeping stealable slack even when batches are few.
func batchSpan(batches, width int) int {
	span := batches / (width * 8)
	if span < 1 {
		span = 1
	}
	return span
}

// delivery is one buffered G-sweep first-visit event awaiting its
// stretch deadline.
type delivery struct {
	v    int32
	dg   int32
	bits uint64
}

// ViewJudge is the reusable deadline-lockstep judge for one batch of
// augmented views: it interleaves the G-sweep and the star-decomposed
// H-sweep over masks-only scratches and reports every (source, vertex)
// pair whose H_u arrival misses its stretch deadline. It holds O(n)
// state and is not safe for concurrent use; pools give each worker its
// own.
type ViewJudge struct {
	gbs, hbs *graph.BitScratch
	buf      []delivery
	visitG   func(v int32, newBits uint64, level int32)
}

// NewViewJudge returns a judge for graphs with up to n vertices.
func NewViewJudge(n int) *ViewJudge {
	j := &ViewJudge{
		gbs: graph.NewBitScratchMasks(n),
		hbs: graph.NewBitScratchMasks(n),
		buf: make([]delivery, 0, n),
	}
	// Bound once so a Run is allocation-free when the buffer is warm.
	j.visitG = func(v int32, newBits uint64, dg int32) {
		if dg >= 2 {
			j.buf = append(j.buf, delivery{v: v, dg: dg, bits: newBits})
		}
	}
	return j
}

// Run judges one batch: onMiss(bit, v, dg) is called for every pair
// (sources[bit], v) with d_G = dg ≥ 2 whose d_{H_u} exceeds thr[dg]
// (unreachable included), in G-level order. thr must be monotone
// non-decreasing (StretchThresholds of any stretch with α ≥ 0).
func (j *ViewJudge) Run(cg, ch *graph.CSR, sources []int32, thr []int32, onMiss func(bit int, v int32, dg int32)) {
	gbs, hbs := j.gbs, j.hbs
	seedViewBatch(hbs, cg, sources)
	gbs.Begin()
	for i, u := range sources {
		gbs.SeedFrontier(uint(i), int(u), 0)
	}
	j.buf = j.buf[:0]
	gbs.SetVisit(j.visitG)
	// H has completed level 1 (the star seeds); each pending G-delivery
	// at level d is judged once H completes level max(thr[d], 1) —
	// exactly then, never later, so the visited mask test is precise.
	// Deadlines are monotone in d, so the buffer drains in FIFO order.
	hLevel, gLevel := int32(1), int32(0)
	hAlive, gAlive := true, true
	head := 0
	for gAlive || head < len(j.buf) {
		if gAlive {
			gLevel++
			gAlive = gbs.Step(cg, gLevel)
		}
		for head < len(j.buf) {
			dl := thr[j.buf[head].dg]
			if dl < 1 {
				dl = 1
			}
			// hLevel ≤ dl on entry (deadlines are FIFO-monotone), so this
			// lands exactly on the deadline — overshooting would let
			// late H arrivals masquerade as on-time.
			for hAlive && hLevel < dl {
				hLevel++
				hAlive = hbs.Step(ch, hLevel)
			}
			e := j.buf[head]
			if miss := e.bits &^ hbs.Visited(int(e.v)); miss != 0 {
				for b := miss; b != 0; b &= b - 1 {
					onMiss(bits.TrailingZeros64(b), e.v, e.dg)
				}
			}
			head++
		}
	}
	gbs.SetVisit(nil)
}

// batchMinSource returns the smallest source id in each batch — the
// bound the violation skip filter compares against.
func batchMinSource(order, starts []int32) []int32 {
	minU := make([]int32, len(starts)-1)
	for b := range minU {
		m := order[starts[b]]
		for _, u := range order[starts[b]+1 : starts[b+1]] {
			if u < m {
				m = u
			}
		}
		minU[b] = m
	}
	return minU
}

// checkScan reduces one batch's deadline misses to the
// lexicographically smallest violating pair.
type checkScan struct {
	found uint64
	minV  [64]int32 // smallest violating v per source bit
	minDG [64]int32 // d_G at that v
}

func (cs *checkScan) miss(bit int, v int32, dg int32) {
	b := uint64(1) << uint(bit)
	if cs.found&b == 0 || v < cs.minV[bit] {
		cs.found |= b
		cs.minV[bit] = v
		cs.minDG[bit] = dg
	}
}

// resolve reduces the batch's accumulated misses to the
// lexicographically smallest violating (u, v, d_G). Sources within a
// ball are not id-ordered, so every violating bit is considered.
func (cs *checkScan) resolve(sources []int32) (u, v int, dg int32) {
	bestI := -1
	for b := cs.found; b != 0; b &= b - 1 {
		i := bits.TrailingZeros64(b)
		if bestI < 0 || sources[i] < sources[bestI] {
			bestI = i
		}
	}
	return int(sources[bestI]), int(cs.minV[bestI]), cs.minDG[bestI]
}

// judgeWorker is one pooled worker slot of the lockstep-judge
// fan-out: the O(n) judge and its miss scan survive across calls,
// regrown only when the vertex count does.
type judgeWorker struct {
	n     int
	judge *ViewJudge
	cs    checkScan
	miss  func(bit int, v int32, dg int32) // bound once, reused across batches
}

// judgeEnv is the reusable environment of JudgeViews' shard fan-out
// over ball-clustered batches, mirroring buildEnv: one shared
// instance, transient fallback when busy.
type judgeEnv struct {
	mu      sync.Mutex
	pool    sched.Pool
	order   *graph.BatchOrderScratch
	workers []*judgeWorker

	// Per-run job, set under mu.
	cg, ch           *graph.CSR
	srcOrder, starts []int32
	minU, thr        []int32
	// Smallest violating source seen so far: batches whose smallest
	// source exceeds it cannot improve the lexicographic minimum and
	// are skipped (see the determinism contract above).
	bestU  atomic.Int64
	resMu  sync.Mutex
	bu, bv int
	bdg    int32

	body func(w, lo, hi int)
}

func newJudgeEnv() *judgeEnv {
	e := &judgeEnv{order: graph.NewBatchOrderScratch()}
	e.body = e.shard
	return e
}

var sharedJudgeEnv = newJudgeEnv()

//remspan:hotpath
func (e *judgeEnv) shard(w, lo, hi int) {
	jw := e.workers[w]
	for b := lo; b < hi; b++ {
		if int64(e.minU[b]) > e.bestU.Load() {
			continue
		}
		sources := e.srcOrder[e.starts[b]:e.starts[b+1]]
		jw.cs.found = 0
		jw.judge.Run(e.cg, e.ch, sources, e.thr, jw.miss)
		if jw.cs.found == 0 {
			continue
		}
		cu, cv, cdg := jw.cs.resolve(sources)
		for {
			cur := e.bestU.Load()
			if int64(cu) >= cur || e.bestU.CompareAndSwap(cur, int64(cu)) {
				break
			}
		}
		e.resMu.Lock()
		if e.bu < 0 || cu < e.bu || (cu == e.bu && cv < e.bv) {
			e.bu, e.bv, e.bdg = cu, cv, cdg
		}
		e.resMu.Unlock()
	}
}

func (e *judgeEnv) acquire(width, n int) {
	for len(e.workers) < width {
		e.workers = append(e.workers, &judgeWorker{})
	}
	for _, jw := range e.workers[:width] {
		if jw.judge == nil || jw.n < n {
			jw.judge = NewViewJudge(n)
			jw.n = n
		}
		if jw.miss == nil {
			jw.miss = jw.cs.miss
		}
	}
}

// JudgeViews runs the deadline-lockstep judge over every
// ball-clustered 64-source batch on the shard scheduler and returns
// the lexicographically smallest pair violating the stretch in the
// augmented views (ok=false when the guarantee holds everywhere).
// Preconditions: ch ⊆ cg (no underestimates to catch — the judge only
// tests the upper bound) and a stretch with positive denominators and
// α ≥ 0 (monotone thresholds); callers with untrusted inputs must
// guard and fall back to a scalar pass. The shared engine behind both
// spanner.Check and oracle.Validate.
func JudgeViews(cg, ch *graph.CSR, st Stretch) (u, v int, dg int32, ok bool) {
	return judgeViewsWidth(cg, ch, st, 0)
}

// judgeViewsWidth is JudgeViews with an explicit worker count
// (width ≤ 0 means sized to the batch count) — the determinism tests'
// entry point.
func judgeViewsWidth(cg, ch *graph.CSR, st Stretch, width int) (u, v int, dg int32, ok bool) {
	env := sharedJudgeEnv
	if !env.mu.TryLock() {
		env = newJudgeEnv()
		env.mu.Lock()
	}
	defer env.mu.Unlock()
	n := cg.N()
	env.srcOrder, env.starts = env.order.Order(cg)
	nb := len(env.starts) - 1
	if width <= 0 {
		width = sched.Workers(nb)
	}
	env.acquire(width, n)
	env.cg, env.ch = cg, ch
	env.minU = batchMinSource(env.srcOrder, env.starts)
	env.thr = StretchThresholds(st, n)
	env.bestU.Store(int64(n))
	env.bu, env.bv, env.bdg = -1, -1, 0
	env.pool.RunSpan(nb, width, batchSpan(nb, width), env.body)
	u, v, dg = env.bu, env.bv, env.bdg
	env.cg, env.ch, env.srcOrder, env.starts, env.minU, env.thr = nil, nil, nil, nil, nil, nil
	return u, v, dg, u >= 0
}

// checkBatchedCSR is Check on the word-parallel engine, resolving the
// witness's d_{H_u} with one scalar traversal (the lockstep judge
// never materializes distances).
func checkBatchedCSR(cg, ch *graph.CSR, st Stretch) *Violation {
	u, v, dg, ok := JudgeViews(cg, ch, st)
	if !ok {
		return nil
	}
	vs := NewViewScratch(cg.N())
	return &Violation{U: u, V: v, DG: int(dg), DH: dhField(vs.BFSCSR(cg, ch, u)[v]), K: 1}
}

// measureWorker is one pooled worker slot of the profile fan-out:
// both bit-sweep scratches, the order-independent accumulator, and a
// visit closure bound to them, all retained across calls.
type measureWorker struct {
	n     int
	gbs   *graph.BitScratch
	hbs   *graph.BitScratch
	acc   *profAcc
	visit func(v int32, newBits uint64, dg int32)
}

// measureEnv is the reusable environment of measureBatchedCSR's shard
// fan-out, mirroring buildEnv: one shared instance, transient
// fallback when busy.
type measureEnv struct {
	mu      sync.Mutex
	pool    sched.Pool
	order   *graph.BatchOrderScratch
	workers []*measureWorker

	// Per-run job, set under mu.
	cg, ch           *graph.CSR
	srcOrder, starts []int32

	body func(w, lo, hi int)
}

func newMeasureEnv() *measureEnv {
	e := &measureEnv{order: graph.NewBatchOrderScratch()}
	e.body = e.shard
	return e
}

var sharedMeasureEnv = newMeasureEnv()

//remspan:hotpath
func (e *measureEnv) shard(w, lo, hi int) {
	mw := e.workers[w]
	for b := lo; b < hi; b++ {
		sources := e.srcOrder[e.starts[b]:e.starts[b+1]]
		SweepViewBatch(mw.hbs, e.cg, e.ch, sources)
		mw.gbs.SweepSourcesVisit(e.cg, sources, mw.visit)
	}
}

func (e *measureEnv) acquire(width, n int) {
	for len(e.workers) < width {
		e.workers = append(e.workers, &measureWorker{acc: &profAcc{}})
	}
	for _, mw := range e.workers[:width] {
		if mw.gbs == nil || mw.n < n {
			mw.gbs = graph.NewBitScratchMasks(n)
			mw.hbs = graph.NewBitScratch(n)
			mw.n = n
			hbs, acc := mw.hbs, mw.acc
			mw.visit = func(v int32, newBits uint64, dg int32) {
				if dg < 2 {
					return
				}
				hm := hbs.Visited(int(v))
				hrow := hbs.Row(int(v))
				for bm := newBits & hm; bm != 0; bm &= bm - 1 {
					acc.add(dg, hrow[bits.TrailingZeros64(bm)])
				}
			}
		}
		mw.acc.reset(n)
	}
}

// measureBatchedCSR is MeasureProfile on the word-parallel engine. The
// H-sweep records distance rows (the profile needs the values); the
// G-sweep streams first visits into a per-worker profAcc. Accumulation
// is order-independent and the merge runs in ascending worker order,
// so the result is bit-identical to the scalar reference at every
// width.
func measureBatchedCSR(cg, ch *graph.CSR) Profile {
	return measureBatchedCSRWidth(cg, ch, 0)
}

// measureBatchedCSRWidth is measureBatchedCSR with an explicit worker
// count (width ≤ 0 means sized to the batch count) — the determinism
// tests' entry point.
func measureBatchedCSRWidth(cg, ch *graph.CSR, width int) Profile {
	env := sharedMeasureEnv
	if !env.mu.TryLock() {
		env = newMeasureEnv()
		env.mu.Lock()
	}
	defer env.mu.Unlock()
	n := cg.N()
	env.srcOrder, env.starts = env.order.Order(cg)
	nb := len(env.starts) - 1
	if width <= 0 {
		width = sched.Workers(nb)
	}
	env.acquire(width, n)
	env.cg, env.ch = cg, ch
	env.pool.RunSpan(nb, width, batchSpan(nb, width), env.body)
	env.cg, env.ch, env.srcOrder, env.starts = nil, nil, nil, nil
	total := env.workers[0].acc
	for _, mw := range env.workers[1:width] {
		total.merge(mw.acc)
	}
	return total.profile()
}
