package spanner

import (
	"math/rand"
	"testing"
	"testing/quick"

	"remspan/internal/domtree"
	"remspan/internal/gen"
	"remspan/internal/graph"
)

// quickGraph builds a deterministic connected random graph for
// testing/quick properties.
func quickGraph(seed int64, n, extra int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := gen.RandomTree(n, rng)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Fixture: on a cycle, every (2,0)-dominating tree from u must reach
// the two distance-2 vertices through both neighbors, so the exact
// remote-spanner of C_n is the whole cycle.
func TestExactOnCycleKeepsEverything(t *testing.T) {
	for _, n := range []int{5, 8, 13} {
		g := gen.Ring(n)
		res := Exact(g)
		if res.Edges() != n {
			t.Fatalf("C%d: exact spanner has %d edges, want %d", n, res.Edges(), n)
		}
	}
}

// Fixture: on a complete graph there are no distance-2 pairs, so the
// exact remote-spanner is empty — every node sees everyone directly.
func TestExactOnCompleteGraphIsEmpty(t *testing.T) {
	g := gen.Complete(12)
	res := Exact(g)
	if res.Edges() != 0 {
		t.Fatalf("K12: exact spanner has %d edges, want 0", res.Edges())
	}
	if v := Check(g, res.Graph(), NewStretch(1, 0)); v != nil {
		t.Fatalf("empty spanner of K12 rejected: %v", v)
	}
}

// Fixture: a star has no distance-2 pairs among leaves?? No — leaves
// are pairwise at distance 2 through the hub; each leaf must select the
// hub, and the hub selects nothing.
func TestExactOnStar(t *testing.T) {
	g := gen.Star(9)
	res := Exact(g)
	// Every leaf's tree is {leaf→hub}; union is the whole star.
	if res.Edges() != 8 {
		t.Fatalf("star: %d edges, want 8", res.Edges())
	}
}

// Fixture: Petersen graph (diameter 2, girth 5): adjacent vertices share
// no common neighbor, so every MPR set is the full neighborhood and the
// exact remote-spanner keeps all 15 edges.
func TestExactOnPetersen(t *testing.T) {
	g := gen.Petersen()
	res := Exact(g)
	if res.Edges() != 15 {
		t.Fatalf("Petersen: %d edges, want 15", res.Edges())
	}
}

// Fixture: hypercube Q4 — vertex-transitive, every 2-neighborhood is
// identical; spanner must be nonempty, symmetric in size, and valid.
func TestExactOnHypercube(t *testing.T) {
	g := gen.Hypercube(4)
	res := Exact(g)
	if v := Check(g, res.Graph(), NewStretch(1, 0)); v != nil {
		t.Fatal(v)
	}
	if res.Edges() == 0 || res.Edges() > g.M() {
		t.Fatalf("Q4 spanner edges = %d of %d", res.Edges(), g.M())
	}
	for u, sz := range res.TreeEdges {
		if sz != res.TreeEdges[0] {
			t.Fatalf("vertex-transitive graph gave uneven tree sizes: %d at %d", sz, u)
		}
	}
}

// Property: for random graphs, the low-stretch guarantee holds for the
// whole ε ladder of MIS-tree spanners.
func TestQuickLowStretchLadder(t *testing.T) {
	f := func(seed int64) bool {
		g := quickGraph(seed, 24, 46)
		for _, r := range []int{2, 3, 4} {
			res := buildParallel(g, func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
				return domtree.MISCSR(c, s, u, r)
			})
			if Check(g, res.H.Graph(), LowStretchOf(r)) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: a remote-spanner stays valid under edge additions (more
// edges can only shorten distances in H_u).
func TestQuickSupersetStaysValid(t *testing.T) {
	f := func(seed int64) bool {
		g := quickGraph(seed, 20, 40)
		res := Exact(g)
		h := res.Graph()
		// Add a few arbitrary graph edges to h.
		added := 0
		g.EachEdge(func(u, v int) {
			if added < 5 && !h.HasEdge(u, v) {
				h.AddEdge(u, v)
				added++
			}
		})
		return Check(g, h, NewStretch(1, 0)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
