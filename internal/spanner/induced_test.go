package spanner

import (
	"math/rand"
	"testing"

	"remspan/internal/domtree"
	"remspan/internal/graph"
)

// Prop. 1, necessity: every (1+ε', 1−2ε')-remote-spanner induces
// (r, 1)-dominating trees. Our constructions are remote-spanners, so
// extraction must succeed at every root, and the extracted trees must
// pass the dominating-tree checker.
func TestProp1NecessityOnConstructions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(15+rng.Intn(25), 45, rng)
		for _, r := range []int{2, 3} {
			eps := 1.0 / float64(r-1)
			res := LowStretch(g, eps)
			h := res.Graph()
			if bad := CheckInduced(g, h, r); bad != -1 {
				t.Fatalf("trial %d r=%d: no induced tree at root %d", trial, r, bad)
			}
			for u := 0; u < g.N(); u += 5 {
				tree, ok := InducedDominatingTree(g, h, u, r)
				if !ok {
					t.Fatalf("extraction failed at %d", u)
				}
				if bad, err := domtree.IsDominatingTree(g, tree, r, 1); err != nil || bad != -1 {
					t.Fatalf("extracted tree invalid: bad=%d err=%v", bad, err)
				}
				// Every tree edge must come from h.
				for _, e := range tree.Edges() {
					if !h.HasEdge(int(e[0]), int(e[1])) {
						t.Fatalf("extracted edge {%d,%d} not in h", e[0], e[1])
					}
				}
			}
		}
	}
}

// Prop. 5, necessity: every k-connecting (1,0)-remote-spanner induces
// k-connecting (2,0)-dominating trees.
func TestProp5NecessityOnConstructions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(12+rng.Intn(20), 40, rng)
		for k := 1; k <= 3; k++ {
			h := KConnecting(g, k).Graph()
			if bad := CheckInducedKConn(g, h, k); bad != -1 {
				t.Fatalf("trial %d k=%d: no induced k-conn tree at root %d", trial, k, bad)
			}
			for u := 0; u < g.N(); u += 4 {
				tree, ok := InducedKConnTree(g, h, u, k)
				if !ok {
					t.Fatalf("extraction failed at %d", u)
				}
				if bad, err := domtree.IsKConnDominatingTree(g, tree, k, 0); err != nil || bad != -1 {
					t.Fatalf("extracted tree invalid: bad=%d err=%v", bad, err)
				}
			}
		}
	}
}

// The contrapositive: break the spanner property and extraction must
// fail somewhere.
func TestNecessityDetectsBrokenSpanner(t *testing.T) {
	// Path 0-1-2-3-4: the exact spanner must let 0 reach distance-2
	// vertex 2 via 1. An h missing edge {1,2} both breaks (1,0) and
	// kills the induced tree at root 0.
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	h := g.Clone()
	h.RemoveEdge(1, 2)
	if Check(g, h, NewStretch(1, 0)) == nil {
		t.Fatal("broken spanner passed the stretch check")
	}
	if bad := CheckInducedKConn(g, h, 1); bad == -1 {
		t.Fatal("necessity checker missed the broken root")
	}
	if bad := CheckInduced(g, h, 2); bad == -1 {
		t.Fatal("Prop. 1 necessity checker missed the broken root")
	}
}

// Equivalence smoke test: sufficiency (checker passes ⟹ stretch holds)
// and necessity (stretch holds ⟹ extraction works) on the same
// instances — the characterization is a genuine iff on our samples.
func TestCharacterizationIsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 12; trial++ {
		g := randomConnected(12+rng.Intn(15), 30, rng)
		// Random sub-graph of g as candidate H: keep each edge with
		// probability 0.8 — sometimes a spanner, sometimes not.
		h := graph.New(g.N())
		g.EachEdge(func(u, v int) {
			if rng.Float64() < 0.8 {
				h.AddEdge(u, v)
			}
		})
		isSpanner := Check(g, h, NewStretch(1, 0)) == nil
		induces := CheckInducedKConn(g, h, 1) == -1
		if isSpanner != induces {
			t.Fatalf("trial %d: stretch says %v, induced trees say %v", trial, isSpanner, induces)
		}
	}
}
