package spanner

import "remspan/internal/graph"

// The augmented view H_u of the paper: the spanner H plus all edges
// between u and its neighbors in G. Every distance guarantee of a
// remote-spanner is stated in H_u, never in H alone.

// View materializes H_u as a Graph. h must be a subgraph of g on the
// same vertex set.
func View(g, h *graph.Graph, u int) *graph.Graph {
	hu := h.Clone()
	for _, v := range g.Neighbors(u) {
		hu.AddEdge(u, int(v))
	}
	return hu
}

// ViewBFS returns BFS distances from u in H_u without materializing it:
// u's incident edges come from g, all other adjacency from h.
func ViewBFS(g, h *graph.Graph, u int) []int32 {
	n := g.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = graph.Unreached
	}
	dist[u] = 0
	queue := make([]int32, 0, n)
	for _, v := range g.Neighbors(u) {
		if dist[v] == graph.Unreached {
			dist[v] = 1
			queue = append(queue, v)
		}
	}
	// Edges of h incident to u also exist in H_u but only lead back to
	// u (distance 0), so plain h-adjacency BFS from the seeded frontier
	// is exact.
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, v := range h.Neighbors(int(x)) {
			if dist[v] == graph.Unreached {
				dist[v] = dist[x] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ViewBFSScratch is ViewBFS with reusable buffers for all-pairs
// verification sweeps.
type ViewScratch struct {
	dist  []int32
	queue []int32
}

// NewViewScratch returns scratch space for n-vertex views.
func NewViewScratch(n int) *ViewScratch {
	d := make([]int32, n)
	for i := range d {
		d[i] = graph.Unreached
	}
	return &ViewScratch{dist: d, queue: make([]int32, 0, n)}
}

// BFSCSR returns distances from u in H_u over CSR snapshots of g and h
// (u's incident edges from cg, all other adjacency from ch); the slice
// is valid until the next call. This is the traversal the all-pairs
// verification sweep runs once per vertex.
func (s *ViewScratch) BFSCSR(cg, ch *graph.CSR, u int) []int32 {
	for _, v := range s.queue {
		s.dist[v] = graph.Unreached
	}
	s.queue = s.queue[:0]

	s.dist[u] = 0
	s.queue = append(s.queue, int32(u))
	// Seed with G-neighbors of u, then continue over h.
	for _, v := range cg.Neighbors(u) {
		if s.dist[v] == graph.Unreached {
			s.dist[v] = 1
			s.queue = append(s.queue, v)
		}
	}
	for head := 1; head < len(s.queue); head++ {
		x := s.queue[head]
		for _, v := range ch.Neighbors(int(x)) {
			if s.dist[v] == graph.Unreached {
				s.dist[v] = s.dist[x] + 1
				s.queue = append(s.queue, v)
			}
		}
	}
	return s.dist
}

// BFS returns distances from u in H_u; the slice is valid until the
// next call.
func (s *ViewScratch) BFS(g, h *graph.Graph, u int) []int32 {
	for _, v := range s.queue {
		s.dist[v] = graph.Unreached
	}
	s.queue = s.queue[:0]

	s.dist[u] = 0
	s.queue = append(s.queue, int32(u))
	// Seed with G-neighbors of u, then continue over h.
	for _, v := range g.Neighbors(u) {
		if s.dist[v] == graph.Unreached {
			s.dist[v] = 1
			s.queue = append(s.queue, v)
		}
	}
	for head := 1; head < len(s.queue); head++ {
		x := s.queue[head]
		for _, v := range h.Neighbors(int(x)) {
			if s.dist[v] == graph.Unreached {
				s.dist[v] = s.dist[x] + 1
				s.queue = append(s.queue, v)
			}
		}
	}
	return s.dist
}
