package spanner

import (
	"math/rand"
	"testing"

	"remspan/internal/domtree"
	"remspan/internal/gen"
	"remspan/internal/geom"
	"remspan/internal/graph"
)

func randomConnected(n, extra int, rng *rand.Rand) *graph.Graph {
	g := gen.RandomTree(n, rng)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func randomUDG(n int, side, radius float64, rng *rand.Rand) *graph.Graph {
	pts := geom.UniformBox(n, 2, side, rng)
	g := geom.UnitDiskGraph(pts, radius)
	keep, _ := graph.LargestComponent(g)
	return g.InducedSubgraph(keep)
}

func TestExactPreservesDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(10+rng.Intn(40), 60, rng)
		res := Exact(g)
		if !res.H.SubsetOf(g) {
			t.Fatal("spanner not a subgraph")
		}
		h := res.Graph()
		if v := Check(g, h, NewStretch(1, 0)); v != nil {
			t.Fatalf("trial %d: %v", trial, v)
		}
	}
}

func TestExactSparserThanDenseGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomUDG(300, 3, 1.0, rng)
	if g.N() < 150 {
		t.Skip("degenerate UDG")
	}
	res := Exact(g)
	if res.Edges() >= g.M() {
		t.Fatalf("remote-spanner has %d edges, graph has %d — no savings", res.Edges(), g.M())
	}
}

func TestKConnectingStretch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		g := randomConnected(8+rng.Intn(12), 30, rng)
		for k := 1; k <= 3; k++ {
			res := KConnecting(g, k)
			h := res.Graph()
			// Prop. 5: d^{k'}_{H_s} = d^{k'}_G for all k' <= k.
			if v := CheckKConnecting(g, h, k, NewStretch(1, 0), nil); v != nil {
				t.Fatalf("trial %d k=%d: %v", trial, k, v)
			}
		}
	}
}

func TestTwoConnectingStretch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		g := randomConnected(8+rng.Intn(12), 30, rng)
		res := TwoConnecting(g)
		h := res.Graph()
		// Th. 3 / Prop. 4: 2-connecting (2, −1): d^{k'}_{H_s} ≤ 2·d^{k'}_G − k'.
		if v := CheckKConnecting(g, h, 2, NewStretch(2, -1), nil); v != nil {
			t.Fatalf("trial %d: %v", trial, v)
		}
	}
}

func TestLowStretchRationalGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 12; trial++ {
		g := randomConnected(15+rng.Intn(40), 50, rng)
		for _, eps := range []float64{1.0, 0.5, 0.34, 0.25} {
			res := LowStretch(g, eps)
			h := res.Graph()
			st := LowStretchOf(res.R)
			if v := Check(g, h, st); v != nil {
				t.Fatalf("trial %d eps=%v r=%d: %v", trial, eps, res.R, v)
			}
		}
	}
}

func TestLowStretchGreedyGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(15+rng.Intn(30), 40, rng)
		res := LowStretchGreedy(g, 0.5)
		h := res.Graph()
		if v := Check(g, h, LowStretchOf(res.R)); v != nil {
			t.Fatalf("trial %d: %v", trial, v)
		}
	}
}

func TestRadiusFor(t *testing.T) {
	cases := []struct {
		eps    float64
		r      int
		epsEff float64
	}{
		{1.0, 2, 1.0},
		{0.5, 3, 0.5},
		{0.4, 4, 1.0 / 3},
		{0.25, 5, 0.25},
		{0.1, 11, 0.1},
	}
	for _, c := range cases {
		r, eff := RadiusFor(c.eps)
		if r != c.r {
			t.Errorf("eps=%v: r=%d, want %d", c.eps, r, c.r)
		}
		if diff := eff - c.epsEff; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("eps=%v: eff=%v, want %v", c.eps, eff, c.epsEff)
		}
	}
}

func TestStretchHoldsExactArithmetic(t *testing.T) {
	// (4/3, 1/3): dh ≤ 4/3·dg + 1/3  ⟺  3dh ≤ 4dg + 1.
	st := LowStretchOf(4) // ε' = 1/3
	if st.AlphaNum != 4 || st.AlphaDen != 3 || st.BetaNum != 1 || st.BetaDen != 3 {
		t.Fatalf("LowStretchOf(4) = %v", st)
	}
	cases := []struct {
		dg, dh int64
		ok     bool
	}{
		{2, 3, true},  // 9 ≤ 9
		{2, 4, false}, // 12 > 9
		{3, 4, true},  // 12 ≤ 13
		{3, 5, false},
		{6, 8, true}, // 24 ≤ 25
		{6, 9, false},
	}
	for _, c := range cases {
		if got := st.Holds(c.dg, c.dh); got != c.ok {
			t.Errorf("Holds(%d,%d)=%v, want %v", c.dg, c.dh, got, c.ok)
		}
	}
	if s := st.String(); s != "(4/3, 1/3)" {
		t.Errorf("String() = %q", s)
	}
	if s := NewStretch(2, -1).String(); s != "(2, -1)" {
		t.Errorf("String() = %q", s)
	}
}

func TestViewBFSMatchesMaterializedView(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(10+rng.Intn(20), 25, rng)
		res := Exact(g)
		h := res.Graph()
		vs := NewViewScratch(g.N())
		for u := 0; u < g.N(); u++ {
			hu := View(g, h, u)
			want := graph.BFS(hu, u)
			got1 := ViewBFS(g, h, u)
			got2 := vs.BFS(g, h, u)
			for v := 0; v < g.N(); v++ {
				if got1[v] != want[v] || got2[v] != want[v] {
					t.Fatalf("trial %d u=%d v=%d: view BFS %d/%d vs %d",
						trial, u, v, got1[v], got2[v], want[v])
				}
			}
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomConnected(60, 120, rng)
	par := Exact(g)
	ser := UnionSerial(g, func(u int, s *graph.BFSScratch) *graph.Tree {
		return domtree.KGreedy(g, u, 1)
	})
	if par.Edges() != ser.Edges() {
		t.Fatalf("parallel %d edges, serial %d", par.Edges(), ser.Edges())
	}
	pe, se := par.H.Edges(), ser.H.Edges()
	for i := range pe {
		if pe[i] != se[i] {
			t.Fatal("edge sets differ")
		}
	}
	for u := range par.TreeEdges {
		if par.TreeEdges[u] != ser.TreeEdges[u] {
			t.Fatalf("tree size at %d differs", u)
		}
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	// Empty spanner on a path: d_{H_u}(0, 3) is infinite.
	g := gen.Path(5)
	h := graph.New(5)
	v := Check(g, h, NewStretch(1, 0))
	if v == nil {
		t.Fatal("empty spanner accepted")
	}
	// A BFS tree from 0 is NOT a (1,0)-remote-spanner in general, but
	// on a path it is; use a cycle instead.
	c := gen.Ring(8)
	h2 := graph.New(8)
	for i := 0; i < 7; i++ {
		h2.AddEdge(i, i+1) // drop the closing edge {7,0}
	}
	// From u=2, H_u misses 7-0, so d_{H_2}(2, 7) = 5+... in H_2:
	// 2's own edges present (1-2, 2-3), path to 7 via 3..7 length 5;
	// d_G = 3 (2-1-0-7). 5 > 3 violates (1,0).
	if v := Check(c, h2, NewStretch(1, 0)); v == nil {
		t.Fatal("broken cycle spanner accepted as (1,0)")
	}
}

func TestMeasureProfile(t *testing.T) {
	g := gen.Ring(8)
	full := g.Clone()
	p := MeasureProfile(g, full)
	if p.MaxStretch != 1 || p.MaxAdd != 0 {
		t.Fatalf("full graph profile %+v", p)
	}
	if p.Pairs == 0 {
		t.Fatal("no pairs measured")
	}
	res := TwoConnecting(g)
	p2 := MeasureProfile(g, res.Graph())
	if p2.MaxStretch > 2.0 {
		t.Fatalf("2-connecting profile exceeds multiplicative 2: %+v", p2)
	}
}

func TestCheckKConnectingWithPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomConnected(20, 40, rng)
	res := KConnecting(g, 2)
	h := res.Graph()
	pairs := [][2]int{{0, 5}, {3, 19}, {7, 7}, {1, 2}}
	if v := CheckKConnecting(g, h, 2, NewStretch(1, 0), pairs); v != nil {
		t.Fatalf("%v", v)
	}
}

// Regression for the marks coherence check in Result.Graph: a caller
// that rewrites the exported H to an equal-sized but different edge set
// must get a graph of H, not a stale marks-built one.
func TestResultGraphTracksMutatedH(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomConnected(40, 80, rng)
	res := Exact(g)

	edges := res.H.Edges()
	drop := edges[len(edges)/2]
	// Find a graph edge absent from H to swap in, keeping H's size.
	var addU, addV int
	found := false
	g.EachEdge(func(u, v int) {
		if !found && !res.H.Has(u, v) {
			addU, addV, found = u, v, true
		}
	})
	if !found {
		t.Skip("spanner kept every edge — no swap candidate")
	}
	mutated := graph.NewEdgeSet(g.N())
	for _, e := range edges {
		if e != drop {
			mutated.Add(int(e[0]), int(e[1]))
		}
	}
	mutated.Add(addU, addV)
	if mutated.Len() != res.H.Len() {
		t.Fatalf("swap changed size: %d vs %d", mutated.Len(), res.H.Len())
	}
	res.H = mutated

	got := res.Graph()
	if got.HasEdge(int(drop[0]), int(drop[1])) {
		t.Fatalf("materialized graph kept dropped edge {%d,%d} — stale marks used", drop[0], drop[1])
	}
	if !got.HasEdge(addU, addV) {
		t.Fatalf("materialized graph missing swapped-in edge {%d,%d}", addU, addV)
	}
	if got.M() != mutated.Len() {
		t.Fatalf("materialized %d edges, want %d", got.M(), mutated.Len())
	}
	// Unmutated results still take (and agree with) the marks fast path.
	res2 := Exact(g)
	h2 := res2.Graph()
	if h2.M() != res2.H.Len() || !res2.H.SubsetOf(h2) {
		t.Fatal("marks fast path diverged from edge set")
	}
}
