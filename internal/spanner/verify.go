package spanner

import (
	"fmt"
	"sync"
	"sync/atomic"

	"remspan/internal/flow"
	"remspan/internal/graph"
	"remspan/internal/sched"
)

// Stretch is an exact rational stretch bound (αN/αD, βN/βD).
type Stretch struct {
	AlphaNum, AlphaDen int64
	BetaNum, BetaDen   int64
}

// NewStretch returns the integer stretch (α, β).
func NewStretch(alpha, beta int64) Stretch {
	return Stretch{AlphaNum: alpha, AlphaDen: 1, BetaNum: beta, BetaDen: 1}
}

// LowStretchOf returns the exact stretch (1+ε', 1−2ε') with
// ε' = 1/(r−1) guaranteed by (r, 1)-dominating trees (Prop. 1).
func LowStretchOf(r int) Stretch {
	d := int64(r - 1)
	return Stretch{AlphaNum: d + 1, AlphaDen: d, BetaNum: d - 2, BetaDen: d}
}

// String renders the stretch, e.g. "(4/3, 1/3)".
func (s Stretch) String() string {
	frac := func(n, d int64) string {
		if n == 0 {
			return "0"
		}
		if d != 0 && n%d == 0 {
			return fmt.Sprintf("%d", n/d)
		}
		return fmt.Sprintf("%d/%d", n, d)
	}
	return fmt.Sprintf("(%s, %s)", frac(s.AlphaNum, s.AlphaDen), frac(s.BetaNum, s.BetaDen))
}

// Holds reports whether dh <= α·dg + β using exact integer arithmetic.
func (s Stretch) Holds(dg, dh int64) bool {
	// dh ≤ (αN/αD)·dg + βN/βD  ⟺  dh·αD·βD ≤ αN·βD·dg + βN·αD.
	return dh*s.AlphaDen*s.BetaDen <= s.AlphaNum*s.BetaDen*dg+s.BetaNum*s.AlphaDen
}

// Violation is a witness pair breaking a remote-spanner guarantee.
// DH is -1 when v is unreachable in H_u.
type Violation struct {
	U, V   int
	DG, DH int
	K      int // disjoint-path count for k-connecting checks (1 otherwise)
}

func (v *Violation) Error() string {
	return fmt.Sprintf("spanner: pair (%d,%d) k=%d: d_G=%d but d_{H_u}=%d", v.U, v.V, v.K, v.DG, v.DH)
}

// dhField normalizes a traversal distance for a Violation: the
// documented unreachable value is -1, independent of the internal
// graph.Unreached sentinel.
func dhField(d int32) int {
	if d == graph.Unreached {
		return -1
	}
	return int(d)
}

// batchedMinN is the vertex count below which verification stays on
// the scalar path: under two 64-source batches, mask bookkeeping costs
// more than it saves, and the scalar path doubles as the equivalence
// oracle the batched engine is tested against.
const batchedMinN = 128

// Check verifies the (α, β)-remote-spanner property of h against g for
// every ordered pair (u, v): d_{H_u}(u, v) ≤ α·d_G(u, v) + β for
// non-adjacent u, v (adjacent pairs hold trivially with distance 1).
// It returns the lexicographically smallest violating pair (min u,
// then min v), or nil — a deterministic witness regardless of worker
// scheduling or engine.
//
// Large inputs run on the word-parallel 64-source batch engine
// (verify_batch.go); tiny ones on the scalar reference path. Both are
// parallelized with per-worker scratch over immutable CSR snapshots
// taken up front.
func Check(g, h *graph.Graph, st Stretch) *Violation {
	cg, ch := graph.NewCSR(g), graph.NewCSR(h)
	// The batched judge needs positive denominators and α ≥ 0 for its
	// monotone threshold table; anything else (never produced by the
	// constructions) stays on the scalar reference.
	if cg.N() >= batchedMinN && st.AlphaDen > 0 && st.BetaDen > 0 && st.AlphaNum >= 0 {
		return checkBatchedCSR(cg, ch, st)
	}
	return checkScalarCSR(cg, ch, st)
}

// CheckScalar is the scalar reference implementation of Check: one
// BFS pair per vertex. It is the equivalence oracle for the batched
// engine (FuzzVerifyEquivalence) and the fallback for tiny graphs.
func CheckScalar(g, h *graph.Graph, st Stretch) *Violation {
	return checkScalarCSR(graph.NewCSR(g), graph.NewCSR(h), st)
}

// scalarVerifyWorker is one pooled worker slot of the scalar
// verification fan-out: BFS scratch for both graphs, reused across
// calls and regrown only when the vertex count does.
type scalarVerifyWorker struct {
	n  int
	vs *ViewScratch
	gs *graph.BFSScratch
}

// scalarVerifyEnv is the reusable environment of checkScalarCSR's
// shard fan-out, mirroring buildEnv: one shared instance, transient
// fallback when busy.
type scalarVerifyEnv struct {
	mu      sync.Mutex
	pool    sched.Pool
	workers []*scalarVerifyWorker

	// Per-run job, set under mu.
	cg, ch *graph.CSR
	st     Stretch
	// stop is the smallest source known to violate: once set, workers
	// skip sources ≥ stop, so the pool drains instead of scanning to
	// completion. Every source is claimed exactly once and stop only
	// decreases to recorded violations, so each source below the final
	// stop is still fully processed — which is what makes the returned
	// lexicographic minimum exact despite stealing.
	stop    atomic.Int64
	resMu   sync.Mutex
	best    Violation // by value: the shard body must not allocate
	hasBest bool

	body func(w, lo, hi int)
}

func newScalarVerifyEnv() *scalarVerifyEnv {
	e := &scalarVerifyEnv{}
	e.body = e.shard
	return e
}

var sharedScalarVerifyEnv = newScalarVerifyEnv()

//remspan:hotpath
func (e *scalarVerifyEnv) shard(w, lo, hi int) {
	sw := e.workers[w]
	for u := lo; u < hi; u++ {
		if int64(u) >= e.stop.Load() {
			continue
		}
		// Touched-only reset keeps fragmented graphs O(Σ|component|),
		// not O(n) per root.
		dg, _, reached := sw.gs.BoundedView(e.cg, u, e.cg.N())
		dh := sw.vs.BFSCSR(e.cg, e.ch, u)
		minV := int32(-1)
		for _, v := range reached {
			if dg[v] < 2 {
				continue
			}
			if dh[v] == graph.Unreached || !e.st.Holds(int64(dg[v]), int64(dh[v])) {
				if minV < 0 || v < minV {
					minV = v
				}
			}
		}
		if minV < 0 {
			continue
		}
		for {
			cur := e.stop.Load()
			if int64(u) >= cur || e.stop.CompareAndSwap(cur, int64(u)) {
				break
			}
		}
		vio := Violation{U: u, V: int(minV), DG: int(dg[minV]), DH: dhField(dh[minV]), K: 1}
		e.resMu.Lock()
		if !e.hasBest || vio.U < e.best.U || (vio.U == e.best.U && vio.V < e.best.V) {
			e.best, e.hasBest = vio, true
		}
		e.resMu.Unlock()
	}
}

func (e *scalarVerifyEnv) acquire(width, n int) {
	for len(e.workers) < width {
		e.workers = append(e.workers, &scalarVerifyWorker{})
	}
	for _, sw := range e.workers[:width] {
		if sw.vs == nil || sw.n < n {
			sw.vs = NewViewScratch(n)
			sw.gs = graph.NewBFSScratch(n)
			sw.n = n
		}
	}
}

func checkScalarCSR(cg, ch *graph.CSR, st Stretch) *Violation {
	return checkScalarCSRWidth(cg, ch, st, sched.Workers(cg.N()))
}

func checkScalarCSRWidth(cg, ch *graph.CSR, st Stretch, width int) *Violation {
	env := sharedScalarVerifyEnv
	if !env.mu.TryLock() {
		env = newScalarVerifyEnv()
		env.mu.Lock()
	}
	defer env.mu.Unlock()
	n := cg.N()
	env.acquire(width, n)
	env.cg, env.ch, env.st = cg, ch, st
	env.stop.Store(int64(n))
	env.hasBest = false
	env.pool.Run(n, width, env.body)
	var best *Violation
	if env.hasBest {
		v := env.best
		best = &v
	}
	env.cg, env.ch = nil, nil
	return best
}

// Profile summarizes observed stretch over all pairs: the maximum of
// d_{H_u}(u,v)/d_G(u,v) and the average, over non-adjacent connected
// pairs.
type Profile struct {
	Pairs      int
	MaxStretch float64
	AvgStretch float64
	MaxAdd     int // max additive excess d_H_u − d_G
}

// profAcc accumulates a Profile in an order-independent form, so the
// scalar sweep, the 64-source batch sweep, and any worker interleaving
// all produce bit-identical results. The average's numerator is kept
// as exact integer sums bucketed by d_G (Σ d_H over pairs at each
// denominator); the only floating-point operations are a fixed-order
// reduction at the end plus max(), which commutes.
type profAcc struct {
	pairs      int
	maxAdd     int32
	maxStretch float64
	num        []int64 // num[d] = Σ d_H over pairs with d_G == d
}

func newProfAcc(n int) *profAcc {
	return &profAcc{num: make([]int64, n+1)}
}

// reset clears the accumulator for reuse over graphs with up to n
// vertices — the pooled per-worker accumulators of the batched
// profile fan-out are reset per run, not reallocated.
func (a *profAcc) reset(n int) {
	a.pairs, a.maxAdd, a.maxStretch = 0, 0, 0
	if len(a.num) < n+1 {
		a.num = make([]int64, n+1)
		return
	}
	clear(a.num)
}

// add records one (d_G, d_H) pair with d_G ≥ 2 and d_H reachable.
func (a *profAcc) add(dg, dh int32) {
	a.pairs++
	a.num[dg] += int64(dh)
	if s := float64(dh) / float64(dg); s > a.maxStretch {
		a.maxStretch = s
	}
	if add := dh - dg; add > a.maxAdd {
		a.maxAdd = add
	}
}

func (a *profAcc) merge(b *profAcc) {
	a.pairs += b.pairs
	for d, s := range b.num {
		a.num[d] += s
	}
	if b.maxStretch > a.maxStretch {
		a.maxStretch = b.maxStretch
	}
	if b.maxAdd > a.maxAdd {
		a.maxAdd = b.maxAdd
	}
}

func (a *profAcc) profile() Profile {
	p := Profile{Pairs: a.pairs, MaxStretch: a.maxStretch, MaxAdd: int(a.maxAdd)}
	if a.pairs == 0 {
		return p
	}
	sum := 0.0
	for d := 2; d < len(a.num); d++ {
		if a.num[d] != 0 {
			sum += float64(a.num[d]) / float64(d)
		}
	}
	p.AvgStretch = sum / float64(a.pairs)
	return p
}

// MeasureProfile computes the observed stretch profile of h over g.
// Large inputs run on the word-parallel 64-source batch engine with a
// worker pool; the result is bit-identical to MeasureProfileScalar
// (order-independent accumulation, see profAcc).
func MeasureProfile(g, h *graph.Graph) Profile {
	cg, ch := graph.NewCSR(g), graph.NewCSR(h)
	if cg.N() >= batchedMinN {
		return measureBatchedCSR(cg, ch)
	}
	return measureScalarCSR(cg, ch)
}

// MeasureProfileScalar is the scalar reference implementation of
// MeasureProfile: one BFS pair per vertex, serial.
func MeasureProfileScalar(g, h *graph.Graph) Profile {
	return measureScalarCSR(graph.NewCSR(g), graph.NewCSR(h))
}

func measureScalarCSR(cg, ch *graph.CSR) Profile {
	n := cg.N()
	vs := NewViewScratch(n)
	gs := graph.NewBFSScratch(n)
	acc := newProfAcc(n)
	for u := 0; u < n; u++ {
		dg, _, reached := gs.BoundedView(cg, u, n)
		dh := vs.BFSCSR(cg, ch, u)
		for _, v := range reached {
			if dg[v] < 2 || dh[v] == graph.Unreached {
				continue
			}
			acc.add(dg[v], dh[v])
		}
	}
	return acc.profile()
}

// CheckKConnecting verifies the k-connecting (α, β)-remote-spanner
// property: for all non-adjacent pairs (s, t) and k' ≤ k with
// d^{k'}_G(s,t) < ∞, d^{k'}_{H_s}(s,t) ≤ α·d^{k'}_G(s,t) + k'·β.
// pairs limits the check to the given (s, t) pairs; nil means all
// ordered pairs (quadratic × flow cost — small graphs only).
func CheckKConnecting(g, h *graph.Graph, k int, st Stretch, pairs [][2]int) *Violation {
	if pairs == nil {
		for s := 0; s < g.N(); s++ {
			for t := 0; t < g.N(); t++ {
				if s == t || g.HasEdge(s, t) {
					continue
				}
				if v := checkKPair(g, h, k, st, s, t); v != nil {
					return v
				}
			}
		}
		return nil
	}
	for _, p := range pairs {
		s, t := p[0], p[1]
		if s == t || g.HasEdge(s, t) {
			continue
		}
		if v := checkKPair(g, h, k, st, s, t); v != nil {
			return v
		}
	}
	return nil
}

func checkKPair(g, h *graph.Graph, k int, st Stretch, s, t int) *Violation {
	dg := flow.KDistanceProfile(g, s, t, k)
	hs := View(g, h, s)
	dh := flow.KDistanceProfile(hs, s, t, k)
	for kp := 1; kp <= k; kp++ {
		if dg[kp-1] < 0 {
			break
		}
		// d^{k'}_{H_s} ≤ α·d^{k'}_G + k'·β.
		need := Stretch{
			AlphaNum: st.AlphaNum, AlphaDen: st.AlphaDen,
			BetaNum: st.BetaNum * int64(kp), BetaDen: st.BetaDen,
		}
		if dh[kp-1] < 0 || !need.Holds(int64(dg[kp-1]), int64(dh[kp-1])) {
			return &Violation{U: s, V: t, DG: dg[kp-1], DH: dh[kp-1], K: kp}
		}
	}
	return nil
}

// Subset verifies h ⊆ g (every spanner edge is a graph edge).
func Subset(g *graph.Graph, h *graph.EdgeSet) bool { return h.SubsetOf(g) }
