package spanner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"remspan/internal/flow"
	"remspan/internal/graph"
)

// Stretch is an exact rational stretch bound (αN/αD, βN/βD).
type Stretch struct {
	AlphaNum, AlphaDen int64
	BetaNum, BetaDen   int64
}

// NewStretch returns the integer stretch (α, β).
func NewStretch(alpha, beta int64) Stretch {
	return Stretch{AlphaNum: alpha, AlphaDen: 1, BetaNum: beta, BetaDen: 1}
}

// LowStretchOf returns the exact stretch (1+ε', 1−2ε') with
// ε' = 1/(r−1) guaranteed by (r, 1)-dominating trees (Prop. 1).
func LowStretchOf(r int) Stretch {
	d := int64(r - 1)
	return Stretch{AlphaNum: d + 1, AlphaDen: d, BetaNum: d - 2, BetaDen: d}
}

// String renders the stretch, e.g. "(4/3, 1/3)".
func (s Stretch) String() string {
	frac := func(n, d int64) string {
		if n == 0 {
			return "0"
		}
		if d != 0 && n%d == 0 {
			return fmt.Sprintf("%d", n/d)
		}
		return fmt.Sprintf("%d/%d", n, d)
	}
	return fmt.Sprintf("(%s, %s)", frac(s.AlphaNum, s.AlphaDen), frac(s.BetaNum, s.BetaDen))
}

// Holds reports whether dh <= α·dg + β using exact integer arithmetic.
func (s Stretch) Holds(dg, dh int64) bool {
	// dh ≤ (αN/αD)·dg + βN/βD  ⟺  dh·αD·βD ≤ αN·βD·dg + βN·αD.
	return dh*s.AlphaDen*s.BetaDen <= s.AlphaNum*s.BetaDen*dg+s.BetaNum*s.AlphaDen
}

// Violation is a witness pair breaking a remote-spanner guarantee.
type Violation struct {
	U, V   int
	DG, DH int
	K      int // disjoint-path count for k-connecting checks (1 otherwise)
}

func (v *Violation) Error() string {
	return fmt.Sprintf("spanner: pair (%d,%d) k=%d: d_G=%d but d_{H_u}=%d", v.U, v.V, v.K, v.DG, v.DH)
}

// Check verifies the (α, β)-remote-spanner property of h against g for
// every ordered pair (u, v): d_{H_u}(u, v) ≤ α·d_G(u, v) + β for
// non-adjacent u, v (adjacent pairs hold trivially with distance 1).
// Returns the first violation found, or nil. Runs one BFS pair per
// vertex over immutable CSR snapshots of g and h taken up front,
// parallelized across vertices with per-worker scratch.
func Check(g, h *graph.Graph, st Stretch) *Violation {
	n := g.N()
	cg, ch := graph.NewCSR(g), graph.NewCSR(h)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var mu sync.Mutex
	var worst *Violation
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			vs := NewViewScratch(n)
			gs := graph.NewBFSScratch(n)
			for {
				u := int(next.Add(1)) - 1
				if u >= n {
					return
				}
				// Touched-only reset keeps fragmented graphs O(Σ|component|),
				// not O(n) per root.
				dg, _, reached := gs.BoundedView(cg, u, n)
				dh := vs.BFSCSR(cg, ch, u)
				for _, v := range reached {
					if dg[v] < 2 {
						continue
					}
					if dh[v] == graph.Unreached || !st.Holds(int64(dg[v]), int64(dh[v])) {
						mu.Lock()
						if worst == nil {
							dhv := int(dh[v])
							worst = &Violation{U: u, V: int(v), DG: int(dg[v]), DH: dhv, K: 1}
						}
						mu.Unlock()
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return worst
}

// Profile summarizes observed stretch over all pairs: the maximum of
// d_{H_u}(u,v)/d_G(u,v) and the average, over non-adjacent connected
// pairs.
type Profile struct {
	Pairs      int
	MaxStretch float64
	AvgStretch float64
	MaxAdd     int // max additive excess d_H_u − d_G
}

// MeasureProfile computes the observed stretch profile of h over g.
func MeasureProfile(g, h *graph.Graph) Profile {
	n := g.N()
	cg, ch := graph.NewCSR(g), graph.NewCSR(h)
	vs := NewViewScratch(n)
	gs := graph.NewBFSScratch(n)
	var p Profile
	sum := 0.0
	for u := 0; u < n; u++ {
		dg, _, reached := gs.BoundedView(cg, u, n)
		dh := vs.BFSCSR(cg, ch, u)
		for _, v := range reached {
			if dg[v] < 2 || dh[v] == graph.Unreached {
				continue
			}
			s := float64(dh[v]) / float64(dg[v])
			sum += s
			p.Pairs++
			if s > p.MaxStretch {
				p.MaxStretch = s
			}
			if add := int(dh[v] - dg[v]); add > p.MaxAdd {
				p.MaxAdd = add
			}
		}
	}
	if p.Pairs > 0 {
		p.AvgStretch = sum / float64(p.Pairs)
	}
	return p
}

// CheckKConnecting verifies the k-connecting (α, β)-remote-spanner
// property: for all non-adjacent pairs (s, t) and k' ≤ k with
// d^{k'}_G(s,t) < ∞, d^{k'}_{H_s}(s,t) ≤ α·d^{k'}_G(s,t) + k'·β.
// pairs limits the check to the given (s, t) pairs; nil means all
// ordered pairs (quadratic × flow cost — small graphs only).
func CheckKConnecting(g, h *graph.Graph, k int, st Stretch, pairs [][2]int) *Violation {
	if pairs == nil {
		for s := 0; s < g.N(); s++ {
			for t := 0; t < g.N(); t++ {
				if s == t || g.HasEdge(s, t) {
					continue
				}
				if v := checkKPair(g, h, k, st, s, t); v != nil {
					return v
				}
			}
		}
		return nil
	}
	for _, p := range pairs {
		s, t := p[0], p[1]
		if s == t || g.HasEdge(s, t) {
			continue
		}
		if v := checkKPair(g, h, k, st, s, t); v != nil {
			return v
		}
	}
	return nil
}

func checkKPair(g, h *graph.Graph, k int, st Stretch, s, t int) *Violation {
	dg := flow.KDistanceProfile(g, s, t, k)
	hs := View(g, h, s)
	dh := flow.KDistanceProfile(hs, s, t, k)
	for kp := 1; kp <= k; kp++ {
		if dg[kp-1] < 0 {
			break
		}
		// d^{k'}_{H_s} ≤ α·d^{k'}_G + k'·β.
		need := Stretch{
			AlphaNum: st.AlphaNum, AlphaDen: st.AlphaDen,
			BetaNum: st.BetaNum * int64(kp), BetaDen: st.BetaDen,
		}
		if dh[kp-1] < 0 || !need.Holds(int64(dg[kp-1]), int64(dh[kp-1])) {
			return &Violation{U: s, V: t, DG: dg[kp-1], DH: dh[kp-1], K: kp}
		}
	}
	return nil
}

// Subset verifies h ⊆ g (every spanner edge is a graph edge).
func Subset(g *graph.Graph, h *graph.EdgeSet) bool { return h.SubsetOf(g) }
