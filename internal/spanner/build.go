// Package spanner assembles remote-spanners as unions of per-node
// dominating trees (the paper's characterizations) and verifies their
// stretch guarantees exactly.
//
// Constructions:
//
//   - Exact / KConnecting: union of Algorithm 4 trees — k-connecting
//     (1, 0)-remote-spanners (Prop. 5, Th. 2).
//   - TwoConnecting / KMIS: union of Algorithm 5 trees — 2-connecting
//     (2, −1)-remote-spanners (Prop. 4, Th. 3).
//   - LowStretch: union of Algorithm 2 MIS trees with
//     r = ⌈1/ε⌉ + 1 — (1+ε', 1−2ε')-remote-spanners with
//     ε' = 1/(r−1) ≤ ε (Prop. 1, Th. 1).
//   - LowStretchGreedy: same stretch via Algorithm 1 greedy trees
//     (Prop. 2 approximation guarantee per tree).
//
// All constructions run on one immutable graph.CSR snapshot taken up
// front, with one reusable domtree.Scratch per worker, so the per-root
// hot loops are allocation-free (DESIGN.md §3). UnionSerial retains the
// map-based reference path the equivalence tests compare against.
package spanner

import (
	"math"

	"remspan/internal/domtree"
	"remspan/internal/graph"
)

// Result is a constructed remote-spanner together with per-root tree
// sizes (in edges) for size accounting.
type Result struct {
	H         *graph.EdgeSet   // the spanner edge set
	TreeEdges []int            // edges of the dominating tree per root
	R         int              // tree radius used (2 for the k-connecting families)
	EpsEff    float64          // effective ε' for the low-stretch families (0 otherwise)
	marks     *graph.EdgeMarks // CSR-slot accumulator (production pipeline only)
}

// Edges returns the spanner's edge count.
func (r *Result) Edges() int { return r.H.Len() }

// Graph materializes the spanner as a Graph — directly from the CSR
// edge marks when the production pipeline built it (exactly-sized
// sorted adjacency, no per-insert work), via the edge set otherwise.
// The marks are used only while they hold exactly the edges of H, so
// code that mutates the exported H directly (instead of Result.Union)
// still materializes correctly through the edge-set fallback — a bare
// size comparison is not enough, since an edit can swap one edge for
// another without changing H's length. Once the marks diverge they are
// dropped for good: an H edge outside the snapshot can never re-agree.
func (r *Result) Graph() *graph.Graph {
	if r.marks != nil {
		if r.marks.Matches(r.H) {
			return r.marks.Graph()
		}
		r.marks = nil
	}
	return r.H.Graph()
}

// Union merges o's edges into r, keeping the edge set and the CSR-mark
// fast path coherent (the marks survive only when both results were
// built over the same snapshot layout; otherwise Graph() falls back to
// the edge set).
func (r *Result) Union(o *Result) {
	r.H.Union(o.H)
	if r.marks != nil && o.marks != nil && r.marks.Compatible(o.marks) {
		r.marks.Union(o.marks)
	} else {
		r.marks = nil
	}
}

// RadiusFor returns the dominating-tree radius r = ⌈1/ε⌉ + 1 used by
// the low-stretch constructions, and the effective stretch parameter
// ε' = 1/(r−1).
func RadiusFor(eps float64) (r int, epsEff float64) {
	if eps <= 0 || eps > 1 {
		panic("spanner: require 0 < eps <= 1")
	}
	r = int(math.Ceil(1/eps)) + 1
	return r, 1 / float64(r-1)
}

// Exact returns a (1, 0)-remote-spanner: exact distances are preserved
// in every augmented view H_u (Prop. 5 with k = 1). This is the union
// of multipoint-relay selections over all nodes.
func Exact(g *graph.Graph) *Result { return KConnecting(g, 1) }

// KConnecting returns a k-connecting (1, 0)-remote-spanner as the union
// of Algorithm 4 greedy k-cover trees over all roots (Th. 2).
func KConnecting(g *graph.Graph, k int) *Result {
	res := buildParallel(g, func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.KGreedyCSR(c, s, u, k)
	})
	res.R = 2
	return res
}

// TwoConnecting returns a 2-connecting (2, −1)-remote-spanner as the
// union of Algorithm 5 trees with k = 2 (Th. 3).
func TwoConnecting(g *graph.Graph) *Result { return KMIS(g, 2) }

// KMIS returns the union of Algorithm 5 k-connecting (2, 1)-dominating
// trees over all roots. For k = 2 this is the paper's Th. 3
// construction.
func KMIS(g *graph.Graph, k int) *Result {
	res := buildParallel(g, func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.KMISCSR(c, s, u, k)
	})
	res.R = 2
	return res
}

// LowStretch returns a (1+ε', 1−2ε')-remote-spanner with
// ε' = 1/⌈1/ε⌉ ≤ ε, as the union of Algorithm 2 MIS dominating trees
// with radius r = ⌈1/ε⌉ + 1 (Th. 1). In the unit ball graph of a
// doubling metric of dimension p it has O(ε^{−(p+1)} n) edges.
func LowStretch(g *graph.Graph, eps float64) *Result {
	r, epsEff := RadiusFor(eps)
	res := buildParallel(g, func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.MISCSR(c, s, u, r)
	})
	res.R = r
	res.EpsEff = epsEff
	return res
}

// LowStretchGreedy is LowStretch built from Algorithm 1 greedy
// (r, 1)-dominating trees instead of MIS trees: same stretch guarantee,
// with the Prop. 2 per-tree approximation bound (at the cost of a
// log Δ factor in size).
func LowStretchGreedy(g *graph.Graph, eps float64) *Result {
	r, epsEff := RadiusFor(eps)
	res := buildParallel(g, func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.GreedyCSR(c, s, u, r, 1)
	})
	res.R = r
	res.EpsEff = epsEff
	return res
}

// UnionSerial builds the union of builder(u) over all roots serially on
// the mutable adjacency-list graph — the retained map-based reference
// path: equivalence tests assert the CSR pipeline reproduces its edge
// sets exactly, and the ablation benchmarks measure the gap.
func UnionSerial(g *graph.Graph, builder func(u int, s *graph.BFSScratch) *graph.Tree) *Result {
	h := graph.NewEdgeSet(g.N())
	sizes := make([]int, g.N())
	scratch := graph.NewBFSScratch(g.N())
	for u := 0; u < g.N(); u++ {
		t := builder(u, scratch)
		sizes[u] = t.EdgeCount()
		h.AddTree(t)
	}
	return &Result{H: h, TreeEdges: sizes}
}
