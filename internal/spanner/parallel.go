package spanner

import (
	"runtime"
	"sync"
	"sync/atomic"

	"remspan/internal/graph"
)

// buildParallel constructs one dominating tree per root using a worker
// pool (roots are independent — the paper's algorithms need no
// synchronization between node decisions) and merges the edges into a
// single set. The merge order does not affect the result because the
// union is a set; the output is identical to UnionSerial.
func buildParallel(g *graph.Graph, builder func(u int, s *graph.BFSScratch) *graph.Tree) *Result {
	n := g.N()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return UnionSerial(g, builder)
	}

	sizes := make([]int, n)
	h := graph.NewEdgeSet(n)
	var mu sync.Mutex
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			scratch := graph.NewBFSScratch(n)
			local := graph.NewEdgeSet(n)
			for {
				u := int(next.Add(1)) - 1
				if u >= n {
					break
				}
				t := builder(u, scratch)
				sizes[u] = t.EdgeCount()
				local.AddTree(t)
			}
			mu.Lock()
			h.Union(local)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return &Result{H: h, TreeEdges: sizes}
}
