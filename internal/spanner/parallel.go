package spanner

import (
	"runtime"
	"sync"
	"sync/atomic"

	"remspan/internal/domtree"
	"remspan/internal/graph"
)

// CSRBuilder builds the dominating tree for one root on a graph.View
// (an immutable CSR snapshot here; the incremental maintainer passes a
// patched CSRDelta to the same builders), using — and owning until the
// next call — the scratch's pooled tree. All production constructions
// are unions of these.
type CSRBuilder func(c graph.View, s *domtree.Scratch, u int) *graph.Tree

// buildParallel snapshots g once and constructs one dominating tree per
// root using a worker pool (roots are independent — the paper's
// algorithms need no synchronization between node decisions), merging
// the edges into a single set. Each worker owns one domtree.Scratch, so
// the per-root hot loop allocates nothing. The merge order does not
// affect the result because the union is a set; the output is identical
// to UnionSerialCSR and to the map-based UnionSerial reference.
func buildParallel(g *graph.Graph, builder CSRBuilder) *Result {
	c := graph.NewCSR(g)
	n := c.N()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return UnionSerialCSR(c, builder)
	}

	sizes := make([]int, n)
	marks := graph.NewEdgeMarks(c)
	var mu sync.Mutex
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			scratch := domtree.NewScratch(n)
			local := graph.NewEdgeMarks(c)
			for {
				u := int(next.Add(1)) - 1
				if u >= n {
					break
				}
				t := builder(c, scratch, u)
				sizes[u] = t.EdgeCount()
				local.AddTree(t)
			}
			mu.Lock()
			marks.Union(local)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return &Result{H: marks.EdgeSet(), TreeEdges: sizes, marks: marks}
}

// UnionSerialCSR builds the union of builder(u) over all roots serially
// on a prebuilt snapshot — the single-worker fallback and the serial
// arm of the parallel-vs-serial ablation benchmark.
func UnionSerialCSR(c *graph.CSR, builder CSRBuilder) *Result {
	n := c.N()
	marks := graph.NewEdgeMarks(c)
	sizes := make([]int, n)
	scratch := domtree.NewScratch(n)
	for u := 0; u < n; u++ {
		t := builder(c, scratch, u)
		sizes[u] = t.EdgeCount()
		marks.AddTree(t)
	}
	return &Result{H: marks.EdgeSet(), TreeEdges: sizes, marks: marks}
}
