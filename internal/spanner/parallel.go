package spanner

import (
	"sync"

	"remspan/internal/domtree"
	"remspan/internal/graph"
	"remspan/internal/sched"
)

// CSRBuilder builds the dominating tree for one root on a graph.View
// (an immutable CSR snapshot here; the incremental maintainer passes a
// patched CSRDelta to the same builders), using — and owning until the
// next call — the scratch's pooled tree. All production constructions
// are unions of these.
type CSRBuilder func(c graph.View, s *domtree.Scratch, u int) *graph.Tree

// buildWorker is one worker slot of the construction fan-out, retained
// across builds: the domtree scratch is reused for any graph up to its
// size, and the local edge-mark accumulator is reused whenever the
// snapshot is the same one as the previous run (the steady-state
// repeated-build case PinAllocs covers) and rebuilt otherwise.
type buildWorker struct {
	n       int
	scratch *domtree.Scratch
	csr     *graph.CSR
	local   *graph.EdgeMarks
}

// buildEnv is the reusable environment of the parallel construction
// fan-out: the sched pool, the per-worker scratch slots, and the
// per-run parameters the prebound shard body reads. One env serves
// the package; a concurrent build that finds it busy runs on a
// transient env instead (correctness never depends on the pooling).
type buildEnv struct {
	mu      sync.Mutex
	pool    sched.Pool
	workers []*buildWorker

	// Per-run job, set under mu.
	c       *graph.CSR
	builder CSRBuilder
	sizes   []int

	body func(w, lo, hi int) // prebound shard body
}

func newBuildEnv() *buildEnv {
	e := &buildEnv{}
	e.body = e.shard
	return e
}

var sharedBuildEnv = newBuildEnv()

// shard builds the trees of roots [lo, hi) on worker w's pooled
// scratch, accumulating edges into the worker-local marks. Per-root
// results land in per-item slots (sizes) or commutative accumulators
// (the marks union), so the stealing schedule cannot affect the
// result.
//
//remspan:hotpath
func (e *buildEnv) shard(w, lo, hi int) {
	bw := e.workers[w]
	for u := lo; u < hi; u++ {
		t := e.builder(e.c, bw.scratch, u)
		e.sizes[u] = t.EdgeCount()
		bw.local.AddTree(t)
	}
}

// acquire readies width worker slots for a run over c: scratches are
// grown to the snapshot's size once and then reused; local marks are
// reset in place when the snapshot is unchanged and rebound otherwise.
func (e *buildEnv) acquire(width int, c *graph.CSR) {
	for len(e.workers) < width {
		e.workers = append(e.workers, &buildWorker{})
	}
	n := c.N()
	for _, bw := range e.workers[:width] {
		if bw.scratch == nil || bw.n < n {
			bw.scratch = domtree.NewScratch(n)
			bw.n = n
		}
		if bw.csr == c {
			bw.local.Reset()
		} else {
			bw.local = graph.NewEdgeMarks(c)
			bw.csr = c
		}
	}
}

// unionParallelCSR fans the per-root tree builds over the shard
// scheduler with width workers and merges the worker-local edge marks
// into marks in ascending worker order (set union commutes, so the
// merge order is a determinism convention, not a load-bearing one).
// sizes[u] receives each root's tree edge count. A warm env run over
// an unchanged snapshot performs no steady-state heap allocations
// (TestUnionParallelZeroAlloc).
func unionParallelCSR(c *graph.CSR, builder CSRBuilder, width int, marks *graph.EdgeMarks, sizes []int) {
	env := sharedBuildEnv
	if !env.mu.TryLock() {
		env = newBuildEnv()
		env.mu.Lock()
	}
	defer env.mu.Unlock()
	env.acquire(width, c)
	env.c, env.builder, env.sizes = c, builder, sizes
	env.pool.Run(c.N(), width, env.body)
	env.c, env.builder, env.sizes = nil, nil, nil
	for _, bw := range env.workers[:width] {
		marks.Union(bw.local)
	}
}

// buildParallel snapshots g once and constructs one dominating tree
// per root across the shared shard scheduler (roots are independent —
// the paper's algorithms need no synchronization between node
// decisions), merging the edges into a single set. Each worker slot
// owns one pooled domtree.Scratch and local accumulator, so the
// per-root hot loop allocates nothing. The output is bit-identical to
// UnionSerialCSR at every worker count (TestBuildParallelDeterminism)
// and to the map-based UnionSerial reference.
func buildParallel(g *graph.Graph, builder CSRBuilder) *Result {
	c := graph.NewCSR(g)
	n := c.N()
	width := sched.Workers(n)
	if width <= 1 {
		return UnionSerialCSR(c, builder)
	}
	marks := graph.NewEdgeMarks(c)
	sizes := make([]int, n)
	unionParallelCSR(c, builder, width, marks, sizes)
	return &Result{H: marks.EdgeSet(), TreeEdges: sizes, marks: marks}
}

// UnionSerialCSR builds the union of builder(u) over all roots serially
// on a prebuilt snapshot — the single-worker fallback and the serial
// arm of the parallel-vs-serial ablation benchmark.
func UnionSerialCSR(c *graph.CSR, builder CSRBuilder) *Result {
	n := c.N()
	marks := graph.NewEdgeMarks(c)
	sizes := make([]int, n)
	scratch := domtree.NewScratch(n)
	for u := 0; u < n; u++ {
		t := builder(c, scratch, u)
		sizes[u] = t.EdgeCount()
		marks.AddTree(t)
	}
	return &Result{H: marks.EdgeSet(), TreeEdges: sizes, marks: marks}
}
