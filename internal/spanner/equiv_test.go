package spanner

import (
	"math/rand"
	"testing"

	"remspan/internal/domtree"
	"remspan/internal/gen"
	"remspan/internal/graph"
)

// The CSR + scratch + lazy-heap production pipeline must produce edge
// sets identical to the retained map-based reference path (UnionSerial
// over the naive builders) on every construction and graph family.

// refExact etc. build each spanner family through the reference path.
func refResult(g *graph.Graph, kind string, k, r int) *Result {
	switch kind {
	case "kgreedy":
		return UnionSerial(g, func(u int, _ *graph.BFSScratch) *graph.Tree {
			return domtree.KGreedy(g, u, k)
		})
	case "kmis":
		return UnionSerial(g, func(u int, _ *graph.BFSScratch) *graph.Tree {
			return domtree.KMIS(g, u, k)
		})
	case "mis":
		return UnionSerial(g, func(u int, s *graph.BFSScratch) *graph.Tree {
			return domtree.MIS(g, s, u, r)
		})
	case "greedy":
		return UnionSerial(g, func(u int, s *graph.BFSScratch) *graph.Tree {
			return domtree.Greedy(g, s, u, r, 1)
		})
	}
	panic("unknown kind " + kind)
}

func prodResult(g *graph.Graph, kind string, k, r int) *Result {
	switch kind {
	case "kgreedy":
		return KConnecting(g, k)
	case "kmis":
		return KMIS(g, k)
	case "mis":
		return LowStretch(g, 1/float64(r-1))
	case "greedy":
		return LowStretchGreedy(g, 1/float64(r-1))
	}
	panic("unknown kind " + kind)
}

func edgeSetsEqual(a, b *graph.EdgeSet) bool {
	if a.Len() != b.Len() {
		return false
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

func checkConstructions(t *testing.T, name string, g *graph.Graph) {
	t.Helper()
	cases := []struct {
		kind string
		k, r int
	}{
		{"kgreedy", 1, 0},
		{"kgreedy", 3, 0},
		{"kmis", 2, 0},
		{"mis", 0, 3},
		{"greedy", 0, 3},
	}
	for _, cse := range cases {
		want := refResult(g, cse.kind, cse.k, cse.r)
		got := prodResult(g, cse.kind, cse.k, cse.r)
		if !edgeSetsEqual(want.H, got.H) {
			t.Fatalf("%s/%s(k=%d,r=%d): CSR pipeline edge set differs from reference (%d vs %d edges)",
				name, cse.kind, cse.k, cse.r, got.H.Len(), want.H.Len())
		}
		// Per-root tree sizes must match too (same trees, not just the
		// same union).
		for u := range want.TreeEdges {
			if want.TreeEdges[u] != got.TreeEdges[u] {
				t.Fatalf("%s/%s: tree size mismatch at root %d: %d vs %d",
					name, cse.kind, u, got.TreeEdges[u], want.TreeEdges[u])
			}
		}
		// The marks-backed Graph materialization must agree with the
		// edge-set materialization.
		if !got.Graph().Equal(want.H.Graph()) {
			t.Fatalf("%s/%s: Result.Graph() differs from reference materialization", name, cse.kind)
		}
	}
}

func TestPipelineEquivalenceGenFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring17", gen.Ring(17)},
		{"path11", gen.Path(11)},
		{"star14", gen.Star(14)},
		{"complete10", gen.Complete(10)},
		{"grid6x5", gen.Grid(6, 5)},
		{"hypercube4", gen.Hypercube(4)},
		{"petersen", gen.Petersen()},
		{"barbell6", gen.Barbell(6, 4)},
		{"erdos-renyi", gen.ErdosRenyi(48, 0.1, rng)},
		{"gnm", gen.GNM(40, 110, rng)},
		{"random-tree", gen.RandomTree(40, rng)},
	}
	for _, f := range families {
		checkConstructions(t, f.name, f.g)
	}
}

func TestPipelineEquivalenceRandomized(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		g := quickGraph(int64(40+trial), 36, 80)
		checkConstructions(t, "quick", g)
	}
}
