package spanner

import (
	"math/rand"
	"runtime"
	"testing"

	"remspan/internal/domtree"
	"remspan/internal/gen"
	"remspan/internal/graph"
	"remspan/internal/testutil"
)

// The shard scheduler must be invisible in every output: any worker
// count — including widths far above GOMAXPROCS, which maximize
// stealing — produces results bit-identical to the serial path. These
// tests drive the internal width entry points directly because the
// public ones pick the width from the host CPU count.

// schedWidths returns the worker counts the determinism pins sweep:
// serial, minimal parallel, a prime that never divides the shard count
// evenly, and the host width.
func schedWidths() []int {
	ws := []int{1, 2, 7}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 7 {
		ws = append(ws, p)
	}
	return ws
}

var schedBuilders = []struct {
	name string
	b    CSRBuilder
}{
	{"kgreedy1", func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.KGreedyCSR(c, s, u, 1)
	}},
	{"kmis2", func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.KMISCSR(c, s, u, 2)
	}},
	{"mis3", func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.MISCSR(c, s, u, 3)
	}},
	{"greedy3", func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.GreedyCSR(c, s, u, 3, 1)
	}},
}

// TestBuildParallelDeterminism pins the construction fan-out: all four
// production builders, across gen families and random graphs, produce
// the same edge set and the same per-root tree sizes at every worker
// count as the serial union.
func TestBuildParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid12x11", gen.Grid(12, 11)},
		{"hypercube6", gen.Hypercube(6)},
		{"erdos-renyi", gen.ErdosRenyi(160, 0.05, rng)},
		{"quick", quickGraph(33, 150, 320)},
	}
	for _, f := range families {
		c := graph.NewCSR(f.g)
		n := c.N()
		for _, bb := range schedBuilders {
			want := UnionSerialCSR(c, bb.b)
			for _, width := range schedWidths() {
				if width <= 1 {
					continue // want IS the width-1 path
				}
				marks := graph.NewEdgeMarks(c)
				sizes := make([]int, n)
				unionParallelCSR(c, bb.b, width, marks, sizes)
				if !edgeSetsEqual(want.H, marks.EdgeSet()) {
					t.Fatalf("%s/%s width=%d: parallel edge set differs from serial",
						f.name, bb.name, width)
				}
				for u := range sizes {
					if sizes[u] != want.TreeEdges[u] {
						t.Fatalf("%s/%s width=%d: tree size mismatch at root %d: %d vs %d",
							f.name, bb.name, width, u, sizes[u], want.TreeEdges[u])
					}
				}
			}
		}
	}
}

// TestUnionParallelZeroAlloc pins the steady-state allocation guarantee
// of the construction fan-out: a warm shared env rebuilding the same
// snapshot allocates nothing — scratches, edge marks, shard cursors and
// worker goroutines are all pooled.
func TestUnionParallelZeroAlloc(t *testing.T) {
	g := quickGraph(5, 400, 900)
	c := graph.NewCSR(g)
	builder := schedBuilders[0].b // kgreedy1
	const width = 4
	marks := graph.NewEdgeMarks(c)
	sizes := make([]int, c.N())
	run := func() {
		marks.Reset()
		unionParallelCSR(c, builder, width, marks, sizes)
	}
	run() // warm-up: allocate worker slots, scratches, park helpers
	testutil.PinAllocs(t, "warm unionParallelCSR", 10, run)
}

// TestCheckScalarWidthDeterminism pins the early-stopping verification
// fan-out: the lexicographically first violation witness — or the
// absence of one — is identical at every worker count, exact spanners,
// broken spanners and empty spanners alike.
func TestCheckScalarWidthDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	stretches := []Stretch{NewStretch(1, 0), NewStretch(2, -1), LowStretchOf(3)}
	for name, g := range verifyFamilies() {
		cg := graph.NewCSR(g)
		for hname, h := range map[string]*graph.Graph{
			"exact":  Exact(g).Graph(),
			"broken": dropEdges(Exact(g).Graph(), 0.35, rng),
			"empty":  graph.New(g.N()),
		} {
			ch := graph.NewCSR(h)
			for _, st := range stretches {
				want := checkScalarCSRWidth(cg, ch, st, 1)
				for _, width := range schedWidths()[1:] {
					got := checkScalarCSRWidth(cg, ch, st, width)
					if (want == nil) != (got == nil) {
						t.Fatalf("%s/%s %v width=%d: serial %v, parallel %v",
							name, hname, st, width, want, got)
					}
					if want != nil && *want != *got {
						t.Fatalf("%s/%s %v width=%d: witness differs: serial %+v, parallel %+v",
							name, hname, st, width, want, got)
					}
				}
			}
		}
	}
}

// TestJudgeViewsWidthDeterminism pins the batched judge fan-out: the
// lexicographically first deadline miss is identical at every width.
func TestJudgeViewsWidthDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for name, g := range verifyFamilies() {
		cg := graph.NewCSR(g)
		for hname, h := range map[string]*graph.Graph{
			"exact":  Exact(g).Graph(),
			"broken": dropEdges(Exact(g).Graph(), 0.35, rng),
			"empty":  graph.New(g.N()),
		} {
			ch := graph.NewCSR(h)
			st := NewStretch(1, 0)
			wu, wv, wdg, wok := judgeViewsWidth(cg, ch, st, 1)
			for _, width := range schedWidths()[1:] {
				gu, gv, gdg, gok := judgeViewsWidth(cg, ch, st, width)
				if wu != gu || wv != gv || wdg != gdg || wok != gok {
					t.Fatalf("%s/%s width=%d: judge witness (%d,%d,%d,%v) differs from serial (%d,%d,%d,%v)",
						name, hname, width, gu, gv, gdg, gok, wu, wv, wdg, wok)
				}
			}
		}
	}
}

// TestMeasureBatchedWidthDeterminism pins bit-identical Profile output
// — floats included — at every worker count: the per-worker
// accumulators merge order-independent sums.
func TestMeasureBatchedWidthDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for name, g := range verifyFamilies() {
		cg := graph.NewCSR(g)
		for hname, h := range map[string]*graph.Graph{
			"exact":  Exact(g).Graph(),
			"broken": dropEdges(Exact(g).Graph(), 0.5, rng),
		} {
			ch := graph.NewCSR(h)
			want := measureBatchedCSRWidth(cg, ch, 1)
			for _, width := range schedWidths()[1:] {
				got := measureBatchedCSRWidth(cg, ch, width)
				if want != got {
					t.Fatalf("%s/%s width=%d: profile %+v differs from serial %+v",
						name, hname, width, got, want)
				}
			}
		}
	}
}

// TestCheckScalarWidthZeroAlloc pins the warm scalar verification
// fan-out allocation-free on the no-violation path (a found witness
// escapes by design — the caller receives a fresh *Violation — so the
// pin runs where the guarantee holds everywhere).
func TestCheckScalarWidthZeroAlloc(t *testing.T) {
	g := quickGraph(9, 300, 700)
	cg := graph.NewCSR(g)
	st := NewStretch(1, 0)                                 // H = G: every distance matches exactly
	if v := checkScalarCSRWidth(cg, cg, st, 4); v != nil { // warm env + pool
		t.Fatalf("H = G must verify clean, got %+v", *v)
	}
	testutil.PinAllocs(t, "warm checkScalarCSRWidth", 5, func() {
		checkScalarCSRWidth(cg, cg, st, 4)
	})
}
