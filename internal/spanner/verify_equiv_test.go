package spanner

import (
	"math/rand"
	"testing"

	"remspan/internal/gen"
	"remspan/internal/geom"
	"remspan/internal/graph"
	"remspan/internal/testutil"
)

// verifyFamilies returns the generator families the batched verifier
// is pinned against, spanning the paper's workloads: geometric (UDG),
// random (ER), structured (grid, star, ring, hypercube), tree, and
// disconnected inputs.
func verifyFamilies() map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(42))
	pts := geom.UniformBox(180, 2, 4, rng)
	udg := geom.UnitDiskGraph(pts, 1)
	fams := map[string]*graph.Graph{
		"udg":       udg,
		"er":        gen.ErdosRenyi(170, 0.03, rand.New(rand.NewSource(5))),
		"grid":      gen.Grid(13, 12),
		"star":      gen.Star(150),
		"ring":      gen.Ring(140),
		"hypercube": gen.Hypercube(7),
		"tree":      gen.RandomTree(160, rand.New(rand.NewSource(6))),
	}
	// Disconnected: two ER blobs plus isolated vertices.
	disc := graph.New(200)
	a := gen.ErdosRenyi(80, 0.06, rand.New(rand.NewSource(7)))
	for _, e := range a.Edges() {
		disc.AddEdge(int(e[0]), int(e[1]))
	}
	b := gen.ErdosRenyi(90, 0.05, rand.New(rand.NewSource(8)))
	for _, e := range b.Edges() {
		disc.AddEdge(int(e[0])+85, int(e[1])+85)
	}
	fams["disconnected"] = disc
	return fams
}

// dropEdges returns a subgraph of g with roughly the given fraction of
// edges removed — a deliberately broken "spanner" for violation paths.
func dropEdges(g *graph.Graph, frac float64, rng *rand.Rand) *graph.Graph {
	h := graph.New(g.N())
	for _, e := range g.Edges() {
		if rng.Float64() >= frac {
			h.AddEdge(int(e[0]), int(e[1]))
		}
	}
	return h
}

// TestStarDecompositionIdentity pins the identity the batched engine
// rests on (see verify_batch.go): the 64-source sweep over H alone,
// star-seeded from each source's G-neighbors, reproduces
// ViewScratch.BFSCSR's per-source H_u distances exactly — on every
// generator family, for intact and broken spanners.
func TestStarDecompositionIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for name, g := range verifyFamilies() {
		n := g.N()
		cg := graph.NewCSR(g)
		for hname, h := range map[string]*graph.Graph{
			"exact":  Exact(g).Graph(),
			"broken": dropEdges(Exact(g).Graph(), 0.4, rng),
			"empty":  graph.New(n),
		} {
			ch := graph.NewCSR(h)
			bs := graph.NewBitScratch(n)
			vs := NewViewScratch(n)
			// Shuffled source order: the identity must hold for arbitrary
			// batch compositions, not just id-contiguous ones.
			perm := rng.Perm(n)
			for base := 0; base < n; base += 64 {
				count := 64
				if base+count > n {
					count = n - base
				}
				sources := make([]int32, count)
				for i := range sources {
					sources[i] = int32(perm[base+i])
				}
				SweepViewBatch(bs, cg, ch, sources)
				for i, u := range sources {
					ref := vs.BFSCSR(cg, ch, int(u))
					for v := 0; v < n; v++ {
						if got := bs.Dist(uint(i), v); got != ref[v] {
							t.Fatalf("%s/%s: d_{H_%d}(%d) = %d, scalar %d",
								name, hname, u, v, got, ref[v])
						}
					}
				}
			}
		}
	}
}

// TestCheckBatchedMatchesScalar pins full Violation equality —
// including the first-violation witness pair under the deterministic
// batch order — between the scalar reference and the batched engine.
func TestCheckBatchedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	stretches := []Stretch{
		NewStretch(1, 0), NewStretch(2, -1), NewStretch(1, 2), LowStretchOf(3),
	}
	for name, g := range verifyFamilies() {
		cg := graph.NewCSR(g)
		for hname, h := range map[string]*graph.Graph{
			"exact":  Exact(g).Graph(),
			"broken": dropEdges(Exact(g).Graph(), 0.35, rng),
			"empty":  graph.New(g.N()),
		} {
			ch := graph.NewCSR(h)
			for _, st := range stretches {
				want := checkScalarCSR(cg, ch, st)
				got := checkBatchedCSR(cg, ch, st)
				if (want == nil) != (got == nil) {
					t.Fatalf("%s/%s %v: scalar %v, batched %v", name, hname, st, want, got)
				}
				if want != nil && *want != *got {
					t.Fatalf("%s/%s %v: witness differs: scalar %+v, batched %+v",
						name, hname, st, want, got)
				}
			}
		}
	}
}

// TestMeasureProfileBatchedMatchesScalar pins bit-identical Profile
// equality: the accumulation is order-independent, so the structs —
// floats included — must match exactly.
func TestMeasureProfileBatchedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, g := range verifyFamilies() {
		cg := graph.NewCSR(g)
		for hname, h := range map[string]*graph.Graph{
			"exact":  Exact(g).Graph(),
			"two":    TwoConnecting(g).Graph(),
			"broken": dropEdges(Exact(g).Graph(), 0.5, rng),
		} {
			ch := graph.NewCSR(h)
			want := measureScalarCSR(cg, ch)
			got := measureBatchedCSR(cg, ch)
			if want != got {
				t.Fatalf("%s/%s: scalar %+v, batched %+v", name, hname, want, got)
			}
		}
	}
}

// TestStretchThresholds cross-checks the precomputed threshold table
// against Stretch.Holds on integer and fractional stretches, negative
// additive terms included.
func TestStretchThresholds(t *testing.T) {
	for _, st := range []Stretch{
		NewStretch(1, 0), NewStretch(1, 2), NewStretch(2, -1), NewStretch(3, -2),
		LowStretchOf(3), LowStretchOf(5),
		{AlphaNum: 7, AlphaDen: 5, BetaNum: -3, BetaDen: 4},
	} {
		thr := StretchThresholds(st, 60)
		for d := int64(0); d <= 60; d++ {
			for dh := int64(0); dh <= 70; dh++ {
				holds := st.Holds(d, dh)
				byThr := dh <= int64(thr[d])
				if holds != byThr {
					t.Fatalf("%v d=%d dh=%d: Holds=%v threshold=%v (thr=%d)",
						st, d, dh, holds, byThr, thr[d])
				}
			}
		}
	}
}

// TestCheckPublicDispatch exercises the public entry points across the
// batched-size threshold on a graph large enough for the batched path.
func TestCheckPublicDispatch(t *testing.T) {
	g := gen.Grid(16, 16) // n = 256 ≥ batchedMinN
	h := Exact(g).Graph()
	if v := Check(g, h, NewStretch(1, 0)); v != nil {
		t.Fatalf("exact spanner rejected: %v", v)
	}
	if got, want := MeasureProfile(g, h), MeasureProfileScalar(g, h); got != want {
		t.Fatalf("dispatched profile %+v != scalar %+v", got, want)
	}
	empty := graph.New(g.N())
	vb := Check(g, empty, NewStretch(1, 0))
	vs := CheckScalar(g, empty, NewStretch(1, 0))
	if vb == nil || vs == nil || *vb != *vs {
		t.Fatalf("dispatched witness %+v != scalar %+v", vb, vs)
	}
	if vb.DH != -1 {
		t.Fatalf("unreachable DH reported as %d, want -1", vb.DH)
	}
}

func benchVerifyInput(b *testing.B, n int) (*graph.CSR, *graph.CSR) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	pts := geom.UniformBox(n, 2, 16, rng)
	g := geom.UnitDiskGraph(pts, 1)
	h := Exact(g).Graph()
	return graph.NewCSR(g), graph.NewCSR(h)
}

func BenchmarkCheckScalar(b *testing.B) {
	cg, ch := benchVerifyInput(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := checkScalarCSR(cg, ch, NewStretch(1, 0)); v != nil {
			b.Fatal(v)
		}
	}
}

func BenchmarkCheckBatched(b *testing.B) {
	cg, ch := benchVerifyInput(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := checkBatchedCSR(cg, ch, NewStretch(1, 0)); v != nil {
			b.Fatal(v)
		}
	}
}

func BenchmarkMeasureProfileBatched(b *testing.B) {
	cg, ch := benchVerifyInput(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		measureBatchedCSR(cg, ch)
	}
}

// TestViewJudgeZeroAlloc pins the steady-state allocation guarantee of
// the full batch verification path: a warm judge runs batches without
// allocating.
func TestViewJudgeZeroAlloc(t *testing.T) {
	g := verifyFamilies()["udg"]
	cg := graph.NewCSR(g)
	ch := graph.NewCSR(Exact(g).Graph())
	thr := StretchThresholds(NewStretch(1, 0), g.N())
	order, starts := graph.BatchOrder(cg)
	j := NewViewJudge(g.N())
	miss := func(bit int, v int32, dg int32) {
		t.Fatalf("exact spanner missed deadline at bit=%d v=%d dg=%d", bit, v, dg)
	}
	run := func() {
		for b := 0; b < len(starts)-1; b++ {
			j.Run(cg, ch, order[starts[b]:starts[b+1]], thr, miss)
		}
	}
	run() // warm-up
	testutil.PinAllocs(t, "warm judge", 10, run)
}
