// Package replica implements the fault-tolerant replicated forwarding
// tier over the epoch-swapped routing.Store (DESIGN.md §3f): a single
// writer applies churn batches to the store and ships each published
// epoch — as an immutable dirty-owner row diff — to N read replicas
// through an injectable transport. Replicas apply shipments strictly
// in sequence (buffering reordered arrivals, requesting a full resync
// across gaps or after a crash) and serve NextHop/Dist/Route queries
// lock-free from their last applied epoch. A failover client routes
// queries across replicas by vertex-range affinity and epoch
// freshness, with capped exponential backoff, hedging past stalled
// replicas, stale-read SLO accounting, and a typed degraded mode —
// greedy routing on the replica's local spanner view — when no
// sufficiently fresh table is available. The deterministic
// fault-injection transport (faultinject.go) drops, delays, reorders
// and partitions shipments and crashes replicas mid-stream, so every
// recovery path is exercised by seeded, replayable chaos scenarios.
//
// Chaos runs replay bit-identically from a seed, so library code must
// stay off wall clocks, unseeded randomness, and map-ordered output.
//
//remspan:deterministic
package replica

import (
	"remspan/internal/dynamic"
	"remspan/internal/routing"
)

// ShipmentKind distinguishes incremental epoch diffs from full-state
// resyncs.
type ShipmentKind uint8

const (
	// ShipDelta carries one epoch's dirty-owner rows; applies only on
	// top of epoch Seq−1.
	ShipDelta ShipmentKind = iota
	// ShipFull carries the writer's complete state — every owner row,
	// every tree, the whole physical edge set — and applies on top of
	// anything (crash recovery, gap resync).
	ShipFull
)

// OwnerRow is one owner's shipped forwarding state: immutable copies
// of its Next/Dist rows plus its dominating tree (the replica feeds
// the tree into its local spanner mirror for degraded-mode routing).
// Rows are never mutated after assembly, so replicas of any epoch may
// share them.
type OwnerRow struct {
	Owner int32
	Next  []int32
	Dist  []int32
	Tree  [][2]int32
}

// Shipment is one immutable writer→replica state transfer. A delta
// brings a replica from epoch Seq−1 to Seq; a full shipment installs
// epoch Seq outright. Replicas and the transport never mutate one, so
// a single shipment fans out to every replica by reference.
type Shipment struct {
	Kind    ShipmentKind
	Seq     uint64           // store epoch this shipment brings a replica to
	Changes []dynamic.Change // the epoch's graph churn (delta) — replicas patch their physical mirror
	Edges   [][2]int32       // full physical edge set (full shipments only)
	Rows    []OwnerRow       // dirty owners (delta) or all owners (full)
}

// Words returns the shipment's approximate wire size in int32 words —
// the unit the distsim traffic accounting uses — so tests and benches
// can compare delta traffic against full-resync traffic.
func (s *Shipment) Words() int {
	w := 4 + 2*len(s.Changes) + 2*len(s.Edges)
	for i := range s.Rows {
		w += 1 + len(s.Rows[i].Next) + len(s.Rows[i].Dist) + 2*len(s.Rows[i].Tree)
	}
	return w
}

// Writer is the replication source: it owns the routing.Store, applies
// churn through it, and converts every published epoch into a delta
// Shipment fanned out to all replicas through the transport. Rows are
// copied out of the epoch immediately after publish — the store
// recycles its buffers once readers move on, so shipments must own
// their memory.
type Writer struct {
	st      *routing.Store
	net     Network
	nrep    int
	lastSeq uint64

	// Shipping traffic accounting (delta vs full words).
	DeltaShipments int
	DeltaWords     int64
	FullShipments  int
	FullWords      int64
}

// NewWriter wraps an existing store (epoch ≥ 1 already published) and
// fans shipments out to nrep replicas (ids 0..nrep−1) through net.
// Replicas bootstrap via a full shipment: Bootstrap ships the current
// epoch to everyone.
func NewWriter(st *routing.Store, net Network, nrep int) *Writer {
	return &Writer{st: st, net: net, nrep: nrep, lastSeq: st.Epoch().Seq()}
}

// Store returns the wrapped store (the writer-side source of truth).
func (w *Writer) Store() *routing.Store { return w.st }

// Seq returns the writer's current published epoch sequence.
func (w *Writer) Seq() uint64 { return w.st.Epoch().Seq() }

// Bootstrap ships the current full state to every replica (cold
// start; also the answer to any resync request).
func (w *Writer) Bootstrap() {
	full := w.fullShipment()
	for dst := 0; dst < w.nrep; dst++ {
		w.FullShipments++
		w.FullWords += int64(full.Words())
		w.net.Ship(dst, full)
	}
}

// ApplyBatch applies one churn batch to the store and, if a new epoch
// was published, ships its dirty-owner diff to every replica. Returns
// the number of changes that had an effect.
func (w *Writer) ApplyBatch(changes []dynamic.Change) int {
	applied := w.st.ApplyBatch(changes)
	seq := w.st.Epoch().Seq()
	if seq == w.lastSeq {
		return applied // nothing published: nothing to ship
	}
	w.lastSeq = seq
	owners := w.st.DirtyOwners()
	tables := w.st.Epoch().Tables()
	m := w.st.Maintainer()
	sh := &Shipment{
		Kind:    ShipDelta,
		Seq:     seq,
		Changes: append([]dynamic.Change(nil), changes...),
		Rows:    make([]OwnerRow, len(owners)),
	}
	for i, u := range owners {
		t := tables[u]
		sh.Rows[i] = OwnerRow{
			Owner: u,
			Next:  append([]int32(nil), t.Next...),
			Dist:  append([]int32(nil), t.Dist...),
			Tree:  append([][2]int32(nil), m.TreeOf(int(u))...),
		}
	}
	words := int64(sh.Words())
	for dst := 0; dst < w.nrep; dst++ {
		w.DeltaShipments++
		w.DeltaWords += words
		w.net.Ship(dst, sh)
	}
	return applied
}

// Resync answers a replica's resync request with a full shipment of
// the current state (through the same faulty transport — a partition
// delays recovery until it heals).
func (w *Writer) Resync(dst int) {
	full := w.fullShipment()
	w.FullShipments++
	w.FullWords += int64(full.Words())
	w.net.Ship(dst, full)
}

// fullShipment snapshots the writer's complete current state.
func (w *Writer) fullShipment() *Shipment {
	m := w.st.Maintainer()
	g := m.Graph()
	tables := w.st.Epoch().Tables()
	sh := &Shipment{
		Kind:  ShipFull,
		Seq:   w.st.Epoch().Seq(),
		Edges: g.Edges(),
		Rows:  make([]OwnerRow, g.N()),
	}
	for u := 0; u < g.N(); u++ {
		t := tables[u]
		sh.Rows[u] = OwnerRow{
			Owner: int32(u),
			Next:  append([]int32(nil), t.Next...),
			Dist:  append([]int32(nil), t.Dist...),
			Tree:  append([][2]int32(nil), m.TreeOf(u)...),
		}
	}
	return sh
}
