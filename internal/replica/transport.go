package replica

import (
	"remspan/internal/dynamic"
	"remspan/internal/routing"
)

// Network is the writer→replica shipment channel. Implementations own
// delivery timing: the deterministic fault injector (faultinject.go)
// drops, delays and partitions; a zero-fault plan is the perfect
// network.
type Network interface {
	// Ship enqueues sh for replica dst at the current transport time.
	Ship(dst int, sh *Shipment)
}

// Cluster wires one writer, its replicas and the fault-injecting
// transport into a tick-driven protocol loop. The loop itself is
// single-threaded and fully deterministic under a fixed seed and
// change stream; only the replicas' query surface is concurrent.
type Cluster struct {
	W        *Writer
	Replicas []*Replica
	Inj      *Injector
}

// NewCluster builds nrep empty replicas over st, bootstraps them with
// a full shipment through the fault plan, and delivers the first tick
// (so with a clean plan every replica starts in lockstep at the
// store's current epoch).
func NewCluster(st *routing.Store, nrep int, plan FaultPlan) *Cluster {
	n := st.Maintainer().Graph().N()
	reps := make([]*Replica, nrep)
	for i := range reps {
		reps[i] = NewReplica(i, n)
	}
	inj := NewInjector(reps, plan)
	w := NewWriter(st, inj, nrep)
	c := &Cluster{W: w, Replicas: reps, Inj: inj}
	w.Bootstrap()
	inj.Tick()
	return c
}

// Tick runs one protocol round: the writer applies the churn batch and
// ships the published diff, the transport advances one tick and
// delivers everything due, and each replica's protocol clock runs —
// any resync request is answered immediately (the answer rides the
// same faulty transport, due next tick at the earliest).
func (c *Cluster) Tick(changes []dynamic.Change) {
	c.W.ApplyBatch(changes)
	c.Inj.Tick()
	for _, r := range c.Replicas {
		if r.Tick() {
			c.W.Resync(r.ID)
		}
	}
}

// MaxLag returns the largest epoch lag any live replica currently has
// behind the writer (crashed replicas excluded; an empty live replica
// counts with the writer's full seq as its lag).
func (c *Cluster) MaxLag() uint64 {
	seq := c.W.Seq()
	var max uint64
	for _, r := range c.Replicas {
		if r.Down() {
			continue
		}
		if lag := seq - r.AppliedSeq(); lag > max {
			max = lag
		}
	}
	return max
}
