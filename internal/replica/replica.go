package replica

import (
	"sync"
	"sync/atomic"

	"remspan/internal/dynamic"
	"remspan/internal/graph"
	"remspan/internal/routing"
)

// gapPatience is how many protocol ticks a replica tolerates a missing
// sequence number (waiting for a reordered delta to arrive) before
// giving up and requesting a full resync.
const gapPatience = 3

// repState is one applied epoch on a replica: an immutable table set
// published through an atomic pointer, exactly the store's RCU
// discipline but with garbage-collected reclamation — every apply
// installs a fresh []Table header slice whose rows are immutable
// shipment-owned copies, so a query holding the previous state simply
// keeps it alive; no reader announcement is needed.
type repState struct {
	seq    uint64
	tables []routing.Table
}

// Replica is one read replica of the forwarding tier. The protocol
// side (Apply, Tick, Crash, Restart) is single-threaded — driven by
// the cluster loop — while the query side (AppliedSeq, NextHop, Dist,
// Route) is lock-free and safe for any number of concurrent callers,
// each reading whichever immutable epoch state is current when it
// loads the pointer (race-pinned by TestReplicaConcurrentQueries).
//
// Degraded-mode routing (RouteDegraded) walks the replica's own
// incrementally maintained physical-graph and spanner mirrors under a
// mutex — the rare fallback path when the table tier is too stale —
// so it never races the protocol thread patching those mirrors.
type Replica struct {
	ID int

	n     int
	state atomic.Pointer[repState] //remspan:atomic

	// Protocol state (cluster-loop-owned).
	applied uint64
	pending map[uint64]*Shipment
	gapAge  int
	wantFS  bool // full resync requested, not yet answered

	// Health flags, atomic because clients probe them concurrently
	// with the protocol thread flipping them.
	down  atomic.Bool //remspan:atomic
	stall atomic.Bool //remspan:atomic

	// Degraded-mode view (mirrorMu guards both against the protocol
	// thread; the table query path never touches them).
	mirrorMu sync.Mutex
	phys     *graph.Graph
	mirror   *routing.SpannerMirror

	// Applies counts successfully applied shipments (tests).
	Applies int
	// Resyncs counts full shipments installed (tests).
	Resyncs int
}

// NewReplica returns an empty (epoch-0) replica for an n-vertex
// network. It serves nothing until its first full shipment arrives.
func NewReplica(id, n int) *Replica {
	r := &Replica{
		ID:      id,
		n:       n,
		pending: make(map[uint64]*Shipment),
		phys:    graph.New(n),
		mirror:  routing.NewSpannerMirror(n),
	}
	r.state.Store(&repState{})
	return r
}

// AppliedSeq returns the epoch the replica currently serves (0 =
// nothing applied yet). Lock-free.
func (r *Replica) AppliedSeq() uint64 { return r.state.Load().seq }

// Down reports whether the replica is crashed (the health signal a
// client's connection attempt would observe).
func (r *Replica) Down() bool { return r.down.Load() }

// Stalled reports whether the replica's read path is fault-injected
// slow — a client models this as a per-query deadline miss.
func (r *Replica) Stalled() bool { return r.stall.Load() }

// Crash takes the replica down, wiping all replicated state (process
// restart loses the memory-resident tables). In-flight shipments
// addressed to it are dropped on arrival.
func (r *Replica) Crash() {
	r.down.Store(true)
	r.applied = 0
	r.gapAge = 0
	r.wantFS = false
	clear(r.pending)
	r.state.Store(&repState{})
	r.mirrorMu.Lock()
	r.phys = graph.New(r.n)
	r.mirror = routing.NewSpannerMirror(r.n)
	r.mirrorMu.Unlock()
}

// Restart brings a crashed replica back empty; it immediately wants a
// full resync.
func (r *Replica) Restart() {
	r.down.Store(false)
	r.wantFS = true
}

// SetStalled marks the replica's read path as fault-injected slow (or
// heals it). Queries still succeed; clients treat a stalled replica
// as missing its per-query deadline and hedge elsewhere.
func (r *Replica) SetStalled(v bool) { r.stall.Store(v) }

// Apply ingests one shipment: full shipments install outright, deltas
// apply only in exact sequence — later deltas are buffered for the
// gap to fill, earlier ones are stale duplicates and dropped. Crashed
// replicas drop everything.
func (r *Replica) Apply(sh *Shipment) {
	if r.down.Load() {
		return
	}
	if sh.Kind == ShipFull {
		if sh.Seq <= r.applied {
			return // stale resync answer: we are already past it
		}
		r.installFull(sh)
		r.drainPending()
		return
	}
	switch {
	case sh.Seq <= r.applied:
		return // duplicate or already-covered delta
	case sh.Seq == r.applied+1:
		r.applyDelta(sh)
		r.drainPending()
	default:
		r.pending[sh.Seq] = sh // reordered: hold for the gap to fill
	}
}

// Tick advances the replica's protocol clock: a persistent gap ages
// toward a resync request. Returns true when the replica wants a full
// resync from the writer this tick.
func (r *Replica) Tick() bool {
	if r.down.Load() {
		return false
	}
	if r.wantFS {
		r.wantFS = false
		return true
	}
	if len(r.pending) > 0 {
		if _, ok := r.pending[r.applied+1]; !ok {
			r.gapAge++
			if r.gapAge > gapPatience {
				r.gapAge = 0
				clear(r.pending)
				return true
			}
			return false
		}
	}
	r.gapAge = 0
	return false
}

func (r *Replica) installFull(sh *Shipment) {
	tables := make([]routing.Table, r.n)
	phys := graph.New(r.n)
	for _, e := range sh.Edges {
		phys.AddEdge(int(e[0]), int(e[1]))
	}
	mirror := routing.NewSpannerMirror(r.n)
	for i := range sh.Rows {
		row := &sh.Rows[i]
		tables[row.Owner] = routing.Table{Owner: int(row.Owner), Next: row.Next, Dist: row.Dist}
		mirror.UpdateTree(int(row.Owner), row.Tree)
	}
	r.mirrorMu.Lock()
	r.phys = phys
	r.mirror = mirror
	r.mirrorMu.Unlock()
	r.applied = sh.Seq
	r.gapAge = 0
	r.Applies++
	r.Resyncs++
	// Drop any buffered delta the full state already covers.
	for seq := range r.pending {
		if seq <= sh.Seq {
			delete(r.pending, seq)
		}
	}
	r.state.Store(&repState{seq: sh.Seq, tables: tables})
}

// applyDelta allocates by design: the previous repState is still being
// read lock-free, so each shipment lands in a fresh tables slice and
// state struct (RCU swap) — the zero-alloc contract is on the query
// path below, not here.
func (r *Replica) applyDelta(sh *Shipment) {
	cur := r.state.Load()
	tables := make([]routing.Table, r.n)
	copy(tables, cur.tables)
	for i := range sh.Rows {
		row := &sh.Rows[i]
		tables[row.Owner] = routing.Table{Owner: int(row.Owner), Next: row.Next, Dist: row.Dist}
	}
	r.mirrorMu.Lock()
	for _, c := range sh.Changes {
		switch c.Kind {
		case dynamic.AddEdge:
			r.phys.AddEdge(c.U, c.V)
		case dynamic.RemoveEdge:
			r.phys.RemoveEdge(c.U, c.V)
		}
	}
	for i := range sh.Rows {
		r.mirror.UpdateTree(int(sh.Rows[i].Owner), sh.Rows[i].Tree)
	}
	r.mirrorMu.Unlock()
	r.applied = sh.Seq
	r.Applies++
	r.state.Store(&repState{seq: sh.Seq, tables: tables})
}

func (r *Replica) drainPending() {
	for {
		sh, ok := r.pending[r.applied+1]
		if !ok {
			return
		}
		delete(r.pending, r.applied+1)
		r.applyDelta(sh)
	}
}

// NextHop returns s's next hop toward t in the replica's applied epoch
// (-1 when unreachable or nothing applied yet). Lock-free.
//
//remspan:hotpath
func (r *Replica) NextHop(s, t int) int32 {
	st := r.state.Load()
	if st.tables == nil {
		return -1
	}
	return st.tables[s].Next[t]
}

// Dist returns s's believed distance to t (graph.Unreached when
// unknown or nothing applied yet). Lock-free.
//
//remspan:hotpath
func (r *Replica) Dist(s, t int) int32 {
	st := r.state.Load()
	if st.tables == nil {
		return graph.Unreached
	}
	return st.tables[s].Dist[t]
}

// Route walks s→t through the applied epoch's tables into the
// caller-owned path buffer, returning the epoch it served from.
// Lock-free; an empty replica reports RouteUnreachable at s.
//
//remspan:hotpath
func (r *Replica) Route(s, t int, path []int32) (routing.Route, uint64) {
	st := r.state.Load()
	if st.tables == nil {
		return routing.Route{Reason: routing.RouteUnreachable, At: int32(s)}, 0
	}
	return routing.TableRouteInto(st.tables, nil, s, t, path), st.seq
}

// RouteDegraded serves s→t by greedy forwarding on the replica's own
// physical and spanner mirrors — the fallback when no sufficiently
// fresh tables exist anywhere. A successful walk is reported with
// Reason RouteDegraded: a real route, but without the table tier's
// freshness guarantee. Takes the mirror mutex (rare path; safe
// against the protocol thread, not lock-free).
func (r *Replica) RouteDegraded(scr *routing.RouteScratch, s, t int) routing.Route {
	r.mirrorMu.Lock()
	rt := scr.GreedyRoute(r.phys, r.mirror.View(), s, t)
	r.mirrorMu.Unlock()
	if rt.OK {
		rt.Reason = routing.RouteDegraded
	}
	return rt
}
