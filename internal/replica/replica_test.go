package replica

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"remspan/internal/domtree"
	"remspan/internal/dynamic"
	"remspan/internal/graph"
	"remspan/internal/mobility"
	"remspan/internal/routing"
	"remspan/internal/testutil"
)

// fixture is a live mobile network feeding a writer-side store: the
// same waypoint-fleet churn source the distsim live runs use.
type fixture struct {
	w       *mobility.Waypoint
	tr      *mobility.Tracker
	st      *routing.Store
	changes []dynamic.Change
}

func buildTree(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
	return domtree.KGreedyCSR(c, s, u, 1)
}

func newFixture(n int, degree float64, seed int64) *fixture {
	return newFixtureSpeed(n, degree, 0.02, 0.08, seed)
}

// newFixtureSpeed controls the fleet speed: slow fleets give small
// churn batches (small dirty balls → genuinely incremental deltas),
// fast fleets stress the protocol with big batches.
func newFixtureSpeed(n int, degree, minSpeed, maxSpeed float64, seed int64) *fixture {
	side := math.Sqrt(math.Pi * float64(n) / degree)
	rng := rand.New(rand.NewSource(seed))
	w := mobility.NewWaypoint(n, side, minSpeed, maxSpeed, rng)
	tr := mobility.NewTracker(w, 1.0)
	m := dynamic.New(tr.Graph(), 1, dynamic.TreeBuilder(buildTree))
	return &fixture{w: w, tr: tr, st: routing.NewStore(m)}
}

// tick advances the fleet one step and returns the churn batch (valid
// until the next tick).
func (f *fixture) tick() []dynamic.Change {
	added, removed := f.tr.Tick()
	f.changes = f.changes[:0]
	for _, p := range removed {
		f.changes = append(f.changes, dynamic.Change{Kind: dynamic.RemoveEdge, U: int(p[0]), V: int(p[1])})
	}
	for _, p := range added {
		f.changes = append(f.changes, dynamic.Change{Kind: dynamic.AddEdge, U: int(p[0]), V: int(p[1])})
	}
	return f.changes
}

// checkTyped asserts the outcome is one of the typed answers the tier
// guarantees — never a zero Route.
func checkTyped(t *testing.T, o Outcome) {
	t.Helper()
	if o.OK {
		if o.Reason != routing.RouteDelivered && o.Reason != routing.RouteDegraded {
			t.Fatalf("delivered outcome with reason %v", o.Reason)
		}
		if len(o.Path) == 0 {
			t.Fatal("delivered outcome with empty path (zero Route)")
		}
		return
	}
	switch o.Reason {
	case routing.RouteUnreachable, routing.RouteStaleLink, routing.RouteTrapped:
	default:
		t.Fatalf("failed outcome with reason %v (untyped)", o.Reason)
	}
}

// TestClusterLockstepNoFaults pins the replication protocol on a
// perfect network: after every tick each replica has applied exactly
// the writer's epoch, its tables are bit-identical to the writer's,
// and its physical mirror matches the writer's graph. Delta traffic
// must be far below re-shipping full state every epoch.
func TestClusterLockstepNoFaults(t *testing.T) {
	fix := newFixtureSpeed(400, 8, 0.003, 0.01, 21)
	c := NewCluster(fix.st, 4, FaultPlan{Seed: 1})
	for _, r := range c.Replicas {
		if r.AppliedSeq() != c.W.Seq() {
			t.Fatalf("replica %d not bootstrapped: seq %d vs writer %d", r.ID, r.AppliedSeq(), c.W.Seq())
		}
	}
	for tick := 0; tick < 30; tick++ {
		c.Tick(fix.tick())
		for _, r := range c.Replicas {
			if r.AppliedSeq() != c.W.Seq() {
				t.Fatalf("tick %d: replica %d at seq %d, writer at %d",
					tick, r.ID, r.AppliedSeq(), c.W.Seq())
			}
		}
	}
	want := fix.st.Epoch().Tables()
	for _, r := range c.Replicas {
		got := r.state.Load().tables
		for u := range want {
			if got[u].Owner != want[u].Owner {
				t.Fatalf("replica %d owner %d mismatch", r.ID, u)
			}
			for v := range want[u].Next {
				if got[u].Next[v] != want[u].Next[v] || got[u].Dist[v] != want[u].Dist[v] {
					t.Fatalf("replica %d row %d diverges at %d: next %d/%d dist %d/%d",
						r.ID, u, v, got[u].Next[v], want[u].Next[v], got[u].Dist[v], want[u].Dist[v])
				}
			}
		}
		if !r.phys.Equal(fix.st.Maintainer().Graph()) {
			t.Fatalf("replica %d physical mirror diverged", r.ID)
		}
	}
	if c.W.DeltaShipments == 0 {
		t.Fatal("no delta shipments under live churn")
	}
	deltaAvg := c.W.DeltaWords / int64(c.W.DeltaShipments)
	fullAvg := c.W.FullWords / int64(c.W.FullShipments)
	if deltaAvg*2 > fullAvg {
		t.Fatalf("delta shipments not incremental: avg %d words vs full %d", deltaAvg, fullAvg)
	}
}

// recordNet captures shipments instead of delivering them, for
// hand-sequenced delivery tests.
type recordNet struct{ got []*Shipment }

func (rn *recordNet) Ship(dst int, sh *Shipment) {
	if dst == 0 {
		rn.got = append(rn.got, sh)
	}
}

// TestReplicaReorderAndDuplicates hand-delivers a shipment stream out
// of order and with duplicates: the replica must buffer past a gap,
// drain in sequence once it fills, and ignore duplicates — ending
// bit-identical to an in-order twin.
func TestReplicaReorderAndDuplicates(t *testing.T) {
	fix := newFixture(150, 8, 22)
	rn := &recordNet{}
	w := NewWriter(fix.st, rn, 1)
	w.Bootstrap()
	for tick := 0; tick < 12; tick++ {
		w.ApplyBatch(fix.tick())
	}
	if len(rn.got) < 6 {
		t.Fatalf("need more shipments for the scramble, got %d", len(rn.got))
	}
	full, deltas := rn.got[0], rn.got[1:]

	inOrder := NewReplica(0, 150)
	inOrder.Apply(full)
	for _, sh := range deltas {
		inOrder.Apply(sh)
	}

	scrambled := NewReplica(1, 150)
	scrambled.Apply(full)
	scrambled.Apply(deltas[1]) // gap: deltas[0] missing — must buffer
	if scrambled.AppliedSeq() != full.Seq {
		t.Fatalf("applied past a gap: seq %d", scrambled.AppliedSeq())
	}
	scrambled.Apply(deltas[2]) // still buffering
	scrambled.Apply(deltas[0]) // gap fills: drain 0,1,2
	if want := deltas[2].Seq; scrambled.AppliedSeq() != want {
		t.Fatalf("drain after gap fill: seq %d, want %d", scrambled.AppliedSeq(), want)
	}
	scrambled.Apply(deltas[1]) // duplicate: no-op
	scrambled.Apply(full)      // stale full re-install is harmless (idempotent state)
	for i := 3; i < len(deltas); i++ {
		scrambled.Apply(deltas[i])
	}

	a, b := inOrder.state.Load(), scrambled.state.Load()
	if a.seq != b.seq {
		t.Fatalf("twins diverge: seq %d vs %d", a.seq, b.seq)
	}
	for u := range a.tables {
		for v := range a.tables[u].Next {
			if a.tables[u].Next[v] != b.tables[u].Next[v] {
				t.Fatalf("twins diverge at row %d col %d", u, v)
			}
		}
	}
	if !inOrder.phys.Equal(scrambled.phys) {
		t.Fatal("physical mirrors diverge after scramble")
	}
}

// TestReplicaGapResync pins the give-up path: a permanently lost delta
// leaves a gap no buffering can fill; after gapPatience ticks the
// replica asks for a full resync and a full shipment restores
// lockstep.
func TestReplicaGapResync(t *testing.T) {
	fix := newFixture(150, 8, 23)
	rn := &recordNet{}
	w := NewWriter(fix.st, rn, 1)
	w.Bootstrap()
	for tick := 0; tick < 8; tick++ {
		w.ApplyBatch(fix.tick())
	}
	full, deltas := rn.got[0], rn.got[1:]
	r := NewReplica(0, 150)
	r.Apply(full)
	// Lose deltas[0]; deliver the rest.
	for _, sh := range deltas[1:] {
		r.Apply(sh)
	}
	if r.AppliedSeq() != full.Seq {
		t.Fatalf("applied across a lost delta: %d", r.AppliedSeq())
	}
	want := 0
	for i := 0; ; i++ {
		if r.Tick() {
			want = i
			break
		}
		if i > 2*gapPatience+2 {
			t.Fatal("replica never requested resync across a permanent gap")
		}
	}
	if want < gapPatience {
		t.Fatalf("resync requested too eagerly (tick %d < patience %d): reordering would thrash", want, gapPatience)
	}
	// The writer answers with current full state.
	rn.got = rn.got[:0]
	w.Resync(0)
	r.Apply(rn.got[0])
	if r.AppliedSeq() != w.Seq() {
		t.Fatalf("resync did not restore lockstep: %d vs %d", r.AppliedSeq(), w.Seq())
	}
}

// TestCrashRestartRecovery pins crash recovery end to end on the
// cluster loop: a crashed replica wipes state and drops shipments; on
// restart it requests a full resync and is back in lockstep within a
// bounded number of ticks while churn continues.
func TestCrashRestartRecovery(t *testing.T) {
	fix := newFixture(200, 8, 24)
	c := NewCluster(fix.st, 4, FaultPlan{Seed: 2})
	victim := c.Replicas[2]
	for tick := 0; tick < 40; tick++ {
		switch tick {
		case 10:
			victim.Crash()
		case 20:
			victim.Restart()
		}
		c.Tick(fix.tick())
		if tick > 10 && tick < 20 {
			if victim.AppliedSeq() != 0 {
				t.Fatalf("tick %d: crashed replica holds state (seq %d)", tick, victim.AppliedSeq())
			}
		}
		// Recovery bound: restart at 20 requests resync in tick 20's
		// replica phase; the full shipment is due tick 21 and drains any
		// same-tick delta after it. Lockstep from tick 21 on.
		if tick >= 22 && victim.AppliedSeq() != c.W.Seq() {
			t.Fatalf("tick %d: restarted replica still behind (%d vs %d)",
				tick, victim.AppliedSeq(), c.W.Seq())
		}
	}
	if victim.Resyncs < 2 { // bootstrap + crash recovery
		t.Fatalf("expected a recovery resync, got %d", victim.Resyncs)
	}
	// Unaffected replicas never resynced past bootstrap.
	if c.Replicas[0].Resyncs != 1 {
		t.Fatalf("healthy replica resynced %d times", c.Replicas[0].Resyncs)
	}
}

// TestClientFreshNoFaults pins the happy path: on a healthy cluster
// every query is served fresh (lag 0), from the source's affinity
// replica, and agrees with the writer's own forwarding tables.
func TestClientFreshNoFaults(t *testing.T) {
	fix := newFixture(200, 8, 25)
	c := NewCluster(fix.st, 4, FaultPlan{Seed: 3})
	cl := NewClient(c, DefaultClientConfig(7))
	rng := rand.New(rand.NewSource(9))
	n := 200
	queries := 0
	for tick := 0; tick < 20; tick++ {
		c.Tick(fix.tick())
		cl.Tick()
		want := fix.st.Epoch().Tables()
		for q := 0; q < 40; q++ {
			s, d := rng.Intn(n), rng.Intn(n)
			o := cl.Route(s, d)
			queries++
			checkTyped(t, o)
			if o.Lag != 0 || o.Degraded || o.Hedged {
				t.Fatalf("healthy cluster served lag=%d degraded=%v hedged=%v", o.Lag, o.Degraded, o.Hedged)
			}
			if o.Replica != cl.affinity(s) {
				t.Fatalf("query for %d served by %d, want affinity %d", s, o.Replica, cl.affinity(s))
			}
			ref := routing.TableRoute(want, nil, s, d)
			if o.OK != ref.OK || o.Hops != ref.Hops || o.Reason != ref.Reason {
				t.Fatalf("replica answer diverges from writer: %+v vs %+v", o.Route, ref)
			}
		}
	}
	if got := cl.SLO.Served(); got != int64(queries) {
		t.Fatalf("SLO served %d, want %d", got, queries)
	}
	if cl.SLO.FreshFraction() != 1.0 || cl.SLO.Degraded != 0 || cl.SLO.Failed != 0 {
		t.Fatalf("SLO not all-fresh: %+v", cl.SLO)
	}
}

// TestClientFailoverAndBackoff pins failover economics: with a crashed
// primary, queries for its range fail over to the next replica and
// keep being served fresh, while exponential backoff keeps probes to
// the dead replica sublinear in query count.
func TestClientFailoverAndBackoff(t *testing.T) {
	fix := newFixture(200, 8, 26)
	c := NewCluster(fix.st, 4, FaultPlan{Seed: 4})
	cl := NewClient(c, DefaultClientConfig(8))
	const s = 10 // affinity replica 0 (10*4/200 = 0)
	dead := cl.affinity(s)
	c.Replicas[dead].Crash()
	queries := 0
	for tick := 0; tick < 120; tick++ {
		c.Tick(fix.tick())
		cl.Tick()
		o := cl.Route(s, (s+57)%200)
		queries++
		checkTyped(t, o)
		if o.Replica == dead {
			t.Fatalf("tick %d: served by the crashed replica", tick)
		}
		if o.Lag != 0 || o.Degraded {
			t.Fatalf("tick %d: failover served stale/degraded: %+v", tick, o)
		}
	}
	if cl.SLO.FreshFraction() != 1.0 {
		t.Fatalf("failover dented freshness: %+v", cl.SLO)
	}
	// Backoff: 120 queries over 120 ticks; with base 1 / cap 16 the
	// dead replica sees the exponential ramp (~5 probes) plus one probe
	// per ≥cap-sized window (≤ 120/16 + jitter slack).
	if cl.Probes[dead] > 25 {
		t.Fatalf("backoff not capping dead-replica probes: %d probes in %d queries",
			cl.Probes[dead], queries)
	}
	if cl.Probes[dead] < 2 {
		t.Fatalf("dead replica never reprobed: %d", cl.Probes[dead])
	}
}

// TestClientHedgesPastStalledReplica pins the per-query deadline path:
// a stalled (slow, not dead) replica is hedged past — queries still
// come back fresh from the next candidate and the hedge is counted.
func TestClientHedgesPastStalledReplica(t *testing.T) {
	fix := newFixture(200, 8, 27)
	c := NewCluster(fix.st, 4, FaultPlan{Seed: 5})
	cl := NewClient(c, DefaultClientConfig(9))
	const s = 150 // affinity 150*4/200 = 3
	slow := cl.affinity(s)
	c.Replicas[slow].SetStalled(true)
	c.Tick(fix.tick())
	cl.Tick()
	o := cl.Route(s, 3)
	checkTyped(t, o)
	if !o.Hedged || o.Replica == slow || o.Lag != 0 {
		t.Fatalf("expected fresh hedged answer from another replica: %+v", o)
	}
	if cl.SLO.Hedges == 0 {
		t.Fatal("hedge not counted")
	}
	// Without hedging the same stall is a typed failure path, not a
	// zero Route: the client breaks out and degrades or fails.
	cfg := DefaultClientConfig(10)
	cfg.Hedge = false
	cl2 := NewClient(c, cfg)
	o2 := cl2.Route(s, 3)
	checkTyped(t, o2)
	if o2.Replica == slow {
		t.Fatalf("hedge-less client served by the stalled replica: %+v", o2)
	}
}

// TestClientDegradedMode pins the last-resort path: when every replica
// lags past MaxLag (total partition under ongoing churn), queries are
// served by greedy fallback on a replica's local spanner view with the
// typed RouteDegraded reason; when every replica is crashed, queries
// fail typed. After healing, routing returns to 100% fresh within a
// bounded number of ticks.
func TestClientDegradedMode(t *testing.T) {
	fix := newFixture(200, 8, 28)
	c := NewCluster(fix.st, 4, FaultPlan{Seed: 6})
	cl := NewClient(c, DefaultClientConfig(11))
	for i := range c.Replicas {
		c.Inj.Partition(i, true)
	}
	// Churn until everyone lags past MaxLag.
	for tick := 0; tick < 12; tick++ {
		c.Tick(fix.tick())
		cl.Tick()
	}
	if c.MaxLag() <= cl.cfg.MaxLag {
		t.Fatalf("partition did not build lag: %d", c.MaxLag())
	}
	rng := rand.New(rand.NewSource(12))
	sawDelivered := false
	for q := 0; q < 60; q++ {
		o := cl.Route(rng.Intn(200), rng.Intn(200))
		checkTyped(t, o)
		if !o.Degraded {
			t.Fatalf("lagging cluster served non-degraded: %+v", o)
		}
		if o.OK {
			sawDelivered = true
			if o.Reason != routing.RouteDegraded {
				t.Fatalf("degraded delivery with reason %v", o.Reason)
			}
		}
	}
	if !sawDelivered {
		t.Fatal("degraded mode never delivered (spanner view should route most pairs)")
	}
	if cl.SLO.Degraded == 0 {
		t.Fatal("degraded queries not accounted")
	}

	// Crash everything: typed failure, never a zero Route.
	for _, r := range c.Replicas {
		r.Crash()
	}
	o := cl.Route(1, 2)
	checkTyped(t, o)
	if o.Replica != -1 || o.OK || o.Reason != routing.RouteUnreachable {
		t.Fatalf("dead cluster outcome: %+v", o)
	}
	if cl.SLO.Failed == 0 {
		t.Fatal("failed query not accounted")
	}

	// Heal: restart + heal partitions; replicas resync and the client
	// is back to fresh routing within bounded ticks.
	for i, r := range c.Replicas {
		r.Restart()
		c.Inj.Partition(i, false)
	}
	for tick := 0; tick < 3; tick++ { // restart-resync bound: request, deliver, drain
		c.Tick(fix.tick())
		cl.Tick()
	}
	if c.MaxLag() != 0 {
		t.Fatalf("replicas did not recover after heal: lag %d", c.MaxLag())
	}
	post := cl.SLO
	for q := 0; q < 40; q++ {
		o := cl.Route(rng.Intn(200), rng.Intn(200))
		checkTyped(t, o)
		if o.Lag != 0 || o.Degraded {
			t.Fatalf("post-heal query not fresh: %+v", o)
		}
	}
	if cl.SLO.Fresh-post.Fresh != 40 {
		t.Fatalf("post-heal queries not all fresh: %+v", cl.SLO)
	}
}

// TestClientSLOMatchesInjectedLag injects a known, exactly tracked
// epoch lag (one partitioned replica, MaxLag disabled) and pins the
// SLO accounting against the independently computed lag of every
// query.
func TestClientSLOMatchesInjectedLag(t *testing.T) {
	fix := newFixture(150, 8, 29)
	c := NewCluster(fix.st, 1, FaultPlan{Seed: 13})
	cfg := ClientConfig{MaxLag: 1 << 40, BackoffBase: 1, BackoffCap: 8, Seed: 14}
	cl := NewClient(c, cfg)
	c.Inj.Partition(0, true)
	frozen := c.Replicas[0].AppliedSeq()
	var wantSum int64
	var wantMax uint64
	var wantFresh int64
	for tick := 0; tick < 25; tick++ {
		c.Tick(fix.tick())
		cl.Tick()
		o := cl.Route(tick%150, (tick*7+3)%150)
		checkTyped(t, o)
		lag := c.W.Seq() - frozen
		if o.Lag != lag {
			t.Fatalf("tick %d: outcome lag %d, injected %d", tick, o.Lag, lag)
		}
		if lag == 0 {
			wantFresh++
		} else {
			wantSum += int64(lag)
			if lag > wantMax {
				wantMax = lag
			}
		}
	}
	if cl.SLO.LagSum != wantSum || cl.SLO.LagMax != wantMax || cl.SLO.Fresh != wantFresh {
		t.Fatalf("SLO accounting diverges from injected lag: sum %d/%d max %d/%d fresh %d/%d",
			cl.SLO.LagSum, wantSum, cl.SLO.LagMax, wantMax, cl.SLO.Fresh, wantFresh)
	}
	if wantSum == 0 {
		t.Fatal("scenario built no lag; nothing was pinned")
	}
}

// TestReplicaConcurrentQueries hammers the lock-free query surface
// from several goroutines while the protocol loop applies churn,
// crashes and recoveries — the -race pin for the replicated tier.
func TestReplicaConcurrentQueries(t *testing.T) {
	fix := newFixture(150, 8, 30)
	c := NewCluster(fix.st, 4, FaultPlan{Seed: 15, DropProb: 0.05, DelayProb: 0.3, DelayMax: 2})
	done := make(chan struct{})
	var wg sync.WaitGroup
	var bad atomic.Int32
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := newClient(c.Replicas, c.W.Seq, DefaultClientConfig(int64(100+id)))
			rng := rand.New(rand.NewSource(int64(id)))
			for {
				select {
				case <-done:
					return
				default:
				}
				o := cl.Route(rng.Intn(150), rng.Intn(150))
				if o.OK && len(o.Path) == 0 {
					bad.Store(1)
					return
				}
			}
		}(w)
	}
	for tick := 0; tick < 40; tick++ {
		switch tick {
		case 12:
			c.Replicas[1].Crash()
		case 20:
			c.Replicas[1].Restart()
		case 25:
			c.Replicas[3].SetStalled(true)
		case 32:
			c.Replicas[3].SetStalled(false)
		}
		c.Tick(fix.tick())
	}
	close(done)
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatal("concurrent query returned a zero Route")
	}
}

// TestReplicaQueryZeroAlloc pins the lock-free query side: once a
// replica serves an applied epoch and the caller's path buffer is
// warm, NextHop, Dist and Route allocate nothing. The apply side
// allocates by design (each shipment installs a fresh immutable
// repState — RCU); the zero-alloc contract lives entirely on the
// query path, which remspanlint's hotalloc analyzer guards statically.
func TestReplicaQueryZeroAlloc(t *testing.T) {
	fix := newFixture(120, 8, 44)
	c := NewCluster(fix.st, 2, FaultPlan{Seed: 9})
	for tick := 0; tick < 5; tick++ {
		c.Tick(fix.tick())
	}
	r := c.Replicas[0]
	if r.AppliedSeq() == 0 {
		t.Fatal("replica never applied a shipment")
	}
	rt, _ := r.Route(0, 119, make([]int32, 0, 256)) // warm the buffer
	path := rt.Path
	testutil.PinAllocs(t, "replica query path", 50, func() {
		_ = r.NextHop(3, 90)
		_ = r.Dist(7, 64)
		rt, _ := r.Route(0, 119, path[:0])
		if rt.OK {
			path = rt.Path
		}
	})
}
