package replica

import "math/rand"

// FaultPlan parameterizes the deterministic fault injector. The zero
// value is a perfect network: nothing dropped, nothing delayed. All
// randomness flows from Seed through one private rand.Rand, so a plan
// plus a change stream replays bit-identically — every chaos scenario
// is a regression test, not a flake.
type FaultPlan struct {
	Seed      int64
	DropProb  float64 // per (shipment, destination) silent loss
	DelayProb float64 // per (shipment, destination) delivery delay
	DelayMax  int     // delay of 1..DelayMax ticks (uniform); reorders across seqs
}

// inFlight is one shipment queued inside the transport.
type inFlight struct {
	due int
	dst int
	sh  *Shipment
}

// Injector is the fault-injecting transport between the writer and its
// replicas: shipments are dropped, delayed (and thereby reordered), or
// blocked by per-replica partitions, per the plan's seeded coin flips.
// Delivery is deterministic: due shipments arrive in ship order within
// a tick. Not safe for concurrent use — it lives on the cluster's
// single protocol thread.
type Injector struct {
	replicas []*Replica
	plan     FaultPlan
	rng      *rand.Rand
	now      int
	queue    []inFlight
	cut      []bool // partitioned[dst]: writer→dst shipments vanish

	// Fault accounting (tests assert against these).
	Shipped   int
	Dropped   int // coin-flip losses
	Cut       int // partition losses
	Delayed   int
	Delivered int
}

// NewInjector returns a transport over the given replicas with the
// given fault plan.
func NewInjector(replicas []*Replica, plan FaultPlan) *Injector {
	return &Injector{
		replicas: replicas,
		plan:     plan,
		rng:      rand.New(rand.NewSource(plan.Seed)),
		cut:      make([]bool, len(replicas)),
	}
}

// Ship enqueues sh for dst, subject to partition, drop and delay
// faults. Every shipment consumes the same number of coin flips
// whatever its fate, so toggling a partition does not shift the
// random sequence of unrelated shipments.
func (in *Injector) Ship(dst int, sh *Shipment) {
	in.Shipped++
	drop := in.plan.DropProb > 0 && in.rng.Float64() < in.plan.DropProb
	delay := 0
	if in.plan.DelayProb > 0 && in.rng.Float64() < in.plan.DelayProb && in.plan.DelayMax > 0 {
		delay = 1 + in.rng.Intn(in.plan.DelayMax)
	}
	if in.cut[dst] {
		in.Cut++
		return
	}
	if drop {
		in.Dropped++
		return
	}
	if delay > 0 {
		in.Delayed++
	}
	in.queue = append(in.queue, inFlight{due: in.now + delay, dst: dst, sh: sh})
}

// Partition cuts (or heals) the writer→dst link. Shipments sent while
// cut are lost, not queued — the replica recovers by resync after the
// heal, exactly like a real link coming back.
func (in *Injector) Partition(dst int, cut bool) { in.cut[dst] = cut }

// Heal zeroes the plan's background drop and delay probabilities
// (scripted partitions heal via Partition). Deterministic like every
// other injector mutation: the same plan healed at the same tick
// replays bit-identically.
func (in *Injector) Heal() {
	in.plan.DropProb = 0
	in.plan.DelayProb = 0
}

// Tick advances transport time one tick and delivers every due
// shipment in ship order.
func (in *Injector) Tick() {
	in.now++
	kept := in.queue[:0]
	for _, f := range in.queue {
		if f.due <= in.now {
			in.Delivered++
			in.replicas[f.dst].Apply(f.sh)
		} else {
			kept = append(kept, f)
		}
	}
	for i := len(kept); i < len(in.queue); i++ {
		in.queue[i] = inFlight{}
	}
	in.queue = kept
}

// Pending returns the number of shipments still in flight (delayed
// past the current tick).
func (in *Injector) Pending() int { return len(in.queue) }
