package replica

import (
	"math/bits"
	"math/rand"

	"remspan/internal/routing"
)

// ClientConfig tunes the failover client.
type ClientConfig struct {
	// MaxLag is the freshness threshold: a replica more than MaxLag
	// epochs behind the writer is lagging and skipped for table
	// routing (it remains a degraded-mode candidate).
	MaxLag uint64
	// BackoffBase and BackoffCap bound the capped exponential backoff
	// (in protocol ticks) applied to replicas that fail probes: after
	// f consecutive failures the replica is skipped for
	// min(Cap, Base·2^(f−1)) + jitter(0..Base) ticks.
	BackoffBase, BackoffCap int
	// Hedge re-issues a query to the next candidate when a replica
	// misses its per-query deadline (modeled by Replica.Stalled)
	// instead of failing the query.
	Hedge bool
	// Seed drives the backoff jitter (deterministic per client).
	Seed int64
}

// DefaultClientConfig is the tuning the chaos scenarios and benches
// run with.
func DefaultClientConfig(seed int64) ClientConfig {
	return ClientConfig{MaxLag: 2, BackoffBase: 1, BackoffCap: 16, Hedge: true, Seed: seed}
}

// Outcome is one query's typed result: the routing answer plus where
// and how fresh it was served. Every query gets one — a dead cluster
// still returns a typed RouteUnreachable, never a zero Route.
type Outcome struct {
	routing.Route
	Replica  int    // serving replica id (-1: no live replica at all)
	Lag      uint64 // served epoch's lag behind the writer
	Degraded bool   // served by greedy fallback (Reason RouteDegraded on delivery)
	Hedged   bool   // at least one candidate missed its deadline first
}

// SLOStats is the client's stale-read accounting: how fresh the epochs
// actually serving traffic were, bucketed by lag bit-length, plus the
// failure-handling counters.
type SLOStats struct {
	Fresh    int64     // served at lag 0
	LagHist  [17]int64 // LagHist[bits.Len64(lag)] for lag > 0 (bucket 16 collects the rest)
	LagSum   int64
	LagMax   uint64
	Degraded int64 // served by greedy fallback
	Failed   int64 // no live replica: typed RouteUnreachable
	Hedges   int64 // per-query deadline misses hedged past
	Backoffs int64 // probe failures that started/extended a backoff
}

func (s *SLOStats) record(lag uint64) {
	if lag == 0 {
		s.Fresh++
		return
	}
	b := bits.Len64(lag)
	if b > 16 {
		b = 16
	}
	s.LagHist[b]++
	s.LagSum += int64(lag)
	if lag > s.LagMax {
		s.LagMax = lag
	}
}

// Served returns the number of table-served queries (fresh + stale,
// excluding degraded and failed).
func (s *SLOStats) Served() int64 {
	n := s.Fresh
	for _, c := range s.LagHist {
		n += c
	}
	return n
}

// FreshFraction returns the fraction of table-served queries answered
// at lag 0 (1.0 when nothing was served).
func (s *SLOStats) FreshFraction() float64 {
	served := s.Served()
	if served == 0 {
		return 1.0
	}
	return float64(s.Fresh) / float64(served)
}

// Client is the failover query router: it spreads sources over
// replicas by contiguous vertex-range affinity, walks the candidates
// in rotation order preferring fresh epochs, backs off failed replicas
// exponentially (capped, jittered), hedges past deadline misses, and
// degrades to greedy fallback — typed RouteDegraded — when no replica
// is fresh enough, so the caller always gets a typed answer. Not safe
// for concurrent use: concurrent load runs one Client per goroutine
// over the same replicas (the replicas' query surface is lock-free)
// and merges the SLOStats afterwards.
type Client struct {
	cfg   ClientConfig
	reps  []*Replica
	seqOf func() uint64 // the writer's current epoch (freshness reference)
	nvert int

	rng   *rand.Rand
	clock int64
	fails []int
	until []int64

	scr  *routing.RouteScratch
	path []int32

	// Probes[i] counts queries that touched replica i (including
	// failed probes); tests assert backoff keeps dead-replica probes
	// sublinear in query count.
	Probes []int64
	SLO    SLOStats
}

// NewClient returns a client over the cluster's replicas, using the
// writer's published epoch as the freshness reference.
func NewClient(c *Cluster, cfg ClientConfig) *Client {
	return newClient(c.Replicas, c.W.Seq, cfg)
}

func newClient(reps []*Replica, seqOf func() uint64, cfg ClientConfig) *Client {
	if cfg.BackoffBase < 1 {
		cfg.BackoffBase = 1
	}
	if cfg.BackoffCap < cfg.BackoffBase {
		cfg.BackoffCap = cfg.BackoffBase
	}
	return &Client{
		cfg:    cfg,
		reps:   reps,
		seqOf:  seqOf,
		nvert:  reps[0].n,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		fails:  make([]int, len(reps)),
		until:  make([]int64, len(reps)),
		scr:    routing.NewRouteScratch(reps[0].n),
		path:   make([]int32, 0, 16),
		Probes: make([]int64, len(reps)),
	}
}

// Tick advances the client's logical clock (call once per protocol
// tick; backoff windows are measured in these).
func (c *Client) Tick() { c.clock++ }

// affinity returns source s's primary replica: contiguous vertex
// ranges, one per replica, so load spreads and failover order is
// deterministic (primary, then the next ranges in rotation).
func (c *Client) affinity(s int) int {
	return s * len(c.reps) / c.nvert
}

// fail records a probe failure against replica id and extends its
// backoff window: min(Cap, Base·2^(f−1)) + jitter(0..Base) ticks.
func (c *Client) fail(id int) {
	c.fails[id]++
	back := c.cfg.BackoffCap
	if f := c.fails[id] - 1; f < 30 {
		if b := c.cfg.BackoffBase << f; b < back {
			back = b
		}
	}
	c.until[id] = c.clock + int64(back) + int64(c.rng.Intn(c.cfg.BackoffBase+1))
	c.SLO.Backoffs++
}

// Route serves one s→t query through the failover policy. The
// Outcome's Path (when delivered) is client-owned, valid until the
// next call.
func (c *Client) Route(s, t int) Outcome {
	fresh := c.seqOf()
	n := len(c.reps)
	first := c.affinity(s)
	hedged := false
	bestLag, bestRep := uint64(0), -1 // least-stale live fallback candidate
	for k := 0; k < n; k++ {
		id := (first + k) % n
		if c.clock < c.until[id] {
			continue // backing off: don't even probe
		}
		r := c.reps[id]
		c.Probes[id]++
		if r.Down() {
			c.fail(id)
			continue
		}
		if r.Stalled() {
			// Per-query deadline miss: back the replica off and — under
			// hedging — re-issue to the next candidate.
			c.fail(id)
			if !c.cfg.Hedge {
				break
			}
			hedged = true
			c.SLO.Hedges++
			continue
		}
		seq := r.AppliedSeq()
		if seq == 0 {
			continue // empty (just restarted): nothing to serve from
		}
		c.fails[id] = 0
		var lag uint64
		if seq < fresh { // a concurrent publish can briefly put seq ahead
			lag = fresh - seq
		}
		if lag > c.cfg.MaxLag {
			if bestRep < 0 || lag < bestLag {
				bestLag, bestRep = lag, id
			}
			continue // lagging: fresh-routing ineligible
		}
		rt, served := r.Route(s, t, c.path)
		if rt.Path != nil {
			c.path = rt.Path
		}
		lag = 0
		if served < fresh {
			lag = fresh - served
		}
		c.SLO.record(lag)
		return Outcome{Route: rt, Replica: id, Lag: lag, Hedged: hedged}
	}
	if bestRep >= 0 {
		// Every candidate is dead, backing off, or lagging: serve from
		// the least-stale live replica's own spanner view — degraded
		// but typed, never a silent wrong answer.
		rt := c.reps[bestRep].RouteDegraded(c.scr, s, t)
		c.SLO.Degraded++
		return Outcome{Route: rt, Replica: bestRep, Lag: bestLag, Degraded: true, Hedged: hedged}
	}
	c.SLO.Failed++
	return Outcome{
		Route:   routing.Route{Reason: routing.RouteUnreachable, At: int32(s)},
		Replica: -1, Hedged: hedged,
	}
}

// MergeSLO folds other's counters into s (per-goroutine clients under
// concurrent load).
func (s *SLOStats) MergeSLO(other *SLOStats) {
	s.Fresh += other.Fresh
	for i := range s.LagHist {
		s.LagHist[i] += other.LagHist[i]
	}
	s.LagSum += other.LagSum
	if other.LagMax > s.LagMax {
		s.LagMax = other.LagMax
	}
	s.Degraded += other.Degraded
	s.Failed += other.Failed
	s.Hedges += other.Hedges
	s.Backoffs += other.Backoffs
}
