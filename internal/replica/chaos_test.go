package replica

import (
	"math/rand"
	"testing"

	"remspan/internal/routing"
)

// chaosEvent mutates the cluster at a given tick (crash, restart,
// partition, stall — the scenario script).
type chaosEvent struct {
	tick  int
	apply func(c *Cluster)
}

// chaosScenario is one seeded fault storyline: background shipment
// faults from the plan, scripted lifecycle events, and a heal tick
// after which everything is restored and convergence is asserted.
type chaosScenario struct {
	name     string
	seed     int64 // fleet + query seed
	plan     FaultPlan
	events   []chaosEvent
	healTick int // background faults stop here (scripted heals are events)
	ticks    int
}

func chaosScenarios() []chaosScenario {
	return []chaosScenario{
		{
			name: "drop10",
			seed: 41, plan: FaultPlan{Seed: 141, DropProb: 0.10},
			healTick: 30, ticks: 45,
		},
		{
			name: "delay-reorder",
			seed: 42, plan: FaultPlan{Seed: 142, DelayProb: 0.6, DelayMax: 3},
			healTick: 30, ticks: 45,
		},
		{
			name: "crash-restart",
			seed: 43, plan: FaultPlan{Seed: 143},
			events: []chaosEvent{
				{8, func(c *Cluster) { c.Replicas[1].Crash() }},
				{14, func(c *Cluster) { c.Replicas[3].Crash() }},
				{18, func(c *Cluster) { c.Replicas[1].Restart() }},
				{24, func(c *Cluster) { c.Replicas[3].Restart() }},
			},
			healTick: 25, ticks: 40,
		},
		{
			name: "partition",
			seed: 44, plan: FaultPlan{Seed: 144},
			events: []chaosEvent{
				{6, func(c *Cluster) { c.Inj.Partition(0, true) }},
				{10, func(c *Cluster) { c.Inj.Partition(2, true) }},
				{22, func(c *Cluster) { c.Inj.Partition(0, false) }},
				{24, func(c *Cluster) { c.Inj.Partition(2, false) }},
			},
			healTick: 25, ticks: 42,
		},
		{
			name: "stall-hedge",
			seed: 45, plan: FaultPlan{Seed: 145},
			events: []chaosEvent{
				{5, func(c *Cluster) { c.Replicas[0].SetStalled(true) }},
				{9, func(c *Cluster) { c.Replicas[2].SetStalled(true) }},
				{20, func(c *Cluster) { c.Replicas[0].SetStalled(false) }},
				{22, func(c *Cluster) { c.Replicas[2].SetStalled(false) }},
			},
			healTick: 23, ticks: 38,
		},
		{
			name: "kitchen-sink",
			seed: 46, plan: FaultPlan{Seed: 146, DropProb: 0.05, DelayProb: 0.3, DelayMax: 2},
			events: []chaosEvent{
				{7, func(c *Cluster) { c.Replicas[2].Crash() }},
				{11, func(c *Cluster) { c.Inj.Partition(1, true) }},
				{13, func(c *Cluster) { c.Replicas[0].SetStalled(true) }},
				{17, func(c *Cluster) { c.Replicas[2].Restart() }},
				{21, func(c *Cluster) { c.Inj.Partition(1, false) }},
				{23, func(c *Cluster) { c.Replicas[0].SetStalled(false) }},
			},
			healTick: 24, ticks: 48,
		},
	}
}

// chaosResult is everything a scenario run produces that determinism
// and convergence are asserted on.
type chaosResult struct {
	writerSeq uint64
	repSeqs   [4]uint64
	slo       SLOStats
	shipped   int
	dropped   int
	delivered int
	outcomes  int
	delivOK   int
}

// runChaos executes one scenario once and asserts the always-on
// invariants: every query typed, recovery to lag 0 and 100% fresh
// routing within the bounded window after heal.
func runChaos(t *testing.T, sc chaosScenario) chaosResult {
	t.Helper()
	fix := newFixture(200, 8, sc.seed)
	c := NewCluster(fix.st, 4, sc.plan)
	cl := NewClient(c, DefaultClientConfig(sc.seed+1000))
	qrng := rand.New(rand.NewSource(sc.seed + 2000))
	var res chaosResult
	// Recovery bound after all faults stop: a gapped replica requests a
	// resync within gapPatience+1 ticks of its next delta, the answer
	// lands a tick later, plus one tick of slack for delayed stragglers.
	recoverBy := sc.healTick + gapPatience + 3
	for tick := 0; tick < sc.ticks; tick++ {
		for _, ev := range sc.events {
			if ev.tick == tick {
				ev.apply(c)
			}
		}
		if tick == sc.healTick {
			// Background shipment faults stop: partitions and stalls are
			// healed by their scripted events; drop/delay stop here.
			c.Inj.Heal()
		}
		c.Tick(fix.tick())
		cl.Tick()
		for q := 0; q < 15; q++ {
			o := cl.Route(qrng.Intn(200), qrng.Intn(200))
			res.outcomes++
			checkTyped(t, o)
			if o.OK {
				res.delivOK++
			}
			if tick > recoverBy {
				if o.Lag != 0 || o.Degraded {
					t.Fatalf("[%s] tick %d (past recovery bound %d): lag=%d degraded=%v",
						sc.name, tick, recoverBy, o.Lag, o.Degraded)
				}
			}
		}
		if tick > recoverBy && c.MaxLag() != 0 {
			t.Fatalf("[%s] tick %d: replicas not converged after heal (lag %d)",
				sc.name, tick, c.MaxLag())
		}
	}
	if res.delivOK == 0 {
		t.Fatalf("[%s] no query ever delivered", sc.name)
	}
	res.writerSeq = c.W.Seq()
	for i, r := range c.Replicas {
		res.repSeqs[i] = r.AppliedSeq()
	}
	res.slo = cl.SLO
	res.shipped = c.Inj.Shipped
	res.dropped = c.Inj.Dropped + c.Inj.Cut
	res.delivered = c.Inj.Delivered
	return res
}

// TestChaosScenarios drives every seeded fault storyline twice and
// pins (a) the per-run invariants — typed outcomes throughout, bounded
// recovery to fresh routing after heal — and (b) bit-identical
// determinism: same seeds, same change stream, same faults → the same
// shipments, drops, SLO counters and final epochs.
func TestChaosScenarios(t *testing.T) {
	for _, sc := range chaosScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			a := runChaos(t, sc)
			b := runChaos(t, sc)
			if a != b {
				t.Fatalf("scenario not deterministic:\n first: %+v\nsecond: %+v", a, b)
			}
			switch sc.name {
			case "drop10":
				if a.dropped == 0 {
					t.Fatal("drop scenario dropped nothing")
				}
			case "delay-reorder":
				if c := a.slo; c.Served() == 0 {
					t.Fatal("no served queries under reordering")
				}
			case "stall-hedge":
				if a.slo.Hedges == 0 {
					t.Fatal("stall scenario never hedged")
				}
			case "kitchen-sink":
				if a.slo.Backoffs == 0 {
					t.Fatal("kitchen sink never backed off")
				}
			}
		})
	}
}

// TestChaosQuick is the CI smoke entry: one seeded scenario, small and
// fast, exercising drop+delay+crash+partition in one run. The full
// table runs in the regular test job; this one is what the chaos smoke
// job invokes with -run.
func TestChaosQuick(t *testing.T) {
	sc := chaosScenario{
		name: "quick",
		seed: 47, plan: FaultPlan{Seed: 147, DropProb: 0.08, DelayProb: 0.25, DelayMax: 2},
		events: []chaosEvent{
			{5, func(c *Cluster) { c.Replicas[1].Crash() }},
			{9, func(c *Cluster) { c.Inj.Partition(3, true) }},
			{12, func(c *Cluster) { c.Replicas[1].Restart() }},
			{15, func(c *Cluster) { c.Inj.Partition(3, false) }},
		},
		healTick: 16, ticks: 30,
	}
	res := runChaos(t, sc)
	if res.outcomes == 0 || res.dropped == 0 {
		t.Fatalf("quick chaos exercised nothing: %+v", res)
	}
}

// TestChaosStaleReasonSurface double-checks the one reason the table
// walk can only produce against a physical view: replica tables are
// walked unvalidated (nil view), so RouteStaleLink must never leak
// from the replica tier — staleness there is expressed as Lag /
// Degraded, not as a stale-link verdict.
func TestChaosStaleReasonSurface(t *testing.T) {
	fix := newFixture(150, 8, 48)
	c := NewCluster(fix.st, 2, FaultPlan{Seed: 148, DropProb: 0.2})
	cl := NewClient(c, DefaultClientConfig(49))
	rng := rand.New(rand.NewSource(50))
	for tick := 0; tick < 25; tick++ {
		c.Tick(fix.tick())
		cl.Tick()
		for q := 0; q < 10; q++ {
			o := cl.Route(rng.Intn(150), rng.Intn(150))
			checkTyped(t, o)
			if o.Reason == routing.RouteStaleLink {
				t.Fatalf("replica tier surfaced RouteStaleLink: %+v", o)
			}
		}
	}
}
