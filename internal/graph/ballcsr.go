package graph

import "slices"

// BallScratch extracts the radius-R "local view" of a root — the
// subgraph a RemSpan node assembles from flooded neighbor lists: every
// edge incident to a source within distance R, including the one-sided
// fringe edges to distance-(R+1) vertices — into a reusable sub-CSR.
//
// Vertex ids are remapped to a dense range 0..|members|-1 in increasing
// global-id order. The remap is monotone, so sorted adjacency stays
// sorted and every id-based tie-break of the domtree builders (heap
// order, MIS processing order) is preserved: a builder run on the
// extracted view produces exactly the tree it would produce on the full
// graph, which is the paper's locality property the distributed
// simulation exercises.
//
// All returned data is owned by the scratch and valid only until the
// next Extract. A BallScratch is not safe for concurrent use; give each
// worker its own.
type BallScratch struct {
	bfs     *BFSScratch
	localID []int32  // global → local id, valid where stamp matches epoch
	stamp   []uint32 // epoch stamps for localID/membership
	epoch   uint32
	members []int32 // local → global id, ascending
	sub     CSR     // reusable offsets/targets backing the extracted view
}

// NewBallScratch returns extraction scratch for graphs with up to n
// vertices.
func NewBallScratch(n int) *BallScratch {
	return &BallScratch{
		bfs:     NewBFSScratch(n),
		localID: make([]int32, n),
		stamp:   make([]uint32, n),
	}
}

// Extract builds the local view of root u at the given flooding radius
// over v: the sub-CSR induced by the full adjacency of every vertex
// within distance radius of u (fringe vertices keep only their edges
// back into the ball). It returns the view, u's local id, and the
// member list mapping local ids back to global ids (sorted ascending).
// Everything returned is scratch-owned and valid until the next call.
//
//remspan:hotpath
func (b *BallScratch) Extract(v View, u, radius int) (local *CSR, root int, members []int32) {
	dist, _, visited := b.bfs.BoundedView(v, u, radius)

	// Epoch wrap: re-zero at a boundary where no live epochs exist (the
	// BFSScratch union-accumulator scheme).
	if b.epoch >= 1<<31 {
		for i := range b.stamp {
			b.stamp[i] = 0
		}
		b.epoch = 0
	}
	b.epoch++
	e := b.epoch

	// Members = ball ∪ fringe. The ball comes from the bounded BFS; the
	// fringe is every unreached endpoint of a ball vertex's adjacency.
	mem := b.members[:0]
	for _, x := range visited {
		b.stamp[x] = e
		mem = append(mem, x)
	}
	for _, x := range visited {
		for _, w := range v.Neighbors(int(x)) {
			if dist[w] == Unreached && b.stamp[w] != e {
				b.stamp[w] = e
				mem = append(mem, w)
			}
		}
	}
	slices.Sort(mem)
	b.members = mem
	for i, g := range mem {
		b.localID[g] = int32(i)
	}

	// Fill the sub-CSR in local-id order. Ball vertices carry their full
	// adjacency; fringe vertices only the reverse edges into the ball.
	// Global adjacency is sorted and the remap is monotone, so every row
	// lands sorted without any per-row sort.
	offsets := b.sub.offsets[:0]
	targets := b.sub.targets[:0]
	for _, g := range mem {
		offsets = append(offsets, int32(len(targets)))
		if dist[g] != Unreached {
			for _, w := range v.Neighbors(int(g)) {
				targets = append(targets, b.localID[w])
			}
		} else {
			for _, w := range v.Neighbors(int(g)) {
				if dist[w] != Unreached {
					targets = append(targets, b.localID[w])
				}
			}
		}
	}
	offsets = append(offsets, int32(len(targets)))
	b.sub.offsets = offsets
	b.sub.targets = targets
	return &b.sub, int(b.localID[u]), mem
}
