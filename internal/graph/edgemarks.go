package graph

import "slices"

// EdgeMarks accumulates a subset of a CSR snapshot's edges as one flag
// per canonical (u < v) adjacency slot. It is the allocation-free union
// accumulator of the spanner construction pipeline: dominating-tree
// edges are always edges of the snapshot, so marking a bit replaces a
// hash-map insert, worker merges are flag-wise ORs, and the final graph
// materializes with exactly-sized, already-sorted adjacency lists.
type EdgeMarks struct {
	c     *CSR
	mark  []bool // indexed by position in c's target array; u < v slots only
	count int
}

// NewEdgeMarks returns an empty accumulator over the snapshot c.
func NewEdgeMarks(c *CSR) *EdgeMarks {
	return &EdgeMarks{c: c, mark: make([]bool, len(c.targets))}
}

// Reset clears every mark, keeping the snapshot binding and backing
// storage — the per-worker accumulators of the parallel construction
// fan-out are pooled across builds and reset per run.
func (m *EdgeMarks) Reset() {
	if m.count == 0 {
		return
	}
	clear(m.mark)
	m.count = 0
}

// Add marks edge {u, v}, which must be an edge of the snapshot.
func (m *EdgeMarks) Add(u, v int) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	lo, hi := m.c.offsets[u], m.c.offsets[u+1]
	for lo < hi {
		mid := lo + (hi-lo)/2 // overflow-safe: lo+hi can exceed int32 on huge snapshots
		if m.c.targets[mid] < int32(v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= m.c.offsets[u+1] || m.c.targets[lo] != int32(v) {
		panic("graph: EdgeMarks.Add of an edge absent from the snapshot")
	}
	if !m.mark[lo] {
		m.mark[lo] = true
		m.count++
	}
}

// AddTree marks every edge of t.
func (m *EdgeMarks) AddTree(t *Tree) {
	for _, v := range t.Nodes() {
		if p := t.Parent(int(v)); p >= 0 {
			m.Add(int(v), p)
		}
	}
}

// Compatible reports whether o indexes the same snapshot layout as m,
// so their flags can be ORed slot-for-slot. Accumulators over distinct
// CSR instances are compatible when the snapshots are bytewise equal
// (e.g. two snapshots of the same unmutated graph).
func (m *EdgeMarks) Compatible(o *EdgeMarks) bool {
	if m.c == o.c {
		return true
	}
	return slices.Equal(m.c.offsets, o.c.offsets) && slices.Equal(m.c.targets, o.c.targets)
}

// Union ORs o (an accumulator over the same snapshot) into m.
func (m *EdgeMarks) Union(o *EdgeMarks) {
	for i, b := range o.mark {
		if b && !m.mark[i] {
			m.mark[i] = true
			m.count++
		}
	}
}

// Len returns the number of marked edges.
func (m *EdgeMarks) Len() int { return m.count }

// Matches reports whether the marked edges are exactly the edges of s.
// Equal counts plus marked ⊆ s implies set equality, so one pass over
// the marks suffices; this is the real coherence check behind
// spanner.Result.Graph (a bare length comparison would accept an
// equal-sized but different edge set).
func (m *EdgeMarks) Matches(s *EdgeSet) bool {
	if m.count != s.Len() {
		return false
	}
	for u := 0; u < m.c.N(); u++ {
		for i := m.c.offsets[u]; i < m.c.offsets[u+1]; i++ {
			if m.mark[i] && int32(u) < m.c.targets[i] && !s.Has(u, int(m.c.targets[i])) {
				return false
			}
		}
	}
	return true
}

// each visits the marked edges as (u, v) pairs with u < v, in
// lexicographic order.
func (m *EdgeMarks) each(f func(u, v int32)) {
	for u := 0; u < m.c.N(); u++ {
		for i := m.c.offsets[u]; i < m.c.offsets[u+1]; i++ {
			if m.mark[i] && int32(u) < m.c.targets[i] {
				f(int32(u), m.c.targets[i])
			}
		}
	}
}

// EdgeSet converts the marks to an EdgeSet presized to the exact edge
// count.
func (m *EdgeMarks) EdgeSet() *EdgeSet {
	s := &EdgeSet{n: m.c.N(), set: make(map[uint64]struct{}, m.count)}
	m.each(func(u, v int32) {
		s.set[s.key(int(u), int(v))] = struct{}{}
	})
	return s
}

// Graph materializes the marked subset. Degrees are counted up front,
// adjacency lists are carved from one flat backing array, and CSR slot
// order keeps every list sorted — no per-insert allocation or shifting.
func (m *EdgeMarks) Graph() *Graph {
	n := m.c.N()
	deg := make([]int32, n)
	m.each(func(u, v int32) {
		deg[u]++
		deg[v]++
	})
	flat := make([]int32, 0, 2*m.count)
	adj := make([][]int32, n)
	off := 0
	for u := 0; u < n; u++ {
		adj[u] = flat[off : off : off+int(deg[u])]
		off += int(deg[u])
	}
	m.each(func(u, v int32) {
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	})
	return &Graph{adj: adj, m: m.count}
}
