package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 5, 0", g.N(), g.M())
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Errorf("vertex %d degree %d, want 0", v, g.Degree(v))
		}
	}
}

func TestAddEdgeBasic(t *testing.T) {
	g := New(4)
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) = false, want true")
	}
	if g.AddEdge(1, 0) {
		t.Fatal("duplicate reversed edge accepted")
	}
	if g.AddEdge(2, 2) {
		t.Fatal("self loop accepted")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
	if g.M() != 1 {
		t.Fatalf("m=%d, want 1", g.M())
	}
}

func TestAddEdgeKeepsAdjacencySorted(t *testing.T) {
	g := New(10)
	for _, v := range []int{7, 3, 9, 1, 5} {
		g.AddEdge(0, v)
	}
	nb := g.Neighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Fatalf("adjacency not sorted: %v", nb)
		}
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge existing = false")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge removed twice")
	}
	if g.HasEdge(0, 1) || g.M() != 1 {
		t.Fatalf("edge not removed, m=%d", g.M())
	}
	if !g.HasEdge(1, 2) {
		t.Fatal("unrelated edge lost")
	}
}

func TestDegreeAndMaxDegree(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	if g.Degree(0) != 3 {
		t.Errorf("deg(0)=%d, want 3", g.Degree(0))
	}
	if g.MaxDegree() != 3 {
		t.Errorf("maxdeg=%d, want 3", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 8.0/5.0 {
		t.Errorf("avgdeg=%v, want 1.6", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("clone aliases original")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("clone lost edge")
	}
}

func TestEdgesOrderAndCount(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("got %d edges, want 3", len(es))
	}
	want := [][2]int32{{0, 1}, {1, 3}, {2, 3}}
	for i, e := range es {
		if e != want[i] {
			t.Errorf("edge %d = %v, want %v", i, e, want[i])
		}
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(0, 4)
	g.AddEdge(1, 3)
	g.AddEdge(1, 4)
	g.AddEdge(1, 5)
	cn := g.CommonNeighbors(0, 1)
	if len(cn) != 2 || cn[0] != 3 || cn[1] != 4 {
		t.Fatalf("common = %v, want [3 4]", cn)
	}
	if got := g.CommonNeighbors(2, 5); len(got) != 0 {
		t.Fatalf("common(2,5) = %v, want empty", got)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	keep := []bool{true, true, false, true}
	s := g.InducedSubgraph(keep)
	if s.M() != 1 || !s.HasEdge(0, 1) {
		t.Fatalf("induced subgraph wrong: m=%d", s.M())
	}
}

func TestRemoveVertex(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	h := g.RemoveVertex(1)
	if h.M() != 0 {
		t.Fatalf("m=%d after removing hub, want 0", h.M())
	}
	if g.M() != 3 {
		t.Fatal("RemoveVertex mutated the original")
	}
}

func TestEqual(t *testing.T) {
	a := New(3)
	a.AddEdge(0, 1)
	b := New(3)
	b.AddEdge(0, 1)
	if !a.Equal(b) {
		t.Fatal("equal graphs reported unequal")
	}
	b.AddEdge(1, 2)
	if a.Equal(b) {
		t.Fatal("unequal graphs reported equal")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	h := g.DegreeHistogram()
	// degrees: 0:2, 1:1, 2:1, 3:0
	if h[0] != 1 || h[1] != 2 || h[2] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestFromEdgesIgnoresBadInput(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {0, 1}, {1, 1}, {1, 2}})
	if g.M() != 2 {
		t.Fatalf("m=%d, want 2", g.M())
	}
}

// Property: edge count always equals half the degree sum, HasEdge
// agrees with Edges(), under random edge insertions and deletions.
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		type op struct{ u, v int }
		present := map[op]bool{}
		for i := 0; i < 100; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if rng.Intn(3) == 0 {
				g.RemoveEdge(u, v)
				delete(present, op{u, v})
			} else {
				g.AddEdge(u, v)
				present[op{u, v}] = true
			}
		}
		if g.M() != len(present) {
			return false
		}
		degSum := 0
		for v := 0; v < n; v++ {
			degSum += g.Degree(v)
		}
		if degSum != 2*g.M() {
			return false
		}
		for e := range present {
			if !g.HasEdge(e.u, e.v) {
				return false
			}
		}
		return len(g.Edges()) == g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range vertex")
		}
	}()
	g.AddEdge(0, 5)
}

// TestSlabCloneRowIndependence pins the capacity-clipping of the slab
// rows: growing one row of a clone (or FromView materialization) must
// not clobber the next row's storage.
func TestSlabCloneRowIndependence(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	c := g.Clone()
	c.AddEdge(0, 3) // grows rows 0 and 3, adjacent slab neighbors
	if !c.HasEdge(1, 2) || !c.HasEdge(2, 3) || !c.HasEdge(0, 1) {
		t.Fatal("slab clone corrupted a neighboring row")
	}
	f := FromView(NewCSR(g))
	f.AddEdge(0, 3)
	if !f.HasEdge(1, 2) || !f.HasEdge(2, 3) || !f.HasEdge(0, 1) {
		t.Fatal("slab FromView corrupted a neighboring row")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("clone aliases original")
	}
}
