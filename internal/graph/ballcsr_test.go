package graph

import (
	"math/rand"
	"testing"

	"remspan/internal/testutil"
)

func randomBallGraph(n int, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, rng.Intn(i))
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// TestBallExtractSemantics: the extracted view must contain exactly the
// edges incident to ball(≤R) vertices, with order-preserving dense ids
// and sorted rows; fringe vertices keep only their reverse edges.
func TestBallExtractSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(30)
		g := randomBallGraph(n, rng)
		radius := 1 + rng.Intn(3)
		u := rng.Intn(n)
		b := NewBallScratch(n)
		local, root, members := b.Extract(g, u, radius)

		if members[root] != int32(u) {
			t.Fatalf("root remap broken: members[%d]=%d, want %d", root, members[root], u)
		}
		for i := 1; i < len(members); i++ {
			if members[i] <= members[i-1] {
				t.Fatalf("members not strictly ascending at %d", i)
			}
		}

		dist := BFS(g, u)
		inBall := func(v int32) bool { return dist[v] != Unreached && int(dist[v]) <= radius }

		// Expected local view: every edge incident to a ball vertex.
		want := New(n)
		g.EachEdge(func(a, bb int) {
			if inBall(int32(a)) || inBall(int32(bb)) {
				want.AddEdge(a, bb)
			}
		})
		// Check row by row through the remap.
		back := make(map[int32]int32, len(members))
		for lid, gid := range members {
			back[int32(lid)] = gid
		}
		if local.N() != len(members) {
			t.Fatalf("local N=%d, members=%d", local.N(), len(members))
		}
		seen := 0
		for lid := 0; lid < local.N(); lid++ {
			gid := members[lid]
			row := local.Neighbors(lid)
			for i := 1; i < len(row); i++ {
				if row[i] <= row[i-1] {
					t.Fatalf("row %d not sorted", lid)
				}
			}
			for _, lw := range row {
				gw := back[lw]
				if !want.HasEdge(int(gid), int(gw)) {
					t.Fatalf("extracted edge {%d,%d} not in expected view", gid, gw)
				}
				seen++
			}
		}
		if seen != 2*want.M() {
			t.Fatalf("extracted %d directed edges, want %d", seen, 2*want.M())
		}
	}
}

// TestBallExtractReuse: repeated extractions on the same scratch must
// stay correct (epoch stamping) and allocation-free once warm.
func TestBallExtractReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomBallGraph(400, rng)
	b := NewBallScratch(g.N())
	for u := 0; u < g.N(); u++ { // warm to the high-water mark
		b.Extract(g, u, 2)
	}
	testutil.PinAllocs(t, "warm extraction", 100, func() {
		b.Extract(g, 17, 2)
		b.Extract(g, 311, 2)
	})
}

// TestBallExtractIsolated: an isolated root yields the singleton view.
func TestBallExtractIsolated(t *testing.T) {
	g := New(5)
	g.AddEdge(1, 2)
	b := NewBallScratch(5)
	local, root, members := b.Extract(g, 0, 3)
	if local.N() != 1 || root != 0 || len(members) != 1 || members[0] != 0 {
		t.Fatalf("isolated extraction wrong: N=%d root=%d members=%v", local.N(), root, members)
	}
	if local.M() != 0 {
		t.Fatalf("isolated view has %d edges", local.M())
	}
}
