package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCSRMirrorsGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := New(25)
	for i := 0; i < 80; i++ {
		u, v := rng.Intn(25), rng.Intn(25)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	c := NewCSR(g)
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatalf("n=%d/%d m=%d/%d", c.N(), g.N(), c.M(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		if c.Degree(u) != g.Degree(u) {
			t.Fatalf("degree(%d)", u)
		}
		a, b := c.Neighbors(u), g.Neighbors(u)
		for i := range b {
			if a[i] != b[i] {
				t.Fatalf("neighbors(%d) differ", u)
			}
		}
	}
}

func TestCSRBFSMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		c := NewCSR(g)
		dist := make([]int32, n)
		queue := make([]int32, 0, n)
		for src := 0; src < n; src++ {
			want := BFS(g, src)
			c.BFS(src, dist, queue)
			for v := 0; v < n; v++ {
				if dist[v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRSnapshotIsolation(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := NewCSR(g)
	g.AddEdge(1, 2)
	if c.M() != 1 {
		t.Fatal("snapshot observed a later mutation")
	}
}

func TestCSREmpty(t *testing.T) {
	c := NewCSR(New(0))
	if c.N() != 0 || c.M() != 0 {
		t.Fatal("empty CSR")
	}
}

func TestCheckEdgeSlotsBoundary(t *testing.T) {
	// The guard itself is unit-tested at the boundary: 2³¹−1 slots is
	// the largest representable layout, one more must panic. The real
	// overflow cannot be materialized (it needs >1 billion edges).
	checkEdgeSlots(maxEdgeSlots) // must not panic
	checkEdgeSlots(0)
	defer func() {
		if recover() == nil {
			t.Fatal("checkEdgeSlots(maxEdgeSlots+1) did not panic")
		}
	}()
	checkEdgeSlots(maxEdgeSlots + 1)
}

func TestNewCSRGuardsOverflow(t *testing.T) {
	// NewCSR must route through the guard; exercised via the helper's
	// boundary above, here we just pin that a normal snapshot passes.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	c := NewCSR(g)
	if c.M() != 2 {
		t.Fatalf("M = %d, want 2", c.M())
	}
}
