package graph

import "fmt"

// Tree is a rooted tree over a subset of the vertices 0..n-1 of some
// host graph. It is the representation of the paper's dominating trees:
// a root plus parent pointers, with depths maintained incrementally.
type Tree struct {
	root    int32
	parent  []int32 // parent[v] = parent of v, -1 for root, NotInTree for non-members
	depth   []int32 // depth[v], -1 for non-members
	nodes   []int32 // members in insertion order (root first)
	edges   int
	pathBuf []int32 // reusable AddPath walk stack
}

// NotInTree marks vertices that are not part of a Tree.
const NotInTree = int32(-2)

// NewTree returns a tree on host-vertex universe of size n containing
// only root.
func NewTree(n, root int) *Tree {
	if root < 0 || root >= n {
		panic("graph: tree root out of range")
	}
	t := &Tree{
		root:   int32(root),
		parent: make([]int32, n),
		depth:  make([]int32, n),
	}
	for i := range t.parent {
		t.parent[i] = NotInTree
		t.depth[i] = -1
	}
	t.parent[root] = -1
	t.depth[root] = 0
	t.nodes = append(t.nodes, int32(root))
	return t
}

// Reset re-initializes t to contain only root, clearing the previous
// membership in O(previous tree size) instead of the O(n) a fresh
// NewTree pays. It is the key to allocation-free all-roots construction
// sweeps: one pooled tree per worker, reset per root.
func (t *Tree) Reset(root int) {
	if root < 0 || root >= len(t.parent) {
		panic("graph: tree root out of range")
	}
	for _, v := range t.nodes {
		t.parent[v] = NotInTree
		t.depth[v] = -1
	}
	t.nodes = t.nodes[:0]
	t.edges = 0
	t.root = int32(root)
	t.parent[root] = -1
	t.depth[root] = 0
	t.nodes = append(t.nodes, int32(root))
}

// Root returns the root vertex.
func (t *Tree) Root() int { return int(t.root) }

// Contains reports whether v is a member of the tree.
func (t *Tree) Contains(v int) bool { return t.parent[v] != NotInTree }

// Size returns the number of member vertices.
func (t *Tree) Size() int { return len(t.nodes) }

// EdgeCount returns the number of tree edges (Size()-1).
func (t *Tree) EdgeCount() int { return t.edges }

// Depth returns the depth of v, or -1 if v is not in the tree.
func (t *Tree) Depth(v int) int { return int(t.depth[v]) }

// Parent returns the parent of v, -1 for the root, and an error value
// of -2 (NotInTree) for non-members.
func (t *Tree) Parent(v int) int { return int(t.parent[v]) }

// Nodes returns the member vertices in insertion order (root first).
// The slice is shared and must not be modified.
func (t *Tree) Nodes() []int32 { return t.nodes }

// Add attaches v as a child of p. p must already be in the tree and v
// must not be.
func (t *Tree) Add(v, p int) {
	if t.parent[p] == NotInTree {
		panic(fmt.Sprintf("graph: tree parent %d not in tree", p))
	}
	if t.parent[v] != NotInTree {
		panic(fmt.Sprintf("graph: vertex %d already in tree", v))
	}
	t.parent[v] = int32(p)
	t.depth[v] = t.depth[p] + 1
	t.nodes = append(t.nodes, int32(v))
	t.edges++
}

// AddPath attaches x to the tree along the given parent array (e.g.
// from a BFS tree of the host graph rooted at t.Root()): it walks from
// x up the parent pointers until it reaches a vertex already in the
// tree, then adds the walked vertices top-down. If x is already a
// member this is a no-op.
//
// Using one shared parent array per root guarantees the union of added
// paths stays a tree and that Depth(v) equals the BFS distance.
func (t *Tree) AddPath(parents []int32, x int) {
	if t.Contains(x) {
		return
	}
	stack := t.pathBuf[:0]
	v := int32(x)
	for !t.Contains(int(v)) {
		stack = append(stack, v)
		v = parents[v]
		if v < 0 {
			panic("graph: AddPath walked past the root without joining the tree")
		}
	}
	t.pathBuf = stack
	for i := len(stack) - 1; i >= 0; i-- {
		t.Add(int(stack[i]), int(v))
		v = stack[i]
	}
}

// Edges returns the tree edges as (child, parent) pairs in insertion
// order of the child.
func (t *Tree) Edges() [][2]int32 {
	out := make([][2]int32, 0, t.edges)
	for _, v := range t.nodes {
		if p := t.parent[v]; p >= 0 {
			out = append(out, [2]int32{v, p})
		}
	}
	return out
}

// Branch returns the child of the root on the path from the root to v
// (v itself if v is a child of the root), or -1 for the root/non-members.
// Two members have internally disjoint root paths iff their branches
// differ.
func (t *Tree) Branch(v int) int {
	if !t.Contains(v) || int32(v) == t.root {
		return -1
	}
	x := int32(v)
	for t.parent[x] != t.root && t.parent[x] >= 0 {
		x = t.parent[x]
	}
	return int(x)
}

// PathToRoot returns the vertex sequence v, parent(v), ..., root.
func (t *Tree) PathToRoot(v int) []int32 {
	if !t.Contains(v) {
		return nil
	}
	var p []int32
	x := int32(v)
	for x >= 0 {
		p = append(p, x)
		x = t.parent[x]
	}
	return p
}

// Validate checks internal consistency: every member's parent chain
// reaches the root with strictly decreasing depth, and every tree edge
// exists in host (when host != nil).
func (t *Tree) Validate(host *Graph) error {
	for _, v := range t.nodes {
		p := t.parent[v]
		if v == t.root {
			if p != -1 || t.depth[v] != 0 {
				return fmt.Errorf("graph: bad root bookkeeping for %d", v)
			}
			continue
		}
		if p < 0 {
			return fmt.Errorf("graph: member %d has no parent", v)
		}
		if t.depth[v] != t.depth[p]+1 {
			return fmt.Errorf("graph: depth of %d (%d) != depth of parent %d (%d)+1",
				v, t.depth[v], p, t.depth[p])
		}
		if host != nil && !host.HasEdge(int(v), int(p)) {
			return fmt.Errorf("graph: tree edge {%d,%d} not in host graph", v, p)
		}
	}
	return nil
}
