package graph

// Components labels every vertex with a component id in [0, count) and
// returns the labels plus the component count. Ids are assigned in
// order of the smallest vertex of each component.
func Components(g *Graph) (label []int32, count int) {
	label = make([]int32, g.N())
	for i := range label {
		label[i] = -1
	}
	var queue []int32
	for s := 0; s < g.N(); s++ {
		if label[s] != -1 {
			continue
		}
		id := int32(count)
		count++
		label[s] = id
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if label[v] == -1 {
					label[v] = id
					queue = append(queue, v)
				}
			}
		}
	}
	return label, count
}

// IsConnected reports whether g is connected (true for n <= 1).
func IsConnected(g *Graph) bool {
	if g.N() <= 1 {
		return true
	}
	_, c := Components(g)
	return c == 1
}

// LargestComponent returns a keep-mask selecting the largest connected
// component (ties broken by smallest component id) and its size.
func LargestComponent(g *Graph) (keep []bool, size int) {
	label, count := Components(g)
	if count == 0 {
		return make([]bool, g.N()), 0
	}
	sizes := make([]int, count)
	for _, l := range label {
		sizes[l]++
	}
	best := 0
	for i, s := range sizes {
		if s > sizes[best] {
			best = i
		}
	}
	keep = make([]bool, g.N())
	for v, l := range label {
		if int(l) == best {
			keep[v] = true
		}
	}
	return keep, sizes[best]
}
