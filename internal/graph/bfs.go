package graph

import "slices"

// Unreached marks vertices not reached by a traversal.
const Unreached = int32(-1)

// BFS returns the distance from src to every vertex (Unreached where
// disconnected).
func BFS(g *Graph, src int) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = Unreached
	}
	queue := make([]int32, 0, g.N())
	dist[src] = 0
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == Unreached {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BFSTree returns BFS parents and distances from src. parent[src] = -1
// and parent[v] = -1 for unreachable v (distinguish via dist).
// Parents are the smallest-id neighbor at the previous level, so the
// tree is deterministic.
func BFSTree(g *Graph, src int) (parent, dist []int32) {
	dist = make([]int32, g.N())
	parent = make([]int32, g.N())
	for i := range dist {
		dist[i] = Unreached
		parent[i] = -1
	}
	queue := make([]int32, 0, g.N())
	dist[src] = 0
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == Unreached {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return parent, dist
}

// BFSScratch holds reusable buffers for bounded BFS so that repeated
// per-vertex traversals do not pay an O(n) reset each call.
type BFSScratch struct {
	dist    []int32
	parent  []int32
	queue   []int32
	touched []int32

	// Epoch-stamped accumulator for unions of bounded sweeps (the dirty
	// sets of incremental maintenance): membership is "stamp equals the
	// current epoch", so starting a new union is O(1) and accumulation
	// allocates nothing once the buffers are warm.
	unionMark  []uint32
	unionEpoch uint32
	unionList  []int32
}

// NewBFSScratch returns scratch space for graphs with up to n vertices.
func NewBFSScratch(n int) *BFSScratch {
	s := &BFSScratch{
		dist:   make([]int32, n),
		parent: make([]int32, n),
		queue:  make([]int32, 0, n),
	}
	for i := range s.dist {
		s.dist[i] = Unreached
		s.parent[i] = -1
	}
	return s
}

// Bounded runs a BFS from src limited to distance maxDist and returns
// (dist, parent, visited) views valid until the next call. dist and
// parent are full-length slices with Unreached/-1 outside the ball;
// visited lists the reached vertices in BFS order (src first).
func (s *BFSScratch) Bounded(g *Graph, src, maxDist int) (dist, parent, visited []int32) {
	return s.BoundedView(g, src, maxDist)
}

// BoundedView is Bounded over any View — the mutable graph, the
// immutable CSR snapshots of the batch pipeline and the patched
// CSRDelta of the incremental maintainer all run this one traversal.
//
//remspan:hotpath
func (s *BFSScratch) BoundedView(c View, src, maxDist int) (dist, parent, visited []int32) {
	// Reset only the vertices touched by the previous run.
	for _, v := range s.touched {
		s.dist[v] = Unreached
		s.parent[v] = -1
	}
	s.touched = s.touched[:0]
	s.queue = s.queue[:0]

	s.dist[src] = 0
	s.touched = append(s.touched, int32(src))
	s.queue = append(s.queue, int32(src))
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		if int(s.dist[u]) >= maxDist {
			continue
		}
		for _, v := range c.Neighbors(int(u)) {
			if s.dist[v] == Unreached {
				s.dist[v] = s.dist[u] + 1
				s.parent[v] = u
				s.touched = append(s.touched, v)
				s.queue = append(s.queue, v)
			}
		}
	}
	return s.dist, s.parent, s.queue
}

// ResetUnion starts a new (empty) accumulated union of bounded sweeps.
func (s *BFSScratch) ResetUnion() {
	if s.unionMark == nil {
		s.unionMark = make([]uint32, len(s.dist)) //remspan:coldpath lazy first-use init of the union stamp array
	}
	// Epoch wrap: re-zero at a boundary where no live epochs exist (the
	// same scheme as domtree.Scratch).
	if s.unionEpoch >= 1<<31 {
		for i := range s.unionMark {
			s.unionMark[i] = 0
		}
		s.unionEpoch = 0
	}
	s.unionEpoch++
	s.unionList = s.unionList[:0]
}

// UnionBounded runs a bounded BFS from src over v and adds every reached
// vertex to the union accumulated since the last ResetUnion.
//
//remspan:hotpath
func (s *BFSScratch) UnionBounded(v View, src, maxDist int) {
	_, _, visited := s.BoundedView(v, src, maxDist)
	e := s.unionEpoch
	for _, w := range visited {
		if s.unionMark[w] != e {
			s.unionMark[w] = e
			s.unionList = append(s.unionList, w)
		}
	}
}

// UnionSorted returns the accumulated union sorted ascending — a
// deterministic order regardless of how the sweeps interleaved. The
// slice is scratch-owned and valid until the next ResetUnion.
func (s *BFSScratch) UnionSorted() []int32 {
	slices.Sort(s.unionList)
	return s.unionList
}

// Eccentricity returns the maximum finite distance from src, or -1 if
// src has no reachable vertices besides itself and n > 1... it is 0 for
// a singleton component.
func Eccentricity(g *Graph, src int) int {
	dist := BFS(g, src)
	ecc := 0
	for _, d := range dist {
		if d != Unreached && int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc
}

// Diameter returns the largest eccentricity over all vertices of a
// connected graph; for disconnected graphs it is the largest finite
// distance. O(n·m).
func Diameter(g *Graph) int {
	diam := 0
	for u := 0; u < g.N(); u++ {
		if e := Eccentricity(g, u); e > diam {
			diam = e
		}
	}
	return diam
}

// AllPairsDistances returns the full distance matrix via n BFS runs.
// Intended for verification on small graphs: O(n·m) time, O(n²) space.
func AllPairsDistances(g *Graph) [][]int32 {
	d := make([][]int32, g.N())
	for u := range d {
		d[u] = BFS(g, u)
	}
	return d
}
