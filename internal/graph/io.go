package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteEdgeList writes g in a simple text format:
//
//	n m
//	u v        (one line per edge, u < v)
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var err error
	g.EachEdge(func(u, v int) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var n, m int
	if _, err := fmt.Fscanf(br, "%d %d\n", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header: %w", err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative header values %d %d", n, m)
	}
	g := New(n)
	for i := 0; i < m; i++ {
		var u, v int
		if _, err := fmt.Fscanf(br, "%d %d\n", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: bad edge line %d: %w", i, err)
		}
		if u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range", u, v)
		}
		g.AddEdge(u, v)
	}
	return g, nil
}

// DOT renders g in Graphviz format. highlight (may be nil) selects
// edges to draw bold/colored — used to overlay a spanner on its graph.
func DOT(g *Graph, name string, highlight *EdgeSet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n  node [shape=circle];\n", name)
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(&b, "  %d;\n", v)
	}
	g.EachEdge(func(u, v int) {
		if highlight != nil && highlight.Has(u, v) {
			fmt.Fprintf(&b, "  %d -- %d [color=red, penwidth=2];\n", u, v)
		} else {
			fmt.Fprintf(&b, "  %d -- %d [color=gray];\n", u, v)
		}
	})
	b.WriteString("}\n")
	return b.String()
}
