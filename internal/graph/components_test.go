package graph

import "testing"

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	label, count := Components(g)
	if count != 3 {
		t.Fatalf("count=%d, want 3", count)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Fatal("component 0 split")
	}
	if label[3] != label[4] || label[3] == label[0] {
		t.Fatal("component labels wrong")
	}
	if label[5] == label[0] || label[5] == label[3] {
		t.Fatal("isolated vertex should be its own component")
	}
}

func TestIsConnected(t *testing.T) {
	g := pathGraph(4)
	if !IsConnected(g) {
		t.Fatal("path should be connected")
	}
	g2 := New(4)
	g2.AddEdge(0, 1)
	if IsConnected(g2) {
		t.Fatal("disconnected graph reported connected")
	}
	if !IsConnected(New(1)) || !IsConnected(New(0)) {
		t.Fatal("trivial graphs should be connected")
	}
}

func TestLargestComponent(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	keep, size := LargestComponent(g)
	if size != 4 {
		t.Fatalf("size=%d, want 4", size)
	}
	for _, v := range []int{2, 3, 4, 5} {
		if !keep[v] {
			t.Fatalf("vertex %d should be kept", v)
		}
	}
	if keep[0] || keep[6] {
		t.Fatal("wrong vertices kept")
	}
}
