package graph

import (
	"fmt"
	"slices"
)

// CSRDelta is a CSR snapshot that accepts edge patches: rows of the
// base snapshot are copied on first write into per-vertex owned slices
// (with a little slack capacity) and edited in place from then on.
// Untouched vertices keep reading the contiguous base arrays.
//
// It is the substrate of snapshot-free incremental maintenance
// (internal/dynamic): a single edge toggle costs O(deg(u)+deg(v)) row
// edits instead of the O(n+m) re-snapshot a fresh NewCSR would pay, and
// after the first touch of a vertex the edits allocate nothing. Rows
// stay sorted, so every builder running on the View interface produces
// bit-identical output on a CSRDelta and on a fresh CSR of the same
// graph (asserted by TestCSRDeltaMatchesFreshCSR and the churn
// equivalence tests).
//
// A CSRDelta is not safe for concurrent mutation; concurrent reads
// without a writer are fine (the maintainer's parallel rebuild fan-out
// relies on this).
type CSRDelta struct {
	base *CSR
	over [][]int32 // nil = vertex still reads the base row
	m    int
}

// NewCSRDelta returns a patchable view over the snapshot c. The base
// snapshot is shared, not copied; it must not be mutated elsewhere
// (CSR is immutable by contract).
func NewCSRDelta(c *CSR) *CSRDelta {
	return &CSRDelta{base: c, over: make([][]int32, c.N()), m: c.M()}
}

// N returns the vertex count.
func (d *CSRDelta) N() int { return d.base.N() }

// M returns the current edge count (base edges plus applied patches).
func (d *CSRDelta) M() int { return d.m }

// row returns u's current adjacency slice.
func (d *CSRDelta) row(u int) []int32 {
	if r := d.over[u]; r != nil {
		return r
	}
	return d.base.Neighbors(u)
}

// Degree returns the degree of u.
func (d *CSRDelta) Degree(u int) int { return len(d.row(u)) }

// Neighbors returns u's sorted adjacency slice (shared, do not modify;
// valid until the next patch touching u).
func (d *CSRDelta) Neighbors(u int) []int32 { return d.row(u) }

func (d *CSRDelta) check(u int) {
	if u < 0 || u >= d.base.N() {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, d.base.N()))
	}
}

// HasEdge reports whether {u, v} is currently an edge.
func (d *CSRDelta) HasEdge(u, v int) bool {
	d.check(u)
	d.check(v)
	if u == v {
		return false
	}
	_, ok := slices.BinarySearch(d.row(u), int32(v))
	return ok
}

// own makes u's row writable: the first touch copies the base row into
// an owned slice with slack capacity so subsequent single-edge inserts
// do not allocate.
func (d *CSRDelta) own(u int) []int32 {
	if r := d.over[u]; r != nil {
		return r
	}
	b := d.base.Neighbors(u)
	r := make([]int32, len(b), len(b)+4) //remspan:coldpath copy-on-write row materialization, once per touched row per delta window
	copy(r, b)
	d.over[u] = r
	return r
}

// AddEdge patches the undirected edge {u, v} in, reporting whether it
// was new. Self loops are rejected.
func (d *CSRDelta) AddEdge(u, v int) bool {
	d.check(u)
	d.check(v)
	if u == v || d.HasEdge(u, v) {
		return false
	}
	ru, _ := insertSorted(d.own(u), int32(v))
	d.over[u] = ru
	rv, _ := insertSorted(d.own(v), int32(u))
	d.over[v] = rv
	d.m++
	return true
}

// RemoveEdge patches the undirected edge {u, v} out, reporting whether
// it was present.
func (d *CSRDelta) RemoveEdge(u, v int) bool {
	d.check(u)
	d.check(v)
	if u == v || !d.HasEdge(u, v) {
		return false
	}
	d.over[u] = removeSorted(d.own(u), int32(v))
	d.over[v] = removeSorted(d.own(v), int32(u))
	d.m--
	return true
}

// Compact folds the accumulated patches into a fresh contiguous CSR and
// returns it (the delta keeps working, now over the compact base with
// no overlays). O(n+m); call it off the hot path if a long churn run
// should shed overlay memory or restore fully contiguous reads.
func (d *CSRDelta) Compact() *CSR {
	n := d.N()
	checkEdgeSlots(2 * int64(d.m))
	c := &CSR{
		offsets: make([]int32, n+1),
		targets: make([]int32, 0, 2*d.m),
	}
	for u := 0; u < n; u++ {
		c.offsets[u] = int32(len(c.targets))
		c.targets = append(c.targets, d.row(u)...)
	}
	c.offsets[n] = int32(len(c.targets))
	d.base = c
	for i := range d.over {
		d.over[i] = nil
	}
	return c
}
