package graph

import (
	"math/rand"
	"testing"
)

func TestEdgeSetBasic(t *testing.T) {
	s := NewEdgeSet(5)
	if !s.Add(1, 2) {
		t.Fatal("Add new = false")
	}
	if s.Add(2, 1) {
		t.Fatal("Add reversed duplicate = true")
	}
	if s.Add(3, 3) {
		t.Fatal("self loop accepted")
	}
	if !s.Has(2, 1) || s.Has(0, 1) {
		t.Fatal("Has wrong")
	}
	if s.Len() != 1 {
		t.Fatalf("len=%d, want 1", s.Len())
	}
}

func TestEdgeSetGraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := New(20)
	for i := 0; i < 60; i++ {
		u, v := rng.Intn(20), rng.Intn(20)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	s := NewEdgeSet(20)
	s.AddGraph(g)
	if s.Len() != g.M() {
		t.Fatalf("edge set len %d != m %d", s.Len(), g.M())
	}
	if !s.Graph().Equal(g) {
		t.Fatal("round trip lost edges")
	}
	if !s.SubsetOf(g) {
		t.Fatal("SubsetOf self false")
	}
}

func TestEdgeSetUnionAndClone(t *testing.T) {
	a := NewEdgeSet(4)
	a.Add(0, 1)
	b := NewEdgeSet(4)
	b.Add(1, 2)
	b.Add(0, 1)
	c := a.Clone()
	a.Union(b)
	if a.Len() != 2 {
		t.Fatalf("union len=%d, want 2", a.Len())
	}
	if c.Len() != 1 {
		t.Fatal("clone affected by union")
	}
}

func TestEdgeSetEdgesSorted(t *testing.T) {
	s := NewEdgeSet(5)
	s.Add(3, 4)
	s.Add(0, 2)
	s.Add(0, 1)
	es := s.Edges()
	want := [][2]int32{{0, 1}, {0, 2}, {3, 4}}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("edges = %v", es)
		}
	}
}

func TestEdgeSetAddTree(t *testing.T) {
	g := pathGraph(4)
	parent, _ := BFSTree(g, 0)
	tr := NewTree(4, 0)
	tr.AddPath(parent, 3)
	s := NewEdgeSet(4)
	s.AddTree(tr)
	if s.Len() != 3 || !s.Has(0, 1) || !s.Has(1, 2) || !s.Has(2, 3) {
		t.Fatalf("tree edges missing: %v", s.Edges())
	}
	if !s.SubsetOf(g) {
		t.Fatal("tree edges should be subset of host")
	}
}

func TestEdgeSetEqual(t *testing.T) {
	a, b := NewEdgeSet(6), NewEdgeSet(6)
	if !a.Equal(b) {
		t.Fatal("empty sets must be equal")
	}
	a.Add(1, 2)
	a.Add(3, 4)
	b.Add(4, 3) // canonicalized
	b.Add(2, 1)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("identical sets reported unequal")
	}
	b.Add(0, 5)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("different sizes reported equal")
	}
	a.Add(0, 4) // same size, different edge
	if a.Equal(b) {
		t.Fatal("same-size different sets reported equal")
	}
}
