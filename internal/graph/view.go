package graph

// View is the read interface the spanner construction pipeline consumes:
// sorted adjacency over vertices 0..N()-1. It is satisfied by the three
// graph representations of this package —
//
//   - *Graph: the mutable adjacency-list form;
//   - *CSR: an immutable contiguous snapshot (the batch-construction
//     fast path);
//   - *CSRDelta: a CSR patched in place under edge churn (the
//     incremental-maintenance fast path; no O(n+m) re-snapshot per
//     change).
//
// The domtree builders are written against View, so one builder code
// path serves both the static and the dynamic pipelines. Neighbor
// slices returned through a View follow the same contract everywhere:
// sorted ascending, shared with the representation, not to be modified,
// and valid only until the underlying representation mutates.
type View interface {
	// N returns the vertex count.
	N() int
	// M returns the edge count.
	M() int
	// Degree returns the degree of u.
	Degree(u int) int
	// Neighbors returns u's sorted adjacency slice (shared, read-only).
	Neighbors(u int) []int32
}

var (
	_ View = (*Graph)(nil)
	_ View = (*CSR)(nil)
	_ View = (*CSRDelta)(nil)
)
