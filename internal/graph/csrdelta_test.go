package graph

import (
	"math/rand"
	"testing"

	"remspan/internal/testutil"
)

// sameView asserts v and g expose identical adjacency.
func sameView(t *testing.T, v View, g *Graph) {
	t.Helper()
	if v.N() != g.N() || v.M() != g.M() {
		t.Fatalf("shape mismatch: view (%d,%d) vs graph (%d,%d)", v.N(), v.M(), g.N(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		a, b := v.Neighbors(u), g.Neighbors(u)
		if len(a) != len(b) {
			t.Fatalf("vertex %d: degree %d vs %d", u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d: row %v vs %v", u, a, b)
			}
		}
	}
}

func TestCSRDeltaMatchesFreshCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 60
	g := New(n)
	for i := 0; i < 120; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	d := NewCSRDelta(NewCSR(g))
	sameView(t, d, g)

	for step := 0; step < 400; step++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if g.HasEdge(u, v) {
			if !d.RemoveEdge(u, v) || d.HasEdge(u, v) {
				t.Fatalf("step %d: remove {%d,%d} failed", step, u, v)
			}
			g.RemoveEdge(u, v)
		} else {
			got := d.AddEdge(u, v)
			want := g.AddEdge(u, v)
			if got != want {
				t.Fatalf("step %d: add {%d,%d} reported %v, want %v", step, u, v, got, want)
			}
		}
		if step%37 == 0 {
			sameView(t, d, g)
			// A patched delta must read exactly like a fresh snapshot.
			sameView(t, NewCSR(g), g)
		}
	}
	sameView(t, d, g)

	c := d.Compact()
	sameView(t, c, g)
	sameView(t, d, g) // delta still coherent over the compacted base

	// And it stays patchable after compaction.
	for step := 0; step < 50; step++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if g.HasEdge(u, v) {
			d.RemoveEdge(u, v)
			g.RemoveEdge(u, v)
		} else if g.AddEdge(u, v) {
			d.AddEdge(u, v)
		}
	}
	sameView(t, d, g)
}

func TestCSRDeltaNoopsAndSelfLoops(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	d := NewCSRDelta(NewCSR(g))
	if d.AddEdge(0, 1) || d.AddEdge(1, 0) {
		t.Fatal("duplicate edge accepted")
	}
	if d.AddEdge(2, 2) {
		t.Fatal("self loop accepted")
	}
	if d.RemoveEdge(0, 3) {
		t.Fatal("phantom edge removed")
	}
	if d.M() != 2 {
		t.Fatalf("m=%d", d.M())
	}
}

// A steady-state edge toggle on an already-touched vertex pair must not
// allocate — the guarantee that makes maintainer churn allocation-free.
func TestCSRDeltaToggleSteadyStateAllocs(t *testing.T) {
	g := New(1000)
	for u := 0; u < 999; u++ {
		g.AddEdge(u, u+1)
	}
	d := NewCSRDelta(NewCSR(g))
	d.AddEdge(10, 500) // warm the two rows
	d.RemoveEdge(10, 500)
	testutil.PinAllocs(t, "steady-state toggle", 100, func() {
		d.AddEdge(10, 500)
		d.RemoveEdge(10, 500)
	})
}
