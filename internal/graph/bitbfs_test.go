package graph

import (
	"math/rand"
	"testing"

	"remspan/internal/testutil"
)

// bitFamilies builds the generator families the batch engine is pinned
// against, without importing gen (which would cycle): path, ring, grid,
// star, a random sparse graph, and disconnected variants with isolated
// vertices.
func bitFamilies() map[string]*Graph {
	path := New(9)
	for i := 0; i < 8; i++ {
		path.AddEdge(i, i+1)
	}
	ring := New(70)
	for i := 0; i < 70; i++ {
		ring.AddEdge(i, (i+1)%70)
	}
	grid := New(100)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			if x+1 < 10 {
				grid.AddEdge(y*10+x, y*10+x+1)
			}
			if y+1 < 10 {
				grid.AddEdge(y*10+x, (y+1)*10+x)
			}
		}
	}
	star := New(130)
	for i := 1; i < 130; i++ {
		star.AddEdge(0, i)
	}
	rng := rand.New(rand.NewSource(11))
	er := New(150)
	for i := 0; i < 380; i++ {
		u, v := rng.Intn(150), rng.Intn(150)
		if u != v {
			er.AddEdge(u, v)
		}
	}
	// Two components plus isolated vertices 20..24.
	disc := New(25)
	for i := 0; i < 9; i++ {
		disc.AddEdge(i, i+1)
	}
	for i := 10; i < 20; i++ {
		disc.AddEdge(10+(i-10+1)%10, i)
	}
	return map[string]*Graph{
		"path": path, "ring": ring, "grid": grid, "star": star,
		"er": er, "disconnected": disc,
	}
}

func TestBitBFSMatchesScalarOnFamilies(t *testing.T) {
	for name, g := range bitFamilies() {
		n := g.N()
		c := NewCSR(g)
		s := NewBitScratch(n)
		for base := 0; base < n; base += 64 {
			count := 64
			if base+count > n {
				count = n - base
			}
			s.SweepFrom(c, base, count)
			for i := 0; i < count; i++ {
				want := BFS(g, base+i)
				for v := 0; v < n; v++ {
					if got := s.Dist(uint(i), v); got != want[v] {
						t.Fatalf("%s: dist(%d,%d) = %d, want %d", name, base+i, v, got, want[v])
					}
				}
			}
		}
	}
}

func TestBitBFSReusedScratchAcrossGraphs(t *testing.T) {
	// One scratch serves many batches over different graphs — stale
	// state from a bigger, denser batch must not leak into a sparser one.
	fams := bitFamilies()
	s := NewBitScratch(150)
	for _, name := range []string{"er", "disconnected", "path", "star"} {
		g := fams[name]
		c := NewCSR(g)
		s.SweepFrom(c, 0, min64(g.N()))
		for i := 0; i < min64(g.N()); i++ {
			ref := BFS(g, i)
			for v := 0; v < g.N(); v++ {
				if got := s.Dist(uint(i), v); got != ref[v] {
					t.Fatalf("%s after reuse: dist(%d,%d) = %d, want %d", name, i, v, got, ref[v])
				}
			}
		}
	}
}

func min64(n int) int {
	if n < 64 {
		return n
	}
	return 64
}

func TestBitBFSGenericViewMatchesCSR(t *testing.T) {
	g := bitFamilies()["grid"]
	c := NewCSR(g)
	sc := NewBitScratch(g.N())
	sg := NewBitScratch(g.N())
	sc.SweepFrom(c, 0, 64)
	sg.SweepFrom(g, 0, 64) // *Graph takes the generic View path
	for v := 0; v < g.N(); v++ {
		if sc.Visited(v) != sg.Visited(v) {
			t.Fatalf("visited mask differs at %d", v)
		}
		for i := uint(0); i < 64; i++ {
			if sc.Dist(i, v) != sg.Dist(i, v) {
				t.Fatalf("dist(%d,%d) differs between CSR and generic sweeps", i, v)
			}
		}
	}
}

// TestBitSweepZeroAlloc pins the steady-state allocation guarantee: a
// warm scratch runs batches without allocating.
func TestBitSweepZeroAlloc(t *testing.T) {
	g := bitFamilies()["er"]
	c := NewCSR(g)
	s := NewBitScratch(g.N())
	s.SweepFrom(c, 0, 64) // warm-up
	testutil.PinAllocs(t, "batch sweep", 20, func() {
		s.SweepFrom(c, 64, 64)
		s.SweepFrom(c, 0, 64)
	})
}

func BenchmarkBitSweep64(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 4096
	g := New(n)
	for i := 0; i < 4*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	c := NewCSR(g)
	s := NewBitScratch(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SweepFrom(c, (i*64)%(n-64), 64)
	}
}

func TestBatchOrderIsPartition(t *testing.T) {
	for name, g := range bitFamilies() {
		c := NewCSR(g)
		order, starts := BatchOrder(c)
		if len(order) != g.N() {
			t.Fatalf("%s: order covers %d of %d vertices", name, len(order), g.N())
		}
		seen := make([]bool, g.N())
		for _, v := range order {
			if seen[v] {
				t.Fatalf("%s: vertex %d assigned twice", name, v)
			}
			seen[v] = true
		}
		if starts[0] != 0 || int(starts[len(starts)-1]) != len(order) {
			t.Fatalf("%s: starts endpoints %v", name, starts)
		}
		for b := 0; b < len(starts)-1; b++ {
			size := starts[b+1] - starts[b]
			if size < 1 || size > 64 {
				t.Fatalf("%s: batch %d has %d sources", name, b, size)
			}
		}
		// Determinism: a second run must produce the identical partition.
		order2, starts2 := BatchOrder(c)
		for i := range order {
			if order[i] != order2[i] {
				t.Fatalf("%s: order not deterministic at %d", name, i)
			}
		}
		for i := range starts {
			if starts[i] != starts2[i] {
				t.Fatalf("%s: starts not deterministic at %d", name, i)
			}
		}
	}
}

func TestSweepSourcesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for name, g := range bitFamilies() {
		c := NewCSR(g)
		s := NewBitScratch(g.N())
		perm := rng.Perm(g.N())
		sources := make([]int32, min64(g.N()))
		for i := range sources {
			sources[i] = int32(perm[i])
		}
		s.SweepSources(c, sources)
		for i, u := range sources {
			want := BFS(g, int(u))
			for v := 0; v < g.N(); v++ {
				if got := s.Dist(uint(i), v); got != want[v] {
					t.Fatalf("%s: dist(%d,%d) = %d, want %d", name, u, v, got, want[v])
				}
			}
		}
	}
}
