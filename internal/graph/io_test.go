package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := New(15)
	for i := 0; i < 40; i++ {
		u, v := rng.Intn(15), rng.Intn(15)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",
		"2\n",
		"2 1\n0 5\n",
		"-1 0\n",
		"3 2\n0 1\n",
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q: expected error", c)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	hl := NewEdgeSet(3)
	hl.Add(0, 1)
	dot := DOT(g, "test", hl)
	if !strings.Contains(dot, "0 -- 1 [color=red") {
		t.Error("highlighted edge not red")
	}
	if !strings.Contains(dot, "1 -- 2 [color=gray") {
		t.Error("plain edge not gray")
	}
	if !strings.Contains(dot, `graph "test"`) {
		t.Error("missing graph name")
	}
	// nil highlight must not crash
	_ = DOT(g, "plain", nil)
}
