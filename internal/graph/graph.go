// Package graph provides the static unweighted graph substrate used by
// every other package in this module: adjacency-list graphs, BFS
// traversals, edge sets, rooted trees and basic I/O.
//
// Graphs are simple (no self loops, no parallel edges) and undirected.
// Vertices are the integers 0..N()-1. Adjacency lists are kept sorted
// at all times so that neighbor queries are O(log deg) and iteration is
// deterministic.
package graph

import (
	"fmt"
)

// Graph is a simple undirected graph over vertices 0..n-1.
// The zero value is not usable; call New.
type Graph struct {
	adj [][]int32
	m   int
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{adj: make([][]int32, n)}
}

// FromEdges builds a graph on n vertices from an edge list.
// Duplicate edges and self loops are ignored.
func FromEdges(n int, edges [][2]int) *Graph {
	g := New(n)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// FromView materializes a View as a mutable Graph. A *Graph input is
// returned as-is (no copy); CSR/CSRDelta inputs are rebuilt row by row.
func FromView(v View) *Graph {
	if g, ok := v.(*Graph); ok {
		return g
	}
	n := v.N()
	g := &Graph{adj: make([][]int32, n), m: v.M()}
	// One slab for all rows — at n=1M, per-row allocations dominate the
	// build and fragment the heap. Rows are capacity-clipped, so a later
	// AddEdge reallocates only its own row.
	flat := make([]int32, 0, 2*g.m)
	for u := 0; u < n; u++ {
		off := len(flat)
		flat = append(flat, v.Neighbors(u)...)
		g.adj[u] = flat[off:len(flat):len(flat)]
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

func (g *Graph) check(u int) {
	if u < 0 || u >= len(g.adj) {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, len(g.adj)))
	}
}

// searchGE returns the least index i with s[i] >= v (len(s) if none).
// It is sort.Search with the predicate open-coded: the closure form
// captures s and allocates, which the edge-maintenance hot paths
// (AddEdge/RemoveEdge/HasEdge under dynamic update batches) cannot
// afford.
func searchGE(s []int32, v int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insertSorted inserts v into the sorted slice s if absent, reporting
// whether an insertion happened.
func insertSorted(s []int32, v int32) ([]int32, bool) {
	i := searchGE(s, v)
	if i < len(s) && s[i] == v {
		return s, false
	}
	s = append(s, 0) //remspan:coldpath amortized adjacency growth on edge insert
	copy(s[i+1:], s[i:])
	s[i] = v
	return s, true
}

// AddEdge adds the undirected edge {u, v}, reporting whether it was new.
// Self loops are rejected (returns false).
func (g *Graph) AddEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	au, added := insertSorted(g.adj[u], int32(v))
	if !added {
		return false
	}
	g.adj[u] = au
	g.adj[v], _ = insertSorted(g.adj[v], int32(u))
	g.m++
	return true
}

// RemoveEdge removes the undirected edge {u, v}, reporting whether it
// was present.
func (g *Graph) RemoveEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if !g.HasEdge(u, v) {
		return false
	}
	g.adj[u] = removeSorted(g.adj[u], int32(v))
	g.adj[v] = removeSorted(g.adj[v], int32(u))
	g.m--
	return true
}

func removeSorted(s []int32, v int32) []int32 {
	i := searchGE(s, v)
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	s := g.adj[u]
	i := searchGE(s, int32(v))
	return i < len(s) && s[i] == int32(v)
}

// Neighbors returns the sorted adjacency list of u.
// The returned slice is shared with the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int32 {
	g.check(u)
	return g.adj[u]
}

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// MaxDegree returns the maximum degree over all vertices (0 for an
// empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// AvgDegree returns the average degree 2m/n (0 when n == 0).
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.adj))
}

// Clone returns a deep copy of g. Rows are carved from one slab
// (capacity-clipped, so mutating one row never clobbers a neighbor's)
// — per-row allocations dominate cloning at n=1M.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]int32, len(g.adj)), m: g.m}
	flat := make([]int32, 0, 2*g.m)
	for i, a := range g.adj {
		off := len(flat)
		flat = append(flat, a...)
		c.adj[i] = flat[off:len(flat):len(flat)]
	}
	return c
}

// Edges returns all edges as pairs (u, v) with u < v, sorted
// lexicographically.
func (g *Graph) Edges() [][2]int32 {
	out := make([][2]int32, 0, g.m)
	for u, a := range g.adj {
		for _, v := range a {
			if int32(u) < v {
				out = append(out, [2]int32{int32(u), v})
			}
		}
	}
	return out
}

// EachEdge calls f once per edge with u < v, in lexicographic order.
func (g *Graph) EachEdge(f func(u, v int)) {
	for u, a := range g.adj {
		for _, v := range a {
			if int32(u) < v {
				f(u, int(v))
			}
		}
	}
}

// CommonNeighbors returns the sorted intersection N(u) ∩ N(v).
func (g *Graph) CommonNeighbors(u, v int) []int32 {
	g.check(u)
	g.check(v)
	a, b := g.adj[u], g.adj[v]
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// InducedSubgraph returns the subgraph induced by keep (keep[v] true
// means v stays) on the same vertex ids; dropped vertices become
// isolated.
func (g *Graph) InducedSubgraph(keep []bool) *Graph {
	if len(keep) != len(g.adj) {
		panic("graph: keep mask length mismatch")
	}
	s := New(len(g.adj))
	g.EachEdge(func(u, v int) {
		if keep[u] && keep[v] {
			s.AddEdge(u, v)
		}
	})
	return s
}

// RemoveVertex returns a copy of g with all edges incident to x
// removed (x stays as an isolated vertex, preserving ids).
func (g *Graph) RemoveVertex(x int) *Graph {
	g.check(x)
	c := g.Clone()
	for _, v := range append([]int32(nil), c.adj[x]...) {
		c.RemoveEdge(x, int(v))
	}
	return c
}

// Equal reports whether g and h have identical vertex and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for u := range g.adj {
		a, b := g.adj[u], h.adj[u]
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// DegreeHistogram returns h where h[d] is the number of vertices with
// degree d; len(h) == MaxDegree()+1 (empty for n == 0).
func (g *Graph) DegreeHistogram() []int {
	if len(g.adj) == 0 {
		return nil
	}
	h := make([]int, g.MaxDegree()+1)
	for _, a := range g.adj {
		h[len(a)]++
	}
	return h
}
