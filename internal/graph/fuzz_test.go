package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList ensures the parser never panics and that anything it
// accepts round-trips through WriteEdgeList.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("3 2\n0 1\n1 2\n")
	f.Add("0 0\n")
	f.Add("5 1\n4 0\n")
	f.Add("2 1\n0 1\n0 1\n")
	f.Add("1 0")
	f.Add("-3 -7\n")
	f.Add("3 2\n0 1\n")
	f.Add("huge nonsense")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if !g.Equal(g2) {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzEdgeSetKeys ensures the packed edge-set key is collision-free
// over its domain.
func FuzzEdgeSetKeys(f *testing.F) {
	f.Add(uint16(0), uint16(1), uint16(2), uint16(3))
	f.Fuzz(func(t *testing.T, a, b, c, d uint16) {
		n := 1 << 16
		s := NewEdgeSet(n)
		u1, v1 := int(a), int(b)
		u2, v2 := int(c), int(d)
		if u1 == v1 || u2 == v2 {
			return
		}
		s.Add(u1, v1)
		norm := func(x, y int) (int, int) {
			if x > y {
				return y, x
			}
			return x, y
		}
		p1a, p1b := norm(u1, v1)
		p2a, p2b := norm(u2, v2)
		samePair := p1a == p2a && p1b == p2b
		if s.Has(u2, v2) != samePair {
			t.Fatalf("collision: {%d,%d} vs {%d,%d}", u1, v1, u2, v2)
		}
	})
}
