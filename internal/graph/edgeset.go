package graph

import "sort"

// EdgeSet is a set of undirected edges over vertices 0..n-1, used to
// accumulate spanner edges (e.g. unions of dominating trees) before
// materializing a Graph.
type EdgeSet struct {
	n   int
	set map[uint64]struct{}
}

// NewEdgeSet returns an empty edge set over n vertices.
func NewEdgeSet(n int) *EdgeSet {
	return &EdgeSet{n: n, set: make(map[uint64]struct{})}
}

// NewEdgeSetFromGraph returns the edge set of g.
func NewEdgeSetFromGraph(g *Graph) *EdgeSet {
	s := NewEdgeSet(g.N())
	s.AddGraph(g)
	return s
}

func (s *EdgeSet) key(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// N returns the vertex count the set was created with.
func (s *EdgeSet) N() int { return s.n }

// Len returns the number of edges in the set.
func (s *EdgeSet) Len() int { return len(s.set) }

// Add inserts edge {u, v}, reporting whether it was new. Self loops are
// rejected.
func (s *EdgeSet) Add(u, v int) bool {
	if u == v {
		return false
	}
	if u < 0 || v < 0 || u >= s.n || v >= s.n {
		panic("graph: edge endpoint out of range")
	}
	k := s.key(u, v)
	if _, ok := s.set[k]; ok {
		return false
	}
	s.set[k] = struct{}{}
	return true
}

// Has reports whether {u, v} is in the set.
func (s *EdgeSet) Has(u, v int) bool {
	if u == v {
		return false
	}
	_, ok := s.set[s.key(u, v)]
	return ok
}

// AddGraph inserts every edge of g.
func (s *EdgeSet) AddGraph(g *Graph) {
	g.EachEdge(func(u, v int) { s.Add(u, v) })
}

// AddTree inserts every edge of t. It walks the member list directly so
// the per-root merge in construction sweeps does not materialize an
// intermediate edge slice.
func (s *EdgeSet) AddTree(t *Tree) {
	for _, v := range t.Nodes() {
		if p := t.Parent(int(v)); p >= 0 {
			s.Add(int(v), p)
		}
	}
}

// Union inserts every edge of o into s.
func (s *EdgeSet) Union(o *EdgeSet) {
	for k := range o.set {
		s.set[k] = struct{}{}
	}
}

// Edges returns the edges sorted lexicographically with u < v.
func (s *EdgeSet) Edges() [][2]int32 {
	out := make([][2]int32, 0, len(s.set))
	for k := range s.set {
		out = append(out, [2]int32{int32(k >> 32), int32(uint32(k))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Graph materializes the edge set as a Graph on n vertices.
func (s *EdgeSet) Graph() *Graph {
	g := New(s.n)
	for k := range s.set {
		g.AddEdge(int(k>>32), int(uint32(k)))
	}
	return g
}

// Clone returns a deep copy of the set.
func (s *EdgeSet) Clone() *EdgeSet {
	c := NewEdgeSet(s.n)
	for k := range s.set {
		c.set[k] = struct{}{}
	}
	return c
}

// Equal reports whether s and o contain exactly the same edges —
// without materializing or sorting either side's edge list (the
// element-wise comparison every equivalence pin needs).
func (s *EdgeSet) Equal(o *EdgeSet) bool {
	if len(s.set) != len(o.set) {
		return false
	}
	for k := range s.set {
		if _, ok := o.set[k]; !ok {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every edge of s is an edge of g.
func (s *EdgeSet) SubsetOf(g *Graph) bool {
	for k := range s.set {
		if !g.HasEdge(int(k>>32), int(uint32(k))) {
			return false
		}
	}
	return true
}
