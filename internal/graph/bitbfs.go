package graph

import (
	"math/bits"
	"slices"
)

// BitScratch is a word-parallel batched BFS engine: up to 64 sources
// traverse the graph in one sweep, with source i owning bit i of a
// per-vertex uint64 mask. One mask-OR per edge replaces 64 scalar
// queue pushes, so an all-pairs verification pass costs O(m·n/64)
// word operations instead of O(m·n) cache-missing scalar steps.
//
// A batch proceeds level-synchronously: each vertex carries a visited
// mask (bits that have ever reached it), a frontier mask (bits whose
// wavefront sits on it at the current level) and a next mask (bits
// arriving for the following level). A vertex's distance from source i
// is the level at which bit i first set — recorded into the 64-entry
// row dist[v·64 .. v·64+63] the moment the bit turns on. Rows are only
// meaningful under their visited mask, so they never need clearing.
//
// The three masks are interleaved into one 32-byte-aligned stripe per
// vertex (words[4v..4v+2], one word of padding) so the random access
// an edge visit performs lands on a single cache line; the dist rows
// stay separate — they are written once per (source, vertex) pair and
// read back sequentially by the verification scans.
//
// All state resets through touched lists (the same discipline as
// domtree.Scratch and BFSScratch): Begin re-zeroes only the vertices
// the previous batch reached, and every slice is pre-sized to n, so a
// warm scratch runs an arbitrary number of batches with zero
// allocations (pinned by TestBitSweepZeroAlloc).
//
// A BitScratch is not safe for concurrent use; verification pools give
// each worker its own.
type BitScratch struct {
	stripes []stripe // per-vertex mask stripe (one cache-line half)
	dist    []int32  // dist[v<<6|i] = level bit i first reached v

	cur, nxt []int32 // frontier vertex lists (current / next level)
	arrivals []int32 // vertices with next != 0 during one expansion
	touched  []int32 // vertices with visited != 0 this batch
	sortBuf  []int32 // radix swap space for sorted-frontier sweeps (lazy)

	// visit, when set (SweepSourcesVisit), streams first-visit events.
	// On a masks-only scratch that skips the O(n·64) row-write traffic
	// entirely (the all-pairs verification consumers); a scratch with
	// rows keeps recording them alongside the callback (the batched
	// table builder reads distances from the rows and uses the events
	// only for next-hop claims).
	visit func(v int32, newBits uint64, level int32)
}

// stripe is one vertex's mask state, 32-byte sized so a random access
// during edge expansion touches exactly one cache line and a single
// bounds check covers all three words.
type stripe struct {
	vis  uint64 // sources that have ever reached the vertex
	next uint64 // sources arriving for the following level
	fro  uint64 // sources whose wavefront sits here this level
	_    uint64 // pad to 32 bytes
}

// NewBitScratch returns a batch-BFS scratch for graphs with up to n
// vertices. Footprint is O(64·n): one mask stripe plus a 64-entry
// distance row per vertex — never O(n²) however many batches run.
func NewBitScratch(n int) *BitScratch {
	s := NewBitScratchMasks(n)
	s.dist = make([]int32, n*64)
	return s
}

// NewBitScratchMasks returns a masks-only scratch: reachability masks
// and streamed first-visit events, but no distance rows (Row/Dist must
// not be used). Footprint is O(n) words — the right engine for judge
// passes that test deadlines instead of reading distances back.
func NewBitScratchMasks(n int) *BitScratch {
	return &BitScratch{
		stripes:  make([]stripe, n),
		cur:      make([]int32, 0, n),
		nxt:      make([]int32, 0, n),
		arrivals: make([]int32, 0, n),
		touched:  make([]int32, 0, n),
	}
}

// Begin starts a new batch, clearing only what the previous batch
// touched. (next and frontier are self-cleaning over a completed
// sweep, but seeded batches may be abandoned before sweeping, so the
// whole stripe is re-zeroed here.)
//
//remspan:hotpath
func (s *BitScratch) Begin() {
	for _, v := range s.touched {
		s.stripes[v] = stripe{}
	}
	s.touched = s.touched[:0]
	s.cur = s.cur[:0]
}

// Seed marks source bit i as having reached v at distance d without
// placing v on the frontier: bit i will not expand from v. First seed
// of a (bit, vertex) pair wins; later seeds are ignored.
//
//remspan:hotpath
func (s *BitScratch) Seed(i uint, v int, d int32) {
	b := uint64(1) << i
	st := &s.stripes[v]
	if st.vis&b != 0 {
		return
	}
	if st.vis == 0 {
		s.touched = append(s.touched, int32(v))
	}
	st.vis |= b
	if s.dist != nil {
		s.dist[v<<6|int(i)] = d
	}
}

// SeedFrontier seeds bit i at v with distance d and places it on the
// frontier, so the next Sweep expands it.
//
//remspan:hotpath
func (s *BitScratch) SeedFrontier(i uint, v int, d int32) {
	b := uint64(1) << i
	st := &s.stripes[v]
	if st.vis&b != 0 {
		return
	}
	if st.vis == 0 {
		s.touched = append(s.touched, int32(v))
	}
	st.vis |= b
	if s.dist != nil {
		s.dist[v<<6|int(i)] = d
	}
	if st.fro == 0 {
		s.cur = append(s.cur, int32(v))
	}
	st.fro |= b
}

// Sweep runs the seeded batch to exhaustion over view: vertices first
// reached in the initial expansion are recorded at level, the next
// wave at level+1, and so on.
//
//remspan:hotpath
func (s *BitScratch) Sweep(view View, level int32) {
	for s.Step(view, level) {
		level++
	}
}

// Step expands the current frontier one level over view, collecting
// arrivals at the given level, and returns whether a frontier remains.
// Callers that interleave two traversals (the deadline-lockstep judge
// of spanner verification) drive Step directly; Sweep is the
// run-to-exhaustion loop. The *CSR fast path avoids an interface call
// per frontier vertex; any other View traverses generically.
//
//remspan:hotpath
func (s *BitScratch) Step(view View, level int32) bool {
	if len(s.cur) == 0 {
		return false
	}
	stripes := s.stripes
	arr := s.arrivals[:0]
	if c, ok := view.(*CSR); ok {
		for _, u := range s.cur {
			f := stripes[u].fro
			stripes[u].fro = 0
			for _, v := range c.targets[c.offsets[u]:c.offsets[u+1]] {
				st := &stripes[v]
				old := st.next
				st.next = old | f
				if old == 0 {
					arr = append(arr, v)
				}
			}
		}
	} else {
		for _, u := range s.cur {
			f := stripes[u].fro
			stripes[u].fro = 0
			for _, v := range view.Neighbors(int(u)) {
				st := &stripes[v]
				old := st.next
				st.next = old | f
				if old == 0 {
					arr = append(arr, v)
				}
			}
		}
	}
	s.arrivals = arr
	s.nxt = s.collect(arr, s.nxt[:0], level)
	s.cur, s.nxt = s.nxt, s.cur
	return len(s.cur) > 0
}

// SweepClaim runs the seeded batch to exhaustion like Sweep, but with
// sorted-frontier expansion and a claim callback: at each level the
// frontier is expanded in ascending vertex-id order, and claim(x, v,
// newBits, level) fires at the moment source bits first arrive at v
// through the edge (x, v) — x is therefore the smallest-id
// previous-level neighbor of v carrying those bits, which is exactly
// the canonical next-hop rule of the batched forwarding-table builder.
// Each (source, vertex) pair is claimed exactly once. The callback
// runs inside the expansion with x's state hot in cache; it must not
// call back into this BitScratch.
//
//remspan:hotpath
func (s *BitScratch) SweepClaim(view View, level int32, claim func(x, v int32, newBits uint64, level int32)) {
	for s.stepClaim(view, level, claim) {
		level++
	}
}

// stepClaim is Step with sorted-frontier expansion and the first-
// arrival claim callback.
//
//remspan:hotpath
func (s *BitScratch) stepClaim(view View, level int32, claim func(x, v int32, newBits uint64, level int32)) bool {
	if len(s.cur) == 0 {
		return false
	}
	s.sortFrontier()
	stripes := s.stripes
	arr := s.arrivals[:0]
	if c, ok := view.(*CSR); ok {
		for _, u := range s.cur {
			f := stripes[u].fro
			stripes[u].fro = 0
			for _, v := range c.targets[c.offsets[u]:c.offsets[u+1]] {
				st := &stripes[v]
				old := st.next
				if newly := f &^ (old | st.vis); newly != 0 {
					claim(u, v, newly, level)
				}
				st.next = old | f
				if old == 0 {
					arr = append(arr, v)
				}
			}
		}
	} else {
		for _, u := range s.cur {
			f := stripes[u].fro
			stripes[u].fro = 0
			for _, v := range view.Neighbors(int(u)) {
				st := &stripes[v]
				old := st.next
				if newly := f &^ (old | st.vis); newly != 0 {
					claim(u, v, newly, level)
				}
				st.next = old | f
				if old == 0 {
					arr = append(arr, v)
				}
			}
		}
	}
	s.arrivals = arr
	s.nxt = s.collect(arr, s.nxt[:0], level)
	s.cur, s.nxt = s.nxt, s.cur
	return len(s.cur) > 0
}

// sortFrontier sorts s.cur ascending: comparison sort for short
// frontiers, LSD radix-256 over the bytes a vertex id can occupy for
// long ones (a comparison sort here would cost as much as the claim
// pass it serves). The swap buffer is lazily sized once, so sorted
// sweeps stay allocation-free when warm.
//
//remspan:hotpath
func (s *BitScratch) sortFrontier() {
	a := s.cur
	if len(a) <= 64 {
		slices.Sort(a)
		return
	}
	//remspan:coldpath one-time radix buffer grow to the scratch high-water mark
	if cap(s.sortBuf) < len(a) {
		s.sortBuf = make([]int32, len(s.stripes))
	}
	buf := s.sortBuf[:len(a)]
	passes := (bits.Len(uint(len(s.stripes)-1)) + 7) / 8
	for p := 0; p < passes; p++ {
		shift := uint(8 * p)
		var cnt [257]int32
		for _, v := range a {
			cnt[((v>>shift)&0xff)+1]++
		}
		for i := 1; i < len(cnt); i++ {
			cnt[i] += cnt[i-1]
		}
		for _, v := range a {
			c := (v >> shift) & 0xff
			buf[cnt[c]] = v
			cnt[c]++
		}
		a, buf = buf, a
	}
	if passes%2 == 1 {
		copy(buf, a) // buf aliases s.cur's storage here; move the result back
	}
}

// SetVisit installs (nil clears) the streaming first-visit callback
// consumed by Step/Sweep. A masks-only scratch then records
// reachability alone; a full scratch keeps recording distance rows
// alongside the callback.
func (s *BitScratch) SetVisit(fn func(v int32, newBits uint64, level int32)) { s.visit = fn }

// collect drains the arrival masks into the next frontier, recording
// first-visit distances for newly set bits (or streaming them to the
// visit callback when one is installed).
//
//remspan:hotpath
func (s *BitScratch) collect(arrivals, nxt []int32, level int32) []int32 {
	stripes := s.stripes
	for _, v := range arrivals {
		st := &stripes[v]
		newBits := st.next &^ st.vis
		st.next = 0
		if newBits == 0 {
			continue
		}
		if st.vis == 0 {
			s.touched = append(s.touched, v)
		}
		st.vis |= newBits
		st.fro = newBits
		if s.dist != nil {
			base := int(v) << 6
			for b := newBits; b != 0; b &= b - 1 {
				s.dist[base+bits.TrailingZeros64(b)] = level
			}
		}
		if s.visit != nil {
			s.visit(v, newBits, level)
		}
		nxt = append(nxt, v)
	}
	return nxt
}

// SweepFrom runs a plain batched BFS over view from the count sources
// base..base+count-1, bit i owning source base+i. count must be in
// [1, 64].
//
//remspan:hotpath
func (s *BitScratch) SweepFrom(view View, base, count int) {
	s.Begin()
	for i := 0; i < count; i++ {
		s.SeedFrontier(uint(i), base+i, 0)
	}
	s.Sweep(view, 1)
}

// SweepSources runs a plain batched BFS over view from the given
// sources (1 ≤ len ≤ 64), bit i owning sources[i].
//
//remspan:hotpath
func (s *BitScratch) SweepSources(view View, sources []int32) {
	s.Begin()
	for i, u := range sources {
		s.SeedFrontier(uint(i), int(u), 0)
	}
	s.Sweep(view, 1)
}

// SweepSourcesVisit is SweepSources in streaming form: visit is called
// once per (vertex, new source bits, distance) first-visit event, in
// level order. On a masks-only scratch no distance rows exist — after
// the sweep only Visited/Reached are meaningful, not Row/Dist. The
// sources themselves (distance 0) are not reported. The callback runs
// inside the sweep's collect phase: it must not call back into this
// BitScratch.
//
//remspan:hotpath
func (s *BitScratch) SweepSourcesVisit(view View, sources []int32, visit func(v int32, newBits uint64, level int32)) {
	s.Begin()
	for i, u := range sources {
		s.SeedFrontier(uint(i), int(u), 0)
	}
	s.SetVisit(visit)
	s.Sweep(view, 1)
	s.SetVisit(nil)
}

// Visited returns the mask of sources that reached v; bit i's distance
// is valid iff its bit is set.
func (s *BitScratch) Visited(v int) uint64 { return s.stripes[v].vis }

// Row returns v's 64-entry distance row, indexed by source bit and
// valid only under Visited(v). Shared scratch — read-only, valid until
// the next Begin.
func (s *BitScratch) Row(v int) []int32 { return s.dist[v<<6 : v<<6+64] }

// Dist returns the distance from source bit i to v, or Unreached.
func (s *BitScratch) Dist(i uint, v int) int32 {
	if s.stripes[v].vis&(uint64(1)<<i) == 0 {
		return Unreached
	}
	return s.dist[v<<6|int(i)]
}

// Reached lists the vertices reached by at least one source of the
// current batch, in discovery order. Shared scratch — valid until the
// next Begin, and safe to reorder in place (Begin only needs the set).
func (s *BitScratch) Reached() []int32 { return s.touched }

// ballBudget caps the vertices one clustering ball may traverse while
// hunting for unassigned sources, so pathological inputs (a nearly
// consumed region that must be re-walked) cannot push BatchOrder past
// O(budget · n/64): the ball simply closes early and the batch ships
// with fewer than 64 sources, which the engine accepts.
const ballBudget = 4096

// BatchOrder partitions the vertices into batches of up to 64 mutually
// close sources for the word-parallel engine: order is a permutation
// of 0..n-1 and starts[b]:starts[b+1] slices it into batches. Batch
// cost in a bit-packed sweep is O(edges × distinct wavefront levels) —
// a vertex re-expands once per distinct source distance — so 64
// scattered sources (anything up to graph diameter apart) can cost
// 64× more than 64 sources drawn from one small BFS ball, whose
// wavefronts coincide to within the ball's diameter. Balls grow from
// the smallest unassigned vertex, collecting unassigned vertices in
// BFS discovery order; exhausted components spill into the same batch
// so fragmented graphs still fill words. Deterministic: same view,
// same partition.
func BatchOrder(view View) (order, starts []int32) {
	return NewBatchOrderScratch().Order(view)
}

// BatchOrderScratch is the pooled working state of BatchOrder, for
// call sites that re-cluster per run (the verification and routing
// fan-outs): a warm scratch orders any number of views with zero
// allocations. Not safe for concurrent use; the returned slices are
// scratch-owned and valid until the next Order call.
type BatchOrderScratch struct {
	order, starts []int32
	queue         []int32
	assignedMark  []uint32 // == callEpoch ⇔ vertex already assigned this call
	mark          []uint32 // per-ball visit stamps
	epoch         uint32
}

// NewBatchOrderScratch returns an empty scratch; arrays grow to the
// largest view seen.
func NewBatchOrderScratch() *BatchOrderScratch {
	return &BatchOrderScratch{}
}

// Order is BatchOrder into the scratch's pooled storage.
func (s *BatchOrderScratch) Order(view View) (order, starts []int32) {
	n := view.N()
	if cap(s.assignedMark) < n {
		s.assignedMark = make([]uint32, n)
		s.mark = make([]uint32, n)
	}
	assignedMark, mark := s.assignedMark[:n], s.mark[:n]
	// One call consumes 1 + #balls ≤ n+1 epochs; rewind with headroom
	// at a call boundary, where no stamps are live.
	if s.epoch >= 1<<31 || s.epoch+uint32(n)+2 < s.epoch {
		clear(s.assignedMark)
		clear(s.mark)
		s.epoch = 0
	}
	s.epoch++
	callEpoch := s.epoch
	s.order = s.order[:0]
	s.starts = append(s.starts[:0], 0)
	queue := s.queue
	seed := 0
	for len(s.order) < n {
		filled := 0
		for filled < 64 && seed < n {
			for seed < n && assignedMark[seed] == callEpoch {
				seed++
			}
			if seed >= n {
				break
			}
			// One ball: BFS from seed, assigning unassigned vertices as
			// they are discovered.
			s.epoch++
			queue = append(queue[:0], int32(seed))
			mark[seed] = s.epoch
			budget := ballBudget
			for head := 0; head < len(queue); head++ {
				u := queue[head]
				if assignedMark[u] != callEpoch {
					assignedMark[u] = callEpoch
					s.order = append(s.order, u)
					if filled++; filled == 64 {
						break
					}
				}
				if budget--; budget <= 0 {
					break
				}
				for _, w := range view.Neighbors(int(u)) {
					if mark[w] != s.epoch {
						mark[w] = s.epoch
						queue = append(queue, w)
					}
				}
			}
			if filled < 64 && budget <= 0 {
				break // ship a short batch rather than re-walk the region
			}
		}
		s.starts = append(s.starts, int32(len(s.order)))
	}
	s.queue = queue
	return s.order, s.starts
}
