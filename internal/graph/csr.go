package graph

import "fmt"

// CSR is an immutable compressed-sparse-row snapshot of a Graph: one
// contiguous target array indexed by per-vertex offsets. Traversal-heavy
// sweeps (all-roots BFS during spanner construction/verification) are
// memory-bound; CSR removes the per-vertex slice headers and pointer
// chases of the mutable representation (ablation:
// BenchmarkAblationCSR).
type CSR struct {
	offsets []int32
	targets []int32
}

// maxEdgeSlots is the largest directed adjacency-slot count (2m) a CSR
// can index: offsets are int32, so every slot index must fit one. The
// ceiling is ~1.07 billion undirected edges — graphs past it must
// shard. Like the routing engine's halfWidthMaxN, the bound is
// re-checked at every snapshot so an overflow panics instead of
// silently wrapping offsets negative (which would corrupt every
// downstream sweep).
const maxEdgeSlots = 1<<31 - 1

// checkEdgeSlots panics when slots directed slots cannot be indexed by
// int32 CSR offsets. Factored out of the snapshot paths so the
// boundary is unit-testable without materializing 2³¹ edge slots.
func checkEdgeSlots(slots int64) {
	if slots > maxEdgeSlots {
		panic(fmt.Sprintf("graph: %d directed edge slots overflow int32 CSR offsets (max %d undirected edges)", slots, int64(maxEdgeSlots)/2))
	}
}

// NewCSR snapshots g. The snapshot does not observe later mutations.
func NewCSR(g *Graph) *CSR {
	n := g.N()
	checkEdgeSlots(2 * int64(g.M()))
	c := &CSR{
		offsets: make([]int32, n+1),
		targets: make([]int32, 0, 2*g.M()),
	}
	for u := 0; u < n; u++ {
		c.offsets[u] = int32(len(c.targets))
		c.targets = append(c.targets, g.Neighbors(u)...)
	}
	c.offsets[n] = int32(len(c.targets))
	return c
}

// N returns the vertex count.
func (c *CSR) N() int { return len(c.offsets) - 1 }

// M returns the edge count.
func (c *CSR) M() int { return len(c.targets) / 2 }

// Degree returns the degree of u.
func (c *CSR) Degree(u int) int { return int(c.offsets[u+1] - c.offsets[u]) }

// Neighbors returns u's sorted adjacency slice (shared, do not modify).
func (c *CSR) Neighbors(u int) []int32 {
	return c.targets[c.offsets[u]:c.offsets[u+1]]
}

// SubsetOf reports whether every edge of c is an edge of d (same
// vertex count assumed). One merge scan per row over the sorted
// adjacencies — O(m_c + m_d).
func (c *CSR) SubsetOf(d *CSR) bool {
	if c.N() != d.N() {
		return false
	}
	for u := 0; u < c.N(); u++ {
		sub, super := c.Neighbors(u), d.Neighbors(u)
		j := 0
		for _, v := range sub {
			for j < len(super) && super[j] < v {
				j++
			}
			if j >= len(super) || super[j] != v {
				return false
			}
			j++
		}
	}
	return true
}

// BFS computes distances from src into dist (len ≥ N, overwritten),
// reusing queue as scratch; returns the visit order. Semantics match
// graph.BFS.
func (c *CSR) BFS(src int, dist []int32, queue []int32) []int32 {
	for i := range dist[:c.N()] {
		dist[i] = Unreached
	}
	queue = queue[:0]
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range c.Neighbors(int(u)) {
			if dist[v] == Unreached {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return queue
}
