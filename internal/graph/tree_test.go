package graph

import (
	"math/rand"
	"testing"
)

func TestTreeBasic(t *testing.T) {
	tr := NewTree(5, 2)
	if tr.Root() != 2 || tr.Size() != 1 || tr.EdgeCount() != 0 {
		t.Fatal("bad initial tree")
	}
	tr.Add(0, 2)
	tr.Add(4, 0)
	if tr.Depth(4) != 2 || tr.Parent(4) != 0 {
		t.Fatalf("depth/parent wrong: %d %d", tr.Depth(4), tr.Parent(4))
	}
	if tr.Contains(1) {
		t.Fatal("phantom member")
	}
	if tr.EdgeCount() != 2 {
		t.Fatalf("edges=%d, want 2", tr.EdgeCount())
	}
}

func TestTreeAddDuplicatePanics(t *testing.T) {
	tr := NewTree(3, 0)
	tr.Add(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate Add")
		}
	}()
	tr.Add(1, 0)
}

func TestTreeAddPath(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 4)
	g.AddEdge(4, 5)
	parent, _ := BFSTree(g, 0)
	tr := NewTree(6, 0)
	tr.AddPath(parent, 3)
	tr.AddPath(parent, 5)
	tr.AddPath(parent, 3) // idempotent
	if tr.Size() != 6 {
		t.Fatalf("size=%d, want 6", tr.Size())
	}
	if err := tr.Validate(g); err != nil {
		t.Fatal(err)
	}
	if tr.Depth(3) != 3 || tr.Depth(5) != 2 {
		t.Fatalf("depths wrong: %d %d", tr.Depth(3), tr.Depth(5))
	}
}

func TestTreeBranch(t *testing.T) {
	tr := NewTree(7, 0)
	tr.Add(1, 0)
	tr.Add(2, 0)
	tr.Add(3, 1)
	tr.Add(4, 3)
	tr.Add(5, 2)
	if tr.Branch(4) != 1 {
		t.Errorf("branch(4)=%d, want 1", tr.Branch(4))
	}
	if tr.Branch(5) != 2 {
		t.Errorf("branch(5)=%d, want 2", tr.Branch(5))
	}
	if tr.Branch(1) != 1 {
		t.Errorf("branch(1)=%d, want 1", tr.Branch(1))
	}
	if tr.Branch(0) != -1 {
		t.Errorf("branch(root)=%d, want -1", tr.Branch(0))
	}
	if tr.Branch(6) != -1 {
		t.Errorf("branch(non-member)=%d, want -1", tr.Branch(6))
	}
}

func TestTreePathToRoot(t *testing.T) {
	tr := NewTree(4, 0)
	tr.Add(1, 0)
	tr.Add(2, 1)
	p := tr.PathToRoot(2)
	if len(p) != 3 || p[0] != 2 || p[1] != 1 || p[2] != 0 {
		t.Fatalf("path = %v", p)
	}
	if tr.PathToRoot(3) != nil {
		t.Fatal("non-member path should be nil")
	}
}

func TestTreeEdgesMatchSize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(20)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		parent, dist := BFSTree(g, 0)
		tr := NewTree(n, 0)
		for v := 0; v < n; v++ {
			if dist[v] != Unreached {
				tr.AddPath(parent, v)
			}
		}
		if tr.EdgeCount() != tr.Size()-1 {
			t.Fatalf("edges=%d size=%d", tr.EdgeCount(), tr.Size())
		}
		if len(tr.Edges()) != tr.EdgeCount() {
			t.Fatal("Edges() length mismatch")
		}
		if err := tr.Validate(g); err != nil {
			t.Fatal(err)
		}
		// Depth equals BFS distance when built from BFS parents.
		for v := 0; v < n; v++ {
			if dist[v] != Unreached && tr.Depth(v) != int(dist[v]) {
				t.Fatalf("depth(%d)=%d, want %d", v, tr.Depth(v), dist[v])
			}
		}
	}
}
