package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestBFSPath(t *testing.T) {
	g := pathGraph(5)
	d := BFS(g, 0)
	for v := 0; v < 5; v++ {
		if d[v] != int32(v) {
			t.Errorf("d[%d]=%d, want %d", v, d[v], v)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	d := BFS(g, 0)
	if d[2] != Unreached || d[3] != Unreached {
		t.Fatalf("expected unreached, got %v", d)
	}
}

func TestBFSTreeParents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	parent, dist := BFSTree(g, 0)
	if parent[0] != -1 || dist[0] != 0 {
		t.Fatal("bad root bookkeeping")
	}
	// deterministic smallest-id parent at previous level
	if parent[3] != 1 {
		t.Errorf("parent[3]=%d, want 1 (smallest-id BFS)", parent[3])
	}
	for v := 1; v < 5; v++ {
		p := parent[v]
		if dist[v] != dist[p]+1 {
			t.Errorf("dist[%d]=%d, parent dist %d", v, dist[v], dist[p])
		}
		if !g.HasEdge(v, int(p)) {
			t.Errorf("parent edge {%d,%d} missing", v, p)
		}
	}
}

func TestBoundedBFSMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(30)
		g := New(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		full := BFS(g, 0)
		s := NewBFSScratch(n)
		for r := 0; r <= 4; r++ {
			dist, parent, visited := s.Bounded(g, 0, r)
			for v := 0; v < n; v++ {
				want := full[v]
				if want != Unreached && int(want) > r {
					want = Unreached
				}
				if dist[v] != want {
					t.Fatalf("n=%d r=%d: dist[%d]=%d, want %d", n, r, v, dist[v], want)
				}
			}
			for _, v := range visited {
				if v != 0 {
					p := parent[v]
					if p < 0 || dist[v] != dist[p]+1 {
						t.Fatalf("bad bounded parent for %d", v)
					}
				}
			}
		}
	}
}

func TestBFSScratchReuse(t *testing.T) {
	g := pathGraph(6)
	s := NewBFSScratch(6)
	d1, _, _ := s.Bounded(g, 0, 10)
	if d1[5] != 5 {
		t.Fatalf("first run wrong: %v", d1)
	}
	d2, _, _ := s.Bounded(g, 5, 2)
	if d2[5] != 0 || d2[3] != 2 || d2[0] != Unreached {
		t.Fatalf("second run not reset correctly: %v", d2)
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := pathGraph(6)
	if e := Eccentricity(g, 0); e != 5 {
		t.Errorf("ecc(0)=%d, want 5", e)
	}
	if e := Eccentricity(g, 3); e != 3 {
		t.Errorf("ecc(3)=%d, want 3", e)
	}
	if d := Diameter(g); d != 5 {
		t.Errorf("diam=%d, want 5", d)
	}
}

func TestAllPairsSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		g := New(n)
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		d := AllPairsDistances(g)
		for u := 0; u < n; u++ {
			if d[u][u] != 0 {
				return false
			}
			for v := 0; v < n; v++ {
				if d[u][v] != d[v][u] {
					return false
				}
				// triangle inequality through any edge
				for _, w := range g.Neighbors(v) {
					if d[u][v] != Unreached && d[u][w] != Unreached && d[u][w] > d[u][v]+1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
