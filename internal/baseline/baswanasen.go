package baseline

import (
	"math"
	"math/rand"
	"sort"

	"remspan/internal/graph"
)

// BaswanaSen returns a (2k−1, 0)-spanner of g with O(k·n^{1+1/k})
// expected edges, using the randomized clustering algorithm of Baswana
// & Sen (unweighted specialization). The construction is exact: the
// output always satisfies the stretch bound; only its size is random.
func BaswanaSen(g *graph.Graph, k int, rng *rand.Rand) *graph.Graph {
	if k < 1 {
		panic("baseline: k must be >= 1")
	}
	n := g.N()
	h := graph.New(n)
	if k == 1 {
		// (1, 0)-spanner: all edges.
		g.EachEdge(func(u, v int) { h.AddEdge(u, v) })
		return h
	}

	// remaining[u] = set of still-unprocessed edges of u.
	remaining := make([]map[int32]bool, n)
	for u := 0; u < n; u++ {
		remaining[u] = make(map[int32]bool, g.Degree(u))
		for _, v := range g.Neighbors(u) {
			remaining[u][v] = true
		}
	}
	dropEdge := func(u int, v int32) {
		delete(remaining[u], v)
		delete(remaining[v], int32(u))
	}

	// cluster[v] = center of v's cluster, or -1 once v is settled.
	cluster := make([]int32, n)
	for v := range cluster {
		cluster[v] = int32(v)
	}
	p := math.Pow(float64(n), -1.0/float64(k))

	for i := 1; i <= k-1; i++ {
		// Sample the surviving cluster centers. Centers are visited in
		// sorted order so a seeded RNG reproduces the same spanner.
		sampled := make(map[int32]bool)
		centerSet := make(map[int32]bool)
		for v := 0; v < n; v++ {
			if cluster[v] >= 0 {
				centerSet[cluster[v]] = true
			}
		}
		centers := make([]int32, 0, len(centerSet))
		for c := range centerSet {
			centers = append(centers, c)
		}
		sort.Slice(centers, func(i, j int) bool { return centers[i] < centers[j] })
		for _, c := range centers {
			if rng.Float64() < p {
				sampled[c] = true
			}
		}

		next := make([]int32, n)
		copy(next, cluster)
		for v := 0; v < n; v++ {
			if cluster[v] < 0 || sampled[cluster[v]] {
				continue // settled, or cluster survives as-is
			}
			// Group v's remaining edges by the neighbor's cluster.
			// Deterministic representative: smallest neighbor id.
			rep := make(map[int32]int32)
			for w := range remaining[v] {
				cw := cluster[w]
				if cw < 0 {
					continue
				}
				if r, ok := rep[cw]; !ok || w < r {
					rep[cw] = w
				}
			}
			// Find a sampled adjacent cluster (smallest center id).
			best := int32(-1)
			for c := range rep {
				if sampled[c] && (best == -1 || c < best) {
					best = c
				}
			}
			if best >= 0 {
				w := rep[best]
				h.AddEdge(v, int(w))
				next[v] = best
				// Edges into the new cluster are now intra-cluster.
				for x := range remaining[v] {
					if cluster[x] == best {
						dropEdge(v, x)
					}
				}
			} else {
				// No sampled neighbor cluster: connect once to every
				// adjacent cluster and settle v.
				for _, w := range sortedVals(rep) {
					h.AddEdge(v, int(w))
				}
				for x := range remaining[v] {
					dropEdge(v, x)
				}
				next[v] = -1
			}
		}
		cluster = next
		// Remove intra-cluster edges.
		for u := 0; u < n; u++ {
			for v := range remaining[u] {
				if int32(u) < v && cluster[u] >= 0 && cluster[u] == cluster[v] {
					dropEdge(u, v)
				}
			}
		}
	}

	// Phase 2: vertex–cluster joining over the remaining edges.
	for v := 0; v < n; v++ {
		rep := make(map[int32]int32)
		for w := range remaining[v] {
			cw := cluster[w]
			if cw < 0 {
				continue
			}
			if r, ok := rep[cw]; !ok || w < r {
				rep[cw] = w
			}
		}
		for _, w := range sortedVals(rep) {
			h.AddEdge(v, int(w))
			dropEdge(v, w)
		}
	}
	return h
}

func sortedVals(m map[int32]int32) []int32 {
	out := make([]int32, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
