package baseline

import (
	"container/heap"
	"math"
	"sort"

	"remspan/internal/geom"
)

// WeightedSpanner is a metric-weighted spanner: an edge list over the
// points of a metric.
type WeightedSpanner struct {
	N     int
	Edges []geom.WeightedEdge
	adj   [][]wedge
}

type wedge struct {
	to int32
	w  float64
}

func newWeightedSpanner(n int) *WeightedSpanner {
	return &WeightedSpanner{N: n, adj: make([][]wedge, n)}
}

func (s *WeightedSpanner) addEdge(e geom.WeightedEdge) {
	s.Edges = append(s.Edges, e)
	s.adj[e.U] = append(s.adj[e.U], wedge{to: int32(e.V), w: e.W})
	s.adj[e.V] = append(s.adj[e.V], wedge{to: int32(e.U), w: e.W})
}

// M returns the number of spanner edges.
func (s *WeightedSpanner) M() int { return len(s.Edges) }

// distHeap is a tiny binary heap for Dijkstra.
type distHeap struct {
	v []int32
	d []float64
}

func (h distHeap) Len() int            { return len(h.v) }
func (h distHeap) Less(i, j int) bool  { return h.d[i] < h.d[j] }
func (h *distHeap) Swap(i, j int)      { h.v[i], h.v[j] = h.v[j], h.v[i]; h.d[i], h.d[j] = h.d[j], h.d[i] }
func (h *distHeap) Push(x interface{}) { panic("use push") }
func (h *distHeap) Pop() interface{}   { panic("use pop") }

func (h *distHeap) push(v int32, d float64) {
	h.v = append(h.v, v)
	h.d = append(h.d, d)
	heap.Fix(h, len(h.v)-1)
}

func (h *distHeap) pop() (int32, float64) {
	v, d := h.v[0], h.d[0]
	n := len(h.v) - 1
	h.Swap(0, n)
	h.v, h.d = h.v[:n], h.d[:n]
	if n > 0 {
		heap.Fix(h, 0)
	}
	return v, d
}

// dijkstra returns the shortest s→t distance in the spanner, pruning
// the search at limit (returns +Inf beyond). blocked vertices (may be
// nil) are excluded as internal vertices.
func (s *WeightedSpanner) dijkstra(src, dst int, limit float64, blocked []bool) float64 {
	dist := make(map[int32]float64, 64)
	h := &distHeap{}
	h.push(int32(src), 0)
	dist[int32(src)] = 0
	for h.Len() > 0 {
		v, d := h.pop()
		if d > dist[v] {
			continue
		}
		if int(v) == dst {
			return d
		}
		if d > limit {
			return math.Inf(1)
		}
		for _, e := range s.adj[v] {
			if blocked != nil && blocked[e.to] && int(e.to) != dst {
				continue
			}
			nd := d + e.w
			if nd > limit {
				continue
			}
			if old, ok := dist[e.to]; !ok || nd < old {
				dist[e.to] = nd
				h.push(e.to, nd)
			}
		}
	}
	return math.Inf(1)
}

// GreedyTSpanner returns the greedy (t, 0)-spanner of the weighted
// unit-ball graph of m with connection radius r: candidate edges sorted
// by length, each kept iff the spanner so far has no t-approximate
// path. This is the classical path-greedy construction — the
// known-distances comparator for Table 1's UBG row (substituting for
// [9], see DESIGN.md §3). On bounded-doubling metrics it has O(n)
// edges.
func GreedyTSpanner(m geom.Metric, radius, t float64) *WeightedSpanner {
	if t < 1 {
		panic("baseline: t must be >= 1")
	}
	edges := geom.BallGraphEdges(m, radius)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].W != edges[j].W {
			return edges[i].W < edges[j].W
		}
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	s := newWeightedSpanner(m.Len())
	for _, e := range edges {
		if s.dijkstra(e.U, e.V, t*e.W, nil) > t*e.W {
			s.addEdge(e)
		}
	}
	return s
}

// FaultTolerantGreedy returns a k-fault-tolerant (t, 0)-spanner of the
// complete weighted graph on m (the geometric setting of [8]): pairs
// are scanned by increasing distance; a pair is skipped only when k+1
// internally vertex-disjoint t-paths are certified by greedy disjoint
// short-path extraction, so skipping is always sound and the output
// survives any k vertex deletions with stretch t.
func FaultTolerantGreedy(m geom.Metric, t float64, k int) *WeightedSpanner {
	if k < 0 {
		panic("baseline: k must be >= 0")
	}
	n := m.Len()
	var pairs []geom.WeightedEdge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, geom.WeightedEdge{U: i, V: j, W: m.Dist(i, j)})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].W != pairs[j].W {
			return pairs[i].W < pairs[j].W
		}
		if pairs[i].U != pairs[j].U {
			return pairs[i].U < pairs[j].U
		}
		return pairs[i].V < pairs[j].V
	})
	s := newWeightedSpanner(n)
	blocked := make([]bool, n)
	for _, e := range pairs {
		if s.certifyDisjointPaths(e, t, k+1, blocked) {
			continue
		}
		s.addEdge(e)
	}
	return s
}

// certifyDisjointPaths greedily extracts up to want internally
// vertex-disjoint u→v paths of length ≤ t·w. Finding them certifies the
// pair is safe to skip.
func (s *WeightedSpanner) certifyDisjointPaths(e geom.WeightedEdge, t float64, want int, blocked []bool) bool {
	for i := range blocked {
		blocked[i] = false
	}
	found := 0
	for found < want {
		path, ok := s.shortestPathWithin(e.U, e.V, t*e.W, blocked)
		if !ok {
			return false
		}
		for _, v := range path {
			if int(v) != e.U && int(v) != e.V {
				blocked[v] = true
			}
		}
		found++
	}
	return true
}

// shortestPathWithin is dijkstra with path extraction, avoiding blocked
// internal vertices and respecting a length limit.
func (s *WeightedSpanner) shortestPathWithin(src, dst int, limit float64, blocked []bool) ([]int32, bool) {
	type entry struct {
		d    float64
		prev int32
	}
	dist := make(map[int32]entry, 64)
	h := &distHeap{}
	h.push(int32(src), 0)
	dist[int32(src)] = entry{d: 0, prev: -1}
	for h.Len() > 0 {
		v, d := h.pop()
		if d > dist[v].d {
			continue
		}
		if int(v) == dst {
			var path []int32
			for x := v; x != -1; x = dist[x].prev {
				path = append(path, x)
			}
			return path, true
		}
		if d > limit {
			return nil, false
		}
		if blocked[v] && int(v) != src {
			continue
		}
		for _, e := range s.adj[v] {
			if blocked[e.to] && int(e.to) != dst {
				continue
			}
			nd := d + e.w
			if nd > limit {
				continue
			}
			if old, ok := dist[e.to]; !ok || nd < old.d {
				dist[e.to] = entry{d: nd, prev: v}
				h.push(e.to, nd)
			}
		}
	}
	return nil, false
}

// Distance returns the shortest path length between u and v in the
// spanner, searching no further than limit (+Inf beyond). blocked (may
// be nil) marks failed vertices to avoid as internal hops — the fault
// model of k-fault-tolerant spanners.
func (s *WeightedSpanner) Distance(u, v int, limit float64, blocked []bool) float64 {
	return s.dijkstra(u, v, limit, blocked)
}

// VerifyStretch checks d_S(i, j) ≤ t·m.Dist(i, j) for all pairs,
// returning the first violating pair or (-1, -1). For spanners of a
// ball graph, pairs beyond the radius are checked against ball-graph
// distances instead (metric distances are not achievable then), so pass
// radius = +Inf for complete-graph spanners.
func VerifyStretch(s *WeightedSpanner, m geom.Metric, radius, t float64) (int, int) {
	n := m.Len()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := m.Dist(i, j)
			if d > radius {
				continue
			}
			if s.dijkstra(i, j, t*d*(1+1e-9), nil) > t*d*(1+1e-9) {
				return i, j
			}
		}
	}
	return -1, -1
}
