package baseline

import (
	"math"
	"math/rand"
	"testing"

	"remspan/internal/gen"
	"remspan/internal/geom"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

// checkSpannerStretch verifies d_H(u,v) <= t for every edge (u,v) of g,
// which implies d_H <= t·d_G for all pairs.
func checkSpannerStretch(t *testing.T, g, h *graph.Graph, stretch int) {
	t.Helper()
	scratch := graph.NewBFSScratch(g.N())
	bad := 0
	g.EachEdge(func(u, v int) {
		dist, _, _ := scratch.Bounded(h, u, stretch)
		if dist[v] == graph.Unreached || int(dist[v]) > stretch {
			bad++
		}
	})
	if bad > 0 {
		t.Fatalf("%d edges violate stretch %d", bad, stretch)
	}
}

func TestGreedySpannerStretch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := gen.ErdosRenyi(40+rng.Intn(40), 0.2, rng)
		for _, k := range []int{1, 2, 3} {
			h := GreedySpanner(g, 2*k-1)
			checkSpannerStretch(t, g, h, 2*k-1)
			if h.M() > g.M() {
				t.Fatal("spanner larger than graph")
			}
		}
	}
}

func TestGreedySpannerStretch1KeepsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.ErdosRenyi(30, 0.3, rng)
	h := GreedySpanner(g, 1)
	if h.M() != g.M() {
		t.Fatalf("t=1 spanner dropped edges: %d vs %d", h.M(), g.M())
	}
}

func TestGreedySpannerSparsifiesDense(t *testing.T) {
	g := gen.Complete(40)
	h := GreedySpanner(g, 3)
	// A 3-spanner of K_n: one vertex's star suffices; greedy gets close.
	if h.M() > 5*40 {
		t.Fatalf("3-spanner of K40 has %d edges", h.M())
	}
}

func TestBaswanaSenStretch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := gen.ErdosRenyi(50+rng.Intn(50), 0.15, rng)
		for _, k := range []int{1, 2, 3} {
			h := BaswanaSen(g, k, rng)
			checkSpannerStretch(t, g, h, 2*k-1)
			if !graph.NewEdgeSetFromGraph(h).SubsetOf(g) {
				t.Fatal("spanner has phantom edges")
			}
		}
	}
}

func TestBaswanaSenK1IsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.ErdosRenyi(30, 0.2, rng)
	h := BaswanaSen(g, 1, rng)
	if !h.Equal(g) {
		t.Fatal("k=1 must keep all edges")
	}
}

func TestBaswanaSenDeterministicWithSeed(t *testing.T) {
	g := gen.ErdosRenyi(60, 0.2, rand.New(rand.NewSource(5)))
	a := BaswanaSen(g, 3, rand.New(rand.NewSource(42)))
	b := BaswanaSen(g, 3, rand.New(rand.NewSource(42)))
	if !a.Equal(b) {
		t.Fatal("same seed gave different spanners")
	}
}

func TestBaswanaSenSparsifies(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := gen.ErdosRenyi(200, 0.3, rng) // ~6000 edges
	h := BaswanaSen(g, 2, rng)
	// O(k n^{3/2}) ≈ 2·200·14 ≈ 5700; require substantial reduction.
	if float64(h.M()) > 0.8*float64(g.M()) {
		t.Fatalf("k=2 spanner barely sparsified: %d of %d", h.M(), g.M())
	}
}

func TestSpannerIsRemoteSpanner(t *testing.T) {
	// §1.2 / R12: an (α, 0)-spanner is an (α, 1−α)-remote-spanner.
	rng := rand.New(rand.NewSource(7))
	g := gen.ErdosRenyi(60, 0.15, rng)
	keep, _ := graph.LargestComponent(g)
	g = g.InducedSubgraph(keep)
	for _, k := range []int{2, 3} {
		h := BaswanaSen(g, k, rng)
		alpha, beta := RemoteStretch(int64(2*k-1), 0)
		if alpha != int64(2*k-1) || beta != int64(2-2*k) {
			t.Fatalf("RemoteStretch wrong: %d %d", alpha, beta)
		}
		if v := spanner.Check(g, h, spanner.NewStretch(alpha, beta)); v != nil {
			t.Fatalf("k=%d: %v", k, v)
		}
	}
}

func TestGreedyTSpannerStretch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := geom.UniformBox(80, 2, 3, rng)
	m := geom.EuclideanMetric{Points: pts}
	for _, t0 := range []float64{1.2, 1.5, 2.0} {
		s := GreedyTSpanner(m, 1.0, t0)
		if i, j := VerifyStretch(s, m, 1.0, t0); i != -1 {
			t.Fatalf("t=%v: pair (%d,%d) violates stretch", t0, i, j)
		}
	}
}

func TestGreedyTSpannerLinearOnDoubling(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := geom.UniformBox(250, 2, 3, rng)
	m := geom.EuclideanMetric{Points: pts}
	s := GreedyTSpanner(m, 1.0, 1.5)
	// Bounded average degree on doubling metrics.
	if s.M() > 12*m.Len() {
		t.Fatalf("greedy 1.5-spanner has %d edges for %d points", s.M(), m.Len())
	}
	edges := geom.BallGraphEdges(m, 1.0)
	if s.M() >= len(edges) {
		t.Fatalf("no sparsification: %d of %d", s.M(), len(edges))
	}
}

func TestFaultTolerantGreedyStretch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := geom.UniformBox(40, 2, 2, rng)
	m := geom.EuclideanMetric{Points: pts}
	tt := 1.8
	s := FaultTolerantGreedy(m, tt, 1)
	if i, j := VerifyStretch(s, m, math.Inf(1), tt); i != -1 {
		t.Fatalf("pair (%d,%d) violates stretch without faults", i, j)
	}
}

func TestFaultTolerantGreedySurvivesFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := geom.UniformBox(35, 2, 2, rng)
	m := geom.EuclideanMetric{Points: pts}
	tt := 2.0
	k := 1
	s := FaultTolerantGreedy(m, tt, k)
	// Delete each single vertex; all remaining pairs must keep stretch.
	blocked := make([]bool, m.Len())
	for f := 0; f < m.Len(); f++ {
		for i := range blocked {
			blocked[i] = false
		}
		blocked[f] = true
		for i := 0; i < m.Len(); i++ {
			for j := i + 1; j < m.Len(); j++ {
				if i == f || j == f {
					continue
				}
				d := m.Dist(i, j)
				if s.Distance(i, j, tt*d*(1+1e-9), blocked) > tt*d*(1+1e-9) {
					t.Fatalf("fault %d breaks pair (%d,%d)", f, i, j)
				}
			}
		}
	}
}

func TestFaultToleranceGrowsSize(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := geom.UniformBox(40, 2, 2, rng)
	m := geom.EuclideanMetric{Points: pts}
	s0 := FaultTolerantGreedy(m, 1.7, 0)
	s2 := FaultTolerantGreedy(m, 1.7, 2)
	if s2.M() <= s0.M() {
		t.Fatalf("k=2 spanner (%d) not larger than k=0 (%d)", s2.M(), s0.M())
	}
}
