package baseline

import (
	"math"
	"sort"

	"remspan/internal/graph"
)

// Additive2 returns a purely additive (1, 2)-spanner with
// O(n^{3/2} log n) edges (Aingworth–Chekuri–Indyk–Motwani):
//
//  1. keep every edge incident to a vertex of degree < √n;
//  2. greedily dominate the high-degree vertices;
//  3. add a full BFS tree from each dominator.
//
// For any pair, either the shortest path is all-low-degree (kept
// verbatim) or it passes a high-degree vertex whose dominator's BFS
// tree gives a detour of +2. Relevant to the paper's §1.2 discussion of
// additive stretch and the Woodruff lower bounds; via the §1.2 adapter
// it is a (1, 2)-remote-spanner.
func Additive2(g *graph.Graph) *graph.Graph {
	n := g.N()
	h := graph.New(n)
	if n == 0 {
		return h
	}
	s := int(math.Ceil(math.Sqrt(float64(n))))

	// Step 1: low-degree edges.
	g.EachEdge(func(u, v int) {
		if g.Degree(u) < s || g.Degree(v) < s {
			h.AddEdge(u, v)
		}
	})

	// Step 2: greedy dominating set of the high-degree vertices.
	// Candidates: all vertices; candidate x covers the high-degree
	// vertices in B(x, 1).
	high := make([]bool, n)
	remaining := 0
	for v := 0; v < n; v++ {
		if g.Degree(v) >= s {
			high[v] = true
			remaining++
		}
	}
	covered := make([]bool, n)
	var dominators []int
	for remaining > 0 {
		best, bestGain := -1, 0
		for x := 0; x < n; x++ {
			gain := 0
			if high[x] && !covered[x] {
				gain++
			}
			for _, w := range g.Neighbors(x) {
				if high[w] && !covered[w] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = x, gain
			}
		}
		if best == -1 {
			break // isolated high-degree vertices cannot exist (deg ≥ s ≥ 1)
		}
		dominators = append(dominators, best)
		if high[best] && !covered[best] {
			covered[best] = true
			remaining--
		}
		for _, w := range g.Neighbors(best) {
			if high[w] && !covered[w] {
				covered[w] = true
				remaining--
			}
		}
	}
	sort.Ints(dominators)

	// Step 3: BFS trees from the dominators.
	for _, d := range dominators {
		parent, dist := graph.BFSTree(g, d)
		for v := 0; v < n; v++ {
			if dist[v] != graph.Unreached && parent[v] >= 0 {
				h.AddEdge(v, int(parent[v]))
			}
		}
	}
	return h
}

// VerifyAdditive checks d_H(u, v) ≤ d_G(u, v) + beta for all pairs,
// returning a violating pair or (-1, -1).
func VerifyAdditive(g, h *graph.Graph, beta int) (int, int) {
	for u := 0; u < g.N(); u++ {
		dg := graph.BFS(g, u)
		dh := graph.BFS(h, u)
		for v := 0; v < g.N(); v++ {
			if dg[v] == graph.Unreached {
				continue
			}
			if dh[v] == graph.Unreached || dh[v] > dg[v]+int32(beta) {
				return u, v
			}
		}
	}
	return -1, -1
}
