package baseline

import (
	"math"
	"math/rand"
	"testing"

	"remspan/internal/gen"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

func TestAdditive2Stretch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		g := gen.ErdosRenyi(60+rng.Intn(60), 0.15, rng)
		h := Additive2(g)
		if u, v := VerifyAdditive(g, h, 2); u != -1 {
			dg := graph.BFS(g, u)[v]
			dh := graph.BFS(h, u)[v]
			t.Fatalf("trial %d: pair (%d,%d) d_G=%d d_H=%d", trial, u, v, dg, dh)
		}
		if h.M() > g.M() {
			t.Fatal("spanner larger than graph")
		}
	}
}

func TestAdditive2SparsifiesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.ErdosRenyi(220, 0.5, rng) // ~12k edges
	h := Additive2(g)
	n := float64(g.N())
	bound := 2 * math.Pow(n, 1.5) * math.Log(n)
	if float64(h.M()) > bound {
		t.Fatalf("additive spanner %d edges exceeds O(n^{3/2} log n) ≈ %.0f", h.M(), bound)
	}
	if h.M() >= g.M() {
		t.Fatalf("no sparsification on dense input: %d of %d", h.M(), g.M())
	}
}

func TestAdditive2OnSparseKeepsAll(t *testing.T) {
	// All degrees < √n: every edge is low-degree, spanner = graph.
	g := gen.Ring(30)
	h := Additive2(g)
	if !h.Equal(g) {
		t.Fatal("ring spanner should keep every edge")
	}
}

func TestAdditive2AsRemoteSpanner(t *testing.T) {
	// §1.2 adapter: a (1,2)-spanner is a (1, 2)-remote-spanner
	// (β − α + 1 = 2).
	rng := rand.New(rand.NewSource(3))
	g := gen.ErdosRenyi(100, 0.2, rng)
	keep, _ := graph.LargestComponent(g)
	g = g.InducedSubgraph(keep)
	h := Additive2(g)
	alpha, beta := RemoteStretch(1, 2)
	if alpha != 1 || beta != 2 {
		t.Fatalf("adapter gave (%d,%d)", alpha, beta)
	}
	if v := spanner.Check(g, h, spanner.NewStretch(alpha, beta)); v != nil {
		t.Fatalf("%v", v)
	}
}

func TestAdditive2EmptyAndTiny(t *testing.T) {
	if h := Additive2(graph.New(0)); h.N() != 0 {
		t.Fatal("empty graph")
	}
	g := gen.Complete(3)
	h := Additive2(g)
	if u, v := VerifyAdditive(g, h, 2); u != -1 {
		t.Fatalf("K3 violation at (%d,%d)", u, v)
	}
}
