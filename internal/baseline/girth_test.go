package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"remspan/internal/gen"
	"remspan/internal/graph"
)

// girth returns the length of the shortest cycle (0 if acyclic). BFS
// from every vertex; O(n·m), fine for test sizes.
func girth(g *graph.Graph) int {
	best := 0
	for s := 0; s < g.N(); s++ {
		dist := make([]int32, g.N())
		parent := make([]int32, g.N())
		for i := range dist {
			dist[i] = -1
			parent[i] = -1
		}
		dist[s] = 0
		queue := []int32{int32(s)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(int(u)) {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					parent[v] = u
					queue = append(queue, v)
				} else if v != parent[u] {
					// Cycle through s (or shorter elsewhere); length
					// bound dist[u]+dist[v]+1.
					c := int(dist[u] + dist[v] + 1)
					if best == 0 || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}

// Classic invariant: a greedy t-spanner contains no cycle of length
// ≤ t+1 (any such cycle's last-added edge would have had a short
// alternative path). This is the girth argument behind the
// O(n^{1+1/k}) size bound.
func TestGreedySpannerGirth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(30+rng.Intn(30), 0.25, rng)
		for _, tt := range []int{3, 5} {
			h := GreedySpanner(g, tt)
			if gi := girth(h); gi != 0 && gi <= tt+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGirthFixtures(t *testing.T) {
	if g := girth(gen.Ring(7)); g != 7 {
		t.Fatalf("C7 girth %d", g)
	}
	if g := girth(gen.Complete(5)); g != 3 {
		t.Fatalf("K5 girth %d", g)
	}
	if g := girth(gen.Petersen()); g != 5 {
		t.Fatalf("Petersen girth %d", g)
	}
	if g := girth(gen.Path(6)); g != 0 {
		t.Fatalf("path girth %d", g)
	}
	if g := girth(gen.Grid(3, 3)); g != 4 {
		t.Fatalf("grid girth %d", g)
	}
}

// The spanner size bound itself: a graph with girth > 2k has at most
// n^{1+1/k} + n edges (Moore bound flavor); check the greedy spanner
// respects the concrete bound at k=2 on dense inputs.
func TestGreedySpannerSizeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := gen.ErdosRenyi(150, 0.4, rng)
	h := GreedySpanner(g, 3) // k=2 → girth > 4
	n := float64(g.N())
	bound := n*float64(intSqrt(g.N())) + n // n^{3/2} + n
	if float64(h.M()) > bound {
		t.Fatalf("3-spanner has %d edges > bound %.0f", h.M(), bound)
	}
}

func intSqrt(n int) int {
	s := 0
	for s*s <= n {
		s++
	}
	return s
}
