// Package baseline implements the classical spanner constructions the
// paper compares against in Table 1:
//
//   - Greedy (2k−1)-spanners on unweighted graphs (Althöfer et al.),
//     the generic-graph comparator with O(n^{1+1/k}) edges.
//   - Baswana–Sen randomized (2k−1, 0)-spanners with O(k·n^{1+1/k})
//     expected edges (substituting for the (k, k−1)-spanners of [2] —
//     same size bound, see DESIGN.md §3).
//   - Greedy (1+ε, 0)-spanners on weighted unit-ball graphs with known
//     distances (substituting for [9]).
//   - k-fault-tolerant (1+ε, 0) geometric spanners via a
//     disjoint-short-path certificate (substituting for [8]).
//
// Every (α, β)-spanner is an (α, β−α+1)-remote-spanner (§1.2), so these
// also serve as remote-spanner baselines via RemoteStretch.
package baseline

import (
	"remspan/internal/graph"
)

// GreedySpanner returns the unweighted greedy t-spanner of g for odd
// stretch t = 2k−1: edges are scanned in lexicographic order and kept
// iff the spanner built so far has d_H(u, v) > t. The result satisfies
// d_H(u, v) ≤ t·d_G(u, v) for all pairs and has O(n^{1+1/k}) edges
// (girth argument).
func GreedySpanner(g *graph.Graph, t int) *graph.Graph {
	if t < 1 {
		panic("baseline: stretch must be >= 1")
	}
	h := graph.New(g.N())
	scratch := graph.NewBFSScratch(g.N())
	g.EachEdge(func(u, v int) {
		dist, _, _ := scratch.Bounded(h, u, t)
		if dist[v] == graph.Unreached || int(dist[v]) > t {
			h.AddEdge(u, v)
		}
	})
	return h
}

// RemoteStretch converts a spanner guarantee (α, β) into the
// remote-spanner guarantee it implies: (α, β−α+1) (§1.2: apply the
// spanner bound from the first hop u' of a shortest u→v path).
func RemoteStretch(alpha, beta int64) (int64, int64) {
	return alpha, beta - alpha + 1
}
