package geom

import (
	"math"

	"remspan/internal/graph"
)

// UnitDiskGraph builds the unit-disk graph of pts with connection
// radius r: i and j are adjacent iff their Euclidean distance is at
// most r. A uniform cell grid of side r makes construction
// O(n + output) for bounded densities instead of O(n²).
func UnitDiskGraph(pts []Point, r float64) *graph.Graph {
	n := len(pts)
	g := graph.New(n)
	if n == 0 || r <= 0 {
		return g
	}
	// Bounding box.
	minX, minY := pts[0][0], pts[0][1]
	for _, p := range pts {
		minX = math.Min(minX, p[0])
		minY = math.Min(minY, p[1])
	}
	cell := func(p Point) (int, int) {
		return int((p[0] - minX) / r), int((p[1] - minY) / r)
	}
	type cellKey struct{ x, y int }
	buckets := make(map[cellKey][]int32, n)
	for i, p := range pts {
		cx, cy := cell(p)
		buckets[cellKey{cx, cy}] = append(buckets[cellKey{cx, cy}], int32(i))
	}
	r2 := r * r
	for i, p := range pts {
		cx, cy := cell(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[cellKey{cx + dx, cy + dy}] {
					if int32(i) >= j {
						continue
					}
					q := pts[j]
					ddx, ddy := p[0]-q[0], p[1]-q[1]
					if ddx*ddx+ddy*ddy <= r2 {
						g.AddEdge(i, int(j))
					}
				}
			}
		}
	}
	return g
}

// UnitBallGraph builds the unit-ball graph of an arbitrary metric with
// connection radius r: i ~ j iff m.Dist(i, j) <= r. O(n²) — the metric
// is abstract so no spatial index applies.
func UnitBallGraph(m Metric, r float64) *graph.Graph {
	n := m.Len()
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if m.Dist(i, j) <= r {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// WeightedEdge is a metric-weighted graph edge, used by the classical
// geometric spanner baselines that *do* know the underlying distances.
type WeightedEdge struct {
	U, V int
	W    float64
}

// BallGraphEdges returns the weighted edge list of the unit-ball graph
// of m with radius r, sorted would be the caller's job.
func BallGraphEdges(m Metric, r float64) []WeightedEdge {
	var out []WeightedEdge
	n := m.Len()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := m.Dist(i, j); d <= r {
				out = append(out, WeightedEdge{U: i, V: j, W: d})
			}
		}
	}
	return out
}
