// Package geom provides the geometric substrate for the paper's input
// models: point sets in R^d, Poisson point processes in a fixed square,
// unit-disk graphs, unit-ball graphs of arbitrary metrics, and a
// packing-based doubling-dimension estimator.
package geom

import "math"

// Point is a point in R^d.
type Point []float64

// Dist returns the Euclidean distance between p and q (which must have
// equal dimension).
func (p Point) Dist(q Point) float64 {
	s := 0.0
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Metric exposes pairwise distances between n abstract points. The
// paper's unit ball graphs are defined over a metric of bounded
// doubling dimension; the metric itself is *not* given to the
// remote-spanner algorithms (only the graph is).
type Metric interface {
	Len() int
	Dist(i, j int) float64
}

// EuclideanMetric is the metric of a finite point set in R^d.
type EuclideanMetric struct {
	Points []Point
}

// Len returns the number of points.
func (m EuclideanMetric) Len() int { return len(m.Points) }

// Dist returns the Euclidean distance between points i and j.
func (m EuclideanMetric) Dist(i, j int) float64 { return m.Points[i].Dist(m.Points[j]) }
