package geom

import "math"

// DoublingDimension estimates the doubling dimension of a finite
// metric: the smallest p such that every ball of radius R can be
// covered by 2^p balls of radius R/2. The estimate is the log2 of the
// largest (R/2)-packing found inside any R-ball over a sample of
// centers and radii — a standard packing lower bound that matches the
// covering definition up to constants.
func DoublingDimension(m Metric) float64 {
	n := m.Len()
	if n <= 1 {
		return 0
	}
	// Candidate radii: spread between the smallest and largest pairwise
	// distances from a sample of anchor points.
	maxD, minD := 0.0, math.Inf(1)
	step := n/64 + 1
	for i := 0; i < n; i += step {
		for j := 0; j < n; j += step {
			if i == j {
				continue
			}
			d := m.Dist(i, j)
			if d > maxD {
				maxD = d
			}
			if d > 0 && d < minD {
				minD = d
			}
		}
	}
	if maxD == 0 || math.IsInf(minD, 1) {
		return 0
	}
	worst := 1
	for r := maxD; r >= minD; r /= 2 {
		for c := 0; c < n; c += step {
			// Greedy (r/2)-packing of the ball B(c, r).
			var packing []int
			for v := 0; v < n; v++ {
				if m.Dist(c, v) > r {
					continue
				}
				ok := true
				for _, u := range packing {
					if m.Dist(u, v) <= r/2 {
						ok = false
						break
					}
				}
				if ok {
					packing = append(packing, v)
				}
			}
			if len(packing) > worst {
				worst = len(packing)
			}
		}
	}
	return math.Log2(float64(worst))
}
