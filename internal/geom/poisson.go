package geom

import (
	"math"
	"math/rand"
)

// PoissonCount samples a Poisson(lambda) count using inversion for
// small lambda and a normal approximation beyond (lambda > 500), which
// is ample for generating point processes.
func PoissonCount(lambda float64, rng *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 500 {
		// Normal approximation with continuity correction.
		n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	// Knuth inversion.
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// PoissonSquare samples a uniform Poisson point process of intensity
// lambda on the side×side square: the number of points is
// Poisson(lambda·side²) and positions are i.i.d. uniform. This is the
// paper's random unit-disk-graph model ("uniform Poisson distribution
// of nodes in a fixed square").
func PoissonSquare(lambda, side float64, rng *rand.Rand) []Point {
	n := PoissonCount(lambda*side*side, rng)
	return UniformBox(n, 2, side, rng)
}

// UniformBox returns n i.i.d. uniform points in [0, side]^dim.
func UniformBox(n, dim int, side float64, rng *rand.Rand) []Point {
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, dim)
		for d := range p {
			p[d] = rng.Float64() * side
		}
		pts[i] = p
	}
	return pts
}
