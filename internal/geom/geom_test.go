package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestPointDist(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if d := p.Dist(q); math.Abs(d-5) > 1e-12 {
		t.Fatalf("dist=%v, want 5", d)
	}
	if d := p.Dist(p); d != 0 {
		t.Fatalf("self dist=%v", d)
	}
}

func TestEuclideanMetric(t *testing.T) {
	m := EuclideanMetric{Points: []Point{{0, 0}, {1, 0}, {0, 1}}}
	if m.Len() != 3 {
		t.Fatal("len wrong")
	}
	if d := m.Dist(1, 2); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Fatalf("dist=%v", d)
	}
	// symmetry & triangle inequality
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.Dist(i, j) != m.Dist(j, i) {
				t.Fatal("asymmetric")
			}
			for k := 0; k < 3; k++ {
				if m.Dist(i, j) > m.Dist(i, k)+m.Dist(k, j)+1e-12 {
					t.Fatal("triangle inequality violated")
				}
			}
		}
	}
}

func TestPoissonCountMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, lambda := range []float64{0.5, 5, 50, 800} {
		n := 4000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(PoissonCount(lambda, rng))
		}
		mean := sum / float64(n)
		tol := 5 * math.Sqrt(lambda/float64(n)) // ~5 sigma of the sample mean
		if math.Abs(mean-lambda) > tol+0.05 {
			t.Errorf("lambda=%v: sample mean %v", lambda, mean)
		}
	}
	if PoissonCount(0, rng) != 0 || PoissonCount(-1, rng) != 0 {
		t.Error("nonpositive lambda should give 0")
	}
}

func TestUniformBoxBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := UniformBox(100, 3, 2.5, rng)
	if len(pts) != 100 {
		t.Fatal("wrong count")
	}
	for _, p := range pts {
		if len(p) != 3 {
			t.Fatal("wrong dim")
		}
		for _, c := range p {
			if c < 0 || c > 2.5 {
				t.Fatalf("coordinate %v out of box", c)
			}
		}
	}
}

func TestPoissonSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := PoissonSquare(10, 4, rng) // expect ~160 points
	if len(pts) < 80 || len(pts) > 260 {
		t.Fatalf("unlikely point count %d for mean 160", len(pts))
	}
}

func TestUnitDiskGraphMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		pts := UniformBox(60, 2, 5, rng)
		r := 0.5 + rng.Float64()
		g := UnitDiskGraph(pts, r)
		m := EuclideanMetric{Points: pts}
		b := UnitBallGraph(m, r)
		if !g.Equal(b) {
			t.Fatalf("trial %d: grid UDG differs from brute force", trial)
		}
	}
}

func TestUnitDiskGraphEdgeCases(t *testing.T) {
	if g := UnitDiskGraph(nil, 1); g.N() != 0 {
		t.Fatal("empty input")
	}
	pts := []Point{{0, 0}, {0.5, 0}, {2, 0}}
	g := UnitDiskGraph(pts, 1)
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Fatal("wrong edges")
	}
	// boundary: exactly at distance r is connected
	g2 := UnitDiskGraph([]Point{{0, 0}, {1, 0}}, 1)
	if !g2.HasEdge(0, 1) {
		t.Fatal("boundary distance should connect")
	}
}

func TestBallGraphEdges(t *testing.T) {
	m := EuclideanMetric{Points: []Point{{0, 0}, {0.5, 0}, {3, 0}}}
	es := BallGraphEdges(m, 1)
	if len(es) != 1 || es[0].U != 0 || es[0].V != 1 {
		t.Fatalf("edges = %v", es)
	}
	if math.Abs(es[0].W-0.5) > 1e-12 {
		t.Fatalf("weight = %v", es[0].W)
	}
}

func TestDoublingDimensionLine(t *testing.T) {
	// Points on a line: doubling dimension ~1.
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{float64(i), 0}
	}
	p := DoublingDimension(EuclideanMetric{Points: pts})
	if p < 0.5 || p > 2.2 {
		t.Fatalf("line doubling dim estimate %v, want around 1", p)
	}
}

func TestDoublingDimensionPlane(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := UniformBox(300, 2, 10, rng)
	p := DoublingDimension(EuclideanMetric{Points: pts})
	if p < 1.2 || p > 3.5 {
		t.Fatalf("plane doubling dim estimate %v, want around 2", p)
	}
	// Degenerate inputs.
	if DoublingDimension(EuclideanMetric{}) != 0 {
		t.Fatal("empty metric should have dim 0")
	}
	if DoublingDimension(EuclideanMetric{Points: []Point{{1, 1}}}) != 0 {
		t.Fatal("singleton should have dim 0")
	}
}
