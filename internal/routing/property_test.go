package routing

import (
	"math/rand"
	"testing"

	"remspan/internal/graph"
	"remspan/internal/spanner"
	"remspan/internal/testutil"
)

// spannerBuilders returns the four production spanner constructions at
// their benchmark parameterizations.
func spannerBuilders() map[string]func(*graph.Graph) *graph.Graph {
	return map[string]func(*graph.Graph) *graph.Graph{
		"exact":      func(g *graph.Graph) *graph.Graph { return spanner.Exact(g).Graph() },
		"kconn3":     func(g *graph.Graph) *graph.Graph { return spanner.KConnecting(g, 3).Graph() },
		"twoconn":    func(g *graph.Graph) *graph.Graph { return spanner.TwoConnecting(g).Graph() },
		"lowstretch": func(g *graph.Graph) *graph.Graph { return spanner.LowStretch(g, 0.5).Graph() },
	}
}

// TestRoutingPaperBound is the differential property test of the
// forwarding plane: for every spanner builder × generator family, the
// table-driven walk, the greedy walk, and the batched-table walk all
// satisfy the paper's §1 guarantee — delivery whenever H_s connects
// the pair, route length at most d_{H_s}(s, t), and (for the
// table paths, whose tables come from one coherent build) believed
// distance strictly decreasing at every hop — and all report
// RouteUnreachable when H_s does not connect the pair.
func TestRoutingPaperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for famName, g := range routingFamilies() {
		for bName, build := range spannerBuilders() {
			h := build(g)
			tables := BuildTables(g, h)
			batched := BuildTablesBatched(g, h)
			rs := NewRouteScratch(g.N())
			for trial := 0; trial < 60; trial++ {
				s, tt := rng.Intn(g.N()), rng.Intn(g.N())
				if s == tt {
					continue
				}
				ds := spanner.ViewBFS(g, h, s)[tt]
				ctx := famName + "/" + bName
				for pathName, route := range map[string]Route{
					"table":   TableRoute(tables, g, s, tt),
					"batched": TableRoute(batched, g, s, tt),
					"greedy":  rs.GreedyRoute(g, h, s, tt),
				} {
					if ds == graph.Unreached {
						if route.OK || route.Reason != RouteUnreachable {
							t.Fatalf("%s/%s %d→%d: H_s-disconnected pair returned %v/%v",
								ctx, pathName, s, tt, route.OK, route.Reason)
						}
						continue
					}
					if !route.OK {
						t.Fatalf("%s/%s %d→%d: no route (reason %v), d_Hs=%d",
							ctx, pathName, s, tt, route.Reason, ds)
					}
					if int32(route.Hops) > ds {
						t.Fatalf("%s/%s %d→%d: %d hops > d_Hs=%d",
							ctx, pathName, s, tt, route.Hops, ds)
					}
					if route.Path[0] != int32(s) || route.Path[len(route.Path)-1] != int32(tt) {
						t.Fatalf("%s/%s %d→%d: bad endpoints %v", ctx, pathName, s, tt, route.Path)
					}
				}
				if ds == graph.Unreached {
					continue
				}
				// Strictly decreasing believed distance along the table
				// route (single coherent build).
				r := TableRoute(tables, g, s, tt)
				for i := 0; i+1 < len(r.Path); i++ {
					du := tables[r.Path[i]].Dist[tt]
					dw := tables[r.Path[i+1]].Dist[tt]
					if dw >= du {
						t.Fatalf("%s %d→%d: believed distance %d→%d at hop %d does not decrease",
							ctx, s, tt, du, dw, i)
					}
				}
			}
		}
	}
}

// TestGreedyMatchesReference fuzz-style-pins the scratch-threaded
// GreedyRoute hop-for-hop equal to the seed implementation (kept below
// as greedyRouteRef) across families and spanner variants.
func TestGreedyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for famName, g := range routingFamilies() {
		for hName, h := range routingSpanners(g, rng) {
			rs := NewRouteScratch(g.N())
			for trial := 0; trial < 80; trial++ {
				s, tt := rng.Intn(g.N()), rng.Intn(g.N())
				want := greedyRouteRef(g, h, s, tt)
				got := rs.GreedyRoute(g, h, s, tt)
				if want.OK != got.OK || want.Hops != got.Hops ||
					len(want.Path) != len(got.Path) {
					t.Fatalf("%s/%s %d→%d: ref %+v, got %+v", famName, hName, s, tt, want, got)
				}
				for i := range want.Path {
					if want.Path[i] != got.Path[i] {
						t.Fatalf("%s/%s %d→%d: path diverges at %d: %v vs %v",
							famName, hName, s, tt, i, want.Path, got.Path)
					}
				}
			}
		}
	}
}

// TestGreedyRouteZeroAlloc pins the warm scratch allocation-free
// (satellite: no fresh distance slice per hop).
func TestGreedyRouteZeroAlloc(t *testing.T) {
	g := routingFamilies()["udg"]
	h := spanner.Exact(g).Graph()
	cg, ch := graph.NewCSR(g), graph.NewCSR(h)
	rs := NewRouteScratch(g.N())
	rs.GreedyRoute(cg, ch, 0, g.N()-1) // warm
	testutil.PinAllocs(t, "warm GreedyRoute", 20, func() {
		rs.GreedyRoute(cg, ch, 0, g.N()-1)
		rs.GreedyRoute(cg, ch, g.N()/2, 1)
	})
}

// FuzzGreedyRouteEquivalence drives random family/spanner shapes
// through the scratch path and the seed reference, requiring identical
// routes (UDG/ER/grid/star incl. disconnected, per the churn-pin
// pattern of PR 2).
func FuzzGreedyRouteEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(40), uint8(30))
	f.Add(int64(2), uint8(1), uint8(80), uint8(70))
	f.Add(int64(3), uint8(2), uint8(25), uint8(0))
	f.Add(int64(4), uint8(3), uint8(61), uint8(99))
	f.Add(int64(5), uint8(4), uint8(13), uint8(50))
	f.Fuzz(func(t *testing.T, seed int64, family, size, drop uint8) {
		g, h := fuzzGraphSpanner(seed, family, size, drop)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		rs := NewRouteScratch(g.N())
		for trial := 0; trial < 10; trial++ {
			s, tt := rng.Intn(g.N()), rng.Intn(g.N())
			want := greedyRouteRef(g, h, s, tt)
			got := rs.GreedyRoute(g, h, s, tt)
			if want.OK != got.OK || want.Hops != got.Hops || len(want.Path) != len(got.Path) {
				t.Fatalf("%d→%d: ref %+v, got %+v", s, tt, want, got)
			}
			for i := range want.Path {
				if want.Path[i] != got.Path[i] {
					t.Fatalf("%d→%d: path diverges at %d", s, tt, i)
				}
			}
		}
	})
}

// greedyRouteRef is the seed GreedyRoute/viewBFSFrom pair, kept
// verbatim as the equivalence oracle for the scratch-threaded
// production path.
func greedyRouteRef(g, h *graph.Graph, s, t int) Route {
	if s == t {
		return Route{Path: []int32{int32(s)}, OK: true}
	}
	maxHops := g.N() + 1
	path := []int32{int32(s)}
	cur := s
	for hops := 0; hops < maxHops; hops++ {
		if cur == t {
			return Route{Path: path, Hops: len(path) - 1, OK: true}
		}
		if g.HasEdge(cur, t) {
			path = append(path, int32(t))
			cur = t
			continue
		}
		d := viewBFSFromRef(g, h, cur, t)
		best, bestD := int32(-1), int32(-1)
		for _, nb := range g.Neighbors(cur) {
			dv := d[nb]
			if dv == graph.Unreached {
				continue
			}
			if best == -1 || dv < bestD || (dv == bestD && nb < best) {
				best, bestD = nb, dv
			}
		}
		if best == -1 {
			return Route{}
		}
		path = append(path, best)
		cur = int(best)
	}
	return Route{}
}

func viewBFSFromRef(g, h *graph.Graph, owner, src int) []int32 {
	n := g.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = graph.Unreached
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	ownerNb := g.Neighbors(owner)
	inOwnerNb := func(v int32) bool {
		return g.HasEdge(owner, int(v))
	}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		push := func(v int32) {
			if dist[v] == graph.Unreached {
				dist[v] = dist[x] + 1
				queue = append(queue, v)
			}
		}
		for _, v := range h.Neighbors(int(x)) {
			push(v)
		}
		if int(x) == owner {
			for _, v := range ownerNb {
				push(v)
			}
		} else if inOwnerNb(x) {
			push(int32(owner))
		}
	}
	return dist
}
