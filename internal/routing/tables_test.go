package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"remspan/internal/gen"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

func TestTableMatchesViewDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnected(30, 60, rng)
	h := spanner.LowStretch(g, 0.5).Graph()
	for u := 0; u < g.N(); u++ {
		tab := BuildTable(g, h, u)
		want := spanner.ViewBFS(g, h, u)
		for v := 0; v < g.N(); v++ {
			if tab.Dist[v] != want[v] {
				t.Fatalf("u=%d v=%d: table dist %d, view BFS %d", u, v, tab.Dist[v], want[v])
			}
		}
	}
}

func TestTableNextHopsAreNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomConnected(25, 50, rng)
	h := spanner.Exact(g).Graph()
	for u := 0; u < g.N(); u++ {
		tab := BuildTable(g, h, u)
		for v := 0; v < g.N(); v++ {
			nh := tab.Next[v]
			if v == u {
				if int(nh) != u {
					t.Fatalf("self next hop %d", nh)
				}
				continue
			}
			if nh == -1 {
				if tab.Dist[v] != graph.Unreached {
					t.Fatalf("u=%d v=%d reachable but no next hop", u, v)
				}
				continue
			}
			if !g.HasEdge(u, int(nh)) {
				t.Fatalf("u=%d v=%d: next hop %d is not a neighbor", u, v, nh)
			}
		}
	}
}

func TestTableRouteExactSpannerIsShortest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(35, 70, rng)
	h := spanner.Exact(g).Graph()
	tables := BuildTables(g, h)
	d := graph.AllPairsDistances(g)
	for trial := 0; trial < 60; trial++ {
		s, tt := rng.Intn(g.N()), rng.Intn(g.N())
		r := TableRoute(tables, g, s, tt)
		if !r.OK {
			t.Fatalf("no table route %d→%d", s, tt)
		}
		if r.Hops != int(d[s][tt]) {
			t.Fatalf("table route %d→%d: %d hops, shortest %d", s, tt, r.Hops, d[s][tt])
		}
	}
}

// Property: hop-by-hop table routing over any of our remote-spanner
// families delivers within the construction's guarantee and never
// loops.
func TestQuickTableRouteWithinGuarantee(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(15+rng.Intn(20), 45, rng)
		res := spanner.LowStretch(g, 0.5)
		h := res.Graph()
		st := spanner.LowStretchOf(res.R)
		tables := BuildTables(g, h)
		d := graph.AllPairsDistances(g)
		for trial := 0; trial < 15; trial++ {
			s, tt := rng.Intn(g.N()), rng.Intn(g.N())
			r := TableRoute(tables, g, s, tt)
			if !r.OK {
				return false
			}
			if s != tt && !st.Holds(int64(d[s][tt]), int64(r.Hops)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRouteAgreesWithGreedyOnGuarantee(t *testing.T) {
	// Both data paths implement the §1 forwarding rule (move to a
	// neighbor with believed distance d−1). Tie-breaking can diverge —
	// the table follows its BFS tree, greedy the smallest-id argmin —
	// and later hops are evaluated in different views, so hop counts
	// need not be identical. What theory *does* promise for both:
	// delivery, and length ≤ α·d_G + β.
	rng := rand.New(rand.NewSource(4))
	g := randomConnected(30, 60, rng)
	h := spanner.TwoConnecting(g).Graph()
	st := spanner.NewStretch(2, -1)
	tables := BuildTables(g, h)
	d := graph.AllPairsDistances(g)
	for trial := 0; trial < 40; trial++ {
		s, tt := rng.Intn(g.N()), rng.Intn(g.N())
		a := TableRoute(tables, g, s, tt)
		b := GreedyRoute(g, h, s, tt)
		if !a.OK || !b.OK {
			t.Fatalf("delivery failed for %d→%d (table %v, greedy %v)", s, tt, a.OK, b.OK)
		}
		if s == tt || d[s][tt] < 2 {
			continue
		}
		if !st.Holds(int64(d[s][tt]), int64(a.Hops)) {
			t.Fatalf("table route %d→%d: %d hops vs d_G=%d breaks (2,−1)", s, tt, a.Hops, d[s][tt])
		}
		if !st.Holds(int64(d[s][tt]), int64(b.Hops)) {
			t.Fatalf("greedy route %d→%d: %d hops vs d_G=%d breaks (2,−1)", s, tt, b.Hops, d[s][tt])
		}
	}
}

// TestBuildTableDeepPath is the stack-safety regression for the
// next-hop resolution: on a 50k-vertex path graph the seed-era
// recursive resolve chained one stack frame per path vertex; the
// canonical rule resolves iteratively in BFS level order, so arbitrary
// depth costs O(1) stack. Both builders and the end-to-end route are
// exercised at full depth.
func TestBuildTableDeepPath(t *testing.T) {
	const n = 50_000
	g := gen.Path(n)
	h := g.Clone()
	tab := BuildTable(g, h, 0)
	for v := 1; v < n; v++ {
		if tab.Dist[v] != int32(v) || tab.Next[v] != 1 {
			t.Fatalf("owner 0 dest %d: (next %d, dist %d), want (1, %d)", v, tab.Next[v], tab.Dist[v], v)
		}
	}
	// Batched, subset form: one owner, full-depth sweep.
	all := make([]Table, n)
	all[0] = Table{Next: make([]int32, n), Dist: make([]int32, n)}
	NewBatchBuilder(n).BuildInto(g, h, all, []int32{0})
	for v := 0; v < n; v++ {
		if all[0].Next[v] != tab.Next[v] || all[0].Dist[v] != tab.Dist[v] {
			t.Fatalf("batched deep path diverges at %d", v)
		}
	}
	// End-to-end full-length walk (all-owners tables, so a smaller
	// path: the stack-depth regression above is what needs 50k).
	const wn = 3000
	wg := gen.Path(wn)
	tables := BuildTables(wg, wg.Clone())
	r := TableRoute(tables, wg, 0, wn-1)
	if !r.OK || r.Hops != wn-1 {
		t.Fatalf("deep route: ok=%v hops=%d reason=%v", r.OK, r.Hops, r.Reason)
	}
}

// TestTableRouteReasons pins the typed failure contract: genuinely
// missing connectivity, stale table state, and inconsistent-table
// loops are distinguishable, with the failing node reported.
func TestTableRouteReasons(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3) // 4 isolated
	tables := BuildTables(g, g.Clone())

	if r := TableRoute(tables, g, 0, 4); r.OK || r.Reason != RouteUnreachable || r.At != 0 {
		t.Fatalf("unreachable: %+v", r)
	}
	// The physical link {1,2} vanishes; node 1's table still names 2.
	phys := g.Clone()
	phys.RemoveEdge(1, 2)
	if r := TableRoute(tables, phys, 0, 3); r.OK || r.Reason != RouteStaleLink || r.At != 1 {
		t.Fatalf("stale: %+v", r)
	}
	// Forged mutually-inconsistent tables: 0 and 1 point at each other.
	forged := BuildTables(g, g.Clone())
	forged[0].Next[3] = 1
	forged[1].Next[3] = 0
	if r := TableRoute(forged, g, 0, 3); r.OK || r.Reason != RouteTrapped {
		t.Fatalf("trapped: %+v", r)
	}
	// Delivery reports RouteDelivered.
	if r := TableRoute(tables, g, 0, 3); !r.OK || r.Reason != RouteDelivered || r.At != 3 {
		t.Fatalf("delivered: %+v", r)
	}
	for _, want := range []struct {
		r    RouteReason
		name string
	}{{RouteDelivered, "delivered"}, {RouteUnreachable, "unreachable"},
		{RouteStaleLink, "stale-link"}, {RouteTrapped, "trapped"}, {RouteReason(99), "unknown"}} {
		if want.r.String() != want.name {
			t.Fatalf("RouteReason(%d).String() = %q", want.r, want.r.String())
		}
	}
}

func TestTableRouteUnreachable(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	tables := BuildTables(g, g.Clone())
	if r := TableRoute(tables, g, 0, 3); r.OK {
		t.Fatal("routed across components")
	}
	if r := TableRoute(tables, g, 0, 0); !r.OK || r.Hops != 0 {
		t.Fatal("self route")
	}
	_ = gen.Path // keep fixture import alive for readability
}
