package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"remspan/internal/gen"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

func TestTableMatchesViewDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnected(30, 60, rng)
	h := spanner.LowStretch(g, 0.5).Graph()
	for u := 0; u < g.N(); u++ {
		tab := BuildTable(g, h, u)
		want := spanner.ViewBFS(g, h, u)
		for v := 0; v < g.N(); v++ {
			if tab.Dist[v] != want[v] {
				t.Fatalf("u=%d v=%d: table dist %d, view BFS %d", u, v, tab.Dist[v], want[v])
			}
		}
	}
}

func TestTableNextHopsAreNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomConnected(25, 50, rng)
	h := spanner.Exact(g).Graph()
	for u := 0; u < g.N(); u++ {
		tab := BuildTable(g, h, u)
		for v := 0; v < g.N(); v++ {
			nh := tab.Next[v]
			if v == u {
				if int(nh) != u {
					t.Fatalf("self next hop %d", nh)
				}
				continue
			}
			if nh == -1 {
				if tab.Dist[v] != graph.Unreached {
					t.Fatalf("u=%d v=%d reachable but no next hop", u, v)
				}
				continue
			}
			if !g.HasEdge(u, int(nh)) {
				t.Fatalf("u=%d v=%d: next hop %d is not a neighbor", u, v, nh)
			}
		}
	}
}

func TestTableRouteExactSpannerIsShortest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(35, 70, rng)
	h := spanner.Exact(g).Graph()
	tables := BuildTables(g, h)
	d := graph.AllPairsDistances(g)
	for trial := 0; trial < 60; trial++ {
		s, tt := rng.Intn(g.N()), rng.Intn(g.N())
		r := TableRoute(tables, g, s, tt)
		if !r.OK {
			t.Fatalf("no table route %d→%d", s, tt)
		}
		if r.Hops != int(d[s][tt]) {
			t.Fatalf("table route %d→%d: %d hops, shortest %d", s, tt, r.Hops, d[s][tt])
		}
	}
}

// Property: hop-by-hop table routing over any of our remote-spanner
// families delivers within the construction's guarantee and never
// loops.
func TestQuickTableRouteWithinGuarantee(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(15+rng.Intn(20), 45, rng)
		res := spanner.LowStretch(g, 0.5)
		h := res.Graph()
		st := spanner.LowStretchOf(res.R)
		tables := BuildTables(g, h)
		d := graph.AllPairsDistances(g)
		for trial := 0; trial < 15; trial++ {
			s, tt := rng.Intn(g.N()), rng.Intn(g.N())
			r := TableRoute(tables, g, s, tt)
			if !r.OK {
				return false
			}
			if s != tt && !st.Holds(int64(d[s][tt]), int64(r.Hops)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRouteAgreesWithGreedyOnGuarantee(t *testing.T) {
	// Both data paths implement the §1 forwarding rule (move to a
	// neighbor with believed distance d−1). Tie-breaking can diverge —
	// the table follows its BFS tree, greedy the smallest-id argmin —
	// and later hops are evaluated in different views, so hop counts
	// need not be identical. What theory *does* promise for both:
	// delivery, and length ≤ α·d_G + β.
	rng := rand.New(rand.NewSource(4))
	g := randomConnected(30, 60, rng)
	h := spanner.TwoConnecting(g).Graph()
	st := spanner.NewStretch(2, -1)
	tables := BuildTables(g, h)
	d := graph.AllPairsDistances(g)
	for trial := 0; trial < 40; trial++ {
		s, tt := rng.Intn(g.N()), rng.Intn(g.N())
		a := TableRoute(tables, g, s, tt)
		b := GreedyRoute(g, h, s, tt)
		if !a.OK || !b.OK {
			t.Fatalf("delivery failed for %d→%d (table %v, greedy %v)", s, tt, a.OK, b.OK)
		}
		if s == tt || d[s][tt] < 2 {
			continue
		}
		if !st.Holds(int64(d[s][tt]), int64(a.Hops)) {
			t.Fatalf("table route %d→%d: %d hops vs d_G=%d breaks (2,−1)", s, tt, a.Hops, d[s][tt])
		}
		if !st.Holds(int64(d[s][tt]), int64(b.Hops)) {
			t.Fatalf("greedy route %d→%d: %d hops vs d_G=%d breaks (2,−1)", s, tt, b.Hops, d[s][tt])
		}
	}
}

func TestTableRouteUnreachable(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	tables := BuildTables(g, g.Clone())
	if r := TableRoute(tables, g, 0, 3); r.OK {
		t.Fatal("routed across components")
	}
	if r := TableRoute(tables, g, 0, 0); !r.OK || r.Hops != 0 {
		t.Fatal("self route")
	}
	_ = gen.Path // keep fixture import alive for readability
}
