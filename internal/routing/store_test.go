package routing

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"remspan/internal/dynamic"
	"remspan/internal/graph"
	"remspan/internal/testutil"
)

// storeFixture builds a maintainer+store over a connected random
// graph with the kgreedy1 (exact, R=1) construction.
func storeFixture(n, extra int, seed int64) (*graph.Graph, *Store) {
	rng := rand.New(rand.NewSource(seed))
	g := randomConnected(n, extra, rng)
	spec := dynamic.Builders()[0] // kgreedy1
	m := dynamic.New(g, spec.Radius, spec.Build)
	return g, NewStore(m)
}

// churnPool returns distinct candidate pairs for toggling.
func churnPool(n, count int, rng *rand.Rand) [][2]int {
	seen := map[[2]int]bool{}
	var out [][2]int
	for len(out) < count {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		out = append(out, [2]int{u, v})
	}
	return out
}

// TestStoreColdStartMatchesScalar pins epoch 1 bit-identical to the
// scalar reference over the maintainer's graph and spanner.
func TestStoreColdStartMatchesScalar(t *testing.T) {
	_, st := storeFixture(60, 90, 1)
	m := st.Maintainer()
	want := BuildTables(m.Graph(), m.Spanner().Graph())
	tablesEqual(t, "cold", want, st.Epoch().Tables())
}

// TestStoreChurnSemantics drives batches through the store and pins
// the staleness contract after every batch: the spanner mirror tracks
// the maintainer exactly; every dirty owner's rows are bit-identical
// to a fresh scalar build on the post-batch graph+spanner; every clean
// owner's rows are carried over untouched (same backing arrays); and
// RebuildAll restores full bit-identity.
func TestStoreChurnSemantics(t *testing.T) {
	_, st := storeFixture(70, 100, 2)
	m := st.Maintainer()
	rng := rand.New(rand.NewSource(3))
	pool := churnPool(m.Graph().N(), 60, rng)
	scratch := NewTableScratch(m.Graph().N())
	next := make([]int32, m.Graph().N())
	dist := make([]int32, m.Graph().N())

	for round := 0; round < 12; round++ {
		prev := st.Epoch()
		batch := make([]dynamic.Change, 0, 6)
		for i := 0; i < 1+rng.Intn(5); i++ {
			p := pool[rng.Intn(len(pool))]
			kind := dynamic.AddEdge
			if m.Graph().HasEdge(p[0], p[1]) {
				kind = dynamic.RemoveEdge
			}
			batch = append(batch, dynamic.Change{Kind: kind, U: p[0], V: p[1]})
		}
		applied := st.ApplyBatch(batch)
		ep := st.Epoch()
		if applied == 0 {
			continue
		}
		if ep.Seq() != prev.Seq()+1 {
			t.Fatalf("round %d: epoch %d after %d", round, ep.Seq(), prev.Seq())
		}
		if !st.h.g.Equal(m.Spanner().Graph()) {
			t.Fatalf("round %d: spanner mirror diverged", round)
		}
		dirty := map[int32]bool{}
		for _, u := range m.DirtyRoots() {
			dirty[u] = true
		}
		hh := st.h.g
		for u := 0; u < m.Graph().N(); u++ {
			tab := ep.Tables()[u]
			if dirty[int32(u)] {
				scratch.BuildTableInto(m.Graph(), hh, u, next, dist)
				for v := range next {
					if tab.Next[v] != next[v] || tab.Dist[v] != dist[v] {
						t.Fatalf("round %d: dirty owner %d dest %d: (next %d, dist %d), want (%d, %d)",
							round, u, v, tab.Next[v], tab.Dist[v], next[v], dist[v])
					}
				}
			} else {
				if &tab.Next[0] != &prev.Tables()[u].Next[0] || &tab.Dist[0] != &prev.Tables()[u].Dist[0] {
					t.Fatalf("round %d: clean owner %d was rebuilt or copied", round, u)
				}
			}
		}
	}

	st.RebuildAll()
	want := BuildTables(m.Graph(), m.Spanner().Graph())
	tablesEqual(t, "rebuild-all", want, st.Epoch().Tables())
}

// TestStoreStaleVsUnreachable pins the typed-reason contract end to
// end: a physical view ahead of the control plane produces
// RouteStaleLink (not RouteUnreachable), the offending owner is queued
// and rebuilt by the next batch, and genuinely missing connectivity
// reports RouteUnreachable.
func TestStoreStaleVsUnreachable(t *testing.T) {
	g := graph.New(6)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1) // path 0-1-2-3-4; 5 isolated
	}
	spec := dynamic.Builders()[0]
	st := NewStore(dynamic.New(g, spec.Radius, spec.Build))
	r := st.NewReader()

	// Unreachable: the isolated vertex.
	if rt := r.RouteOn(st.Maintainer().Graph(), 0, 5); rt.OK || rt.Reason != RouteUnreachable {
		t.Fatalf("isolated target: %+v", rt)
	}

	// The physical network drops {2,3} before the control plane hears
	// about it.
	phys := st.Maintainer().Graph().Clone()
	phys.RemoveEdge(2, 3)
	rt := r.RouteOn(phys, 0, 4)
	if rt.OK || rt.Reason != RouteStaleLink || rt.At != 2 {
		t.Fatalf("stale link: %+v", rt)
	}

	// The stale mark alone (an empty batch) must force a republish of
	// the marked owner.
	seq := st.Epoch().Seq()
	st.ApplyBatch(nil)
	if st.Epoch().Seq() != seq+1 {
		t.Fatal("stale mark did not trigger a republish")
	}

	// Once the control plane applies the change, the route resolves
	// around... there is no way around on a path graph: it reports
	// unreachable, not stale.
	st.ApplyBatch([]dynamic.Change{{Kind: dynamic.RemoveEdge, U: 2, V: 3}})
	if rt := r.RouteOn(phys, 0, 4); rt.OK || rt.Reason != RouteUnreachable {
		t.Fatalf("after catch-up: %+v", rt)
	}
	// And a target still connected routes fine.
	if rt := r.RouteOn(phys, 0, 2); !rt.OK || rt.Hops != 2 {
		t.Fatalf("surviving route: %+v", rt)
	}
}

// TestStoreStaleRerouteOnFresherEpoch pins RouteOn's retry: when the
// writer has already published a repaired epoch, the reader resolves
// the route instead of reporting stale.
func TestStoreStaleRerouteOnFresherEpoch(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 2) // 0-1-2 short, 0-3-4-2 detour
	spec := dynamic.Builders()[0]
	st := NewStore(dynamic.New(g, spec.Radius, spec.Build))
	r := st.NewReader()

	phys := st.Maintainer().Graph().Clone()
	phys.RemoveEdge(1, 2)
	// Control plane catches up first; the reader's walk then finds the
	// detour via the fresh epoch with no stale verdict.
	st.ApplyBatch([]dynamic.Change{{Kind: dynamic.RemoveEdge, U: 1, V: 2}})
	rt := r.RouteOn(phys, 0, 2)
	if !rt.OK || rt.Hops != 3 {
		t.Fatalf("detour route: %+v", rt)
	}
}

// TestStoreConcurrentReaders hammers lock-free readers against a
// churning writer under the race detector: every observed row must be
// internally coherent — next hop and believed distance agree on
// reachability, in range, with the owner's self-entries intact. (A
// recycled row refilled mid-read would violate these; note an epoch
// may legitimately mix fresh and bounded-stale rows, so cross-row
// monotonicity is not an invariant here.)
func TestStoreConcurrentReaders(t *testing.T) {
	_, st := storeFixture(80, 120, 4)
	m := st.Maintainer()
	n := m.Graph().N()
	rngW := rand.New(rand.NewSource(5))
	pool := churnPool(n, 50, rngW)

	var stop atomic.Bool
	var wg sync.WaitGroup
	const readers = 4
	errs := make(chan string, readers)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			r := st.NewReader()
			for !stop.Load() {
				s, tt := rng.Intn(n), rng.Intn(n)
				ep := r.enter()
				cur, hops := s, 0
				for cur != tt && hops <= n {
					tab := ep.tables[cur]
					nh, d := tab.Next[tt], tab.Dist[tt]
					if (nh < 0) != (d == graph.Unreached) || nh >= int32(n) ||
						tab.Next[cur] != int32(cur) || tab.Dist[cur] != 0 {
						errs <- "row invariant violated: torn row?"
						r.exit()
						return
					}
					if nh < 0 {
						break
					}
					cur, hops = int(nh), hops+1
				}
				r.exit()
				if r.NextHop(s, tt) == -2 {
					errs <- "impossible next hop"
					return
				}
				_ = r.Route(s, tt)
			}
		}(int64(100 + w))
	}
	for round := 0; round < 60; round++ {
		batch := make([]dynamic.Change, 0, 8)
		for i := 0; i < 1+rngW.Intn(7); i++ {
			p := pool[rngW.Intn(len(pool))]
			kind := dynamic.AddEdge
			if m.Graph().HasEdge(p[0], p[1]) {
				kind = dynamic.RemoveEdge
			}
			batch = append(batch, dynamic.Change{Kind: kind, U: p[0], V: p[1]})
		}
		st.ApplyBatch(batch)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

// TestStoreApplyBatchZeroAlloc pins the warm-tick writer path
// allocation-free: a closed add+remove toggle batch (net-zero change,
// full dirty-ball rebuild) with prompt/idle readers must recycle every
// buffer through the reclamation pools.
func TestStoreApplyBatchZeroAlloc(t *testing.T) {
	g, st := storeFixture(90, 140, 6)
	// A closed batch: add a fresh edge, then remove it again.
	u, v := -1, -1
	for a := 0; a < g.N() && u < 0; a++ {
		for b := a + 2; b < g.N(); b++ {
			if !g.HasEdge(a, b) {
				u, v = a, b
				break
			}
		}
	}
	batch := []dynamic.Change{
		{Kind: dynamic.AddEdge, U: u, V: v},
		{Kind: dynamic.RemoveEdge, U: u, V: v},
	}
	for i := 0; i < 6; i++ { // warm pools, delta rows, map buckets
		st.ApplyBatch(batch)
	}
	testutil.PinAllocs(t, "warm ApplyBatch", 10, func() {
		st.ApplyBatch(batch)
	})
}

// TestStoreReclamationUnderReaderStall pins safety over throughput: a
// reader parked inside an old epoch must keep its buffers alive across
// many publishes, and they are recycled only after it leaves. It also
// pins the boundedness half of the contract: a leaked stalled reader
// *bounds* writer-side retention at maxRetired entries — it never
// grows the retirement queue without limit — because past the cap the
// writer drops the oldest entries to the GC instead of holding them.
func TestStoreReclamationUnderReaderStall(t *testing.T) {
	_, st := storeFixture(50, 70, 7)
	m := st.Maintainer()
	r := st.NewReader()
	ep := r.enter() // park inside epoch 1
	next0 := &ep.tables[0].Next[0]

	rng := rand.New(rand.NewSource(8))
	pool := churnPool(m.Graph().N(), 30, rng)
	churn := func(rounds int) {
		for round := 0; round < rounds; round++ {
			p := pool[rng.Intn(len(pool))]
			kind := dynamic.AddEdge
			if m.Graph().HasEdge(p[0], p[1]) {
				kind = dynamic.RemoveEdge
			}
			st.ApplyBatch([]dynamic.Change{{Kind: kind, U: p[0], V: p[1]}})
		}
	}
	churn(20)
	if len(st.retired) == 0 {
		t.Fatal("expected retirement backlog while a reader stalls")
	}
	// The parked reader's view must still be the untouched epoch-1 data.
	if ep.Seq() != 1 || &ep.tables[0].Next[0] != next0 {
		t.Fatal("stalled reader's epoch was recycled under it")
	}
	// Keep churning well past the retention cap: the backlog must
	// saturate at maxRetired, not track the publish count.
	churn(3 * maxRetired)
	if len(st.retired) > maxRetired {
		t.Fatalf("stalled reader grew the retirement queue to %d entries (cap %d)",
			len(st.retired), maxRetired)
	}
	if ep.Seq() != 1 || &ep.tables[0].Next[0] != next0 {
		t.Fatal("stalled reader's epoch was recycled after the cap kicked in")
	}
	r.exit()
	st.ApplyBatch([]dynamic.Change{{Kind: dynamic.AddEdge, U: pool[0][0], V: pool[0][1]}})
	st.ApplyBatch([]dynamic.Change{{Kind: dynamic.RemoveEdge, U: pool[0][0], V: pool[0][1]}})
	if len(st.retired) > 2 {
		t.Fatalf("backlog not drained after reader left: %d entries", len(st.retired))
	}
}

// TestStoreReaderLookups pins the reader lookup surface against the
// published tables directly.
func TestStoreReaderLookups(t *testing.T) {
	_, st := storeFixture(40, 60, 9)
	m := st.Maintainer()
	n := m.Graph().N()
	r := st.NewReader()
	tabs := st.Epoch().Tables()
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		s, tt := rng.Intn(n), rng.Intn(n)
		if got, want := r.NextHop(s, tt), tabs[s].Next[tt]; got != want {
			t.Fatalf("NextHop(%d,%d) = %d, want %d", s, tt, got, want)
		}
		if got, want := r.Dist(s, tt), tabs[s].Dist[tt]; got != want {
			t.Fatalf("Dist(%d,%d) = %d, want %d", s, tt, got, want)
		}
		rt := r.Route(s, tt)
		ref := TableRoute(tabs, m.Graph(), s, tt)
		if rt.OK != ref.OK || rt.Hops != ref.Hops || rt.Reason != ref.Reason {
			t.Fatalf("Route(%d,%d) = %+v, TableRoute %+v", s, tt, rt, ref)
		}
	}
	if rt := r.Route(3, 3); !rt.OK || rt.Hops != 0 {
		t.Fatalf("self route: %+v", rt)
	}
}

// TestStoreReaderClose pins that a closed reader stops participating
// in reclamation: a parked reader blocks buffer recycling, closing it
// (after exiting) releases the backlog for the next batches.
func TestStoreReaderClose(t *testing.T) {
	_, st := storeFixture(40, 60, 11)
	m := st.Maintainer()
	r := st.NewReader()
	if rt := r.Route(0, 1); !rt.OK {
		t.Fatalf("route: %+v", rt)
	}
	r.enter() // park
	pool := churnPool(m.Graph().N(), 10, rand.New(rand.NewSource(12)))
	toggle := func(i int) {
		p := pool[i%len(pool)]
		kind := dynamic.AddEdge
		if m.Graph().HasEdge(p[0], p[1]) {
			kind = dynamic.RemoveEdge
		}
		st.ApplyBatch([]dynamic.Change{{Kind: kind, U: p[0], V: p[1]}})
	}
	for i := 0; i < 8; i++ {
		toggle(i)
	}
	if len(st.retired) == 0 {
		t.Fatal("parked reader should hold a retirement backlog")
	}
	r.exit()
	r.Close()
	toggle(8)
	toggle(9)
	if len(st.retired) > 2 {
		t.Fatalf("backlog survived Close: %d entries", len(st.retired))
	}
}

// TestStoreReaderDoubleClose pins that Close is idempotent: closing an
// already-closed reader is a no-op, and it never unregisters a
// *different* reader that happens to occupy the registry slot — the
// failure mode of a naive scan-and-remove under double-close.
func TestStoreReaderDoubleClose(t *testing.T) {
	_, st := storeFixture(30, 45, 13)
	a := st.NewReader()
	b := st.NewReader()
	a.Close()
	a.Close() // must not panic, must not touch b's registration
	a.Close()
	st.readersMu.Lock()
	live := len(st.readers)
	st.readersMu.Unlock()
	if live != 1 {
		t.Fatalf("after double-closing a, %d readers registered, want 1 (b)", live)
	}
	// b must still participate in reclamation: park it, churn, and the
	// backlog must be held on its behalf.
	b.enter()
	m := st.Maintainer()
	pool := churnPool(m.Graph().N(), 8, rand.New(rand.NewSource(14)))
	for i := 0; i < 6; i++ {
		p := pool[i%len(pool)]
		kind := dynamic.AddEdge
		if m.Graph().HasEdge(p[0], p[1]) {
			kind = dynamic.RemoveEdge
		}
		st.ApplyBatch([]dynamic.Change{{Kind: kind, U: p[0], V: p[1]}})
	}
	if len(st.retired) == 0 {
		t.Fatal("double-closed reader a took reader b's registration with it")
	}
	b.exit()
	b.Close()
	b.Close()
}
