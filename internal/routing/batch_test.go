package routing

import (
	"math/rand"
	"runtime"
	"testing"

	"remspan/internal/gen"
	"remspan/internal/geom"
	"remspan/internal/graph"
	"remspan/internal/spanner"
	"remspan/internal/testutil"
)

// routingFamilies returns the generator families the forwarding plane
// is pinned against: geometric (UDG), random (ER), structured (grid,
// star, ring), tree, and disconnected inputs.
func routingFamilies() map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(42))
	pts := geom.UniformBox(170, 2, 4, rng)
	fams := map[string]*graph.Graph{
		"udg":  geom.UnitDiskGraph(pts, 1),
		"er":   gen.ErdosRenyi(160, 0.03, rand.New(rand.NewSource(5))),
		"grid": gen.Grid(12, 11),
		"star": gen.Star(130),
		"ring": gen.Ring(120),
		"tree": gen.RandomTree(150, rand.New(rand.NewSource(6))),
	}
	// Disconnected: two ER blobs plus isolated vertices.
	disc := graph.New(180)
	a := gen.ErdosRenyi(70, 0.06, rand.New(rand.NewSource(7)))
	for _, e := range a.Edges() {
		disc.AddEdge(int(e[0]), int(e[1]))
	}
	b := gen.ErdosRenyi(80, 0.05, rand.New(rand.NewSource(8)))
	for _, e := range b.Edges() {
		disc.AddEdge(int(e[0])+75, int(e[1])+75)
	}
	fams["disconnected"] = disc
	return fams
}

// routingSpanners returns advertised-spanner variants for g: the exact
// remote-spanner, a deliberately damaged subgraph of it, and the empty
// spanner (only star edges in every view).
func routingSpanners(g *graph.Graph, rng *rand.Rand) map[string]*graph.Graph {
	ex := spanner.Exact(g).Graph()
	broken := graph.New(g.N())
	for _, e := range ex.Edges() {
		if rng.Float64() >= 0.35 {
			broken.AddEdge(int(e[0]), int(e[1]))
		}
	}
	return map[string]*graph.Graph{
		"exact":  ex,
		"broken": broken,
		"empty":  graph.New(g.N()),
	}
}

func tablesEqual(t *testing.T, ctx string, want, got []Table) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d tables vs %d", ctx, len(want), len(got))
	}
	for u := range want {
		if want[u].Owner != got[u].Owner {
			t.Fatalf("%s: owner %d vs %d", ctx, want[u].Owner, got[u].Owner)
		}
		for v := range want[u].Next {
			if want[u].Next[v] != got[u].Next[v] || want[u].Dist[v] != got[u].Dist[v] {
				t.Fatalf("%s: owner %d dest %d: scalar (next %d, dist %d), batched (next %d, dist %d)",
					ctx, u, v, want[u].Next[v], want[u].Dist[v], got[u].Next[v], got[u].Dist[v])
			}
		}
	}
}

// TestBatchedTablesMatchScalar pins the word-parallel builder
// bit-identical — Next and Dist, every owner, every destination —
// against the scalar reference on every generator family and spanner
// variant, over Graph, CSR and CSRDelta views.
func TestBatchedTablesMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for name, g := range routingFamilies() {
		for hname, h := range routingSpanners(g, rng) {
			want := BuildTables(g, h)
			got := BuildTablesBatched(g, h)
			tablesEqual(t, name+"/"+hname+"/graph", want, got)

			cg, ch := graph.NewCSR(g), graph.NewCSR(h)
			gotCSR := BuildTablesBatched(cg, ch)
			tablesEqual(t, name+"/"+hname+"/csr", want, gotCSR)
		}
	}
}

// TestBatchBuilderSubsets pins subset builds (the Store's dirty-owner
// path): arbitrary owner subsets in arbitrary order produce exactly
// the scalar rows, and untouched tables stay untouched.
func TestBatchBuilderSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := routingFamilies()["udg"]
	h := spanner.Exact(g).Graph()
	n := g.N()
	want := BuildTables(g, h)

	b := NewBatchBuilder(n)
	tables := NewTables(n)
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(n)
		k := 1 + rng.Intn(n-1)
		owners := make([]int32, k)
		for i := range owners {
			owners[i] = int32(perm[i])
		}
		for _, u := range owners { // poison to catch missed writes
			for v := 0; v < n; v++ {
				tables[u].Next[v] = -7
				tables[u].Dist[v] = -7
			}
		}
		b.BuildInto(g, h, tables, owners)
		for _, u := range owners {
			for v := 0; v < n; v++ {
				if tables[u].Next[v] != want[u].Next[v] || tables[u].Dist[v] != want[u].Dist[v] {
					t.Fatalf("trial %d owner %d dest %d: (next %d, dist %d), want (next %d, dist %d)",
						trial, u, v, tables[u].Next[v], tables[u].Dist[v], want[u].Next[v], want[u].Dist[v])
				}
			}
		}
	}
}

// TestBatchBuilderZeroAlloc pins the warm builder allocation-free
// across repeated group builds.
func TestBatchBuilderZeroAlloc(t *testing.T) {
	g := routingFamilies()["udg"]
	h := spanner.Exact(g).Graph()
	n := g.N()
	cg, ch := graph.NewCSR(g), graph.NewCSR(h)
	order, _ := graph.BatchOrder(cg)
	b := NewBatchBuilder(n)
	tables := NewTables(n)
	b.BuildInto(cg, ch, tables, order) // warm
	testutil.PinAllocs(t, "warm batched build", 5, func() {
		b.BuildInto(cg, ch, tables, order)
	})
}

// FuzzTableEquivalence drives random graph/spanner shapes through both
// builders and requires bit-identical tables.
func FuzzTableEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(40), uint8(30))
	f.Add(int64(2), uint8(1), uint8(60), uint8(80))
	f.Add(int64(3), uint8(2), uint8(25), uint8(10))
	f.Add(int64(4), uint8(3), uint8(49), uint8(50))
	f.Add(int64(5), uint8(4), uint8(33), uint8(99))
	f.Fuzz(func(t *testing.T, seed int64, family, size, drop uint8) {
		g, h := fuzzGraphSpanner(seed, family, size, drop)
		want := BuildTables(g, h)
		got := BuildTablesBatched(g, h)
		tablesEqual(t, "fuzz", want, got)
	})
}

// fuzzGraphSpanner decodes fuzz bytes into a (graph, damaged exact
// spanner) pair spanning UDG/ER/grid/star/tree shapes, including
// disconnected ones (subcritical ER, dropped edges).
func fuzzGraphSpanner(seed int64, family, size, drop uint8) (*graph.Graph, *graph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	n := 8 + int(size)%120
	var g *graph.Graph
	switch family % 5 {
	case 0:
		pts := geom.UniformBox(n, 2, 3.5, rng)
		g = geom.UnitDiskGraph(pts, 1)
	case 1:
		g = gen.ErdosRenyi(n, 3.0/float64(n), rng)
	case 2:
		g = gen.Grid(2+n/10, 3)
	case 3:
		g = gen.Star(n)
	default:
		g = gen.RandomTree(n, rng)
	}
	h := graph.New(g.N())
	frac := float64(drop%100) / 100
	for _, e := range spanner.Exact(g).Graph().Edges() {
		if rng.Float64() >= frac {
			h.AddEdge(int(e[0]), int(e[1]))
		}
	}
	return g, h
}

// TestBatchedTablesParallelWorkers exercises the worker-pool fan-out
// (single-threaded hosts run the serial path, so the pool is forced by
// raising GOMAXPROCS) and pins it bit-identical to scalar.
func TestBatchedTablesParallelWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	g := routingFamilies()["udg"]
	h := spanner.Exact(g).Graph()
	want := BuildTables(g, h)
	got := BuildTablesBatched(g, h)
	tablesEqual(t, "parallel", want, got)
}

// benchGraph builds the er16 workload at n for the table-construction
// micro-benchmarks.
func benchGraph(n int) (*graph.CSR, *graph.CSR, []int32) {
	g := gen.ErdosRenyi(n, 16/float64(n), rand.New(rand.NewSource(1)))
	h := spanner.Exact(g).Graph()
	cg, ch := graph.NewCSR(g), graph.NewCSR(h)
	order, _ := graph.BatchOrder(cg)
	return cg, ch, order
}

func BenchmarkBuildTablesScalar(b *testing.B) {
	cg, ch, order := benchGraph(4000)
	n := cg.N()
	tables := NewTables(n)
	s := NewTableScratch(n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, u := range order {
			s.BuildTableInto(cg, ch, int(u), tables[u].Next, tables[u].Dist)
		}
	}
}

func BenchmarkBuildTablesBatched(b *testing.B) {
	cg, ch, order := benchGraph(4000)
	n := cg.N()
	tables := NewTables(n)
	bb := NewBatchBuilder(n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bb.BuildInto(cg, ch, tables, order)
	}
}

// TestBatchedTablesWideEngine forces the 64-bit packed engine (n >
// 65535, beyond the half-width id range) and pins a sample of owners
// against the scalar builder on a graph deep enough to exercise
// multi-pass radix frontier sorting.
func TestBatchedTablesWideEngine(t *testing.T) {
	const n = 70_000
	g := gen.Path(n)
	g.AddEdge(0, n/2) // a shortcut so the views diverge from the line
	h := g.Clone()
	owners := []int32{0, 1, int32(n/2) + 1, n - 1}
	tables := make([]Table, n)
	for _, u := range owners {
		tables[u] = Table{Next: make([]int32, n), Dist: make([]int32, n)}
	}
	b := NewBatchBuilder(n)
	if b.scr64 == nil {
		t.Fatal("expected the wide engine above 65535 vertices")
	}
	b.BuildInto(g, h, tables, owners)
	s := NewTableScratch(n)
	next, dist := make([]int32, n), make([]int32, n)
	for _, u := range owners {
		s.BuildTableInto(g, h, int(u), next, dist)
		for v := 0; v < n; v++ {
			if tables[u].Next[v] != next[v] || tables[u].Dist[v] != dist[v] {
				t.Fatalf("owner %d dest %d: (next %d, dist %d), want (%d, %d)",
					u, v, tables[u].Next[v], tables[u].Dist[v], next[v], dist[v])
			}
		}
	}
}
