package routing

import (
	"remspan/internal/domtree"
	"remspan/internal/graph"
)

// MPRSelection holds, for every node, its multipoint relays — the
// children of its k-connecting (2, 0)-dominating tree (Algorithm 4).
// mpr[u][v] reports whether v is a relay of u.
type MPRSelection struct {
	mpr []map[int32]bool
}

// SelectMPRs computes the k-coverage multipoint relays of every node.
// k = 1 is the OLSR selection ([15, 4]); larger k is the k-coverage
// extension ([4, 5]) shown by the paper to be k-connecting.
func SelectMPRs(g *graph.Graph, k int) *MPRSelection {
	sel := &MPRSelection{mpr: make([]map[int32]bool, g.N())}
	for u := 0; u < g.N(); u++ {
		t := domtree.KGreedy(g, u, k)
		m := make(map[int32]bool)
		for _, v := range domtree.MPRSet(t) {
			m[v] = true
		}
		sel.mpr[u] = m
	}
	return sel
}

// IsRelay reports whether v is a multipoint relay of u.
func (s *MPRSelection) IsRelay(u, v int) bool { return s.mpr[u][int32(v)] }

// RelayEdges returns the union of u→relay edges as an edge set — by
// Prop. 5 (k=1 case: [15]) this union is a (1, 0)-remote-spanner.
func (s *MPRSelection) RelayEdges(n int) *graph.EdgeSet {
	es := graph.NewEdgeSet(n)
	for u, m := range s.mpr {
		for v := range m {
			es.Add(u, int(v))
		}
	}
	return es
}

// FloodResult summarizes a broadcast simulation.
type FloodResult struct {
	Transmissions int // nodes that retransmitted (including the source)
	Covered       int // nodes that received the message (incl. source)
}

// MPRFlood simulates OLSR optimized flooding from src: a node
// retransmits a message iff it is a relay of the neighbor it first
// received the message from. failed (may be nil) marks crashed nodes
// that neither receive nor forward.
func MPRFlood(g *graph.Graph, sel *MPRSelection, src int, failed []bool) FloodResult {
	n := g.N()
	received := make([]bool, n)
	if failed != nil && failed[src] {
		return FloodResult{}
	}
	received[src] = true
	type item struct{ node, from int32 }
	queue := []item{{int32(src), -1}}
	res := FloodResult{Covered: 1}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		// The source always transmits; others only as designated relays.
		if it.from >= 0 && !sel.IsRelay(int(it.from), int(it.node)) {
			continue
		}
		res.Transmissions++
		for _, v := range g.Neighbors(int(it.node)) {
			if received[v] || (failed != nil && failed[v]) {
				continue
			}
			received[v] = true
			res.Covered++
			queue = append(queue, item{v, it.node})
		}
	}
	return res
}

// BlindFlood simulates classic flooding: every node retransmits the
// first copy it receives.
func BlindFlood(g *graph.Graph, src int, failed []bool) FloodResult {
	n := g.N()
	received := make([]bool, n)
	if failed != nil && failed[src] {
		return FloodResult{}
	}
	received[src] = true
	queue := []int32{int32(src)}
	res := FloodResult{Covered: 1}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		res.Transmissions++
		for _, v := range g.Neighbors(int(u)) {
			if received[v] || (failed != nil && failed[v]) {
				continue
			}
			received[v] = true
			res.Covered++
			queue = append(queue, v)
		}
	}
	return res
}
