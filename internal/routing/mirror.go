package routing

import "remspan/internal/graph"

// SpannerMirror maintains the union-of-trees spanner H incrementally:
// a per-edge multiplicity count over the stored dominating trees, a
// mutable Graph mirror, and a CSRDelta the table builders read (the
// same patched-snapshot discipline as dynamic.Maintainer's own view).
// Tree updates increment the new edges before decrementing the old, so
// edges shared by both versions never toggle through the graph.
//
// The Store embeds one to track its maintainer; the replica tier
// (internal/replica) keeps an independent one per replica, fed by
// shipped tree diffs, so a replica can serve degraded-mode greedy
// routing from its own local view of H when its tables lag.
type SpannerMirror struct {
	g     *graph.Graph
	delta *graph.CSRDelta
	cnt   map[uint64]int32
	trees [][][2]int32
}

// NewSpannerMirror returns an empty n-vertex mirror. Install the
// initial trees with UpdateTree, then call Freeze once to snapshot the
// assembled graph into the patchable CSR delta.
func NewSpannerMirror(n int) *SpannerMirror {
	return &SpannerMirror{
		g:     graph.New(n),
		cnt:   make(map[uint64]int32, 4*n),
		trees: make([][][2]int32, n),
	}
}

// Freeze snapshots the assembled graph into the patchable delta (cold
// start only; updates keep both in lockstep afterwards).
func (hm *SpannerMirror) Freeze() { hm.delta = graph.NewCSRDelta(graph.NewCSR(hm.g)) }

// View returns the read view of H the table builders and routing
// primitives consume (the CSR delta once frozen, the raw graph before).
func (hm *SpannerMirror) View() graph.View {
	if hm.delta != nil {
		return hm.delta
	}
	return hm.g
}

// TreeOf returns root r's stored (child, parent) edge list — the
// mirror-owned copy of the last UpdateTree(r, ·); read-only, valid
// until the next update of r.
func (hm *SpannerMirror) TreeOf(r int) [][2]int32 { return hm.trees[r] }

func edgeKey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

//remspan:refinc
func (hm *SpannerMirror) inc(u, v int32) {
	k := edgeKey(u, v)
	c := hm.cnt[k]
	hm.cnt[k] = c + 1
	if c == 0 {
		hm.g.AddEdge(int(u), int(v))
		if hm.delta != nil {
			hm.delta.AddEdge(int(u), int(v))
		}
	}
}

//remspan:refdec
func (hm *SpannerMirror) dec(u, v int32) {
	k := edgeKey(u, v)
	if c := hm.cnt[k]; c > 1 {
		hm.cnt[k] = c - 1
		return
	}
	delete(hm.cnt, k)
	hm.g.RemoveEdge(int(u), int(v))
	if hm.delta != nil {
		hm.delta.RemoveEdge(int(u), int(v))
	}
}

// UpdateTree replaces root r's contribution to H with the given
// (child, parent) edges, keeping a compact copy for the next diff.
func (hm *SpannerMirror) UpdateTree(r int, edges [][2]int32) {
	for _, e := range edges {
		hm.inc(e[0], e[1])
	}
	for _, e := range hm.trees[r] {
		hm.dec(e[0], e[1])
	}
	hm.trees[r] = append(hm.trees[r][:0], edges...)
}
