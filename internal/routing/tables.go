package routing

import (
	"slices"

	"remspan/internal/graph"
)

// Table is one router's forwarding table: the next hop toward every
// destination, derived from shortest paths in its own augmented view
// H_u (what a link-state daemon actually installs in the FIB).
//
// Next hops follow one canonical rule shared by every builder in this
// package (the scalar per-owner BFS and the 64-owner word-parallel
// sweep of batch.go), so all of them produce bit-identical tables:
//
//   - Next[t] = t for t ∈ N_G(u) (d_{H_u}(u,t) = 1);
//   - otherwise Next[t] = Next[p(t)], where p(t) is the smallest-id
//     H-neighbor of t at depth d_{H_u}(u,t) − 1.
//
// Resolving the chain bottom-up in BFS level order makes the rule
// iterative: p(t) is always finalized before t is visited, so no
// recursion — and no O(diameter) call stack on path-like graphs — is
// ever needed (regression-pinned by TestBuildTableDeepPath).
type Table struct {
	Owner int
	Next  []int32 // Next[t] = neighbor to forward to, -1 unreachable, Owner for t==Owner
	Dist  []int32 // believed distance in H_u
}

// TableScratch holds the reusable traversal state of the scalar table
// builder, so all-owners builds and incremental row rebuilds allocate
// nothing once warm. Not safe for concurrent use.
type TableScratch struct {
	dist  []int32
	queue []int32
}

// NewTableScratch returns scratch space for graphs with up to n
// vertices.
func NewTableScratch(n int) *TableScratch {
	d := make([]int32, n)
	for i := range d {
		d[i] = graph.Unreached
	}
	return &TableScratch{dist: d, queue: make([]int32, 0, n)}
}

// BuildTableInto computes u's forwarding table over its view H_u into
// the caller-provided rows next and dist (each of length ≥ n). u's
// incident edges come from g, all other adjacency from h (h ⊆ g, the
// advertised spanner).
func (s *TableScratch) BuildTableInto(g, h graph.View, u int, next, dist []int32) {
	n := g.N()
	// Reset only what the previous build touched.
	for _, v := range s.queue {
		s.dist[v] = graph.Unreached
	}
	s.queue = s.queue[:0]

	sd := s.dist
	sd[u] = 0
	s.queue = append(s.queue, int32(u))
	// BFS in H_u: u's edges from g, the rest from h. Seeds enqueue in
	// ascending id order (Neighbors slices are sorted), and the queue is
	// level-ordered, so every depth d−1 vertex is visited before any
	// depth d vertex.
	for _, v := range g.Neighbors(u) {
		if sd[v] == graph.Unreached {
			sd[v] = 1
			s.queue = append(s.queue, v)
		}
	}
	for head := 1; head < len(s.queue); head++ {
		x := s.queue[head]
		for _, v := range h.Neighbors(int(x)) {
			if sd[v] == graph.Unreached {
				sd[v] = sd[x] + 1
				s.queue = append(s.queue, v)
			}
		}
	}

	next = next[:n]
	dist = dist[:n]
	for i := range next {
		next[i] = -1
		dist[i] = graph.Unreached
	}
	next[u] = int32(u)
	dist[u] = 0
	// Canonical next hops, resolved iteratively in BFS level order: a
	// depth-1 destination is its own next hop; a deeper destination
	// inherits the next hop of its smallest-id previous-level
	// H-neighbor, which the level ordering has already finalized.
	for _, v := range s.queue[1:] {
		d := sd[v]
		dist[v] = d
		if d == 1 {
			next[v] = v
			continue
		}
		for _, x := range h.Neighbors(int(v)) {
			if sd[x] == d-1 {
				next[v] = next[x]
				break
			}
		}
	}
}

// BuildTable computes u's forwarding table over its view H_u,
// allocating fresh rows and scratch (convenience form; batch callers
// use a TableScratch or the word-parallel builder of batch.go).
func BuildTable(g, h graph.View, u int) Table {
	n := g.N()
	s := NewTableScratch(n)
	t := Table{Owner: u, Next: make([]int32, n), Dist: make([]int32, n)}
	s.BuildTableInto(g, h, u, t.Next, t.Dist)
	return t
}

// NewTables allocates an n-owner table set with backing rows, ready
// for BuildTablesInto / BatchBuilder.BuildInto.
func NewTables(n int) []Table {
	out := make([]Table, n)
	next := make([]int32, n*n)
	dist := make([]int32, n*n)
	for u := range out {
		out[u] = Table{Owner: u, Next: next[u*n : (u+1)*n : (u+1)*n], Dist: dist[u*n : (u+1)*n : (u+1)*n]}
	}
	return out
}

// BuildTablesInto computes every owner's table into tables (len n,
// rows pre-sized) with one shared scratch — the scalar reference path
// the batched builder is pinned against.
func BuildTablesInto(g, h graph.View, tables []Table) {
	s := NewTableScratch(g.N())
	for u := 0; u < g.N(); u++ {
		tables[u].Owner = u
		s.BuildTableInto(g, h, u, tables[u].Next, tables[u].Dist)
	}
}

// BuildTables computes every router's table.
func BuildTables(g, h graph.View) []Table {
	out := NewTables(g.N())
	BuildTablesInto(g, h, out)
	return out
}

// RouteReason classifies the outcome of a table-driven forwarding walk,
// distinguishing "the network genuinely has no route" from "the table
// is stale relative to the physical graph" — the distinction the
// epoch-swapped Store needs to trigger re-resolution instead of
// reporting a bogus delivery failure.
type RouteReason uint8

// Route outcomes.
const (
	// RouteDelivered: the packet reached t.
	RouteDelivered RouteReason = iota
	// RouteUnreachable: a hop's table has no next hop for t (t is
	// outside that hop's view component).
	RouteUnreachable
	// RouteStaleLink: a hop's table names a next hop that is not a
	// current physical link — stale state, not missing connectivity.
	RouteStaleLink
	// RouteTrapped: the hop budget was exhausted without delivery
	// (mutually inconsistent tables can loop; impossible within one
	// coherently built table set over a remote-spanner).
	RouteTrapped
	// RouteDegraded: the answer was computed by greedy fallback on a
	// replica's local spanner view because no sufficiently fresh
	// forwarding tables were available (replica degraded mode). The
	// path is real but carries no table-tier freshness guarantee.
	RouteDegraded
)

// String returns the reason mnemonic.
func (r RouteReason) String() string {
	switch r {
	case RouteDelivered:
		return "delivered"
	case RouteUnreachable:
		return "unreachable"
	case RouteStaleLink:
		return "stale-link"
	case RouteTrapped:
		return "trapped"
	case RouteDegraded:
		return "degraded"
	default:
		return "unknown"
	}
}

// hasEdgeView reports whether {u, v} is an edge of the view (binary
// search on the sorted adjacency row).
func hasEdgeView(v graph.View, a, b int) bool {
	if a == b {
		return false
	}
	_, ok := slices.BinarySearch(v.Neighbors(a), int32(b))
	return ok
}

// TableRoute forwards a packet hop by hop, each hop consulting its own
// table — the production data path of link-state routing. The
// remote-spanner property guarantees loop-free delivery with route
// length at most d_{H_s}(s, t): each hop's believed distance strictly
// decreases (d_{H_{u'}}(u', t) ≤ d_{H_u}(u, t) − 1, §1). Every next
// hop is validated against the physical view g; failures carry a typed
// Reason and the node At which forwarding stopped, so callers can tell
// delivery failure (RouteUnreachable) from stale table state
// (RouteStaleLink).
func TableRoute(tables []Table, g graph.View, s, t int) Route {
	return tableRouteInto(tables, g, s, t, make([]int32, 0, 8))
}

// TableRouteInto is TableRoute appending into a caller-owned path
// buffer — the allocation-free form concurrent table consumers (the
// replica tier's lock-free query path) use. On delivery the returned
// Route.Path is the (possibly grown) buffer; keep it for the next
// call. A nil g skips physical link validation.
func TableRouteInto(tables []Table, g graph.View, s, t int, path []int32) Route {
	return tableRouteInto(tables, g, s, t, path)
}

// tableRouteInto is the one forwarding walk every table-driven data
// path shares (TableRoute, Reader.Route, Reader.RouteOn), appending
// into a caller-owned path buffer — the Store's reader hot path, zero
// allocations once the buffer is warm. A nil g skips the physical
// link validation (the Store's epoch-internal walk); failures return
// no path.
//
//remspan:hotpath
func tableRouteInto(tables []Table, g graph.View, s, t int, path []int32) Route {
	path = append(path[:0], int32(s))
	if s == t {
		return Route{Path: path, OK: true, At: int32(s)}
	}
	cur := s
	for hops := 0; hops <= len(tables); hops++ {
		if cur == t {
			return Route{Path: path, Hops: len(path) - 1, OK: true, At: int32(t)}
		}
		nh := tables[cur].Next[t]
		if nh < 0 {
			return Route{Reason: RouteUnreachable, At: int32(cur)}
		}
		if g != nil && !hasEdgeView(g, cur, int(nh)) {
			return Route{Reason: RouteStaleLink, At: int32(cur)}
		}
		path = append(path, nh)
		cur = int(nh)
	}
	return Route{Reason: RouteTrapped, At: int32(cur)}
}
