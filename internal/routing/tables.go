package routing

import (
	"remspan/internal/graph"
)

// Table is one router's forwarding table: the next hop toward every
// destination, derived from shortest paths in its own augmented view
// H_u (what a link-state daemon actually installs in the FIB).
type Table struct {
	Owner int
	Next  []int32 // Next[t] = neighbor to forward to, -1 unreachable, Owner for t==Owner
	Dist  []int32 // believed distance in H_u
}

// BuildTable computes u's forwarding table over its view H_u.
func BuildTable(g, h *graph.Graph, u int) Table {
	n := g.N()
	dist := make([]int32, n)
	parent := make([]int32, n)
	for i := range dist {
		dist[i] = graph.Unreached
		parent[i] = -1
	}
	dist[u] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, int32(u))
	// BFS in H_u: u's edges from g, the rest from h (smallest-id parent
	// first, deterministic like graph.BFSTree).
	for _, v := range g.Neighbors(u) {
		if dist[v] == graph.Unreached {
			dist[v] = 1
			parent[v] = int32(u)
			queue = append(queue, v)
		}
	}
	for head := 1; head < len(queue); head++ {
		x := queue[head]
		for _, v := range h.Neighbors(int(x)) {
			if dist[v] == graph.Unreached {
				dist[v] = dist[x] + 1
				parent[v] = x
				queue = append(queue, v)
			}
		}
	}
	// Next hop: the depth-1 ancestor of each destination.
	next := make([]int32, n)
	for t := range next {
		next[t] = -1
	}
	next[u] = int32(u)
	var resolve func(t int32) int32
	resolve = func(t int32) int32 {
		if next[t] != -1 {
			return next[t]
		}
		if parent[t] == int32(u) {
			next[t] = t
			return t
		}
		next[t] = resolve(parent[t])
		return next[t]
	}
	for t := 0; t < n; t++ {
		if dist[t] != graph.Unreached && t != u {
			resolve(int32(t))
		}
	}
	return Table{Owner: u, Next: next, Dist: dist}
}

// BuildTables computes every router's table.
func BuildTables(g, h *graph.Graph) []Table {
	out := make([]Table, g.N())
	for u := 0; u < g.N(); u++ {
		out[u] = BuildTable(g, h, u)
	}
	return out
}

// TableRoute forwards a packet hop by hop, each hop consulting its own
// table — the production data path of link-state routing. The
// remote-spanner property guarantees loop-free delivery with route
// length at most d_{H_s}(s, t): each hop's believed distance strictly
// decreases (d_{H_{u'}}(u', t) ≤ d_{H_u}(u, t) − 1, §1).
func TableRoute(tables []Table, g *graph.Graph, s, t int) Route {
	if s == t {
		return Route{Path: []int32{int32(s)}, OK: true}
	}
	path := []int32{int32(s)}
	cur := s
	for hops := 0; hops <= g.N(); hops++ {
		if cur == t {
			return Route{Path: path, Hops: len(path) - 1, OK: true}
		}
		nh := tables[cur].Next[t]
		if nh < 0 {
			return Route{}
		}
		if !g.HasEdge(cur, int(nh)) {
			return Route{} // table references a non-link (stale/bad input)
		}
		path = append(path, nh)
		cur = int(nh)
	}
	return Route{}
}
