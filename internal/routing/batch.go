package routing

import (
	"math/bits"
	"sync"

	"remspan/internal/graph"
	"remspan/internal/sched"
)

// Word-parallel table construction: 64 owners' Next/Dist rows per
// graph.BitScratch sweep.
//
// Distances use the star-decomposition identity of the verification
// engine (spanner.SweepViewBatch): H_u is H plus the star {u}×N_G(u),
// so seeding bit u at distance 0 on u, at distance 1 on every
// w ∈ N_G(u), and sweeping over H alone computes d_{H_u}(u, ·) exactly
// — no per-owner graph is ever materialized.
//
// Next hops ride the same sweep. The canonical rule (tables.go) makes
// a destination inherit the next hop of its smallest-id H-neighbor at
// the previous BFS level, and graph.BitScratch.SweepClaim delivers
// exactly that pairing for free: with the frontier expanded in
// ascending vertex-id order, the first expansion to land a source bit
// on v comes from the smallest-id previous-level neighbor carrying it,
// and the claim callback fires with that (x, v, bits) right inside the
// edge walk — no per-event H-row re-scan, and x's scratch row stays
// cache-hot across all of x's edges. So batched tables are
// bit-identical to BuildTables on every input (pinned by
// TestBatchedTablesMatchScalar and FuzzTableEquivalence).
//
// Claims write into a flat transposed scratch of packed
// (next hop << half) | level words — 64 entries per vertex, so one
// arrival event touches a handful of cache lines however many bits
// land at once and each claim is a single load + store, and the
// parent's entry is always final before any child reads it (level
// order). The claim phase is memory-latency-bound on the parent rows,
// so the word width matters: graphs with n ≤ 65535 (every production
// workload below 64k vertices) run a uint32-packed engine whose rows
// span half the cache lines of the uint64 one; larger graphs fall
// back to 64-bit words. One scatter pass then streams the scratch
// into the owners' output rows, folding the unreached back-fill into
// the same store. Total work per 64-owner batch: O(m) mask operations
// for the sweep and the claim scans plus O(64·n) scratch and output
// writes, against the O(64·(n+m)) cache-missing scalar walks it
// replaces.
//
// Owners are grouped by graph.BatchOrder's ball clustering, not by id:
// a bit-packed sweep costs O(edges × distinct wavefront levels), so 64
// scattered owners on a high-diameter graph would forfeit the word
// parallelism (see graph.BatchOrder).

// halfWidthMaxN is the largest vertex count the uint32-packed engine
// serves: next hop and BFS level each live in a 16-bit half, so every
// vertex id and level in 0..n-1 must fit uint16 with the top id 0xffff
// left clear of the all-ones unreached fold. Graphs past this run the
// uint64 engine — selected once at construction and re-checked per
// group, so a mismatch panics instead of silently truncating ids.
const halfWidthMaxN = 0xffff

// BatchBuilder is the reusable engine of word-parallel table
// construction. All state resets through touched lists, so a warm
// builder constructs any number of table groups with zero allocations
// (pinned by TestBatchBuilderZeroAlloc). Not safe for concurrent use;
// parallel builds give each worker its own.
type BatchBuilder struct {
	bs *graph.BitScratch // masks-only: distances live in the packed scratch rows

	// Transposed packed rows, one engine selected by vertex-id width:
	// scr[v<<6|i] = next hop of owner bit i at v << half | arrival
	// level. scr32 serves n ≤ 65535; scr64 anything larger.
	scr64 []uint64
	scr32 []uint32

	claim func(x, v int32, newBits uint64, level int32)

	groupNext, groupDist [][]int32 // per-group row views (≤64 each)
}

// NewBatchBuilder returns a builder for graphs with up to n vertices.
// Footprint is O(64·n) words — one packed transposed 64-entry row per
// vertex — plus the masks-only bit scratch.
func NewBatchBuilder(n int) *BatchBuilder {
	b := &BatchBuilder{
		bs:        graph.NewBitScratchMasks(n),
		groupNext: make([][]int32, 0, 64),
		groupDist: make([][]int32, 0, 64),
	}
	// Bound once so sweeps are allocation-free when warm.
	if n <= halfWidthMaxN {
		b.scr32 = make([]uint32, n*64)
		b.claim = b.claimEdge32
	} else {
		b.scr64 = make([]uint64, n*64)
		b.claim = b.claimEdge64
	}
	return b
}

// claimEdge64 is the SweepClaim callback (wide engine): bits first
// arriving at v through (x, v) inherit x's next hops and record the
// arrival level, in one packed store per bit. x's row stays hot across
// all of x's edges (the callback fires mid-expansion).
//
//remspan:hotpath
func (b *BatchBuilder) claimEdge64(x, v int32, newBits uint64, level int32) {
	base, xb := int(v)<<6, int(x)<<6
	lvl := uint64(uint32(level))
	scr := b.scr64
	for bb := newBits; bb != 0; bb &= bb - 1 {
		i := bits.TrailingZeros64(bb)
		scr[base+i] = scr[xb+i]&^uint64(0xffffffff) | lvl
	}
}

// claimEdge32 is claimEdge64 on the half-width scratch (n ≤ 65535:
// next hop and level both fit 16 bits).
//
//remspan:hotpath
func (b *BatchBuilder) claimEdge32(x, v int32, newBits uint64, level int32) {
	base, xb := int(v)<<6, int(x)<<6
	lvl := uint32(uint16(level))
	scr := b.scr32
	for bb := newBits; bb != 0; bb &= bb - 1 {
		i := bits.TrailingZeros64(bb)
		scr[base+i] = scr[xb+i]&^uint32(0xffff) | lvl
	}
}

// buildGroup constructs the tables of up to 64 owners in one sweep:
// next[i]/dist[i] receive owner owners[i]'s rows (each of length ≥ n,
// fully overwritten).
//
//remspan:hotpath
func (b *BatchBuilder) buildGroup(g, h graph.View, owners []int32, next, dist [][]int32) {
	if len(owners) == 0 {
		return
	}
	if len(owners) > 64 {
		panic("routing: batch group exceeds 64 owners")
	}
	n := g.N()
	if b.scr32 != nil && n > halfWidthMaxN {
		// A builder sized for a small graph driven over a bigger one
		// would truncate vertex ids to 16 bits; fail loudly instead.
		panic("routing: half-width batch engine driven past 65535 vertices; size NewBatchBuilder to the graph")
	}
	b.bs.Begin()
	for i, uu := range owners {
		u := int(uu)
		b.bs.Seed(uint(i), u, 0)
		if b.scr32 != nil {
			b.scr32[u<<6|i] = uint32(uint16(uu)) << 16
		} else {
			b.scr64[u<<6|i] = uint64(uint32(uu)) << 32
		}
		for _, w := range g.Neighbors(u) {
			b.bs.SeedFrontier(uint(i), int(w), 1)
			if b.scr32 != nil {
				b.scr32[int(w)<<6|i] = uint32(uint16(w))<<16 | 1
			} else {
				b.scr64[int(w)<<6|i] = uint64(uint32(w))<<32 | 1
			}
		}
	}
	b.bs.SweepClaim(h, 2, b.claim)

	// Scatter: stream each vertex's packed scratch row into the owners'
	// output rows, folding the unreached back-fill into the same store
	// — for mask m = -1 (visited) the store unpacks the scratch word,
	// for m = 0 it is -1 == graph.Unreached.
	k := len(owners)
	full := ^uint64(0) >> uint(64-k)
	if b.scr32 != nil {
		for v := 0; v < n; v++ {
			vis := b.bs.Visited(v)
			row := b.scr32[v<<6 : v<<6+k : v<<6+k]
			if vis&full == full { // every owner reached v: plain unpack
				for i, w := range row {
					next[i][v] = int32(w >> 16)
					dist[i][v] = int32(w & 0xffff)
				}
				continue
			}
			for i, w := range row {
				m := -int32((vis >> uint(i)) & 1)
				next[i][v] = (int32(w>>16) & m) | ^m
				dist[i][v] = (int32(w&0xffff) & m) | ^m
			}
		}
		return
	}
	for v := 0; v < n; v++ {
		vis := b.bs.Visited(v)
		row := b.scr64[v<<6 : v<<6+k : v<<6+k]
		if vis&full == full { // every owner reached v: plain unpack
			for i, w := range row {
				next[i][v] = int32(w >> 32)
				dist[i][v] = int32(uint32(w))
			}
			continue
		}
		for i, w := range row {
			m := -int32((vis >> uint(i)) & 1)
			next[i][v] = (int32(w>>32) & m) | ^m
			dist[i][v] = (int32(uint32(w)) & m) | ^m
		}
	}
}

// BuildInto constructs the tables of the given owners (any subset of
// 0..n-1, any order) into tables — indexed by owner id, rows pre-sized
// — in consecutive groups of up to 64 per sweep. Owners should arrive
// ball-clustered (graph.BatchOrder) or at least id-sorted: sweep cost
// grows with the spread of the group's wavefronts.
//
//remspan:hotpath
func (b *BatchBuilder) BuildInto(g, h graph.View, tables []Table, owners []int32) {
	for start := 0; start < len(owners); start += 64 {
		end := start + 64
		if end > len(owners) {
			end = len(owners)
		}
		group := owners[start:end]
		b.groupNext = b.groupNext[:0]
		b.groupDist = b.groupDist[:0]
		for _, u := range group {
			tables[u].Owner = int(u)
			b.groupNext = append(b.groupNext, tables[u].Next)
			b.groupDist = append(b.groupDist, tables[u].Dist)
		}
		b.buildGroup(g, h, group, b.groupNext, b.groupDist)
	}
}

// BuildTablesBatched computes every router's table on the
// word-parallel engine — bit-identical to BuildTables, with the
// speedup tracked in BENCH_routing.json — fanning ball-clustered
// 64-owner groups across a worker pool with one builder per worker.
func BuildTablesBatched(g, h graph.View) []Table {
	out := NewTables(g.N())
	BuildTablesBatchedInto(g, h, out)
	return out
}

// tableWorker is one pooled worker slot of the batched table fan-out.
// The O(64·n) builder is the single most expensive scratch in the
// repo, so it is retained across calls and recreated only when the
// vertex count grows — or shrinks back across the half-width
// boundary, so small graphs regain the uint32-packed engine.
type tableWorker struct {
	n int
	b *BatchBuilder
}

// tableEnv is the reusable environment of BuildTablesBatchedInto's
// shard fan-out over owner groups, mirroring spanner's build env: one
// shared instance, transient fallback when busy.
type tableEnv struct {
	mu      sync.Mutex
	pool    sched.Pool
	order   *graph.BatchOrderScratch
	workers []*tableWorker

	// Per-run job, set under mu.
	g, h             graph.View
	tables           []Table
	srcOrder, starts []int32

	body func(w, lo, hi int)
}

func newTableEnv() *tableEnv {
	e := &tableEnv{order: graph.NewBatchOrderScratch()}
	e.body = e.shard
	return e
}

var sharedTableEnv = newTableEnv()

//remspan:hotpath
func (e *tableEnv) shard(w, lo, hi int) {
	tw := e.workers[w]
	for b := lo; b < hi; b++ {
		tw.b.BuildInto(e.g, e.h, e.tables, e.srcOrder[e.starts[b]:e.starts[b+1]])
	}
}

func (e *tableEnv) acquire(width, n int) {
	for len(e.workers) < width {
		e.workers = append(e.workers, &tableWorker{})
	}
	for _, tw := range e.workers[:width] {
		if tw.b == nil || tw.n < n || (tw.n > halfWidthMaxN && n <= halfWidthMaxN) {
			tw.b = NewBatchBuilder(n)
			tw.n = n
		}
	}
}

// BuildTablesBatchedInto is BuildTablesBatched into caller-provided
// tables (len n, rows pre-sized).
func BuildTablesBatchedInto(g, h graph.View, tables []Table) {
	buildTablesBatchedWidth(g, h, tables, 0)
}

// buildTablesBatchedWidth is BuildTablesBatchedInto with an explicit
// worker count (width ≤ 0 means sized to the group count) — the
// determinism tests' entry point. Each group writes only its own
// owners' table rows, so the result is bit-identical to BuildTables
// at every width.
func buildTablesBatchedWidth(g, h graph.View, tables []Table, width int) {
	env := sharedTableEnv
	if !env.mu.TryLock() {
		env = newTableEnv()
		env.mu.Lock()
	}
	defer env.mu.Unlock()
	n := g.N()
	env.srcOrder, env.starts = env.order.Order(g)
	nb := len(env.starts) - 1
	if width <= 0 {
		width = sched.Workers(nb)
	}
	env.acquire(width, n)
	env.g, env.h, env.tables = g, h, tables
	// One item is a 64-owner sweep: heavy, so shards shrink to single
	// groups rather than sched's vertex-grained floor.
	span := nb / (width * 8)
	if span < 1 {
		span = 1
	}
	env.pool.RunSpan(nb, width, span, env.body)
	env.g, env.h, env.tables, env.srcOrder, env.starts = nil, nil, nil, nil, nil
}
