package routing

import (
	"strings"
	"testing"

	"remspan/internal/gen"
)

// TestBatchEngineSelectionBoundary pins the half-width cutoff exactly:
// 65535 vertices still run the uint32-packed engine, one more falls
// back to uint64 words.
func TestBatchEngineSelectionBoundary(t *testing.T) {
	half := NewBatchBuilder(halfWidthMaxN)
	if half.scr32 == nil || half.scr64 != nil {
		t.Fatalf("n=%d: want the uint32-packed engine, got scr32=%v scr64=%v",
			halfWidthMaxN, half.scr32 != nil, half.scr64 != nil)
	}
	wide := NewBatchBuilder(halfWidthMaxN + 1)
	if wide.scr64 == nil || wide.scr32 != nil {
		t.Fatalf("n=%d: want the uint64 engine, got scr32=%v scr64=%v",
			halfWidthMaxN+1, wide.scr32 != nil, wide.scr64 != nil)
	}
}

// checkBoundaryTables builds the tables of a few extreme-id owners on
// the word-parallel engine and compares them row-for-row with the
// scalar per-owner builder. A star keeps distances (and therefore the
// sweep) shallow, so the test exercises the full vertex-id range —
// including n-1 as owner, destination, and packed next-hop value —
// without materializing n×n state.
func checkBoundaryTables(t *testing.T, n int) {
	t.Helper()
	g := gen.Star(n)
	owners := []int32{0, int32(n / 2), int32(n - 1)}

	b := NewBatchBuilder(n)
	next := make([][]int32, len(owners))
	dist := make([][]int32, len(owners))
	for i := range owners {
		next[i] = make([]int32, n)
		dist[i] = make([]int32, n)
	}
	b.buildGroup(g, g, owners, next, dist)

	ts := NewTableScratch(n)
	refNext := make([]int32, n)
	refDist := make([]int32, n)
	for i, u := range owners {
		ts.BuildTableInto(g, g, int(u), refNext, refDist)
		for v := 0; v < n; v++ {
			if next[i][v] != refNext[v] || dist[i][v] != refDist[v] {
				t.Fatalf("n=%d owner %d dest %d: batched (next=%d dist=%d), scalar (next=%d dist=%d)",
					n, u, v, next[i][v], dist[i][v], refNext[v], refDist[v])
			}
		}
	}
}

// TestBatchBoundaryHalfWidthTop drives the uint32-packed engine at its
// very last admissible size, n = 65535.
func TestBatchBoundaryHalfWidthTop(t *testing.T) {
	checkBoundaryTables(t, halfWidthMaxN)
}

// TestBatchBoundaryFullWidthFallback drives the first size past the
// packed cutoff, n = 65536, through the uint64 fallback engine.
func TestBatchBoundaryFullWidthFallback(t *testing.T) {
	checkBoundaryTables(t, halfWidthMaxN+1)
}

// TestBatchHalfWidthOverdriveChecked pins the no-silent-truncation
// contract: a half-width builder handed a graph past 65535 vertices
// must panic rather than truncate vertex ids to 16 bits.
func TestBatchHalfWidthOverdriveChecked(t *testing.T) {
	b := NewBatchBuilder(64) // selects the uint32-packed engine
	big := gen.Star(halfWidthMaxN + 1)
	next := [][]int32{make([]int32, big.N())}
	dist := [][]int32{make([]int32, big.N())}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("half-width engine accepted a graph past 65535 vertices without panicking")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "half-width") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	b.buildGroup(big, big, []int32{0}, next, dist)
}
