package routing

import (
	"math/rand"
	"testing"

	"remspan/internal/gen"
	"remspan/internal/geom"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

func randomConnected(n, extra int, rng *rand.Rand) *graph.Graph {
	g := gen.RandomTree(n, rng)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func randomUDG(n int, side, radius float64, rng *rand.Rand) *graph.Graph {
	pts := geom.UniformBox(n, 2, side, rng)
	g := geom.UnitDiskGraph(pts, radius)
	keep, _ := graph.LargestComponent(g)
	return g.InducedSubgraph(keep)
}

func allPairsSample(n, count int, rng *rand.Rand) [][2]int {
	pairs := make([][2]int, 0, count)
	for i := 0; i < count; i++ {
		pairs = append(pairs, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	return pairs
}

func TestGreedyRouteOnExactSpannerIsShortest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(20+rng.Intn(20), 40, rng)
		h := spanner.Exact(g).Graph()
		d := graph.AllPairsDistances(g)
		for i := 0; i < 20; i++ {
			s, tt := rng.Intn(g.N()), rng.Intn(g.N())
			r := GreedyRoute(g, h, s, tt)
			if !r.OK {
				t.Fatalf("trial %d: no route %d→%d", trial, s, tt)
			}
			if r.Hops != int(d[s][tt]) {
				t.Fatalf("trial %d: route %d→%d has %d hops, shortest %d",
					trial, s, tt, r.Hops, d[s][tt])
			}
		}
	}
}

func TestGreedyRouteStretchBoundLowStretch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		g := randomConnected(25+rng.Intn(20), 50, rng)
		res := spanner.LowStretch(g, 0.5) // (3/2, 0) stretch
		h := res.Graph()
		st := spanner.LowStretchOf(res.R)
		d := graph.AllPairsDistances(g)
		for i := 0; i < 25; i++ {
			s, tt := rng.Intn(g.N()), rng.Intn(g.N())
			if s == tt {
				continue
			}
			r := GreedyRoute(g, h, s, tt)
			if !r.OK {
				t.Fatalf("no route %d→%d", s, tt)
			}
			if !st.Holds(int64(d[s][tt]), int64(r.Hops)) {
				t.Fatalf("route %d→%d has %d hops, d_G=%d, bound %v",
					s, tt, r.Hops, d[s][tt], st)
			}
		}
	}
}

func TestGreedyRouteTrivialCases(t *testing.T) {
	g := gen.Path(4)
	h := g.Clone()
	r := GreedyRoute(g, h, 2, 2)
	if !r.OK || r.Hops != 0 {
		t.Fatal("self route")
	}
	r2 := GreedyRoute(g, h, 0, 1)
	if !r2.OK || r2.Hops != 1 {
		t.Fatal("adjacent route")
	}
	// Unroutable: empty spanner, target beyond neighbors.
	r3 := GreedyRoute(g, graph.New(4), 0, 3)
	if r3.OK {
		t.Fatal("expected failure with empty spanner")
	}
}

func TestMeasureRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(30, 60, rng)
	h := spanner.Exact(g).Graph()
	stats := MeasureRouting(g, h, allPairsSample(g.N(), 50, rng))
	if stats.Delivered != stats.Pairs {
		t.Fatalf("delivered %d of %d", stats.Delivered, stats.Pairs)
	}
	if stats.MaxStretch > 1.0 {
		t.Fatalf("exact spanner routing stretch %v > 1", stats.MaxStretch)
	}
}

func TestSelectMPRsCoverAndFlood(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		g := randomUDG(120, 3, 1.0, rng)
		if g.N() < 20 {
			t.Skip("degenerate UDG")
		}
		sel := SelectMPRs(g, 1)
		src := rng.Intn(g.N())
		mpr := MPRFlood(g, sel, src, nil)
		if mpr.Covered != g.N() {
			t.Fatalf("trial %d: MPR flood covered %d of %d", trial, mpr.Covered, g.N())
		}
		blind := BlindFlood(g, src, nil)
		if blind.Covered != g.N() {
			t.Fatal("blind flood did not cover")
		}
		if mpr.Transmissions > blind.Transmissions {
			t.Fatalf("MPR flooding (%d tx) worse than blind (%d tx)",
				mpr.Transmissions, blind.Transmissions)
		}
	}
}

func TestRelayEdgesFormRemoteSpanner(t *testing.T) {
	// Prop. 5, k=1: the union of MPR links is a (1, 0)-remote-spanner.
	rng := rand.New(rand.NewSource(5))
	g := randomConnected(30, 60, rng)
	sel := SelectMPRs(g, 1)
	h := sel.RelayEdges(g.N()).Graph()
	if v := spanner.Check(g, h, spanner.NewStretch(1, 0)); v != nil {
		t.Fatalf("%v", v)
	}
}

func TestFloodWithFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomUDG(120, 3, 1.2, rng)
	if g.N() < 20 {
		t.Skip("degenerate UDG")
	}
	sel := SelectMPRs(g, 2)
	failed := make([]bool, g.N())
	failed[g.N()/2] = true
	src := 0
	if failed[src] {
		src = 1
	}
	res := MPRFlood(g, sel, src, failed)
	if res.Covered == 0 {
		t.Fatal("flood from alive source covered nothing")
	}
	// A failed source transmits nothing.
	res2 := MPRFlood(g, sel, g.N()/2, failed)
	if res2.Covered != 0 || res2.Transmissions != 0 {
		t.Fatal("failed source should not flood")
	}
}

func TestDisjointRoutesOnTwoConnecting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnected(20, 50, rng)
	h := spanner.TwoConnecting(g).Graph()
	found := 0
	for s := 0; s < g.N() && found < 10; s++ {
		for tt := s + 1; tt < g.N() && found < 10; tt++ {
			if g.HasEdge(s, tt) {
				continue
			}
			if _, ok, _ := DisjointRoutes(g, g, s, tt, 2); !ok {
				continue // not 2-connected in G
			}
			res, ok, err := DisjointRoutes(g, h, s, tt, 2)
			if err != nil || !ok {
				t.Fatalf("pair (%d,%d): 2-connected in G but not in H_s", s, tt)
			}
			if len(res.Paths) != 2 {
				t.Fatal("wrong path count")
			}
			found++
		}
	}
	if found == 0 {
		t.Skip("no 2-connected non-adjacent pairs sampled")
	}
}

func TestMeasureMultipath(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomConnected(25, 60, rng)
	h := spanner.TwoConnecting(g).Graph()
	var pairs [][2]int
	for i := 0; i < 40; i++ {
		pairs = append(pairs, [2]int{rng.Intn(g.N()), rng.Intn(g.N())})
	}
	rep := MeasureMultipath(g, h, pairs)
	if rep.Pairs == 0 {
		t.Skip("no eligible pairs")
	}
	if rep.WithTwoRoutes != rep.Pairs {
		t.Fatalf("2-connecting property violated: %d of %d pairs have two routes",
			rep.WithTwoRoutes, rep.Pairs)
	}
	if rep.SurvivedFaults != rep.FaultTrials {
		t.Fatalf("fault injection: %d of %d survived", rep.SurvivedFaults, rep.FaultTrials)
	}
	// Th. 3 aggregate: Σd²_H ≤ 2Σd²_G − 2·pairs.
	if rep.SumLenH > 2*rep.SumLenG-2*rep.WithTwoRoutes {
		t.Fatalf("d² sums violate (2,−1): H=%d G=%d", rep.SumLenH, rep.SumLenG)
	}
}

func TestAdvertisedCost(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomUDG(150, 3, 1.0, rng)
	res := spanner.Exact(g)
	sp, full := AdvertisedCost(g, res.H)
	if sp != res.Edges() || full != g.M() {
		t.Fatal("cost accounting wrong")
	}
	if sp >= full {
		t.Fatalf("spanner advertisement (%d) not cheaper than full (%d)", sp, full)
	}
}
