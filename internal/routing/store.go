package routing

import (
	"math"
	"math/bits"
	"slices"
	"sync"
	"sync/atomic"

	"remspan/internal/dynamic"
	"remspan/internal/graph"
)

// Store is the concurrent forwarding plane: an epoch-swapped
// (RCU-style) table store over a dynamic.Maintainer. One writer
// applies churn batches — the maintainer repairs its trees, the store
// mirrors the spanner incrementally and rebuilds only the dirty-ball
// owners' Next/Dist rows on the word-parallel builder — and publishes
// the result as a new immutable epoch with a single atomic pointer
// swap. Any number of concurrent readers serve NextHop/Dist/Route
// lookups lock-free from whichever epoch they entered, unperturbed by
// in-flight batches (race-pinned by TestStoreConcurrentReaders).
//
// Reclamation is reader-announced: every Reader publishes the epoch
// seq it is inside (or idle) in a private atomic slot, and the writer
// recycles an epoch's replaced rows only once every announced seq has
// moved past it — so warm ticks with prompt readers allocate nothing
// (pinned by TestStoreApplyBatchZeroAlloc), and a stalled reader
// degrades the store to fresh allocations, never to a torn read.
//
// Staleness contract (DESIGN.md §3e). A churn batch rebuilds exactly
// the owners whose radius-R ball the batch touched — the same locality
// set whose trees the maintainer rebuilds — plus any owners readers
// reported stale. Those rows are exact for the post-batch graph and
// spanner. Other owners keep rows computed against the previous
// spanner: every next hop they name was a physical link when built,
// so a route through them either still works (possibly at slightly
// stale believed distances) or trips a vanished link, which
// Reader.RouteOn reports as RouteStaleLink — distinguished by type
// from RouteUnreachable — and queues the offending owner for rebuild
// in the next batch (re-resolution off the hot path). RebuildAll
// restores global exactness on demand.
type Store struct {
	m  *dynamic.Maintainer
	n  int
	bb *BatchBuilder
	h  *SpannerMirror

	cur atomic.Pointer[Epoch] //remspan:atomic

	mu sync.Mutex // serializes writers (ApplyBatch, RebuildAll)

	readersMu sync.Mutex
	readers   []*Reader

	// Reader-reported stale owners, drained into the next batch's
	// rebuild set.
	stale      []atomic.Uint32 //remspan:atomic
	staleDirty atomic.Bool     //remspan:atomic

	// Retirement queue and buffer pools (writer-owned, under mu).
	retired  []retiredEpoch
	epPool   []*Epoch
	rowPool  [][]int32
	rowsPool [][][]int32

	dirtyBuf             []int32
	groupNext, groupDist [][]int32
}

// Epoch is one published table set. Tables and their rows must not be
// mutated by consumers, and they stay valid only while the epoch is
// pinned: Reader operations pin automatically; any other holder (a
// bare Store.Epoch() caller) must not apply further churn batches
// while reading, or the buffers may be recycled under it. The seq is
// atomic because a reader entering an epoch can race a writer
// restamping a recycled Epoch struct — the reader then announces
// either value and re-checks the current pointer, both outcomes safe.
type Epoch struct {
	seq    atomic.Uint64 //remspan:atomic
	tables []Table
}

// Seq returns the epoch's sequence number (1 is the cold build).
func (e *Epoch) Seq() uint64 { return e.seq.Load() }

// Tables returns the epoch's per-owner tables (shared, read-only;
// see the Epoch pinning contract).
func (e *Epoch) Tables() []Table { return e.tables }

// retiredEpoch holds buffers unreachable from epoch seq onward,
// recyclable once every active reader has announced seq or newer.
type retiredEpoch struct {
	seq  uint64
	ep   *Epoch
	rows [][]int32
}

// idleSeq marks a Reader outside any epoch.
const idleSeq = math.MaxUint64

// maxRetired bounds the writer's explicit retirement queue. A stalled
// reader pins its epoch and everything retired after it, so without a
// cap one leaked reader would grow st.retired without bound. Past the
// cap the writer stops holding the oldest entries for pooling and
// drops them to the garbage collector instead: whatever the stalled
// reader still reaches through its pinned epoch stays alive via that
// reference, everything else is collected — reclamation degrades to
// fresh allocations, never to unbounded writer-side retention
// (pinned by TestStoreReclamationUnderReaderStall).
const maxRetired = 32

// NewStore builds the cold-start forwarding plane over m: the full
// table set on the word-parallel builder, published as epoch 1. The
// store owns the maintainer's churn feed from here on — apply changes
// through Store.ApplyBatch, not the maintainer directly, so tables and
// spanner stay in lockstep.
func NewStore(m *dynamic.Maintainer) *Store {
	n := m.Graph().N()
	st := &Store{
		m:         m,
		n:         n,
		bb:        NewBatchBuilder(n),
		h:         NewSpannerMirror(n),
		stale:     make([]atomic.Uint32, (n+31)/32),
		dirtyBuf:  make([]int32, 0, 256),
		groupNext: make([][]int32, 0, 64),
		groupDist: make([][]int32, 0, 64),
	}
	for u := 0; u < n; u++ {
		st.h.UpdateTree(u, m.TreeOf(u))
	}
	st.h.Freeze()
	tables := NewTables(n)
	BuildTablesBatchedInto(m.View(), st.h.View(), tables)
	ep := &Epoch{tables: tables}
	ep.seq.Store(1)
	st.cur.Store(ep)
	return st
}

// Maintainer returns the wrapped maintainer (reads only; churn goes
// through Store.ApplyBatch).
func (st *Store) Maintainer() *dynamic.Maintainer { return st.m }

// Mirror returns the store's incrementally maintained spanner mirror
// (reads only). The replica writer reads dirty owners' trees off it
// when assembling shipments.
func (st *Store) Mirror() *SpannerMirror { return st.h }

// DirtyOwners returns the owners whose rows the last ApplyBatch or
// RebuildAll rebuilt (sorted, unique) — exactly the rows a downstream
// replicator must re-ship to keep a remote copy in lockstep. The slice
// is writer-owned scratch: read it before the next batch, do not
// retain it. Empty when the last batch changed nothing.
func (st *Store) DirtyOwners() []int32 { return st.dirtyBuf }

// Epoch returns the current published epoch. The contents are
// read-only and remain stable only under the Epoch pinning contract —
// concurrent consumers must go through a Reader instead.
func (st *Store) Epoch() *Epoch { return st.cur.Load() }

// ApplyBatch applies one churn batch: the maintainer patches the graph
// and repairs its trees, the spanner mirror absorbs the changed trees,
// and the dirty-ball owners' tables — plus any reader-reported stale
// owners — are rebuilt on the word-parallel builder and published as a
// new epoch, off the readers' hot path. Returns the number of changes
// that had an effect.
//
//remspan:hotpath
func (st *Store) ApplyBatch(changes []dynamic.Change) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	applied := st.m.ApplyBatch(changes)
	var dirty []int32
	if applied > 0 {
		dirty = st.m.DirtyRoots()
	}
	st.dirtyBuf = append(st.dirtyBuf[:0], dirty...)
	st.drainStale()
	if len(st.dirtyBuf) == 0 {
		return applied
	}
	for _, r := range dirty {
		st.h.UpdateTree(int(r), st.m.TreeOf(int(r)))
	}
	if len(st.dirtyBuf) > len(dirty) { // stale marks joined: sort + dedupe
		slices.Sort(st.dirtyBuf)
		st.dirtyBuf = slices.Compact(st.dirtyBuf)
	}
	st.publish(st.dirtyBuf)
	return applied
}

// RebuildAll discards the bounded-staleness state and rebuilds every
// owner's table against the current graph and spanner, publishing the
// result as a new epoch (the periodic resync escape hatch; exact but
// O(n·m/64), so off any per-tick path).
func (st *Store) RebuildAll() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.dirtyBuf = st.dirtyBuf[:0]
	for u := 0; u < st.n; u++ {
		st.dirtyBuf = append(st.dirtyBuf, int32(u))
	}
	st.drainStale() // owners already all queued; just clear the marks
	st.dirtyBuf = st.dirtyBuf[:st.n]
	st.publish(st.dirtyBuf)
}

// MarkStale queues owner u for table rebuild in the next batch.
// Callable from any goroutine; Reader.RouteOn calls it on every
// RouteStaleLink detection.
func (st *Store) MarkStale(u int) {
	w := &st.stale[u>>5]
	bit := uint32(1) << uint(u&31)
	for {
		old := w.Load()
		if old&bit != 0 {
			break
		}
		if w.CompareAndSwap(old, old|bit) {
			break
		}
	}
	st.staleDirty.Store(true)
}

// drainStale appends the marked owners to dirtyBuf and clears the
// marks.
func (st *Store) drainStale() {
	if !st.staleDirty.Swap(false) {
		return
	}
	for wi := range st.stale {
		v := st.stale[wi].Swap(0)
		for ; v != 0; v &= v - 1 {
			st.dirtyBuf = append(st.dirtyBuf, int32(wi<<5|bits.TrailingZeros32(v)))
		}
	}
}

// publish rebuilds the given owners' rows (sorted, unique) into a new
// epoch and swaps it in.
//
//remspan:hotpath
func (st *Store) publish(owners []int32) {
	cur := st.cur.Load()
	st.reclaim()
	ep := st.takeEpoch()
	copy(ep.tables, cur.tables)
	ret := retiredEpoch{ep: cur, rows: st.takeRows()}
	g, h := st.m.View(), st.h.View()
	for start := 0; start < len(owners); start += 64 {
		end := start + 64
		if end > len(owners) {
			end = len(owners)
		}
		group := owners[start:end]
		st.groupNext = st.groupNext[:0]
		st.groupDist = st.groupDist[:0]
		for _, u := range group {
			next, dist := st.takeRow(), st.takeRow()
			ret.rows = append(ret.rows, ep.tables[u].Next, ep.tables[u].Dist)
			ep.tables[u] = Table{Owner: int(u), Next: next, Dist: dist}
			st.groupNext = append(st.groupNext, next)
			st.groupDist = append(st.groupDist, dist)
		}
		st.bb.buildGroup(g, h, group, st.groupNext, st.groupDist)
	}
	ep.seq.Store(cur.Seq() + 1)
	ret.seq = ep.Seq()
	st.cur.Store(ep)
	st.retired = append(st.retired, ret)
	if drop := len(st.retired) - maxRetired; drop > 0 {
		n := copy(st.retired, st.retired[drop:])
		for i := n; i < len(st.retired); i++ {
			st.retired[i] = retiredEpoch{} // release to GC, not to the pools
		}
		st.retired = st.retired[:n]
	}
}

// reclaim recycles retired buffers whose epochs every active reader
// has left.
func (st *Store) reclaim() {
	safe := st.minActiveSeq()
	k := 0
	for k < len(st.retired) && st.retired[k].seq <= safe {
		r := st.retired[k]
		st.epPool = append(st.epPool, r.ep)
		st.rowPool = append(st.rowPool, r.rows...)
		st.rowsPool = append(st.rowsPool, r.rows[:0])
		k++
	}
	if k > 0 {
		n := copy(st.retired, st.retired[k:])
		st.retired = st.retired[:n]
	}
}

// minActiveSeq returns the smallest epoch seq any reader is currently
// inside (idleSeq when all are idle): buffers retired at or before it
// are unreachable.
func (st *Store) minActiveSeq() uint64 {
	st.readersMu.Lock()
	defer st.readersMu.Unlock()
	min := uint64(idleSeq)
	for _, r := range st.readers {
		if s := r.seq.Load(); s < min {
			min = s
		}
	}
	return min
}

func (st *Store) takeEpoch() *Epoch {
	if k := len(st.epPool); k > 0 {
		ep := st.epPool[k-1]
		st.epPool = st.epPool[:k-1]
		return ep
	}
	return &Epoch{tables: make([]Table, st.n)} //remspan:coldpath pool miss; reclaim refills epPool in steady state
}

func (st *Store) takeRow() []int32 {
	if k := len(st.rowPool); k > 0 {
		r := st.rowPool[k-1]
		st.rowPool = st.rowPool[:k-1]
		return r
	}
	return make([]int32, st.n) //remspan:coldpath pool miss; reclaim refills rowPool in steady state
}

func (st *Store) takeRows() [][]int32 {
	if k := len(st.rowsPool); k > 0 {
		r := st.rowsPool[k-1]
		st.rowsPool = st.rowsPool[:k-1]
		return r
	}
	return make([][]int32, 0, 128) //remspan:coldpath pool miss; reclaim refills rowsPool in steady state
}

// Reader is one goroutine's lock-free handle on the store. Each
// concurrent consumer needs its own (a Reader is not safe for
// concurrent use with itself); creating one is cheap. Route results
// share the reader's path buffer — valid until its next call.
type Reader struct {
	st     *Store
	seq    atomic.Uint64 //remspan:atomic
	path   []int32
	closed bool     // guarded by st.readersMu
	_      [40]byte // keep hot writer scans off this reader's line
}

// NewReader registers and returns a reader handle. Call Close when a
// short-lived reader is done with the store, or its registration slot
// lives for the store's lifetime.
func (st *Store) NewReader() *Reader {
	r := &Reader{st: st, path: make([]int32, 0, 16)}
	r.seq.Store(idleSeq)
	st.readersMu.Lock()
	st.readers = append(st.readers, r)
	st.readersMu.Unlock()
	return r
}

// Close unregisters the reader so its slot no longer participates in
// reclamation scans. It must be called with no operation in flight,
// and the reader must not be used afterwards. Close is idempotent:
// double-closing (a deferred Close racing an explicit one in teardown
// paths) is a no-op, never a panic or a corrupted registry.
func (r *Reader) Close() {
	st := r.st
	st.readersMu.Lock()
	if !r.closed {
		r.closed = true
		for i, x := range st.readers {
			if x == r {
				st.readers[i] = st.readers[len(st.readers)-1]
				st.readers[len(st.readers)-1] = nil
				st.readers = st.readers[:len(st.readers)-1]
				break
			}
		}
	}
	st.readersMu.Unlock()
}

// enter pins the current epoch: announce, then re-check the pointer so
// the writer can never recycle an epoch between our load and our
// announcement.
func (r *Reader) enter() *Epoch {
	for {
		e := r.st.cur.Load()
		r.seq.Store(e.Seq())
		if r.st.cur.Load() == e {
			return e
		}
	}
}

// exit releases the pinned epoch.
func (r *Reader) exit() { r.seq.Store(idleSeq) }

// NextHop returns s's installed next hop toward t (-1 unreachable) in
// the current epoch.
func (r *Reader) NextHop(s, t int) int32 {
	ep := r.enter()
	defer r.exit() // release even on a bad-index panic: a reader parked
	// on an announced seq would block reclamation forever
	return ep.tables[s].Next[t]
}

// Dist returns s's believed distance to t in the current epoch
// (graph.Unreached when unknown).
func (r *Reader) Dist(s, t int) int32 {
	ep := r.enter()
	defer r.exit()
	return ep.tables[s].Dist[t]
}

// Route walks s→t hop by hop through one epoch's tables with no
// physical link validation: it delivers, reports RouteUnreachable, or
// trips the hop budget (RouteTrapped — possible only with a
// non-spanner advertisement, or transiently when the epoch mixes fresh
// and bounded-stale rows under churn). The Path is reader-owned, valid
// until the next call.
func (r *Reader) Route(s, t int) Route {
	ep := r.enter()
	defer r.exit()
	rt := tableRouteInto(ep.tables, nil, s, t, r.path)
	if rt.Path != nil {
		r.path = rt.Path // keep the grown buffer for the next walk
	}
	return rt
}

// RouteOn walks s→t validating every hop against the caller's physical
// view (the live network the epoch may trail behind). On a stale link
// it marks the offending owner for rebuild — the typed-reason contract
// that turns silent delivery failure into queued re-resolution — and
// retries once if the writer has already published a fresher epoch.
// The final attempt's result is returned either way.
func (r *Reader) RouteOn(phys graph.View, s, t int) Route {
	for attempt := 0; ; attempt++ {
		rt, seq := r.routeOn(phys, s, t)
		if rt.Reason != RouteStaleLink {
			return rt
		}
		r.st.MarkStale(int(rt.At))
		if attempt >= 1 || r.st.cur.Load().Seq() == seq {
			return rt // no fresher epoch yet (or the retry is spent); repair is queued
		}
	}
}

// routeOn runs one pinned validated walk and reports the epoch it ran
// against.
func (r *Reader) routeOn(phys graph.View, s, t int) (Route, uint64) {
	ep := r.enter()
	defer r.exit()
	rt := tableRouteInto(ep.tables, phys, s, t, r.path)
	if rt.Path != nil {
		r.path = rt.Path
	}
	return rt, ep.Seq()
}
