package routing

import (
	"fmt"
	"math/rand"
	"testing"

	"remspan/internal/spanner"
	"remspan/internal/testutil"
)

// TestBatchedTablesWidthDeterminism pins the table-construction fan-out
// at explicit worker widths: every width produces tables bit-identical
// to the width-1 run and to the scalar per-owner builder, spanner
// quality (exact, broken, empty) notwithstanding. Width 7 never divides
// the batch count evenly, so the stealing path is exercised directly
// rather than via GOMAXPROCS.
func TestBatchedTablesWidthDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for fam, g := range routingFamilies() {
		for hname, h := range routingSpanners(g, rng) {
			want := BuildTables(g, h)
			for _, width := range []int{1, 2, 7} {
				tables := NewTables(g.N())
				buildTablesBatchedWidth(g, h, tables, width)
				tablesEqual(t, fmt.Sprintf("%s/%s width=%d", fam, hname, width), want, tables)
			}
		}
	}
}

// TestBatchedTablesWidthSweepUDG widens the sweep on the geometric
// family the production path serves, one spanner, many widths.
func TestBatchedTablesWidthSweepUDG(t *testing.T) {
	g := routingFamilies()["udg"]
	h := spanner.Exact(g).Graph()
	want := BuildTables(g, h)
	for _, width := range []int{2, 3, 5, 8, 13} {
		tables := NewTables(g.N())
		buildTablesBatchedWidth(g, h, tables, width)
		tablesEqual(t, fmt.Sprintf("udg width=%d", width), want, tables)
	}
}

// TestBatchedTablesWidthZeroAlloc pins the warm shard fan-out
// allocation-free: once the shared env's per-worker builders, batch
// order scratch, and pool helpers are grown, repeat builds at a fixed
// width touch no heap.
func TestBatchedTablesWidthZeroAlloc(t *testing.T) {
	g := routingFamilies()["udg"]
	h := spanner.Exact(g).Graph()
	tables := NewTables(g.N())
	buildTablesBatchedWidth(g, h, tables, 4) // warm env + pool
	testutil.PinAllocs(t, "warm batched table fan-out", 5, func() {
		buildTablesBatchedWidth(g, h, tables, 4)
	})
}
