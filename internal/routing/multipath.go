package routing

import (
	"remspan/internal/flow"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

// MultipathReport summarizes disjoint-path routing over a 2-connecting
// remote-spanner with single-node failure injection.
type MultipathReport struct {
	Pairs          int // pairs examined (2-connected in G, non-adjacent)
	WithTwoRoutes  int // pairs with 2 disjoint routes in H_s
	SurvivedFaults int // pairs still routable after failing a primary-route relay
	FaultTrials    int
	SumLenG        int // Σ d²_G over counted pairs
	SumLenH        int // Σ d²_{H_s} over counted pairs
}

// MeasureMultipath checks, for each pair (s, t): that two internally
// disjoint routes exist in H_s whenever they exist in G (the
// 2-connecting property), accumulates the d² length sums, and injects a
// failure of the first internal relay of the primary route to confirm
// the secondary route keeps s and t connected.
func MeasureMultipath(g, h *graph.Graph, pairs [][2]int) MultipathReport {
	var rep MultipathReport
	for _, p := range pairs {
		s, t := p[0], p[1]
		if s == t || g.HasEdge(s, t) {
			continue
		}
		dg := flow.KDistance(g, s, t, 2)
		if dg < 0 {
			continue // not 2-connected in G
		}
		rep.Pairs++
		hs := spanner.View(g, h, s)
		res, ok := flow.VertexDisjointPaths(hs, s, t, 2)
		if !ok {
			continue
		}
		rep.WithTwoRoutes++
		rep.SumLenG += dg
		rep.SumLenH += res.Total
		// Fail the first internal relay of the primary route; the
		// secondary route must survive by disjointness.
		primary := res.Paths[0]
		if len(primary) > 2 {
			rep.FaultTrials++
			failed := int(primary[1])
			hsf := hs.RemoveVertex(failed)
			if d := graph.BFS(hsf, s)[t]; d != graph.Unreached {
				rep.SurvivedFaults++
			}
		}
	}
	return rep
}
