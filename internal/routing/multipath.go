package routing

import (
	"remspan/internal/flow"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

// MultipathReport summarizes disjoint-path routing over a 2-connecting
// remote-spanner with single-node failure injection.
type MultipathReport struct {
	Pairs          int // pairs examined (2-connected in G, non-adjacent)
	WithTwoRoutes  int // pairs with 2 disjoint routes in H_s
	SurvivedFaults int // pairs still routable after failing a primary-route relay
	FaultTrials    int
	SumLenG        int // Σ d²_G over counted pairs
	SumLenH        int // Σ d²_{H_s} over counted pairs
}

// MeasureMultipath checks, for each pair (s, t): that two internally
// disjoint routes exist in H_s whenever they exist in G (the
// 2-connecting property), accumulates the d² length sums, and injects a
// failure of the first internal relay of the primary route to confirm
// the secondary route keeps s and t connected. Accepts any graph.View
// pair (h ⊆ g); the max-flow core still runs on materialized adjacency
// (a no-op for *graph.Graph inputs), and the fault-injection
// reachability check runs on a reusable scratch instead of cloning the
// view per trial.
func MeasureMultipath(g, h graph.View, pairs [][2]int) MultipathReport {
	var rep MultipathReport
	gg := graph.FromView(g)
	hh := graph.FromView(h)
	scr := newAvoidScratch(g.N())
	for _, p := range pairs {
		s, t := p[0], p[1]
		if s == t || gg.HasEdge(s, t) {
			continue
		}
		dg := flow.KDistance(gg, s, t, 2)
		if dg < 0 {
			continue // not 2-connected in G
		}
		rep.Pairs++
		hs := spanner.View(gg, hh, s)
		res, ok, err := flow.VertexDisjointPaths(hs, s, t, 2)
		if err != nil || !ok {
			continue
		}
		rep.WithTwoRoutes++
		rep.SumLenG += dg
		rep.SumLenH += res.Total
		// Fail the first internal relay of the primary route; the
		// secondary route must survive by disjointness.
		primary := res.Paths[0]
		if len(primary) > 2 {
			rep.FaultTrials++
			if scr.reaches(hs, s, t, int(primary[1])) {
				rep.SurvivedFaults++
			}
		}
	}
	return rep
}

// avoidScratch is the reusable state of the fault-injection
// reachability sweep: a BFS that treats one vertex as failed, without
// materializing the vertex-deleted graph.
type avoidScratch struct {
	dist  []int32
	queue []int32
}

func newAvoidScratch(n int) *avoidScratch {
	d := make([]int32, n)
	for i := range d {
		d[i] = graph.Unreached
	}
	return &avoidScratch{dist: d, queue: make([]int32, 0, n)}
}

// reaches reports whether t is reachable from s in v with the vertex
// failed removed (s, t ≠ failed).
func (a *avoidScratch) reaches(v graph.View, s, t, failed int) bool {
	for _, x := range a.queue {
		a.dist[x] = graph.Unreached
	}
	a.queue = a.queue[:0]

	a.dist[s] = 0
	a.queue = append(a.queue, int32(s))
	for head := 0; head < len(a.queue); head++ {
		x := a.queue[head]
		for _, w := range v.Neighbors(int(x)) {
			if int(w) == failed || a.dist[w] != graph.Unreached {
				continue
			}
			if int(w) == t {
				a.queue = append(a.queue, w)
				a.dist[w] = a.dist[x] + 1
				return true
			}
			a.dist[w] = a.dist[x] + 1
			a.queue = append(a.queue, w)
		}
	}
	return false
}
