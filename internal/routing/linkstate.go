// Package routing implements the paper's motivating application layer:
// link-state routing over an advertised remote-spanner. Each node knows
// its own neighbors (hello protocol) plus the flooded sub-graph H, so
// it routes greedily on its augmented view H_u; the remote-spanner
// property bounds the resulting route length by α·d_G + β (§1).
//
// The forwarding plane has two data paths, both written against the
// graph.View read interface (mutable Graph, CSR snapshot, or patched
// CSRDelta) with reusable scratch so hot paths allocate nothing:
//
//   - GreedyRoute / RouteScratch: per-hop greedy forwarding, each hop
//     re-evaluating distances in its own view (the simulation path);
//   - Table / BuildTables / BatchBuilder (tables.go, batch.go):
//     precomputed next-hop tables — the FIB a link-state daemon
//     installs — built one owner at a time or 64 owners per
//     word-parallel sweep, and kept fresh under churn by the
//     epoch-swapped Store (store.go).
//
// The package also provides OLSR-style multipoint-relay flooding and
// disjoint-path multipath routing with failure injection.
package routing

import (
	"remspan/internal/flow"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

// Route is the outcome of a link-state forwarding walk (greedy or
// table-driven).
type Route struct {
	Path   []int32 // s ... t (empty when !OK; scratch-owned on scratch paths)
	Hops   int
	OK     bool
	Reason RouteReason // why forwarding stopped (RouteDelivered when OK)
	At     int32       // node where the walk ended (t on delivery)
}

// RouteScratch holds the reusable traversal state of greedy routing:
// one warm scratch routes any number of packets with zero allocations
// (pinned by TestGreedyRouteZeroAlloc). Not safe for concurrent use;
// the returned Route's Path is scratch-owned and valid until the next
// call.
type RouteScratch struct {
	dist    []int32
	queue   []int32
	path    []int32
	nbMark  []uint32 // epoch-stamped "is a G-neighbor of the hop owner"
	nbEpoch uint32
}

// NewRouteScratch returns routing scratch for graphs with up to n
// vertices.
func NewRouteScratch(n int) *RouteScratch {
	d := make([]int32, n)
	for i := range d {
		d[i] = graph.Unreached
	}
	return &RouteScratch{
		dist:   d,
		queue:  make([]int32, 0, n),
		path:   make([]int32, 0, 16),
		nbMark: make([]uint32, n),
	}
}

// GreedyRoute simulates hop-by-hop greedy forwarding from s to t: the
// packet at node u is forwarded to the G-neighbor of u closest to t in
// u's own view H_u (ties to the smallest id). This is exactly the
// forwarding rule of §1; the paper shows the route length is at most
// d_{H_s}(s, t).
func (rs *RouteScratch) GreedyRoute(g, h graph.View, s, t int) Route {
	rs.path = append(rs.path[:0], int32(s))
	if s == t {
		return Route{Path: rs.path, OK: true, At: int32(s)}
	}
	maxHops := g.N() + 1
	cur := s
	for hops := 0; hops < maxHops; hops++ {
		if cur == t {
			return Route{Path: rs.path, Hops: len(rs.path) - 1, OK: true, At: int32(t)}
		}
		if hasEdgeView(g, cur, t) {
			rs.path = append(rs.path, int32(t))
			cur = t
			continue
		}
		// Distances from t in cur's own view H_cur (undirected, so a
		// single BFS from t serves all of cur's neighbors).
		d := rs.viewBFSFrom(g, h, cur, t)
		best, bestD := int32(-1), int32(-1)
		for _, nb := range g.Neighbors(cur) {
			dv := d[nb]
			if dv == graph.Unreached {
				continue
			}
			if best == -1 || dv < bestD || (dv == bestD && nb < best) {
				best, bestD = nb, dv
			}
		}
		if best == -1 {
			return Route{Reason: RouteUnreachable, At: int32(cur)}
		}
		rs.path = append(rs.path, best)
		cur = int(best)
	}
	return Route{Reason: RouteTrapped, At: int32(cur)}
}

// GreedyRoute is the convenience form with fresh scratch (per-call
// allocations; batch callers thread a RouteScratch instead).
func GreedyRoute(g, h graph.View, s, t int) Route {
	return NewRouteScratch(g.N()).GreedyRoute(g, h, s, t)
}

// viewBFSFrom returns distances from src in the view H_owner (H plus
// owner's G-incident edges); the slice is valid until the next call.
func (rs *RouteScratch) viewBFSFrom(g, h graph.View, owner, src int) []int32 {
	for _, v := range rs.queue {
		rs.dist[v] = graph.Unreached
	}
	rs.queue = rs.queue[:0]

	// Epoch-stamp owner's G-neighbors so the star test inside the sweep
	// is O(1) instead of a binary search per visited vertex.
	rs.nbEpoch++
	if rs.nbEpoch == 0 { // wrap: re-zero at a boundary with no live epochs
		for i := range rs.nbMark {
			rs.nbMark[i] = 0
		}
		rs.nbEpoch = 1
	}
	ownerNb := g.Neighbors(owner)
	for _, v := range ownerNb {
		rs.nbMark[v] = rs.nbEpoch
	}

	dist := rs.dist
	dist[src] = 0
	rs.queue = append(rs.queue, int32(src))
	for head := 0; head < len(rs.queue); head++ {
		x := rs.queue[head]
		dx := dist[x] + 1
		for _, v := range h.Neighbors(int(x)) {
			if dist[v] == graph.Unreached {
				dist[v] = dx
				rs.queue = append(rs.queue, v)
			}
		}
		// Augmented edges: owner ↔ its G-neighbors.
		if int(x) == owner {
			for _, v := range ownerNb {
				if dist[v] == graph.Unreached {
					dist[v] = dx
					rs.queue = append(rs.queue, v)
				}
			}
		} else if rs.nbMark[x] == rs.nbEpoch && dist[owner] == graph.Unreached {
			dist[owner] = dx
			rs.queue = append(rs.queue, int32(owner))
		}
	}
	return dist
}

// StretchStats summarizes greedy-routing quality over a set of pairs.
type StretchStats struct {
	Pairs      int
	Delivered  int
	MaxStretch float64
	AvgStretch float64
	MaxHops    int
}

// MeasureRouting runs GreedyRoute over the given pairs and compares the
// hop counts with shortest-path distances in g.
func MeasureRouting(g, h graph.View, pairs [][2]int) StretchStats {
	var st StretchStats
	sum := 0.0
	scratch := graph.NewBFSScratch(g.N())
	rs := NewRouteScratch(g.N())
	for _, p := range pairs {
		s, t := p[0], p[1]
		if s == t {
			continue
		}
		dg, _, _ := scratch.BoundedView(g, s, g.N())
		if dg[t] == graph.Unreached {
			continue
		}
		st.Pairs++
		r := rs.GreedyRoute(g, h, s, t)
		if !r.OK {
			continue
		}
		st.Delivered++
		stretch := float64(r.Hops) / float64(dg[t])
		sum += stretch
		if stretch > st.MaxStretch {
			st.MaxStretch = stretch
		}
		if r.Hops > st.MaxHops {
			st.MaxHops = r.Hops
		}
	}
	if st.Delivered > 0 {
		st.AvgStretch = sum / float64(st.Delivered)
	}
	return st
}

// AdvertisedCost returns the number of links a routing protocol floods
// network-wide: the spanner's edge count for remote-spanner link-state
// vs all edges for classic link-state. (Convenience for experiments.)
func AdvertisedCost(g graph.View, h *graph.EdgeSet) (spannerLinks, fullLinks int) {
	return h.Len(), g.M()
}

// DisjointRoutes returns k minimum-total-length internally disjoint
// routes from s to t in s's view H_s — the multipath routing enabled by
// k-connecting remote-spanners (§3). A non-nil error reports a failed
// path decomposition (malformed flow state), not missing connectivity.
func DisjointRoutes(g, h *graph.Graph, s, t, k int) (flow.Result, bool, error) {
	hs := spanner.View(g, h, s)
	return flow.VertexDisjointPaths(hs, s, t, k)
}
