// Package routing implements the paper's motivating application layer:
// link-state routing over an advertised remote-spanner. Each node knows
// its own neighbors (hello protocol) plus the flooded sub-graph H, so
// it routes greedily on its augmented view H_u; the remote-spanner
// property bounds the resulting route length by α·d_G + β (§1).
// The package also provides OLSR-style multipoint-relay flooding and
// disjoint-path multipath routing with failure injection.
package routing

import (
	"remspan/internal/flow"
	"remspan/internal/graph"
	"remspan/internal/spanner"
)

// Route is the outcome of a greedy link-state forwarding simulation.
type Route struct {
	Path []int32 // s ... t (empty when !OK)
	Hops int
	OK   bool
}

// GreedyRoute simulates hop-by-hop greedy forwarding from s to t: the
// packet at node u is forwarded to the G-neighbor of u closest to t in
// u's own view H_u (ties to the smallest id). This is exactly the
// forwarding rule of §1; the paper shows the route length is at most
// d_{H_s}(s, t).
func GreedyRoute(g, h *graph.Graph, s, t int) Route {
	if s == t {
		return Route{Path: []int32{int32(s)}, OK: true}
	}
	maxHops := g.N() + 1
	path := []int32{int32(s)}
	cur := s
	for hops := 0; hops < maxHops; hops++ {
		if cur == t {
			return Route{Path: path, Hops: len(path) - 1, OK: true}
		}
		if g.HasEdge(cur, t) {
			path = append(path, int32(t))
			cur = t
			continue
		}
		// Distances from t in cur's own view H_cur (undirected, so a
		// single BFS from t serves all of cur's neighbors).
		d := viewBFSFrom(g, h, cur, t)
		best, bestD := int32(-1), int32(-1)
		for _, nb := range g.Neighbors(cur) {
			dv := d[nb]
			if dv == graph.Unreached {
				continue
			}
			if best == -1 || dv < bestD || (dv == bestD && nb < best) {
				best, bestD = nb, dv
			}
		}
		if best == -1 {
			return Route{}
		}
		path = append(path, best)
		cur = int(best)
	}
	return Route{}
}

// viewBFSFrom returns distances from src in the view H_owner (H plus
// owner's G-incident edges).
func viewBFSFrom(g, h *graph.Graph, owner, src int) []int32 {
	n := g.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = graph.Unreached
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	ownerNb := g.Neighbors(owner)
	inOwnerNb := func(v int32) bool {
		return g.HasEdge(owner, int(v))
	}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		push := func(v int32) {
			if dist[v] == graph.Unreached {
				dist[v] = dist[x] + 1
				queue = append(queue, v)
			}
		}
		for _, v := range h.Neighbors(int(x)) {
			push(v)
		}
		// Augmented edges: owner ↔ its G-neighbors.
		if int(x) == owner {
			for _, v := range ownerNb {
				push(v)
			}
		} else if inOwnerNb(x) {
			push(int32(owner))
		}
	}
	return dist
}

// StretchStats summarizes greedy-routing quality over a set of pairs.
type StretchStats struct {
	Pairs      int
	Delivered  int
	MaxStretch float64
	AvgStretch float64
	MaxHops    int
}

// MeasureRouting runs GreedyRoute over the given pairs and compares the
// hop counts with shortest-path distances in g.
func MeasureRouting(g, h *graph.Graph, pairs [][2]int) StretchStats {
	var st StretchStats
	sum := 0.0
	scratch := graph.NewBFSScratch(g.N())
	for _, p := range pairs {
		s, t := p[0], p[1]
		if s == t {
			continue
		}
		dg, _, _ := scratch.Bounded(g, s, g.N())
		if dg[t] == graph.Unreached {
			continue
		}
		st.Pairs++
		r := GreedyRoute(g, h, s, t)
		if !r.OK {
			continue
		}
		st.Delivered++
		stretch := float64(r.Hops) / float64(dg[t])
		sum += stretch
		if stretch > st.MaxStretch {
			st.MaxStretch = stretch
		}
		if r.Hops > st.MaxHops {
			st.MaxHops = r.Hops
		}
	}
	if st.Delivered > 0 {
		st.AvgStretch = sum / float64(st.Delivered)
	}
	return st
}

// AdvertisedCost returns the number of links a routing protocol floods
// network-wide: the spanner's edge count for remote-spanner link-state
// vs all edges for classic link-state. (Convenience for experiments.)
func AdvertisedCost(g *graph.Graph, h *graph.EdgeSet) (spannerLinks, fullLinks int) {
	return h.Len(), g.M()
}

// DisjointRoutes returns k minimum-total-length internally disjoint
// routes from s to t in s's view H_s — the multipath routing enabled by
// k-connecting remote-spanners (§3).
func DisjointRoutes(g, h *graph.Graph, s, t, k int) (flow.Result, bool) {
	hs := spanner.View(g, h, s)
	return flow.VertexDisjointPaths(hs, s, t, k)
}
