package expt

import (
	"bytes"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1} }

// runExpt runs one experiment in quick mode and fails the test on any
// FAIL verdict in its table.
func runExpt(t *testing.T, id string) string {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	tb, err := e.Run(quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := tb.String()
	if strings.Contains(out, "FAIL") {
		t.Fatalf("%s produced FAIL verdicts:\n%s", id, out)
	}
	if len(tb.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return out
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("registry has %d experiments, want 17", len(all))
	}
	for i, e := range all {
		if idOrder(e.ID) != i+1 {
			t.Fatalf("registry out of order at %d: %s", i, e.ID)
		}
		if e.Title == "" || e.Ref == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := Lookup("E99"); ok {
		t.Fatal("lookup invented an experiment")
	}
}

func TestFigure1(t *testing.T) {
	out := runExpt(t, "E1")
	for _, want := range []string{"(a)", "(b)", "(c)", "(d)", "unit disk graph"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestTable1(t *testing.T) {
	out := runExpt(t, "E2")
	for _, want := range []string{"rand. UDG", "UBG known dist.", "UBG unknown dist.", "points in R^d"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing row %q", want)
		}
	}
}

func TestScalingUDG(t *testing.T)      { runExpt(t, "E3") }
func TestEpsilonSweep(t *testing.T)    { runExpt(t, "E4") }
func TestKConnSweep(t *testing.T)      { runExpt(t, "E5") }
func TestApproxRatio(t *testing.T)     { runExpt(t, "E6") }
func TestRounds(t *testing.T)          { runExpt(t, "E7") }
func TestRoutingStretchE(t *testing.T) { runExpt(t, "E8") }
func TestMultipathE(t *testing.T)      { runExpt(t, "E9") }
func TestFloodingE(t *testing.T)       { runExpt(t, "E10") }
func TestFrontierE(t *testing.T)       { runExpt(t, "E11") }
func TestEdgeConnE(t *testing.T)       { runExpt(t, "E12") }
func TestLiveProtocolE(t *testing.T)   { runExpt(t, "E13") }
func TestChurnE(t *testing.T)          { runExpt(t, "E14") }
func TestWorstCaseE(t *testing.T)      { runExpt(t, "E15") }
func TestAsynchronyE(t *testing.T)     { runExpt(t, "E16") }
func TestLiveNetworkE(t *testing.T)    { runExpt(t, "E17") }

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	var buf bytes.Buffer
	if err := RunAll(quickCfg(), &buf); err != nil {
		t.Fatalf("RunAll: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, "["+e.ID+"]") {
			t.Errorf("missing section %s", e.ID)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	e, _ := Lookup("E3")
	a, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same config produced different tables")
	}
}
