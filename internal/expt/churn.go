package expt

import (
	"remspan/internal/domtree"
	"remspan/internal/dynamic"
	"remspan/internal/graph"
	"remspan/internal/spanner"
	"remspan/internal/stats"
)

// Churn quantifies the locality dividend of the paper's constructions
// (§2.3 / §1: "a node can decide which edges to add to the
// remote-spanner independently from other node decisions"): under edge
// churn, an incremental maintainer rebuilds only the dominating trees
// whose constant-radius input changed, yet stays bit-identical to full
// recomputation.
func Churn(cfg Config) (*stats.Table, error) {
	n, changes := 600, 60
	if cfg.Quick {
		n, changes = 200, 25
	}
	g := udgWithN(n, 4, cfg.rng(1500))
	build := func(c *graph.CSR, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.KGreedyCSR(c, s, u, 1)
	}
	m := dynamic.New(g, 1, build)
	initial := m.TreesRebuilt()

	rng := cfg.rng(1501)
	applied := 0
	for applied < changes {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v {
			continue
		}
		if m.Graph().HasEdge(u, v) {
			if m.RemoveEdge(u, v) {
				applied++
			}
		} else if m.AddEdge(u, v) {
			applied++
		}
	}
	perChange := float64(m.TreesRebuilt()-initial) / float64(applied)

	// Equivalence with full recomputation on the final graph.
	full := graph.NewEdgeSet(m.Graph().N())
	csr := graph.NewCSR(m.Graph())
	scratch := domtree.NewScratch(m.Graph().N())
	for u := 0; u < m.Graph().N(); u++ {
		full.AddTree(build(csr, scratch, u))
	}
	same := m.Spanner().Len() == full.Len()
	if same {
		fe, me := full.Edges(), m.Spanner().Edges()
		for i := range fe {
			if fe[i] != me[i] {
				same = false
				break
			}
		}
	}
	viol := spanner.Check(m.Graph(), m.Spanner().Graph(), spanner.NewStretch(1, 0))

	t := stats.NewTable("Incremental remote-spanner maintenance under edge churn",
		"metric", "value", "verdict")
	t.AddRow("nodes / initial edges", g.N(), "PASS")
	t.AddRow("edge changes applied", applied, "PASS")
	t.AddRow("trees rebuilt per change (avg)", perChange,
		verdict(perChange < float64(g.N())/2))
	t.AddRow("full rebuild would be (trees/change)", g.N(), "PASS")
	t.AddRow("identical to full recomputation", same, verdict(same))
	t.AddRow("final spanner satisfies (1,0)", viol == nil, verdict(viol == nil))
	t.AddNote("locality radius R=1 (Algorithm 4): only roots within distance R of a change rebuild")
	return t, nil
}
