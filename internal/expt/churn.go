package expt

import (
	"remspan/internal/domtree"
	"remspan/internal/dynamic"
	"remspan/internal/graph"
	"remspan/internal/spanner"
	"remspan/internal/stats"
)

// Churn quantifies the locality dividend of the paper's constructions
// (§2.3 / §1: "a node can decide which edges to add to the
// remote-spanner independently from other node decisions"): under edge
// churn, an incremental maintainer patches its CSR in place and
// rebuilds only the dominating trees whose constant-radius input
// changed — batches union their dirty balls and repair each root once —
// yet stays bit-identical to full recomputation.
func Churn(cfg Config) (*stats.Table, error) {
	n, changes, batchSize := 600, 60, 10
	if cfg.Quick {
		n, changes, batchSize = 200, 25, 5
	}
	g := udgWithN(n, 4, cfg.rng(1500))
	build := func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.KGreedyCSR(c, s, u, 1)
	}
	m := dynamic.New(g, 1, build)
	initial := m.TreesRebuilt()

	rng := cfg.rng(1501)
	applied := 0
	batch := make([]dynamic.Change, 0, batchSize)
	for applied < changes {
		batch = batch[:0]
		for len(batch) < batchSize {
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u == v {
				continue
			}
			kind := dynamic.AddEdge
			if m.Graph().HasEdge(u, v) {
				kind = dynamic.RemoveEdge
			}
			batch = append(batch, dynamic.Change{Kind: kind, U: u, V: v})
		}
		applied += m.ApplyBatch(batch)
	}
	perChange := float64(m.TreesRebuilt()-initial) / float64(applied)

	// Equivalence with full recomputation on the final graph.
	full := graph.NewEdgeSet(m.Graph().N())
	csr := graph.NewCSR(m.Graph())
	scratch := domtree.NewScratch(m.Graph().N())
	for u := 0; u < m.Graph().N(); u++ {
		full.AddTree(build(csr, scratch, u))
	}
	same := m.Spanner().Len() == full.Len()
	if same {
		fe, me := full.Edges(), m.Spanner().Edges()
		for i := range fe {
			if fe[i] != me[i] {
				same = false
				break
			}
		}
	}
	viol := spanner.Check(m.Graph(), m.Spanner().Graph(), spanner.NewStretch(1, 0))

	t := stats.NewTable("Incremental remote-spanner maintenance under edge churn",
		"metric", "value", "verdict")
	t.AddRow("nodes / initial edges", g.N(), "PASS")
	t.AddRow("edge changes applied", applied, "PASS")
	t.AddRow("batch size (ApplyBatch)", batchSize, "PASS")
	t.AddRow("trees rebuilt per change (avg)", perChange,
		verdict(perChange < float64(g.N())/2))
	t.AddRow("full rebuild would be (trees/change)", g.N(), "PASS")
	t.AddRow("identical to full recomputation", same, verdict(same))
	t.AddRow("final spanner satisfies (1,0)", viol == nil, verdict(viol == nil))
	t.AddNote("locality radius R=1 (Algorithm 4): only roots within distance R of a change rebuild")
	t.AddNote("snapshot-free: per-change cost is O(deg) CSR row patches + bounded rebuilds, never O(n+m)")
	return t, nil
}
