package expt

import (
	"remspan/internal/gen"
	"remspan/internal/spanner"
	"remspan/internal/stats"
)

// WorstCase makes the paper's §1.2 tightness conjecture concrete: on
// extremal C4-free graphs (projective-plane incidence graphs, the
// instances behind the Ω(n^{1+1/k}) spanner lower bounds) every pair of
// adjacent vertices has at most one common neighbor, so even a
// (1,0)-REMOTE-spanner must keep all Θ(n^{3/2}) edges — remote-spanners
// cannot beat the n^{1+1/k} frontier on general graphs, exactly as the
// paper suspects. The geometric savings of E3 are a property of
// unit-disk inputs, not of the construction.
func WorstCase(cfg Config) (*stats.Table, error) {
	qs := []int{5, 7, 11}
	if cfg.Quick {
		qs = []int{3, 5}
	}
	t := stats.NewTable("Worst-case frontier: remote-spanners on extremal C4-free graphs (§1.2)",
		"graph", "n", "m=Θ(n^{3/2})", "(1,0)-rem.-span. edges", "savings", "verdict")

	for _, q := range qs {
		g := gen.ProjectivePlane(q)
		res := spanner.Exact(g)
		viol := spanner.Check(g, res.Graph(), spanner.NewStretch(1, 0))
		// The conjecture's concrete form: no edge can be dropped.
		ok := viol == nil && res.Edges() == g.M()
		t.AddRow("PG(2,"+itoa(q)+")", g.N(), g.M(), res.Edges(),
			float64(g.M()-res.Edges())/float64(g.M()), verdict(ok))
	}

	// Contrast: the friendship windmill — one shared hub means the hub's
	// star is forced, but triangle edges are droppable from the spanner
	// (adjacent pairs need no witness).
	f := gen.FriendshipGraph(8)
	resF := spanner.Exact(f)
	violF := spanner.Check(f, resF.Graph(), spanner.NewStretch(1, 0))
	t.AddRow("friendship F_8", f.N(), f.M(), resF.Edges(),
		float64(f.M()-resF.Edges())/float64(f.M()), verdict(violF == nil))

	// And the geometric contrast at comparable size.
	u := udgWithN(270, 4, cfg.rng(1600))
	resU := spanner.Exact(u)
	violU := spanner.Check(u, resU.Graph(), spanner.NewStretch(1, 0))
	t.AddRow("random UDG", u.N(), u.M(), resU.Edges(),
		float64(u.M()-resU.Edges())/float64(u.M()),
		verdict(violU == nil && resU.Edges() < u.M()/2))

	t.AddNote("C4-free: every 2-path has a unique middle vertex, so the escape clause of")
	t.AddNote("k-connecting (2,0)-dominating trees forces every edge — zero savings possible")
	return t, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
