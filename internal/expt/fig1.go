package expt

import (
	"fmt"

	"remspan/internal/flow"
	"remspan/internal/geom"
	"remspan/internal/graph"
	"remspan/internal/spanner"
	"remspan/internal/stats"
)

// fig1Points is a fixed unit-disk instance mirroring the topology of
// the paper's Figure 1: u on the left, two relay "lobes" (y, x) and
// (y', x') leading to v, and a tail node z behind v. Connection radius
// is 1.
var fig1Points = []geom.Point{
	{0.00, 0.00},  // 0: u
	{0.80, 0.45},  // 1: y
	{0.80, -0.45}, // 2: y'
	{1.60, 0.45},  // 3: x
	{1.60, -0.45}, // 4: x'
	{2.35, 0.00},  // 5: v
	{0.95, 0.00},  // 6: w   (inside the u-side oval)
	{3.10, 0.30},  // 7: z
}

var fig1Names = []string{"u", "y", "y'", "x", "x'", "v", "w", "z"}

// Figure1 reproduces Figure 1: it builds the unit-disk instance (panel
// a), the (1,0)-remote-spanner (panel b), the (2,−1)-remote-spanner
// (panel c) and the 2-connecting (2,−1)-remote-spanner (panel d), and
// verifies each panel's caption claims programmatically.
func Figure1(cfg Config) (*stats.Table, error) {
	g := geom.UnitDiskGraph(fig1Points, 1.0)
	const u, v, x = 0, 5, 3

	t := stats.NewTable("Figure 1 — remote-spanners on a unit disk graph",
		"panel", "structure", "edges", "claim", "measured", "verdict")

	t.AddRow("(a)", "unit disk graph G", g.M(), "d_G(u,x)=2, d_G(u,v)=3",
		fmt.Sprintf("d_G(u,x)=%d, d_G(u,v)=%d", graph.BFS(g, u)[x], graph.BFS(g, u)[v]),
		verdict(graph.BFS(g, u)[x] == 2))

	// Panel (b): (1,0)-remote-spanner preserves exact distances in H_u
	// while dropping edges a (1,0)-spanner must keep.
	hb := spanner.Exact(g)
	hbG := hb.Graph()
	viol := spanner.Check(g, hbG, spanner.NewStretch(1, 0))
	dhb := spanner.ViewBFS(g, hbG, u)
	droppedIncident := 0
	for _, nb := range g.Neighbors(u) {
		if !hb.H.Has(u, int(nb)) {
			droppedIncident++
		}
	}
	t.AddRow("(b)", "(1,0)-remote-spanner H^b", hb.Edges(),
		"d_{H^b_u}(u,x) = d_G(u,x); sparser than G",
		fmt.Sprintf("d=%d; %d/%d edges; %d u-edges only in H^b_u",
			dhb[x], hb.Edges(), g.M(), droppedIncident),
		verdict(viol == nil && int(dhb[x]) == 2 && hb.Edges() < g.M()))

	// Panel (c): (2,−1)-remote-spanner via (2,1)-dominating trees
	// (eps=1 in Prop. 1: r=2, stretch (2,−1)).
	hc := spanner.LowStretch(g, 1.0)
	hcG := hc.Graph()
	violC := spanner.Check(g, hcG, spanner.NewStretch(2, -1))
	dhc := spanner.ViewBFS(g, hcG, u)
	dg := graph.BFS(g, u)
	t.AddRow("(c)", "(2,−1)-remote-spanner H^c", hc.Edges(),
		fmt.Sprintf("d_{H^c_u}(u,v) ≤ 2·%d−1", dg[v]),
		fmt.Sprintf("d=%d", dhc[v]),
		verdict(violC == nil && int(dhc[v]) <= 2*int(dg[v])-1))

	// Panel (d): 2-connecting (2,−1)-remote-spanner — two disjoint
	// paths u→v survive in H^d_u.
	hd := spanner.TwoConnecting(g)
	hdG := hd.Graph()
	d2g := flow.KDistance(g, u, v, 2)
	hdu := spanner.View(g, hdG, u)
	res, ok, err := flow.VertexDisjointPaths(hdu, u, v, 2)
	ok = ok && err == nil
	claim := fmt.Sprintf("2 disjoint u→v paths, Σlen ≤ 2·%d−2", d2g)
	measured := "no 2 disjoint paths"
	okD := false
	if ok {
		measured = fmt.Sprintf("Σlen=%d via %s and %s",
			res.Total, fig1PathString(res.Paths[0]), fig1PathString(res.Paths[1]))
		okD = res.Total <= 2*d2g-2 &&
			flow.ArePathsInternallyDisjoint(hdu, u, v, res.Paths) == nil
	}
	violD := spanner.CheckKConnecting(g, hdG, 2, spanner.NewStretch(2, -1), nil)
	t.AddRow("(d)", "2-connecting (2,−1)-r.s. H^d", hd.Edges(), claim, measured,
		verdict(okD && violD == nil))

	t.AddNote("vertices: %v", fig1Names)
	t.AddNote("G edges: %s", fig1Edges(g))
	t.AddNote("H^b edges: %s", fig1EdgeSet(hb.H))
	t.AddNote("H^d edges: %s", fig1EdgeSet(hd.H))
	return t, nil
}

func fig1PathString(p []int32) string {
	s := ""
	for i, v := range p {
		if i > 0 {
			s += "-"
		}
		s += fig1Names[v]
	}
	return s
}

func fig1Edges(g *graph.Graph) string {
	s := ""
	g.EachEdge(func(a, b int) {
		if s != "" {
			s += " "
		}
		s += fig1Names[a] + fig1Names[b]
	})
	return s
}

func fig1EdgeSet(es *graph.EdgeSet) string {
	s := ""
	for _, e := range es.Edges() {
		if s != "" {
			s += " "
		}
		s += fig1Names[e[0]] + fig1Names[e[1]]
	}
	return s
}
