package expt

import (
	"fmt"
	"math"

	"remspan/internal/baseline"
	"remspan/internal/gen"
	"remspan/internal/graph"
	"remspan/internal/spanner"
	"remspan/internal/stats"
)

// Table1 reproduces the paper's Table 1 row by row with measured edge
// counts on concrete inputs (the paper's table lists asymptotic
// bounds; we report the measured sizes next to them and verify every
// stretch guarantee that is checkable on the instance). Rows follow the
// paper's order.
func Table1(cfg Config) (*stats.Table, error) {
	nAny, nUDG, nUBG, nPts := 1024, 1024, 700, 150
	if cfg.Quick {
		nAny, nUDG, nUBG, nPts = 256, 320, 220, 60
	}
	k := 3 // spanner parameter for the generic-graph rows

	t := stats.NewTable("Table 1 — remote-spanners versus regular spanners",
		"input", "structure", "paper size bound", "n", "m", "edges", "time", "verdict")

	// Row 1: any graph, (k, k−1)-spanner [2] — substituted by
	// Baswana–Sen (2k−1, 0) with the same O(k·n^{1+1/k}) size bound.
	rng := cfg.rng(2)
	er := gen.ErdosRenyi(nAny, 16/float64(nAny), rng)
	bs := baseline.BaswanaSen(er, k, rng)
	okBS := spannerEdgesOK(er, bs, 2*k-1)
	t.AddRow("any graph", fmt.Sprintf("(%d,%d)-span. [2]→BS(2k−1)", k, k-1),
		"O(k·n^{1+1/k})", er.N(), er.M(), bs.M(), "O(k)", verdict(okBS))

	// Row 2: any graph, (k, 0)-remote-spanner using [2] — the same edge
	// set read as a remote-spanner via §1.2 (α, β−α+1).
	alpha, beta := baseline.RemoteStretch(int64(2*k-1), 0)
	violR := spanner.Check(er, bs, spanner.NewStretch(alpha, beta))
	t.AddRow("any graph", fmt.Sprintf("(%d,0)-rem.-span. via §1.2", k),
		"O(k·n^{1+1/k})", er.N(), er.M(), bs.M(), "O(k)", verdict(violR == nil))

	// Row 3: any graph, (1, 0)-spanner — trivially all edges.
	t.AddRow("any graph", "(1,0)-span. (all edges)", "m", er.N(), er.M(), er.M(), "—", "PASS")

	// Row 4: any graph, k-connecting (1, 0)-remote-spanner (Th. 2).
	kc := spanner.KConnecting(er, 2)
	violK := spanner.Check(er, kc.Graph(), spanner.NewStretch(1, 0))
	t.AddRow("any graph", "2-conn. (1,0)-rem.-span. (Th. 2)",
		"O(log n)·opt", er.N(), er.M(), kc.Edges(), "O(1)", verdict(violK == nil))

	// Row 5: random UDG, (1, 0)-remote-spanner (Th. 2 + [14]).
	rngU := cfg.rng(5)
	udg := udgWithN(nUDG, 4, rngU)
	ex := spanner.Exact(udg)
	violU := spanner.Check(udg, ex.Graph(), spanner.NewStretch(1, 0))
	bound := math.Pow(float64(udg.N()), 4.0/3) * math.Log(float64(udg.N()))
	t.AddRow("rand. UDG", "(1,0)-rem.-span. (Th. 2)",
		"O(n^{4/3} log n)", udg.N(), udg.M(), ex.Edges(), "O(1)",
		verdict(violU == nil && float64(ex.Edges()) < bound))

	// Row 6: UBG with known distances, (1+ε, 0)-spanner [9] —
	// substituted by the greedy (1+ε)-spanner on the weighted UBG.
	rngB := cfg.rng(6)
	_, m6 := ubgPoints(nUBG, 2, math.Sqrt(float64(nUBG)/24), rngB)
	gt := baseline.GreedyTSpanner(m6, 1.0, 1.5)
	i6, j6 := baseline.VerifyStretch(gt, m6, 1.0, 1.5)
	t.AddRow("UBG known dist.", "(1+ε,0)-span. [9]→greedy, ε=1/2",
		"O(n)", m6.Len(), "—", gt.M(), "O(log* n)", verdict(i6 == -1 && j6 == -1))

	// Row 7: UBG with unknown distances, (1+ε, 1−2ε)-remote-spanner
	// (Th. 1) on the same point set.
	g7, _ := ubgPoints(nUBG, 2, math.Sqrt(float64(nUBG)/24), cfg.rng(6))
	low := spanner.LowStretch(g7, 0.5)
	viol7 := spanner.Check(g7, low.Graph(), spanner.LowStretchOf(low.R))
	t.AddRow("UBG unknown dist.", "(1+ε,1−2ε)-rem.-span. (Th. 1), ε=1/2",
		"O(n)", g7.N(), g7.M(), low.Edges(), "O(1)", verdict(viol7 == nil))

	// Row 8: points in R^d, k-fault-tolerant (1+ε, 0)-spanner [8] —
	// substituted by the certificate-greedy FT spanner.
	rng8 := cfg.rng(8)
	_, m8 := ubgPoints(nPts, 2, 2.0, rng8)
	ft := baseline.FaultTolerantGreedy(m8, 1.5, 2)
	i8, j8 := baseline.VerifyStretch(ft, m8, math.Inf(1), 1.5)
	t.AddRow("points in R^d", "2-fault-tol. (1+ε,0)-span. [8]→greedy",
		"O(k·n)", m8.Len(), "—", ft.M(), "seq.", verdict(i8 == -1 && j8 == -1))

	// Row 9: UBG unknown distances, 2-connecting (2,−1)-remote-spanner
	// (Th. 3).
	g9, _ := ubgPoints(nUBG, 2, math.Sqrt(float64(nUBG)/24), cfg.rng(6))
	two := spanner.TwoConnecting(g9)
	viol9 := spanner.Check(g9, two.Graph(), spanner.NewStretch(2, -1))
	t.AddRow("UBG unknown dist.", "2-conn. (2,−1)-rem.-span. (Th. 3)",
		"O(n)", g9.N(), g9.M(), two.Edges(), "O(1)", verdict(viol9 == nil))

	t.AddNote("size bounds quoted from the paper; edges measured on the instances above")
	t.AddNote("rows 1, 6, 8 use the substitutions documented in DESIGN.md §3")
	return t, nil
}

// spannerEdgesOK verifies the multiplicative spanner stretch on every
// graph edge (sufficient for all pairs).
func spannerEdgesOK(g, h *graph.Graph, stretch int) bool {
	scratch := graph.NewBFSScratch(g.N())
	ok := true
	g.EachEdge(func(u, v int) {
		if !ok {
			return
		}
		dist, _, _ := scratch.Bounded(h, u, stretch)
		if dist[v] == graph.Unreached || int(dist[v]) > stretch {
			ok = false
		}
	})
	return ok
}
