package expt

import (
	"remspan/internal/distsim"
	"remspan/internal/domtree"
	"remspan/internal/graph"
	"remspan/internal/stats"
)

// Asynchrony reproduces the paper's §1 claim that remote-spanner
// computation needs "no synchronisation between node decisions": the
// RemSpan protocol run with adversarially random message delays must
// produce exactly the spanner of the synchronous (and centralized)
// execution, because each node's decision depends only on the monotone
// knowledge it eventually collects.
func Asynchrony(cfg Config) (*stats.Table, error) {
	n := 300
	trials := 5
	if cfg.Quick {
		n = 120
		trials = 3
	}
	g := udgWithN(n, 4, cfg.rng(1700))

	t := stats.NewTable("Asynchronous RemSpan: timing invariance of the spanner",
		"algo", "delay seed", "messages", "deliveries", "edges", "identical to sync", "verdict")

	type variant struct {
		name   string
		radius int
		algo   distsim.TreeAlgo    // map-based, for the async executor
		build  distsim.TreeBuilder // production builder, for the sync engine
	}
	variants := []variant{
		{"Alg.4 k=1 (exact)", 1,
			func(local *graph.Graph, u int) *graph.Tree { return domtree.KGreedy(local, u, 1) },
			func(c graph.View, s *domtree.Scratch, u int) *graph.Tree { return domtree.KGreedyCSR(c, s, u, 1) }},
		{"Alg.5 k=2 (2-connecting)", 2,
			func(local *graph.Graph, u int) *graph.Tree { return domtree.KMIS(local, u, 2) },
			func(c graph.View, s *domtree.Scratch, u int) *graph.Tree { return domtree.KMISCSR(c, s, u, 2) }},
	}
	for _, v := range variants {
		sync := distsim.RunRemSpan(g, v.radius, v.build)
		for trial := 0; trial < trials; trial++ {
			rng := cfg.rng(int64(1710 + trial))
			async := distsim.RunRemSpanAsync(g, v.radius, v.algo, rng)
			same := async.H.Len() == sync.H.Len()
			if same {
				ae, se := async.H.Edges(), sync.H.Edges()
				for i := range ae {
					if ae[i] != se[i] {
						same = false
						break
					}
				}
			}
			t.AddRow(v.name, trial, async.Messages, async.Deliveries,
				async.H.Len(), same, verdict(same))
		}
	}
	t.AddNote("n=%d, m=%d; per-link delays i.i.d. uniform in [1,2) time units", g.N(), g.M())
	return t, nil
}
