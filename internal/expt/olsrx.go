package expt

import (
	"remspan/internal/graph"
	"remspan/internal/mobility"
	"remspan/internal/olsr"
	"remspan/internal/spanner"
	"remspan/internal/stats"
)

// LiveProtocol reproduces the paper's §2.3 remark quantitatively: run
// RemSpan inside a periodic OLSR-style protocol. After a topology
// change the advertised spanner re-stabilizes within roughly one
// period plus two floodings (T + 2F); in steady state the advertised
// links form a (1,0)-remote-spanner and routing is shortest-path.
func LiveProtocol(cfg Config) (*stats.Table, error) {
	n, mobSteps := 220, 40
	if cfg.Quick {
		n, mobSteps = 110, 20
	}
	g := udgWithN(n, 3, cfg.rng(1400))
	rng := cfg.rng(1401)
	pairs := make([][2]int, 60)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(g.N()), rng.Intn(g.N())}
	}

	t := stats.NewTable("Live OLSR-style protocol running RemSpan (§2.3)",
		"scenario", "metric", "value", "verdict")

	// Steady state: convergence, exact routing, valid spanner.
	s := olsr.New(g, olsr.DefaultParams())
	warmup := 0
	for ; warmup < 50; warmup++ {
		s.Tick()
		if s.Converged(pairs) {
			break
		}
	}
	t.AddRow("cold start", "ticks to convergence", warmup+1, verdict(warmup < 50))
	h := s.AdvertisedSpanner().Graph()
	viol := spanner.Check(g, h, spanner.NewStretch(1, 0))
	t.AddRow("steady state", "advertised links form (1,0)-remote-spanner",
		h.M(), verdict(viol == nil))
	rep := s.RouteCheck(pairs)
	t.AddRow("steady state", "routing stretch (max)", rep.MaxStretch,
		verdict(rep.Delivered == rep.Checked && rep.MaxStretch <= 1))

	// Failure: drop the busiest relay, measure re-stabilization.
	hub := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	g2 := g.RemoveVertex(hub)
	if keep, size := graph.LargestComponent(g2); size >= g.N()-1 {
		_ = keep
		s.SetGraph(g2)
		var pairs2 [][2]int
		for _, p := range pairs {
			if p[0] != hub && p[1] != hub {
				pairs2 = append(pairs2, p)
			}
		}
		ticks := 0
		limit := 6 * s.P.HoldTicks
		for ; ticks < limit; ticks++ {
			s.Tick()
			if s.Converged(pairs2) {
				break
			}
		}
		bound := s.P.HoldTicks + 2*16 // hold time + two floodings (diam bound)
		t.AddRow("hub failure", "ticks to re-convergence", ticks+1,
			verdict(ticks < limit && ticks <= bound))
	} else {
		t.AddRow("hub failure", "skipped (hub is a cut vertex)", "—", "PASS")
	}

	// Mobility: delivery ratio under slow motion.
	w := mobility.NewWaypoint(n, 3, 0.004, 0.015, cfg.rng(1402))
	sm := olsr.New(w.Graph(1.2), olsr.DefaultParams())
	sm.Run(20)
	mrng := cfg.rng(1403)
	mpairs := make([][2]int, 40)
	for i := range mpairs {
		mpairs[i] = [2]int{mrng.Intn(n), mrng.Intn(n)}
	}
	checked, delivered := 0, 0
	for step := 0; step < mobSteps; step++ {
		w.Step()
		sm.SetGraph(w.Graph(1.2))
		sm.Tick()
		r := sm.RouteCheck(mpairs)
		checked += r.Checked
		delivered += r.Delivered
	}
	ratio := 0.0
	if checked > 0 {
		ratio = float64(delivered) / float64(checked)
	}
	t.AddRow("mobility", "delivery ratio", ratio, verdict(ratio >= 0.85))

	st := sm.Stats()
	t.AddRow("mobility", "control traffic (hello tx, TC tx)",
		st.HelloTx+st.TCTx, "PASS")
	t.AddNote("n=%d; TC floods carry MPR-selector links — exactly the paper's remote-spanner", g.N())
	return t, nil
}
