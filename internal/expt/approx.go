package expt

import (
	"math"

	"remspan/internal/domtree"
	"remspan/internal/gen"
	"remspan/internal/graph"
	"remspan/internal/spanner"
	"remspan/internal/stats"
)

// ApproxRatio reproduces the approximation guarantees: Prop. 6 (greedy
// k-cover trees within 1+log Δ of the optimal tree), Th. 2 (the whole
// spanner within 2(1+log Δ) of the optimal k-connecting
// (1,0)-remote-spanner) and Prop. 2's lower-bound argument for
// (r, β)-dominating trees. Exact optima come from branch & bound.
func ApproxRatio(cfg Config) (*stats.Table, error) {
	n := 64
	trials := 6
	if cfg.Quick {
		n = 40
		trials = 4
	}
	t := stats.NewTable("Greedy vs optimal dominating trees / spanners",
		"graph", "k", "greedy Σ|T_u|", "opt Σ|T*_u|", "worst per-root ratio", "1+ln Δ", "spanner vs ½Σopt", "verdict")

	budget := 1 << 22
	for trial := 0; trial < trials; trial++ {
		rng := cfg.rng(int64(600 + trial))
		g := gen.ErdosRenyi(n, 2.5*math.Log(float64(n))/float64(n), rng)
		c := graph.NewCSR(g)
		scratch := domtree.NewScratch(g.N())
		for _, k := range []int{1, 2} {
			sumG, sumO := 0, 0
			worst := 1.0
			allExact := true
			for u := 0; u < g.N(); u++ {
				greedy := domtree.KGreedyCSR(c, scratch, u, k).EdgeCount()
				opt, ok := domtree.OptimalKCoverSize(g, u, k, budget)
				if !ok {
					allExact = false
					continue
				}
				sumG += greedy
				sumO += opt
				if opt > 0 {
					if r := float64(greedy) / float64(opt); r > worst {
						worst = r
					}
				}
			}
			bound := 1 + math.Log(float64(g.MaxDegree()))
			// Th. 2: |E(H)| ≤ 2(1+log Δ)·|E(H*)| and 2|E(H*)| ≥ Σ|T*_u|.
			res := spanner.KConnecting(g, k)
			lower := float64(sumO) / 2
			spannerRatio := 0.0
			if lower > 0 {
				spannerRatio = float64(res.Edges()) / lower
			}
			ok := worst <= bound+1e-9 && spannerRatio <= 2*bound+1e-9
			t.AddRow(trial, k, sumG, sumO, worst, bound, spannerRatio,
				verdict(ok && allExact))
		}
	}
	t.AddNote("per-root ratio bound: Prop. 6; spanner bound 2(1+ln Δ): Th. 2")

	// Prop. 2 spot check: greedy (r, β)-dominating trees against the
	// exact per-ring cover lower bound.
	rng := cfg.rng(699)
	g := gen.ErdosRenyi(n, 3*math.Log(float64(n))/float64(n), rng)
	c := graph.NewCSR(g)
	scratch := domtree.NewScratch(g.N())
	okP2 := true
	for u := 0; u < g.N(); u += 4 {
		for _, beta := range []int{0, 1} {
			tr := domtree.GreedyCSR(c, scratch, u, 3, beta)
			lb, exact := domtree.OptimalDomTreeLowerBound(g, u, 3, beta, budget)
			if !exact {
				continue
			}
			if tr.EdgeCount() < lb {
				okP2 = false
			}
		}
	}
	t.AddNote("Prop. 2 lower-bound consistency for (3, β)-dominating trees: %s", verdict(okP2))
	return t, nil
}
