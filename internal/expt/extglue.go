package expt

import (
	"remspan/internal/ext"
	"remspan/internal/graph"
)

// Thin glue so the experiment files read declaratively.

func extKEdge(g *graph.Graph, k int) *graph.Graph {
	return ext.KEdgeConnecting(g, k).Graph()
}

func extVerifyEdge(g, h *graph.Graph, k int) []ext.EdgeKDistanceStretch {
	return ext.VerifyEdgeConnecting(g, h, k)
}

func extLowStretchK(g *graph.Graph, eps float64, k int, cfg Config, salt int) (edges int, worst ext.KStretchSample) {
	res := ext.LowStretchKConnecting(g, eps, k)
	rng := cfg.rng(int64(1300 + salt))
	var pairs [][2]int
	for i := 0; i < 60; i++ {
		pairs = append(pairs, [2]int{rng.Intn(g.N()), rng.Intn(g.N())})
	}
	worstAll := ext.MeasureKStretch(g, res.Graph(), k, pairs)
	return res.Edges(), worstAll[k-1]
}
