package expt

import (
	"math"

	"remspan/internal/geom"
	"remspan/internal/spanner"
	"remspan/internal/stats"
)

// EpsilonSweep reproduces Th. 1's size bound: the (1+ε, 1−2ε)-remote-
// spanner of a unit-ball graph of a doubling metric with dimension p
// has O(ε^{−(p+1)} n) edges. Part A sweeps n at fixed ε (edges/n must
// flatten — linear size even as m grows quadratically); part B sweeps ε
// and the ambient dimension (edges/n tracks ε^{−(p+1)}).
func EpsilonSweep(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("Th. 1 — low-stretch remote-spanner size in doubling UBG",
		"part", "dim p", "eps", "n", "m", "edges", "edges/n")

	// Part A: linearity in n (fixed square, growing density).
	ns := []int{200, 400, 800, 1400}
	if cfg.Quick {
		ns = []int{120, 240, 420}
	}
	var epn []float64
	var mexp []float64
	var xs []float64
	for i, n := range ns {
		rng := cfg.rng(int64(500 + i))
		pts := geom.UniformBox(n, 2, 5, rng)
		g := geom.UnitBallGraph(geom.EuclideanMetric{Points: pts}, 1.0)
		res := spanner.LowStretch(g, 0.5)
		t.AddRow("A", 2, 0.5, g.N(), g.M(), res.Edges(), float64(res.Edges())/float64(g.N()))
		epn = append(epn, float64(res.Edges())/float64(g.N()))
		mexp = append(mexp, float64(g.M()))
		xs = append(xs, float64(g.N()))
	}
	mFit := stats.LogLogSlope(xs, mexp)
	first, last := epn[0], epn[len(epn)-1]
	linOK := last < 2.5*first // edges/n stays bounded while m explodes
	t.AddNote("part A: edges/n goes %.1f → %.1f while m ~ n^%.2f — %s",
		first, last, mFit.Slope, verdict(linOK && mFit.Slope > 1.5))

	// Part B: ε and dimension dependence at fixed n.
	n := 500
	epss := []float64{1.0, 0.5, 1.0 / 3, 0.25}
	dims := []int{1, 2, 3}
	if cfg.Quick {
		n = 250
		epss = []float64{1.0, 0.5, 1.0 / 3}
		dims = []int{1, 2}
	}
	monotone := true
	for _, dim := range dims {
		rng := cfg.rng(int64(550 + dim))
		side := math.Pow(float64(n)/20, 1.0/float64(dim)) // ~20 points per unit cube
		pts := geom.UniformBox(n, dim, side, rng)
		g := geom.UnitBallGraph(geom.EuclideanMetric{Points: pts}, 1.0)
		prev := -1.0
		for _, eps := range epss {
			res := spanner.LowStretch(g, eps)
			density := float64(res.Edges()) / float64(g.N())
			t.AddRow("B", dim, eps, g.N(), g.M(), res.Edges(), density)
			if prev >= 0 && density < prev-1e-9 {
				monotone = false // smaller ε must not shrink the spanner
			}
			prev = density
		}
	}
	t.AddNote("part B: edges/n grows as ε shrinks and with dimension — %s", verdict(monotone))
	t.AddNote("paper bound: O(ε^{−(p+1)}·n) edges, stretch (1+ε, 1−2ε)")
	return t, nil
}
