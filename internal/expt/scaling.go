package expt

import (
	"math"

	"remspan/internal/spanner"
	"remspan/internal/stats"
)

// ScalingUDG reproduces the paper's size claim for (1,0)-remote-
// spanners in the random unit-disk-graph model (Th. 2 / §3.2): expected
// O(n^{4/3} log n) edges while the full topology has Ω(n²). It sweeps
// the Poisson intensity on a fixed square, fits log–log slopes, and
// checks that the spanner exponent sits well below the graph's ≈2 and
// near 4/3.
func ScalingUDG(cfg Config) (*stats.Table, error) {
	ns := []int{256, 384, 576, 864, 1296, 1944}
	if cfg.Quick {
		ns = []int{128, 192, 288, 432}
	}
	const side = 4.0

	t := stats.NewTable("(1,0)-remote-spanner scaling in random UDG (fixed 4×4 square)",
		"n", "m", "H edges", "m/n²", "H/(n^{4/3}·ln n)")
	var xs, ms, hs []float64
	for i, n := range ns {
		rng := cfg.rng(int64(300 + i))
		g := udgWithN(n, side, rng)
		res := spanner.Exact(g)
		nn := float64(g.N())
		t.AddRow(g.N(), g.M(), res.Edges(),
			float64(g.M())/(nn*nn),
			float64(res.Edges())/(math.Pow(nn, 4.0/3)*math.Log(nn)))
		xs = append(xs, nn)
		ms = append(ms, float64(g.M()))
		hs = append(hs, float64(res.Edges()))
	}
	mFit := stats.LogLogSlope(xs, ms)
	hFit := stats.LogLogSlope(xs, hs)
	t.AddNote("graph exponent: m ~ n^%.2f (paper: 2)", mFit.Slope)
	t.AddNote("spanner exponent: |H| ~ n^%.2f (paper: 4/3 ≈ 1.33, ×log n)", hFit.Slope)
	gap := mFit.Slope - hFit.Slope
	t.AddNote("verdict: %s (spanner grows strictly slower, gap %.2f)",
		verdict(hFit.Slope < mFit.Slope-0.25 && hFit.Slope < 1.75), gap)
	t.Charts = append(t.Charts,
		stats.AsciiChart("graph edges m vs n", xs, ms, 48, 10),
		stats.AsciiChart("spanner edges |H| vs n", xs, hs, 48, 10))
	return t, nil
}

// KConnSweep reproduces the k-dependence of Th. 2: the k-connecting
// (1,0)-remote-spanner has O(k^{2/3} n^{4/3} log n) expected edges in
// the random UDG model — size should grow sublinearly in k, tracking
// k^{2/3}.
func KConnSweep(cfg Config) (*stats.Table, error) {
	n := 1024
	ks := []int{1, 2, 3, 4, 5}
	if cfg.Quick {
		n = 288
		ks = []int{1, 2, 3, 4}
	}
	g := udgWithN(n, 4, cfg.rng(400))

	t := stats.NewTable("k-connecting (1,0)-remote-spanner size vs k (random UDG)",
		"k", "edges", "edges/edges(1)", "k^{2/3}")
	var base float64
	var xs, ys []float64
	for _, k := range ks {
		res := spanner.KConnecting(g, k)
		e := float64(res.Edges())
		if k == 1 {
			base = e
		}
		t.AddRow(k, res.Edges(), e/base, math.Pow(float64(k), 2.0/3))
		xs = append(xs, float64(k))
		ys = append(ys, e)
	}
	fit := stats.LogLogSlope(xs, ys)
	t.AddNote("measured k-exponent: |H| ~ k^%.2f (paper: 2/3 ≈ 0.67)", fit.Slope)
	t.AddNote("verdict: %s (sublinear growth in k)", verdict(fit.Slope < 1.0 && fit.Slope > 0.2))
	t.AddNote("n=%d, m=%d", g.N(), g.M())
	return t, nil
}
