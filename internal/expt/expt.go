// Package expt contains one driver per reproduced table, figure and
// quantitative claim of the paper (see DESIGN.md §4 for the index).
// Every experiment returns a stats.Table whose rows mirror what the
// paper reports, plus PASS/FAIL verdicts for the properties it claims.
//
// The exhaustive stretch verdicts (spanner.Check) and observed-stretch
// profiles (spanner.MeasureProfile) the drivers report run on the
// word-parallel 64-source verification engine of DESIGN.md §3c; its
// results are bit-identical to the scalar reference, so the reproduced
// numbers are unchanged while the all-pairs passes scale to
// production-size inputs (BENCH_verify.json).
package expt

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"remspan/internal/geom"
	"remspan/internal/graph"
	"remspan/internal/stats"
)

// Config selects experiment scale and reproducibility seed.
type Config struct {
	Quick bool  // reduced sizes for CI; full sizes for paper-scale runs
	Seed  int64 // base RNG seed; every experiment derives from it
}

// rng returns a fresh deterministic generator for an experiment,
// decorrelated across experiment ids.
func (c Config) rng(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1000003 + salt))
}

// Experiment couples an id (E1..E16) with its driver.
type Experiment struct {
	ID    string
	Title string
	Ref   string // what it reproduces in the paper
	Run   func(cfg Config) (*stats.Table, error)
}

// All returns every experiment in id order.
func All() []Experiment {
	list := []Experiment{
		{"E1", "Figure 1 worked example", "Figure 1 (a)-(d)", Figure1},
		{"E2", "Table 1: spanner families compared", "Table 1", Table1},
		{"E3", "(1,0)-remote-spanner scaling in random UDG", "Th. 2, §3.2", ScalingUDG},
		{"E4", "Low-stretch size in doubling UBG", "Th. 1, Prop. 3", EpsilonSweep},
		{"E5", "k-connecting size vs k", "Th. 2", KConnSweep},
		{"E6", "Greedy vs optimal dominating trees", "Prop. 2, Prop. 6, Th. 2", ApproxRatio},
		{"E7", "Distributed rounds and traffic", "Alg. 3, Table 1 time column", Rounds},
		{"E8", "Greedy link-state routing stretch", "§1 motivation", RoutingStretch},
		{"E9", "Multipath fault tolerance", "§3 motivation, Th. 3", Multipath},
		{"E10", "MPR flooding economy", "§1.2 multipoint relays", Flooding},
		{"E11", "Remote-spanners vs classical spanners", "§1.2, Table 1", Frontier},
		{"E12", "Edge-connecting extension", "§4 concluding remarks", EdgeConnecting},
		{"E13", "Live protocol stabilization", "§2.3 asynchronous operation remark", LiveProtocol},
		{"E14", "Incremental maintenance under churn", "§2.3 (locality of node decisions)", Churn},
		{"E15", "Worst-case frontier on C4-free graphs", "§1.2 tightness conjecture", WorstCase},
		{"E16", "Asynchronous execution invariance", "§1 (no synchronization needed)", Asynchrony},
		{"E17", "Live-network incremental re-advertisement", "§2.3 live operation, Alg. 3 locality", LiveNetwork},
	}
	sort.Slice(list, func(i, j int) bool { return idOrder(list[i].ID) < idOrder(list[j].ID) })
	return list
}

func idOrder(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment, writing each table to w; it keeps
// going on individual failures and returns the first error.
func RunAll(cfg Config, w io.Writer) error {
	var firstErr error
	for _, e := range All() {
		fmt.Fprintf(w, "\n[%s] %s — reproduces %s\n", e.ID, e.Title, e.Ref)
		t, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", e.ID, err)
			}
			continue
		}
		t.Fprint(w)
	}
	return firstErr
}

// --- shared workload builders ---

// poissonUDG samples the paper's random-UDG model: a Poisson point
// process of the given intensity on a fixed side×side square with unit
// connection radius, restricted to the largest connected component.
func poissonUDG(lambda, side float64, rng *rand.Rand) *graph.Graph {
	pts := geom.PoissonSquare(lambda, side, rng)
	g := geom.UnitDiskGraph(pts, 1.0)
	keep, _ := graph.LargestComponent(g)
	return g.InducedSubgraph(keep)
}

// udgWithN returns a UDG with approximately n nodes in the fixed square.
func udgWithN(n int, side float64, rng *rand.Rand) *graph.Graph {
	return poissonUDG(float64(n)/(side*side), side, rng)
}

// ubgPoints returns the unit-ball graph of n uniform points in
// [0, side]^dim together with its metric (dim controls the doubling
// dimension of the underlying metric). The graph is kept aligned with
// the metric (no component filtering); verification skips unreachable
// pairs.
func ubgPoints(n, dim int, side float64, rng *rand.Rand) (*graph.Graph, geom.EuclideanMetric) {
	pts := geom.UniformBox(n, dim, side, rng)
	m := geom.EuclideanMetric{Points: pts}
	return geom.UnitBallGraph(m, 1.0), m
}

func verdict(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
