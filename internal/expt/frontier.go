package expt

import (
	"fmt"

	"remspan/internal/baseline"
	"remspan/internal/gen"
	"remspan/internal/spanner"
	"remspan/internal/stats"
)

// Frontier charts the stretch-vs-size tradeoff the paper's Table 1
// summarizes: classical spanners (read as remote-spanners via §1.2)
// against the paper's remote-spanner families on the same input, with
// observed worst-case stretch from exhaustive measurement. The point
// the paper makes: exact distance preservation ((1,0)) is impossible
// for spanners (all m edges) but cheap for remote-spanners.
func Frontier(cfg Config) (*stats.Table, error) {
	n := 512
	if cfg.Quick {
		n = 200
	}
	g := udgWithN(n, 4, cfg.rng(1100))

	t := stats.NewTable("Stretch vs size: spanners (as remote-spanners) vs native remote-spanners",
		"structure", "guarantee (α, β)", "edges", "% of m", "observed max stretch", "verdict")

	add := func(name, guarantee string, h *spanner.Result, check spanner.Stretch) {
		hg := h.Graph()
		prof := spanner.MeasureProfile(g, hg)
		ok := spanner.Check(g, hg, check) == nil
		t.AddRow(name, guarantee, h.Edges(),
			100*float64(h.Edges())/float64(g.M()), prof.MaxStretch, verdict(ok))
	}

	// Classical spanner baselines via the §1.2 adapter.
	rng := cfg.rng(1101)
	for _, k := range []int{2, 3} {
		bs := baseline.BaswanaSen(g, k, rng)
		alpha, beta := baseline.RemoteStretch(int64(2*k-1), 0)
		ok := spanner.Check(g, bs, spanner.NewStretch(alpha, beta)) == nil
		prof := spanner.MeasureProfile(g, bs)
		t.AddRow(fmt.Sprintf("Baswana–Sen k=%d", k),
			fmt.Sprintf("(%d, %d) via §1.2", alpha, beta), bs.M(),
			100*float64(bs.M())/float64(g.M()), prof.MaxStretch, verdict(ok))
	}
	gr := baseline.GreedySpanner(g, 3)
	aG, bG := baseline.RemoteStretch(3, 0)
	okG := spanner.Check(g, gr, spanner.NewStretch(aG, bG)) == nil
	profG := spanner.MeasureProfile(g, gr)
	t.AddRow("greedy 3-spanner", "(3, -2) via §1.2", gr.M(),
		100*float64(gr.M())/float64(g.M()), profG.MaxStretch, verdict(okG))
	ad := baseline.Additive2(g)
	okA := spanner.Check(g, ad, spanner.NewStretch(1, 2)) == nil
	profA := spanner.MeasureProfile(g, ad)
	t.AddRow("additive (1,2)-spanner", "(1, 2) via §1.2", ad.M(),
		100*float64(ad.M())/float64(g.M()), profA.MaxStretch, verdict(okA))

	// Native remote-spanners.
	add("(1,0)-remote-spanner", "(1, 0) exact", spanner.Exact(g), spanner.NewStretch(1, 0))
	low := spanner.LowStretch(g, 0.5)
	add("low-stretch ε=1/2", "(3/2, 0)", low, spanner.LowStretchOf(low.R))
	low3 := spanner.LowStretch(g, 1.0/3)
	add("low-stretch ε=1/3", "(4/3, 1/3)", low3, spanner.LowStretchOf(low3.R))
	add("2-conn. (2,−1)-r.s.", "(2, −1), 2-connecting", spanner.TwoConnecting(g), spanner.NewStretch(2, -1))

	t.AddRow("full topology", "(1, 0) trivially", g.M(), 100.0, 1.0, "PASS")
	t.AddNote("n=%d, m=%d; observed stretch maximized over all connected non-adjacent pairs", g.N(), g.M())
	t.AddNote("a (1,0)-SPANNER must keep all %d edges; the (1,0)-REMOTE-spanner needs far fewer", g.M())
	return t, nil
}

// EdgeConnecting exercises the paper's concluding extension (E12):
// k-edge-connecting remote-spanners built with widened 2k−1 coverage,
// verified exhaustively on small graphs, plus the low-stretch
// k-connecting heuristic the paper poses as an open problem.
func EdgeConnecting(cfg Config) (*stats.Table, error) {
	n := 24
	trials := 6
	if cfg.Quick {
		n = 16
		trials = 4
	}
	t := stats.NewTable("Extensions: edge-connectivity and low-stretch k-connecting (conjecture-grade)",
		"construction", "k", "trial", "edges", "violations / worst stretch", "verdict")

	for trial := 0; trial < trials; trial++ {
		rng := cfg.rng(int64(1200 + trial))
		g := gen.RandomTree(n, rng)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		for _, k := range []int{2} {
			res := extKEdge(g, k)
			bad := extVerifyEdge(g, res, k)
			t.AddRow("2k−1-coverage edge-connecting", k, trial, res.M(),
				fmt.Sprintf("%d violations", len(bad)), verdict(len(bad) == 0))

			combo, worst := extLowStretchK(g, 0.5, k, cfg, trial)
			desc := "n/a"
			okC := true
			if worst.DG > 0 {
				if worst.Stretch < 0 {
					desc = "paths lost"
					okC = false
				} else {
					desc = fmt.Sprintf("d²: %d vs %d (×%.2f)", worst.DH, worst.DG, worst.Stretch)
					okC = worst.Stretch <= 2
				}
			}
			t.AddRow("low-stretch k-conn. heuristic", k, trial, combo, desc, verdict(okC))
		}
	}
	t.AddNote("edge-connecting: d^k over edge-disjoint paths preserved exactly in H_s (verified exhaustively)")
	t.AddNote("heuristic: union of Th. 1 and Alg. 5 spanners; k-stretch measured, no proof claimed")
	return t, nil
}
