package expt

import (
	"fmt"

	"remspan/internal/distsim"
	"remspan/internal/domtree"
	"remspan/internal/graph"
	"remspan/internal/stats"
)

// Rounds reproduces the "constant time for any input graph" claim of
// Algorithm 3 / Table 1's time column: the distributed RemSpan protocol
// finishes in 2(r−1+β)+1 synchronous rounds regardless of n, and its
// advertisement traffic stays far below full link-state flooding.
func Rounds(cfg Config) (*stats.Table, error) {
	ns := []int{128, 256, 512, 1024}
	if cfg.Quick {
		ns = []int{64, 128, 256}
	}
	t := stats.NewTable("Distributed RemSpan — rounds and traffic vs network size",
		"n", "m", "algo", "radius", "rounds", "messages", "words", "full-LS words", "saving")

	constOK := true
	roundsSeen := map[string]int{}
	for i, n := range ns {
		g := udgWithN(n, 4, cfg.rng(int64(700+i)))
		_, fullWords := distsim.FullLinkState(g)

		mpr := distsim.RunRemSpan(g, 1, func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
			return domtree.KGreedyCSR(c, s, u, 1)
		})
		if prev, ok := roundsSeen["mpr"]; ok && prev != mpr.Rounds {
			constOK = false
		}
		roundsSeen["mpr"] = mpr.Rounds
		t.AddRow(g.N(), g.M(), "RemSpan(2,0) k=1", 1, mpr.Rounds, mpr.Messages, mpr.Words,
			fullWords, ratioStr(mpr.Words, fullWords))

		two := distsim.RunRemSpan(g, 2, func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
			return domtree.KMISCSR(c, s, u, 2)
		})
		if prev, ok := roundsSeen["two"]; ok && prev != two.Rounds {
			constOK = false
		}
		roundsSeen["two"] = two.Rounds
		t.AddRow(g.N(), g.M(), "RemSpan(2,1) k=2", 2, two.Rounds, two.Messages, two.Words,
			fullWords, ratioStr(two.Words, fullWords))
	}
	t.AddNote("rounds independent of n: %s (2(r−1+β)+1: 3 and 5)", verdict(constOK))
	return t, nil
}

func ratioStr(a, b int64) string {
	if b == 0 {
		return "—"
	}
	return fmt.Sprintf("%.1f×", float64(b)/float64(a))
}
