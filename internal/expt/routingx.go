package expt

import (
	"remspan/internal/routing"
	"remspan/internal/spanner"
	"remspan/internal/stats"
)

// RoutingStretch reproduces the routing motivation of §1: greedy
// link-state forwarding over an advertised remote-spanner delivers
// every packet with route stretch bounded by (α, β), while advertising
// far fewer links than full link-state routing.
func RoutingStretch(cfg Config) (*stats.Table, error) {
	n, pairs := 700, 300
	if cfg.Quick {
		n, pairs = 250, 120
	}
	g := udgWithN(n, 4, cfg.rng(800))
	rng := cfg.rng(801)
	var sample [][2]int
	for i := 0; i < pairs; i++ {
		sample = append(sample, [2]int{rng.Intn(g.N()), rng.Intn(g.N())})
	}

	t := stats.NewTable("Greedy link-state routing over remote-spanners (random UDG)",
		"advertised structure", "links", "% of m", "delivered", "max stretch", "avg stretch", "verdict")

	full := g.Clone()
	st := routing.MeasureRouting(g, full, sample)
	t.AddRow("full topology", g.M(), 100.0,
		st.Delivered, st.MaxStretch, st.AvgStretch, verdict(st.MaxStretch <= 1))

	ex := spanner.Exact(g)
	st = routing.MeasureRouting(g, ex.Graph(), sample)
	t.AddRow("(1,0)-remote-spanner", ex.Edges(), 100*float64(ex.Edges())/float64(g.M()),
		st.Delivered, st.MaxStretch, st.AvgStretch,
		verdict(st.Delivered == st.Pairs && st.MaxStretch <= 1))

	low := spanner.LowStretch(g, 0.5)
	st = routing.MeasureRouting(g, low.Graph(), sample)
	t.AddRow("(3/2, 0)-remote-spanner", low.Edges(), 100*float64(low.Edges())/float64(g.M()),
		st.Delivered, st.MaxStretch, st.AvgStretch,
		verdict(st.Delivered == st.Pairs && st.MaxStretch <= 1.5))

	two := spanner.TwoConnecting(g)
	st = routing.MeasureRouting(g, two.Graph(), sample)
	t.AddRow("2-conn. (2,−1)-remote-spanner", two.Edges(), 100*float64(two.Edges())/float64(g.M()),
		st.Delivered, st.MaxStretch, st.AvgStretch,
		verdict(st.Delivered == st.Pairs && st.MaxStretch <= 2))

	t.AddNote("n=%d, m=%d; route stretch = hops/d_G over %d sampled pairs", g.N(), g.M(), pairs)
	return t, nil
}

// Multipath reproduces the §3 motivation for k-connecting
// remote-spanners: 2-connected pairs keep two internally disjoint
// routes inside H_s (with the (2,−1) length-sum bound of Th. 3), and
// routing survives the failure of a primary-route relay.
func Multipath(cfg Config) (*stats.Table, error) {
	n, pairCount := 220, 120
	if cfg.Quick {
		n, pairCount = 110, 50
	}
	g := udgWithN(n, 3, cfg.rng(900))
	rng := cfg.rng(901)
	var pairs [][2]int
	for i := 0; i < pairCount; i++ {
		pairs = append(pairs, [2]int{rng.Intn(g.N()), rng.Intn(g.N())})
	}

	t := stats.NewTable("Multipath routing over remote-spanners (random UDG)",
		"structure", "edges", "pairs", "2 routes", "fault trials", "survived", "Σd²_H / Σd²_G", "verdict")

	two := spanner.TwoConnecting(g)
	rep := routing.MeasureMultipath(g, two.Graph(), pairs)
	ratio := 0.0
	if rep.SumLenG > 0 {
		ratio = float64(rep.SumLenH) / float64(rep.SumLenG)
	}
	okTwo := rep.WithTwoRoutes == rep.Pairs && rep.SurvivedFaults == rep.FaultTrials &&
		rep.SumLenH <= 2*rep.SumLenG-2*rep.WithTwoRoutes
	t.AddRow("2-conn. (2,−1)-r.s. (Th. 3)", two.Edges(), rep.Pairs, rep.WithTwoRoutes,
		rep.FaultTrials, rep.SurvivedFaults, ratio, verdict(okTwo))

	// Contrast: the 1-connecting exact spanner makes no 2-route promise.
	ex := spanner.Exact(g)
	rep1 := routing.MeasureMultipath(g, ex.Graph(), pairs)
	ratio1 := 0.0
	if rep1.SumLenG > 0 {
		ratio1 = float64(rep1.SumLenH) / float64(rep1.SumLenG)
	}
	t.AddRow("(1,0)-r.s. (1-connecting)", ex.Edges(), rep1.Pairs, rep1.WithTwoRoutes,
		rep1.FaultTrials, rep1.SurvivedFaults, ratio1, "(no guarantee)")

	t.AddNote("n=%d, m=%d; Th. 3 bound: Σd²_{H_s} ≤ 2Σd²_G − 2·pairs", g.N(), g.M())
	return t, nil
}

// Flooding reproduces the multipoint-relay lineage of §1.2: flooding
// over the k-cover relay sets (k-connecting (2,0)-dominating trees)
// reaches the whole network with far fewer retransmissions than blind
// flooding, and k-coverage buys redundancy under node failures.
func Flooding(cfg Config) (*stats.Table, error) {
	n, sources := 700, 20
	if cfg.Quick {
		n, sources = 250, 8
	}
	g := udgWithN(n, 4, cfg.rng(1000))
	rng := cfg.rng(1001)

	t := stats.NewTable("Broadcast flooding economy (random UDG)",
		"protocol", "k", "avg transmissions", "coverage", "verdict")

	blindTx, blindCov := 0, 0
	for i := 0; i < sources; i++ {
		res := routing.BlindFlood(g, rng.Intn(g.N()), nil)
		blindTx += res.Transmissions
		blindCov += res.Covered
	}
	t.AddRow("blind flooding", "—", float64(blindTx)/float64(sources),
		float64(blindCov)/float64(sources*g.N()), "PASS")

	for _, k := range []int{1, 2, 3} {
		sel := routing.SelectMPRs(g, k)
		tx, cov := 0, 0
		rng2 := cfg.rng(int64(1002 + k))
		for i := 0; i < sources; i++ {
			res := routing.MPRFlood(g, sel, rng2.Intn(g.N()), nil)
			tx += res.Transmissions
			cov += res.Covered
		}
		fullCover := cov == sources*g.N()
		cheaper := tx <= blindTx
		t.AddRow("MPR flooding", k, float64(tx)/float64(sources),
			float64(cov)/float64(sources*g.N()), verdict(fullCover && cheaper))
	}
	t.AddNote("n=%d, m=%d, avg degree %.1f; %d random sources", g.N(), g.M(), g.AvgDegree(), sources)
	return t, nil
}
