package expt

import (
	"fmt"

	"remspan/internal/distsim"
	"remspan/internal/domtree"
	"remspan/internal/dynamic"
	"remspan/internal/graph"
	"remspan/internal/spanner"
	"remspan/internal/stats"
)

// LiveNetwork reproduces the paper's §2.3 live-operation remark at the
// protocol-simulation level (DESIGN.md §3d): a random-waypoint fleet
// moves every tick, the unit-disk topology diff feeds the distributed
// engine, and only the dirty roots — the radius-(R+1) balls around the
// changed endpoints — recompute and re-flood their trees. The
// experiment reports the incremental re-advertisement cost against the
// OSPF-style full link-state re-flood of the same change stream, and
// verdicts that every sampled tick's spanner is bit-identical to
// dynamic.Maintainer ground truth and satisfies (1,0).
func LiveNetwork(cfg Config) (*stats.Table, error) {
	n, ticks := 500, 60
	if cfg.Quick {
		n, ticks = 200, 25
	}
	build := func(c graph.View, s *domtree.Scratch, u int) *graph.Tree {
		return domtree.KGreedyCSR(c, s, u, 1)
	}
	live := distsim.LiveConfig{
		N: n, Degree: 8,
		MinSpeed: 0.01, MaxSpeed: 0.08,
		Ticks: ticks, Seed: cfg.Seed + 1800,
		Radius: 1, Build: build,
	}

	var m *dynamic.Maintainer
	pinned, valid := true, true
	rep, err := distsim.LiveRun(live, func(tick int, changes []dynamic.Change, e *distsim.Engine) {
		if m == nil {
			m = dynamic.New(e.Graph(), live.Radius, dynamic.TreeBuilder(build))
			// The maintainer starts from the post-first-tick topology;
			// from here on both see the identical change stream.
			return
		}
		m.ApplyBatch(changes)
		es := e.Spanner()
		if !es.Equal(m.Spanner()) {
			pinned = false
		}
		if tick%10 == 0 {
			if v := spanner.Check(e.Graph(), es.Graph(), spanner.NewStretch(1, 0)); v != nil {
				valid = false
			}
		}
	})
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("Live-network distributed RemSpan: mobility-driven incremental re-advertisement",
		"metric", "value", "verdict")
	t.AddRow("nodes / ticks", fmt.Sprintf("%d / %d", n, ticks), "PASS")
	t.AddRow("cold-start advertisement words", rep.Initial.Words, "PASS")
	t.AddRow("topology changes applied", rep.Changes, verdict(rep.Changes > 0))
	perTick := float64(rep.Changes) / float64(ticks)
	t.AddRow("changes per tick (avg)", perTick, "PASS")
	t.AddRow("dirty roots per tick (avg)", float64(rep.DirtyRoots)/float64(ticks),
		verdict(rep.DirtyRoots < int64(n*ticks)))
	t.AddRow("tree refloods per tick (avg)", float64(rep.Refloods)/float64(ticks),
		verdict(rep.Refloods <= rep.DirtyRoots))
	t.AddRow("incremental words per tick (avg)", float64(rep.Words)/float64(ticks), "PASS")
	t.AddRow("full link-state words per tick (avg)", float64(rep.FullWords)/float64(ticks), "PASS")
	saving := "—"
	if rep.Words > 0 {
		saving = ratioStr(rep.Words, rep.FullWords)
	}
	t.AddRow("re-advertisement saving vs full LS", saving, verdict(rep.Words < rep.FullWords))
	t.AddRow("every tick pinned to dynamic.Maintainer", pinned, verdict(pinned))
	t.AddRow("sampled spanners satisfy (1,0)", valid, verdict(valid))
	t.AddNote("random waypoint on √(πn/8)-side square, unit disk radius 1, speeds [%.2f, %.2f]/tick",
		live.MinSpeed, live.MaxSpeed)
	t.AddNote("dirty-root rule: radius-(R+1) dirty balls of dynamic.ApplyChange; only changed trees re-flood")
	return t, nil
}
