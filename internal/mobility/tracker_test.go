package mobility

import (
	"math/rand"
	"testing"

	"remspan/internal/geom"
	"remspan/internal/graph"
	"remspan/internal/testutil"
)

// TestTrackerMatchesUnitDiskGraph: after every tick the tracker's
// adjacency must equal the from-scratch unit-disk graph of the current
// positions.
func TestTrackerMatchesUnitDiskGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := NewWaypoint(200, 8, 0.05, 0.3, rng)
	tr := NewTracker(w, 1.0)
	for tick := 0; tick < 15; tick++ {
		tr.Tick()
		want := geom.UnitDiskGraph(w.Positions(), 1.0)
		if got := tr.Graph(); !got.Equal(want) {
			t.Fatalf("tick %d: tracker adjacency diverged (m=%d want %d)",
				tick, got.M(), want.M())
		}
	}
}

// TestTrackerDiffsReplay: applying the emitted diffs to the initial
// graph must reproduce the current graph exactly.
func TestTrackerDiffsReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := NewWaypoint(150, 7, 0.05, 0.25, rng)
	tr := NewTracker(w, 1.0)
	g := tr.Graph()
	for tick := 0; tick < 20; tick++ {
		added, removed := tr.Tick()
		for _, p := range removed {
			if !g.RemoveEdge(int(p[0]), int(p[1])) {
				t.Fatalf("tick %d: removed edge {%d,%d} was absent", tick, p[0], p[1])
			}
		}
		for _, p := range added {
			if !g.AddEdge(int(p[0]), int(p[1])) {
				t.Fatalf("tick %d: added edge {%d,%d} already present", tick, p[0], p[1])
			}
		}
	}
	if !g.Equal(tr.Graph()) {
		t.Fatal("replayed diffs diverged from tracker graph")
	}
}

// TestTrackerSteadyStateAllocs: warm ticks must not allocate — the
// tracker is on the live simulation's per-tick hot path.
func TestTrackerSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := NewWaypoint(300, 10, 0.02, 0.1, rng)
	tr := NewTracker(w, 1.0)
	for i := 0; i < 50; i++ { // reach the buffer high-water mark
		tr.Tick()
	}
	testutil.PinAllocs(t, "steady-state tick", 30, func() { tr.Tick() })
}

// TestTrackerDegreeAccessor keeps Degree in sync with the materialized
// graph.
func TestTrackerDegreeAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := NewWaypoint(80, 5, 0.05, 0.2, rng)
	tr := NewTracker(w, 1.0)
	tr.Tick()
	g := tr.Graph()
	for u := 0; u < tr.N(); u++ {
		if tr.Degree(u) != g.Degree(u) {
			t.Fatalf("degree of %d: tracker %d, graph %d", u, tr.Degree(u), g.Degree(u))
		}
	}
	var _ *graph.Graph = g
}

// TestTrackerZeroNodes: an empty fleet must be a valid degenerate
// input — no panic, an empty graph, empty diffs, and still 0
// allocs/tick.
func TestTrackerZeroNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := NewWaypoint(0, 4, 0.05, 0.2, rng)
	tr := NewTracker(w, 1.0)
	if tr.N() != 0 || tr.Graph().N() != 0 || tr.Graph().M() != 0 {
		t.Fatalf("zero-node tracker not empty: n=%d", tr.N())
	}
	for i := 0; i < 3; i++ {
		added, removed := tr.Tick()
		if len(added) != 0 || len(removed) != 0 {
			t.Fatalf("tick %d: diff on an empty fleet (+%d −%d)", i, len(added), len(removed))
		}
	}
	testutil.PinAllocs(t, "zero-node tick", 10, func() { tr.Tick() })
}

// TestTrackerSingleCell: a square smaller than the connection radius
// collapses the grid to one cell — every pair is in the same 3×3
// neighborhood and the clique adjacency must still be exact, with
// intact diffs and 0 allocs/tick.
func TestTrackerSingleCell(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 40
	w := NewWaypoint(n, 0.5, 0.01, 0.05, rng) // side 0.5 < radius 1 → 1×1 grid
	tr := NewTracker(w, 1.0)
	g0 := tr.Graph()
	// Everything within a 0.5-side square is within distance √2·0.5 < 1.
	if g0.M() != n*(n-1)/2 {
		t.Fatalf("one-cell square should be a clique: m=%d want %d", g0.M(), n*(n-1)/2)
	}
	g := g0
	for tick := 0; tick < 10; tick++ {
		added, removed := tr.Tick()
		for _, p := range removed {
			if !g.RemoveEdge(int(p[0]), int(p[1])) {
				t.Fatalf("tick %d: corrupt diff — removed absent edge {%d,%d}", tick, p[0], p[1])
			}
		}
		for _, p := range added {
			if !g.AddEdge(int(p[0]), int(p[1])) {
				t.Fatalf("tick %d: corrupt diff — added present edge {%d,%d}", tick, p[0], p[1])
			}
		}
		want := geom.UnitDiskGraph(w.Positions(), 1.0)
		if !tr.Graph().Equal(want) {
			t.Fatalf("tick %d: one-cell adjacency diverged", tick)
		}
	}
	if !g.Equal(tr.Graph()) {
		t.Fatal("one-cell replayed diffs diverged")
	}
	if allocs := testing.AllocsPerRun(10, func() { tr.Tick() }); allocs > 0 {
		t.Fatalf("one-cell tick allocates %.1f times", allocs)
	}
}

// TestTrackerCellBoundaryPositions: nodes placed exactly on cell
// boundaries (coordinates that are exact multiples of the radius,
// including the square's far edge) must bucket consistently and
// produce the exact unit-disk adjacency — the grid walk must not drop
// pairs that straddle a boundary, and diffs must stay coherent when
// nodes sit still.
func TestTrackerCellBoundaryPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const side = 4.0
	// 5×5 lattice at integer coordinates: every point is on a cell
	// corner; (4,4) sits on the square's far corner (clamped bucket).
	w := NewWaypoint(25, side, 0, 0, rng) // zero speed: positions frozen
	pts := w.Positions()
	for i := 0; i < 25; i++ {
		pts[i][0] = float64(i % 5)
		pts[i][1] = float64(i / 5)
	}
	tr := NewTracker(w, 1.0)
	want := geom.UnitDiskGraph(pts, 1.0)
	if got := tr.Graph(); !got.Equal(want) {
		t.Fatalf("boundary lattice adjacency wrong: m=%d want %d (axis neighbors at distance exactly 1)",
			got.M(), want.M())
	}
	// Lattice neighbors at distance exactly 1 must be present: 2·5·4 = 40.
	if got := tr.Graph(); got.M() != 40 {
		t.Fatalf("lattice edge count %d, want 40", got.M())
	}
	for tick := 0; tick < 3; tick++ {
		added, removed := tr.Tick()
		if len(added) != 0 || len(removed) != 0 {
			t.Fatalf("tick %d: static boundary nodes produced a diff (+%d −%d)",
				tick, len(added), len(removed))
		}
		if !tr.Graph().Equal(want) {
			t.Fatalf("tick %d: static boundary adjacency corrupted", tick)
		}
	}
	if allocs := testing.AllocsPerRun(10, func() { tr.Tick() }); allocs > 0 {
		t.Fatalf("boundary tick allocates %.1f times", allocs)
	}
}
