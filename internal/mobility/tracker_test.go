package mobility

import (
	"math/rand"
	"testing"

	"remspan/internal/geom"
	"remspan/internal/graph"
)

// TestTrackerMatchesUnitDiskGraph: after every tick the tracker's
// adjacency must equal the from-scratch unit-disk graph of the current
// positions.
func TestTrackerMatchesUnitDiskGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := NewWaypoint(200, 8, 0.05, 0.3, rng)
	tr := NewTracker(w, 1.0)
	for tick := 0; tick < 15; tick++ {
		tr.Tick()
		want := geom.UnitDiskGraph(w.Positions(), 1.0)
		if got := tr.Graph(); !got.Equal(want) {
			t.Fatalf("tick %d: tracker adjacency diverged (m=%d want %d)",
				tick, got.M(), want.M())
		}
	}
}

// TestTrackerDiffsReplay: applying the emitted diffs to the initial
// graph must reproduce the current graph exactly.
func TestTrackerDiffsReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := NewWaypoint(150, 7, 0.05, 0.25, rng)
	tr := NewTracker(w, 1.0)
	g := tr.Graph()
	for tick := 0; tick < 20; tick++ {
		added, removed := tr.Tick()
		for _, p := range removed {
			if !g.RemoveEdge(int(p[0]), int(p[1])) {
				t.Fatalf("tick %d: removed edge {%d,%d} was absent", tick, p[0], p[1])
			}
		}
		for _, p := range added {
			if !g.AddEdge(int(p[0]), int(p[1])) {
				t.Fatalf("tick %d: added edge {%d,%d} already present", tick, p[0], p[1])
			}
		}
	}
	if !g.Equal(tr.Graph()) {
		t.Fatal("replayed diffs diverged from tracker graph")
	}
}

// TestTrackerSteadyStateAllocs: warm ticks must not allocate — the
// tracker is on the live simulation's per-tick hot path.
func TestTrackerSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := NewWaypoint(300, 10, 0.02, 0.1, rng)
	tr := NewTracker(w, 1.0)
	for i := 0; i < 50; i++ { // reach the buffer high-water mark
		tr.Tick()
	}
	allocs := testing.AllocsPerRun(30, func() { tr.Tick() })
	if allocs > 0 {
		t.Fatalf("steady-state tick allocates %.1f times", allocs)
	}
}

// TestTrackerDegreeAccessor keeps Degree in sync with the materialized
// graph.
func TestTrackerDegreeAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := NewWaypoint(80, 5, 0.05, 0.2, rng)
	tr := NewTracker(w, 1.0)
	tr.Tick()
	g := tr.Graph()
	for u := 0; u < tr.N(); u++ {
		if tr.Degree(u) != g.Degree(u) {
			t.Fatalf("degree of %d: tracker %d, graph %d", u, tr.Degree(u), g.Degree(u))
		}
	}
	var _ *graph.Graph = g
}
