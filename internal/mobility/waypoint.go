// Package mobility generates time-evolving ad-hoc network topologies:
// a random-waypoint point process whose unit-disk graph changes as
// nodes move. It feeds the time-domain protocol simulations (package
// olsr) that exercise the paper's remark on running RemSpan
// periodically in a live link-state protocol (§2.3).
package mobility

import (
	"math"
	"math/rand"

	"remspan/internal/geom"
	"remspan/internal/graph"
)

// Waypoint is the classic random-waypoint mobility model on a square:
// every node picks a uniform destination and speed, walks there in
// straight ticks, then picks a new one.
type Waypoint struct {
	side     float64
	minSpeed float64 // distance per tick
	maxSpeed float64
	rng      *rand.Rand
	pos      []geom.Point
	dst      []geom.Point
	speed    []float64
}

// NewWaypoint places n nodes uniformly on a side×side square with
// speeds drawn uniformly from [minSpeed, maxSpeed] per tick.
func NewWaypoint(n int, side, minSpeed, maxSpeed float64, rng *rand.Rand) *Waypoint {
	if minSpeed < 0 || maxSpeed < minSpeed {
		panic("mobility: bad speed range")
	}
	w := &Waypoint{
		side:     side,
		minSpeed: minSpeed,
		maxSpeed: maxSpeed,
		rng:      rng,
		pos:      geom.UniformBox(n, 2, side, rng),
		dst:      make([]geom.Point, n),
		speed:    make([]float64, n),
	}
	for i := range w.dst {
		w.retarget(i)
	}
	return w
}

func (w *Waypoint) retarget(i int) {
	// Write destinations in place: Step runs every tick on the live
	// simulation hot path and must not allocate a Point per node.
	if w.dst[i] == nil {
		w.dst[i] = make(geom.Point, 2)
	}
	w.dst[i][0] = w.rng.Float64() * w.side
	w.dst[i][1] = w.rng.Float64() * w.side
	w.speed[i] = w.minSpeed + w.rng.Float64()*(w.maxSpeed-w.minSpeed)
}

// N returns the node count.
func (w *Waypoint) N() int { return len(w.pos) }

// Positions returns the current node positions (shared slice — do not
// modify).
func (w *Waypoint) Positions() []geom.Point { return w.pos }

// Step advances every node one tick toward its waypoint, retargeting
// on arrival. Positions are updated in place — zero allocations per
// tick (pinned by TestTrackerSteadyStateAllocs).
func (w *Waypoint) Step() {
	for i, p := range w.pos {
		d := w.dst[i]
		dx, dy := d[0]-p[0], d[1]-p[1]
		dist := math.Hypot(dx, dy)
		if dist <= w.speed[i] {
			p[0], p[1] = d[0], d[1]
			w.retarget(i)
			continue
		}
		scale := w.speed[i] / dist
		p[0] += dx * scale
		p[1] += dy * scale
	}
}

// Graph returns the unit-disk graph of the current positions with the
// given connection radius.
func (w *Waypoint) Graph(radius float64) *graph.Graph {
	return geom.UnitDiskGraph(w.pos, radius)
}
