package mobility

import (
	"math"
	"math/rand"
	"testing"
)

func TestWaypointStaysInBox(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := NewWaypoint(50, 3, 0.05, 0.2, rng)
	for step := 0; step < 200; step++ {
		w.Step()
		for _, p := range w.Positions() {
			if p[0] < 0 || p[0] > 3 || p[1] < 0 || p[1] > 3 {
				t.Fatalf("step %d: point %v left the box", step, p)
			}
		}
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := NewWaypoint(30, 4, 0.01, 0.1, rng)
	prev := clonePoints(w)
	for step := 0; step < 50; step++ {
		w.Step()
		for i, p := range w.Positions() {
			d := math.Hypot(p[0]-prev[i][0], p[1]-prev[i][1])
			if d > 0.1+1e-9 {
				t.Fatalf("node %d moved %v > max speed", i, d)
			}
		}
		prev = clonePoints(w)
	}
}

func TestWaypointActuallyMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := NewWaypoint(20, 4, 0.05, 0.05, rng)
	start := clonePoints(w)
	for i := 0; i < 30; i++ {
		w.Step()
	}
	moved := 0
	for i, p := range w.Positions() {
		if math.Hypot(p[0]-start[i][0], p[1]-start[i][1]) > 0.01 {
			moved++
		}
	}
	if moved < 15 {
		t.Fatalf("only %d/20 nodes moved", moved)
	}
}

func TestWaypointGraphEvolves(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := NewWaypoint(80, 3, 0.1, 0.3, rng)
	g1 := w.Graph(1.0)
	for i := 0; i < 20; i++ {
		w.Step()
	}
	g2 := w.Graph(1.0)
	if g1.Equal(g2) {
		t.Fatal("topology did not change under fast mobility")
	}
	if g1.N() != g2.N() {
		t.Fatal("node count changed")
	}
}

func TestWaypointZeroSpeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := NewWaypoint(10, 2, 0, 0, rng)
	start := clonePoints(w)
	w.Step()
	for i, p := range w.Positions() {
		if p[0] != start[i][0] || p[1] != start[i][1] {
			t.Fatal("zero-speed node moved")
		}
	}
}

func TestWaypointBadSpeedsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWaypoint(5, 1, 0.5, 0.1, rand.New(rand.NewSource(6)))
}

func clonePoints(w *Waypoint) [][2]float64 {
	out := make([][2]float64, w.N())
	for i, p := range w.Positions() {
		out[i] = [2]float64{p[0], p[1]}
	}
	return out
}
