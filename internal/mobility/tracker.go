package mobility

import (
	"slices"

	"remspan/internal/graph"
)

// Tracker maintains the unit-disk graph of a Waypoint process and emits
// per-tick edge diffs with reusable buffers: a fixed cell grid of side
// equal to the connection radius is refilled by counting sort each
// tick, every node's adjacency is regenerated from its 3×3 cell
// neighborhood into a double-buffered flat CSR, and the sorted rows are
// merge-diffed against the previous tick's. Steady-state ticks allocate
// nothing once the buffers reach their high-water mark, which is what
// lets the live protocol simulation run mobility at 50k nodes without
// rebuilding a graph per tick.
type Tracker struct {
	w      *Waypoint
	radius float64
	nx, ny int

	cellOf    []int32 // node → cell index
	cellStart []int32 // cell → first slot in cellNodes (prefix sums)
	cellNodes []int32 // nodes grouped by cell

	curOff, prevOff []int32 // per-node row offsets (len n+1)
	curTgt, prevTgt []int32 // sorted neighbor ids

	added, removed [][2]int32
}

// NewTracker builds the initial unit-disk adjacency of w's current
// positions with the given connection radius.
func NewTracker(w *Waypoint, radius float64) *Tracker {
	if radius <= 0 {
		panic("mobility: connection radius must be positive")
	}
	nx := int(w.side/radius) + 1
	t := &Tracker{
		w:         w,
		radius:    radius,
		nx:        nx,
		ny:        nx,
		cellOf:    make([]int32, w.N()),
		cellStart: make([]int32, nx*nx+1),
		cellNodes: make([]int32, w.N()),
		curOff:    make([]int32, w.N()+1),
		prevOff:   make([]int32, w.N()+1),
	}
	t.rebuild()
	return t
}

// N returns the node count.
func (t *Tracker) N() int { return t.w.N() }

// Graph materializes the current unit-disk graph.
func (t *Tracker) Graph() *graph.Graph {
	g := graph.New(t.N())
	for u := 0; u < t.N(); u++ {
		for _, v := range t.curTgt[t.curOff[u]:t.curOff[u+1]] {
			if int32(u) < v {
				g.AddEdge(u, int(v))
			}
		}
	}
	return g
}

// Degree returns u's current degree.
func (t *Tracker) Degree(u int) int { return int(t.curOff[u+1] - t.curOff[u]) }

// Tick advances the waypoint model one step and returns the unit-disk
// edge diff as (u, v) pairs with u < v, sorted lexicographically. The
// slices are tracker-owned and valid until the next Tick.
func (t *Tracker) Tick() (added, removed [][2]int32) {
	t.prevOff, t.curOff = t.curOff, t.prevOff
	t.prevTgt, t.curTgt = t.curTgt, t.prevTgt
	t.w.Step()
	t.rebuild()

	t.added = t.added[:0]
	t.removed = t.removed[:0]
	for u := 0; u < t.N(); u++ {
		prev := t.prevTgt[t.prevOff[u]:t.prevOff[u+1]]
		cur := t.curTgt[t.curOff[u]:t.curOff[u+1]]
		i, j := 0, 0
		for i < len(prev) || j < len(cur) {
			switch {
			case j >= len(cur) || (i < len(prev) && prev[i] < cur[j]):
				if int32(u) < prev[i] {
					t.removed = append(t.removed, [2]int32{int32(u), prev[i]})
				}
				i++
			case i >= len(prev) || cur[j] < prev[i]:
				if int32(u) < cur[j] {
					t.added = append(t.added, [2]int32{int32(u), cur[j]})
				}
				j++
			default:
				i++
				j++
			}
		}
	}
	return t.added, t.removed
}

// rebuild regenerates the current adjacency from scratch positions:
// counting sort into the cell grid, then a 3×3 cell scan per node.
func (t *Tracker) rebuild() {
	n := t.N()
	pts := t.w.Positions()
	r, r2 := t.radius, t.radius*t.radius

	cell := func(i int) int32 {
		cx, cy := int(pts[i][0]/r), int(pts[i][1]/r)
		if cx < 0 {
			cx = 0
		} else if cx >= t.nx {
			cx = t.nx - 1
		}
		if cy < 0 {
			cy = 0
		} else if cy >= t.ny {
			cy = t.ny - 1
		}
		return int32(cy*t.nx + cx)
	}
	for i := range t.cellStart {
		t.cellStart[i] = 0
	}
	for i := 0; i < n; i++ {
		c := cell(i)
		t.cellOf[i] = c
		t.cellStart[c+1]++
	}
	for c := 1; c < len(t.cellStart); c++ {
		t.cellStart[c] += t.cellStart[c-1]
	}
	// cellStart[c] now points at the start of cell c's segment; fill and
	// restore by walking nodes in id order (segments end sorted by id).
	fill := t.cellNodes
	cursor := t.cellStart
	for i := 0; i < n; i++ {
		c := t.cellOf[i]
		fill[cursor[c]] = int32(i)
		cursor[c]++
	}
	// cursor[c] has advanced to the start of c+1; shift back.
	for c := len(cursor) - 1; c > 0; c-- {
		cursor[c] = cursor[c-1]
	}
	cursor[0] = 0

	t.curTgt = t.curTgt[:0]
	for i := 0; i < n; i++ {
		t.curOff[i] = int32(len(t.curTgt))
		ci := int(t.cellOf[i])
		cx, cy := ci%t.nx, ci/t.nx
		row := len(t.curTgt)
		for dy := -1; dy <= 1; dy++ {
			yy := cy + dy
			if yy < 0 || yy >= t.ny {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				xx := cx + dx
				if xx < 0 || xx >= t.nx {
					continue
				}
				c := yy*t.nx + xx
				for _, j := range t.cellNodes[t.cellStart[c]:t.cellStart[c+1]] {
					if int(j) == i {
						continue
					}
					ddx := pts[i][0] - pts[j][0]
					ddy := pts[i][1] - pts[j][1]
					if ddx*ddx+ddy*ddy <= r2 {
						t.curTgt = append(t.curTgt, j)
					}
				}
			}
		}
		slices.Sort(t.curTgt[row:])
	}
	t.curOff[n] = int32(len(t.curTgt))
}
