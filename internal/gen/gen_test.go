package gen

import (
	"math/rand"
	"testing"

	"remspan/internal/graph"
)

func TestErdosRenyiExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if g := ErdosRenyi(10, 0, rng); g.M() != 0 {
		t.Fatalf("p=0 gave %d edges", g.M())
	}
	if g := ErdosRenyi(10, 1, rng); g.M() != 45 {
		t.Fatalf("p=1 gave %d edges, want 45", g.M())
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := ErdosRenyi(200, 0.1, rng)
	expect := 0.1 * 199 * 100 // p * C(200,2)
	if f := float64(g.M()); f < 0.7*expect || f > 1.3*expect {
		t.Fatalf("m=%d, expected around %.0f", g.M(), expect)
	}
}

func TestGNM(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := GNM(20, 50, rng)
	if g.M() != 50 {
		t.Fatalf("m=%d, want 50", g.M())
	}
	// Clamp above max possible.
	g2 := GNM(5, 100, rng)
	if g2.M() != 10 {
		t.Fatalf("clamped m=%d, want 10", g2.M())
	}
}

func TestPathRingStar(t *testing.T) {
	p := Path(5)
	if p.M() != 4 || p.Degree(0) != 1 || p.Degree(2) != 2 {
		t.Fatal("bad path")
	}
	r := Ring(5)
	if r.M() != 5 {
		t.Fatalf("ring m=%d, want 5", r.M())
	}
	for v := 0; v < 5; v++ {
		if r.Degree(v) != 2 {
			t.Fatalf("ring degree(%d)=%d", v, r.Degree(v))
		}
	}
	s := Star(6)
	if s.M() != 5 || s.Degree(0) != 5 {
		t.Fatal("bad star")
	}
}

func TestComplete(t *testing.T) {
	k := Complete(6)
	if k.M() != 15 {
		t.Fatalf("m=%d, want 15", k.M())
	}
	if graph.Diameter(k) != 1 {
		t.Fatal("complete graph diameter != 1")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(4, 3)
	if g.N() != 12 {
		t.Fatalf("n=%d, want 12", g.N())
	}
	// edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8 = 17
	if g.M() != 17 {
		t.Fatalf("m=%d, want 17", g.M())
	}
	if graph.Diameter(g) != 5 {
		t.Fatalf("diam=%d, want 5", graph.Diameter(g))
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("n=%d m=%d, want 16, 32", g.N(), g.M())
	}
	for v := 0; v < 16; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d)=%d, want 4", v, g.Degree(v))
		}
	}
	if graph.Diameter(g) != 4 {
		t.Fatal("Q4 diameter should be 4")
	}
}

func TestRandomTree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(40)
		g := RandomTree(n, rng)
		if g.M() != n-1 {
			t.Fatalf("tree m=%d, want %d", g.M(), n-1)
		}
		if !graph.IsConnected(g) {
			t.Fatal("tree disconnected")
		}
	}
}

func TestPetersen(t *testing.T) {
	g := Petersen()
	if g.N() != 10 || g.M() != 15 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("degree(%d)=%d, want 3", v, g.Degree(v))
		}
	}
	if graph.Diameter(g) != 2 {
		t.Fatalf("Petersen diameter = %d, want 2", graph.Diameter(g))
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(4, 3)
	// n = 2*4 + 3 - 1 = 10
	if g.N() != 10 {
		t.Fatalf("n=%d, want 10", g.N())
	}
	if !graph.IsConnected(g) {
		t.Fatal("barbell disconnected")
	}
	// two K4 = 12 edges + path of 3 edges
	if g.M() != 15 {
		t.Fatalf("m=%d, want 15", g.M())
	}
}

func TestDeterminism(t *testing.T) {
	a := ErdosRenyi(50, 0.2, rand.New(rand.NewSource(9)))
	b := ErdosRenyi(50, 0.2, rand.New(rand.NewSource(9)))
	if !a.Equal(b) {
		t.Fatal("same seed produced different graphs")
	}
}
