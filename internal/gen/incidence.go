package gen

import "remspan/internal/graph"

// ProjectivePlane returns the point–line incidence graph of the
// projective plane PG(2, q) for a prime q: a bipartite,
// (q+1)-regular graph on n = 2(q²+q+1) vertices with girth 6 and
// m = (q+1)(q²+q+1) = Θ(n^{3/2}) edges.
//
// These are the classical extremal C4-free graphs behind the
// Ω(n^{1+1/k}) spanner lower bounds the paper cites (§1.2): any two
// vertices have at most one common neighbor, so *every* edge is the
// unique 2-path witness for its endpoints' neighborhoods — even a
// (1,0)-REMOTE-spanner must keep all Θ(n^{3/2}) edges, matching the
// paper's conjecture that remote-spanners cannot beat the n^{1+1/k}
// frontier on general graphs.
//
// Points occupy vertex ids [0, q²+q+1); lines the rest.
func ProjectivePlane(q int) *graph.Graph {
	if q < 2 || !isPrime(q) {
		panic("gen: ProjectivePlane requires a prime q >= 2")
	}
	reps := homogeneousReps(q)
	k := len(reps) // q²+q+1
	g := graph.New(2 * k)
	for pi, p := range reps {
		for li, l := range reps {
			if (p[0]*l[0]+p[1]*l[1]+p[2]*l[2])%q == 0 {
				g.AddEdge(pi, k+li)
			}
		}
	}
	return g
}

// homogeneousReps enumerates canonical representatives of the
// projective points of GF(q)³: (1, a, b), (0, 1, a), (0, 0, 1).
func homogeneousReps(q int) [][3]int {
	reps := make([][3]int, 0, q*q+q+1)
	for a := 0; a < q; a++ {
		for b := 0; b < q; b++ {
			reps = append(reps, [3]int{1, a, b})
		}
	}
	for a := 0; a < q; a++ {
		reps = append(reps, [3]int{0, 1, a})
	}
	reps = append(reps, [3]int{0, 0, 1})
	return reps
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// FriendshipGraph returns the windmill F_k: k triangles sharing one
// hub vertex — the extremal "every pair has exactly one common
// neighbor" graph (Erdős–Rényi–Sós). Useful as a small worst-case
// fixture: all spoke edges are forced into any (1,0)-remote-spanner.
func FriendshipGraph(k int) *graph.Graph {
	g := graph.New(2*k + 1)
	for i := 0; i < k; i++ {
		a, b := 1+2*i, 2+2*i
		g.AddEdge(0, a)
		g.AddEdge(0, b)
		g.AddEdge(a, b)
	}
	return g
}
