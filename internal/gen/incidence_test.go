package gen

import (
	"testing"

	"remspan/internal/graph"
)

func TestProjectivePlaneStructure(t *testing.T) {
	for _, q := range []int{2, 3, 5, 7} {
		g := ProjectivePlane(q)
		k := q*q + q + 1
		if g.N() != 2*k {
			t.Fatalf("q=%d: n=%d, want %d", q, g.N(), 2*k)
		}
		if g.M() != (q+1)*k {
			t.Fatalf("q=%d: m=%d, want %d", q, g.M(), (q+1)*k)
		}
		// (q+1)-regular.
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != q+1 {
				t.Fatalf("q=%d: degree(%d)=%d, want %d", q, v, g.Degree(v), q+1)
			}
		}
		// Bipartite: no point–point or line–line edges.
		g.EachEdge(func(u, v int) {
			if (u < k) == (v < k) {
				t.Fatalf("q=%d: same-side edge {%d,%d}", q, u, v)
			}
		})
	}
}

func TestProjectivePlaneC4Free(t *testing.T) {
	// Any two vertices share at most one common neighbor (axioms of the
	// projective plane: two points lie on exactly one line and dually).
	g := ProjectivePlane(3)
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if cn := g.CommonNeighbors(u, v); len(cn) > 1 {
				t.Fatalf("vertices %d,%d share %d neighbors", u, v, len(cn))
			}
		}
	}
}

func TestProjectivePlaneGirthSix(t *testing.T) {
	g := ProjectivePlane(3)
	// girth > 4 follows from C4-freeness + bipartite (no odd cycles);
	// a 6-cycle must exist (triangle of points in general position).
	// Check: some pair at distance 3 closes a 6-cycle — equivalently
	// diameter is 3 and there exist two internally disjoint 3-paths.
	if d := graph.Diameter(g); d != 3 {
		t.Fatalf("diameter=%d, want 3", d)
	}
}

func TestProjectivePlaneConnected(t *testing.T) {
	if !graph.IsConnected(ProjectivePlane(5)) {
		t.Fatal("PG(2,5) incidence graph disconnected")
	}
}

func TestProjectivePlaneRejectsComposite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for composite q")
		}
	}()
	ProjectivePlane(4)
}

func TestFriendshipGraph(t *testing.T) {
	g := FriendshipGraph(4)
	if g.N() != 9 || g.M() != 12 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(0) != 8 {
		t.Fatalf("hub degree %d", g.Degree(0))
	}
	// Exactly one common neighbor for every pair.
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if cn := g.CommonNeighbors(u, v); len(cn) > 1 {
				t.Fatalf("pair %d,%d shares %d neighbors", u, v, len(cn))
			}
		}
	}
}
