// Package gen provides deterministic generators for the combinatorial
// graph families used by tests, examples and benchmarks: random and
// structured graphs on top of the graph substrate.
package gen

import (
	"math/rand"

	"remspan/internal/graph"
)

// ErdosRenyi returns G(n, p): every pair is an edge independently with
// probability p.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// GNM returns a uniform random graph with exactly m distinct edges
// (m is clamped to n(n-1)/2).
func GNM(n, m int, rng *rand.Rand) *graph.Graph {
	max := n * (n - 1) / 2
	if m > max {
		m = max
	}
	g := graph.New(n)
	for g.M() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Path returns the path graph 0-1-...-n-1.
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Ring returns the cycle graph C_n (requires n >= 3 for a proper cycle;
// smaller n degrade to a path).
func Ring(n int) *graph.Graph {
	g := Path(n)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Star returns a star with center 0 and n-1 leaves.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

// Grid returns the w×h grid graph; vertex (x, y) has id y*w+x.
func Grid(w, h int) *graph.Graph {
	g := graph.New(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := y*w + x
			if x+1 < w {
				g.AddEdge(id, id+1)
			}
			if y+1 < h {
				g.AddEdge(id, id+w)
			}
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d vertices.
func Hypercube(d int) *graph.Graph {
	n := 1 << d
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < d; b++ {
			v := u ^ (1 << b)
			if u < v {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random labelled tree on n vertices via
// a random Prüfer-like attachment: vertex i (i >= 1) attaches to a
// uniform vertex in [0, i).
func RandomTree(n int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	return g
}

// Petersen returns the Petersen graph (10 vertices, 15 edges,
// 3-regular, girth 5) — a useful fixed test instance.
func Petersen() *graph.Graph {
	g := graph.New(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)     // outer cycle
		g.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		g.AddEdge(i, 5+i)         // spokes
	}
	return g
}

// Barbell returns two K_k cliques joined by a path of len pathLen
// (pathLen >= 1 edges between the cliques' gateway vertices).
func Barbell(k, pathLen int) *graph.Graph {
	n := 2*k + pathLen - 1
	g := graph.New(n)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			g.AddEdge(u, v)
			g.AddEdge(n-1-u, n-1-v)
		}
	}
	prev := k - 1
	for i := 0; i < pathLen-1; i++ {
		g.AddEdge(prev, k+i)
		prev = k + i
	}
	g.AddEdge(prev, n-k)
	return g
}
