package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean=%v", m)
	}
	if s := Std(xs); math.Abs(s-2.138) > 0.01 {
		t.Fatalf("std=%v", s)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Fatal("empty/singleton cases")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("min=%v max=%v", min, max)
	}
	if a, b := MinMax(nil); a != 0 || b != 0 {
		t.Fatal("empty MinMax")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("median=%v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0=%v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100=%v", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Fatalf("p25=%v", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestLeastSquaresExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	f := LeastSquares(xs, ys)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Fatalf("fit=%+v", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("R2=%v", f.R2)
	}
}

func TestLeastSquaresDegenerate(t *testing.T) {
	if f := LeastSquares([]float64{5}, []float64{3}); f.Slope != 0 {
		t.Fatal("single point should give zero fit")
	}
	f := LeastSquares([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.Slope != 0 || f.Intercept != 2 {
		t.Fatalf("vertical data fit=%+v", f)
	}
}

func TestLogLogSlopeRecoversExponent(t *testing.T) {
	f := func(c float64) bool {
		exp := 1 + math.Mod(math.Abs(c), 2) // exponent in [1,3)
		var xs, ys []float64
		for _, x := range []float64{10, 20, 40, 80, 160} {
			xs = append(xs, x)
			ys = append(ys, 3*math.Pow(x, exp))
		}
		fit := LogLogSlope(xs, ys)
		return math.Abs(fit.Slope-exp) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLogLogSlopeSkipsNonPositive(t *testing.T) {
	fit := LogLogSlope([]float64{0, 10, 100}, []float64{5, 10, 100})
	if math.Abs(fit.Slope-1) > 1e-9 {
		t.Fatalf("slope=%v, want 1", fit.Slope)
	}
}

func TestLogLogNoisyFit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for x := 100.0; x <= 10000; x *= 2 {
		xs = append(xs, x)
		ys = append(ys, 2*math.Pow(x, 1.5)*(1+0.05*rng.NormFloat64()))
	}
	fit := LogLogSlope(xs, ys)
	if math.Abs(fit.Slope-1.5) > 0.15 {
		t.Fatalf("noisy slope=%v", fit.Slope)
	}
	if fit.R2 < 0.95 {
		t.Fatalf("R2=%v", fit.R2)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("longer-name", 42)
	tb.AddNote("a note %d", 7)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "longer-name  42") {
		t.Errorf("bad alignment:\n%s", out)
	}
	if !strings.Contains(out, "alpha        1.5") {
		t.Errorf("bad float rendering:\n%s", out)
	}
	if !strings.Contains(out, "note: a note 7") {
		t.Error("missing note")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:    "1.5",
		2.0:    "2",
		0.3333: "0.333",
		0:      "0",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v)=%q, want %q", in, got, want)
		}
	}
}
