// Package stats provides the small statistics toolkit used by the
// experiment harness: summary statistics, least-squares fits (notably
// log–log slope fits for scaling-exponent estimation) and aligned
// text-table rendering.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation (0 for fewer than 2 values).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MinMax returns the extremes (0, 0 for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) with linear
// interpolation.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Fit is a least-squares line y = Slope·x + Intercept with the
// coefficient of determination R².
type Fit struct {
	Slope, Intercept, R2 float64
}

// LeastSquares fits a line to (xs, ys) (panics on length mismatch;
// returns zero Fit for fewer than 2 points).
func LeastSquares(xs, ys []float64) Fit {
	if len(xs) != len(ys) {
		panic("stats: length mismatch")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return Fit{}
	}
	mx, my := Mean(xs), Mean(ys)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{Intercept: my}
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	_ = n
	return fit
}

// LogLogSlope fits log(y) against log(x), returning the scaling
// exponent: y ≈ C·x^Slope. Non-positive points are skipped.
func LogLogSlope(xs, ys []float64) Fit {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	return LeastSquares(lx, ly)
}
