package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteCSV renders the table as RFC-4180-ish CSV (quoting cells that
// contain commas or quotes) for downstream plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// AsciiChart renders (x, y) series as a log–log scatter chart in plain
// text — enough to eyeball scaling exponents in a terminal. width and
// height are the plot area in characters.
func AsciiChart(title string, xs, ys []float64, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	var pts [][2]float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			pts = append(pts, [2]float64{math.Log10(xs[i]), math.Log10(ys[i])})
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (log–log)\n", title)
	if len(pts) == 0 {
		b.WriteString("(no positive data)\n")
		return b.String()
	}
	minX, maxX := pts[0][0], pts[0][0]
	minY, maxY := pts[0][1], pts[0][1]
	for _, p := range pts {
		minX = math.Min(minX, p[0])
		maxX = math.Max(maxX, p[0])
		minY = math.Min(minY, p[1])
		maxY = math.Max(maxY, p[1])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		c := int((p[0] - minX) / (maxX - minX) * float64(width-1))
		r := int((p[1] - minY) / (maxY - minY) * float64(height-1))
		grid[height-1-r][c] = '*'
	}
	for r, row := range grid {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%9.2g ", math.Pow(10, maxY))
		} else if r == height-1 {
			label = fmt.Sprintf("%9.2g ", math.Pow(10, minY))
		}
		fmt.Fprintf(&b, "%s|%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s%s\n", strings.Repeat(" ", 10),
		fmt.Sprintf("%-*.3g%*.3g", width/2+1, math.Pow(10, minX), width/2, math.Pow(10, maxX)))
	return b.String()
}
