package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table used for paper-style output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	Charts []string // preformatted blocks (e.g. AsciiChart) printed last
}

// NewTable returns an empty table with the given title and header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells are rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line printed under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	fmt.Fprintln(w, line(t.Header))
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if total > 2 {
		total -= 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	for _, c := range t.Charts {
		fmt.Fprintln(w, c)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}
