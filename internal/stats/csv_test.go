package stats

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow("x", 1)
	tb.AddRow("contains,comma", `quote"d`)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "a,b" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "x,1" {
		t.Fatalf("row %q", lines[1])
	}
	if lines[2] != `"contains,comma","quote""d"` {
		t.Fatalf("quoted row %q", lines[2])
	}
}

func TestAsciiChart(t *testing.T) {
	xs := []float64{10, 100, 1000}
	ys := []float64{20, 200, 2000}
	out := AsciiChart("m vs n", xs, ys, 30, 8)
	if !strings.Contains(out, "m vs n") {
		t.Fatal("missing title")
	}
	if strings.Count(out, "*") < 3 {
		t.Fatalf("missing points:\n%s", out)
	}
	// Degenerate inputs must not panic.
	if out := AsciiChart("empty", nil, nil, 10, 5); !strings.Contains(out, "no positive data") {
		t.Fatal("empty chart")
	}
	_ = AsciiChart("flat", []float64{5, 5}, []float64{1, 1}, 2, 2)
	_ = AsciiChart("negatives", []float64{-1, 10}, []float64{3, -9}, 12, 4)
}
