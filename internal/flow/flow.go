// Package flow computes minimum-total-length disjoint paths in
// unweighted graphs via unit-capacity min-cost flow. It provides the
// k-connecting distance d^k(s, t) of the paper — the minimum length sum
// of k internally vertex-disjoint s→t paths — together with the paths
// themselves, and edge-disjoint variants for the paper's concluding
// extension.
package flow

// mcmf is a small successive-shortest-path min-cost max-flow solver on
// unit capacities. Costs may become negative on residual arcs, so
// shortest paths use SPFA (queue-based Bellman–Ford), which is exact
// and fast at these sizes.
type mcmf struct {
	n    int
	head []int32
	next []int32
	to   []int32
	cap  []int32
	cost []int32
}

func newMCMF(n int) *mcmf {
	h := make([]int32, n)
	for i := range h {
		h[i] = -1
	}
	return &mcmf{n: n, head: h}
}

// addArc adds a directed arc u→v with the given capacity and cost plus
// its zero-capacity reverse arc. Arc ids are even; reverse = id^1.
func (f *mcmf) addArc(u, v, capacity, cost int32) {
	f.next = append(f.next, f.head[u])
	f.to = append(f.to, v)
	f.cap = append(f.cap, capacity)
	f.cost = append(f.cost, cost)
	f.head[u] = int32(len(f.to) - 1)

	f.next = append(f.next, f.head[v])
	f.to = append(f.to, u)
	f.cap = append(f.cap, 0)
	f.cost = append(f.cost, -cost)
	f.head[v] = int32(len(f.to) - 1)
}

const inf = int32(1) << 30

// augment finds a min-cost augmenting path s→t in the residual network
// and pushes one unit along it, returning the path cost (ok=false when
// t is unreachable).
func (f *mcmf) augment(s, t int32) (int32, bool) {
	dist := make([]int32, f.n)
	inQueue := make([]bool, f.n)
	prevArc := make([]int32, f.n)
	for i := range dist {
		dist[i] = inf
		prevArc[i] = -1
	}
	dist[s] = 0
	queue := []int32{s}
	inQueue[s] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		for e := f.head[u]; e != -1; e = f.next[e] {
			if f.cap[e] <= 0 {
				continue
			}
			v := f.to[e]
			if nd := dist[u] + f.cost[e]; nd < dist[v] {
				dist[v] = nd
				prevArc[v] = e
				if !inQueue[v] {
					inQueue[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	if dist[t] >= inf {
		return 0, false
	}
	for v := t; v != s; {
		e := prevArc[v]
		f.cap[e]--
		f.cap[e^1]++
		v = f.to[e^1]
	}
	return dist[t], true
}
