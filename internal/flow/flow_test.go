package flow

import (
	"math/rand"
	"testing"

	"remspan/internal/graph"
)

// bruteKDistance enumerates all ways to route k internally disjoint
// paths via DFS over simple paths — exponential, small graphs only.
func bruteKDistance(g *graph.Graph, s, t, k int) int {
	best := -1
	used := make([]bool, g.N())
	directUsed := false // the s–t edge is the only edge shareable without sharing an internal vertex
	var paths [][]int32

	var searchPath func(cur int32, path []int32, total int)
	var nextPath func(total int)

	nextPath = func(total int) {
		if len(paths) == k {
			if best == -1 || total < best {
				best = total
			}
			return
		}
		if best != -1 && total >= best {
			return
		}
		searchPath(int32(s), []int32{int32(s)}, total)
	}
	searchPath = func(cur int32, path []int32, total int) {
		if best != -1 && total+len(path)-1 >= best && len(paths)+1 == k {
			// weak prune; keep exploring otherwise for correctness
		}
		for _, nb := range g.Neighbors(int(cur)) {
			if nb == int32(t) {
				direct := len(path) == 1
				if direct && directUsed {
					continue
				}
				// complete path
				p := append(append([]int32(nil), path...), nb)
				for _, v := range p {
					if v != int32(s) && v != int32(t) {
						used[v] = true
					}
				}
				if direct {
					directUsed = true
				}
				paths = append(paths, p)
				nextPath(total + len(p) - 1)
				paths = paths[:len(paths)-1]
				if direct {
					directUsed = false
				}
				for _, v := range p {
					if v != int32(s) && v != int32(t) {
						used[v] = false
					}
				}
				continue
			}
			if int(nb) == s || used[nb] {
				continue
			}
			inPath := false
			for _, v := range path {
				if v == nb {
					inPath = true
					break
				}
			}
			if inPath {
				continue
			}
			searchPath(nb, append(path, nb), total)
		}
	}
	nextPath(0)
	return best
}

func TestVertexDisjointSimpleCycle(t *testing.T) {
	// Cycle of 6: two disjoint paths between opposite vertices have
	// total length 6.
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.AddEdge(i, (i+1)%6)
	}
	res, ok, err := VertexDisjointPaths(g, 0, 3, 2)
	if err != nil || !ok {
		t.Fatal("expected 2 disjoint paths in C6")
	}
	if res.Total != 6 {
		t.Fatalf("total=%d, want 6", res.Total)
	}
	if err := ArePathsInternallyDisjoint(g, 0, 3, res.Paths); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := VertexDisjointPaths(g, 0, 3, 3); ok {
		t.Fatal("C6 should not have 3 disjoint paths")
	}
}

func TestKDistanceUnreachable(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if d := KDistance(g, 0, 3, 1); d != -1 {
		t.Fatalf("disconnected d=%d, want -1", d)
	}
}

func TestKDistanceAdjacent(t *testing.T) {
	// Adjacent pair: first path is the direct edge.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(2, 1)
	g.AddEdge(0, 3)
	g.AddEdge(3, 1)
	prof := KDistanceProfile(g, 0, 1, 3)
	if prof[0] != 1 {
		t.Fatalf("d1=%d, want 1", prof[0])
	}
	if prof[1] != 3 {
		t.Fatalf("d2=%d, want 3", prof[1])
	}
	if prof[2] != 5 {
		t.Fatalf("d3=%d, want 5", prof[2])
	}
}

func TestVertexConnectivityKn(t *testing.T) {
	g := graph.New(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			g.AddEdge(u, v)
		}
	}
	if c := VertexConnectivity(g, 0, 4); c != 4 {
		t.Fatalf("K5 connectivity %d, want 4", c)
	}
}

func TestKDistanceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(5)
		g := graph.New(n)
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		s, tt := 0, n-1
		for k := 1; k <= 3; k++ {
			want := bruteKDistance(g, s, tt, k)
			got := KDistance(g, s, tt, k)
			if got != want {
				t.Fatalf("trial %d n=%d k=%d: flow=%d brute=%d", trial, n, k, got, want)
			}
			if got >= 0 {
				res, _, _ := VertexDisjointPaths(g, s, tt, k)
				if err := ArePathsInternallyDisjoint(g, s, tt, res.Paths); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				sum := 0
				for _, p := range res.Paths {
					sum += len(p) - 1
				}
				if sum != got {
					t.Fatalf("paths sum %d != total %d", sum, got)
				}
			}
		}
	}
}

func TestKDistanceProfileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(8)
		g := graph.New(n)
		for i := 0; i < n*3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		prof := KDistanceProfile(g, 0, n-1, 4)
		prev := 0
		for _, d := range prof {
			if d == -1 {
				continue
			}
			if d < prev {
				t.Fatalf("profile not monotone: %v", prof)
			}
			prev = d
		}
		// prefix consistency with single-shot KDistance
		for k := 1; k <= 4; k++ {
			if got := KDistance(g, 0, n-1, k); got != prof[k-1] {
				t.Fatalf("KDistance(%d)=%d, profile %d", k, got, prof[k-1])
			}
		}
	}
}

func TestEdgeDisjointPaths(t *testing.T) {
	// Two triangles sharing a vertex: 2 edge-disjoint paths exist
	// through the shared cut vertex but not 2 vertex-disjoint ones.
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(2, 4)
	if c := VertexConnectivity(g, 0, 4); c != 1 {
		t.Fatalf("vertex connectivity %d, want 1", c)
	}
	if c := EdgeConnectivity(g, 0, 4); c != 2 {
		t.Fatalf("edge connectivity %d, want 2", c)
	}
	res, ok, err := EdgeDisjointPaths(g, 0, 4, 2)
	if err != nil || !ok {
		t.Fatal("expected 2 edge-disjoint paths")
	}
	// total = (0-1-2-3-4) + (0-2-4) = 4 + 2 = 6... min total is
	// (0-2-4)=2 + (0-1-2-3-4)=4 → 6
	if res.Total != 6 {
		t.Fatalf("total=%d, want 6", res.Total)
	}
	// paths must be edge disjoint
	seen := map[[2]int32]bool{}
	for _, p := range res.Paths {
		for i := 0; i+1 < len(p); i++ {
			u, v := p[i], p[i+1]
			if u > v {
				u, v = v, u
			}
			if seen[[2]int32{u, v}] {
				t.Fatal("edge reused across paths")
			}
			seen[[2]int32{u, v}] = true
			if !g.HasEdge(int(p[i]), int(p[i+1])) {
				t.Fatal("non-edge used")
			}
		}
	}
}

func TestEdgeKDistance(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if d := EdgeKDistance(g, 0, 2, 1); d != 2 {
		t.Fatalf("d=%d, want 2", d)
	}
	if d := EdgeKDistance(g, 0, 2, 2); d != -1 {
		t.Fatalf("d=%d, want -1", d)
	}
}

func TestVertexVsEdgeConnectivityDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(8)
		g := graph.New(n)
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		vc := VertexConnectivity(g, 0, n-1)
		ec := EdgeConnectivity(g, 0, n-1)
		if vc > ec {
			t.Fatalf("vertex connectivity %d > edge connectivity %d", vc, ec)
		}
	}
}

func TestArePathsInternallyDisjointErrors(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 4)
	g.AddEdge(0, 2)
	g.AddEdge(2, 4)
	// shared internal vertex
	bad := [][]int32{{0, 1, 4}, {0, 1, 4}}
	if err := ArePathsInternallyDisjoint(g, 0, 4, bad); err == nil {
		t.Fatal("expected shared-vertex error")
	}
	// non-edge
	bad2 := [][]int32{{0, 3, 4}}
	if err := ArePathsInternallyDisjoint(g, 0, 4, bad2); err == nil {
		t.Fatal("expected non-edge error")
	}
	// bad endpoints
	bad3 := [][]int32{{1, 4}}
	if err := ArePathsInternallyDisjoint(g, 0, 4, bad3); err == nil {
		t.Fatal("expected endpoint error")
	}
	good := [][]int32{{0, 1, 4}, {0, 2, 4}}
	if err := ArePathsInternallyDisjoint(g, 0, 4, good); err != nil {
		t.Fatal(err)
	}
}
