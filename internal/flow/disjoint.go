package flow

import (
	"fmt"

	"remspan/internal/graph"
)

// Result carries a set of disjoint paths and their total length.
type Result struct {
	Total int       // sum of path lengths in edges
	Paths [][]int32 // each path is s, ..., t
}

// vertex-split network layout: in(v)=2v, out(v)=2v+1. The source is
// out(s) and the sink is in(t) so that s and t themselves are not
// capacity-constrained.
func buildVertexSplit(g *graph.Graph, s, t int) *mcmf {
	n := g.N()
	f := newMCMF(2 * n)
	for v := 0; v < n; v++ {
		if v == s || v == t {
			f.addArc(int32(2*v), int32(2*v+1), inf, 0)
		} else {
			f.addArc(int32(2*v), int32(2*v+1), 1, 0)
		}
	}
	g.EachEdge(func(u, v int) {
		f.addArc(int32(2*u+1), int32(2*v), 1, 1)
		f.addArc(int32(2*v+1), int32(2*u), 1, 1)
	})
	return f
}

// VertexDisjointPaths returns k internally vertex-disjoint s→t paths
// with minimum total length, or ok=false if fewer than k exist.
// Successive shortest paths guarantee the minimum sum for every prefix
// k' <= k as well. A non-nil error means the computed flow could not be
// decomposed into paths — an internal-invariant failure a serving
// process should surface, not die on.
func VertexDisjointPaths(g *graph.Graph, s, t, k int) (Result, bool, error) {
	if s == t {
		return Result{}, false, nil
	}
	f := buildVertexSplit(g, s, t)
	total := 0
	for i := 0; i < k; i++ {
		c, ok := f.augment(int32(2*s+1), int32(2*t))
		if !ok {
			return Result{}, false, nil
		}
		total += int(c)
	}
	paths, err := extractVertexPaths(f, g.N(), s, t, k)
	if err != nil {
		return Result{}, false, err
	}
	return Result{Total: total, Paths: paths}, true, nil
}

// KDistance returns the paper's k-connecting distance d^k(s, t): the
// minimum length sum of k internally vertex-disjoint paths, or -1 when
// no k disjoint paths exist (d^k = ∞). Only the flow value is needed,
// so no path decomposition runs.
func KDistance(g *graph.Graph, s, t, k int) int {
	if s == t {
		return -1
	}
	f := buildVertexSplit(g, s, t)
	total := 0
	for i := 0; i < k; i++ {
		c, ok := f.augment(int32(2*s+1), int32(2*t))
		if !ok {
			return -1
		}
		total += int(c)
	}
	return total
}

// KDistanceProfile returns d^1..d^k in one flow run (successive
// shortest paths yield the optimum for every prefix). Entries are -1
// where fewer disjoint paths exist.
func KDistanceProfile(g *graph.Graph, s, t, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = -1
	}
	if s == t {
		return out
	}
	f := buildVertexSplit(g, s, t)
	total := 0
	for i := 0; i < k; i++ {
		c, ok := f.augment(int32(2*s+1), int32(2*t))
		if !ok {
			break
		}
		total += int(c)
		out[i] = total
	}
	return out
}

// VertexConnectivity returns the maximum number of internally
// vertex-disjoint s→t paths (Menger). For adjacent s, t the direct
// edge counts as one path.
func VertexConnectivity(g *graph.Graph, s, t int) int {
	if s == t {
		return 0
	}
	f := buildVertexSplit(g, s, t)
	k := 0
	for {
		if _, ok := f.augment(int32(2*s+1), int32(2*t)); !ok {
			return k
		}
		k++
	}
}

// extractVertexPaths decomposes the unit flow on the vertex-split
// network into k paths over original vertex ids.
func extractVertexPaths(f *mcmf, n, s, t, k int) ([][]int32, error) {
	// usedTo[v] = list of successors of v carried by flow (original ids).
	usedTo := make(map[int32][]int32, n)
	for u := 0; u < n; u++ {
		for e := f.head[2*u+1]; e != -1; e = f.next[e] {
			// Forward inter-vertex arcs have even id and cost 1; flow
			// passed iff residual cap of the reverse arc is positive.
			if e%2 == 0 && f.cost[e] == 1 && f.cap[e^1] > 0 {
				v := f.to[e] / 2
				for c := f.cap[e^1]; c > 0; c-- {
					usedTo[int32(u)] = append(usedTo[int32(u)], v)
				}
			}
		}
	}
	paths := make([][]int32, 0, k)
	for i := 0; i < k; i++ {
		path := []int32{int32(s)}
		cur := int32(s)
		for cur != int32(t) {
			succs := usedTo[cur]
			if len(succs) == 0 {
				return nil, fmt.Errorf("flow: path decomposition stuck at %d", cur)
			}
			next := succs[len(succs)-1]
			usedTo[cur] = succs[:len(succs)-1]
			path = append(path, next)
			cur = next
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// EdgeDisjointPaths returns k edge-disjoint s→t paths with minimum
// total length, or ok=false if fewer than k exist. This supports the
// paper's concluding extension to edge-connectivity. A non-nil error
// means the flow could not be decomposed into paths.
func EdgeDisjointPaths(g *graph.Graph, s, t, k int) (Result, bool, error) {
	if s == t {
		return Result{}, false, nil
	}
	n := g.N()
	f := newMCMF(n)
	g.EachEdge(func(u, v int) {
		f.addArc(int32(u), int32(v), 1, 1)
		f.addArc(int32(v), int32(u), 1, 1)
	})
	total := 0
	for i := 0; i < k; i++ {
		c, ok := f.augment(int32(s), int32(t))
		if !ok {
			return Result{}, false, nil
		}
		total += int(c)
	}
	// Decompose: net flow per undirected edge direction.
	usedTo := make(map[int32][]int32, n)
	for e := 0; e < len(f.to); e += 2 {
		if f.cost[e] != 1 {
			continue
		}
		u := f.to[e^1]
		v := f.to[e]
		if f.cap[e^1] > 0 { // one unit moved u→v
			usedTo[u] = append(usedTo[u], v)
		}
	}
	// Cancel opposite units on the same edge (cost-optimal flows avoid
	// them, but be safe).
	paths := make([][]int32, 0, k)
	for i := 0; i < k; i++ {
		path := []int32{int32(s)}
		cur := int32(s)
		steps := 0
		for cur != int32(t) {
			succs := usedTo[cur]
			if len(succs) == 0 {
				return Result{}, false, fmt.Errorf("flow: edge path decomposition stuck at %d", cur)
			}
			next := succs[len(succs)-1]
			usedTo[cur] = succs[:len(succs)-1]
			path = append(path, next)
			cur = next
			if steps++; steps > g.M()+1 {
				return Result{}, false, fmt.Errorf("flow: edge path decomposition cycled at %d", cur)
			}
		}
		paths = append(paths, path)
	}
	return Result{Total: total, Paths: paths}, true, nil
}

// EdgeKDistance is the edge-disjoint analogue of KDistance. Only the
// flow value is needed, so no path decomposition runs.
func EdgeKDistance(g *graph.Graph, s, t, k int) int {
	if s == t {
		return -1
	}
	n := g.N()
	f := newMCMF(n)
	g.EachEdge(func(u, v int) {
		f.addArc(int32(u), int32(v), 1, 1)
		f.addArc(int32(v), int32(u), 1, 1)
	})
	total := 0
	for i := 0; i < k; i++ {
		c, ok := f.augment(int32(s), int32(t))
		if !ok {
			return -1
		}
		total += int(c)
	}
	return total
}

// EdgeConnectivity returns the maximum number of edge-disjoint s→t
// paths.
func EdgeConnectivity(g *graph.Graph, s, t int) int {
	if s == t {
		return 0
	}
	n := g.N()
	f := newMCMF(n)
	g.EachEdge(func(u, v int) {
		f.addArc(int32(u), int32(v), 1, 0)
		f.addArc(int32(v), int32(u), 1, 0)
	})
	k := 0
	for {
		if _, ok := f.augment(int32(s), int32(t)); !ok {
			return k
		}
		k++
	}
}

// ArePathsInternallyDisjoint verifies that the given s→t paths are
// simple, valid in g, and share no internal vertex (s and t excluded).
func ArePathsInternallyDisjoint(g *graph.Graph, s, t int, paths [][]int32) error {
	seen := make(map[int32]int)
	for pi, p := range paths {
		if len(p) < 2 || p[0] != int32(s) || p[len(p)-1] != int32(t) {
			return fmt.Errorf("flow: path %d has bad endpoints", pi)
		}
		inPath := make(map[int32]bool)
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(int(p[i]), int(p[i+1])) {
				return fmt.Errorf("flow: path %d uses non-edge {%d,%d}", pi, p[i], p[i+1])
			}
		}
		for _, v := range p {
			if inPath[v] {
				return fmt.Errorf("flow: path %d revisits %d", pi, v)
			}
			inPath[v] = true
			if v == int32(s) || v == int32(t) {
				continue
			}
			if prev, ok := seen[v]; ok {
				return fmt.Errorf("flow: paths %d and %d share internal vertex %d", prev, pi, v)
			}
			seen[v] = pi
		}
	}
	return nil
}
