// Package olsr is a time-domain simulation of an OLSR-style proactive
// link-state protocol whose advertised sub-graph is the paper's
// (1,0)-remote-spanner: nodes exchange periodic HELLOs (neighbor + MPR
// information), select multipoint relays with Algorithm 4, and flood
// periodic TC (topology control) messages carrying their MPR-selector
// links through the relay overlay. Every node then routes over its
// augmented view H_u = advertised links ∪ its own links.
//
// This realizes the paper's §2.3 remark that RemSpan runs inside a
// periodic, asynchronous link-state protocol and stabilizes within one
// period plus two floodings after a topology change — the package
// measures exactly that, under node mobility or link failures.
package olsr

import (
	"sort"

	"remspan/internal/domtree"
	"remspan/internal/graph"
)

// Params are protocol timing constants, in ticks. A HELLO is sent every
// HelloInterval ticks, a TC flood every TCInterval; learned state
// expires after HoldTicks without refresh.
type Params struct {
	HelloInterval int
	TCInterval    int
	HoldTicks     int
	K             int // MPR coverage (1 = RFC 3626, >1 = k-coverage extension)
}

// DefaultParams mirrors the usual OLSR ratios (hello:TC:hold ≈ 1:2:6).
func DefaultParams() Params {
	return Params{HelloInterval: 1, TCInterval: 2, HoldTicks: 8, K: 1}
}

// Stats accumulates control-plane traffic.
type Stats struct {
	HelloTx int64 // HELLO transmissions (local broadcasts)
	TCTx    int64 // TC transmissions (originations + relay forwards)
	Words   int64 // total payload words
}

// link is an advertised (origin, selector) pair with freshness.
type link struct {
	seq     int32
	expires int64
}

// node is the per-router protocol state.
type node struct {
	id int32

	nbrs     map[int32]int64          // neighbor → expiry tick (from HELLOs)
	nbrLists map[int32][]int32        // neighbor → its advertised neighbor list
	mprs     map[int32]bool           // relays this node selected
	selector map[int32]int64          // neighbors that selected this node → expiry
	topo     map[int32]map[int32]link // origin → selector → advertisement
	tcSeq    int32                    // own TC sequence counter
	seen     map[int32]int32          // origin → highest TC seq processed
	pending  []tcMsg                  // TCs to forward next tick
}

type tcMsg struct {
	origin    int32
	seq       int32
	selectors []int32
}

// tcDelivery is a TC frame on the wire, tagged with its last-hop sender
// (the MPR forwarding rule depends on who handed us the frame).
type tcDelivery struct {
	from int32
	msg  tcMsg
}

type helloMsg struct {
	from int32
	nbrs []int32
	mprs []int32
}

// Sim is the synchronous protocol simulation. The physical topology can
// be swapped at any tick (mobility); the protocol notices through its
// own HELLO/TC machinery, never by inspection.
type Sim struct {
	P     Params
	g     *graph.Graph
	nodes []*node
	tick  int64
	stats Stats

	// Double-buffered delivery queues: the rows being delivered this
	// tick and the rows being filled for the next one swap each Tick,
	// so a long-running simulation reuses row capacity instead of
	// allocating 2n slice headers per tick.
	helloBuf, helloNext [][]helloMsg
	tcBuf, tcNext       [][]tcDelivery

	// Reusable traversal state for RouteCheck's per-hop view BFS
	// (lazily created; the graph.View migration of the routing data
	// paths).
	routeScratch *graph.BFSScratch
}

// New creates a simulation over the initial topology g.
func New(g *graph.Graph, p Params) *Sim {
	if p.HelloInterval < 1 || p.TCInterval < 1 || p.HoldTicks < p.TCInterval {
		panic("olsr: bad params")
	}
	if p.K < 1 {
		p.K = 1
	}
	s := &Sim{P: p, g: g}
	n := g.N()
	s.nodes = make([]*node, n)
	for i := range s.nodes {
		s.nodes[i] = &node{
			id:       int32(i),
			nbrs:     make(map[int32]int64),
			nbrLists: make(map[int32][]int32),
			mprs:     make(map[int32]bool),
			selector: make(map[int32]int64),
			topo:     make(map[int32]map[int32]link),
			seen:     make(map[int32]int32),
		}
	}
	s.helloBuf = make([][]helloMsg, n)
	s.tcBuf = make([][]tcDelivery, n)
	s.helloNext = make([][]helloMsg, n)
	s.tcNext = make([][]tcDelivery, n)
	return s
}

// SetGraph swaps the physical topology (e.g. after a mobility step).
func (s *Sim) SetGraph(g *graph.Graph) {
	if g.N() != len(s.nodes) {
		panic("olsr: node count changed")
	}
	s.g = g
}

// Tick runs one synchronous protocol round: deliver last tick's
// messages, update beliefs, expire stale state, and emit this tick's
// HELLOs/TCs.
func (s *Sim) Tick() {
	n := len(s.nodes)
	// 1. Deliver queued messages (sent last tick over last tick's links;
	// delivery uses the current physical graph — links that vanished
	// in between drop the frame, as radios do).
	nextHello := s.helloNext
	nextTC := s.tcNext
	for i := range nextHello {
		nextHello[i] = nextHello[i][:0]
		nextTC[i] = nextTC[i][:0]
	}
	for u := 0; u < n; u++ {
		nd := s.nodes[u]
		for _, h := range s.helloBuf[u] {
			nd.processHello(h, s.tick+int64(s.P.HoldTicks))
		}
		for _, d := range s.tcBuf[u] {
			nd.processTC(d, s.tick+int64(s.P.HoldTicks))
		}
	}
	// 2. Expire stale beliefs and recompute MPRs.
	for _, nd := range s.nodes {
		nd.expire(s.tick)
		nd.selectMPRs(s.P.K)
	}
	// 3. Emit HELLOs.
	if s.tick%int64(s.P.HelloInterval) == 0 {
		for u := 0; u < n; u++ {
			msg := s.nodes[u].makeHello()
			s.stats.HelloTx++
			s.stats.Words += int64(2 + len(msg.nbrs) + len(msg.mprs))
			for _, v := range s.g.Neighbors(u) {
				nextHello[v] = append(nextHello[v], msg)
			}
		}
	}
	// 4. Emit TCs (origination on schedule + pending forwards).
	for u := 0; u < n; u++ {
		nd := s.nodes[u]
		var out []tcMsg
		if s.tick%int64(s.P.TCInterval) == 0 && len(nd.selector) > 0 {
			nd.tcSeq++
			out = append(out, tcMsg{origin: nd.id, seq: nd.tcSeq, selectors: nd.selectorList()})
		}
		out = append(out, nd.pending...)
		nd.pending = nil
		for _, tc := range out {
			s.stats.TCTx++
			s.stats.Words += int64(3 + len(tc.selectors))
			for _, v := range s.g.Neighbors(u) {
				nextTC[v] = append(nextTC[v], tcDelivery{from: nd.id, msg: tc})
			}
		}
	}
	s.helloBuf, s.helloNext = nextHello, s.helloBuf
	s.tcBuf, s.tcNext = nextTC, s.tcBuf
	s.tick++
}

// Run advances the simulation by ticks rounds.
func (s *Sim) Run(ticks int) {
	for i := 0; i < ticks; i++ {
		s.Tick()
	}
}

// Now returns the current tick.
func (s *Sim) Now() int64 { return s.tick }

// Stats returns cumulative traffic counters.
func (s *Sim) Stats() Stats { return s.stats }

// --- node protocol logic ---

func (nd *node) processHello(h helloMsg, expiry int64) {
	nd.nbrs[h.from] = expiry
	nd.nbrLists[h.from] = h.nbrs
	// Am I listed as one of the sender's MPRs? Then it is my selector.
	for _, m := range h.mprs {
		if m == nd.id {
			nd.selector[h.from] = expiry
			return
		}
	}
	delete(nd.selector, h.from)
}

func (nd *node) processTC(d tcDelivery, expiry int64) {
	tc := d.msg
	if tc.origin == nd.id {
		return
	}
	if last, ok := nd.seen[tc.origin]; ok && tc.seq <= last {
		return // duplicate or stale
	}
	nd.seen[tc.origin] = tc.seq
	row := make(map[int32]link, len(tc.selectors))
	for _, sel := range tc.selectors {
		row[sel] = link{seq: tc.seq, expires: expiry}
	}
	nd.topo[tc.origin] = row
	// RFC 3626 MPR forwarding rule: rebroadcast only frames first
	// received from a neighbor that selected us as its relay.
	if _, ok := nd.selector[d.from]; ok {
		nd.pending = append(nd.pending, tc)
	}
}

func (nd *node) expire(now int64) {
	for v, exp := range nd.nbrs {
		if exp <= now {
			delete(nd.nbrs, v)
			delete(nd.nbrLists, v)
			delete(nd.mprs, v)
		}
	}
	for v, exp := range nd.selector {
		if exp <= now {
			delete(nd.selector, v)
		}
	}
	for origin, row := range nd.topo {
		for sel, l := range row {
			if l.expires <= now {
				delete(row, sel)
			}
		}
		if len(row) == 0 {
			delete(nd.topo, origin)
		}
	}
}

// selectMPRs recomputes this node's relays from its believed 2-hop
// neighborhood using Algorithm 4 (greedy k-coverage).
func (nd *node) selectMPRs(k int) {
	// Build the believed local graph: my links + my neighbors' lists.
	ids := map[int32]bool{nd.id: true}
	for v := range nd.nbrs {
		ids[v] = true
		for _, w := range nd.nbrLists[v] {
			ids[w] = true
		}
	}
	maxID := int32(0)
	for v := range ids {
		if v > maxID {
			maxID = v
		}
	}
	local := graph.New(int(maxID) + 1)
	for v := range nd.nbrs {
		local.AddEdge(int(nd.id), int(v))
		for _, w := range nd.nbrLists[v] {
			if w != nd.id {
				local.AddEdge(int(v), int(w))
			}
		}
	}
	tree := domtree.KGreedy(local, int(nd.id), k)
	nd.mprs = make(map[int32]bool)
	for _, m := range domtree.MPRSet(tree) {
		nd.mprs[m] = true
	}
}

func (nd *node) makeHello() helloMsg {
	nbrs := make([]int32, 0, len(nd.nbrs))
	for v := range nd.nbrs {
		nbrs = append(nbrs, v)
	}
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	mprs := make([]int32, 0, len(nd.mprs))
	for v := range nd.mprs {
		mprs = append(mprs, v)
	}
	sort.Slice(mprs, func(i, j int) bool { return mprs[i] < mprs[j] })
	return helloMsg{from: nd.id, nbrs: nbrs, mprs: mprs}
}

func (nd *node) selectorList() []int32 {
	out := make([]int32, 0, len(nd.selector))
	for v := range nd.selector {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// View returns node u's current augmented view H_u: every advertised
// (origin, selector) link it has heard, plus its own believed links.
func (s *Sim) View(u int) *graph.Graph {
	nd := s.nodes[u]
	h := graph.New(len(s.nodes))
	for origin, row := range nd.topo {
		for sel := range row {
			h.AddEdge(int(origin), int(sel))
		}
	}
	for v := range nd.nbrs {
		h.AddEdge(u, int(v))
	}
	return h
}

// AdvertisedSpanner returns the union of links currently advertised by
// TC floods network-wide (ground truth across all nodes' TC state) —
// the live remote-spanner.
func (s *Sim) AdvertisedSpanner() *graph.EdgeSet {
	es := graph.NewEdgeSet(len(s.nodes))
	for _, nd := range s.nodes {
		for origin, row := range nd.topo {
			for sel := range row {
				es.Add(int(origin), int(sel))
			}
		}
		for v := range nd.selector {
			es.Add(int(nd.id), int(v))
		}
	}
	return es
}
