package olsr

import (
	"remspan/internal/graph"
)

// RouteReport summarizes data-plane quality at an instant: greedy
// forwarding over each hop's *believed* view, transmitted over the
// *actual* physical graph.
type RouteReport struct {
	Checked    int     // pairs with a route in the physical graph
	Delivered  int     // pairs whose packet reached the destination
	MaxStretch float64 // worst hops/d_G among delivered pairs
	AvgStretch float64
}

// RouteCheck routes one packet per pair. At every hop the current
// holder picks the neighbor it believes is closest to the destination
// in its own view H_u; the frame is lost if that link no longer exists
// physically (stale beliefs during mobility).
func (s *Sim) RouteCheck(pairs [][2]int) RouteReport {
	var rep RouteReport
	sum := 0.0
	n := len(s.nodes)
	if s.routeScratch == nil {
		s.routeScratch = graph.NewBFSScratch(n)
	}
	for _, p := range pairs {
		src, dst := p[0], p[1]
		if src == dst {
			continue
		}
		dgRow, _, _ := s.routeScratch.BoundedView(s.g, src, n)
		dg := dgRow[dst]
		if dg == graph.Unreached {
			continue
		}
		rep.Checked++
		hops, ok := s.routeOne(src, dst, n+5)
		if !ok {
			continue
		}
		rep.Delivered++
		str := float64(hops) / float64(dg)
		sum += str
		if str > rep.MaxStretch {
			rep.MaxStretch = str
		}
	}
	if rep.Delivered > 0 {
		rep.AvgStretch = sum / float64(rep.Delivered)
	}
	return rep
}

func (s *Sim) routeOne(src, dst, maxHops int) (hops int, ok bool) {
	cur := src
	for h := 0; h < maxHops; h++ {
		if cur == dst {
			return h, true
		}
		nd := s.nodes[cur]
		// Direct delivery if the destination is a believed neighbor and
		// the link physically exists.
		if _, isNbr := nd.nbrs[int32(dst)]; isNbr && s.g.HasEdge(cur, dst) {
			cur = dst
			continue
		}
		view := s.View(cur)
		dist, _, _ := s.routeScratch.BoundedView(view, dst, view.N())
		best, bestD := int32(-1), int32(0)
		for v := range nd.nbrs {
			d := dist[v]
			if d == graph.Unreached {
				continue
			}
			if best == -1 || d < bestD || (d == bestD && v < best) {
				best, bestD = v, d
			}
		}
		if best == -1 {
			return 0, false // no believed route
		}
		if !s.g.HasEdge(cur, int(best)) {
			return 0, false // stale link: frame lost
		}
		cur = int(best)
	}
	return 0, false
}

// Converged reports whether every sampled pair routes successfully with
// exact stretch — the steady-state guarantee of the (1,0)-remote-
// spanner advertisement (k=1 MPR links preserve shortest paths).
func (s *Sim) Converged(pairs [][2]int) bool {
	rep := s.RouteCheck(pairs)
	return rep.Delivered == rep.Checked && rep.MaxStretch <= 1.0
}
