package olsr

import (
	"math/rand"
	"testing"

	"remspan/internal/gen"
	"remspan/internal/geom"
	"remspan/internal/graph"
	"remspan/internal/mobility"
	"remspan/internal/spanner"
)

func testUDG(n int, side float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	pts := geom.UniformBox(n, 2, side, rng)
	g := geom.UnitDiskGraph(pts, 1.2)
	keep, _ := graph.LargestComponent(g)
	return g.InducedSubgraph(keep)
}

func samplePairs(n, count int, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]int, count)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	return pairs
}

func TestStaticConvergence(t *testing.T) {
	g := testUDG(120, 3, 1)
	s := New(g, DefaultParams())
	// Warm up: hold time + a couple of TC floods across the diameter.
	s.Run(20)
	pairs := samplePairs(g.N(), 80, 2)
	rep := s.RouteCheck(pairs)
	if rep.Delivered != rep.Checked {
		t.Fatalf("delivered %d of %d after warm-up", rep.Delivered, rep.Checked)
	}
	if rep.MaxStretch > 1.0 {
		t.Fatalf("static OLSR stretch %v > 1 (MPR links preserve shortest paths)", rep.MaxStretch)
	}
	if !s.Converged(pairs) {
		t.Fatal("Converged() disagrees with RouteCheck")
	}
}

func TestAdvertisedSpannerIsRemoteSpanner(t *testing.T) {
	g := testUDG(100, 3, 3)
	s := New(g, DefaultParams())
	s.Run(20)
	h := s.AdvertisedSpanner().Graph()
	// The union of advertised MPR links must be a (1,0)-remote-spanner
	// of the (static) physical graph.
	if v := spanner.Check(g, h, spanner.NewStretch(1, 0)); v != nil {
		t.Fatalf("advertised spanner violates (1,0): %v", v)
	}
	if h.M() >= g.M() && g.AvgDegree() > 8 {
		t.Fatalf("no advertisement savings: %d of %d", h.M(), g.M())
	}
}

func TestTrafficAccounting(t *testing.T) {
	g := testUDG(60, 2.5, 4)
	s := New(g, DefaultParams())
	s.Run(10)
	st := s.Stats()
	if st.HelloTx == 0 || st.Words == 0 {
		t.Fatal("no traffic recorded")
	}
	// HELLOs: one per node per tick (interval 1).
	if want := int64(10 * g.N()); st.HelloTx != want {
		t.Fatalf("hello tx %d, want %d", st.HelloTx, want)
	}
	if st.TCTx == 0 {
		t.Fatal("no TC traffic in a multi-hop network")
	}
}

func TestLinkFailureReconvergence(t *testing.T) {
	g := testUDG(100, 3, 5)
	s := New(g, DefaultParams())
	s.Run(20)
	pairs := samplePairs(g.N(), 60, 6)
	if !s.Converged(pairs) {
		t.Fatal("did not converge before failure")
	}
	// Fail a high-degree node's links (keep the graph connected by
	// retrying seeds if needed).
	hub := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	g2 := g.RemoveVertex(hub)
	keep, _ := graph.LargestComponent(g2)
	if cnt := countTrue(keep); cnt < g.N()-1 {
		t.Skip("hub removal disconnected the network")
	}
	s.SetGraph(g2)
	// The protocol must re-converge within hold time + flooding time.
	deadline := 4 * s.P.HoldTicks
	var converged bool
	pairs2 := filterPairs(pairs, hub)
	for i := 0; i < deadline; i++ {
		s.Tick()
		if s.Converged(pairs2) {
			converged = true
			break
		}
	}
	if !converged {
		rep := s.RouteCheck(pairs2)
		t.Fatalf("not reconverged within %d ticks: %d/%d delivered, stretch %v",
			deadline, rep.Delivered, rep.Checked, rep.MaxStretch)
	}
}

func TestMobilityDeliveryStaysHigh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := mobility.NewWaypoint(150, 4, 0.005, 0.02, rng) // slow pedestrians
	s := New(w.Graph(1.2), DefaultParams())
	s.Run(20) // warm up static
	pairs := samplePairs(150, 50, 8)
	totalChecked, totalDelivered := 0, 0
	for step := 0; step < 30; step++ {
		w.Step()
		s.SetGraph(w.Graph(1.2))
		s.Tick()
		rep := s.RouteCheck(pairs)
		totalChecked += rep.Checked
		totalDelivered += rep.Delivered
	}
	if totalChecked == 0 {
		t.Skip("degenerate mobility sample")
	}
	ratio := float64(totalDelivered) / float64(totalChecked)
	// Mobility genuinely loses some frames to stale links; require the
	// protocol to keep the vast majority flowing.
	if ratio < 0.85 {
		t.Fatalf("delivery ratio %.2f under slow mobility", ratio)
	}
}

func TestKCoverageParams(t *testing.T) {
	g := testUDG(90, 3, 9)
	p := DefaultParams()
	p.K = 2
	s := New(g, p)
	s.Run(20)
	pairs := samplePairs(g.N(), 40, 10)
	if !s.Converged(pairs) {
		t.Fatal("k=2 OLSR did not converge")
	}
	// k=2 advertises at least as many links as k=1.
	s1 := New(g, DefaultParams())
	s1.Run(20)
	if s.AdvertisedSpanner().Len() < s1.AdvertisedSpanner().Len() {
		t.Fatal("k=2 advertised fewer links than k=1")
	}
}

func TestBadParamsPanic(t *testing.T) {
	g := gen.Ring(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(g, Params{HelloInterval: 0, TCInterval: 1, HoldTicks: 4})
}

func countTrue(b []bool) int {
	c := 0
	for _, x := range b {
		if x {
			c++
		}
	}
	return c
}

func filterPairs(pairs [][2]int, exclude int) [][2]int {
	var out [][2]int
	for _, p := range pairs {
		if p[0] != exclude && p[1] != exclude {
			out = append(out, p)
		}
	}
	return out
}
