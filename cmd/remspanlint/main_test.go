package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the remspanlint binary into a scratch dir so the
// tests can drive it exactly the way CI does: through `go vet
// -vettool`.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "remspanlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = append(os.Environ(), "GOWORK=off")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building remspanlint: %v\n%s", err, out)
	}
	return bin
}

// TestVersionHandshake pins the `-V=full` contract the go command uses
// to fingerprint vet tools: at least three fields, the second exactly
// "version", the third not "devel".
func TestVersionHandshake(t *testing.T) {
	bin := buildLint(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	f := strings.Fields(string(out))
	if len(f) < 3 || f[1] != "version" || f[2] == "devel" {
		t.Fatalf("-V=full output %q does not satisfy the go command's tool-ID contract", out)
	}
}

// corpusWants is one expected substring per analyzer, plus the
// cross-package hotcall chain: helper.Grow lives in a different
// package than its hotpath caller, so seeing it named in the
// diagnostic proves facts crossed the package boundary.
var corpusWants = []string{
	"(hotalloc)",
	"(scratchescape)",
	"(rcupub)",
	"(detrand)",
	"(hotcall)",
	"(shardbody)",
	"(lockpair)",
	"call to badcorpus/helper.Grow allocates in hot path",
}

// TestVettoolGateFiresOnBadCorpus proves the CI gate end to end: `go
// vet -vettool=remspanlint` over the seeded known-bad corpus must fail
// and must surface one diagnostic from each of the seven analyzers,
// including the fact-propagated cross-package hotcall finding.
func TestVettoolGateFiresOnBadCorpus(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = filepath.Join("testdata", "badcorpus")
	cmd.Env = append(os.Environ(), "GOWORK=off")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool exited clean on the bad corpus:\n%s", out)
	}
	for _, want := range corpusWants {
		if !strings.Contains(string(out), want) {
			t.Errorf("bad corpus vet output is missing a %s diagnostic:\n%s", want, out)
		}
	}
}

// TestStandaloneModeFiresOnBadCorpus checks the loader-based mode
// reports the same corpus without the go command in the loop.
func TestStandaloneModeFiresOnBadCorpus(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = filepath.Join("testdata", "badcorpus")
	cmd.Env = append(os.Environ(), "GOWORK=off")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("standalone remspanlint exited clean on the bad corpus:\n%s", out)
	}
	for _, want := range corpusWants {
		if !strings.Contains(string(out), want) {
			t.Errorf("bad corpus standalone output is missing a %s diagnostic:\n%s", want, out)
		}
	}
}

// TestRepoIsLintClean runs the real gate over the whole repository:
// the annotated hot paths, scratch lifetimes, RCU publication sites,
// and deterministic packages must all be clean. This is the same
// command CI runs.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo vet is not a -short test")
	}
	bin := buildLint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = filepath.Join("..", "..")
	cmd.Env = append(os.Environ(), "GOWORK=off")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("repo is not remspanlint-clean: %v\n%s", err, out)
	}
}
