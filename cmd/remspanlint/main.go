// Command remspanlint is the repo's invariant checker: a multichecker
// over the internal/analysis suite (hotalloc, scratchescape, rcupub,
// detrand).
//
// It runs in two modes:
//
//   - vettool mode, driven by the go command:
//
//     go vet -vettool=$(which remspanlint) ./...
//
//     The go command probes the tool with -V=full for a version
//     fingerprint, then invokes it once per package with a vet.cfg
//     JSON file describing the unit: source files, the import map and
//     export-data locations for every dependency. This mirrors the
//     golang.org/x/tools unitchecker protocol, reimplemented on the
//     standard library because the module cache has no x/tools.
//
//   - standalone mode:
//
//     remspanlint ./...
//
//     Loads packages itself via `go list -export` and checks them in
//     one process. Diagnostics print to stderr as file:line:col; the
//     exit status is 2 when anything is reported.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"

	"remspan/internal/analysis"
	"remspan/internal/analysis/detrand"
	"remspan/internal/analysis/hotalloc"
	"remspan/internal/analysis/load"
	"remspan/internal/analysis/rcupub"
	"remspan/internal/analysis/scratchescape"
)

var analyzers = []*analysis.Analyzer{
	hotalloc.Analyzer,
	scratchescape.Analyzer,
	rcupub.Analyzer,
	detrand.Analyzer,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("remspanlint: ")

	args := os.Args[1:]
	for _, a := range args {
		// The go command fingerprints vet tools by running `tool
		// -V=full` and requires `name version fingerprint` on stdout.
		if a == "-V=full" || a == "--V=full" {
			fmt.Println("remspanlint version remspan-suite-1")
			return
		}
		// The go command also probes `tool -flags` for the JSON list
		// of vet flags the tool accepts; this suite has none.
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
		if a == "help" || a == "-h" || a == "--help" {
			usage()
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitCheck(args[0])
		return
	}
	standalone(args)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: remspanlint [packages]   (or via go vet -vettool=remspanlint)\n\nanalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
}

// diag pairs a finding with the analyzer that produced it so the
// drivers can sort and label uniformly.
type diag struct {
	analyzer string
	d        analysis.Diagnostic
}

// runAll applies every analyzer to one type-checked package and
// returns the findings in position order.
func runAll(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []diag {
	var out []diag
	for _, a := range analyzers {
		name := a.Name
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				out = append(out, diag{analyzer: name, d: d})
			},
		}
		if _, err := a.Run(pass); err != nil {
			log.Fatalf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].d.Pos < out[j].d.Pos })
	return out
}

func printDiags(fset *token.FileSet, diags []diag) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.d.Pos), d.d.Message, d.analyzer)
	}
}

// ---- standalone mode ----

func standalone(patterns []string) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		log.Fatal(err)
	}
	exit := 0
	for _, p := range pkgs {
		diags := runAll(p.Fset, p.Files, p.Types, p.Info)
		if len(diags) > 0 {
			exit = 2
			printDiags(p.Fset, diags)
		}
	}
	os.Exit(exit)
}

// ---- vettool mode ----

// vetConfig mirrors the JSON the go command writes for each vet unit
// (cmd/go/internal/work: buildVetConfig).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool

	ImportsUnsafe bool
	GoVersion     string

	SucceedOnTypecheckFailure bool

	VetxOnly    bool
	VetxOutput  string
	PackageVetx map[string]string
}

func unitCheck(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgFile, err)
	}

	// The go command caches the (empty: this suite keeps no facts)
	// vetx artifact and requires it to exist even on failure paths.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	// Dependency units are facts-only requests; with no facts to
	// compute there is nothing to do.
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	conf := types.Config{
		Importer: exportImporter(&cfg, fset),
		Sizes:    types.SizesFor(cfg.Compiler, runtime.GOARCH),
		Error:    func(error) {}, // collect-all; Check returns the first
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := analysis.NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		log.Fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	diags := runAll(fset, files, pkg, info)
	if len(diags) > 0 {
		printDiags(fset, diags)
		os.Exit(2)
	}
}

// exportImporter resolves imports through the unit's ImportMap and
// reads compiler export data listed in PackageFile — the same lookup
// contract importer.ForCompiler expects.
func exportImporter(cfg *vetConfig, fset *token.FileSet) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, lookup)
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[path]; ok && mapped != "" {
			path = mapped
		}
		return base.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
