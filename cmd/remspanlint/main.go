// Command remspanlint is the repo's invariant checker: a multichecker
// over the internal/analysis suite (hotalloc, scratchescape, rcupub,
// detrand, hotcall, shardbody, lockpair).
//
// It runs in two modes:
//
//   - vettool mode, driven by the go command:
//
//     go vet -vettool=$(which remspanlint) ./...
//
//     The go command probes the tool with -V=full for a version
//     fingerprint, then invokes it once per package with a vet.cfg
//     JSON file describing the unit: source files, the import map and
//     export-data locations for every dependency. This mirrors the
//     golang.org/x/tools unitchecker protocol, reimplemented on the
//     standard library because the module cache has no x/tools.
//
//   - standalone mode:
//
//     remspanlint ./...
//
//     Loads packages itself via `go list -export` and checks them in
//     one process. Diagnostics print to stderr as file:line:col; the
//     exit status is 2 when anything is reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"

	"remspan/internal/analysis"
	"remspan/internal/analysis/detrand"
	"remspan/internal/analysis/facts"
	"remspan/internal/analysis/hotalloc"
	"remspan/internal/analysis/hotcall"
	"remspan/internal/analysis/load"
	"remspan/internal/analysis/lockpair"
	"remspan/internal/analysis/rcupub"
	"remspan/internal/analysis/scratchescape"
	"remspan/internal/analysis/shardbody"
)

var analyzers = []*analysis.Analyzer{
	hotalloc.Analyzer,
	scratchescape.Analyzer,
	rcupub.Analyzer,
	detrand.Analyzer,
	hotcall.Analyzer,
	shardbody.Analyzer,
	lockpair.Analyzer,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("remspanlint: ")

	args := os.Args[1:]
	for _, a := range args {
		// The go command fingerprints vet tools by running `tool
		// -V=full` and uses the whole `name version fingerprint` line
		// as the cache key for diagnostics and vetx facts, so the
		// fingerprint embeds a hash of this very binary: rebuilding
		// the tool invalidates cached results.
		if a == "-V=full" || a == "--V=full" {
			fmt.Printf("remspanlint version remspan-suite-2-%s\n", selfID())
			return
		}
		// The go command also probes `tool -flags` for the JSON list
		// of vet flags the tool accepts; this suite has none.
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
		if a == "help" || a == "-h" || a == "--help" {
			usage()
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitCheck(args[0])
		return
	}
	standalone(args)
}

// selfID hashes the running executable. Any rebuild of the tool —
// analyzer change, corpus-driven fix, toolchain bump — yields a new
// vet fingerprint without anyone remembering to bump a constant.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unhashed"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unhashed"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unhashed"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: remspanlint [packages]   (or via go vet -vettool=remspanlint)\n\nanalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
}

// diag pairs a finding with the analyzer that produced it so the
// drivers can sort and label uniformly.
type diag struct {
	analyzer string
	d        analysis.Diagnostic
}

// runAll applies the suite to one type-checked package. deps maps each
// dependency's import path to its decoded fact envelope; exports, when
// non-nil, collects the blobs this package's fact-exporting analyzers
// produce. When factsOnly is set the package is a dependency unit:
// only fact-exporting analyzers run, and their diagnostics (already
// reported when the dependency itself was the target) are discarded.
func runAll(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deps map[string]facts.Envelope, exports facts.Envelope, factsOnly bool) []diag {
	var out []diag
	for _, a := range analyzers {
		if factsOnly && !a.ExportsFacts {
			continue
		}
		name := a.Name
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				out = append(out, diag{analyzer: name, d: d})
			},
			ImportFacts: func(path string) []byte {
				return deps[path][name]
			},
			ExportFacts: func(data []byte) {
				if exports != nil {
					exports[name] = data
				}
			},
		}
		if _, err := a.Run(pass); err != nil {
			log.Fatalf("analyzer %s: %v", a.Name, err)
		}
	}
	if factsOnly {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].d.Pos < out[j].d.Pos })
	return out
}

func printDiags(fset *token.FileSet, diags []diag) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.d.Pos), d.d.Message, d.analyzer)
	}
}

// ---- standalone mode ----

func standalone(patterns []string) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		log.Fatal(err)
	}
	// `go list -deps` order is dependency-first, so every package's
	// fact envelope is in the store before its dependents run.
	store := make(map[string]facts.Envelope)
	exit := 0
	for _, p := range pkgs {
		exports := facts.Envelope{}
		diags := runAll(p.Fset, p.Files, p.Types, p.Info, store, exports, p.FactsOnly)
		store[p.ImportPath] = exports
		if len(diags) > 0 {
			exit = 2
			printDiags(p.Fset, diags)
		}
	}
	os.Exit(exit)
}

// ---- vettool mode ----

// vetConfig mirrors the JSON the go command writes for each vet unit
// (cmd/go/internal/work: buildVetConfig).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool

	ImportsUnsafe bool
	GoVersion     string

	SucceedOnTypecheckFailure bool

	VetxOnly    bool
	VetxOutput  string
	PackageVetx map[string]string
}

func unitCheck(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgFile, err)
	}

	// The go command caches the vetx artifact and requires it to exist
	// even on failure paths, so every early return below writes one.
	// Standard-library units export no facts for this suite (the
	// standalone driver never loads them from source either, keeping
	// the two modes in agreement), so their artifact is always empty.
	if cfg.isStdUnit() {
		writeVetx(cfg.VetxOutput, nil)
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
				writeVetx(cfg.VetxOutput, nil)
				return
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	conf := types.Config{
		Importer: exportImporter(&cfg, fset),
		Sizes:    types.SizesFor(cfg.Compiler, runtime.GOARCH),
		Error:    func(error) {}, // collect-all; Check returns the first
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := analysis.NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
			writeVetx(cfg.VetxOutput, nil)
			return
		}
		log.Fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	// PackageVetx lists the fact files of every dependency unit the go
	// command has already scheduled; decode them up front so analyzers
	// can look facts up by import path.
	deps := make(map[string]facts.Envelope, len(cfg.PackageVetx))
	for path, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			log.Fatalf("reading facts of %s: %v", path, err)
		}
		env, err := facts.DecodeEnvelope(data)
		if err != nil {
			log.Fatalf("facts of %s: %v", path, err)
		}
		deps[path] = env
	}

	exports := facts.Envelope{}
	diags := runAll(fset, files, pkg, info, deps, exports, cfg.VetxOnly)
	writeVetx(cfg.VetxOutput, exports)
	if len(diags) > 0 {
		printDiags(fset, diags)
		os.Exit(2)
	}
}

// isStdUnit reports whether the unit under analysis is itself a
// standard-library package. cmd/go's Standard map covers only the
// unit's *dependencies*, never the unit itself, so the unit's own
// origin is judged by whether its sources live under GOROOT.
func (cfg *vetConfig) isStdUnit() bool {
	if cfg.Standard[cfg.ImportPath] {
		return true
	}
	goroot := runtime.GOROOT()
	if goroot == "" || len(cfg.GoFiles) == 0 {
		return false
	}
	return strings.HasPrefix(cfg.GoFiles[0], goroot+string(os.PathSeparator))
}

// writeVetx persists one unit's fact envelope where the go command
// expects its vetx artifact.
func writeVetx(path string, env facts.Envelope) {
	if path == "" {
		return
	}
	data, err := facts.EncodeEnvelope(env)
	if err != nil {
		log.Fatalf("encoding facts: %v", err)
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		log.Fatal(err)
	}
}

// exportImporter resolves imports through the unit's ImportMap and
// reads compiler export data listed in PackageFile — the same lookup
// contract importer.ForCompiler expects.
func exportImporter(cfg *vetConfig, fset *token.FileSet) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, lookup)
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[path]; ok && mapped != "" {
			path = mapped
		}
		return base.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
