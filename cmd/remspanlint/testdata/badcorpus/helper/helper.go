// Package helper supplies the allocating callee the hotcall self-test
// reaches across a package boundary: its summary must travel through
// the vetx fact envelope (or the standalone in-memory store) for the
// diagnostic on the caller in the parent package to fire.
package helper

// Grow allocates and carries no annotation, so a hotpath caller in
// the parent package must be flagged through imported facts alone.
func Grow(n int) []int32 {
	return make([]int32, n)
}
