// Package badcorpus deliberately violates one invariant per analyzer
// so CI can prove the remspanlint gate actually fires end to end
// through `go vet -vettool`. Every function below must produce a
// diagnostic; the self-test fails if any analyzer stays silent.
//
//remspan:deterministic
package badcorpus

import (
	"sync"
	"sync/atomic"
	"time"

	"badcorpus/helper"
)

// RowScratch mimics the repo's epoch-stamped scratch buffers.
type RowScratch struct{ rows []int32 }

// Reset mimics the epoch bump.
func (s *RowScratch) Reset() {}

// hotAlloc violates hotalloc: an annotated hot path allocates.
//
//remspan:hotpath
func hotAlloc(n int) []int32 {
	buf := make([]int32, n)
	return buf
}

// leak violates scratchescape: the loan outlives the call.
func leak(s *RowScratch) []int32 {
	return s.rows
}

type box struct{ cur atomic.Pointer[RowScratch] }

// pub violates rcupub: a write lands after publication.
func pub(b *box) {
	s := &RowScratch{}
	b.cur.Store(s)
	s.rows = nil
}

// stamp violates detrand: wall-clock reads in a deterministic package.
func stamp() int64 {
	return time.Now().UnixNano()
}

// hotCross violates hotcall: the hot path calls an allocating helper
// that lives in a different package, so the diagnostic only fires if
// helper's summary crossed the package boundary as a fact.
//
//remspan:hotpath
func hotCross(n int) []int32 {
	return helper.Grow(n)
}

// pool mimics sched.Pool closely enough for shardbody's shape match
// (a Run method handed a func(w, lo, hi int) literal).
type pool struct{}

func (pool) Run(items, width int, body func(w, lo, hi int)) {}

// shardRace violates shardbody: the shard body writes a captured
// scalar without atomics, a worker slot, or a span-derived index.
func shardRace(items int) int {
	total := 0
	var p pool
	p.Run(items, 4, func(w, lo, hi int) {
		total += hi - lo
	})
	return total
}

type locked struct {
	mu sync.Mutex
	n  int
}

// lockLeak violates lockpair: the early return still holds the lock.
func lockLeak(l *locked, cond bool) int {
	l.mu.Lock()
	if cond {
		return 0
	}
	v := l.n
	l.mu.Unlock()
	return v
}
