// Package badcorpus deliberately violates one invariant per analyzer
// so CI can prove the remspanlint gate actually fires end to end
// through `go vet -vettool`. Every function below must produce a
// diagnostic; the self-test fails if any analyzer stays silent.
//
//remspan:deterministic
package badcorpus

import (
	"sync/atomic"
	"time"
)

// RowScratch mimics the repo's epoch-stamped scratch buffers.
type RowScratch struct{ rows []int32 }

// Reset mimics the epoch bump.
func (s *RowScratch) Reset() {}

// hotAlloc violates hotalloc: an annotated hot path allocates.
//
//remspan:hotpath
func hotAlloc(n int) []int32 {
	buf := make([]int32, n)
	return buf
}

// leak violates scratchescape: the loan outlives the call.
func leak(s *RowScratch) []int32 {
	return s.rows
}

type box struct{ cur atomic.Pointer[RowScratch] }

// pub violates rcupub: a write lands after publication.
func pub(b *box) {
	s := &RowScratch{}
	b.cur.Store(s)
	s.rows = nil
}

// stamp violates detrand: wall-clock reads in a deterministic package.
func stamp() int64 {
	return time.Now().UnixNano()
}
