module badcorpus

go 1.21
