package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMakeGraphGenerators(t *testing.T) {
	cases := []struct {
		kind string
		n    int
	}{
		{"udg", 100}, {"ubg", 80}, {"er", 60}, {"grid", 49}, {"ring", 12}, {"hypercube", 16},
	}
	for _, c := range cases {
		g, err := makeGraph("", c.kind, c.n, 3, 2, 0.1, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if g.N() == 0 {
			t.Fatalf("%s: empty graph", c.kind)
		}
	}
	if _, err := makeGraph("", "nope", 10, 1, 1, 0.1, 1); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

func TestMakeGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("3 2\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := makeGraph(path, "", 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if _, err := makeGraph(filepath.Join(dir, "missing.txt"), "", 0, 0, 0, 0, 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunCentralizedAlgorithms(t *testing.T) {
	g, _ := makeGraph("", "udg", 120, 3, 2, 0, 2)
	for _, algo := range []string{"exact", "kconn", "2conn", "lowstretch"} {
		s, err := runCentralized(g, algo, 2, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if s.Edges() == 0 && g.M() > 0 && algo != "exact" {
			t.Fatalf("%s produced empty spanner", algo)
		}
	}
	if _, err := runCentralized(g, "nope", 2, 0.5); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestWriteDOTAndEdgeList(t *testing.T) {
	g, _ := makeGraph("", "ring", 8, 0, 0, 0, 1)
	s, err := runCentralized(g, "exact", 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dotPath := filepath.Join(dir, "out.dot")
	if err := writeDOT(dotPath, g, s); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graph") {
		t.Fatal("DOT output malformed")
	}
	elPath := filepath.Join(dir, "h.txt")
	f, err := os.Create(elPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeEdgeList(f, s.H); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := makeGraph(elPath, "", 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.M() != s.Edges() {
		t.Fatalf("round trip lost edges: %d vs %d", back.M(), s.Edges())
	}
}
