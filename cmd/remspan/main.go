// Command remspan constructs and verifies remote-spanners on generated
// or loaded graphs.
//
// Usage:
//
//	remspan -gen udg -n 500 -algo exact -verify
//	remspan -gen er -n 256 -p 0.05 -algo lowstretch -eps 0.5 -dot out.dot
//	remspan -in graph.txt -algo 2conn -verify
//
// Input files use the edge-list format: a "n m" header line followed by
// one "u v" line per edge.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"remspan"
	"remspan/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("remspan: ")

	var (
		genKind = flag.String("gen", "udg", "generator: udg | ubg | er | grid | ring | hypercube")
		inFile  = flag.String("in", "", "read graph from edge-list file instead of generating")
		n       = flag.Int("n", 500, "target node count")
		side    = flag.Float64("side", 4, "square/box side for udg/ubg")
		dim     = flag.Int("dim", 2, "ambient dimension for ubg")
		p       = flag.Float64("p", 0.05, "edge probability for er")
		seed    = flag.Int64("seed", 1, "RNG seed")
		algo    = flag.String("algo", "exact", "spanner: exact | kconn | 2conn | lowstretch")
		k       = flag.Int("k", 2, "k for kconn")
		eps     = flag.Float64("eps", 0.5, "epsilon for lowstretch")
		verify  = flag.Bool("verify", false, "verify the guarantee exactly (all pairs)")
		distrib = flag.Bool("distributed", false, "run the RemSpan protocol instead of the centralized builder")
		dotOut  = flag.String("dot", "", "write Graphviz overlay (graph gray, spanner red) to file")
		outFile = flag.String("out", "", "write the spanner as an edge list to file")
	)
	flag.Parse()

	g, err := makeGraph(*inFile, *genKind, *n, *side, *dim, *p, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", g.N(), g.M(), g.MaxDegree())

	var s *remspan.Spanner
	if *distrib {
		s, err = runDistributed(g, *algo, *k, *eps)
	} else {
		s, err = runCentralized(g, *algo, *k, *eps)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spanner: kind=%s edges=%d (%.1f%% of m) guarantee=%s k-connecting=%d\n",
		s.Kind, s.Edges(), 100*float64(s.Edges())/float64(g.M()),
		s.Guarantee, s.KConnecting)

	if *verify {
		if err := remspan.VerifySpanner(g, s); err != nil {
			log.Fatalf("VERIFY FAILED: %v", err)
		}
		fmt.Println("verify: all guarantees hold (exact check over all pairs)")
	}
	prof := remspan.MeasureStretch(g, s.H)
	fmt.Printf("observed: max stretch %.3f, avg %.3f over %d pairs\n",
		prof.MaxStretch, prof.AvgStretch, prof.Pairs)

	if *dotOut != "" {
		if err := writeDOT(*dotOut, g, s); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := writeEdgeList(f, s.H); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *outFile)
	}
}

func makeGraph(inFile, kind string, n int, side float64, dim int, p float64, seed int64) (*remspan.Graph, error) {
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		gg, err := graph.ReadEdgeList(f)
		if err != nil {
			return nil, err
		}
		return remspan.FromEdges(gg.N(), toPairs(gg)), nil
	}
	switch kind {
	case "udg":
		return remspan.RandomUDG(n, side, seed), nil
	case "ubg":
		return remspan.RandomUBG(n, dim, side, seed), nil
	case "er":
		return remspan.ErdosRenyi(n, p, seed), nil
	case "grid":
		w := 1
		for w*w < n {
			w++
		}
		return remspan.Grid(w, w), nil
	case "ring":
		return remspan.Ring(n), nil
	case "hypercube":
		d := 0
		for 1<<d < n {
			d++
		}
		return remspan.Hypercube(d), nil
	}
	return nil, fmt.Errorf("unknown generator %q", kind)
}

func runCentralized(g *remspan.Graph, algo string, k int, eps float64) (*remspan.Spanner, error) {
	switch algo {
	case "exact":
		return remspan.Exact(g), nil
	case "kconn":
		return remspan.KConnecting(g, k), nil
	case "2conn":
		return remspan.TwoConnecting(g), nil
	case "lowstretch":
		return remspan.LowStretch(g, eps)
	}
	return nil, fmt.Errorf("unknown algorithm %q", algo)
}

func runDistributed(g *remspan.Graph, algo string, k int, eps float64) (*remspan.Spanner, error) {
	var (
		a  remspan.Algorithm
		sp *remspan.Spanner
	)
	switch algo {
	case "exact":
		a, sp = remspan.AlgoExact, remspan.Exact(g)
	case "kconn":
		a, sp = remspan.AlgoKConnecting, remspan.KConnecting(g, k)
	case "2conn":
		a, sp = remspan.AlgoTwoConnecting, remspan.TwoConnecting(g)
	case "lowstretch":
		low, err := remspan.LowStretch(g, eps)
		if err != nil {
			return nil, err
		}
		a, sp = remspan.AlgoLowStretch, low
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
	res, err := remspan.RunDistributed(g, a, k, eps)
	if err != nil {
		return nil, err
	}
	lsMsgs, lsWords := remspan.FullLinkStateCost(g)
	fmt.Printf("distributed: rounds=%d messages=%d words=%d (full link-state: %d msgs, %d words)\n",
		res.Rounds, res.Messages, res.Words, lsMsgs, lsWords)
	sp.H = res.H
	return sp, nil
}

func toPairs(g *graph.Graph) [][2]int {
	var out [][2]int
	g.EachEdge(func(u, v int) { out = append(out, [2]int{u, v}) })
	return out
}

func writeDOT(path string, g *remspan.Graph, s *remspan.Spanner) error {
	gg := graph.FromEdges(g.N(), g.Edges())
	hl := graph.NewEdgeSet(g.N())
	for _, e := range s.H.Edges() {
		hl.Add(e[0], e[1])
	}
	return os.WriteFile(path, []byte(graph.DOT(gg, "remspan", hl)), 0o644)
}

func writeEdgeList(f *os.File, h *remspan.Graph) error {
	return graph.WriteEdgeList(f, graph.FromEdges(h.N(), h.Edges()))
}
