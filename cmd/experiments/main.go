// Command experiments regenerates the paper's tables, figure and
// quantitative claims (the experiment index of DESIGN.md §4).
//
// Usage:
//
//	experiments -list
//	experiments -run E3            # one experiment, full size
//	experiments -all -quick        # everything at CI scale
//	experiments -all -out results.txt
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"remspan/internal/expt"
	"remspan/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable body of the command: it parses args, writes the
// selected experiment output to stdout (and -out / -csv targets), and
// returns instead of exiting so the smoke tests can drive it.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list  = fs.Bool("list", false, "list experiments and exit")
		runID = fs.String("run", "", "run a single experiment by id (e.g. E3)")
		all   = fs.Bool("all", false, "run every experiment")
		quick = fs.Bool("quick", false, "reduced sizes (seconds instead of minutes)")
		seed  = fs.Int64("seed", 1, "base RNG seed")
		out   = fs.String("out", "", "also write output to this file")
		csv   = fs.String("csv", "", "directory to write one CSV per experiment")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help already printed the usage; exit 0
		}
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(stdout, f)
	}

	if *list {
		for _, e := range expt.All() {
			fmt.Fprintf(w, "%-4s %-45s reproduces %s\n", e.ID, e.Title, e.Ref)
		}
		return nil
	}

	cfg := expt.Config{Quick: *quick, Seed: *seed}
	switch {
	case *runID != "":
		e, ok := expt.Lookup(*runID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *runID)
		}
		fmt.Fprintf(w, "[%s] %s — reproduces %s\n", e.ID, e.Title, e.Ref)
		t, err := e.Run(cfg)
		if err != nil {
			return err
		}
		t.Fprint(w)
		return writeCSV(*csv, e.ID, t)
	case *all:
		if *csv == "" {
			return expt.RunAll(cfg, w)
		}
		for _, e := range expt.All() {
			fmt.Fprintf(w, "\n[%s] %s — reproduces %s\n", e.ID, e.Title, e.Ref)
			t, err := e.Run(cfg)
			if err != nil {
				return err
			}
			t.Fprint(w)
			if err := writeCSV(*csv, e.ID, t); err != nil {
				return err
			}
		}
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -list, -run or -all")
	}
}

// writeCSV dumps one experiment table as CSV under dir (no-op when dir
// is empty).
func writeCSV(dir, id string, t *stats.Table) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
