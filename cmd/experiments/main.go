// Command experiments regenerates the paper's tables, figure and
// quantitative claims (the experiment index of DESIGN.md §4).
//
// Usage:
//
//	experiments -list
//	experiments -run E3            # one experiment, full size
//	experiments -all -quick        # everything at CI scale
//	experiments -all -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"remspan/internal/expt"
	"remspan/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		runID = flag.String("run", "", "run a single experiment by id (e.g. E3)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced sizes (seconds instead of minutes)")
		seed  = flag.Int64("seed", 1, "base RNG seed")
		out   = flag.String("out", "", "also write output to this file")
		csv   = flag.String("csv", "", "directory to write one CSV per experiment")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *list {
		for _, e := range expt.All() {
			fmt.Fprintf(w, "%-4s %-45s reproduces %s\n", e.ID, e.Title, e.Ref)
		}
		return
	}

	cfg := expt.Config{Quick: *quick, Seed: *seed}
	switch {
	case *runID != "":
		e, ok := expt.Lookup(*runID)
		if !ok {
			log.Fatalf("unknown experiment %q (use -list)", *runID)
		}
		fmt.Fprintf(w, "[%s] %s — reproduces %s\n", e.ID, e.Title, e.Ref)
		t, err := e.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t.Fprint(w)
		writeCSV(*csv, e.ID, t)
	case *all:
		if *csv == "" {
			if err := expt.RunAll(cfg, w); err != nil {
				log.Fatal(err)
			}
			return
		}
		for _, e := range expt.All() {
			fmt.Fprintf(w, "\n[%s] %s — reproduces %s\n", e.ID, e.Title, e.Ref)
			t, err := e.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			t.Fprint(w)
			writeCSV(*csv, e.ID, t)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeCSV dumps one experiment table as CSV under dir (no-op when dir
// is empty).
func writeCSV(dir, id string, t *stats.Table) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
}
