package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke tests for the experiments binary (previously [no test files]):
// the command plumbing — listing, single-run dispatch, CSV export and
// error paths — runs under `go test ./...` and go vet.

func TestListEnumeratesAllExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E7", "E16", "E17"} {
		if !strings.Contains(out, id+" ") && !strings.Contains(out, id+"  ") {
			t.Fatalf("listing lacks %s:\n%s", id, out)
		}
	}
	if got := strings.Count(out, "reproduces"); got != 17 {
		t.Fatalf("listed %d experiments, want 17", got)
	}
}

func TestRunSingleExperimentQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E7", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Distributed RemSpan") || strings.Contains(out, "FAIL") {
		t.Fatalf("unexpected E7 output:\n%s", out)
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-run", "E7", "-quick", "-csv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "E7.csv")); len(m) != 1 {
		t.Fatalf("E7.csv not written under %s", dir)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E99"}, &buf); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}
