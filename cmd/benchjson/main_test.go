package main

import (
	"encoding/json"
	"testing"
)

// The benchjson suites previously ran only as a CI side effect of the
// binary; these smoke tests pin that every suite produces valid JSON at
// tiny sizes in quick mode (one timed iteration per cell), so a broken
// record shape or a panicking workload fails `go test ./...` directly.

func runQuick(t *testing.T, f func() []byte) map[string]any {
	t.Helper()
	quickMode = true
	defer func() { quickMode = false }()
	data := f()
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("suite emitted invalid JSON: %v", err)
	}
	ctx, ok := doc["context"].(map[string]any)
	if !ok {
		t.Fatal("report lacks a context block")
	}
	cpus, ok := ctx["cpu_list"].([]any)
	if !ok || len(cpus) == 0 {
		t.Fatalf("context lacks the cpu_list arm record: %v", ctx)
	}
	return doc
}

// checkCPUStamps asserts every record in the named sections carries a
// positive per-record gomaxprocs stamp (the -cpu sweep provenance).
func checkCPUStamps(t *testing.T, doc map[string]any, sections ...string) {
	t.Helper()
	for _, sec := range sections {
		recs, ok := doc[sec].([]any)
		if !ok {
			t.Fatalf("report lacks section %q", sec)
		}
		for _, rec := range recs {
			row := rec.(map[string]any)
			if v, _ := row["gomaxprocs"].(float64); v < 1 {
				t.Fatalf("%s record lacks a gomaxprocs stamp: %v", sec, row)
			}
		}
	}
}

func TestConstructSuiteSmoke(t *testing.T) {
	doc := runQuick(t, func() []byte { return runConstruct(80, 3, 1, nil) })
	if got := len(doc["benchmarks"].([]any)); got != 4 {
		t.Fatalf("construct suite emitted %d records, want 4", got)
	}
	checkCPUStamps(t, doc, "benchmarks")
}

func TestConstructScaleArmsSmoke(t *testing.T) {
	doc := runQuick(t, func() []byte { return runConstruct(80, 3, 1, []int{500}) })
	// 4 dense cases + 1 scale size.
	recs := doc["benchmarks"].([]any)
	if len(recs) != 5 {
		t.Fatalf("construct suite emitted %d records, want 5", len(recs))
	}
	var scale map[string]any
	for _, rec := range recs {
		row := rec.(map[string]any)
		if row["name"] == "ConstructExactScale" {
			scale = row
		}
	}
	if scale == nil {
		t.Fatal("no ConstructExactScale record emitted")
	}
	if scale["n"].(float64) != 500 || scale["edges"].(float64) <= 0 {
		t.Fatalf("degenerate scale record: %v", scale)
	}
}

func TestCPUSweepDoublesRecords(t *testing.T) {
	cpuArms = []int{1, 2}
	defer func() { cpuArms = nil }()
	doc := runQuick(t, func() []byte { return runConstruct(80, 3, 1, nil) })
	// Two GOMAXPROCS arms double the 4 dense records.
	recs := doc["benchmarks"].([]any)
	if len(recs) != 8 {
		t.Fatalf("two-arm sweep emitted %d records, want 8", len(recs))
	}
	seen := map[float64]int{}
	for _, rec := range recs {
		seen[rec.(map[string]any)["gomaxprocs"].(float64)]++
	}
	if seen[1] != 4 || seen[2] != 4 {
		t.Fatalf("arm stamps uneven across records: %v", seen)
	}
	ctx := doc["context"].(map[string]any)
	cpus := ctx["cpu_list"].([]any)
	if len(cpus) != 2 || cpus[0].(float64) != 1 || cpus[1].(float64) != 2 {
		t.Fatalf("context cpu_list does not record the sweep: %v", cpus)
	}
}

func TestChurnSuiteSmoke(t *testing.T) {
	doc := runQuick(t, func() []byte { return runChurn([]int{300}, 8, 1, 16) })
	// 4 builders × 2 localities × 3 modes.
	if got := len(doc["benchmarks"].([]any)); got != 24 {
		t.Fatalf("churn suite emitted %d records, want 24", got)
	}
	checkCPUStamps(t, doc, "benchmarks")
}

func TestVerifySuiteSmoke(t *testing.T) {
	doc := runQuick(t, func() []byte { return runVerify([]int{200}, nil, 24, 1) })
	// 2 workloads × 3 ops × 2 engines.
	if got := len(doc["benchmarks"].([]any)); got != 12 {
		t.Fatalf("verify suite emitted %d records, want 12", got)
	}
	checkCPUStamps(t, doc, "benchmarks")
}

func TestVerifyBigSizesBitparallelOnly(t *testing.T) {
	doc := runQuick(t, func() []byte { return runVerify(nil, []int{200}, 24, 1) })
	// 1 workload × 3 ops × bitparallel engine only.
	recs := doc["benchmarks"].([]any)
	if len(recs) != 3 {
		t.Fatalf("verify big arm emitted %d records, want 3", len(recs))
	}
	for _, rec := range recs {
		row := rec.(map[string]any)
		if row["engine"] != "bitparallel" {
			t.Fatalf("big arm ran a scalar reference: %v", row)
		}
	}
}

func TestDistsimSuiteSmoke(t *testing.T) {
	doc := runQuick(t, func() []byte { return runDistsim([]int{300}, 8, 1, 5) })
	// 2 builders × 2 engines static, 1 live row.
	if got := len(doc["static"].([]any)); got != 4 {
		t.Fatalf("distsim suite emitted %d static records, want 4", got)
	}
	live := doc["live"].([]any)
	if len(live) != 1 {
		t.Fatalf("distsim suite emitted %d live records, want 1", len(live))
	}
	row := live[0].(map[string]any)
	if row["word_saving_vs_full_ls"].(float64) <= 1 {
		t.Fatalf("live run shows no saving vs full link-state: %v", row)
	}
	checkCPUStamps(t, doc, "static", "live")
}

func TestRoutingSuiteSmoke(t *testing.T) {
	// 10 ticks: the faulty replicated arm heals at ticks/2 and needs a
	// gapPatience-bounded window after that to resync back to lag 0.
	doc := runQuick(t, func() []byte { return runRouting([]int{300}, []int{200}, 24, 8, 1, 10, 64, 4096, 4) })
	// 2 workloads × 2 engines build, 1 live row.
	build := doc["build"].([]any)
	if len(build) != 4 {
		t.Fatalf("routing suite emitted %d build records, want 4", len(build))
	}
	for _, rec := range build {
		row := rec.(map[string]any)
		if row["owners"].(float64) <= 0 || row["ns_per_op"].(float64) <= 0 {
			t.Fatalf("degenerate build record: %v", row)
		}
	}
	live := doc["live"].([]any)
	if len(live) != 1 {
		t.Fatalf("routing suite emitted %d live records, want 1", len(live))
	}
	row := live[0].(map[string]any)
	if row["final_epoch"].(float64) < 2 {
		t.Fatalf("live run never published an epoch: %v", row)
	}
	if row["queries_per_sec"].(float64) <= 0 {
		t.Fatalf("no query throughput measured: %v", row)
	}
	// Replicated tier: clean + faulty arm on the smallest live size.
	repl := doc["replicated"].([]any)
	if len(repl) != 2 {
		t.Fatalf("routing suite emitted %d replicated records, want 2", len(repl))
	}
	for _, rec := range repl {
		row := rec.(map[string]any)
		if row["queries_per_sec"].(float64) <= 0 {
			t.Fatalf("replicated arm measured no throughput: %v", row)
		}
		if row["failed_queries"].(float64) != 0 {
			t.Fatalf("replicated arm dropped queries on the floor: %v", row)
		}
		faults := row["faults"].(bool)
		rt := row["recovery_ticks"].(float64)
		if !faults && rt != 0 {
			t.Fatalf("clean arm reports recovery ticks: %v", row)
		}
		if faults && rt < 0 {
			t.Fatalf("faulty arm never recovered to lag 0: %v", row)
		}
	}
	checkCPUStamps(t, doc, "build", "live", "replicated")
}
