// Command benchjson runs the spanner-construction micro-benchmarks
// (the same workloads as BenchmarkConstruct* in bench_test.go) and
// emits a machine-readable JSON report, so the performance trajectory
// of the construction pipeline is tracked across PRs:
//
//	go run ./cmd/benchjson -n 400 -out BENCH_construct.json
//
// Each record carries time/op, allocations/op, bytes/op and the
// constructed edge count; "context" pins the workload parameters the
// numbers were measured under.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"remspan"
)

type record struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Edges       int     `json:"edges"`
	Iterations  int     `json:"iterations"`
}

type report struct {
	Context struct {
		N          int    `json:"n"`
		Degree     int    `json:"target_degree"`
		Seed       int64  `json:"seed"`
		GraphEdges int    `json:"graph_edges"`
		GoVersion  string `json:"go_version"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"context"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	n := flag.Int("n", 400, "graph size (vertices)")
	deg := flag.Int("deg", 4, "target average degree of the random UDG")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "BENCH_construct.json", "output path (- for stdout)")
	flag.Parse()

	g := remspan.RandomUDG(*n, float64(*deg), *seed)

	var rep report
	rep.Context.N = g.N()
	rep.Context.Degree = *deg
	rep.Context.Seed = *seed
	rep.Context.GraphEdges = g.M()
	rep.Context.GoVersion = runtime.Version()
	rep.Context.GOMAXPROCS = runtime.GOMAXPROCS(0)

	cases := []struct {
		name string
		run  func() int
	}{
		{"ConstructExact", func() int { return remspan.Exact(g).Edges() }},
		{"ConstructKConnecting3", func() int { return remspan.KConnecting(g, 3).Edges() }},
		{"ConstructTwoConnecting", func() int { return remspan.TwoConnecting(g).Edges() }},
		{"ConstructLowStretch", func() int { return remspan.LowStretch(g, 0.5).Edges() }},
	}
	for _, c := range cases {
		edges := 0
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				edges = c.run()
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, record{
			Name:        c.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Edges:       edges,
			Iterations:  res.N,
		})
		fmt.Fprintf(os.Stderr, "%-24s %12.0f ns/op %8d allocs/op %6d edges\n",
			c.name, float64(res.T.Nanoseconds())/float64(res.N), res.AllocsPerOp(), edges)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
