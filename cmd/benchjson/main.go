// Command benchjson runs the performance suites and emits
// machine-readable JSON reports so the trajectory is tracked across
// PRs:
//
//	go run ./cmd/benchjson -suite construct -n 400 -out BENCH_construct.json
//	go run ./cmd/benchjson -suite churn -churn-sizes 2000,10000,50000 -out BENCH_churn.json
//
// The construct suite mirrors the BenchmarkConstruct* micro-benchmarks
// (time/op, allocations/op, edge counts for the four spanner families).
//
// The churn suite measures incremental maintenance throughput
// (changes/sec) for all four tree builders under localized and
// scattered edge churn, at several graph sizes, in three modes:
// "single" (one change per repair), "batch" (ApplyBatch with unioned
// dirty sets) and "snapshot" (the pre-delta ablation baseline that
// re-snapshots the CSR per change). Each record carries allocations and
// trees rebuilt per change; "batch" context pins the workload parameters.
//
// The verify suite (-suite verify → BENCH_verify.json) measures
// all-pairs verification — spanner.Check, spanner.MeasureProfile and
// oracle.Validate — on the scalar reference engine and the
// word-parallel 64-source bit-packed engine, at several graph sizes,
// recording the bit-parallel speedup per operation.
//
// The distsim suite (-suite distsim → BENCH_distsim.json) measures the
// distributed protocol simulation (DESIGN.md §3d): static RemSpan runs
// on the flat-state engine vs the message-level reference (with the
// engine speedup), and live-mobility runs where per-tick unit-disk
// diffs drive dirty-root incremental re-advertisement, compared against
// OSPF-style full link-state re-flooding.
//
// The routing suite (-suite routing → BENCH_routing.json) measures the
// forwarding plane (DESIGN.md §3e): full table construction on the
// scalar per-owner builder vs the word-parallel 64-owner engine (owner
// counts are capped at large n — a full 50k FIB is n² state), and live
// mobility-driven churn through the epoch-swapped routing.Store —
// writer tick cost, lock-free query throughput, and the stale-route
// window between a physical change and the next control-plane batch.
// The replicated section (DESIGN.md §3f) runs the same live workload
// through the fault-tolerant replica tier: one writer shipping epoch
// diffs to N read replicas, GOMAXPROCS failover clients hammering the
// lock-free query surface concurrently, once on a clean transport and
// once under seeded faults (drop+delay plus a scripted crash and
// partition) — recording aggregate QPS, delta-vs-full shipping words,
// the stale-read SLO (fresh fraction, lag histogram tail, degraded and
// failed counts) and the recovery time back to lag 0 after heal.
//
// -quick replaces testing.Benchmark with one timed iteration per cell —
// the smoke-test and CI mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"remspan"
	"remspan/internal/distsim"
	"remspan/internal/domtree"
	"remspan/internal/dynamic"
	"remspan/internal/gen"
	"remspan/internal/graph"
	"remspan/internal/mobility"
	"remspan/internal/oracle"
	"remspan/internal/replica"
	"remspan/internal/routing"
	"remspan/internal/spanner"
)

// quickMode is set by -quick: every benchmark cell runs one timed
// iteration (with malloc counters from runtime.MemStats) instead of the
// auto-scaling testing.Benchmark loop.
var quickMode bool

// cpuArms is the -cpu sweep: every suite repeats its cells once per
// listed GOMAXPROCS value, stamping each record with the arm it ran
// under (the core-scaling ablation of the shard-parallel engine).
// Empty means one arm at the current GOMAXPROCS.
var cpuArms []int

// cpuList resolves the active sweep.
func cpuList() []int {
	if len(cpuArms) == 0 {
		return []int{runtime.GOMAXPROCS(0)}
	}
	return cpuArms
}

// forEachCPU runs body once per -cpu arm with GOMAXPROCS pinned to the
// arm's value for the duration (restored after).
func forEachCPU(body func(cpu int)) {
	for _, c := range cpuList() {
		prev := runtime.GOMAXPROCS(c)
		body(c)
		runtime.GOMAXPROCS(prev)
	}
}

// benchRes is the subset of testing.BenchmarkResult the reports use,
// producible by either measurement mode.
type benchRes struct {
	NsPerOp     float64
	AllocsPerOp int64
	BytesPerOp  int64
	N           int
}

// bench measures f in the current mode.
func bench(f func()) benchRes {
	if quickMode {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		f()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		return benchRes{
			NsPerOp:     float64(elapsed.Nanoseconds()),
			AllocsPerOp: int64(after.Mallocs - before.Mallocs),
			BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
			N:           1,
		}
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	return benchRes{
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		N:           res.N,
	}
}

func mustSpanner(s *remspan.Spanner, err error) *remspan.Spanner {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	return s
}

type constructRecord struct {
	Name        string  `json:"name"`
	N           int     `json:"n,omitempty"` // scale arms; the context n otherwise
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Edges       int     `json:"edges"`
	Iterations  int     `json:"iterations"`
}

type constructReport struct {
	Context struct {
		N          int     `json:"n"`
		Side       float64 `json:"udg_side"`
		AvgDegree  float64 `json:"avg_degree"`
		Seed       int64   `json:"seed"`
		GraphEdges int     `json:"graph_edges"`
		ScaleSizes []int   `json:"scale_sizes,omitempty"`
		GoVersion  string  `json:"go_version"`
		GOMAXPROCS int     `json:"gomaxprocs"`
		CPUList    []int   `json:"cpu_list"`
	} `json:"context"`
	Benchmarks []constructRecord `json:"benchmarks"`
}

type churnRecord struct {
	Builder               string  `json:"builder"`
	Radius                int     `json:"radius"`
	GOMAXPROCS            int     `json:"gomaxprocs"`
	N                     int     `json:"n"`
	GraphEdges            int     `json:"graph_edges"`
	Locality              string  `json:"locality"`
	Mode                  string  `json:"mode"`
	BatchSize             int     `json:"batch_size"`
	NsPerChange           float64 `json:"ns_per_change"`
	AllocsPerChange       float64 `json:"allocs_per_change"`
	BytesPerChange        float64 `json:"bytes_per_change"`
	ChangesPerSec         float64 `json:"changes_per_sec"`
	TreesRebuiltPerChange float64 `json:"trees_rebuilt_per_change"`
	Changes               int64   `json:"changes_measured"`
}

type churnReport struct {
	Context struct {
		Sizes      []int  `json:"sizes"`
		Degree     int    `json:"target_degree"`
		Seed       int64  `json:"seed"`
		BatchSize  int    `json:"batch_size"`
		GoVersion  string `json:"go_version"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		CPUList    []int  `json:"cpu_list"`
	} `json:"context"`
	Benchmarks []churnRecord `json:"benchmarks"`
}

type verifyRecord struct {
	Workload        string  `json:"workload"`
	Op              string  `json:"op"`
	Engine          string  `json:"engine"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	N               int     `json:"n"`
	GraphEdges      int     `json:"graph_edges"`
	SpannerEdges    int     `json:"spanner_edges"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	SpeedupVsScalar float64 `json:"speedup_vs_scalar,omitempty"`
	Iterations      int     `json:"iterations"`
}

type verifyReport struct {
	Context struct {
		Sizes      []int  `json:"sizes"`
		BigSizes   []int  `json:"big_sizes,omitempty"`
		Degree     int    `json:"target_degree"`
		Seed       int64  `json:"seed"`
		GoVersion  string `json:"go_version"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		CPUList    []int  `json:"cpu_list"`
	} `json:"context"`
	Benchmarks []verifyRecord `json:"benchmarks"`
}

func main() {
	suite := flag.String("suite", "construct", "benchmark suite: construct | churn | verify | distsim | routing")
	n := flag.Int("n", 400, "construct suite: graph size (vertices)")
	side := flag.Float64("side", 4, "construct suite: UDG square side (the historical dense-graph workload; the real mean degree lands near n/5 and is reported as avg_degree)")
	churnDeg := flag.Int("churn-deg", 8, "churn suite: target average UDG degree (keep > ~4.5, the percolation threshold)")
	seed := flag.Int64("seed", 1, "generator seed")
	sizes := flag.String("churn-sizes", "2000,10000,50000", "churn suite: comma-separated graph sizes")
	vsizes := flag.String("verify-sizes", "2000,10000,50000", "verify suite: comma-separated graph sizes")
	verifyDeg := flag.Int("verify-deg", 24, "verify suite: target average UDG degree (the ER workload is pinned at table 1's mean degree 16)")
	batch := flag.Int("batch", 64, "churn suite: ApplyBatch size for the batch mode")
	dsizes := flag.String("distsim-sizes", "2000,10000,50000", "distsim suite: comma-separated graph sizes")
	distsimDeg := flag.Int("distsim-deg", 8, "distsim suite: target average UDG degree")
	distsimTicks := flag.Int("distsim-ticks", 100, "distsim suite: mobility ticks per live run")
	rsizes := flag.String("routing-sizes", "2000,10000,50000", "routing suite: comma-separated graph sizes for table construction")
	rlsizes := flag.String("routing-live-sizes", "2000,10000", "routing suite: comma-separated graph sizes for the live churn store")
	routingDeg := flag.Int("routing-deg", 24, "routing suite: target average UDG degree (the ER workload is pinned at mean degree 16)")
	routingTicks := flag.Int("routing-ticks", 50, "routing suite: mobility ticks per live run")
	routingQueries := flag.Int("routing-queries", 1024, "routing suite: store queries per tick")
	routingLiveDeg := flag.Int("routing-live-deg", 8, "routing suite: target average UDG degree of the mobility fleet (the distsim live workload)")
	routingOwnerCap := flag.Int("routing-owner-cap", 10000, "routing suite: max owners per table-construction cell (a full n-owner FIB is n² state, so 50k samples a ball-clustered subset)")
	routingReplicas := flag.Int("routing-replicas", 4, "routing suite: read replicas in the replicated-tier cells")
	scaleSizes := flag.String("construct-scale-sizes", "", "construct suite: extra constant-degree (8) UDG sizes for the kgreedy1 scale arms (e.g. 200000,1000000); empty disables")
	vbigSizes := flag.String("verify-big-sizes", "", "verify suite: extra UDG sizes measured on the bit-parallel engine only (the scalar reference is quadratic and infeasible there); empty disables")
	cpu := flag.String("cpu", "", "comma-separated GOMAXPROCS arms; every cell repeats once per arm with a per-record gomaxprocs stamp (empty: current GOMAXPROCS only)")
	quick := flag.Bool("quick", false, "one timed iteration per cell instead of testing.Benchmark (smoke/CI mode)")
	out := flag.String("out", "", "output path (- for stdout; default BENCH_<suite>.json)")
	flag.Parse()
	quickMode = *quick
	cpuArms = parseCPUs(*cpu)

	if *out == "" {
		*out = "BENCH_" + *suite + ".json"
	}
	var data []byte
	switch *suite {
	case "construct":
		data = runConstruct(*n, *side, *seed, parseSizesOpt(*scaleSizes))
	case "churn":
		data = runChurn(parseSizes(*sizes), *churnDeg, *seed, *batch)
	case "verify":
		data = runVerify(parseSizes(*vsizes), parseSizesOpt(*vbigSizes), *verifyDeg, *seed)
	case "distsim":
		data = runDistsim(parseSizes(*dsizes), *distsimDeg, *seed, *distsimTicks)
	case "routing":
		data = runRouting(parseSizes(*rsizes), parseSizes(*rlsizes), *routingDeg, *routingLiveDeg, *seed,
			*routingTicks, *routingQueries, *routingOwnerCap, *routingReplicas)
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown suite %q\n", *suite)
		os.Exit(1)
	}
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parseSizes(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 16 {
			fmt.Fprintf(os.Stderr, "benchjson: bad size %q\n", f)
			os.Exit(1)
		}
		out = append(out, v)
	}
	return out
}

// parseSizesOpt is parseSizes with "" meaning none.
func parseSizesOpt(s string) []int {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	return parseSizes(s)
}

func parseCPUs(s string) []int {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 || v > 1024 {
			fmt.Fprintf(os.Stderr, "benchjson: bad -cpu value %q\n", f)
			os.Exit(1)
		}
		out = append(out, v)
	}
	return out
}

func marshal(rep any) []byte {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	return append(data, '\n')
}

// runConstruct benchmarks the four constructions on the historical
// dense workload: n points in a fixed side×side square (NOT a constant
// average degree — density, and with it mean degree, grows with n; the
// actual mean degree is recorded in the context). scaleSizes adds
// kgreedy1 arms on constant-degree-8 UDGs at production sizes — the
// n ≥ 1M graph-layer scaling cells.
func runConstruct(n int, side float64, seed int64, scaleSizes []int) []byte {
	g := remspan.RandomUDG(n, side, seed)

	var rep constructReport
	rep.Context.N = g.N()
	rep.Context.Side = side
	rep.Context.AvgDegree = 2 * float64(g.M()) / float64(g.N())
	rep.Context.Seed = seed
	rep.Context.GraphEdges = g.M()
	rep.Context.ScaleSizes = scaleSizes
	rep.Context.GoVersion = runtime.Version()
	rep.Context.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Context.CPUList = cpuList()

	const scaleDeg = 8
	scaleGraphs := make([]*graph.Graph, len(scaleSizes))
	for i, sn := range scaleSizes {
		sside := math.Sqrt(math.Pi * float64(sn) / float64(scaleDeg))
		gg := remspan.RandomUDG(sn, sside, seed)
		scaleGraphs[i] = graph.FromEdges(gg.N(), gg.Edges())
	}

	cases := []struct {
		name string
		run  func() int
	}{
		{"ConstructExact", func() int { return remspan.Exact(g).Edges() }},
		{"ConstructKConnecting3", func() int { return remspan.KConnecting(g, 3).Edges() }},
		{"ConstructTwoConnecting", func() int { return remspan.TwoConnecting(g).Edges() }},
		{"ConstructLowStretch", func() int { return mustSpanner(remspan.LowStretch(g, 0.5)).Edges() }},
	}
	forEachCPU(func(cpu int) {
		for _, c := range cases {
			edges := 0
			res := bench(func() { edges = c.run() })
			rep.Benchmarks = append(rep.Benchmarks, constructRecord{
				Name:        c.name,
				GOMAXPROCS:  cpu,
				NsPerOp:     res.NsPerOp,
				AllocsPerOp: res.AllocsPerOp,
				BytesPerOp:  res.BytesPerOp,
				Edges:       edges,
				Iterations:  res.N,
			})
			fmt.Fprintf(os.Stderr, "%-24s cpu=%-3d %12.0f ns/op %8d allocs/op %6d edges\n",
				c.name, cpu, res.NsPerOp, res.AllocsPerOp, edges)
		}
		for i, sg := range scaleGraphs {
			edges := 0
			res := bench(func() { edges = spanner.Exact(sg).H.Len() })
			rep.Benchmarks = append(rep.Benchmarks, constructRecord{
				Name:        "ConstructExactScale",
				N:           scaleSizes[i],
				GOMAXPROCS:  cpu,
				NsPerOp:     res.NsPerOp,
				AllocsPerOp: res.AllocsPerOp,
				BytesPerOp:  res.BytesPerOp,
				Edges:       edges,
				Iterations:  res.N,
			})
			fmt.Fprintf(os.Stderr, "%-24s cpu=%-3d n=%-8d %12.0f ns/op %6d edges\n",
				"ConstructExactScale", cpu, scaleSizes[i], res.NsPerOp, edges)
		}
	})
	return marshal(&rep)
}

// candidatePairs returns the pool of vertex pairs a churn run toggles.
// Localized churn confines the pool to a BFS ball around a max-degree
// vertex (the paper's locality dividend case); scattered churn draws
// from the whole vertex set.
func candidatePairs(g *graph.Graph, localized bool, rng *rand.Rand) [][2]int {
	pool := 256
	var members []int32
	if localized {
		center := 0
		for u := 1; u < g.N(); u++ {
			if g.Degree(u) > g.Degree(center) {
				center = u
			}
		}
		dist := graph.BFS(g, center)
		for radius := int32(4); len(members) < 64 && radius <= 8; radius++ {
			members = members[:0]
			for v, d := range dist {
				if d != graph.Unreached && d <= radius {
					members = append(members, int32(v))
				}
			}
		}
	} else {
		for v := 0; v < g.N(); v++ {
			members = append(members, int32(v))
		}
	}
	// Canonicalize (u < v) and dedupe so the pool holds distinct
	// undirected pairs: batches dealt from it then contain no repeated
	// edge, and every toggle in a batch applies.
	seen := make(map[[2]int]struct{}, pool)
	out := make([][2]int, 0, pool)
	for attempts := 0; len(out) < pool && attempts < 64*pool; attempts++ {
		u := int(members[rng.Intn(len(members))])
		v := int(members[rng.Intn(len(members))])
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		p := [2]int{u, v}
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		out = append(out, p)
	}
	return out
}

// churnBuilders gates the builder set by size: past 100k vertices the
// radius-2/3 families' initial full builds dominate the run (their
// balls are 1–2 hops larger), and the radius-1 production builder
// already trends the locality dividend, so the scale cells measure it
// alone.
func churnBuilders(n int) []dynamic.BuilderSpec {
	specs := dynamic.Builders()
	if n > 100000 {
		return specs[:1] // kgreedy1
	}
	return specs
}

func runChurn(sizes []int, deg int, seed int64, batchSize int) []byte {
	var rep churnReport
	rep.Context.Sizes = sizes
	rep.Context.Degree = deg
	rep.Context.Seed = seed
	rep.Context.BatchSize = batchSize
	rep.Context.GoVersion = runtime.Version()
	rep.Context.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Context.CPUList = cpuList()

	for _, n := range sizes {
		// Side grows with √n so the average degree stays ≈ deg at every
		// size (UDG degree is π·density; density = n/side²) — the churn
		// trajectory then isolates the effect of n, not of densification.
		// deg must sit above the 2D continuum-percolation threshold
		// (mean degree ≈ 4.5): RandomUDG keeps only the largest
		// component's edges, so a subcritical target would yield mostly
		// isolated vertices and a vacuous benchmark.
		side := math.Sqrt(math.Pi * float64(n) / float64(deg))
		gg := remspan.RandomUDG(n, side, seed)
		g := graph.FromEdges(gg.N(), gg.Edges())
		forEachCPU(func(cpu int) {
			for _, bb := range churnBuilders(n) {
				for _, locality := range []string{"localized", "scattered"} {
					pairs := candidatePairs(g, locality == "localized", rand.New(rand.NewSource(seed+7)))
					for _, mode := range []string{"single", "batch", "snapshot"} {
						rec := measureChurn(g, bb.Build, bb.Radius, pairs, mode, batchSize)
						rec.Builder = bb.Name
						rec.Radius = bb.Radius
						rec.GOMAXPROCS = cpu
						rec.N = g.N()
						rec.GraphEdges = g.M()
						rec.Locality = locality
						rep.Benchmarks = append(rep.Benchmarks, rec)
						fmt.Fprintf(os.Stderr,
							"churn %-8s n=%-6d cpu=%-3d %-9s %-8s %10.0f changes/sec %8.1f allocs/change %7.2f trees/change\n",
							bb.Name, g.N(), cpu, locality, mode, rec.ChangesPerSec,
							rec.AllocsPerChange, rec.TreesRebuiltPerChange)
					}
				}
			}
		})
	}
	return marshal(&rep)
}

// measureChurn benchmarks one (builder, workload, mode) cell. The op is
// one applied change in single/snapshot mode and one ApplyBatch of
// batchSize toggles in batch mode; throughput is normalized to
// changes/sec either way.
func measureChurn(g *graph.Graph, build dynamic.TreeBuilder, radius int, pairs [][2]int, mode string, batchSize int) churnRecord {
	// Own the pool: batch mode shuffles it, and the three mode arms must
	// draw identically-ordered streams from the same pairs to be
	// directly comparable.
	pairs = append([][2]int(nil), pairs...)
	m := dynamic.New(g, radius, build)
	if mode == "snapshot" {
		m.SetSnapshotPerChange(true)
	}
	rng := rand.New(rand.NewSource(99))
	var changes int64
	rebuiltBase := m.TreesRebuilt()
	perOp := 1
	var res benchRes
	if mode == "batch" {
		if batchSize > len(pairs) {
			batchSize = len(pairs)
		}
		perOp = batchSize
		batch := make([]dynamic.Change, batchSize)
		// The pool holds distinct undirected pairs; trimming it to a
		// multiple of the batch size aligns batches with reshuffle
		// boundaries, so pairs within one batch are always distinct,
		// every toggle applies, and ApplyBatch does exactly batchSize
		// changes per op (the changes/sec normalization relies on it).
		pairs = pairs[:len(pairs)/batchSize*batchSize]
		next := len(pairs)
		res = bench(func() {
			for j := range batch {
				if next >= len(pairs) {
					rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
					next = 0
				}
				p := pairs[next]
				next++
				kind := dynamic.AddEdge
				if m.Graph().HasEdge(p[0], p[1]) {
					kind = dynamic.RemoveEdge
				}
				batch[j] = dynamic.Change{Kind: kind, U: p[0], V: p[1]}
			}
			changes += int64(m.ApplyBatch(batch))
		})
	} else {
		res = bench(func() {
			p := pairs[rng.Intn(len(pairs))]
			if m.Graph().HasEdge(p[0], p[1]) {
				m.RemoveEdge(p[0], p[1])
			} else {
				m.AddEdge(p[0], p[1])
			}
			changes++
		})
	}
	rebuilt := m.TreesRebuilt() - rebuiltBase
	nsPerChange := res.NsPerOp / float64(perOp)
	rec := churnRecord{
		Mode:            mode,
		BatchSize:       perOp,
		NsPerChange:     nsPerChange,
		AllocsPerChange: float64(res.AllocsPerOp) / float64(perOp),
		BytesPerChange:  float64(res.BytesPerOp) / float64(perOp),
		ChangesPerSec:   1e9 / nsPerChange,
		Changes:         changes,
	}
	if changes > 0 {
		rec.TreesRebuiltPerChange = float64(rebuilt) / float64(changes)
	}
	return rec
}

// runVerify benchmarks all-pairs verification on the two §4
// reproduction families — Erdős–Rényi at table 1's mean degree 16 and
// UDGs at the target degree — scaled to production sizes: the (1,0)
// exact remote-spanner is checked, profiled and oracle-validated by
// the scalar reference engine and by the word-parallel 64-source
// bit-packed engine.
func runVerify(sizes, bigSizes []int, deg int, seed int64) []byte {
	var rep verifyReport
	rep.Context.Sizes = sizes
	rep.Context.BigSizes = bigSizes
	rep.Context.Degree = deg
	rep.Context.Seed = seed
	rep.Context.GoVersion = runtime.Version()
	rep.Context.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Context.CPUList = cpuList()

	for _, n := range sizes {
		workloads := []struct {
			name string
			g    *graph.Graph
		}{
			{"er16", func() *graph.Graph {
				eg := gen.ErdosRenyi(n, 16/float64(n), rand.New(rand.NewSource(seed)))
				return eg
			}()},
			{"udg", func() *graph.Graph {
				side := math.Sqrt(math.Pi * float64(n) / float64(deg))
				gg := remspan.RandomUDG(n, side, seed)
				return graph.FromEdges(gg.N(), gg.Edges())
			}()},
		}
		for _, wl := range workloads {
			forEachCPU(func(cpu int) { runVerifyWorkload(&rep, wl.name, wl.g, cpu, false) })
		}
	}
	// Big arms: all-pairs work is quadratic, so past the scalar
	// reference's reach only the word-parallel engine is measured (no
	// speedup column — there is nothing tractable to compare against).
	for _, n := range bigSizes {
		side := math.Sqrt(math.Pi * float64(n) / float64(deg))
		gg := remspan.RandomUDG(n, side, seed)
		g := graph.FromEdges(gg.N(), gg.Edges())
		forEachCPU(func(cpu int) { runVerifyWorkload(&rep, "udg", g, cpu, true) })
	}
	return marshal(&rep)
}

func runVerifyWorkload(rep *verifyReport, workload string, g *graph.Graph, cpu int, bitOnly bool) {
	h := spanner.Exact(g).Graph()
	st := spanner.NewStretch(1, 0)
	o := oracle.New(g, h, st)

	type arm struct {
		op, engine string
		run        func()
	}
	arms := []arm{
		{"check", "scalar", func() {
			if v := spanner.CheckScalar(g, h, st); v != nil {
				fmt.Fprintln(os.Stderr, "benchjson: unexpected violation:", v)
				os.Exit(1)
			}
		}},
		{"check", "bitparallel", func() {
			if v := spanner.Check(g, h, st); v != nil {
				fmt.Fprintln(os.Stderr, "benchjson: unexpected violation:", v)
				os.Exit(1)
			}
		}},
		{"profile", "scalar", func() { spanner.MeasureProfileScalar(g, h) }},
		{"profile", "bitparallel", func() { spanner.MeasureProfile(g, h) }},
		{"validate", "scalar", func() { o.ValidateScalar() }},
		{"validate", "bitparallel", func() { o.Validate() }},
	}
	scalarNs := map[string]float64{}
	for _, a := range arms {
		if bitOnly && a.engine == "scalar" {
			continue
		}
		res := bench(a.run)
		rec := verifyRecord{
			Workload: workload, Op: a.op, Engine: a.engine, GOMAXPROCS: cpu,
			N: g.N(), GraphEdges: g.M(), SpannerEdges: h.M(),
			NsPerOp:     res.NsPerOp,
			AllocsPerOp: res.AllocsPerOp,
			BytesPerOp:  res.BytesPerOp,
			Iterations:  res.N,
		}
		if a.engine == "scalar" {
			scalarNs[a.op] = rec.NsPerOp
		} else if s := scalarNs[a.op]; s > 0 {
			rec.SpeedupVsScalar = s / rec.NsPerOp
		}
		rep.Benchmarks = append(rep.Benchmarks, rec)
		fmt.Fprintf(os.Stderr, "verify %-5s %-8s n=%-6d cpu=%-3d %-12s %14.0f ns/op %8d allocs/op speedup %5.1f\n",
			workload, a.op, g.N(), cpu, a.engine, rec.NsPerOp, rec.AllocsPerOp, rec.SpeedupVsScalar)
	}
}

// --- distsim suite ---

type distsimStaticRecord struct {
	Mode               string  `json:"mode"` // "static"
	Engine             string  `json:"engine"`
	Builder            string  `json:"builder"`
	GOMAXPROCS         int     `json:"gomaxprocs"`
	N                  int     `json:"n"`
	GraphEdges         int     `json:"graph_edges"`
	SpannerEdges       int     `json:"spanner_edges"`
	Rounds             int     `json:"rounds"`
	Messages           int64   `json:"messages"`
	Words              int64   `json:"words"`
	FullLSWords        int64   `json:"full_linkstate_words"`
	NsPerOp            float64 `json:"ns_per_op"`
	AllocsPerOp        int64   `json:"allocs_per_op"`
	BytesPerOp         int64   `json:"bytes_per_op"`
	SpeedupVsReference float64 `json:"speedup_vs_reference,omitempty"`
	Iterations         int     `json:"iterations"`
}

type distsimLiveRecord struct {
	Mode              string  `json:"mode"` // "live"
	Builder           string  `json:"builder"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	N                 int     `json:"n"`
	Ticks             int     `json:"ticks"`
	ColdStartNs       float64 `json:"cold_start_ns"`
	NsPerTick         float64 `json:"ns_per_tick"`
	ChangesPerTick    float64 `json:"changes_per_tick"`
	DirtyRootsPerTick float64 `json:"dirty_roots_per_tick"`
	RefloodsPerTick   float64 `json:"refloods_per_tick"`
	WordsPerTick      float64 `json:"words_per_tick"`
	FullWordsPerTick  float64 `json:"full_linkstate_words_per_tick"`
	WordSaving        float64 `json:"word_saving_vs_full_ls"`
}

type distsimReport struct {
	Context struct {
		Sizes      []int   `json:"sizes"`
		Degree     int     `json:"target_degree"`
		Seed       int64   `json:"seed"`
		Ticks      int     `json:"live_ticks"`
		MinSpeed   float64 `json:"live_min_speed"`
		MaxSpeed   float64 `json:"live_max_speed"`
		GoVersion  string  `json:"go_version"`
		GOMAXPROCS int     `json:"gomaxprocs"`
		CPUList    []int   `json:"cpu_list"`
	} `json:"context"`
	Static []distsimStaticRecord `json:"static"`
	Live   []distsimLiveRecord   `json:"live"`
}

// distsimBuilders: the (1,0) MPR construction at every size; the
// radius-2 two-connecting construction up to 10k (its balls are a
// hop larger, and one production radius suffices to trend the 50k
// point).
func distsimBuilders(n int) []dynamic.BuilderSpec {
	specs := dynamic.Builders()
	out := specs[:1] // kgreedy1
	if n <= 10000 {
		out = specs[:2] // + kmis2
	}
	return out
}

// runDistsim benchmarks the distributed protocol simulation: static
// runs (engine vs message-level reference, with the engine speedup and
// the full link-state comparison) and live-mobility runs (per-tick
// dirty-root re-advertisement vs full link-state re-flooding). The
// reference engine's per-node O(n) local view makes it quadratic in n,
// so it is measured only up to 10k.
func runDistsim(sizes []int, deg int, seed int64, ticks int) []byte {
	var rep distsimReport
	const minSpeed, maxSpeed = 0.01, 0.05
	// Quick mode clamps the live runs; the context must record what
	// actually ran, not the flag.
	if quickMode && ticks > 10 {
		ticks = 10
	}
	rep.Context.Sizes = sizes
	rep.Context.Degree = deg
	rep.Context.Seed = seed
	rep.Context.Ticks = ticks
	rep.Context.MinSpeed = minSpeed
	rep.Context.MaxSpeed = maxSpeed
	rep.Context.GoVersion = runtime.Version()
	rep.Context.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Context.CPUList = cpuList()

	algos := map[string]distsim.TreeAlgo{
		"kgreedy1": func(local *graph.Graph, u int) *graph.Tree { return domtree.KGreedy(local, u, 1) },
		"kmis2":    func(local *graph.Graph, u int) *graph.Tree { return domtree.KMIS(local, u, 2) },
	}

	for _, n := range sizes {
		// Constant mean degree across sizes, as in the churn suite.
		side := math.Sqrt(math.Pi * float64(n) / float64(deg))
		gg := remspan.RandomUDG(n, side, seed)
		g := graph.FromEdges(gg.N(), gg.Edges())
		_, fullWords := distsim.FullLinkState(g)

		forEachCPU(func(cpu int) {
			for _, bb := range distsimBuilders(n) {
				var res *distsim.Result
				engRes := bench(func() { res = distsim.RunRemSpan(g, bb.Radius, distsim.TreeBuilder(bb.Build)) })
				rec := distsimStaticRecord{
					Mode: "static", Engine: "engine", Builder: bb.Name, GOMAXPROCS: cpu,
					N: g.N(), GraphEdges: g.M(), SpannerEdges: res.H.Len(),
					Rounds: res.Rounds, Messages: res.Messages, Words: res.Words,
					FullLSWords: fullWords,
					NsPerOp:     engRes.NsPerOp, AllocsPerOp: engRes.AllocsPerOp,
					BytesPerOp: engRes.BytesPerOp, Iterations: engRes.N,
				}
				fmt.Fprintf(os.Stderr, "distsim static %-8s n=%-6d cpu=%-3d engine    %14.0f ns/op %10d words\n",
					bb.Name, g.N(), cpu, engRes.NsPerOp, res.Words)

				// The reference is measured only at sizes where its quadratic
				// local-view cost stays tolerable.
				if n <= 10000 {
					var ref *distsim.Result
					refRes := bench(func() { ref = distsim.RunRemSpanReference(g, bb.Radius, algos[bb.Name]) })
					rep.Static = append(rep.Static, rec)
					refRec := distsimStaticRecord{
						Mode: "static", Engine: "reference", Builder: bb.Name, GOMAXPROCS: cpu,
						N: g.N(), GraphEdges: g.M(), SpannerEdges: ref.H.Len(),
						Rounds: ref.Rounds, Messages: ref.Messages, Words: ref.Words,
						FullLSWords: fullWords,
						NsPerOp:     refRes.NsPerOp, AllocsPerOp: refRes.AllocsPerOp,
						BytesPerOp: refRes.BytesPerOp, Iterations: refRes.N,
					}
					rep.Static = append(rep.Static, refRec)
					// Stamp the speedup on the engine row just appended.
					rep.Static[len(rep.Static)-2].SpeedupVsReference = refRes.NsPerOp / engRes.NsPerOp
					if res.Words != ref.Words || res.Messages != ref.Messages {
						fmt.Fprintln(os.Stderr, "benchjson: engine/reference traffic mismatch")
						os.Exit(1)
					}
					fmt.Fprintf(os.Stderr, "distsim static %-8s n=%-6d cpu=%-3d reference %14.0f ns/op speedup %5.1f×\n",
						bb.Name, g.N(), cpu, refRes.NsPerOp, refRes.NsPerOp/engRes.NsPerOp)
				} else {
					rep.Static = append(rep.Static, rec)
				}
			}

			// Live mobility: drive the tracker/engine primitives directly so
			// cold start and tick time are measured separately.
			liveTicks := ticks
			bb := dynamic.Builders()[0] // kgreedy1
			rng := rand.New(rand.NewSource(seed))
			w := mobility.NewWaypoint(n, side, minSpeed, maxSpeed, rng)
			tr := mobility.NewTracker(w, 1.0)
			start := time.Now()
			e := distsim.NewEngine(tr.Graph(), bb.Radius, distsim.TreeBuilder(bb.Build))
			e.Run()
			cold := time.Since(start)

			var changes, dirty, refloods, words, fullW int64
			changesBuf := make([]dynamic.Change, 0, 1024)
			start = time.Now()
			for tick := 0; tick < liveTicks; tick++ {
				added, removed := tr.Tick()
				changesBuf = changesBuf[:0]
				for _, p := range removed {
					changesBuf = append(changesBuf, dynamic.Change{Kind: dynamic.RemoveEdge, U: int(p[0]), V: int(p[1])})
				}
				for _, p := range added {
					changesBuf = append(changesBuf, dynamic.Change{Kind: dynamic.AddEdge, U: int(p[0]), V: int(p[1])})
				}
				st := e.Reflood(changesBuf)
				changes += int64(st.Applied)
				dirty += int64(st.DirtyRoots)
				refloods += int64(st.Refloods)
				words += st.Words
				fullW += st.FullWords
			}
			tickNs := float64(time.Since(start).Nanoseconds()) / float64(liveTicks)
			saving := 0.0
			if words > 0 {
				saving = float64(fullW) / float64(words)
			}
			rep.Live = append(rep.Live, distsimLiveRecord{
				Mode: "live", Builder: bb.Name, N: n, Ticks: liveTicks, GOMAXPROCS: cpu,
				ColdStartNs:       float64(cold.Nanoseconds()),
				NsPerTick:         tickNs,
				ChangesPerTick:    float64(changes) / float64(liveTicks),
				DirtyRootsPerTick: float64(dirty) / float64(liveTicks),
				RefloodsPerTick:   float64(refloods) / float64(liveTicks),
				WordsPerTick:      float64(words) / float64(liveTicks),
				FullWordsPerTick:  float64(fullW) / float64(liveTicks),
				WordSaving:        saving,
			})
			fmt.Fprintf(os.Stderr, "distsim live   %-8s n=%-6d cpu=%-3d %10.0f ns/tick %8.1f changes/tick saving %6.1f×\n",
				bb.Name, n, cpu, tickNs, float64(changes)/float64(liveTicks), saving)
		})
	}
	return marshal(&rep)
}

// --- routing suite ---

type routingBuildRecord struct {
	Workload        string  `json:"workload"`
	Engine          string  `json:"engine"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	N               int     `json:"n"`
	Owners          int     `json:"owners"`
	GraphEdges      int     `json:"graph_edges"`
	SpannerEdges    int     `json:"spanner_edges"`
	NsPerOp         float64 `json:"ns_per_op"`
	NsPerOwner      float64 `json:"ns_per_owner"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	SpeedupVsScalar float64 `json:"speedup_vs_scalar,omitempty"`
	Iterations      int     `json:"iterations"`
}

type routingLiveRecord struct {
	Mode               string  `json:"mode"` // "live"
	Builder            string  `json:"builder"`
	GOMAXPROCS         int     `json:"gomaxprocs"`
	N                  int     `json:"n"`
	Ticks              int     `json:"ticks"`
	ColdStartNs        float64 `json:"cold_start_ns"`
	NsPerTick          float64 `json:"ns_per_tick"` // writer: ApplyBatch incl. dirty-owner table rebuild
	ChangesPerTick     float64 `json:"changes_per_tick"`
	DirtyOwnersPerTick float64 `json:"dirty_owners_per_tick"`
	AllocsPerTick      float64 `json:"allocs_per_tick"`
	NsPerQuery         float64 `json:"ns_per_query"` // reader: lock-free epoch Route
	QueriesPerSec      float64 `json:"queries_per_sec"`
	StaleWindowStale   float64 `json:"stale_window_stale_per_tick"` // RouteOn failures before catch-up
	StaleWindowOK      float64 `json:"stale_window_delivered_per_tick"`
	EpochSeq           uint64  `json:"final_epoch"`
}

// routingReplicatedRecord is one replicated-tier cell: N replicas
// under live churn, concurrent failover clients, with or without
// transport faults.
type routingReplicatedRecord struct {
	Mode          string  `json:"mode"` // "replicated"
	GOMAXPROCS    int     `json:"gomaxprocs"`
	N             int     `json:"n"`
	Replicas      int     `json:"replicas"`
	Ticks         int     `json:"ticks"`
	Faults        bool    `json:"faults"`
	Clients       int     `json:"clients"`         // concurrent client goroutines
	QueriesPerSec float64 `json:"queries_per_sec"` // aggregate across clients
	NsPerQuery    float64 `json:"ns_per_query"`
	NsPerTick     float64 `json:"ns_per_tick"` // writer apply + ship + transport + replica apply
	// Shipping traffic (int32 words, the distsim accounting unit).
	DeltaWordsPerTick float64 `json:"delta_words_per_tick"`
	FullResyncs       int     `json:"full_resyncs"` // bootstrap + crash/gap recoveries
	FullWords         int64   `json:"full_words_total"`
	// Stale-read SLO.
	FreshFraction float64 `json:"fresh_fraction"` // table-served queries at lag 0
	LagMax        uint64  `json:"lag_max"`
	Degraded      int64   `json:"degraded_queries"`
	Failed        int64   `json:"failed_queries"`
	Hedges        int64   `json:"hedges"`
	Backoffs      int64   `json:"backoffs"`
	// Recovery: ticks from the heal tick until every live replica is
	// back to lag 0 (-1: never within the run; 0: clean run).
	RecoveryTicks int `json:"recovery_ticks"`
}

type routingReport struct {
	Context struct {
		Sizes      []int  `json:"sizes"`
		LiveSizes  []int  `json:"live_sizes"`
		Degree     int    `json:"target_degree"`
		LiveDegree int    `json:"live_target_degree"`
		Seed       int64  `json:"seed"`
		Ticks      int    `json:"live_ticks"`
		Queries    int    `json:"queries_per_tick"`
		OwnerCap   int    `json:"owner_cap"`
		Replicas   int    `json:"replicas"`
		GoVersion  string `json:"go_version"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		CPUList    []int  `json:"cpu_list"`
	} `json:"context"`
	Build      []routingBuildRecord      `json:"build"`
	Live       []routingLiveRecord       `json:"live"`
	Replicated []routingReplicatedRecord `json:"replicated"`
}

// runRouting benchmarks the forwarding plane: table construction
// (scalar vs word-parallel) on the two §4 workload families, and the
// epoch-swapped routing.Store under mobility-driven churn.
func runRouting(sizes, liveSizes []int, deg, liveDeg int, seed int64, ticks, queries, ownerCap, nrep int) []byte {
	var rep routingReport
	if quickMode && ticks > 10 {
		ticks = 10
	}
	rep.Context.Sizes = sizes
	rep.Context.LiveSizes = liveSizes
	rep.Context.Degree = deg
	rep.Context.LiveDegree = liveDeg
	rep.Context.Seed = seed
	rep.Context.Ticks = ticks
	rep.Context.Queries = queries
	rep.Context.OwnerCap = ownerCap
	rep.Context.Replicas = nrep
	rep.Context.GoVersion = runtime.Version()
	rep.Context.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Context.CPUList = cpuList()

	for _, n := range sizes {
		workloads := []struct {
			name string
			g    *graph.Graph
		}{
			{"er16", gen.ErdosRenyi(n, 16/float64(n), rand.New(rand.NewSource(seed)))},
			{"udg", func() *graph.Graph {
				side := math.Sqrt(math.Pi * float64(n) / float64(deg))
				gg := remspan.RandomUDG(n, side, seed)
				return graph.FromEdges(gg.N(), gg.Edges())
			}()},
		}
		for _, wl := range workloads {
			runRoutingBuild(&rep, wl.name, wl.g, ownerCap)
		}
	}
	for _, n := range liveSizes {
		forEachCPU(func(cpu int) {
			rec := runRoutingLive(n, liveDeg, seed, ticks, queries)
			rec.GOMAXPROCS = cpu
			rep.Live = append(rep.Live, rec)
		})
	}
	// Replicated tier on the smallest live size: N replicas are N full
	// table sets, so the cell is sized for memory, not for n-scaling
	// (the per-replica query path is the same lock-free walk the live
	// section already scales).
	if len(liveSizes) > 0 {
		n := liveSizes[0]
		for _, faults := range []bool{false, true} {
			forEachCPU(func(cpu int) {
				rec := runRoutingReplicated(n, liveDeg, seed, ticks, queries, nrep, faults)
				rec.GOMAXPROCS = cpu
				rep.Replicated = append(rep.Replicated, rec)
			})
		}
	}
	return marshal(&rep)
}

// runRoutingReplicated drives the fault-tolerant replica tier
// (DESIGN.md §3f) under the same mobility workload as runRoutingLive:
// each tick the writer applies the unit-disk diff and ships the epoch
// diff to nrep replicas through the (possibly faulty) transport, then
// GOMAXPROCS failover clients — one per goroutine, each with its own
// SLO accounting, merged at the end — run a concurrent query burst
// against the replicas' lock-free surface. The faulty arm adds 5%
// drop, 20% delay, a replica crash at ticks/4 (restart at ticks/2) and
// a partition at ticks/3 (healed at ticks/2), then measures how many
// ticks past the heal the cluster needs to return every live replica
// to lag 0.
func runRoutingReplicated(n, deg int, seed int64, ticks, queries, nrep int, faults bool) routingReplicatedRecord {
	const minSpeed, maxSpeed = 0.01, 0.05
	side := math.Sqrt(math.Pi * float64(n) / float64(deg))
	rng := rand.New(rand.NewSource(seed))
	w := mobility.NewWaypoint(n, side, minSpeed, maxSpeed, rng)
	tr := mobility.NewTracker(w, 1.0)
	bb := dynamic.Builders()[0] // kgreedy1

	st := routing.NewStore(dynamic.New(tr.Graph(), bb.Radius, bb.Build))
	plan := replica.FaultPlan{Seed: seed + 7}
	if faults {
		plan.DropProb = 0.05
		plan.DelayProb = 0.2
		plan.DelayMax = 2
	}
	c := replica.NewCluster(st, nrep, plan)

	nw := runtime.GOMAXPROCS(0)
	if nw > 8 {
		nw = 8
	}
	clients := make([]*replica.Client, nw)
	qrngs := make([]*rand.Rand, nw)
	for i := range clients {
		clients[i] = replica.NewClient(c, replica.DefaultClientConfig(seed+int64(i)))
		qrngs[i] = rand.New(rand.NewSource(seed + 100 + int64(i)))
	}

	healTick := ticks / 2
	crashAt, partAt := ticks/4, ticks/3
	victim, cut := 1%nrep, 2%nrep
	recovery := -1
	if !faults {
		recovery = 0
	}

	var tickNs, queryNs, queriesRun int64
	changesBuf := make([]dynamic.Change, 0, 1024)
	var wg sync.WaitGroup
	for tick := 0; tick < ticks; tick++ {
		if faults {
			if tick == crashAt {
				c.Replicas[victim].Crash()
			}
			if tick == partAt {
				c.Inj.Partition(cut, true)
			}
			if tick == healTick {
				c.Replicas[victim].Restart()
				c.Inj.Partition(cut, false)
				c.Inj.Heal()
			}
		}
		added, removed := tr.Tick()
		changesBuf = changesBuf[:0]
		for _, p := range removed {
			changesBuf = append(changesBuf, dynamic.Change{Kind: dynamic.RemoveEdge, U: int(p[0]), V: int(p[1])})
		}
		for _, p := range added {
			changesBuf = append(changesBuf, dynamic.Change{Kind: dynamic.AddEdge, U: int(p[0]), V: int(p[1])})
		}
		t0 := time.Now()
		c.Tick(changesBuf)
		tickNs += time.Since(t0).Nanoseconds()
		if faults && recovery < 0 && tick >= healTick && c.MaxLag() == 0 {
			recovery = tick - healTick
		}
		// Concurrent burst: every client goroutine issues its share of
		// the tick's queries against the lock-free replica surface.
		t0 = time.Now()
		for i := 0; i < nw; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cl, qr := clients[i], qrngs[i]
				cl.Tick()
				for q := 0; q < queries; q++ {
					cl.Route(qr.Intn(n), qr.Intn(n))
				}
			}(i)
		}
		wg.Wait()
		queryNs += time.Since(t0).Nanoseconds()
		queriesRun += int64(nw * queries)
	}

	var slo replica.SLOStats
	for _, cl := range clients {
		slo.MergeSLO(&cl.SLO)
	}
	rec := routingReplicatedRecord{
		Mode: "replicated", N: n, Replicas: nrep, Ticks: ticks, Faults: faults, Clients: nw,
		QueriesPerSec:     1e9 * float64(queriesRun) / float64(queryNs),
		NsPerQuery:        float64(queryNs) / float64(queriesRun),
		NsPerTick:         float64(tickNs) / float64(ticks),
		DeltaWordsPerTick: float64(c.W.DeltaWords) / float64(nrep) / float64(ticks),
		FullResyncs:       c.W.FullShipments,
		FullWords:         c.W.FullWords,
		FreshFraction:     slo.FreshFraction(),
		LagMax:            slo.LagMax,
		Degraded:          slo.Degraded,
		Failed:            slo.Failed,
		Hedges:            slo.Hedges,
		Backoffs:          slo.Backoffs,
		RecoveryTicks:     recovery,
	}
	fmt.Fprintf(os.Stderr, "routing repl  n=%-6d reps=%d faults=%-5v %10.0f queries/sec fresh %.3f degraded %d recovery %d ticks\n",
		n, nrep, faults, rec.QueriesPerSec, rec.FreshFraction, rec.Degraded, rec.RecoveryTicks)
	return rec
}

// runRoutingBuild measures one workload's table construction, scalar
// vs batched, over the same ball-clustered owner set (all owners, or
// the first ownerCap of the clustered order at large n).
func runRoutingBuild(rep *routingReport, workload string, g *graph.Graph, ownerCap int) {
	h := spanner.Exact(g).Graph()
	cg, ch := graph.NewCSR(g), graph.NewCSR(h)
	n := g.N()
	order, _ := graph.BatchOrder(cg)
	owners := order
	// Each owner costs two n-entry int32 rows (8 bytes per slot); scale
	// the cap down with n so the slabs stay ≈2 GB at the production
	// sizes instead of letting owners×n grow quadratically.
	effCap := ownerCap
	if n > 0 {
		if memCap := 250_000_000 / n; memCap < effCap {
			effCap = memCap
		}
	}
	if effCap < 1 {
		effCap = 1
	}
	if len(owners) > effCap {
		owners = owners[:effCap]
	}
	// Rows live in two contiguous slabs, the same layout
	// routing.NewTables gives a full build (scattered per-owner rows
	// would tax the builders' streaming phases with TLB misses the
	// production path never pays).
	tables := make([]routing.Table, n)
	nextSlab := make([]int32, len(owners)*n)
	distSlab := make([]int32, len(owners)*n)
	for j, u := range owners {
		tables[u] = routing.Table{
			Owner: int(u),
			Next:  nextSlab[j*n : (j+1)*n : (j+1)*n],
			Dist:  distSlab[j*n : (j+1)*n : (j+1)*n],
		}
	}

	scratch := routing.NewTableScratch(n)
	bb := routing.NewBatchBuilder(n)
	arms := []struct {
		engine string
		run    func()
	}{
		{"scalar", func() {
			for _, u := range owners {
				scratch.BuildTableInto(cg, ch, int(u), tables[u].Next, tables[u].Dist)
			}
		}},
		{"batched", func() { bb.BuildInto(cg, ch, tables, owners) }},
	}
	forEachCPU(func(cpu int) {
		scalarNs := 0.0
		for _, a := range arms {
			res := bench(a.run)
			rec := routingBuildRecord{
				Workload: workload, Engine: a.engine, GOMAXPROCS: cpu,
				N: n, Owners: len(owners), GraphEdges: g.M(), SpannerEdges: h.M(),
				NsPerOp: res.NsPerOp, NsPerOwner: res.NsPerOp / float64(len(owners)),
				AllocsPerOp: res.AllocsPerOp, BytesPerOp: res.BytesPerOp, Iterations: res.N,
			}
			if a.engine == "scalar" {
				scalarNs = rec.NsPerOp
			} else if scalarNs > 0 {
				rec.SpeedupVsScalar = scalarNs / rec.NsPerOp
			}
			rep.Build = append(rep.Build, rec)
			fmt.Fprintf(os.Stderr, "routing build %-5s n=%-6d owners=%-6d cpu=%-3d %-8s %14.0f ns/op %8d allocs/op speedup %5.1f\n",
				workload, n, len(owners), cpu, a.engine, rec.NsPerOp, rec.AllocsPerOp, rec.SpeedupVsScalar)
		}
	})
}

// runRoutingLive drives the epoch-swapped store with the mobility
// tracker: each tick the unit-disk diff is applied as one batch
// (dirty-owner table rebuild included), queries run lock-free against
// the published epoch, and a pre-catch-up RouteOn pass against the
// fresh physical graph measures the stale-route window.
func runRoutingLive(n, deg int, seed int64, ticks, queries int) routingLiveRecord {
	const minSpeed, maxSpeed = 0.01, 0.05
	side := math.Sqrt(math.Pi * float64(n) / float64(deg))
	rng := rand.New(rand.NewSource(seed))
	w := mobility.NewWaypoint(n, side, minSpeed, maxSpeed, rng)
	tr := mobility.NewTracker(w, 1.0)
	bb := dynamic.Builders()[0] // kgreedy1

	start := time.Now()
	st := routing.NewStore(dynamic.New(tr.Graph(), bb.Radius, bb.Build))
	cold := time.Since(start)
	reader := st.NewReader()
	qrng := rand.New(rand.NewSource(seed + 13))

	var tickNs, changes, dirty, staleHit, staleOK, queriesRun, queryNs int64
	var allocs uint64
	changesBuf := make([]dynamic.Change, 0, 1024)
	var ms runtime.MemStats
	for tick := 0; tick < ticks; tick++ {
		added, removed := tr.Tick()
		changesBuf = changesBuf[:0]
		for _, p := range removed {
			changesBuf = append(changesBuf, dynamic.Change{Kind: dynamic.RemoveEdge, U: int(p[0]), V: int(p[1])})
		}
		for _, p := range added {
			changesBuf = append(changesBuf, dynamic.Change{Kind: dynamic.AddEdge, U: int(p[0]), V: int(p[1])})
		}
		// Stale window: the physical truth moved, the control plane has
		// not caught up yet.
		phys := tr.Graph()
		for q := 0; q < queries/8; q++ {
			r := reader.RouteOn(phys, qrng.Intn(n), qrng.Intn(n))
			if r.Reason == routing.RouteStaleLink {
				staleHit++
			} else if r.OK {
				staleOK++
			}
		}
		runtime.ReadMemStats(&ms)
		m0 := ms.Mallocs
		t0 := time.Now()
		applied := st.ApplyBatch(changesBuf)
		tickNs += time.Since(t0).Nanoseconds()
		runtime.ReadMemStats(&ms)
		allocs += ms.Mallocs - m0
		changes += int64(applied)
		dirty += int64(len(st.Maintainer().DirtyRoots()))
		// Steady-state query throughput against the fresh epoch.
		t0 = time.Now()
		for q := 0; q < queries; q++ {
			reader.Route(qrng.Intn(n), qrng.Intn(n))
		}
		queryNs += time.Since(t0).Nanoseconds()
		queriesRun += int64(queries)
	}
	rec := routingLiveRecord{
		Mode: "live", Builder: bb.Name, N: n, Ticks: ticks,
		ColdStartNs:        float64(cold.Nanoseconds()),
		NsPerTick:          float64(tickNs) / float64(ticks),
		ChangesPerTick:     float64(changes) / float64(ticks),
		DirtyOwnersPerTick: float64(dirty) / float64(ticks),
		AllocsPerTick:      float64(allocs) / float64(ticks),
		NsPerQuery:         float64(queryNs) / float64(queriesRun),
		QueriesPerSec:      1e9 * float64(queriesRun) / float64(queryNs),
		StaleWindowStale:   float64(staleHit) / float64(ticks),
		StaleWindowOK:      float64(staleOK) / float64(ticks),
		EpochSeq:           st.Epoch().Seq(),
	}
	fmt.Fprintf(os.Stderr, "routing live  n=%-6d %12.0f ns/tick %8.1f changes/tick %10.0f queries/sec %6.1f stale/tick\n",
		n, rec.NsPerTick, rec.ChangesPerTick, rec.QueriesPerSec, rec.StaleWindowStale)
	return rec
}
