package remspan

import (
	"fmt"

	"remspan/internal/distsim"
	"remspan/internal/domtree"
	"remspan/internal/graph"
	"remspan/internal/routing"
)

// DistributedResult reports a synchronous run of the RemSpan protocol
// (Algorithm 3): every node discovers its neighbors, floods neighbor
// lists to the tree radius, computes its dominating tree locally, and
// floods the tree back.
type DistributedResult struct {
	Rounds   int    // always 2(r−1+β)+1, independent of n
	Messages int64  // point-to-point messages sent
	Words    int64  // payload words sent
	H        *Graph // the spanner assembled from the flooded trees
}

// Algorithm selects which dominating-tree computation each node runs.
type Algorithm int

// Distributed algorithm choices.
const (
	// AlgoExact: Algorithm 4 with k=1 → (1,0)-remote-spanner, 3 rounds.
	AlgoExact Algorithm = iota
	// AlgoKConnecting: Algorithm 4 → k-connecting (1,0), 3 rounds.
	AlgoKConnecting
	// AlgoTwoConnecting: Algorithm 5, k=2 → 2-connecting (2,−1), 5 rounds.
	AlgoTwoConnecting
	// AlgoLowStretch: Algorithm 2 with r=⌈1/ε⌉+1 → (1+ε,1−2ε), 2r+1 rounds.
	AlgoLowStretch
)

// RunDistributed executes the protocol on g. k parameterizes
// AlgoKConnecting; eps parameterizes AlgoLowStretch.
func RunDistributed(g *Graph, algo Algorithm, k int, eps float64) (*DistributedResult, error) {
	var radius int
	var build distsim.TreeBuilder
	switch algo {
	case AlgoExact:
		radius = 1
		build = func(c graph.View, s *domtree.Scratch, u int) *graph.Tree { return domtree.KGreedyCSR(c, s, u, 1) }
	case AlgoKConnecting:
		if k < 1 {
			return nil, fmt.Errorf("remspan: k must be >= 1")
		}
		radius = 1
		kk := k
		build = func(c graph.View, s *domtree.Scratch, u int) *graph.Tree { return domtree.KGreedyCSR(c, s, u, kk) }
	case AlgoTwoConnecting:
		radius = 2
		build = func(c graph.View, s *domtree.Scratch, u int) *graph.Tree { return domtree.KMISCSR(c, s, u, 2) }
	case AlgoLowStretch:
		if eps <= 0 || eps > 1 {
			return nil, fmt.Errorf("remspan: need 0 < eps <= 1")
		}
		r, _ := radiusFor(eps)
		radius = r // β = 1: flooding radius r−1+1 = r
		rr := r
		build = func(c graph.View, s *domtree.Scratch, u int) *graph.Tree { return domtree.MISCSR(c, s, u, rr) }
	default:
		return nil, fmt.Errorf("remspan: unknown algorithm %d", algo)
	}
	res := distsim.RunRemSpan(g.raw(), radius, build)
	return &DistributedResult{
		Rounds:   res.Rounds,
		Messages: res.Messages,
		Words:    res.Words,
		H:        wrap(res.H.Graph()),
	}, nil
}

// FullLinkStateCost returns the flooding cost (messages, payload words)
// of classic full link-state routing on g, for comparison with
// DistributedResult.
func FullLinkStateCost(g *Graph) (messages, words int64) {
	return distsim.FullLinkState(g.raw())
}

// FloodStats compares OLSR-style multipoint-relay flooding (relays from
// Algorithm 4 with coverage k) against blind flooding from the given
// source: retransmission counts and nodes covered.
func FloodStats(g *Graph, k, source int) (mprTx, blindTx, covered int) {
	sel := routing.SelectMPRs(g.raw(), k)
	m := routing.MPRFlood(g.raw(), sel, source, nil)
	b := routing.BlindFlood(g.raw(), source, nil)
	return m.Transmissions, b.Transmissions, m.Covered
}
