package main

import "testing"

// Compile pin: examples previously had no test files, so they were
// never built or vetted by `go test ./...`. This empty test forces
// both for the flooding example.
func TestExampleCompiles(t *testing.T) {}
