// OLSR-style optimized flooding: the paper shows multipoint relays are
// exactly (2,0)-dominating trees, and their union a (1,0)-remote-
// spanner. This example measures how many retransmissions MPR flooding
// saves over blind flooding on increasingly dense networks, and how
// k-coverage (k-connecting trees) trades a few extra relays for
// broadcast redundancy.
package main

import (
	"fmt"

	"remspan"
)

func main() {
	fmt.Printf("%8s %8s %10s %12s %12s %12s\n",
		"nodes", "links", "blind tx", "MPR k=1 tx", "MPR k=2 tx", "saving k=1")
	for i, n := range []int{150, 300, 600} {
		g := remspan.RandomUDG(n, 4, int64(100+i))
		src := 0
		mpr1, blind, cov1 := remspan.FloodStats(g, 1, src)
		mpr2, _, cov2 := remspan.FloodStats(g, 2, src)
		if cov1 != g.N() || cov2 != g.N() {
			fmt.Printf("coverage failure: %d/%d, %d/%d\n", cov1, g.N(), cov2, g.N())
			continue
		}
		fmt.Printf("%8d %8d %10d %12d %12d %11.1f%%\n",
			g.N(), g.M(), blind, mpr1, mpr2,
			100*(1-float64(mpr1)/float64(blind)))
	}
	fmt.Println("\nblind flooding retransmits at every node; MPR flooding only at")
	fmt.Println("designated relays, yet the broadcast still reaches everyone —")
	fmt.Println("the denser the network, the bigger the saving.")
}
