// Multipath fault tolerance: the 2-connecting (2,−1)-remote-spanner of
// Theorem 3 keeps two internally disjoint routes between every
// 2-connected pair, so traffic survives any single relay failure —
// with the total length of both paths within a factor 2 of optimal.
package main

import (
	"fmt"
	"math/rand"

	"remspan"
)

func main() {
	g := remspan.RandomUDG(300, 3, 21)
	fmt.Printf("network: %d nodes, %d links\n", g.N(), g.M())

	s := remspan.TwoConnecting(g)
	fmt.Printf("2-connecting (2,-1)-remote-spanner: %d links (%.1f%% of topology)\n\n",
		s.Edges(), 100*float64(s.Edges())/float64(g.M()))

	rng := rand.New(rand.NewSource(5))
	shown, survived, trials := 0, 0, 0
	for i := 0; i < 4000 && trials < 50; i++ {
		src, dst := rng.Intn(g.N()), rng.Intn(g.N())
		if src == dst || g.HasEdge(src, dst) {
			continue
		}
		// Eligible only if G itself has 2 disjoint paths.
		dG := remspan.DisjointPathDistance(g, src, dst, 2)
		if dG < 0 {
			continue
		}
		trials++
		paths, total, ok := remspan.MultipathRoutes(g, s.H, src, dst, 2)
		if !ok {
			fmt.Printf("pair (%d,%d): 2-connectivity LOST — should never happen\n", src, dst)
			continue
		}
		// Fail the first relay of the primary path; the secondary is
		// disjoint, so it must still work.
		primary, secondary := paths[0], paths[1]
		failedRelay := -1
		if len(primary) > 2 {
			failedRelay = primary[1]
		}
		usable := true
		for _, v := range secondary[1 : len(secondary)-1] {
			if v == failedRelay {
				usable = false
			}
		}
		if usable {
			survived++
		}
		if shown < 5 {
			fmt.Printf("pair (%3d,%3d): d²_G=%2d  d²_H=%2d (bound %2d)  primary %v  backup %v\n",
				src, dst, dG, total, 2*dG-2, primary, secondary)
			shown++
		}
	}
	fmt.Printf("\n%d/%d pairs kept a working backup route after a primary-relay failure\n",
		survived, trials)
	fmt.Println("(disjointness makes this structural, not probabilistic)")
}
