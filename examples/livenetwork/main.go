// Live network: a full OLSR-style protocol run with moving nodes. Every
// router periodically exchanges HELLOs, selects multipoint relays
// (Algorithm 4 of the paper — a (2,0)-dominating tree), and floods TC
// messages carrying its relay links: the network-wide union of those
// links is exactly the paper's (1,0)-remote-spanner, maintained live.
//
// The example reports, while the network moves, how the data plane
// (delivery ratio, route stretch) and control plane (messages) behave —
// the paper's §2.3 "periodic asynchronous operation" remark in action.
package main

import (
	"fmt"
	"math/rand"

	"remspan/internal/mobility"
	"remspan/internal/olsr"
)

func main() {
	const (
		nodes  = 200
		side   = 4.0
		radius = 1.2
	)
	rng := rand.New(rand.NewSource(11))
	w := mobility.NewWaypoint(nodes, side, 0.004, 0.02, rng)
	sim := olsr.New(w.Graph(radius), olsr.DefaultParams())

	// Cold start: run until routing converges.
	pairs := make([][2]int, 60)
	prng := rand.New(rand.NewSource(12))
	for i := range pairs {
		pairs[i] = [2]int{prng.Intn(nodes), prng.Intn(nodes)}
	}
	tick := 0
	for ; tick < 60; tick++ {
		sim.Tick()
		if sim.Converged(pairs) {
			break
		}
	}
	fmt.Printf("cold start: converged after %d ticks\n", tick+1)
	fmt.Printf("advertised links: %d (physical links: %d)\n\n",
		sim.AdvertisedSpanner().Len(), currentLinks(w, radius))

	fmt.Printf("%6s %10s %10s %12s %12s %12s\n",
		"tick", "links", "advert.", "delivered", "max stretch", "ctrl msgs")
	last := sim.Stats()
	for step := 1; step <= 50; step++ {
		w.Step()
		sim.SetGraph(w.Graph(radius))
		sim.Tick()
		if step%10 != 0 {
			continue
		}
		rep := sim.RouteCheck(pairs)
		st := sim.Stats()
		fmt.Printf("%6d %10d %10d %9d/%-3d %12.2f %12d\n",
			step, currentLinks(w, radius), sim.AdvertisedSpanner().Len(),
			rep.Delivered, rep.Checked, rep.MaxStretch,
			(st.HelloTx+st.TCTx)-(last.HelloTx+last.TCTx))
		last = st
	}
	fmt.Println("\nthe advertised remote-spanner tracks the moving topology;")
	fmt.Println("routes stay near-shortest with a fraction of full link-state traffic.")
}

func currentLinks(w *mobility.Waypoint, radius float64) int {
	return w.Graph(radius).M()
}
